(* quantcli — command-line front end to the quantlib tool families.

   Subcommands mirror the paper's tools:
     verify   UPPAAL-style model checking of the train-gate
     smc      UPPAAL-SMC statistical queries (Fig. 4 series)
     synth    UPPAAL-TIGA controller synthesis for the train game
     wcet     UPPAAL-CORA min/max cost reachability demo
     brp      the MODEST BRP with one of the three backends (Table I)
     modes    BRP discrete-event simulation, sharded across --jobs domains
     modest   parse a MODEST file, classify, report reachable states
     bip      DALA verification and fault injection
     mbt      ioco test generation / execution demo
     fuzz     differential fuzzing of the backends against each other *)

open Quantlib
open Cmdliner

let trains_arg =
  Arg.(value & opt int 3 & info [ "trains" ] ~docv:"N" ~doc:"Number of trains.")

let stats_json_arg =
  Arg.(
    value & flag
    & info [ "stats-json" ]
        ~doc:"Print per-query engine statistics as one JSON object per line.")

(* Exit-code contract, shared with `quantcli client` and quantd:
     0  every query holds / no divergence
     1  a property is VIOLATED or the fuzzer found a divergence
     2  usage error or unreadable/invalid input
     3  internal error or resource exhaustion (--mem-budget)
   Cmdliner keeps its own 124/125 for command-line parse failures and
   uncaught exceptions it reports itself. *)

(* One line per query: verdict plus the engine run's counters. Returns
   [holds] so callers fold their exit code. The rendering lives in
   [Serve.Render] so the daemon path emits identical bytes. *)
let show_query ~stats_json name (r : Ta.Checker.result) =
  print_string (Serve.Render.query_line ~stats_json name r);
  r.Ta.Checker.holds

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let jobs_arg =
  let env =
    Cmd.Env.info "QUANTLIB_JOBS" ~doc:"Default value for $(b,--jobs)."
  in
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N" ~env
        ~doc:
          "Worker domains for Monte-Carlo run batches (1 = sequential). \
           Results are identical for every value of $(docv).")

(* ------------------------------------------------------------------ *)
(* Telemetry flags, shared by every subcommand: --trace streams span
   events to a JSONL file while the command runs; --report writes one
   JSON snapshot (metrics + span timings + GC) when it finishes, even
   if the analysis raised; --flight turns the flight recorder on and
   writes the drained timeline as a Chrome trace_event file on exit
   (load it in chrome://tracing or https://ui.perfetto.dev),
   --flight-otlp as a minimal OTLP/JSON document. *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write span trace events to $(docv), one JSON object per line.")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:
          "Write a JSON run report (metrics, span timings, GC statistics) \
           to $(docv) on exit.")

let flight_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight" ] ~docv:"FILE"
        ~doc:
          "Record engine phase events (dbm.seal, codec.encode, store.probe, \
           ...) in the in-memory flight recorder and write them to $(docv) \
           as Chrome trace_event JSON on exit — loadable in chrome://tracing \
           and Perfetto.")

let flight_otlp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-otlp" ] ~docv:"FILE"
        ~doc:
          "Like $(b,--flight), but write the timeline as a minimal \
           OTLP-shaped JSON document (resourceSpans/scopeSpans/spans).")

let flight_events_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "flight-events" ] ~docv:"N"
        ~doc:
          "Flight-recorder timeline window: keep the last $(docv) events per \
           domain (rounded up to a power of two; default 8192). Phase totals \
           are exact regardless; a larger window only lengthens the exported \
           timeline, at some cache cost while recording.")

let obs_term =
  Term.(
    const (fun t r fl fo fe -> (t, r, fl, fo, fe))
    $ trace_arg $ report_arg $ flight_arg $ flight_otlp_arg
    $ flight_events_arg)

let with_obs (trace, report, flight, flight_otlp, flight_events) f =
  (match trace with
   | Some file -> Obs.Sink.set (Obs.Sink.jsonl file)
   | None -> ());
  if flight <> None || flight_otlp <> None then
    Obs.Flight.enable ?capacity:flight_events ();
  Fun.protect
    ~finally:(fun () ->
      (match flight with
       | Some file -> Obs.Flight.write_chrome file
       | None -> ());
      (match flight_otlp with
       | Some file -> Obs.Flight.write_otlp file
       | None -> ());
      Obs.Flight.disable ();
      (* The report snapshots flight phase totals too, so it comes after
         the drain (drains are non-destructive; order is for clarity). *)
      (match report with
       | Some file -> Obs.Report.to_file file ()
       | None -> ());
      (* Restore (and flush/close) the sink. *)
      Obs.Sink.set Obs.Sink.null)
    (fun () ->
      (* Commands return their exit code so the telemetry finalizers
         above still run on a violation (plain [exit] would skip them). *)
      try (f () : int)
      with e ->
        Printf.eprintf "quantcli: internal error: %s\n" (Printexc.to_string e);
        3)

(* ------------------------------------------------------------------ *)

let verify obs trains stats_json =
  with_obs obs @@ fun () ->
  let net = Ta.Train_gate.make ~n_trains:trains in
  let show = show_query ~stats_json in
  let safe = show "safety" (Ta.Checker.check net (Ta.Train_gate.safety net)) in
  let dlf = show "no deadlock" (Ta.Checker.check net Ta.Train_gate.no_deadlock) in
  let live =
    if trains <= 3 then
      show "liveness (train 0)"
        (Ta.Checker.check net (Ta.Train_gate.liveness net 0))
    else true
  in
  if safe && dlf && live then 0 else 1

let verify_cmd =
  Cmd.v (Cmd.info "verify" ~doc:"Model check the train-gate (Fig. 1).")
    Term.(const verify $ obs_term $ trains_arg $ stats_json_arg)

(* ------------------------------------------------------------------ *)

let smc obs model trains runs seed jobs =
  with_obs obs @@ fun () ->
  Par.Pool.with_pool ~jobs @@ fun pool ->
  match model with
  | "train-gate" ->
    let net = Ta.Train_gate.make ~n_trains:trains in
    let config =
      { Smc.Stochastic.rates = (fun auto _ -> 1.0 +. float_of_int auto) }
    in
    let grid = List.init 8 (fun k -> 10.0 +. (12.0 *. float_of_int k)) in
    for i = 0 to trains - 1 do
      let series =
        Smc.cdf ~pool ~config ~runs ~seed:(seed + i) net
          ~goal:(Ta.Train_gate.cross_formula net i) ~horizon:100.0 ~grid
      in
      print_string (Serve.Render.smc_train_line i series)
    done;
    0
  | "fischer" ->
    let net = Ta.Fischer.make ~n:trains () in
    for i = 0 to trains - 1 do
      let itv =
        Smc.probability ~pool ~runs ~seed:(seed + i) net
          {
            Smc.horizon = 30.0;
            goal = Ta.Prop.Loc (i, Ta.Model.loc_index net i "cs");
          }
      in
      print_string (Serve.Render.smc_fischer_line i itv)
    done;
    0
  | other ->
    Printf.eprintf "unknown model %s (train-gate|fischer)\n" other;
    2

let smc_cmd =
  let runs =
    Arg.(value & opt int 500 & info [ "runs" ] ~docv:"RUNS" ~doc:"Simulation runs.")
  in
  let model =
    Arg.(
      value
      & opt string "train-gate"
      & info [ "model" ] ~docv:"M"
          ~doc:
            "Model to analyse: $(b,train-gate) (CDF series, Fig. 4) or \
             $(b,fischer) (probability of each process entering its \
             critical section).")
  in
  Cmd.v (Cmd.info "smc" ~doc:"Statistical model checking CDF (Fig. 4).")
    Term.(const smc $ obs_term $ model $ trains_arg $ runs $ seed_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)

let synth obs trains =
  with_obs obs @@ fun () ->
  let net = Games.Train_game.make ~n_trains:trains () in
  let safe = Games.Train_game.safe net in
  let s = Games.solve net (Games.Safety safe) in
  Printf.printf "initial winning: %b, winning states: %d, closed-loop safe: %b\n"
    s.Games.initial_winning (Games.winning_count s)
    (Games.closed_loop_safe s ~safe);
  0

let synth_cmd =
  Cmd.v (Cmd.info "synth" ~doc:"Synthesize the train-game controller (Figs. 2-3).")
    Term.(const synth $ obs_term $ trains_arg)

(* ------------------------------------------------------------------ *)

let wcet obs () =
  with_obs obs @@ fun () ->
  let net = Ta.Train_gate.make ~n_trains:2 in
  let cross = Ta.Model.loc_index net 0 "Cross" in
  let target st = st.Discrete.Digital.dlocs.(0) = cross in
  match Priced.min_time_reach net ~target with
  | Some o ->
    Printf.printf "minimum time for train 0 to cross: %d\n" o.Priced.cost;
    0
  | None ->
    print_endline "unreachable";
    0

let wcet_cmd =
  Cmd.v (Cmd.info "wcet" ~doc:"Priced reachability demo (UPPAAL-CORA).")
    Term.(const wcet $ obs_term $ const ())

(* ------------------------------------------------------------------ *)

let brp obs backend =
  with_obs obs @@ fun () ->
  let t = Modest.Brp.make () in
  match backend with
  | "mctau" ->
    let r = Modest.Brp.run_mctau t in
    let ib = function
      | `Zero -> "0"
      | `Interval (a, b) -> Printf.sprintf "[%g,%g]" a b
    in
    Printf.printf "TA1 %b TA2 %b PA %s PB %s P1 %s P2 %s Dmax %s\n"
      r.Modest.Brp.mt_ta1 r.Modest.Brp.mt_ta2 (ib r.Modest.Brp.mt_pa)
      (ib r.Modest.Brp.mt_pb) (ib r.Modest.Brp.mt_p1) (ib r.Modest.Brp.mt_p2)
      (ib r.Modest.Brp.mt_dmax);
    0
  | "mcpta" ->
    let r = Modest.Brp.run_mcpta t in
    Printf.printf "TA1 %b TA2 %b PA %g PB %g P1 %.4e P2 %.4e Dmax %.4f Emax %.3f\n"
      r.Modest.Brp.mc_ta1 r.Modest.Brp.mc_ta2 r.Modest.Brp.mc_pa
      r.Modest.Brp.mc_pb r.Modest.Brp.mc_p1 r.Modest.Brp.mc_p2
      r.Modest.Brp.mc_dmax r.Modest.Brp.mc_emax;
    0
  | "modes" ->
    print_string (Serve.Render.modes_line (Modest.Brp.run_modes t));
    0
  | other ->
    Printf.eprintf "unknown backend %s (mctau|mcpta|modes)\n" other;
    2

(* Discrete-event simulation of the BRP STA on the modes backend, with
   the run batch sharded across --jobs domains. Same output line as
   `brp --backend modes`. *)
let modes obs runs seed jobs =
  with_obs obs @@ fun () ->
  Par.Pool.with_pool ~jobs @@ fun pool ->
  let t = Modest.Brp.make () in
  print_string (Serve.Render.modes_line (Modest.Brp.run_modes ~pool ~runs ~seed t));
  0

let modes_cmd =
  let runs =
    Arg.(
      value & opt int 2000 & info [ "runs" ] ~docv:"RUNS" ~doc:"Simulation runs.")
  in
  Cmd.v
    (Cmd.info "modes" ~doc:"Simulate the BRP with the modes backend.")
    Term.(const modes $ obs_term $ runs $ seed_arg $ jobs_arg)

let brp_cmd =
  let backend =
    Arg.(
      value
      & opt string "mcpta"
      & info [ "backend" ] ~docv:"B" ~doc:"Backend: mctau, mcpta or modes.")
  in
  Cmd.v (Cmd.info "brp" ~doc:"BRP analysis, one Table I column.")
    Term.(const brp $ obs_term $ backend)

(* ------------------------------------------------------------------ *)

let modest_check obs file xml dot =
  with_obs obs @@ fun () ->
  let src =
    let ic = open_in file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  match Modest.Parser.parse_and_compile src with
  | sta ->
    (if xml then print_string (Modest.Uppaal_xml.of_sta sta)
     else if dot then print_string (Ta.Dot.of_network (Modest.Mctau.to_ta sta))
     else begin
       Printf.printf "parsed: %d processes, class %s\n"
         (Array.length sta.Modest.Sta.processes)
         (Modest.Sta.class_name (Modest.Sta.classify sta));
       match Modest.Sta.classify sta with
       | Modest.Sta.Class_sta -> print_endline "open clocks: only modes applies"
       | _ ->
         let exp = Modest.Digital_sta.expand sta in
         Printf.printf "digital state space: %d states\n"
           (Array.length exp.Modest.Digital_sta.states)
     end);
    0
  | exception Modest.Parser.Parse_error (msg, line) ->
    Printf.eprintf "parse error (line %d): %s\n" line msg;
    2
  | exception Modest.Lexer.Lex_error (msg, line) ->
    Printf.eprintf "lex error (line %d): %s\n" line msg;
    2
  | exception Modest.Ast.Compile_error msg ->
    Printf.eprintf "compile error: %s\n" msg;
    2

let modest_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MODEST source file.")
  in
  let xml =
    Arg.(value & flag & info [ "xml" ] ~doc:"Export to UPPAAL XML (the mctau path).")
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Export the TA overapproximation to Graphviz dot.")
  in
  Cmd.v (Cmd.info "modest" ~doc:"Parse, classify or export a MODEST model.")
    Term.(const modest_check $ obs_term $ file $ xml $ dot)

let fischer obs n stats_json =
  with_obs obs @@ fun () ->
  let net = Ta.Fischer.make ~n () in
  let show = show_query ~stats_json in
  let mutex = show "mutual exclusion" (Ta.Checker.check net (Ta.Fischer.mutex net)) in
  let dlf = show "deadlock-free" (Ta.Checker.check net Ta.Fischer.no_deadlock) in
  if mutex && dlf then 0 else 1

let fischer_cmd =
  let n = Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Processes.") in
  Cmd.v (Cmd.info "fischer" ~doc:"Verify Fischer's mutual exclusion.")
    Term.(const fischer $ obs_term $ n $ stats_json_arg)

(* ------------------------------------------------------------------ *)

(* `check` is the profiling-oriented entry point: one named model, its
   standard queries, and the shared telemetry flags — the incantation
   `quantcli check --model fischer --flight t.json` is the documented
   way to get a phase trace out of the zone engine. *)
let check_impl obs model n stats_json mem_budget_mb jobs =
  with_obs obs @@ fun () ->
  match Serve.Models.find model with
  | None ->
    Printf.eprintf "unknown model %s (%s)\n" model Serve.Models.known;
    2
  | Some spec ->
    let net = spec.Serve.Models.make n in
    let mem_budget_words =
      Option.map (fun mb -> mb * 1024 * 1024 / 8) mem_budget_mb
    in
    (* One pool shared by every query of the run; --jobs 1 still takes
       the sharded engine path (the determinism reference for any
       higher --jobs: identical bytes, different domain count). *)
    let run_queries pool =
      let truncated = ref false in
      let oks =
        List.fold_left
          (fun acc (name, q) ->
            let ok =
              match Ta.Checker.check ?mem_budget_words ?jobs ?pool net q with
              | r -> show_query ~stats_json name r
              | exception Ta.Checker.Truncated { reason; stats } ->
                truncated := true;
                print_string (Serve.Render.truncated_line name stats ~reason);
                true
            in
            ok :: acc)
          []
          (spec.Serve.Models.queries net)
      in
      if !truncated then 3 else if List.for_all Fun.id oks then 0 else 1
    in
    (match jobs with
     | Some j when j > 1 -> Par.Pool.with_pool ~jobs:j (fun p -> run_queries (Some p))
     | _ -> run_queries None)

let check_cmd =
  let model =
    Arg.(
      value
      & opt string "fischer"
      & info [ "model" ] ~docv:"M"
          ~doc:"Model to check: $(b,fischer) or $(b,train-gate).")
  in
  let n =
    Arg.(
      value & opt int 4
      & info [ "n" ] ~docv:"N" ~doc:"Processes (fischer) or trains (train-gate).")
  in
  let mem_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "mem-budget" ] ~docv:"MB"
          ~doc:
            "Stop exploring once the state store retains more than $(docv) \
             megabytes: the interrupted query prints a TRUNCATED verdict and \
             the command exits 3 instead of being OOM-killed.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Explore with the sharded parallel engine over $(docv) worker \
             domains. Output is byte-identical for every $(docv) >= 1 \
             (omitting the flag keeps the sequential engine, whose witness \
             traces may differ).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Model check a named model's standard queries (the profiling entry \
          point: combine with --flight/--report).")
    Term.(
      const check_impl $ obs_term $ model $ n $ stats_json_arg $ mem_budget
      $ jobs)

(* ------------------------------------------------------------------ *)

let bip_cmd_impl obs seed =
  with_obs obs @@ fun () ->
  let d = Bip.Dala.make ~controlled:true () in
  let report = Bip.Dfinder.prove d.Bip.Dala.sys in
  Printf.printf "deadlock-freedom: %s\n"
    (match report.Bip.Dfinder.verdict with
     | Bip.Dfinder.Proved -> "proved compositionally"
     | Bip.Dfinder.Inconclusive _ -> "inconclusive");
  let r = Bip.Dala.inject_faults d ~runs:20 ~steps:200 ~seed in
  Printf.printf "fault injection: %d faults, %d violations (with R2C)\n"
    r.Bip.Dala.faults_injected r.Bip.Dala.violations;
  0

let bip_cmd =
  Cmd.v (Cmd.info "bip" ~doc:"DALA verification and fault injection.")
    Term.(const bip_cmd_impl $ obs_term $ seed_arg)

(* ------------------------------------------------------------------ *)

let mbt obs seed =
  with_obs obs @@ fun () ->
  let tests = Mbt.Testgen.generate_suite Mbt.Demo.bus_spec ~seed ~count:50 ~depth:10 in
  let battery name impl =
    let iut = Mbt.Testgen.lts_iut impl ~seed in
    let passes, fails = Mbt.Testgen.run_suite tests iut ~repetitions:20 in
    Printf.printf "%-16s pass %d fail %d\n" name passes fails
  in
  battery "reference" Mbt.Demo.bus_impl_good;
  battery "lossy" Mbt.Demo.bus_impl_lossy;
  battery "chatty" Mbt.Demo.bus_impl_chatty;
  0

let mbt_cmd =
  Cmd.v (Cmd.info "mbt" ~doc:"ioco test generation and execution demo.")
    Term.(const mbt $ obs_term $ seed_arg)

(* ------------------------------------------------------------------ *)

let fuzz obs seed cases jobs families no_shrink inject extrapolation out =
  with_obs obs @@ fun () ->
  let families =
    match families with
    | [] -> Gen.Oracle.all_families
    | names ->
      List.map
        (fun n ->
          match Gen.Oracle.family_of_name n with
          | Some f -> f
          | None ->
            Printf.eprintf "fuzz: unknown family %S (known: %s)\n" n
              (String.concat ", "
                 (List.map Gen.Oracle.family_name Gen.Oracle.all_families));
            exit 2)
        names
  in
  (match inject with
   | None -> ()
   | Some "dbm-up" -> Zones.Dbm.inject_fault (Some Zones.Dbm.Broken_up)
   | Some "dbm-intersect" -> Zones.Dbm.inject_fault (Some Zones.Dbm.Unclosed_intersect)
   | Some other ->
     Printf.eprintf "fuzz: unknown fault %S (known: dbm-up, dbm-intersect)\n" other;
     exit 2);
  let cfg =
    {
      Gen.Harness.default with
      seed;
      cases;
      jobs;
      families;
      shrink = not no_shrink;
      extrapolation;
    }
  in
  let report = Gen.Harness.run cfg in
  Zones.Dbm.inject_fault None;
  print_string (Gen.Harness.render report);
  (match out with
   | Some file ->
     let oc = open_out file in
     output_string oc (Obs.Json.to_string (Gen.Harness.report_json report));
     output_char oc '\n';
     close_out oc
   | None -> ());
  if report.Gen.Harness.r_divergences <> [] then 1 else 0

let fuzz_cmd =
  let cases_arg =
    Arg.(
      value & opt int 200
      & info [ "cases" ] ~docv:"N" ~doc:"Number of generated cases.")
  in
  let families_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "family" ] ~docv:"NAME"
          ~doc:
            "Restrict to one oracle family (repeatable): ta-reach, priced, \
             mdp-vi, smc-ci, bip-deadlock. Default: all, round-robin.")
  in
  let no_shrink_arg =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Report divergences without minimizing them.")
  in
  let inject_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"FAULT"
          ~doc:
            "Inject a known fault before sweeping — the harness's own \
             mutation smoke test. dbm-up breaks the zone engine's delay \
             operation and must make a ta-reach sweep exit 1; dbm-intersect \
             leaks non-canonical DBMs on the deadlock-check path (caught by \
             the DBM property tests rather than this sweep).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the JSON report (including shrunk repros) to $(docv).")
  in
  let extrapolation_arg =
    Arg.(
      value
      & opt (enum [ ("none", `None); ("k", `K); ("lu", `Lu) ]) `Lu
      & info [ "extrapolation" ] ~docv:"ABS"
          ~doc:
            "Zone-engine extrapolation the ta-reach oracle cross-checks \
             against the digital backend: none, k (classic Extra-M) or lu \
             (default; coarse lower/upper-bound abstraction).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random models cross-checked across backends. \
          Exits 1 when any divergence is found; every case is reproducible \
          from (seed, index).")
    Term.(
      const fuzz $ obs_term $ seed_arg $ cases_arg $ jobs_arg $ families_arg
      $ no_shrink_arg $ inject_arg $ extrapolation_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* `obs` — inspect the telemetry artifacts the other subcommands write:
   run reports (--report) and Chrome flight traces (--flight). The file
   kind is detected from the JSON shape (a trace has "traceEvents"). *)

let read_json_file file =
  let ic =
    try open_in file
    with Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Obs.Json.parse s with
  | j -> j
  | exception Obs.Json.Parse_error msg ->
    Printf.eprintf "%s: invalid JSON: %s\n" file msg;
    exit 2

let obj_fields = function Obs.Json.Obj fs -> fs | _ -> []

let fnum name j =
  match Option.bind (Obs.Json.member name j) Obs.Json.to_float_opt with
  | Some v -> v
  | None -> 0.0

let is_trace j = Obs.Json.member "traceEvents" j <> None

(* Aggregate a Chrome trace's complete ("X") slices: name -> (count,
   total seconds). Durations in the file are microseconds. *)
let trace_slices j =
  let evs =
    match Obs.Json.member "traceEvents" j with
    | Some (Obs.Json.Arr l) -> l
    | _ -> []
  in
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun e ->
      match (Obs.Json.member "ph" e, Obs.Json.member "name" e) with
      | Some (Obs.Json.Str "X"), Some (Obs.Json.Str name) ->
        let c, t =
          match Hashtbl.find_opt tbl name with Some v -> v | None -> (0, 0.0)
        in
        Hashtbl.replace tbl name (c + 1, t +. (fnum "dur" e /. 1e6))
      | _ -> ())
    evs;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* The report sections that aggregate time per name, normalised to the
   same (name, count, total_s) shape as trace slices. *)
let report_timed prefix section j =
  obj_fields (Option.value ~default:(Obs.Json.Obj []) (Obs.Json.member section j))
  |> List.map (fun (name, v) ->
         (prefix ^ name, (int_of_float (fnum "count" v), fnum "total_s" v)))

let timed_entries j =
  if is_trace j then trace_slices j
  else report_timed "span:" "spans" j @ report_timed "phase:" "phases" j

let metric_summary m =
  match Obs.Json.member "type" m with
  | Some (Obs.Json.Str "counter") ->
    Printf.sprintf "counter    %.0f" (fnum "value" m)
  | Some (Obs.Json.Str "gauge") -> Printf.sprintf "gauge      %g" (fnum "value" m)
  | Some (Obs.Json.Str "histogram") ->
    Printf.sprintf "histogram  count=%.0f sum=%g p50=%g p90=%g" (fnum "count" m)
      (fnum "sum" m) (fnum "p50" m) (fnum "p90" m)
  | _ -> "?"

(* One number per metric for diffing: counters/gauges their value,
   histograms their sample count (the most interpretable delta). *)
let metric_num m =
  match Obs.Json.member "type" m with
  | Some (Obs.Json.Str "histogram") -> fnum "count" m
  | _ -> fnum "value" m

let obs_cat file =
  let j = read_json_file file in
  if is_trace j then begin
    let slices = trace_slices j in
    Printf.printf "flight trace %s\n" file;
    Printf.printf "%-28s %10s %14s\n" "slice" "count" "total_ms";
    List.iter
      (fun (name, (c, t)) ->
        Printf.printf "%-28s %10d %14.3f\n" name c (t *. 1e3))
      (List.sort
         (fun (_, (_, a)) (_, (_, b)) -> Float.compare b a)
         slices)
  end
  else begin
    Printf.printf "run report %s\n" file;
    print_endline "metrics:";
    List.iter
      (fun (name, m) -> Printf.printf "  %-30s %s\n" name (metric_summary m))
      (obj_fields
         (Option.value ~default:(Obs.Json.Obj []) (Obs.Json.member "metrics" j)));
    List.iter
      (fun (title, section) ->
        match Obs.Json.member section j with
        | Some (Obs.Json.Obj fields) when fields <> [] ->
          Printf.printf "%s:\n" title;
          List.iter
            (fun (name, v) ->
              Printf.printf "  %-30s count=%-8.0f total=%.6fs\n" name
                (fnum "count" v) (fnum "total_s" v))
            fields
        | _ -> ())
      [ ("spans", "spans"); ("phases", "phases") ];
    match Obs.Json.member "gc" j with
    | Some gc ->
      Printf.printf
        "gc: minor_words=%.3g major_words=%.3g top_heap_words=%.0f \
         live_words=%.0f\n"
        (fnum "minor_words" gc) (fnum "major_words" gc)
        (fnum "top_heap_words" gc) (fnum "live_words" gc)
    | None -> ()
  end

let obs_top file n =
  let j = read_json_file file in
  let entries =
    List.sort (fun (_, (_, a)) (_, (_, b)) -> Float.compare b a) (timed_entries j)
  in
  Printf.printf "%-34s %10s %14s\n" "hottest" "count" "total_ms";
  List.iteri
    (fun i (name, (c, t)) ->
      if i < n then Printf.printf "%-34s %10d %14.3f\n" name c (t *. 1e3))
    entries

let obs_diff file_a file_b =
  let a = read_json_file file_a and b = read_json_file file_b in
  if is_trace a <> is_trace b then begin
    Printf.eprintf "obs diff: cannot compare a trace with a run report\n";
    exit 2
  end;
  let pct dv v0 = if v0 = 0.0 then "" else Printf.sprintf " (%+.1f%%)" (100.0 *. dv /. v0) in
  if is_trace a then begin
    let sa = trace_slices a and sb = trace_slices b in
    let names =
      List.sort_uniq String.compare (List.map fst sa @ List.map fst sb)
    in
    Printf.printf "%-28s %14s %14s %14s\n" "slice" "a_total_ms" "b_total_ms" "delta";
    List.iter
      (fun name ->
        let tot l = match List.assoc_opt name l with Some (_, t) -> t | None -> 0.0 in
        let ta = tot sa *. 1e3 and tb = tot sb *. 1e3 in
        Printf.printf "%-28s %14.3f %14.3f %+13.3f%s\n" name ta tb (tb -. ta)
          (pct (tb -. ta) ta))
      names
  end
  else begin
    let metrics j =
      obj_fields
        (Option.value ~default:(Obs.Json.Obj []) (Obs.Json.member "metrics" j))
    in
    let ma = metrics a and mb = metrics b in
    let names =
      List.sort_uniq String.compare (List.map fst ma @ List.map fst mb)
    in
    Printf.printf "%-30s %14s %14s %14s\n" "metric" "a" "b" "delta";
    List.iter
      (fun name ->
        let v l = match List.assoc_opt name l with Some m -> metric_num m | None -> 0.0 in
        let va = v ma and vb = v mb in
        if va <> vb then
          Printf.printf "%-30s %14g %14g %+13g%s\n" name va vb (vb -. va)
            (pct (vb -. va) va))
      names;
    let ta = timed_entries a and tb = timed_entries b in
    let names =
      List.sort_uniq String.compare (List.map fst ta @ List.map fst tb)
    in
    if names <> [] then begin
      Printf.printf "%-30s %14s %14s %14s\n" "timing" "a_total_ms" "b_total_ms" "delta";
      List.iter
        (fun name ->
          let tot l = match List.assoc_opt name l with Some (_, t) -> t | None -> 0.0 in
          let va = tot ta *. 1e3 and vb = tot tb *. 1e3 in
          Printf.printf "%-30s %14.3f %14.3f %+13.3f%s\n" name va vb (vb -. va)
            (pct (vb -. va) va))
        names
    end
  end

let obs_tool_cmd =
  let file p docv =
    Arg.(required & pos p (some file) None & info [] ~docv ~doc:"Input file.")
  in
  let cat_cmd =
    Cmd.v
      (Cmd.info "cat" ~doc:"Pretty-print a run report or flight trace.")
      Term.(const (fun f -> obs_cat f; 0) $ file 0 "FILE")
  in
  let top_cmd =
    let n =
      Arg.(value & opt int 10 & info [ "n" ] ~docv:"N" ~doc:"Entries to show.")
    in
    Cmd.v
      (Cmd.info "top"
         ~doc:"Hottest spans/phases of a run report or flight trace.")
      Term.(const (fun f n -> obs_top f n; 0) $ file 0 "FILE" $ n)
  in
  let diff_cmd =
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Compare two run reports (metric and timing deltas) or two \
            flight traces (per-slice time deltas).")
      Term.(const (fun a b -> obs_diff a b; 0) $ file 0 "A" $ file 1 "B")
  in
  Cmd.group
    (Cmd.info "obs" ~doc:"Inspect telemetry artifacts (reports, flight traces).")
    [ cat_cmd; top_cmd; diff_cmd ]

(* ------------------------------------------------------------------ *)
(* `client` — the same queries, answered by a running quantd daemon.
   The daemon replies with pre-rendered text (built by the same
   Serve.Render / Serve.Models code the one-shot subcommands use), so
   stdout is byte-identical to the one-shot path, and exit codes follow
   the same contract: structured bad_request/unknown_method errors map
   to 2, deadline/resource/shutdown/internal/transport failures to 3. *)

let socket_arg =
  Arg.(
    value
    & opt string "quantd.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the quantd daemon listens on.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-request deadline in milliseconds; on expiry the daemon \
           abandons the query and replies deadline_exceeded (exit 3).")

let client_call ~socket ~meth ?deadline_ms params ~on_ok =
  match
    let c = Serve.Client.connect ~retries:1 socket in
    Fun.protect
      ~finally:(fun () -> Serve.Client.close c)
      (fun () -> Serve.Client.call c ~meth ?deadline_ms params)
  with
  | Ok result ->
    (match Obs.Json.member "text" result with
     | Some (Obs.Json.Str text) -> print_string text
     | _ -> print_endline (Obs.Json.to_string result));
    on_ok result
  | Error (code, msg) ->
    Printf.eprintf "quantcli client: %s: %s\n" code msg;
    (match code with
     | "bad_json" | "bad_request" | "unknown_method" -> 2
     | _ -> 3)
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "quantcli client: cannot reach daemon at %s: %s\n" socket
      (Unix.error_message e);
    3
  | exception Serve.Client.Protocol_error msg ->
    Printf.eprintf "quantcli client: protocol error: %s\n" msg;
    3

let client_check socket deadline_ms model n stats_json jobs =
  client_call ~socket ~meth:"check" ?deadline_ms
    ([
       ("model", Obs.Json.Str model);
       ("n", Obs.Json.Int n);
       ("stats_json", Obs.Json.Bool stats_json);
     ]
    @ match jobs with Some j -> [ ("jobs", Obs.Json.Int j) ] | None -> [])
    ~on_ok:(fun result ->
      match Obs.Json.member "all_hold" result with
      | Some (Obs.Json.Bool false) -> 1
      | _ -> 0)

let client_smc socket deadline_ms model trains runs seed =
  client_call ~socket ~meth:"smc" ?deadline_ms
    [
      ("model", Obs.Json.Str model);
      ("trains", Obs.Json.Int trains);
      ("runs", Obs.Json.Int runs);
      ("seed", Obs.Json.Int seed);
    ]
    ~on_ok:(fun _ -> 0)

let client_modes socket deadline_ms runs seed =
  client_call ~socket ~meth:"modes" ?deadline_ms
    [ ("runs", Obs.Json.Int runs); ("seed", Obs.Json.Int seed) ]
    ~on_ok:(fun _ -> 0)

let client_fuzz socket deadline_ms seed cases families no_shrink extrapolation =
  client_call ~socket ~meth:"fuzz" ?deadline_ms
    [
      ("seed", Obs.Json.Int seed);
      ("cases", Obs.Json.Int cases);
      ("families", Obs.Json.Arr (List.map (fun f -> Obs.Json.Str f) families));
      ("no_shrink", Obs.Json.Bool no_shrink);
      ( "extrapolation",
        Obs.Json.Str
          (match extrapolation with `None -> "none" | `K -> "k" | `Lu -> "lu") );
    ]
    ~on_ok:(fun result ->
      match Obs.Json.member "divergences" result with
      | Some (Obs.Json.Int d) when d > 0 -> 1
      | _ -> 0)

let client_metrics socket =
  client_call ~socket ~meth:"metrics" [] ~on_ok:(fun _ -> 0)

let client_ping socket =
  client_call ~socket ~meth:"ping" [] ~on_ok:(fun _ -> 0)

let client_cmd =
  let runs default =
    Arg.(
      value & opt int default
      & info [ "runs" ] ~docv:"RUNS" ~doc:"Simulation runs.")
  in
  let check =
    let model =
      Arg.(
        value
        & opt string "fischer"
        & info [ "model" ] ~docv:"M"
            ~doc:"Model to check: $(b,fischer) or $(b,train-gate).")
    in
    let n =
      Arg.(
        value & opt int 4
        & info [ "n" ] ~docv:"N"
            ~doc:"Processes (fischer) or trains (train-gate).")
    in
    let jobs =
      Arg.(
        value
        & opt (some int) None
        & info [ "jobs" ] ~docv:"N"
            ~doc:
              "Ask the daemon to explore with the sharded parallel engine \
               (capped by the daemon's own worker pool size).")
    in
    Cmd.v
      (Cmd.info "check" ~doc:"Model check on the daemon (warm caches).")
      Term.(
        const client_check $ socket_arg $ deadline_arg $ model $ n
        $ stats_json_arg $ jobs)
  in
  let smc =
    let model =
      Arg.(
        value
        & opt string "train-gate"
        & info [ "model" ] ~docv:"M"
            ~doc:"Model to analyse: $(b,train-gate) or $(b,fischer).")
    in
    Cmd.v
      (Cmd.info "smc"
         ~doc:
           "Statistical query on the daemon; concurrent smc requests are \
            fused into one sample batch without changing any result.")
      Term.(
        const client_smc $ socket_arg $ deadline_arg $ model $ trains_arg
        $ runs 500 $ seed_arg)
  in
  let modes =
    Cmd.v
      (Cmd.info "modes" ~doc:"BRP modes simulation on the daemon.")
      Term.(const client_modes $ socket_arg $ deadline_arg $ runs 2000 $ seed_arg)
  in
  let fuzz =
    let cases =
      Arg.(
        value & opt int 200
        & info [ "cases" ] ~docv:"N" ~doc:"Number of generated cases.")
    in
    let families =
      Arg.(
        value
        & opt_all string []
        & info [ "family" ] ~docv:"NAME"
            ~doc:"Restrict to one oracle family (repeatable).")
    in
    let no_shrink =
      Arg.(
        value & flag
        & info [ "no-shrink" ]
            ~doc:"Report divergences without minimizing them.")
    in
    let extrapolation =
      Arg.(
        value
        & opt (enum [ ("none", `None); ("k", `K); ("lu", `Lu) ]) `Lu
        & info [ "extrapolation" ] ~docv:"ABS"
            ~doc:"Zone-engine extrapolation: none, k or lu.")
    in
    Cmd.v
      (Cmd.info "fuzz"
         ~doc:
           "Differential fuzzing on the daemon (fault injection is \
            refused there: it would mutate shared process state).")
      Term.(
        const client_fuzz $ socket_arg $ deadline_arg $ seed_arg $ cases
        $ families $ no_shrink $ extrapolation)
  in
  let metrics =
    Cmd.v
      (Cmd.info "metrics"
         ~doc:
           "Scrape the daemon's metrics/spans/GC report plus its cache \
            occupancy, as one JSON object.")
      Term.(const client_metrics $ socket_arg)
  in
  let ping =
    Cmd.v
      (Cmd.info "ping" ~doc:"Liveness probe; prints the daemon's pid.")
      Term.(const client_ping $ socket_arg)
  in
  Cmd.group
    (Cmd.info "client"
       ~doc:
         "Run queries against a quantd daemon. Output bytes and exit codes \
          match the one-shot subcommands.")
    [ check; smc; modes; fuzz; metrics; ping ]

(* ------------------------------------------------------------------ *)

let () =
  let doc = "Quantitative modeling and analysis of embedded systems." in
  let info = Cmd.info "quantcli" ~version:"1.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            verify_cmd; smc_cmd; synth_cmd; wcet_cmd; brp_cmd; modes_cmd;
            modest_cmd; fischer_cmd; check_cmd; bip_cmd; mbt_cmd; fuzz_cmd;
            client_cmd; obs_tool_cmd;
          ]))
