(* quantd — the long-running analysis daemon.

   Serves check/smc/modes/fuzz/metrics queries as JSONL over a
   Unix-domain socket (see Serve.Protocol), keeping compiled models,
   reply caches and sealed-DBM intern tables warm between requests.
   Talk to it with `quantcli client --socket ...`.

   Exit codes: 0 graceful shutdown (SIGTERM/SIGINT), 2 usage,
   3 internal/startup failure (cmdliner's own parse errors keep its 124). *)

open Quantlib
open Cmdliner

let socket_arg =
  Arg.(
    value
    & opt string "quantd.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path to listen on (created at startup, \
              unlinked on shutdown; a stale file is replaced).")

let jobs_arg =
  let env = Cmd.Env.info "QUANTLIB_JOBS" ~doc:"Default value for $(b,--jobs)." in
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N" ~env
        ~doc:
          "Worker domains of the shared Monte-Carlo pool (1 = sequential). \
           Query results are identical for every value of $(docv).")

let mem_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "mem-budget" ] ~docv:"MB"
        ~doc:
          "Retained-heap budget in megabytes. Bounds the warm caches (LRU \
           eviction: anchors, then replies, then models) and every \
           exploration (a query over budget degrades into a structured \
           resource_exhausted reply instead of an OOM kill).")

let slow_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "Capture the flight-recorder timeline of any request slower than \
           $(docv) milliseconds as a Chrome trace (enables the recorder).")

let slow_dir_arg =
  Arg.(
    value & opt string "."
    & info [ "slow-trace-dir" ] ~docv:"DIR"
        ~doc:"Directory for $(b,--slow-ms) capture files (slow-<n>-<method>.json).")

let max_conns_arg =
  Arg.(
    value & opt int 128
    & info [ "max-conns" ] ~docv:"N" ~doc:"Concurrent connection cap.")

let run socket jobs mem_budget_mb slow_ms slow_dir max_conns =
  if jobs < 1 then begin
    prerr_endline "quantd: --jobs must be >= 1";
    exit 2
  end;
  (match mem_budget_mb with
   | Some mb when mb < 1 ->
     prerr_endline "quantd: --mem-budget must be >= 1 (megabytes)";
     exit 2
   | _ -> ());
  if max_conns < 1 then begin
    prerr_endline "quantd: --max-conns must be >= 1";
    exit 2
  end;
  if slow_ms <> None then Obs.Flight.enable ();
  let config =
    {
      Serve.Daemon.default_config with
      socket_path = socket;
      jobs;
      mem_budget_words =
        Option.map (fun mb -> mb * 1024 * 1024 / 8) mem_budget_mb;
      slow_ms;
      slow_trace_dir = Some slow_dir;
      max_conns;
    }
  in
  match Serve.Daemon.run ~config () with
  | () -> ()
  | exception Unix.Unix_error (e, fn, arg) ->
    Printf.eprintf "quantd: %s: %s (%s)\n" fn (Unix.error_message e) arg;
    exit 3
  | exception e ->
    Printf.eprintf "quantd: internal error: %s\n" (Printexc.to_string e);
    exit 3

let () =
  let doc = "Long-running quantitative-analysis service (JSONL over a Unix socket)." in
  let info = Cmd.info "quantd" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const run $ socket_arg $ jobs_arg $ mem_budget_arg $ slow_ms_arg
            $ slow_dir_arg $ max_conns_arg)))
