module Digital = Discrete.Digital
module Zone_graph = Ta.Zone_graph

type cost_model = {
  loc_rate : int -> int -> int;
  move_cost : Zone_graph.move -> int;
}

let free = { loc_rate = (fun _ _ -> 0); move_cost = (fun _ -> 0) }

type outcome = {
  cost : int;
  steps : string list;
  explored : int;
  stats : Engine.Stats.t;
  par : Engine.Core.par_info option;
}

let rate_of net cm (st : Digital.dstate) =
  let total = ref 0 in
  Array.iteri (fun i l -> total := !total + cm.loc_rate i l) st.Digital.dlocs;
  ignore net;
  !total

let trans_cost net cm st (t : Digital.dtrans) =
  match t.Digital.kind with
  | `Delay -> rate_of net cm st
  | `Act mv -> cm.move_cost mv

let trans_label (t : Digital.dtrans) =
  match t.Digital.kind with
  | `Delay -> "delay"
  | `Act mv -> mv.Zone_graph.mv_label

(* Dijkstra on the digital graph, generated on the fly: the engine core
   with a [best_cost] store and a cost-priority frontier. States carry
   their accumulated cost; re-improved states are re-enqueued and stale
   entries skipped at pop time, so a popped state's cost is optimal. *)
let min_cost_reach ?jobs ?pool net cm ~target =
  (* Keyed on the interned packed digital state: Dijkstra re-probes the
     best-cost table on every insert and every pop (staleness), so the
     memoized full-width hash pays off twice per state. *)
  let _spec, pack = Digital.codec net in
  let key (st, _) = pack st in
  let successors (st, cost) =
    List.map
      (fun t ->
        (trans_label t, (t.Digital.target, cost + trans_cost net cm st t)))
      (Digital.successors net st)
  in
  let on_state (st, cost) = if target st then Some cost else None in
  let out =
    match jobs with
    | Some j ->
      if j < 1 then invalid_arg "Cora: jobs must be >= 1";
      (* Sharded cost search is Bellman-Ford-flavoured rather than
         Dijkstra: each shard relaxes its frontier in rounds, cheaper
         paths re-open settled keys, and the run ends at quiescence —
         no relaxation pending anywhere — rather than at the first
         target pop. Every witness cost is collected and the minimum
         returned, so the answer (and all stats) is identical for every
         [j >= 1]; termination holds because costs are non-negative and
         a key re-opens only on a strictly cheaper path. *)
      let mk_pool f =
        match pool with
        | Some p -> f (Some p)
        | None ->
          if j <= 1 then f None
          else Par.Pool.with_pool ~jobs:j (fun p -> f (Some p))
      in
      mk_pool (fun pool ->
          Engine.Core.run_sharded ~max_states:max_int ~stop_on_found:false
            ~prefer:compare ?pool
            ~store:(fun () -> Engine.Store.best_cost_keyed ~size_hint:256 ~cost:snd ())
            ~key ~successors ~on_state
            ~init:(Digital.initial net, 0)
            ())
    | None ->
      let store = Engine.Store.best_cost ~key ~cost:snd () in
      Engine.Core.run ~max_states:max_int ~order:(Engine.Core.Priority snd)
        ~store ~successors ~on_state
        ~init:(Digital.initial net, 0)
        ()
  in
  Option.map
    (fun (cost, steps) ->
      {
        cost;
        steps = List.map fst steps;
        (* The target pop itself is not an expansion. *)
        explored = out.Engine.Core.stats.Engine.Stats.visited - 1;
        stats = out.Engine.Core.stats;
        par = out.Engine.Core.par;
      })
    out.Engine.Core.found

(* Longest path to the target over the reachable digital graph, via the
   SCC condensation: a cycle (SCC) containing a positive-cost edge from
   which the target is still reachable makes the worst case unbounded;
   all remaining cycles cost 0, so paths never gain by looping and the
   condensation DAG dynamic program is exact (edges within a zero-cost
   SCC contribute nothing; cross edges carry their costs). *)
let max_cost_reach net cm ~target =
  let graph = Digital.explore net in
  let n = Array.length graph.Digital.states in
  let id_of st = Digital.id_of graph st in
  (* Targets are absorbing, so the SCC decomposition must not follow
     their outgoing edges (a target can then never sit on a cycle). *)
  let succs id =
    if target graph.Digital.states.(id) then []
    else
      List.map (fun t -> id_of t.Digital.target) graph.Digital.transitions.(id)
  in
  let comp, n_comps = Quant_util.Scc.compute ~n ~succs in
  (* best.(c): largest cost from component c to a target, None when the
     target is unreachable from c. Component ids are in reverse
     topological order, so increasing order visits successors first. *)
  let best = Array.make n_comps None in
  let members = Array.make n_comps [] in
  for id = n - 1 downto 0 do
    members.(comp.(id)) <- id :: members.(comp.(id))
  done;
  let improve c v =
    match best.(c) with Some b when b >= v -> () | _ -> best.(c) <- Some v
  in
  let unbounded = ref false in
  (* Target states are absorbing: the question is the worst cost until
     the target is first reached, so their outgoing edges are ignored. *)
  for c = 0 to n_comps - 1 do
    List.iter
      (fun id ->
        let st = graph.Digital.states.(id) in
        if target st then improve c 0
        else
          List.iter
            (fun t ->
              let cost = trans_cost net cm st t in
              let c' = comp.(id_of t.Digital.target) in
              if c' <> c then
                match best.(c') with
                | Some b -> improve c (cost + b)
                | None -> ())
            graph.Digital.transitions.(id))
      members.(c)
  done;
  (* Unboundedness: a positive-cost edge inside an SCC of non-target
     states from which the target is still reachable. *)
  for id = 0 to n - 1 do
    let st = graph.Digital.states.(id) in
    if not (target st) then
      List.iter
        (fun t ->
          let cost = trans_cost net cm st t in
          let tid = id_of t.Digital.target in
          if cost > 0 && comp.(tid) = comp.(id)
             && (not (target graph.Digital.states.(tid)))
             && best.(comp.(id)) <> None
          then unbounded := true)
        graph.Digital.transitions.(id)
  done;
  if !unbounded then `Unbounded
  else
    match best.(comp.(id_of (Digital.initial net))) with
    | Some c -> `Cost (c, n)
    | None -> `Unreachable

(* Elapsed time = rate 1 globally, attributed to component 0 so the sum
   over the location vector stays 1. *)
let min_time_reach net ~target =
  min_cost_reach net
    { free with loc_rate = (fun a _ -> if a = 0 then 1 else 0) }
    ~target
