(** Priced-reachability algorithms (see {!Priced} for the library root).

    A cost model annotates a network with location cost {e rates} (cost
    per time unit, summed over the location vector) and per-move firing
    costs. Minimum-cost reachability runs Dijkstra on the digital-clocks
    graph; maximum-cost reachability (the WCET question of the METAMOC
    application, ref. [4] of the paper) runs a longest-path pass that
    rejects positive-cost cycles.

    Exact for closed, diagonal-free models — which priced models here are
    by construction ({!Digital.is_closed} is enforced). *)

type cost_model = {
  loc_rate : int -> int -> int;
      (** [loc_rate auto loc] — cost per time unit while [auto] stays at
          [loc]; the network's rate is the sum over components. *)
  move_cost : Ta.Zone_graph.move -> int;  (** firing cost of a move *)
}

(** Zero-cost model (useful as a base to override). *)
val free : cost_model

type outcome = {
  cost : int;
  steps : string list;  (** labels of an optimal run, ["delay"] for waits *)
  explored : int;  (** digital states expanded before the target popped *)
  stats : Engine.Stats.t;  (** the engine run's full instrumentation *)
  par : Engine.Core.par_info option;
      (** sharded-run observables when run with [jobs], else [None] *)
}

(** [min_cost_reach net cm ~target] is the cheapest cost to reach a state
    whose discrete part satisfies [target], or [None] if unreachable.
    Runs Dijkstra on the shared {!Engine.Core}: a {!Engine.Store.best_cost}
    store with a cost-priority frontier.

    With [jobs] the search runs on the sharded parallel core in
    Bellman-Ford style: shards relax their frontiers in barrier rounds,
    cheaper paths re-open settled keys, and the run ends at quiescence
    with the minimum over all collected target costs. The optimal cost
    is identical to Dijkstra's; the reported witness run, [explored]
    and store stats are deterministic per mode but differ between the
    sequential and the sharded search order. [pool] reuses a
    caller-owned domain pool. *)
val min_cost_reach :
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Ta.Model.network ->
  cost_model ->
  target:(Discrete.Digital.dstate -> bool) ->
  outcome option

(** [max_cost_reach net cm ~target] is the worst-case cost over all runs
    that reach [target], for WCET-style questions.
    [`Unbounded] reports a reachable positive-cost cycle from which the
    target is still reachable. [`Unreachable] if no run reaches it. *)
val max_cost_reach :
  Ta.Model.network ->
  cost_model ->
  target:(Discrete.Digital.dstate -> bool) ->
  [ `Cost of int * int | `Unbounded | `Unreachable ]
(** [`Cost (cost, explored)] *)

(** [min_time_reach net ~target] is minimum-cost reachability under the
    uniform rate 1 (elapsed time), UPPAAL-CORA's most common use. *)
val min_time_reach :
  Ta.Model.network ->
  target:(Discrete.Digital.dstate -> bool) ->
  outcome option
