type t = { sys : System.t; module_names : string list; controlled : bool }

let module_names =
  [ "RFLEX"; "NDD"; "POM"; "LaserRF"; "Camera"; "Platine"; "Science"; "Antenna"; "Battery" ]

(* Dependencies: a module may be active only while all its suppliers are;
   a supplier's failure must stop it. *)
let dependencies = [ ("NDD", [ "RFLEX"; "POM"; "Battery" ]); ("Camera", [ "Platine" ]) ]

(* Mutual exclusions (resource/safety conflicts). *)
let mutexes = [ ("NDD", "Science"); ("Science", "Antenna") ]

(* Location indices of the generic service component. *)
let idle = 0
let ready = 1
let active = 2
let failed = 3

let service_component name =
  let b = Component.create name in
  let l_idle = Component.add_location b "Idle" in
  let l_ready = Component.add_location b "Ready" in
  let l_active = Component.add_location b "Active" in
  let l_failed = Component.add_location b "Failed" in
  assert (l_idle = idle && l_ready = ready && l_active = active && l_failed = failed);
  let p_init = Component.add_port b "init" in
  let p_start = Component.add_port b "start" in
  let p_stop = Component.add_port b "stop" in
  let p_fail = Component.add_port b "fail" in
  Component.set_initial b l_idle;
  Component.add_transition b ~src:l_idle ~dst:l_ready ~port:p_init ();
  Component.add_transition b ~src:l_ready ~dst:l_active ~port:p_start ();
  Component.add_transition b ~src:l_active ~dst:l_ready ~port:p_stop ();
  (* [stop] is accepted (as a no-op) in Ready so that failure broadcasts
     can always take the dependent along. *)
  Component.add_transition b ~src:l_ready ~dst:l_ready ~port:p_stop ();
  Component.add_transition b ~src:l_ready ~dst:l_failed ~port:p_fail ();
  Component.add_transition b ~src:l_active ~dst:l_failed ~port:p_fail ();
  (* Recovery: re-initialisation repairs a failed module. *)
  Component.add_transition b ~src:l_failed ~dst:l_ready ~port:p_init ();
  Component.build b

let make ?(modules = module_names) ~controlled () =
  let module_names =
    (* Keep canonical order; validate names. *)
    List.filter (fun n -> List.mem n modules) module_names
  in
  if List.length module_names <> List.length modules then
    invalid_arg "Dala.make: unknown module name";
  let dependencies =
    List.filter_map
      (fun (m, deps) ->
        if List.mem m module_names then
          Some (m, List.filter (fun d -> List.mem d module_names) deps)
        else None)
      dependencies
  in
  let mutexes =
    List.filter
      (fun (a, b) -> List.mem a module_names && List.mem b module_names)
      mutexes
  in
  let modules = List.map service_component module_names in
  let index name =
    let rec find k = function
      | [] -> invalid_arg ("Dala: unknown module " ^ name)
      | n :: rest -> if String.equal n name then k else find (k + 1) rest
    in
    find 0 module_names
  in
  let comp_of name = List.nth modules (index name) in
  if not controlled then begin
    (* Baseline: every service is a singleton connector; nothing
       coordinates the modules. *)
    let connectors =
      List.concat_map
        (fun name ->
          let c = comp_of name in
          let ci = index name in
          List.map
            (fun port_name ->
              System.Rendezvous
                {
                  c_name = Printf.sprintf "%s_%s" port_name name;
                  members = [ (ci, Component.port_by_name c port_name) ];
                  guard = None;
                  action = None;
                })
            [ "init"; "start"; "stop"; "fail" ])
        module_names
    in
    {
      sys =
        System.make ~components:(Array.of_list modules) ~connectors ();
      module_names;
      controlled;
    }
  end
  else begin
    (* R2C execution controller: one location, a mirror variable per
       module, one permission port per service. *)
    let n_modules = List.length module_names in
    let r2c_index = n_modules in
    let cb = Component.create "R2C" in
    let l_ctl = Component.add_location cb "Ctl" in
    Component.set_initial cb l_ctl;
    let mirror = List.map (fun name -> (name, Component.add_var cb ("st_" ^ name))) module_names in
    let mirror_of name = List.assoc name mirror in
    let deps_of name = try List.assoc name dependencies with Not_found -> [] in
    let mutex_partners name =
      List.filter_map
        (fun (a, b) ->
          if String.equal a name then Some b
          else if String.equal b name then Some a
          else None)
        mutexes
    in
    let dependants_of name =
      List.filter_map
        (fun (m, deps) -> if List.mem name deps then Some m else None)
        dependencies
    in
    let ports =
      List.map
        (fun name ->
          let v = mirror_of name in
          let p_ok_init = Component.add_port cb ("ok_init_" ^ name) in
          (* Re-initialisation is always permitted; it repairs faults. *)
          Component.add_transition cb ~src:l_ctl ~dst:l_ctl ~port:p_ok_init
            ~update:(fun s -> s.(v) <- ready)
            ();
          let p_ok_start = Component.add_port cb ("ok_start_" ^ name) in
          let deps = List.map mirror_of (deps_of name) in
          let rivals = List.map mirror_of (mutex_partners name) in
          Component.add_transition cb ~src:l_ctl ~dst:l_ctl ~port:p_ok_start
            ~guard:(fun s ->
              List.for_all (fun d -> s.(d) = active) deps
              && List.for_all (fun r -> s.(r) <> active) rivals)
            ~update:(fun s -> s.(v) <- active)
            ();
          let p_ok_stop = Component.add_port cb ("ok_stop_" ^ name) in
          let dependants = List.map mirror_of (dependants_of name) in
          (* A supplier may be stopped only while no dependant runs. *)
          Component.add_transition cb ~src:l_ctl ~dst:l_ctl ~port:p_ok_stop
            ~guard:(fun s -> List.for_all (fun d -> s.(d) <> active) dependants)
            ~update:(fun s -> s.(v) <- ready)
            ();
          let p_note_fail = Component.add_port cb ("note_fail_" ^ name) in
          Component.add_transition cb ~src:l_ctl ~dst:l_ctl ~port:p_note_fail
            ~update:(fun s ->
              s.(v) <- failed;
              (* Dependants are stopped by the same broadcast. *)
              List.iter
                (fun d -> if s.(d) = active then s.(d) <- ready)
                dependants)
            ();
          (name, (p_ok_init, p_ok_start, p_ok_stop, p_note_fail)))
        module_names
    in
    let r2c = Component.build cb in
    let components = Array.of_list (modules @ [ r2c ]) in
    let connectors =
      List.concat_map
        (fun name ->
          let c = comp_of name in
          let ci = index name in
          let p_ok_init, p_ok_start, p_ok_stop, p_note_fail =
            List.assoc name ports
          in
          let rdv cname mport rport =
            System.Rendezvous
              {
                c_name = cname;
                members =
                  [ (ci, Component.port_by_name c mport); (r2c_index, rport) ];
                guard = None;
                action = None;
              }
          in
          [
            rdv (Printf.sprintf "init_%s" name) "init" p_ok_init;
            rdv (Printf.sprintf "start_%s" name) "start" p_ok_start;
            rdv (Printf.sprintf "stop_%s" name) "stop" p_ok_stop;
            (* Failure broadcast: the module fails, R2C records it, and
               every dependent module is stopped in the same interaction
               (maximal progress makes enabled dependants join). *)
            System.Broadcast
              {
                c_name = Printf.sprintf "fail_%s" name;
                trigger = (ci, Component.port_by_name c "fail");
                synchrons =
                  (r2c_index, p_note_fail)
                  :: List.map
                       (fun dep ->
                         ( index dep,
                           Component.port_by_name (comp_of dep) "stop" ))
                       (dependants_of name);
                action = None;
              };
          ])
        module_names
    in
    {
      sys = System.make ~components ~connectors ();
      module_names;
      controlled;
    }
  end

let safety_ok d (st : Exec.state) =
  let index name =
    let rec find k = function
      | [] -> raise Not_found
      | n :: rest -> if String.equal n name then k else find (k + 1) rest
    in
    find 0 d.module_names
  in
  let present name = List.mem name d.module_names in
  let at name = st.Exec.locs.(index name) in
  List.for_all
    (fun (m, deps) ->
      (not (present m))
      || at m <> active
      || List.for_all (fun dep -> (not (present dep)) || at dep = active) deps)
    dependencies
  && List.for_all
       (fun (a, b) ->
         (not (present a && present b)) || not (at a = active && at b = active))
       mutexes

type injection_report = {
  runs : int;
  steps_per_run : int;
  faults_injected : int;
  violations : int;
}

let inject_faults d ~runs ~steps ~seed =
  let faults = ref 0 and violations = ref 0 in
  for k = 1 to runs do
    let rng = Random.State.make [| seed; k |] in
    let trace = Exec.run d.sys (Exec.Random rng) ~steps in
    List.iter
      (fun (name, st) ->
        if String.length name >= 5 && String.sub name 0 5 = "fail_" then
          incr faults;
        if not (safety_ok d st) then incr violations)
      trace
  done;
  { runs; steps_per_run = steps; faults_injected = !faults; violations = !violations }
