(** D-Finder-lite: compositional deadlock-freedom proof (ref. [23]).

    The sound over-approximation combines:
    - {e component invariants}: per-component locally reachable locations
      (computed assuming every port is always available);
    - {e interaction invariants}: initially-marked traps of the 1-safe
      Petri net underlying the composition ("at least one place of every
      initially marked trap stays occupied") plus P-semiflows (linear
      place invariants computed by Martinez-Silva elimination).

    A global location vector is a {e deadlock candidate} when no
    interaction is {e surely} enabled there (guarded transitions and
    guarded interactions may be disabled, so they never count as sure).
    If no candidate satisfies all invariants, the system is proven
    deadlock-free without exploring the product. Otherwise the result is
    inconclusive and the caller should fall back to {!Exec.deadlock_free}. *)

type verdict =
  | Proved  (** compositional proof succeeded *)
  | Inconclusive of int array list
      (** surviving candidate location vectors (possibly spurious) *)

type report = {
  verdict : verdict;
  n_traps : int;
  n_semiflows : int;
  n_candidates_checked : int;
}

(** [prove sys] runs the compositional analysis. [max_candidates]
    (default 1_000_000) bounds the candidate enumeration; exceeding it
    yields [Inconclusive []]. *)
val prove : ?max_candidates:int -> System.t -> report

(** [check sys] — compositional first, exact fallback: the combined,
    always-conclusive check. Returns (deadlock-free, used-fallback). *)
val check : ?max_candidates:int -> System.t -> bool * bool
