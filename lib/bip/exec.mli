(** The centralized BIP execution engine and reachability analysis.

    Each step: compute enabled interactions (port-enabled on every
    participant, interaction guard true), filter by priorities and by
    broadcast maximal progress, let the scheduler choose one, execute its
    data transfer and the participants' transitions. This is the
    operational semantics behind BIP's "correct code for component
    coordination". *)

type state = { locs : int array; stores : int array array }

(** Scheduler policy for the remaining nondeterminism. *)
type scheduler =
  | First  (** deterministic: lowest interaction id *)
  | Random of Random.State.t

val initial : System.t -> state

(** [enabled sys st] — guard-true, port-enabled interactions,
    {e before} priority filtering. *)
val enabled : System.t -> state -> System.interaction list

(** [filtered sys st] — after priority rules and broadcast maximality. *)
val filtered : System.t -> state -> System.interaction list

(** [step sys sched st] fires one interaction, or [None] on deadlock. *)
val step :
  System.t -> scheduler -> state -> (System.interaction * state) option

(** [run sys sched ~steps] — labelled trace from the initial state
    (stops early on deadlock). *)
val run :
  System.t -> scheduler -> steps:int -> (string * state) list

type reach_result = {
  states : state list;
  deadlocks : state list;
  truncated : bool;
}

(** [codec sys] is the packed codec of [sys]'s states — one location
    field per component, one word per local variable — and its interning
    packer. One spec per system. *)
val codec :
  System.t -> Engine.Codec.spec * (state -> Engine.Codec.packed)

(** [reachable sys] — exhaustive exploration (default cap 1_000_000),
    seen set keyed on the interned packed encoding. *)
val reachable : ?max_states:int -> System.t -> reach_result

(** [invariant_holds sys pred] — exact check over the reachable graph;
    returns a counterexample state when violated. *)
val invariant_holds :
  ?max_states:int -> System.t -> (state -> bool) -> (bool * state option)

(** [deadlock_free sys] — exact check; counterexample on failure. *)
val deadlock_free : ?max_states:int -> System.t -> bool * state option

val pp_state : System.t -> Format.formatter -> state -> unit
