type verdict = Proved | Inconclusive of int array list

type report = {
  verdict : verdict;
  n_traps : int;
  n_semiflows : int;
  n_candidates_checked : int;
}

(* Places are (component, location), flattened to ints. *)
type net = {
  offsets : int array; (* place id of (ci, 0) *)
  n_places : int;
  transitions : (int list * int list) list; (* (consumed, produced) *)
}

let place net ci loc = net.offsets.(ci) + loc

let build_net (sys : System.t) =
  let n = Array.length sys.components in
  let offsets = Array.make n 0 in
  let total = ref 0 in
  Array.iteri
    (fun ci (c : Component.t) ->
      offsets.(ci) <- !total;
      total := !total + Array.length c.Component.locations)
    sys.components;
  let net = { offsets; n_places = !total; transitions = [] } in
  (* One Petri transition per interaction per combination of participant
     transitions on the matching ports (guards ignored: over-approx). *)
  let transitions = ref [] in
  Array.iter
    (fun (i : System.interaction) ->
      let rec combos acc = function
        | [] -> [ List.rev acc ]
        | (ci, (p : Component.port)) :: rest ->
          let c = sys.components.(ci) in
          let ts =
            Array.to_list c.Component.transitions
            |> List.concat
            |> List.filter (fun (t : Component.transition) ->
                   t.Component.t_port = p.Component.port_id)
          in
          List.concat_map (fun t -> combos ((ci, t) :: acc) rest) ts
      in
      List.iter
        (fun combo ->
          if combo <> [] then begin
            let consumed =
              List.map
                (fun (ci, (t : Component.transition)) ->
                  place net ci t.Component.t_src)
                combo
            in
            let produced =
              List.map
                (fun (ci, (t : Component.transition)) ->
                  place net ci t.Component.t_dst)
                combo
            in
            transitions := (consumed, produced) :: !transitions
          end)
        (combos [] i.System.i_ports))
    sys.interactions;
  { net with transitions = !transitions }

(* Smallest trap-closed superset of [seed] under the "add all produced
   places" rule: for any net transition consuming from S but producing
   nothing into S, add its whole postset. The result is a trap. *)
let trap_closure net seed =
  let in_set = Array.make net.n_places false in
  List.iter (fun p -> in_set.(p) <- true) seed;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (consumed, produced) ->
        if List.exists (fun p -> in_set.(p)) consumed
           && not (List.exists (fun p -> in_set.(p)) produced)
        then begin
          List.iter (fun p -> in_set.(p) <- true) produced;
          changed := true
        end)
      net.transitions
  done;
  in_set

(* Minimal P-semiflows by the Martinez-Silva elimination: maintain rows
   [C-part | y-part]; eliminating one transition column at a time by
   non-negative combination of rows with opposite signs. Surviving rows
   have y . C = 0, i.e. y . m is constant on all reachable markings. *)
let semiflows net ~max_rows =
  let transitions = Array.of_list net.transitions in
  let n_t = Array.length transitions in
  let incidence p t =
    let consumed, produced = transitions.(t) in
    let count x xs = List.length (List.filter (fun q -> q = x) xs) in
    count p produced - count p consumed
  in
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let normalize (c, y) =
    let g =
      Array.fold_left
        (fun acc v -> gcd acc (abs v))
        (Array.fold_left (fun acc v -> gcd acc (abs v)) 0 c)
        y
    in
    if g > 1 then
      (Array.map (fun v -> v / g) c, Array.map (fun v -> v / g) y)
    else (c, y)
  in
  let rows =
    ref
      (List.init net.n_places (fun p ->
           ( Array.init n_t (fun t -> incidence p t),
             Array.init net.n_places (fun q -> if q = p then 1 else 0) )))
  in
  let ok = ref true in
  (try
     for t = 0 to n_t - 1 do
       let zero, pos, neg =
         List.fold_left
           (fun (z, p, n) ((c, _) as row) ->
             if c.(t) = 0 then (row :: z, p, n)
             else if c.(t) > 0 then (z, row :: p, n)
             else (z, p, row :: n))
           ([], [], []) !rows
       in
       let combined =
         List.concat_map
           (fun (c1, y1) ->
             List.map
               (fun (c2, y2) ->
                 let a = -c2.(t) and b = c1.(t) in
                 (* a > 0, b > 0: non-negative combination. *)
                 normalize
                   ( Array.init n_t (fun k -> (a * c1.(k)) + (b * c2.(k))),
                     Array.init net.n_places (fun k ->
                         (a * y1.(k)) + (b * y2.(k))) ))
               neg)
           pos
       in
       rows := List.sort_uniq compare (zero @ combined);
       if List.length !rows > max_rows then begin
         ok := false;
         raise Exit
       end
     done
   with Exit -> ());
  if not !ok then []
  else
    List.filter_map
      (fun (_, y) -> if Array.exists (fun v -> v > 0) y then Some y else None)
      !rows

(* Locally reachable locations of one component, assuming all ports are
   always offered and ignoring guards (an over-approximation of the
   projection of the real reachable set). *)
let local_reach (c : Component.t) =
  let n = Array.length c.Component.locations in
  let seen = Array.make n false in
  let rec visit l =
    if not seen.(l) then begin
      seen.(l) <- true;
      List.iter
        (fun (t : Component.transition) -> visit t.Component.t_dst)
        c.Component.transitions.(l)
    end
  in
  visit c.Component.initial_loc;
  seen

(* An interaction is surely enabled at a location vector when every
   participant has an unguarded transition on its port from its location
   and the interaction itself has no guard. *)
let surely_enabled (sys : System.t) locs (i : System.interaction) =
  i.System.i_guard = None
  && List.for_all
       (fun (ci, (p : Component.port)) ->
         List.exists
           (fun (t : Component.transition) ->
             t.Component.t_port = p.Component.port_id
             && not t.Component.t_has_guard)
           sys.components.(ci).Component.transitions.(locs.(ci)))
       i.System.i_ports

let prove ?(max_candidates = 1_000_000) (sys : System.t) =
  let net = build_net sys in
  (* Interaction invariants: one marked trap per initial place. *)
  let init_places =
    Array.to_list
      (Array.mapi
         (fun ci (c : Component.t) -> place net ci c.Component.initial_loc)
         sys.components)
  in
  let traps =
    List.sort_uniq compare (List.map (fun p -> trap_closure net [ p ]) init_places)
  in
  let flows = semiflows net ~max_rows:5000 in
  let init_value y =
    List.fold_left (fun acc p -> acc + y.(p)) 0 init_places
  in
  let flow_consts = List.map (fun y -> (y, init_value y)) flows in
  let locals = Array.map local_reach sys.components in
  let n = Array.length sys.components in
  (* Enumerate candidate vectors over the local invariants, pruning with
     the trap invariants, and keep those where nothing is surely
     enabled. *)
  let survivors = ref [] in
  let checked = ref 0 in
  let exception Too_many in
  let vec = Array.make n 0 in
  (try
     let rec enum ci =
       if ci = n then begin
         incr checked;
         if !checked > max_candidates then raise Too_many;
         let locs = Array.copy vec in
         let trap_ok trap =
           Array.exists
             (fun ci' -> trap.(place net ci' locs.(ci')))
             (Array.init n Fun.id)
         in
         let flow_ok (y, v0) =
           let v =
             Array.to_list (Array.mapi (fun ci' l -> y.(place net ci' l)) locs)
             |> List.fold_left ( + ) 0
           in
           v = v0
         in
         if
           List.for_all trap_ok traps
           && List.for_all flow_ok flow_consts
           && not
                (Array.exists (surely_enabled sys locs) sys.interactions)
         then survivors := locs :: !survivors
       end
       else
         Array.iteri
           (fun l ok ->
             if ok then begin
               vec.(ci) <- l;
               enum (ci + 1)
             end)
           locals.(ci)
     in
     enum 0;
     let verdict =
       match !survivors with
       | [] -> Proved
       | s -> Inconclusive (List.rev s)
     in
     {
       verdict;
       n_traps = List.length traps;
       n_semiflows = List.length flows;
       n_candidates_checked = !checked;
     }
   with Too_many ->
     {
       verdict = Inconclusive [];
       n_traps = List.length traps;
       n_semiflows = List.length flows;
       n_candidates_checked = !checked;
     })

let check ?max_candidates sys =
  match (prove ?max_candidates sys).verdict with
  | Proved -> (true, false)
  | Inconclusive _ -> (fst (Exec.deadlock_free sys), true)
