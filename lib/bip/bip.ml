(** BIP: behaviour–interaction–priority component systems.

    The library's units under their public names; [Engine] (execution
    and exhaustive reachability) lives in the [Exec] unit so that the
    shared exploration engine library stays addressable as [Engine]
    inside this library. *)

module Component = Component
module System = System
module Engine = Exec
module Dfinder = Dfinder
module Dala = Dala
module Codegen = Codegen
module Transform = Transform
