(** The DALA rover functional level in BIP (Section IV, Fig. 6).

    Nine functional modules from the figure — RFLEX (base), NDD (motion
    planner), POM (position manager), LaserRF, Camera, Platine (pan-tilt
    unit), Science, Antenna, Battery — each a generic service component
    (Idle/Ready/Active/Failed), composed with an R2C-style execution
    controller that tracks module states through synchronised
    interactions and {e refuses} service requests that would violate the
    safety rules:

    - NDD may start only when RFLEX, POM are active and the battery is ok;
    - Camera may start only when Platine is active;
    - Science may start only while NDD is inactive (rover stationary);
    - Antenna may start only while Science is inactive (power budget);
    - module failures force dependent modules to stop first (priorities).

    [make ~controlled:false] wires the same modules without the
    controller — the configuration used as the fault-injection baseline. *)

type t = {
  sys : System.t;
  module_names : string list;
  controlled : bool;
}

(** [make ~controlled ()] builds the composite; [modules] (default: all
    of {!module_names}) restricts to a subsystem — dependencies and
    mutexes among absent modules are dropped. *)
val make : ?modules:string list -> controlled:bool -> unit -> t

val module_names : string list

(** [safety_ok d st] — the conjunction of the safety rules above. *)
val safety_ok : t -> Exec.state -> bool

type injection_report = {
  runs : int;
  steps_per_run : int;
  faults_injected : int;
  violations : int;  (** states violating {!safety_ok} across all runs *)
}

(** [inject_faults d ~runs ~steps ~seed] drives the engine with a random
    scheduler (fault interactions included) and counts safety
    violations. With the controller, [violations] must be 0. *)
val inject_faults : t -> runs:int -> steps:int -> seed:int -> injection_report
