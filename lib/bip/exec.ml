type state = { locs : int array; stores : int array array }
type scheduler = First | Random of Random.State.t

(* Engine instruments: enabled/inhibited are counted in [filtered] (the
   single choke point both execution and exhaustive reachability go
   through); fired interactions are counted where a scheduler commits. *)
let m_fired = Obs.counter "bip.interactions_fired"
let m_enabled = Obs.counter "bip.interactions_enabled"
let m_inhibited = Obs.counter "bip.priority_inhibited"
let m_steps = Obs.counter "bip.steps"

let initial (sys : System.t) =
  {
    locs = Array.map (fun (c : Component.t) -> c.Component.initial_loc) sys.components;
    stores =
      Array.map
        (fun (c : Component.t) -> Array.copy c.Component.initial_store)
        sys.components;
  }

let interaction_enabled (sys : System.t) st (i : System.interaction) =
  List.for_all
    (fun (ci, (p : Component.port)) ->
      Component.port_enabled sys.components.(ci) ~loc:st.locs.(ci)
        ~store:st.stores.(ci) p.Component.port_id)
    i.System.i_ports
  && (match i.System.i_guard with
      | None -> true
      | Some g -> g st.locs st.stores)

let enabled (sys : System.t) st =
  Array.to_list sys.interactions |> List.filter (interaction_enabled sys st)

let port_set (i : System.interaction) =
  List.map (fun (ci, (p : Component.port)) -> (ci, p.Component.port_id)) i.System.i_ports
  |> List.sort compare

let filtered (sys : System.t) st =
  let en = enabled sys st in
  let inhibited_by_priority (a : System.interaction) =
    List.exists
      (fun (r : System.priority) ->
        String.equal r.System.low a.System.i_name
        && (match r.System.when_ with
            | None -> true
            | Some c -> c st.locs st.stores)
        && List.exists
             (fun (b : System.interaction) ->
               String.equal b.System.i_name r.System.high)
             en)
      sys.priorities
  in
  let inhibited_by_maximality (a : System.interaction) =
    sys.broadcast_maximal
    &&
    let pa = port_set a in
    List.exists
      (fun (b : System.interaction) ->
        b.System.i_id <> a.System.i_id
        &&
        let pb = port_set b in
        List.length pb > List.length pa
        && List.for_all (fun p -> List.mem p pb) pa)
      en
  in
  let kept =
    List.filter
      (fun a -> not (inhibited_by_priority a || inhibited_by_maximality a))
      en
  in
  Obs.Metrics.Counter.add m_enabled (List.length en);
  Obs.Metrics.Counter.add m_inhibited (List.length en - List.length kept);
  kept

let copy_state st =
  { locs = Array.copy st.locs; stores = Array.map Array.copy st.stores }

(* Fire [i]: data transfer first (BIP's up/down), then each participant
   takes one enabled transition on its port (scheduler-resolved when a
   component offers several). *)
let fire (sys : System.t) sched st (i : System.interaction) =
  let st' = copy_state st in
  (match i.System.i_action with None -> () | Some act -> act st'.stores);
  List.iter
    (fun (ci, (p : Component.port)) ->
      let c = sys.components.(ci) in
      (* Enabledness was established on the pre-transfer store; the
         transition itself is chosen on the current one, falling back to
         the port's transitions if the transfer changed guard values. *)
      let candidates =
        match
          Component.transitions_on c ~loc:st'.locs.(ci) ~store:st'.stores.(ci)
            p.Component.port_id
        with
        | [] ->
          Component.transitions_on c ~loc:st.locs.(ci) ~store:st.stores.(ci)
            p.Component.port_id
        | ts -> ts
      in
      let t =
        match candidates, sched with
        | [], _ -> assert false
        | [ t ], _ -> t
        | t :: _, First -> t
        | ts, Random rng -> List.nth ts (Random.State.int rng (List.length ts))
      in
      t.Component.t_update st'.stores.(ci);
      st'.locs.(ci) <- t.Component.t_dst)
    i.System.i_ports;
  st'

let step sys sched st =
  Obs.Metrics.Counter.incr m_steps;
  match filtered sys st with
  | [] -> None
  | choices ->
    let i =
      match sched with
      | First -> List.hd choices
      | Random rng -> List.nth choices (Random.State.int rng (List.length choices))
    in
    Obs.Metrics.Counter.incr m_fired;
    Some (i, fire sys sched st i)

let run sys sched ~steps =
  let rec loop st k acc =
    if k = 0 then List.rev acc
    else
      match step sys sched st with
      | None -> List.rev acc
      | Some (i, st') -> loop st' (k - 1) ((i.System.i_name, st') :: acc)
  in
  loop (initial sys) steps []

type reach_result = {
  states : state list;
  deadlocks : state list;
  truncated : bool;
}

(* Packed codec of a system state: one location field per component
   (bit-packed) plus one word per local variable. A BIP system state is
   often dozens of words across nested arrays — exactly the shape the
   polymorphic hash truncates — so exhaustive reachability keys its seen
   set on the interned encoding instead. *)
let codec (sys : System.t) =
  let locs =
    Array.to_list
      (Array.map
         (fun (c : Component.t) ->
           Engine.Codec.Loc
             {
               name = c.Component.comp_name;
               count = Array.length c.Component.locations;
             })
         sys.components)
  in
  let cells =
    List.concat
      (Array.to_list
         (Array.map
            (fun (c : Component.t) ->
              Array.to_list
                (Array.map
                   (fun v ->
                     Engine.Codec.Word (c.Component.comp_name ^ "." ^ v))
                   c.Component.var_names))
            sys.components))
  in
  let spec = Engine.Codec.spec (locs @ cells) in
  let n = Array.length sys.components in
  let pack st =
    (* Field order: all locations, then each component's store cells in
       component order. *)
    let cell = ref (0, 0) in
    Engine.Codec.intern spec
      (Engine.Codec.encode spec (fun i ->
           if i < n then st.locs.(i)
           else begin
             (* Fields are read in order, so a single cursor walks the
                nested stores without building a flat copy. *)
             let ci, vi = !cell in
             let ci, vi =
               if vi < Array.length st.stores.(ci) then (ci, vi)
               else begin
                 let rec next ci =
                   if Array.length st.stores.(ci + 1) = 0 then next (ci + 1)
                   else (ci + 1, 0)
                 in
                 next ci
               end
             in
             cell := (ci, vi + 1);
             st.stores.(ci).(vi)
           end))
  in
  (spec, pack)

let reachable ?(max_states = 1_000_000) sys =
  Obs.Span.with_ ~name:"bip.reachable" @@ fun () ->
  let _spec, pack = codec sys in
  let seen : unit Engine.Codec.Tbl.t = Engine.Codec.Tbl.create 4096 in
  let queue = Queue.create () in
  let states = ref [] and deadlocks = ref [] in
  let truncated = ref false in
  let push st =
    let key = pack st in
    if not (Engine.Codec.Tbl.mem seen key) then begin
      if Engine.Codec.Tbl.length seen >= max_states then truncated := true
      else begin
        Engine.Codec.Tbl.replace seen key ();
        states := st :: !states;
        Queue.push st queue
      end
    end
  in
  push (initial sys);
  while not (Queue.is_empty queue) do
    let st = Queue.pop queue in
    match filtered sys st with
    | [] -> deadlocks := st :: !deadlocks
    | choices ->
      (* Explore every scheduler choice, including every internal
         transition alternative within a component. *)
      List.iter
        (fun (i : System.interaction) ->
          (* Enumerate participant transition combinations. *)
          let rec combos acc = function
            | [] -> [ List.rev acc ]
            | (ci, (p : Component.port)) :: rest ->
              let c = sys.components.(ci) in
              let ts =
                Component.transitions_on c ~loc:st.locs.(ci)
                  ~store:st.stores.(ci) p.Component.port_id
              in
              List.concat_map
                (fun t -> combos ((ci, t) :: acc) rest)
                ts
          in
          List.iter
            (fun combo ->
              let st' = copy_state st in
              (match i.System.i_action with
               | None -> ()
               | Some act -> act st'.stores);
              List.iter
                (fun (ci, (t : Component.transition)) ->
                  t.Component.t_update st'.stores.(ci);
                  st'.locs.(ci) <- t.Component.t_dst)
                combo;
              push st')
            (combos [] i.System.i_ports))
        choices
  done;
  { states = List.rev !states; deadlocks = List.rev !deadlocks; truncated = !truncated }

let invariant_holds ?max_states sys pred =
  let r = reachable ?max_states sys in
  match List.find_opt (fun st -> not (pred st)) r.states with
  | Some bad -> (false, Some bad)
  | None -> (not r.truncated, None)

let deadlock_free ?max_states sys =
  let r = reachable ?max_states sys in
  match r.deadlocks with
  | bad :: _ -> (false, Some bad)
  | [] -> ((not r.truncated), None)

let pp_state (sys : System.t) ppf st =
  let parts =
    Array.to_list
      (Array.mapi
         (fun ci (c : Component.t) ->
           let vars =
             Array.to_list
               (Array.mapi
                  (fun vi name -> Printf.sprintf "%s=%d" name st.stores.(ci).(vi))
                  c.Component.var_names)
           in
           Printf.sprintf "%s.%s%s" c.Component.comp_name
             c.Component.locations.(st.locs.(ci))
             (match vars with
              | [] -> ""
              | _ -> "{" ^ String.concat "," vars ^ "}"))
         sys.components)
  in
  Format.pp_print_string ppf (String.concat " " parts)
