module Model = Ta.Model
module Zone_graph = Ta.Zone_graph
module Expr = Ta.Expr
module Bound = Zones.Bound

type dstate = { dlocs : int array; dstore : int array; dclocks : int array }

type dtrans = {
  kind : [ `Delay | `Act of Zone_graph.move ];
  target : dstate;
  tr_ctrl : bool;
}

(* Digital clocks are exact only for closed (non-strict), diagonal-free
   constraints: saturation keeps single-clock comparisons truthful but
   loses differences between two saturated clocks. *)
let constr_ok (c : Model.constr) =
  (c.ci = 0 || c.cj = 0) && not (Bound.is_strict c.cb)

let is_closed (net : Model.network) =
  let ok = ref true in
  Array.iter
    (fun (a : Model.automaton) ->
      Array.iter
        (fun (l : Model.location) ->
          if not (List.for_all constr_ok l.invariant) then ok := false)
        a.locations;
      Array.iter
        (fun edges ->
          List.iter
            (fun (e : Model.edge) ->
              if not (List.for_all constr_ok e.clock_guard) then ok := false)
            edges)
        a.out)
    net.automata;
  !ok

let sat_constr ks v (c : Model.constr) =
  ignore ks;
  if Bound.is_inf c.cb then true
  else begin
    let d = v.(c.ci) - v.(c.cj) in
    let m = Bound.constant c.cb in
    if Bound.is_strict c.cb then d < m else d <= m
  end

let sat_all ks v cs = List.for_all (sat_constr ks v) cs

let initial (net : Model.network) =
  if not (is_closed net) then
    invalid_arg
      "Digital: model must be closed and diagonal-free for digital-clock \
       analysis";
  {
    dlocs = Array.map (fun (a : Model.automaton) -> a.initial) net.automata;
    dstore = Ta.Store.initial net.layout;
    dclocks = Array.make (net.n_clocks + 1) 0;
  }

let invariant_ok net st =
  sat_all net.Model.max_consts st.dclocks
    (Zone_graph.invariant_constrs net st.dlocs)

let delay_successor net st =
  if not (Zone_graph.delay_allowed net st.dlocs st.dstore) then None
  else begin
    let ks = net.Model.max_consts in
    let v' =
      Array.mapi
        (fun i x -> if i = 0 then 0 else min (x + 1) (ks.(i) + 1))
        st.dclocks
    in
    let st' = { st with dclocks = v' } in
    if invariant_ok net st' then Some st' else None
  end

let act_successor net st (mv : Zone_graph.move) =
  let ks = net.Model.max_consts in
  let guards_ok =
    List.for_all
      (fun (_, (e : Model.edge)) -> sat_all ks st.dclocks e.clock_guard)
      mv.participants
  in
  if not guards_ok then None
  else begin
    let locs' = Array.copy st.dlocs in
    let store' = Array.copy st.dstore in
    let clocks' = Array.copy st.dclocks in
    List.iter
      (fun (i, (e : Model.edge)) ->
        locs'.(i) <- e.dst;
        List.iter
          (function
            | Model.Assign (lv, rhs) ->
              let value = Expr.eval store' rhs in
              store'.(Expr.lvalue_offset store' lv) <- value
            | Model.Reset (x, value) -> clocks'.(x) <- min value (ks.(x) + 1)
            | Model.Prim (_, f) -> f store')
          e.updates)
      mv.participants;
    let st' = { dlocs = locs'; dstore = store'; dclocks = clocks' } in
    if invariant_ok net st' then Some st' else None
  end

let move_ctrl (mv : Zone_graph.move) =
  List.for_all (fun (_, (e : Model.edge)) -> e.Model.ctrl) mv.participants

let successors net st =
  let acts =
    List.filter_map
      (fun mv ->
        match act_successor net st mv with
        | Some st' ->
          Some { kind = `Act mv; target = st'; tr_ctrl = move_ctrl mv }
        | None -> None)
      (Zone_graph.moves net st.dlocs st.dstore)
  in
  match delay_successor net st with
  | Some st' -> { kind = `Delay; target = st'; tr_ctrl = true } :: acts
  | None -> acts

type graph = {
  states : dstate array;
  index : int Engine.Codec.Tbl.t;
  pack : dstate -> Engine.Codec.packed;
  transitions : dtrans list array;
}

(* Packed-codec layout: locations bit-packed per automaton, one word
   per store cell (domains undeclared), and clocks as bounded fields —
   a digital clock saturates at [ks.(i) + 1], so clock [i] needs only
   enough bits for [0 .. ks.(i) + 1] (clock 0 is pinned to 0 and packs
   into zero bits). *)
let codec (net : Model.network) =
  let locs =
    Array.to_list
      (Array.map
         (fun (a : Model.automaton) ->
           Engine.Codec.Loc
             { name = a.Model.auto_name; count = Array.length a.Model.locations })
         net.automata)
  in
  let cells =
    List.init (Ta.Store.size net.Model.layout) (fun i ->
        Engine.Codec.Word (Printf.sprintf "store[%d]" i))
  in
  let ks = net.Model.max_consts in
  let clocks =
    List.init (net.Model.n_clocks + 1) (fun i ->
        Engine.Codec.Bounded
          {
            name = (if i = 0 then "t0" else net.Model.clock_names.(i));
            lo = 0;
            hi = (if i = 0 then 0 else ks.(i) + 1);
          })
  in
  let spec = Engine.Codec.spec (locs @ cells @ clocks) in
  let n_autos = Array.length net.automata in
  let n_cells = Ta.Store.size net.Model.layout in
  let pack st =
    Engine.Codec.intern spec
      (Engine.Codec.encode spec (fun i ->
           if i < n_autos then st.dlocs.(i)
           else if i < n_autos + n_cells then st.dstore.(i - n_autos)
           else st.dclocks.(i - n_autos - n_cells)))
  in
  (spec, pack)

let id_of g st = Engine.Codec.Tbl.find g.index (g.pack st)

let explore_stats ?(max_states = 2_000_000) ?jobs ?pool net =
  let _spec, pack = codec net in
  let succ st = List.map (fun t -> (t, t.target)) (successors net st) in
  let out =
    match jobs with
    | Some j ->
      if j < 1 then invalid_arg "Digital.explore: jobs must be >= 1";
      (* Sharded build: same graph for every [j >= 1] — node numbering
         is the canonical sharded one, so [jobs:1] is the determinism
         reference for [jobs:4], while [jobs:None] keeps the historical
         sequential BFS numbering. *)
      let mk_pool f =
        match pool with
        | Some p -> f (Some p)
        | None ->
          if j <= 1 then f None
          else Par.Pool.with_pool ~jobs:j (fun p -> f (Some p))
      in
      mk_pool (fun pool ->
          Engine.Core.run_sharded ~max_states ~record_edges:true ?pool
            ~store:(fun () -> Engine.Store.discrete_keyed ~size_hint:256 ())
            ~key:pack ~successors:succ
            ~on_state:(fun _ -> None)
            ~init:(initial net) ())
    | None ->
      let store = Engine.Store.discrete ~key:pack () in
      Engine.Core.run ~max_states ~record_edges:true ~store ~successors:succ
        ~on_state:(fun _ -> None)
        ~init:(initial net) ()
  in
  if out.Engine.Core.stats.Engine.Stats.truncated then
    failwith "Digital.explore: state limit exceeded";
  let states = out.Engine.Core.states in
  let index = Engine.Codec.Tbl.create (2 * Array.length states) in
  Array.iteri (fun id st -> Engine.Codec.Tbl.replace index (pack st) id) states;
  (* Every successor is either [Added] or a [Dup] under a discrete store,
     so the recorded edges are exactly the generated transition lists. *)
  let transitions = Array.map (List.map fst) out.Engine.Core.edges in
  ({ states; index; pack; transitions }, out.Engine.Core.stats)

let explore ?max_states ?jobs ?pool net =
  fst (explore_stats ?max_states ?jobs ?pool net)

let discrete_parts g =
  let tbl = Hashtbl.create 4096 in
  Array.iter
    (fun st -> Hashtbl.replace tbl (st.dlocs, st.dstore) ())
    g.states;
  tbl

let pp_dstate net ppf st =
  let locs =
    Array.to_list
      (Array.mapi
         (fun i l ->
           Printf.sprintf "%s.%s" net.Model.automata.(i).auto_name
             (Model.loc_name net i l))
         st.dlocs)
  in
  let clocks =
    Array.to_list
      (Array.mapi
         (fun i v ->
           if i = 0 then None
           else Some (Printf.sprintf "%s=%d" net.Model.clock_names.(i) v))
         st.dclocks)
    |> List.filter_map Fun.id
  in
  Format.fprintf ppf "(%s | %s | %a)"
    (String.concat "," locs)
    (String.concat "," clocks)
    (Ta.Store.pp_store net.Model.layout)
    st.dstore
