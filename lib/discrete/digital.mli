(** Digital-clocks (integer-time) semantics of timed-automata networks.

    For closed models (no strict comparisons) with integer constants,
    restricting clocks to integer values and unit delays preserves
    reachability, optimal costs and winning regions (Henzinger, Manna &
    Pnueli). Clock values saturate at one past their maximal relevant
    constant, keeping the state space finite.

    This is the substrate of the UPPAAL-CORA, UPPAAL-TIGA and ECDAR
    reproductions, and is cross-validated against the zone engine in the
    test suite. *)

type dstate = {
  dlocs : int array;
  dstore : int array;
  dclocks : int array; (* saturated at ks.(i) + 1 *)
}

(** A labelled transition out of a digital state. [Delay] is one time
    unit; [Act] carries the move's label, participants, and whether every
    participating edge is controllable ([ctrl]). *)
type dtrans = {
  kind : [ `Delay | `Act of Ta.Zone_graph.move ];
  target : dstate;
  tr_ctrl : bool; (* Delay transitions report true *)
}

(** [is_closed net] — no strict clock comparison anywhere; digital-clock
    analyses require it. *)
val is_closed : Ta.Model.network -> bool

(** [initial net] is the all-zero digital state.
    @raise Invalid_argument when [net] is not closed. *)
val initial : Ta.Model.network -> dstate

(** [successors net st] lists the unit-delay transition (when permitted by
    invariants, urgency and committedness) and all enabled action
    transitions. *)
val successors : Ta.Model.network -> dstate -> dtrans list

(** [sat_constr ks v c] evaluates a clock constraint on a saturated
    integer valuation. *)
val sat_constr : int array -> int array -> Ta.Model.constr -> bool

(** Explicit finite graph over reachable digital states. States are
    indexed by their interned {!Engine.Codec} encoding; use {!id_of}
    for lookups. *)
type graph = {
  states : dstate array;
  index : int Engine.Codec.Tbl.t;
  pack : dstate -> Engine.Codec.packed;
  transitions : dtrans list array; (* by source state id *)
}

(** [codec net] is the packed codec of [net]'s digital states (locations
    and saturated clocks bit-packed, store cells one word each) and its
    interning packer. One spec per network. *)
val codec :
  Ta.Model.network ->
  Engine.Codec.spec * (dstate -> Engine.Codec.packed)

(** [id_of g st] is the node id of [st] in [g].
    @raise Not_found when [st] is not a state of [g]. *)
val id_of : graph -> dstate -> int

(** [explore net] builds the reachable graph, breadth-first on the shared
    {!Engine.Core} with a {!Engine.Store.discrete} store. With [jobs] the
    build runs on the sharded parallel core instead
    ({!Engine.Core.run_sharded}, optionally over a caller-owned [pool]):
    the same graph is produced for every [jobs >= 1] — node numbering is
    the canonical sharded one, so it may differ from the sequential BFS
    numbering of a [jobs]-less build (graph consumers rebuild indices
    from the state array, so both numberings are valid).
    @raise Failure when [max_states] (default 2_000_000) is exceeded. *)
val explore :
  ?max_states:int -> ?jobs:int -> ?pool:Par.Pool.t -> Ta.Model.network -> graph

(** [explore_stats net] is {!explore} and the engine's per-run
    instrumentation (visited, stored, peak frontier, wall-clock time). *)
val explore_stats :
  ?max_states:int ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  Ta.Model.network ->
  graph * Engine.Stats.t

(** [discrete_parts g] is the set of reachable (locations, store) pairs,
    for cross-validation against the zone engine. *)
val discrete_parts : graph -> (int array * int array, unit) Hashtbl.t

val pp_dstate : Ta.Model.network -> Format.formatter -> dstate -> unit
