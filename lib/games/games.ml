module Digital = Discrete.Digital
module Model = Ta.Model
module Zone_graph = Ta.Zone_graph
module Expr = Ta.Expr
module Store = Ta.Store

type objective =
  | Safety of (Digital.dstate -> bool)
  | Reach of (Digital.dstate -> bool)

type action = [ `Delay | `Move of Ta.Zone_graph.move ]

type solution = {
  graph : Digital.graph;
  winning : bool array;
  strategy : (int, action) Hashtbl.t;
  initial_winning : bool;
}

(* Per-state transition split: uncontrollable moves, controllable action
   moves, and the unit-delay transition (controller-owned wait). *)
type split = {
  u : (int * Digital.dtrans) list; (* target id, transition *)
  c : (int * Digital.dtrans) list; (* action moves only *)
  delay : (int * Digital.dtrans) option;
}

let split_transitions graph =
  let id_of st = Digital.id_of graph st in
  Array.map
    (fun ts ->
      List.fold_left
        (fun acc t ->
          let tid = id_of t.Digital.target in
          match t.Digital.kind with
          | `Delay -> { acc with delay = Some (tid, t) }
          | `Act _ ->
            if t.Digital.tr_ctrl then { acc with c = (tid, t) :: acc.c }
            else { acc with u = (tid, t) :: acc.u })
        { u = []; c = []; delay = None }
        ts)
    graph.Digital.transitions

let action_of (t : Digital.dtrans) : action =
  match t.Digital.kind with `Delay -> `Delay | `Act mv -> `Move mv

(* Reachability: least fixpoint (attractor). A state wins when it is a
   target, or every uncontrollable move stays winning AND either the
   controller owns a winning move (action or delay) or the environment is
   forced (no delay possible, some u-move, all winning). *)
let solve_reach graph target =
  let n = Array.length graph.Digital.states in
  let split = split_transitions graph in
  let preds_u = Array.make n [] and preds_c = Array.make n [] in
  let preds_d = Array.make n [] in
  Array.iteri
    (fun i s ->
      List.iter (fun (tid, _) -> preds_u.(tid) <- i :: preds_u.(tid)) s.u;
      List.iter (fun (tid, t) -> preds_c.(tid) <- (i, t) :: preds_c.(tid)) s.c;
      match s.delay with
      | Some (tid, t) -> preds_d.(tid) <- (i, t) :: preds_d.(tid)
      | None -> ())
    split;
  let winning = Array.make n false in
  let u_pending = Array.map (fun s -> List.length s.u) split in
  let ctrl_choice : (int, action) Hashtbl.t = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let try_win i =
    if not winning.(i) then begin
      let s = split.(i) in
      let env_forced = s.delay = None && s.u <> [] && u_pending.(i) = 0 in
      if u_pending.(i) = 0 && (Hashtbl.mem ctrl_choice i || env_forced) then begin
        winning.(i) <- true;
        Queue.push i queue
      end
    end
  in
  Array.iteri
    (fun i st ->
      if target st then begin
        winning.(i) <- true;
        Queue.push i queue
      end)
    graph.Digital.states;
  while not (Queue.is_empty queue) do
    let t = Queue.pop queue in
    List.iter
      (fun p ->
        u_pending.(p) <- u_pending.(p) - 1;
        try_win p)
      preds_u.(t);
    List.iter
      (fun (p, tr) ->
        if not (Hashtbl.mem ctrl_choice p) then
          Hashtbl.replace ctrl_choice p (action_of tr);
        try_win p)
      (preds_c.(t) @ preds_d.(t))
  done;
  (winning, ctrl_choice)

(* Safety: greatest fixpoint. Keep a state while it is safe, no
   uncontrollable move leaves the kept set, and the controller can stand
   still (no delay, or delay kept) or act within the kept set. *)
let solve_safety graph safe =
  let n = Array.length graph.Digital.states in
  let split = split_transitions graph in
  let preds_u = Array.make n [] and preds_c = Array.make n [] in
  let preds_d = Array.make n [] in
  Array.iteri
    (fun i s ->
      List.iter (fun (tid, _) -> preds_u.(tid) <- i :: preds_u.(tid)) s.u;
      List.iter (fun (tid, _) -> preds_c.(tid) <- i :: preds_c.(tid)) s.c;
      match s.delay with
      | Some (tid, _) -> preds_d.(tid) <- i :: preds_d.(tid)
      | None -> ())
    split;
  let kept = Array.make n true in
  let c_alive = Array.map (fun s -> List.length s.c) split in
  let delay_alive = Array.map (fun s -> s.delay <> None) split in
  let has_delay = Array.map (fun s -> s.delay <> None) split in
  let queue = Queue.create () in
  let ok i =
    (* wait is fine when time cannot pass, or the delay successor kept *)
    let can_wait = (not has_delay.(i)) || delay_alive.(i) in
    can_wait || c_alive.(i) > 0
  in
  let drop i =
    if kept.(i) then begin
      kept.(i) <- false;
      Queue.push i queue
    end
  in
  Array.iteri
    (fun i st -> if not (safe st) then drop i)
    graph.Digital.states;
  for i = 0 to n - 1 do
    if kept.(i) && not (ok i) then drop i
  done;
  while not (Queue.is_empty queue) do
    let t = Queue.pop queue in
    List.iter drop preds_u.(t);
    List.iter
      (fun p ->
        c_alive.(p) <- c_alive.(p) - 1;
        if kept.(p) && not (ok p) then drop p)
      preds_c.(t);
    List.iter
      (fun p ->
        delay_alive.(p) <- false;
        if kept.(p) && not (ok p) then drop p)
      preds_d.(t)
  done;
  (* Strategy: any controllable action into the kept set, else delay when
     kept, else nothing (wait in a timelock). *)
  let strategy = Hashtbl.create 1024 in
  Array.iteri
    (fun i s ->
      if kept.(i) then begin
        match
          List.find_opt (fun (tid, _) -> kept.(tid)) s.c
        with
        | Some (_, tr) -> Hashtbl.replace strategy i (action_of tr)
        | None ->
          (match s.delay with
           | Some (tid, tr) when kept.(tid) ->
             Hashtbl.replace strategy i (action_of tr)
           | Some _ | None -> ())
      end)
    split;
  (kept, strategy)

let solve ?max_states net objective =
  let graph = Digital.explore ?max_states net in
  let winning, strategy =
    match objective with
    | Reach target -> solve_reach graph target
    | Safety safe -> solve_safety graph safe
  in
  let init_id = Digital.id_of graph (Digital.initial net) in
  { graph; winning; strategy; initial_winning = winning.(init_id) }

let winning_count s =
  Array.fold_left (fun acc w -> if w then acc + 1 else acc) 0 s.winning

(* Closed-loop successor ids: all environment moves, plus the strategy's
   choice, plus delay when the controller has no recorded choice (it
   waits). *)
let closed_loop_succs s =
  let graph = s.graph in
  let id_of st = Digital.id_of graph st in
  fun i ->
    let choice = Hashtbl.find_opt s.strategy i in
    List.filter_map
      (fun (t : Digital.dtrans) ->
        let keep =
          match t.Digital.kind, choice with
          | `Delay, None -> true (* waiting lets time pass *)
          | `Delay, Some `Delay -> true
          | `Delay, Some (`Move _) -> false
          | `Act _, _ when not t.Digital.tr_ctrl -> true
          | `Act mv, Some (`Move mv') -> mv == mv'
          | `Act _, _ -> false
        in
        if keep then Some (id_of t.Digital.target) else None)
      graph.Digital.transitions.(i)

let closed_loop_safe s ~safe =
  let succs = closed_loop_succs s in
  let n = Array.length s.graph.Digital.states in
  let seen = Array.make n false in
  (* The initial state is always id 0 (first state interned by explore). *)
  let init_id = 0 in
  let queue = Queue.create () in
  seen.(init_id) <- true;
  Queue.push init_id queue;
  let ok = ref true in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    if not (safe s.graph.Digital.states.(i)) then ok := false;
    List.iter
      (fun j ->
        if not seen.(j) then begin
          seen.(j) <- true;
          Queue.push j queue
        end)
      (succs i)
  done;
  !ok

let closed_loop_reaches s ~target =
  let succs = closed_loop_succs s in
  let n = Array.length s.graph.Digital.states in
  let status = Array.make n `White in
  let rec verify i =
    match status.(i) with
    | `Good -> true
    | `Bad | `Gray -> false
    | `White ->
      if target s.graph.Digital.states.(i) then begin
        status.(i) <- `Good;
        true
      end
      else begin
        status.(i) <- `Gray;
        let kids = succs i in
        let ok = kids <> [] && List.for_all verify kids in
        status.(i) <- (if ok then `Good else `Bad);
        ok
      end
  in
  verify 0

(* ------------------------------------------------------------------ *)
(* The train game (Figs. 2-3)                                           *)
(* ------------------------------------------------------------------ *)

module Train_game = struct
  (* Timing constants: the paper's (Figs. 1-2) or a compact set that
     keeps the game structure (stop window, crossing delays) but shrinks
     the digital graph for scaling experiments. *)
  let constants_of = function
    | `Paper -> (25, 20, 10, 10, 15, 7, 5, 3)
    | `Compact -> (6, 5, 2, 2, 3, 1, 2, 1)

  let make ?(constants = `Paper) ~n_trains () =
    let safe_ub, appr_ub, stop_win, cross_lo, start_ub, start_lo, cross_ub,
        leave_lo =
      constants_of constants
    in
    assert (n_trains >= 1);
    let b = Model.builder () in
    let appr = Array.init n_trains (fun i -> Model.channel b (Printf.sprintf "appr%d" i)) in
    let stop = Array.init n_trains (fun i -> Model.channel b (Printf.sprintf "stop%d" i)) in
    let go = Array.init n_trains (fun i -> Model.channel b (Printf.sprintf "go%d" i)) in
    let leave = Array.init n_trains (fun i -> Model.channel b (Printf.sprintf "leave%d" i)) in
    let sb = Model.store b in
    let crossed = Store.array_var sb "crossed" n_trains in
    for i = 0 to n_trains - 1 do
      let x = Model.fresh_clock b (Printf.sprintf "x%d" i) in
      let a = Model.automaton b (Printf.sprintf "Train%d" i) in
      (* The environment must eventually send a train (Safe has an upper
         bound), which makes reachability objectives meaningful. *)
      let safe_l = Model.location a "Safe" ~invariant:[ Model.clock_le x safe_ub ] in
      let appr_l = Model.location a "Appr" ~invariant:[ Model.clock_le x appr_ub ] in
      let stop_l = Model.location a "Stop" in
      let start_l = Model.location a "Start" ~invariant:[ Model.clock_le x start_ub ] in
      let cross_l = Model.location a "Cross" ~invariant:[ Model.clock_le x cross_ub ] in
      Model.set_initial a safe_l;
      let mark_crossed =
        Model.Assign (Expr.Elem (crossed, Expr.Int i), Expr.Int 1)
      in
      (* Uncontrollable (dashed in Fig. 2): approaching, crossing, leaving. *)
      Model.edge a ~src:safe_l ~dst:appr_l ~sync:(Model.Emit appr.(i))
        ~updates:[ Model.Reset (x, 0) ] ~ctrl:false ();
      Model.edge a ~src:appr_l ~dst:cross_l
        ~clock_guard:[ Model.clock_ge x cross_lo ]
        ~updates:[ Model.Reset (x, 0); mark_crossed ]
        ~ctrl:false ();
      Model.edge a ~src:start_l ~dst:cross_l
        ~clock_guard:[ Model.clock_ge x start_lo ]
        ~updates:[ Model.Reset (x, 0); mark_crossed ]
        ~ctrl:false ();
      Model.edge a ~src:cross_l ~dst:safe_l
        ~clock_guard:[ Model.clock_ge x leave_lo ]
        ~sync:(Model.Emit leave.(i))
        ~updates:[ Model.Reset (x, 0) ]
        ~ctrl:false ();
      (* Controllable: being stopped / restarted by the controller. *)
      Model.edge a ~src:appr_l ~dst:stop_l
        ~clock_guard:[ Model.clock_le x stop_win ]
        ~sync:(Model.Receive stop.(i)) ();
      Model.edge a ~src:stop_l ~dst:start_l ~sync:(Model.Receive go.(i))
        ~updates:[ Model.Reset (x, 0) ] ()
    done;
    (* The unconstrained controller of Fig. 3: one location, all four
       kinds of moves always possible. *)
    let g = Model.automaton b "Controller" in
    let u = Model.location g "U" in
    for e = 0 to n_trains - 1 do
      Model.edge g ~src:u ~dst:u ~sync:(Model.Receive appr.(e)) ~ctrl:false ();
      Model.edge g ~src:u ~dst:u ~sync:(Model.Receive leave.(e)) ~ctrl:false ();
      Model.edge g ~src:u ~dst:u ~sync:(Model.Emit stop.(e)) ();
      Model.edge g ~src:u ~dst:u ~sync:(Model.Emit go.(e)) ()
    done;
    Model.build b

  let cross_indices net =
    let n = Array.length net.Model.automata - 1 in
    Array.init n (fun i ->
        Model.loc_index net i "Cross")

  let safe net =
    let cross = cross_indices net in
    fun (st : Digital.dstate) ->
      let in_cross = ref 0 in
      Array.iteri
        (fun i c -> if st.Digital.dlocs.(i) = c then incr in_cross)
        cross;
      !in_cross <= 1

  let all_crossed_once net =
    let crossed = Store.find net.Model.layout "crossed" in
    let n = crossed.Store.len in
    fun (st : Digital.dstate) ->
      let rec all k =
        k = n || (st.Digital.dstore.(crossed.Store.off + k) = 1 && all (k + 1))
      in
      all 0
end
