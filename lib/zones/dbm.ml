type t = { dim : int; m : int array; mutable h : int; mutable w : int }

(* Internal representation: [m] holds raw Bound encodings row-major,
   [m.(i*dim + j)] bounding [x_i - x_j]. Invariant: the matrix is closed
   (canonical) and a semantically empty zone is normalized so that every
   entry is [Bound.lt_zero]. [h] is the sealed hash: [-1] until [seal]
   interns the DBM, then the memoized structural hash. Only interned
   representatives carry [h >= 0], so it doubles as the sealed flag.
   [w] is the memoized width score, filled alongside [h] at seal time
   (0 until then, recomputed on demand). *)

type canon = t

let clocks t = t.dim - 1
let raw t i j = t.m.((i * t.dim) + j)
let get t i j = Bound.of_int (raw t i j)

let le_zero = Bound.to_int Bound.le_zero
let lt_zero = Bound.to_int Bound.lt_zero
let inf = Bound.to_int Bound.inf

let empty ~clocks =
  let dim = clocks + 1 in
  { dim; m = Array.make (dim * dim) lt_zero; h = -1; w = 0 }

let is_empty t = t.m.(0) < le_zero

let zero ~clocks =
  let dim = clocks + 1 in
  { dim; m = Array.make (dim * dim) le_zero; h = -1; w = 0 }

let universal ~clocks =
  let dim = clocks + 1 in
  let m = Array.make (dim * dim) inf in
  for i = 0 to dim - 1 do
    m.((i * dim) + i) <- le_zero;
    m.(i) <- le_zero (* row 0: 0 - x_j <= 0 *)
  done;
  { dim; m; h = -1; w = 0 }

let copy t = { t with m = Array.copy t.m; h = -1; w = 0 }

let normalize_empty t =
  Array.fill t.m 0 (t.dim * t.dim) lt_zero;
  t

(* Full Floyd-Warshall closure; used after bulk updates. Returns the
   (possibly emptied) argument, mutated in place. *)
let close_inplace t =
  let d = t.dim and m = t.m in
  let badd a b = Bound.to_int (Bound.add (Bound.of_int a) (Bound.of_int b)) in
  (try
     for k = 0 to d - 1 do
       for i = 0 to d - 1 do
         let ik = m.((i * d) + k) in
         if ik <> inf then
           for j = 0 to d - 1 do
             let kj = m.((k * d) + j) in
             if kj <> inf then begin
               let via = badd ik kj in
               if via < m.((i * d) + j) then m.((i * d) + j) <- via
             end
           done
       done;
       for i = 0 to d - 1 do
         if m.((i * d) + i) < le_zero then raise Exit
       done
     done
   with Exit -> ignore (normalize_empty t));
  if t.m.(0) < le_zero then ignore (normalize_empty t);
  t

let constrain t i j b =
  let b = Bound.to_int b in
  if is_empty t then t
  else if b >= raw t i j then t
  else begin
    (* New bound on (i,j) would make the i-j cycle negative? *)
    let cycle = Bound.add (get t j i) (Bound.of_int b) in
    if Bound.to_int cycle < le_zero then empty ~clocks:(clocks t)
    else begin
      let t = copy t in
      let d = t.dim and m = t.m in
      m.((i * d) + j) <- b;
      (* Incremental closure: every new shortest path uses edge (i,j)
         exactly once, so relax all pairs through it. *)
      for k = 0 to d - 1 do
        let ki = m.((k * d) + i) in
        if ki <> inf then begin
          let kj = Bound.to_int (Bound.add (Bound.of_int ki) (Bound.of_int b)) in
          for l = 0 to d - 1 do
            let jl = m.((j * d) + l) in
            if jl <> inf then begin
              let v = Bound.to_int (Bound.add (Bound.of_int kj) (Bound.of_int jl)) in
              if v < m.((k * d) + l) then m.((k * d) + l) <- v
            end
          done
        end
      done;
      let ok = ref true in
      for k = 0 to d - 1 do
        if m.((k * d) + k) < le_zero then ok := false
      done;
      if !ok then t else normalize_empty t
    end
  end

(* Fault injection for the differential oracle harness: a deliberately
   broken DBM operation, switched on only by tests and `quantcli fuzz
   --inject`, so the harness can prove it detects real backend bugs.
   [Broken_up] makes [up] forget to open the upper bound of the highest
   clock (time stops for it); [Unclosed_intersect] skips re-closing
   after [intersect], leaking non-canonical DBMs into subsumption. *)
type fault = Broken_up | Unclosed_intersect

let injected_fault = ref None
let inject_fault f = injected_fault := f

let up t =
  if is_empty t then t
  else begin
    let t = copy t in
    let hi = if !injected_fault = Some Broken_up then t.dim - 2 else t.dim - 1 in
    for i = 1 to hi do
      t.m.((i * t.dim) + 0) <- inf
    done;
    t
  end

let down t =
  if is_empty t then t
  else begin
    let t = copy t in
    let d = t.dim and m = t.m in
    for i = 1 to d - 1 do
      m.(i) <- le_zero;
      for j = 1 to d - 1 do
        if m.((j * d) + i) < m.(i) then m.(i) <- m.((j * d) + i)
      done
    done;
    t
  end

let reset t x v =
  if is_empty t then t
  else begin
    assert (v >= 0);
    let t = copy t in
    let d = t.dim and m = t.m in
    let le_v = Bound.to_int (Bound.le v) and le_neg_v = Bound.to_int (Bound.le (-v)) in
    for j = 0 to d - 1 do
      if j <> x then begin
        m.((x * d) + j) <- Bound.to_int (Bound.add (Bound.of_int le_v) (get t 0 j));
        m.((j * d) + x) <- Bound.to_int (Bound.add (get t j 0) (Bound.of_int le_neg_v))
      end
    done;
    t
  end

let copy_clock t ~dst ~src =
  if is_empty t || dst = src then t
  else begin
    let t' = copy t in
    let d = t'.dim and m = t'.m in
    for j = 0 to d - 1 do
      if j <> dst then begin
        m.((dst * d) + j) <- raw t src j;
        m.((j * d) + dst) <- raw t j src
      end
    done;
    m.((dst * d) + src) <- le_zero;
    m.((src * d) + dst) <- le_zero;
    t'
  end

let free t x =
  if is_empty t then t
  else begin
    let t' = copy t in
    let d = t'.dim and m = t'.m in
    for j = 0 to d - 1 do
      if j <> x then begin
        m.((x * d) + j) <- inf;
        m.((j * d) + x) <- raw t j 0
      end
    done;
    t'
  end

let intersect t1 t2 =
  assert (t1.dim = t2.dim);
  if is_empty t1 then t1
  else if is_empty t2 then t2
  else begin
    let t = copy t1 in
    let changed = ref false in
    for k = 0 to (t.dim * t.dim) - 1 do
      if t2.m.(k) < t.m.(k) then begin
        t.m.(k) <- t2.m.(k);
        changed := true
      end
    done;
    if !changed && !injected_fault <> Some Unclosed_intersect then
      close_inplace t
    else t
  end

(* Comparison instrumentation. Sealing (below) makes every equality
   decision pointer-settled: sealed handles are unique representatives,
   so two distinct sealed pointers are distinct zones and [equal] never
   scans them. What remains a genuine matrix walk is the subset lattice
   check between distinct zones — counted separately, because no
   interning scheme can settle inclusion (as opposed to equality) by
   pointer. The counters let benchmarks prove phys-eq is the common
   case for equality while still reporting the lattice work. *)
type cmp_stats = {
  phys_hits : int;  (** comparisons settled by pointer identity *)
  full_scans : int;  (** equality checks that scanned matrix entries *)
  lattice_scans : int;
      (** subset checks between distinct zones (inherent slow path) *)
  intern_hits : int;  (** [seal] calls that found an existing DBM *)
  intern_misses : int;  (** [seal] calls that added a fresh DBM *)
}

(* Counter cells are domain-local: the sharded exploration engine runs
   comparisons from several domains at once, and plain shared refs would
   lose increments (and make per-run deltas nondeterministic) under that
   contention. Each domain tallies into its own record, registered once
   at first use; [cmp_stats] sums the registry. Reads happen when the
   other domains are quiescent (the engines read at pool joins), so the
   sums are exact — and deterministic, because each shard's comparison
   multiset is fixed by its inputs, never by scheduling. *)
type cnt = {
  mutable phys : int;
  mutable full : int;
  mutable lattice : int;
  mutable ihit : int;
  mutable imiss : int;
}

let cnt_registry : cnt list ref = ref []
let cnt_mu = Mutex.create ()

let cnt_key =
  Domain.DLS.new_key (fun () ->
      let c = { phys = 0; full = 0; lattice = 0; ihit = 0; imiss = 0 } in
      Mutex.lock cnt_mu;
      cnt_registry := c :: !cnt_registry;
      Mutex.unlock cnt_mu;
      c)

let cnt () = Domain.DLS.get cnt_key

let cmp_stats () =
  Mutex.lock cnt_mu;
  let cells = !cnt_registry in
  Mutex.unlock cnt_mu;
  List.fold_left
    (fun acc c ->
      {
        phys_hits = acc.phys_hits + c.phys;
        full_scans = acc.full_scans + c.full;
        lattice_scans = acc.lattice_scans + c.lattice;
        intern_hits = acc.intern_hits + c.ihit;
        intern_misses = acc.intern_misses + c.imiss;
      })
    {
      phys_hits = 0;
      full_scans = 0;
      lattice_scans = 0;
      intern_hits = 0;
      intern_misses = 0;
    }
    cells

let reset_cmp_stats () =
  Mutex.lock cnt_mu;
  let cells = !cnt_registry in
  Mutex.unlock cnt_mu;
  List.iter
    (fun c ->
      c.phys <- 0;
      c.full <- 0;
      c.lattice <- 0;
      c.ihit <- 0;
      c.imiss <- 0)
    cells

let subset_scan t1 t2 =
  assert (t1.dim = t2.dim);
  is_empty t1
  ||
  (* Early exit: most lattice probes fail, usually within a few
     entries. *)
  let n = t1.dim * t1.dim in
  let k = ref 0 in
  while !k < n && t1.m.(!k) <= t2.m.(!k) do
    incr k
  done;
  !k = n

let equal_scan t1 t2 =
  t1.dim = t2.dim && (t1.m = t2.m || (is_empty t1 && is_empty t2))

let subset t1 t2 =
  if t1 == t2 || t1.m == t2.m then begin
    let c = cnt () in
    c.phys <- c.phys + 1;
    true
  end
  else begin
    let c = cnt () in
    c.lattice <- c.lattice + 1;
    subset_scan t1 t2
  end

(* Both sealed and physically distinct: the canonical table guarantees a
   unique live representative per zone, so inequality is settled without
   touching the matrices. *)
let equal t1 t2 =
  if t1 == t2 || t1.m == t2.m then begin
    let c = cnt () in
    c.phys <- c.phys + 1;
    true
  end
  else if t1.h >= 0 && t2.h >= 0 then begin
    let c = cnt () in
    c.phys <- c.phys + 1;
    false
  end
  else begin
    let c = cnt () in
    c.full <- c.full + 1;
    equal_scan t1 t2
  end

let subset_quiet t1 t2 = t1 == t2 || t1.m == t2.m || subset_scan t1 t2
let equal_quiet t1 t2 = t1 == t2 || t1.m == t2.m || equal_scan t1 t2

(* Bulk counter flush for callers that walk whole buckets of zones with
   the quiet comparisons and tally locally (in registers, not a ref
   store per scan), then account once per walk. *)
let note_scans ~phys ~lattice =
  let c = cnt () in
  c.phys <- c.phys + phys;
  c.lattice <- c.lattice + lattice

(* Splitmix-style word mixer, shared with the packed codec's hashing
   discipline: cheap, and far better avalanche than Hashtbl.hash on int
   arrays. The result is clamped non-negative so [-1] can mark "not yet
   sealed". *)
let mix h x =
  let h = h lxor x in
  let h = h * 0x2545F4914F6CDD1D in
  h lxor (h lsr 29)

let hash_m t =
  let acc = ref (mix 0x9E3779B9 t.dim) in
  let m = t.m in
  for k = 0 to Array.length m - 1 do
    acc := mix !acc m.(k)
  done;
  !acc land max_int

let hash t = if t.h >= 0 then t.h else hash_m t
let is_sealed t = t.h >= 0

(* Monotone width score: clamped sum of the int-encoded bound entries.
   [subset t1 t2] holds only if [t1.m] is pointwise [<=] [t2.m] (or [t1]
   is empty), and per-entry clamping preserves pointwise order, so
   [subset t1 t2] implies [width t1 <= width t2]. Empty zones sit at the
   bottom. The subsume store keeps its buckets sorted by decreasing
   width and uses the contrapositive to skip inclusion scans that cannot
   succeed. *)
let width_clamp = 1 lsl 30

let width_m t =
  if is_empty t then min_int
  else begin
    let s = ref 0 in
    let m = t.m in
    for k = 0 to Array.length m - 1 do
      let v = m.(k) in
      s :=
        !s
        + (if v > width_clamp then width_clamp
           else if v < -width_clamp then -width_clamp
           else v)
    done;
    !s
  end

let width t = if t.w <> 0 then t.w else width_m t

(* Hash-consing: canonical DBMs are interned in a weak set so that equal
   zones share one representative, giving [equal]/[subset] their
   pointer-equality fast path and deduplicating passed-list storage. The
   set is weak: representatives no longer referenced by any store are
   collected. Safe because every exported operation copies before
   mutating. Access is mutex-guarded (same pattern as [Codec]'s packed
   pool) so [seal] may be called from parallel domains. *)
module Hc = Weak.Make (struct
  type nonrec t = t

  let equal a b = a.dim = b.dim && a.m = b.m
  let hash = hash
end)

let hc_table = Hc.create 4096
let hc_mu = Mutex.create ()

let intern_size () =
  Mutex.lock hc_mu;
  let n = Hc.count hc_table in
  Mutex.unlock hc_mu;
  n

type extrapolation =
  | No_extrapolation
  | Extra_m of int array
  | Extra_lu of { lower : int array; upper : int array }

let relation t1 t2 =
  match subset t1 t2, subset t2 t1 with
  | true, true -> `Equal
  | true, false -> `Subset
  | false, true -> `Superset
  | false, false -> `Incomparable

let extrapolate t k =
  if is_empty t then t
  else begin
    let t' = copy t in
    let d = t'.dim and m = t'.m in
    let bound_of i = if i = 0 then 0 else max 0 k.(i) in
    let changed = ref false in
    for i = 0 to d - 1 do
      for j = 0 to d - 1 do
        if i <> j then begin
          let b = m.((i * d) + j) in
          if b <> inf then begin
            let c = Bound.constant (Bound.of_int b) in
            if c > bound_of i then begin
              m.((i * d) + j) <- inf;
              changed := true
            end
            else if c < -bound_of j then begin
              m.((i * d) + j) <- Bound.to_int (Bound.lt (-bound_of j));
              changed := true
            end
          end
        end
      done
    done;
    if !changed then close_inplace t' else t'
  end

(* Extra-LU (Behrmann, Bouyer, Larsen, Pelánek): an entry [x_i - x_j ≺ c]
   only matters below the largest lower-guard constant of [x_i] (above it,
   every lower guard on [x_i] is satisfied anyway) and above the negated
   largest upper-guard constant of [x_j]. With [lower = upper = k] this
   coincides with Extra-M. Widening only — a non-empty zone stays
   non-empty. *)
let extrapolate_lu t ~lower ~upper =
  if is_empty t then t
  else begin
    let t' = copy t in
    let d = t'.dim and m = t'.m in
    let l_of i = if i = 0 then 0 else max 0 lower.(i) in
    let u_of j = if j = 0 then 0 else max 0 upper.(j) in
    let changed = ref false in
    for i = 0 to d - 1 do
      for j = 0 to d - 1 do
        if i <> j then begin
          let b = m.((i * d) + j) in
          if b <> inf then begin
            let c = Bound.constant (Bound.of_int b) in
            if c > l_of i then begin
              m.((i * d) + j) <- inf;
              changed := true
            end
            else if c < -u_of j then begin
              m.((i * d) + j) <- Bound.to_int (Bound.lt (-u_of j));
              changed := true
            end
          end
        end
      done
    done;
    if !changed then close_inplace t' else t'
  end

let apply_extrapolation extra t =
  match extra with
  | No_extrapolation -> t
  | Extra_m k -> extrapolate t k
  | Extra_lu { lower; upper } -> extrapolate_lu t ~lower ~upper

(* The sealing boundary. Deliberately does NOT re-close: closure happens
   inside the pipeline operations, and re-closing here would mask the
   [Unclosed_intersect] fault the oracle harness must detect. Sealing an
   already-sealed representative is the identity (a run applies one
   extrapolation consistently, so re-extrapolating would be a no-op).
   On a miss the hash is memoized before the weak-table probe so the
   probe reuses it; if an older representative wins, the loser's [h] is
   reset so [is_sealed] stays an intern-membership test. *)
let ph_seal = Obs.Flight.intern "dbm.seal"
let ph_extrapolate = Obs.Flight.intern "dbm.extrapolate"

let seal ?(extra = No_extrapolation) t =
  if is_sealed t then begin
    let c = cnt () in
    c.ihit <- c.ihit + 1;
    t
  end
  else begin
    (* Flight phases time the slow path only: the sealed-identity hit
       above costs one field read and must stay free. Extrapolation is
       the slow path's first step, so the two phases chain on a shared
       clock read and report disjoint times — [dbm.seal] is the
       hash/width/intern remainder, not a superset of
       [dbm.extrapolate]. *)
    let fx = Obs.Flight.start () in
    let t = apply_extrapolation extra t in
    let fl = Obs.Flight.stop_start ph_extrapolate fx in
    let r =
      if is_sealed t then begin
        let c = cnt () in
        c.ihit <- c.ihit + 1;
        t
      end
      else begin
        t.h <- hash_m t;
        t.w <- width_m t;
        Mutex.lock hc_mu;
        let r =
          match Hc.merge hc_table t with
          | r -> Mutex.unlock hc_mu; r
          | exception e -> Mutex.unlock hc_mu; raise e
        in
        let c = cnt () in
        if r == t then c.imiss <- c.imiss + 1
        else begin
          t.h <- -1;
          c.ihit <- c.ihit + 1
        end;
        r
      end
    in
    Obs.Flight.stop ph_seal fl;
    r
  end

let satisfies t v =
  (not (is_empty t))
  &&
  let d = t.dim in
  let ok = ref true in
  for i = 0 to d - 1 do
    for j = 0 to d - 1 do
      if not (Bound.sat (get t i j) (v.(i) -. v.(j))) then ok := false
    done
  done;
  !ok

(* Sampling scales every constant by F = dim + 1 so that strict bounds
   become weak integer bounds ([< m] turns into [<= F*m - 1]) on F-scaled
   valuations. F exceeds the length of any simple cycle, so a non-empty
   DBM stays non-empty after scaling. The scaled matrix is re-closed
   (scaling does not preserve canonicity) and a greedy assignment in
   clock order then always succeeds. *)
let sample rng t =
  if is_empty t then None
  else begin
    let d = t.dim in
    (* Power of two > dim: large enough that no simple cycle of strict
       bounds collapses, and exact as a binary-float denominator so the
       returned valuation satisfies its constraints without rounding. *)
    let factor =
      let rec pow2 f = if f > d then f else pow2 (2 * f) in
      pow2 2
    in
    let big = max_int / 4 in
    let s = Array.make (d * d) big in
    for i = 0 to d - 1 do
      for j = 0 to d - 1 do
        let b = get t i j in
        if not (Bound.is_inf b) then begin
          let c = factor * Bound.constant b in
          s.((i * d) + j) <- (if Bound.is_strict b then c - 1 else c)
        end
      done
    done;
    (* Plain min-plus Floyd-Warshall on the scaled weights. *)
    for k = 0 to d - 1 do
      for i = 0 to d - 1 do
        let ik = s.((i * d) + k) in
        if ik < big then
          for j = 0 to d - 1 do
            let kj = s.((k * d) + j) in
            if kj < big && ik + kj < s.((i * d) + j) then
              s.((i * d) + j) <- ik + kj
          done
      done
    done;
    for i = 0 to d - 1 do
      assert (s.((i * d) + i) >= 0)
    done;
    let v = Array.make d 0 in
    for i = 1 to d - 1 do
      let lo = ref 0 and hi = ref None in
      for j = 0 to i - 1 do
        let lower = s.((j * d) + i) in
        if lower < big then lo := max !lo (v.(j) - lower);
        let upper = s.((i * d) + j) in
        if upper < big then begin
          let u = v.(j) + upper in
          hi := Some (match !hi with None -> u | Some h -> min h u)
        end
      done;
      let value =
        match !hi with
        | Some h ->
          assert (h >= !lo);
          !lo + Random.State.int rng (h - !lo + 1)
        | None -> !lo + Random.State.int rng (4 * factor)
      in
      v.(i) <- value
    done;
    Some (Array.map (fun x -> float_of_int x /. float_of_int factor) v)
  end

let default_names d =
  Array.init d (fun i -> if i = 0 then "0" else Printf.sprintf "x%d" i)

let pp ?names ppf t =
  if is_empty t then Format.pp_print_string ppf "false"
  else begin
    let d = t.dim in
    let names = match names with Some n -> n | None -> default_names d in
    let atoms = ref [] in
    for i = d - 1 downto 0 do
      for j = d - 1 downto 0 do
        if i <> j then begin
          let b = get t i j in
          let trivial =
            Bound.is_inf b
            || (i = 0 && Bound.equal b Bound.le_zero)
          in
          if not trivial then begin
            let lhs =
              if j = 0 then names.(i)
              else if i = 0 then "-" ^ names.(j)
              else names.(i) ^ "-" ^ names.(j)
            in
            atoms := (lhs ^ Bound.to_string b) :: !atoms
          end
        end
      done
    done;
    match !atoms with
    | [] -> Format.pp_print_string ppf "true"
    | atoms -> Format.pp_print_string ppf (String.concat " & " atoms)
  end

let to_string ?names t = Format.asprintf "%a" (pp ?names) t
let to_array t = Array.map Bound.of_int t.m

let of_array ~clocks arr =
  let dim = clocks + 1 in
  assert (Array.length arr = dim * dim);
  close_inplace { dim; m = Array.map Bound.to_int arr; h = -1; w = 0 }
