type t = { dim : int; m : int array }

(* Internal representation: [m] holds raw Bound encodings row-major,
   [m.(i*dim + j)] bounding [x_i - x_j]. Invariant: the matrix is closed
   (canonical) and a semantically empty zone is normalized so that every
   entry is [Bound.lt_zero]. *)

let clocks t = t.dim - 1
let raw t i j = t.m.((i * t.dim) + j)
let get t i j = Bound.of_int (raw t i j)

let le_zero = Bound.to_int Bound.le_zero
let lt_zero = Bound.to_int Bound.lt_zero
let inf = Bound.to_int Bound.inf

let empty ~clocks =
  let dim = clocks + 1 in
  { dim; m = Array.make (dim * dim) lt_zero }

let is_empty t = t.m.(0) < le_zero

let zero ~clocks =
  let dim = clocks + 1 in
  { dim; m = Array.make (dim * dim) le_zero }

let universal ~clocks =
  let dim = clocks + 1 in
  let m = Array.make (dim * dim) inf in
  for i = 0 to dim - 1 do
    m.((i * dim) + i) <- le_zero;
    m.(i) <- le_zero (* row 0: 0 - x_j <= 0 *)
  done;
  { dim; m }

let copy t = { t with m = Array.copy t.m }

let normalize_empty t =
  Array.fill t.m 0 (t.dim * t.dim) lt_zero;
  t

(* Full Floyd-Warshall closure; used after bulk updates. Returns the
   (possibly emptied) argument, mutated in place. *)
let close_inplace t =
  let d = t.dim and m = t.m in
  let badd a b = Bound.to_int (Bound.add (Bound.of_int a) (Bound.of_int b)) in
  (try
     for k = 0 to d - 1 do
       for i = 0 to d - 1 do
         let ik = m.((i * d) + k) in
         if ik <> inf then
           for j = 0 to d - 1 do
             let kj = m.((k * d) + j) in
             if kj <> inf then begin
               let via = badd ik kj in
               if via < m.((i * d) + j) then m.((i * d) + j) <- via
             end
           done
       done;
       for i = 0 to d - 1 do
         if m.((i * d) + i) < le_zero then raise Exit
       done
     done
   with Exit -> ignore (normalize_empty t));
  if t.m.(0) < le_zero then ignore (normalize_empty t);
  t

let constrain t i j b =
  let b = Bound.to_int b in
  if is_empty t then t
  else if b >= raw t i j then t
  else begin
    (* New bound on (i,j) would make the i-j cycle negative? *)
    let cycle = Bound.add (get t j i) (Bound.of_int b) in
    if Bound.to_int cycle < le_zero then empty ~clocks:(clocks t)
    else begin
      let t = copy t in
      let d = t.dim and m = t.m in
      m.((i * d) + j) <- b;
      (* Incremental closure: every new shortest path uses edge (i,j)
         exactly once, so relax all pairs through it. *)
      for k = 0 to d - 1 do
        let ki = m.((k * d) + i) in
        if ki <> inf then begin
          let kj = Bound.to_int (Bound.add (Bound.of_int ki) (Bound.of_int b)) in
          for l = 0 to d - 1 do
            let jl = m.((j * d) + l) in
            if jl <> inf then begin
              let v = Bound.to_int (Bound.add (Bound.of_int kj) (Bound.of_int jl)) in
              if v < m.((k * d) + l) then m.((k * d) + l) <- v
            end
          done
        end
      done;
      let ok = ref true in
      for k = 0 to d - 1 do
        if m.((k * d) + k) < le_zero then ok := false
      done;
      if !ok then t else normalize_empty t
    end
  end

(* Fault injection for the differential oracle harness: a deliberately
   broken DBM operation, switched on only by tests and `quantcli fuzz
   --inject`, so the harness can prove it detects real backend bugs.
   [Broken_up] makes [up] forget to open the upper bound of the highest
   clock (time stops for it); [Unclosed_intersect] skips re-closing
   after [intersect], leaking non-canonical DBMs into subsumption. *)
type fault = Broken_up | Unclosed_intersect

let injected_fault = ref None
let inject_fault f = injected_fault := f

let up t =
  if is_empty t then t
  else begin
    let t = copy t in
    let hi = if !injected_fault = Some Broken_up then t.dim - 2 else t.dim - 1 in
    for i = 1 to hi do
      t.m.((i * t.dim) + 0) <- inf
    done;
    t
  end

let down t =
  if is_empty t then t
  else begin
    let t = copy t in
    let d = t.dim and m = t.m in
    for i = 1 to d - 1 do
      m.(i) <- le_zero;
      for j = 1 to d - 1 do
        if m.((j * d) + i) < m.(i) then m.(i) <- m.((j * d) + i)
      done
    done;
    t
  end

let reset t x v =
  if is_empty t then t
  else begin
    assert (v >= 0);
    let t = copy t in
    let d = t.dim and m = t.m in
    let le_v = Bound.to_int (Bound.le v) and le_neg_v = Bound.to_int (Bound.le (-v)) in
    for j = 0 to d - 1 do
      if j <> x then begin
        m.((x * d) + j) <- Bound.to_int (Bound.add (Bound.of_int le_v) (get t 0 j));
        m.((j * d) + x) <- Bound.to_int (Bound.add (get t j 0) (Bound.of_int le_neg_v))
      end
    done;
    t
  end

let copy_clock t ~dst ~src =
  if is_empty t || dst = src then t
  else begin
    let t' = copy t in
    let d = t'.dim and m = t'.m in
    for j = 0 to d - 1 do
      if j <> dst then begin
        m.((dst * d) + j) <- raw t src j;
        m.((j * d) + dst) <- raw t j src
      end
    done;
    m.((dst * d) + src) <- le_zero;
    m.((src * d) + dst) <- le_zero;
    t'
  end

let free t x =
  if is_empty t then t
  else begin
    let t' = copy t in
    let d = t'.dim and m = t'.m in
    for j = 0 to d - 1 do
      if j <> x then begin
        m.((x * d) + j) <- inf;
        m.((j * d) + x) <- raw t j 0
      end
    done;
    t'
  end

let intersect t1 t2 =
  assert (t1.dim = t2.dim);
  if is_empty t1 then t1
  else if is_empty t2 then t2
  else begin
    let t = copy t1 in
    let changed = ref false in
    for k = 0 to (t.dim * t.dim) - 1 do
      if t2.m.(k) < t.m.(k) then begin
        t.m.(k) <- t2.m.(k);
        changed := true
      end
    done;
    if !changed && !injected_fault <> Some Unclosed_intersect then
      close_inplace t
    else t
  end

(* Comparison instrumentation: every [equal]/[subset] call either
   short-circuits on physical equality (cheap, counts as a phys hit) or
   scans the matrices (counts as a full scan). Interning (below) is what
   makes the fast path fire; the counters let benchmarks measure it. *)
type cmp_stats = {
  phys_hits : int;  (** comparisons settled by pointer equality *)
  full_scans : int;  (** comparisons that scanned matrix entries *)
  intern_hits : int;  (** [intern] calls that found an existing DBM *)
  intern_misses : int;  (** [intern] calls that added a fresh DBM *)
}

let c_phys = ref 0
let c_full = ref 0
let c_ihit = ref 0
let c_imiss = ref 0

let cmp_stats () =
  {
    phys_hits = !c_phys;
    full_scans = !c_full;
    intern_hits = !c_ihit;
    intern_misses = !c_imiss;
  }

let reset_cmp_stats () =
  c_phys := 0;
  c_full := 0;
  c_ihit := 0;
  c_imiss := 0

let subset t1 t2 =
  if t1 == t2 || t1.m == t2.m then begin
    incr c_phys;
    true
  end
  else begin
    incr c_full;
    assert (t1.dim = t2.dim);
    is_empty t1
    ||
    let ok = ref true in
    for k = 0 to (t1.dim * t1.dim) - 1 do
      if t1.m.(k) > t2.m.(k) then ok := false
    done;
    !ok
  end

let equal t1 t2 =
  if t1 == t2 || t1.m == t2.m then begin
    incr c_phys;
    true
  end
  else begin
    incr c_full;
    t1.dim = t2.dim && (t1.m = t2.m || (is_empty t1 && is_empty t2))
  end

(* Hash-consing: canonical DBMs are interned in a weak set so that equal
   zones share one representative, giving [equal]/[subset] their
   pointer-equality fast path and deduplicating passed-list storage. The
   set is weak: representatives no longer referenced by any store are
   collected. Safe because every exported operation copies before
   mutating. *)
module Hc = Weak.Make (struct
  type nonrec t = t

  let equal a b = a.dim = b.dim && a.m = b.m
  let hash a = Hashtbl.hash a.m
end)

let hc_table = Hc.create 4096

let intern t =
  let r = Hc.merge hc_table t in
  if r == t then incr c_imiss else incr c_ihit;
  r

let relation t1 t2 =
  match subset t1 t2, subset t2 t1 with
  | true, true -> `Equal
  | true, false -> `Subset
  | false, true -> `Superset
  | false, false -> `Incomparable

let extrapolate t k =
  if is_empty t then t
  else begin
    let t' = copy t in
    let d = t'.dim and m = t'.m in
    let bound_of i = if i = 0 then 0 else max 0 k.(i) in
    let changed = ref false in
    for i = 0 to d - 1 do
      for j = 0 to d - 1 do
        if i <> j then begin
          let b = m.((i * d) + j) in
          if b <> inf then begin
            let c = Bound.constant (Bound.of_int b) in
            if c > bound_of i then begin
              m.((i * d) + j) <- inf;
              changed := true
            end
            else if c < -bound_of j then begin
              m.((i * d) + j) <- Bound.to_int (Bound.lt (-bound_of j));
              changed := true
            end
          end
        end
      done
    done;
    if !changed then close_inplace t' else t'
  end

let satisfies t v =
  (not (is_empty t))
  &&
  let d = t.dim in
  let ok = ref true in
  for i = 0 to d - 1 do
    for j = 0 to d - 1 do
      if not (Bound.sat (get t i j) (v.(i) -. v.(j))) then ok := false
    done
  done;
  !ok

(* Sampling scales every constant by F = dim + 1 so that strict bounds
   become weak integer bounds ([< m] turns into [<= F*m - 1]) on F-scaled
   valuations. F exceeds the length of any simple cycle, so a non-empty
   DBM stays non-empty after scaling. The scaled matrix is re-closed
   (scaling does not preserve canonicity) and a greedy assignment in
   clock order then always succeeds. *)
let sample rng t =
  if is_empty t then None
  else begin
    let d = t.dim in
    (* Power of two > dim: large enough that no simple cycle of strict
       bounds collapses, and exact as a binary-float denominator so the
       returned valuation satisfies its constraints without rounding. *)
    let factor =
      let rec pow2 f = if f > d then f else pow2 (2 * f) in
      pow2 2
    in
    let big = max_int / 4 in
    let s = Array.make (d * d) big in
    for i = 0 to d - 1 do
      for j = 0 to d - 1 do
        let b = get t i j in
        if not (Bound.is_inf b) then begin
          let c = factor * Bound.constant b in
          s.((i * d) + j) <- (if Bound.is_strict b then c - 1 else c)
        end
      done
    done;
    (* Plain min-plus Floyd-Warshall on the scaled weights. *)
    for k = 0 to d - 1 do
      for i = 0 to d - 1 do
        let ik = s.((i * d) + k) in
        if ik < big then
          for j = 0 to d - 1 do
            let kj = s.((k * d) + j) in
            if kj < big && ik + kj < s.((i * d) + j) then
              s.((i * d) + j) <- ik + kj
          done
      done
    done;
    for i = 0 to d - 1 do
      assert (s.((i * d) + i) >= 0)
    done;
    let v = Array.make d 0 in
    for i = 1 to d - 1 do
      let lo = ref 0 and hi = ref None in
      for j = 0 to i - 1 do
        let lower = s.((j * d) + i) in
        if lower < big then lo := max !lo (v.(j) - lower);
        let upper = s.((i * d) + j) in
        if upper < big then begin
          let u = v.(j) + upper in
          hi := Some (match !hi with None -> u | Some h -> min h u)
        end
      done;
      let value =
        match !hi with
        | Some h ->
          assert (h >= !lo);
          !lo + Random.State.int rng (h - !lo + 1)
        | None -> !lo + Random.State.int rng (4 * factor)
      in
      v.(i) <- value
    done;
    Some (Array.map (fun x -> float_of_int x /. float_of_int factor) v)
  end

let hash t = Hashtbl.hash t.m

let default_names d =
  Array.init d (fun i -> if i = 0 then "0" else Printf.sprintf "x%d" i)

let pp ?names ppf t =
  if is_empty t then Format.pp_print_string ppf "false"
  else begin
    let d = t.dim in
    let names = match names with Some n -> n | None -> default_names d in
    let atoms = ref [] in
    for i = d - 1 downto 0 do
      for j = d - 1 downto 0 do
        if i <> j then begin
          let b = get t i j in
          let trivial =
            Bound.is_inf b
            || (i = 0 && Bound.equal b Bound.le_zero)
          in
          if not trivial then begin
            let lhs =
              if j = 0 then names.(i)
              else if i = 0 then "-" ^ names.(j)
              else names.(i) ^ "-" ^ names.(j)
            in
            atoms := (lhs ^ Bound.to_string b) :: !atoms
          end
        end
      done
    done;
    match !atoms with
    | [] -> Format.pp_print_string ppf "true"
    | atoms -> Format.pp_print_string ppf (String.concat " & " atoms)
  end

let to_string ?names t = Format.asprintf "%a" (pp ?names) t
let to_array t = Array.map Bound.of_int t.m

let of_array ~clocks arr =
  let dim = clocks + 1 in
  assert (Array.length arr = dim * dim);
  close_inplace { dim; m = Array.map Bound.to_int arr }
