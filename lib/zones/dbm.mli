(** Difference Bound Matrices: the symbolic representation of clock zones.

    A DBM over [n] clocks is an [(n+1)×(n+1)] matrix of {!Bound.t}; entry
    [(i, j)] bounds the difference [x_i - x_j], with clock [0] the constant
    reference clock (always 0). Every value of type {!t} exposed by this
    interface is {e canonical} (closed under shortest paths) and emptiness
    is normalized, so structural equality of canonical forms coincides
    with semantic equality of zones.

    All operations are functional: they return fresh DBMs and never mutate
    their arguments. Algorithms follow Bengtsson & Yi, {e Timed Automata:
    Semantics, Algorithms and Tools} (2004). *)

type t

(** Number of real clocks (the matrix dimension is [clocks t + 1]). *)
val clocks : t -> int

(** [zero ~clocks] is the zone where every clock equals 0. *)
val zero : clocks:int -> t

(** [universal ~clocks] is the zone of all non-negative valuations. *)
val universal : clocks:int -> t

(** [empty ~clocks] is the canonical empty zone. *)
val empty : clocks:int -> t

val is_empty : t -> bool

(** [get z i j] is the bound on [x_i - x_j]. *)
val get : t -> int -> int -> Bound.t

(** [constrain z i j b] adds the constraint [x_i - x_j ≺ m]; the result is
    canonical and possibly empty. O(dim²). *)
val constrain : t -> int -> int -> Bound.t -> t

(** [up z] is the future of [z]: upper bounds on individual clocks are
    removed (time elapses). *)
val up : t -> t

(** [down z] is the past of [z]: lower bounds relax to 0. *)
val down : t -> t

(** [reset z x v] sets clock [x] to the non-negative integer [v]. *)
val reset : t -> int -> int -> t

(** [copy_clock z ~dst ~src] assigns clock [dst] the value of [src]. *)
val copy_clock : t -> dst:int -> src:int -> t

(** [free z x] forgets all constraints on clock [x]. *)
val free : t -> int -> t

(** [intersect z1 z2] is the conjunction of the two zones. *)
val intersect : t -> t -> t

(** [subset z1 z2] decides [z1 ⊆ z2] (valid because both are canonical). *)
val subset : t -> t -> bool

val equal : t -> t -> bool

val relation : t -> t -> [ `Equal | `Subset | `Superset | `Incomparable ]

(** [extrapolate z k] applies classic maximal-constant extrapolation
    (Extra-M): [k.(i)] is the largest constant compared against clock [i]
    in the model (entry 0 is ignored; negative entries are clamped to 0).
    Guarantees a finite zone graph. *)
val extrapolate : t -> int array -> t

(** [satisfies z v] decides membership of the valuation [v] (indexed by
    clock, [v.(0)] must be [0.]). *)
val satisfies : t -> float array -> bool

(** [sample rng z] draws a valuation inside [z], or [None] if empty.
    Values are multiples of ½, so strict constraints are handled exactly. *)
val sample : Random.State.t -> t -> float array option

(** Structural hash, compatible with {!equal}. *)
val hash : t -> int

(** [intern z] returns the canonical shared representative of [z]: equal
    zones intern to the same (physically equal) DBM, so later
    {!equal}/{!subset} checks between interned zones short-circuit on
    pointer equality. The intern table is weak — representatives are
    collected once no store references them. *)
val intern : t -> t

(** Counters for {!equal}/{!subset}/{!intern} since the last
    {!reset_cmp_stats}; exploration engines report per-run deltas. *)
type cmp_stats = {
  phys_hits : int;  (** comparisons settled by pointer equality *)
  full_scans : int;  (** comparisons that scanned matrix entries *)
  intern_hits : int;  (** [intern] calls that found an existing DBM *)
  intern_misses : int;  (** [intern] calls that added a fresh DBM *)
}

val cmp_stats : unit -> cmp_stats
val reset_cmp_stats : unit -> unit

(** Deliberately broken DBM operations for fault injection — the
    mutation smoke test of the differential oracle harness ({!Gen}
    library) flips one on and must then observe a cross-backend
    divergence. [Broken_up] stops time for the highest clock in {!up};
    [Unclosed_intersect] skips the re-closure after {!intersect},
    leaking non-canonical DBMs. Never enabled outside tests. *)
type fault = Broken_up | Unclosed_intersect

(** [inject_fault (Some f)] switches the fault on, [inject_fault None]
    restores correct behaviour. *)
val inject_fault : fault option -> unit

(** [pp ~names ppf z] prints the non-trivial constraints, e.g.
    ["x<=5 & y-x<2"]. [names.(i)] names clock [i] ([names.(0)] unused). *)
val pp : ?names:string array -> Format.formatter -> t -> unit

val to_string : ?names:string array -> t -> string

(** Raw bounds row-major (for tests and serialization). *)
val to_array : t -> Bound.t array

(** Rebuild a DBM from raw bounds; the input is closed and normalized. *)
val of_array : clocks:int -> Bound.t array -> t
