(** Difference Bound Matrices: the symbolic representation of clock zones.

    A DBM over [n] clocks is an [(n+1)×(n+1)] matrix of {!Bound.t}; entry
    [(i, j)] bounds the difference [x_i - x_j], with clock [0] the constant
    reference clock (always 0). Every value of type {!t} exposed by this
    interface is {e canonical} (closed under shortest paths) and emptiness
    is normalized, so structural equality of canonical forms coincides
    with semantic equality of zones.

    All operations are functional: they return fresh DBMs and never mutate
    their arguments. Algorithms follow Bengtsson & Yi, {e Timed Automata:
    Semantics, Algorithms and Tools} (2004).

    {1 Zone lifecycle}

    Successor pipelines ([up]/[reset]/[intersect]/[constrain]) build plain
    [t] values; nothing long-lived should hold one. At the end of every
    successor computation the zone is passed through {!seal}, which
    extrapolates it, memoizes its hash and interns it in a global weak
    table, returning a {!canon} handle. [canon] is a private synonym of
    [t] — read-only operations accept handles via the free coercion
    [(z :> Dbm.t)], but the only producer of [canon] is [seal], so a store
    keyed on [canon] can never receive an un-sealed zone. Equality and
    hashing between handles are O(1): pointer equality and the memoized
    hash word. *)

type t

(** A sealed canonical handle: closed, normalized, extrapolated, interned
    and carrying a memoized hash. Produced only by {!seal}; use
    [(z :> t)] to apply read-only DBM operations to a handle. *)
type canon = private t

(** Number of real clocks (the matrix dimension is [clocks t + 1]). *)
val clocks : t -> int

(** [zero ~clocks] is the zone where every clock equals 0. *)
val zero : clocks:int -> t

(** [universal ~clocks] is the zone of all non-negative valuations. *)
val universal : clocks:int -> t

(** [empty ~clocks] is the canonical empty zone. *)
val empty : clocks:int -> t

val is_empty : t -> bool

(** [get z i j] is the bound on [x_i - x_j]. *)
val get : t -> int -> int -> Bound.t

(** [constrain z i j b] adds the constraint [x_i - x_j ≺ m]; the result is
    canonical and possibly empty. O(dim²). *)
val constrain : t -> int -> int -> Bound.t -> t

(** [up z] is the future of [z]: upper bounds on individual clocks are
    removed (time elapses). *)
val up : t -> t

(** [down z] is the past of [z]: lower bounds relax to 0. *)
val down : t -> t

(** [reset z x v] sets clock [x] to the non-negative integer [v]. *)
val reset : t -> int -> int -> t

(** [copy_clock z ~dst ~src] assigns clock [dst] the value of [src]. *)
val copy_clock : t -> dst:int -> src:int -> t

(** [free z x] forgets all constraints on clock [x]. *)
val free : t -> int -> t

(** [intersect z1 z2] is the conjunction of the two zones. *)
val intersect : t -> t -> t

(** [subset z1 z2] decides [z1 ⊆ z2] (valid because both are canonical).
    Counted in {!cmp_stats}: pointer-equal arguments settle as a phys
    hit, anything else is a full scan. *)
val subset : t -> t -> bool

val equal : t -> t -> bool

(** Uncounted variants for bookkeeping comparisons (e.g. reference
    stores) that would otherwise double-count sealed handles in
    {!cmp_stats}. *)
val subset_quiet : t -> t -> bool

val equal_quiet : t -> t -> bool

(** [note_scans ~phys ~lattice] adds to the {!cmp_stats} counters in
    bulk. For hot loops that walk whole buckets of zones with the quiet
    comparisons: tally locally, flush once per walk, instead of paying a
    counter store on every scan. *)
val note_scans : phys:int -> lattice:int -> unit

val relation : t -> t -> [ `Equal | `Subset | `Superset | `Incomparable ]

(** Which abstraction {!seal} applies before interning. [Extra_m] is
    classic maximal-constant extrapolation; [Extra_lu] is the coarser
    lower/upper-bound extrapolation of Behrmann, Bouyer, Larsen &
    Pelánek ({e Lower and upper bounds in zone-based abstractions of
    timed automata}, 2004/06) — it produces fewer distinct zones while
    preserving location reachability. *)
type extrapolation =
  | No_extrapolation
  | Extra_m of int array  (** per-clock maximal constants *)
  | Extra_lu of { lower : int array; upper : int array }
      (** per-clock maximal lower-guard / upper-guard constants *)

(** [extrapolate z k] applies classic maximal-constant extrapolation
    (Extra-M): [k.(i)] is the largest constant compared against clock [i]
    in the model (entry 0 is ignored; negative entries are clamped to 0).
    Guarantees a finite zone graph. *)
val extrapolate : t -> int array -> t

(** [extrapolate_lu z ~lower ~upper] applies Extra-LU: an entry
    [x_i - x_j ≺ c] becomes unbounded when [c > lower.(i)] and weakens to
    [< -upper.(j)] when [c < -upper.(j)]. Coarser than (or equal to)
    Extra-M with [k.(i) = max lower.(i) upper.(i)]; only widens, so a
    non-empty zone stays non-empty. *)
val extrapolate_lu : t -> lower:int array -> upper:int array -> t

(** [seal ?extra z] is the sealing boundary: it applies [extra] (default
    {!No_extrapolation}), memoizes the structural hash, and interns the
    result so equal zones share one physical representative. Sealing an
    already-sealed handle is the identity. The intern table is weak
    (representatives die with their last store reference) and
    mutex-guarded, so seal is safe to call from parallel domains. *)
val seal : ?extra:extrapolation -> t -> canon

(** [is_sealed z] holds exactly for interned representatives returned by
    {!seal}. Stores assert this on every key they receive. *)
val is_sealed : t -> bool

(** [satisfies z v] decides membership of the valuation [v] (indexed by
    clock, [v.(0)] must be [0.]). *)
val satisfies : t -> float array -> bool

(** [sample rng z] draws a valuation inside [z], or [None] if empty.
    Values are multiples of ½, so strict constraints are handled exactly. *)
val sample : Random.State.t -> t -> float array option

(** Structural hash, compatible with {!equal}. O(1) on sealed handles
    (memoized by {!seal}), O(dim²) otherwise. *)
val hash : t -> int

(** Monotone width score: [subset z z'] implies [width z <= width z']
    (clamped sum of the bound entries; empty zones sit at the bottom).
    O(1) on sealed handles (memoized by {!seal}), O(dim²) otherwise.
    Subsumption stores order their buckets by decreasing width and use
    the contrapositive to skip inclusion scans that cannot succeed. *)
val width : t -> int

(** Counters for {!equal}/{!subset}/{!seal} since the last
    {!reset_cmp_stats}; exploration engines report per-run deltas.
    Tallies are kept in domain-local cells and summed on read, so
    comparisons from pooled domains are never lost to races; read (and
    reset) while those domains are quiescent — e.g. at a pool join —
    for an exact snapshot. *)
type cmp_stats = {
  phys_hits : int;
      (** comparisons settled by pointer identity — including
          inequality between two sealed handles, which the canonical
          table decides without a scan *)
  full_scans : int;
      (** equality checks that scanned matrix entries (at least one
          un-sealed operand) *)
  lattice_scans : int;
      (** subset checks between distinct zones — inclusion, unlike
          equality, cannot be settled by pointer *)
  intern_hits : int;  (** [seal] calls that found an existing DBM *)
  intern_misses : int;  (** [seal] calls that added a fresh DBM *)
}

val cmp_stats : unit -> cmp_stats
val reset_cmp_stats : unit -> unit

(** Live entries in the weak intern table behind {!seal}. The table
    holds representatives only as long as something else (a passed
    list, a warm cache anchor) keeps them alive, so this is the direct
    observable for intern-lifecycle tests and for a serving process
    watching its warm-cache footprint: after the last store is dropped
    and a full major GC, the count falls back to the baseline. *)
val intern_size : unit -> int

(** Deliberately broken DBM operations for fault injection — the
    mutation smoke test of the differential oracle harness ({!Gen}
    library) flips one on and must then observe a cross-backend
    divergence. [Broken_up] stops time for the highest clock in {!up};
    [Unclosed_intersect] skips the re-closure after {!intersect},
    leaking non-canonical DBMs ({!seal} deliberately does not re-close,
    so the fault stays observable downstream). Never enabled outside
    tests. *)
type fault = Broken_up | Unclosed_intersect

(** [inject_fault (Some f)] switches the fault on, [inject_fault None]
    restores correct behaviour. *)
val inject_fault : fault option -> unit

(** [pp ~names ppf z] prints the non-trivial constraints, e.g.
    ["x<=5 & y-x<2"]. [names.(i)] names clock [i] ([names.(0)] unused). *)
val pp : ?names:string array -> Format.formatter -> t -> unit

val to_string : ?names:string array -> t -> string

(** Raw bounds row-major (for tests and serialization). *)
val to_array : t -> Bound.t array

(** Rebuild a DBM from raw bounds; the input is closed and normalized. *)
val of_array : clocks:int -> Bound.t array -> t
