(** The metrics registry: named counters, gauges and log-scale
    histograms with cheap, domain-safe hot-path updates.

    Handles are obtained once by name ({!Counter.make} is idempotent:
    the same name in the same registry returns the same handle) and then
    updated with a single atomic write — resolve them at module
    initialisation, not inside loops. Updates may come concurrently from
    several domains (the [Par] worker pool does this): counters use
    fetch-and-add, gauges one atomic cell, histogram scalars CAS retry
    loops — no update is lost. {!Registry.reset} zeroes values in
    place, so handles survive bench iterations; registration, reset and
    snapshot serialise on a per-registry mutex. A snapshot racing
    updates reads each cell atomically but is not a consistent cut
    across cells.

    A snapshot lists only the metrics touched since the last reset. *)

module Registry : sig
  type t

  val create : unit -> t

  (** The process-wide registry every instrument uses by default. *)
  val default : t

  (** Zero all values, keeping registrations (handles stay valid). *)
  val reset : t -> unit

  (** Registered names, sorted. *)
  val names : t -> string list
end

module Counter : sig
  type t

  val make : ?registry:Registry.t -> string -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val make : ?registry:Registry.t -> string -> t
  val set : t -> float -> unit

  (** Keep the maximum of all [set_max] values since the last reset. *)
  val set_max : t -> float -> unit

  val value : t -> float
end

(** Histograms bucket positive values by powers of two: bucket [i]
    holds \[2^(i-20), 2^(i-19)); zero/negative values land in bucket 0,
    out-of-range values clamp. 41 buckets cover ~1e-6 .. ~1e6 — DBM
    sizes, successor fan-outs and per-run wall times alike. *)
module Histogram : sig
  type t

  val make : ?registry:Registry.t -> string -> t
  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  (** [nan] when empty. *)
  val mean : t -> float

  (** [quantile h q] — upper edge of the first bucket whose cumulative
      count reaches [q * count], clamped to the observed min/max.
      [nan] when empty. *)
  val quantile : t -> float -> float

  (** [bucket_of v] — index of the bucket [v] falls into. *)
  val bucket_of : float -> int

  (** Exclusive upper edge of bucket [i]: [2.0 ** (i - 19)]. *)
  val bucket_upper : int -> float
end

(** JSON object: one field per touched metric, sorted by name. *)
val snapshot : ?registry:Registry.t -> unit -> Json.t
