(** The metrics registry: named counters, gauges and log-scale
    histograms with per-domain sharded storage.

    Handles are obtained once by name ({!Counter.make} is idempotent:
    the same name in the same registry returns the same handle) and then
    updated with a plain store into the calling domain's private shard —
    resolve them at module initialisation, not inside loops. There is no
    atomic read-modify-write on the hot path and no cache line shared
    between writer domains; updates may come concurrently from several
    domains (the [Par] worker pool does this) and none is lost.

    Reads fold over all shards in domain-id order, so aggregation is
    deterministic; after a [Domain.join] or [Par.Pool] task join the
    fold is exact, while a read racing live updates may miss the very
    latest stores and is not a consistent cut across cells. {!merge}
    collapses every other domain's shard into the caller's ([Par.Pool]
    invokes it at task join). {!Registry.reset} zeroes shard cells in
    place, so handles survive bench iterations.

    A snapshot lists only the metrics touched since the last reset. *)

module Registry : sig
  type t

  val create : unit -> t

  (** The process-wide registry every instrument uses by default. *)
  val default : t

  (** Zero all values in every shard, keeping registrations (handles
      stay valid). *)
  val reset : t -> unit

  (** Registered names, sorted. *)
  val names : t -> string list
end

module Counter : sig
  type t

  val make : ?registry:Registry.t -> string -> t
  val incr : t -> unit
  val add : t -> int -> unit

  (** Sum over all shards. *)
  val value : t -> int
end

module Gauge : sig
  type t

  val make : ?registry:Registry.t -> string -> t

  (** Last write wins within a domain. *)
  val set : t -> float -> unit

  (** Keep the maximum of all [set_max] values since the last reset. *)
  val set_max : t -> float -> unit

  (** Maximum over the shards that set the gauge (exact for the
      single-writer and high-water-mark patterns, which are the only
      cross-domain uses); [0.0] when never set. *)
  val value : t -> float
end

(** Histograms bucket positive values by powers of two: bucket [i]
    holds \[2^(i-20), 2^(i-19)); zero/negative values land in bucket 0,
    out-of-range values clamp. 41 buckets cover ~1e-6 .. ~1e6 — DBM
    sizes, successor fan-outs and per-run wall times alike. *)
module Histogram : sig
  type t

  val make : ?registry:Registry.t -> string -> t
  val observe : t -> float -> unit

  (** Count/sum over all shards. *)
  val count : t -> int

  val sum : t -> float

  (** [nan] when empty. *)
  val mean : t -> float

  (** [quantile h q] — upper edge of the first bucket whose cumulative
      count (merged across shards) reaches [q * count], clamped to the
      observed min/max. [nan] when empty. *)
  val quantile : t -> float -> float

  (** [bucket_of v] — index of the bucket [v] falls into. *)
  val bucket_of : float -> int

  (** Exclusive upper edge of bucket [i]: [2.0 ** (i - 19)]. *)
  val bucket_upper : int -> float
end

(** Fold every other domain's shard into the calling domain's and zero
    the sources. Call at a synchronisation point (the other writers
    quiescent, their writes visible — e.g. right after joining domains):
    the merge is then exact, and because shards are visited in domain-id
    order any float summation is deterministic. [Par.Pool] calls this
    automatically after each parallel task. *)
val merge : ?registry:Registry.t -> unit -> unit

(** JSON object: one field per touched metric, sorted by name. *)
val snapshot : ?registry:Registry.t -> unit -> Json.t
