(** Trace-event sinks.

    Spans emit structured events to the currently installed sink. The
    default {!null} sink drops everything at the cost of a pointer
    comparison, so hot paths may stay instrumented unconditionally. *)

type event =
  | Span_start of { name : string; depth : int; t : float }
      (** [t] is absolute time (seconds since the epoch). *)
  | Span_end of {
      name : string;
      depth : int;
      t : float;
      dur_s : float;
      ok : bool;  (** [false] when the span body raised *)
    }

type t = { emit : event -> unit; close : unit -> unit }

val null : t
val is_null : t -> bool

(** Indented [> name] / [< name dur] lines on stderr. *)
val stderr_pretty : unit -> t

(** One JSON object per event, one per line, written to [path]
    ("JSONL"); the file is closed when the sink is replaced. *)
val jsonl : string -> t

(** In-memory sink for tests: returns the sink and a function yielding
    the events recorded so far, in emission order. *)
val memory : unit -> t * (unit -> event list)

(** [set s] installs [s] as the process-wide sink, closing the previous
    one. *)
val set : t -> unit

val current : t ref
val emit : event -> unit
