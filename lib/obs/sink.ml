(* Pluggable destinations for trace events. The null sink is the
   default and costs one physical-equality test per span, so
   instrumentation stays free when tracing is off. *)

type event =
  | Span_start of { name : string; depth : int; t : float }
  | Span_end of { name : string; depth : int; t : float; dur_s : float; ok : bool }

type t = { emit : event -> unit; close : unit -> unit }

let null = { emit = (fun _ -> ()); close = (fun () -> ()) }
let is_null t = t == null

let stderr_pretty () =
  {
    emit =
      (fun ev ->
        match ev with
        | Span_start { name; depth; _ } ->
          Printf.eprintf "%s> %s\n%!" (String.make (2 * depth) ' ') name
        | Span_end { name; depth; dur_s; ok; _ } ->
          Printf.eprintf "%s< %s  %.6fs%s\n%!"
            (String.make (2 * depth) ' ')
            name dur_s
            (if ok then "" else "  (raised)"));
    close = (fun () -> ());
  }

let event_json ev =
  match ev with
  | Span_start { name; depth; t } ->
    Json.Obj
      [
        ("ev", Json.Str "start");
        ("span", Json.Str name);
        ("depth", Json.Int depth);
        ("t", Json.Float t);
      ]
  | Span_end { name; depth; t; dur_s; ok } ->
    Json.Obj
      [
        ("ev", Json.Str "end");
        ("span", Json.Str name);
        ("depth", Json.Int depth);
        ("t", Json.Float t);
        ("dur_s", Json.Float dur_s);
        ("ok", Json.Bool ok);
      ]

(* One JSON object per line; flushed on close. *)
let jsonl path =
  let oc = open_out path in
  {
    emit =
      (fun ev ->
        output_string oc (Json.to_string (event_json ev));
        output_char oc '\n');
    close = (fun () -> close_out oc);
  }

let memory () =
  let events = ref [] in
  ( { emit = (fun ev -> events := ev :: !events); close = (fun () -> ()) },
    fun () -> List.rev !events )

let current = ref null

(* Installing a sink closes the previous one (except the shared null). *)
let set t =
  if not (is_null !current) then !current.close ();
  current := t

let emit ev = !current.emit ev
