(** The observability clock: raw cycle-counter reads (~8ns), converted
    to seconds only when something is reported.

    [Unix.gettimeofday] and even the vDSO [CLOCK_MONOTONIC] read cost
    ~40-50ns a call on this toolchain — too dear for the flight
    recorder, which reads the clock twice per recorded phase on the
    engine hot path. {!now} instead returns the CPU cycle counter
    (rdtsc / cntvct_el0; [CLOCK_MONOTONIC] nanoseconds on architectures
    without one) through an [@@noalloc] external with an unboxed float
    result. Readings are in ticks of an a-priori-unknown frequency:
    meaningless absolutely, exact relatively. {!to_s} and {!to_epoch}
    calibrate the tick period against [CLOCK_MONOTONIC] on first use. *)

(** Current time in clock ticks. Monotone, tick unit unspecified —
    subtract two readings and {!to_s} the difference. *)
val now : unit -> float

(** Seconds per tick times [d]: convert a tick delta to seconds. The
    first call calibrates the tick period (spinning until at least 1ms
    has elapsed since module load, if called that early); later calls
    reuse the memoized period. *)
val to_s : float -> float

(** [to_epoch t] places a {!now} reading on the Unix epoch, via a
    wall-clock anchor taken at module initialisation. Good to well
    under a millisecond — plenty for trace export, not for NTP-grade
    timestamping. *)
val to_epoch : float -> float
