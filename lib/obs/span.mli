(** Span-based tracing: nestable named timers.

    [with_ ~name f] runs [f], emitting [Span_start]/[Span_end] events to
    the installed {!Sink} and folding the duration into a per-name
    aggregate (count, total, max) that {!Report} serialises. The span is
    closed — and the nesting depth restored — whether [f] returns or
    raises; a raising body is reported with [ok = false]. *)

val with_ : name:string -> (unit -> 'a) -> 'a

(** Current nesting depth (0 outside any span). *)
val depth : int ref

type timing = { name : string; count : int; total_s : float; max_s : float }

(** Aggregated timings since the last {!reset}, sorted by name. *)
val timings : unit -> timing list

(** The same, as a JSON object keyed by span name. *)
val timings_json : unit -> Json.t

(** Drop all aggregates and reset the depth. *)
val reset : unit -> unit
