(** Span-based tracing: nestable named timers, domain-safe.

    [with_ ~name f] runs [f], emitting [Span_start]/[Span_end] events to
    the installed {!Sink} and folding the duration into per-name
    aggregates (count, total, max) that {!Report} serialises — one
    global table and one keyed by the recording domain, so a parallel
    section's time can be broken out per worker. The span is closed —
    and the nesting depth restored — whether [f] returns or raises; a
    raising body is reported with [ok = false]. Nesting depth is
    domain-local; aggregate updates and sink emission serialise on an
    internal mutex. *)

val with_ : name:string -> (unit -> 'a) -> 'a

(** Current nesting depth in this domain (0 outside any span). *)
val depth : unit -> int

type timing = { name : string; count : int; total_s : float; max_s : float }

(** Aggregated timings since the last {!reset}, sorted by name. *)
val timings : unit -> timing list

(** The same, as a JSON object keyed by span name. *)
val timings_json : unit -> Json.t

(** Per-domain aggregates since the last {!reset}, sorted by domain id
    then name. Domain 0 is the main domain; worker domains get fresh
    ids when their pool is created. *)
val domain_timings : unit -> (int * timing) list

(** The same, as a JSON object [{ "<domain-id>": { "<span>": {...} } }]. *)
val domain_timings_json : unit -> Json.t

(** Drop all aggregates and reset this domain's depth. *)
val reset : unit -> unit
