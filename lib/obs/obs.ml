(** Telemetry for every analysis backend: a metrics registry
    ({!Metrics}: counters, gauges, log-scale histograms), span-based
    tracing to pluggable sinks ({!Span}, {!Sink}), run reports
    ({!Report}) and the shared escaping-correct JSON builder ({!Json}).

    Conventions: metric and span names are dotted lower-case paths
    prefixed with the owning subsystem ([engine.visited],
    [smc.run_wall_s], [bip.interactions_fired]); durations are in
    seconds. Instruments resolve their handles once at module
    initialisation and update them with single atomic writes, so the
    null sink (the default) keeps hot loops at full speed. The whole
    layer is domain-safe: the [Par] worker pool updates metrics and
    records spans concurrently, and run reports break span time out per
    domain. *)

module Json = Json
module Clock = Clock
module Shard = Shard
module Metrics = Metrics
module Sink = Sink
module Span = Span
module Flight = Flight
module Report = Report

(** Shorthands on the default registry. *)
let counter name = Metrics.Counter.make name

let gauge name = Metrics.Gauge.make name
let histogram name = Metrics.Histogram.make name

(** Reset the default registry, the span aggregates and the flight
    recorder — the start of a fresh measured run. *)
let reset () =
  Metrics.Registry.reset Metrics.Registry.default;
  Span.reset ();
  Flight.reset ()
