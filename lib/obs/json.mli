(** Escaping-correct JSON building and parsing.

    Every JSON string the tools emit (engine stats, bench entries,
    [--stats-json], run reports, trace events) goes through this builder,
    so a model or query name containing a quote or a newline can never
    produce invalid output. The parser exists for round-trip tests and
    smoke validation; it accepts exactly the standard grammar (no
    comments, no trailing commas). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values print as [null] *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit

(** [member key j] — field lookup, [None] on missing key or non-object. *)
val member : string -> t -> t option

(** Numeric coercion: [Int] and [Float] both answer. *)
val to_float_opt : t -> float option

exception Parse_error of string

(** @raise Parse_error on malformed input. *)
val parse : string -> t
