(** Escaping-correct JSON building and parsing.

    Every JSON string the tools emit (engine stats, bench entries,
    [--stats-json], run reports, trace events) goes through this builder,
    so a model or query name containing a quote or a newline can never
    produce invalid output. The parser exists for round-trip tests and
    smoke validation; it accepts exactly the standard grammar (no
    comments, no trailing commas). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values print as [null] *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit

(** [member key j] — field lookup, [None] on missing key or non-object. *)
val member : string -> t -> t option

(** Numeric coercion: [Int] and [Float] both answer. *)
val to_float_opt : t -> float option

exception Parse_error of string

(** @raise Parse_error on malformed input. *)
val parse : string -> t

(** Resource bounds for input from outside the process: [max_bytes] caps
    the frame size (checked before scanning), [max_depth] the object /
    array nesting (which also bounds the parser's recursion). *)
type limits = { max_bytes : int; max_depth : int }

(** 8 MiB, depth 128 — generous for any legitimate protocol frame. *)
val default_limits : limits

(** [parse_untrusted s] — like {!parse} under [limits], but {e total}:
    malformed, truncated, oversized and over-nested input all come back
    as [Error msg]; no exception escapes. This is the only parser the
    serving layer may apply to socket input. *)
val parse_untrusted : ?limits:limits -> string -> (t, string) result
