(* Minimal JSON tree: enough to build every report/stats object the
   tool emits with correct escaping, and to parse them back in tests
   and CI smoke checks. No dependency beyond the stdlib. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/infinity literals; map them to null. The shortest
   round-tripping decimal form keeps reports readable. Integral values
   keep a ".0" marker so a reader (and our own parser) sees a float,
   not an int. *)
let float_to_string f =
  if not (Float.is_finite f) then "null"
  else begin
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    let is_intlike =
      String.for_all (function '0' .. '9' | '-' -> true | _ -> false) s
    in
    if is_intlike then s ^ ".0" else s
  end

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | Str s -> escape_to buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

(* Resource bounds for input that arrives from outside the process (the
   quantd socket). Both limits turn into an ordinary [Parse_error] /
   [Error _], never a stack overflow or an unbounded allocation:
   [max_bytes] is checked before the scan starts, [max_depth] on every
   '{' / '[' descent (the parser recurses once per nesting level, so the
   depth bound is also the recursion bound). *)
type limits = { max_bytes : int; max_depth : int }

let default_limits = { max_bytes = 8 * 1024 * 1024; max_depth = 128 }

let parse_with ?limits s =
  let n = String.length s in
  (match limits with
   | Some l when n > l.max_bytes ->
     raise
       (Parse_error
          (Printf.sprintf "input too large: %d bytes (limit %d)" n l.max_bytes))
   | _ -> ());
  let max_depth = match limits with Some l -> l.max_depth | None -> max_int in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some '/' -> Buffer.add_char buf '/'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           pos := !pos + 4;
           (* Only BMP code points below 0x80 reproduce exactly; others
              are stored UTF-8 encoded, matching what we emit. *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "bad escape");
        loop ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.contains text '.' || String.contains text 'e'
       || String.contains text 'E'
    then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value depth =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      if depth >= max_depth then fail "nesting too deep";
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      if depth >= max_depth then fail "nesting too deep";
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elems [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value 0 in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s = parse_with s

(* Untrusted input (socket frames): every malformed, truncated, oversized
   or over-nested input comes back as [Error msg] — nothing escapes as an
   exception, which the daemon's request loop relies on. *)
let parse_untrusted ?(limits = default_limits) s =
  match parse_with ~limits s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
  (* A malformed numeric token can escape [float_of_string]/[int_of_string]
     as [Failure]; fold it into the same result shape. *)
  | exception Failure msg -> Error ("invalid number: " ^ msg)
