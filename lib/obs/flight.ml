(* The flight recorder: a per-domain ring buffer of phase events, cheap
   enough to leave on in the engine hot path.

   Each domain owns a fixed-capacity ring ({!Shard}): appending an event
   is a few plain array stores at [head land (cap-1)] plus a head bump —
   single-writer, lock-free, no allocation. When the ring is full the
   oldest events are overwritten (flight-recorder semantics: the last
   [capacity] events per domain survive, [dropped] counts the rest).
   Event names are interned once into small ids ([intern] at module
   initialisation of the instrumented code); the hot-path check when the
   recorder is off is a single atomic load, and [start] returns a
   negative sentinel so the matching [stop] is a no-op.

   Alongside the ring, every domain keeps per-phase totals (count and
   summed duration per interned id). Totals see every Complete event,
   including the ones the ring overwrote, so the per-phase time
   breakdown in BENCH_engine.json is exact even for long runs.

   Draining merges all rings into one list sorted by timestamp and is
   non-destructive: drain twice, get the same events. Drain at a
   quiescent point (after joins); a drain racing a writer may see a
   half-written slot, like any cross-shard read. Exports: Chrome
   [trace_event] JSON (loadable in chrome://tracing and Perfetto; phase
   slices as "X" complete events, [mark]s as "i" instants, [sample]s as
   "C" counter tracks, one row per domain) and a minimal OTLP-shaped
   JSON document (resourceSpans/scopeSpans/spans with unix-nano times,
   Complete events only). *)

type kind = Complete | Instant | Counter

type event = {
  domain : int;
  seq : int;  (** per-domain append index (monotone, pre-wrap) *)
  name : string;
  kind : kind;
  ts : float;  (** Unix epoch seconds (converted from {!Clock} ticks) *)
  dur : float;  (** seconds for [Complete], sampled value for [Counter] *)
}

(* ---- name interning ------------------------------------------------ *)

let intern_lock = Mutex.create ()
let ids : (string, int) Hashtbl.t = Hashtbl.create 64
let names : string array ref = ref [||]
let n_names = ref 0

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let intern name =
  locked intern_lock @@ fun () ->
  match Hashtbl.find_opt ids name with
  | Some id -> id
  | None ->
    let id = !n_names in
    if id >= Array.length !names then begin
      let a = Array.make (max 16 (2 * (id + 1))) "" in
      Array.blit !names 0 a 0 id;
      names := a
    end;
    !names.(id) <- name;
    Hashtbl.replace ids name id;
    incr n_names;
    id

let name_of id = !names.(id)

(* ---- per-domain rings ---------------------------------------------- *)

let enabled = Atomic.make false
let capacity = Atomic.make 8192 (* power of two *)

type ring = {
  mutable cap : int;  (** power of two; 0 until first append *)
  mutable tags : int array;  (** interned id lsl 2 lor kind *)
  mutable tss : float array;
  mutable durs : float array;
  mutable head : int;  (** total events ever appended *)
  mutable tot_count : int array;  (** per-id Complete totals *)
  mutable tot_ticks : float array;  (** per-id summed durations, Clock ticks *)
}

let rings : ring Shard.t =
  Shard.create (fun () ->
      {
        cap = 0;
        tags = [||];
        tss = [||];
        durs = [||];
        head = 0;
        tot_count = [||];
        tot_ticks = [||];
      })

let tag_of id kind =
  (id lsl 2)
  lor (match kind with Complete -> 0 | Instant -> 1 | Counter -> 2)

let alloc r cap =
  r.cap <- cap;
  r.tags <- Array.make cap (-1);
  r.tss <- Array.make cap 0.0;
  r.durs <- Array.make cap 0.0;
  r.head <- 0

(* [i] is masked by [cap - 1] (a power of two, the arrays' length) and
   totals indices are bounds-checked by the grow branch, so the stores
   below use the unsafe accessors — this path runs a million times a
   second under the engine. *)
let push r id kind ts dur =
  let cap = Atomic.get capacity in
  if r.cap <> cap then alloc r cap;
  let i = r.head land (r.cap - 1) in
  Array.unsafe_set r.tags i (tag_of id kind);
  Array.unsafe_set r.tss i ts;
  Array.unsafe_set r.durs i dur;
  r.head <- r.head + 1

let grow_totals r id =
  let n = Array.length r.tot_count in
  let cap = max 16 (max (2 * n) (id + 1)) in
  let c = Array.make cap 0 and s = Array.make cap 0.0 in
  Array.blit r.tot_count 0 c 0 n;
  Array.blit r.tot_ticks 0 s 0 n;
  r.tot_count <- c;
  r.tot_ticks <- s

(* ---- recording API ------------------------------------------------- *)

let is_enabled () = Atomic.get enabled

let reset () =
  Shard.iter rings (fun _ r ->
      r.head <- 0;
      Array.fill r.tot_count 0 (Array.length r.tot_count) 0;
      Array.fill r.tot_ticks 0 (Array.length r.tot_ticks) 0.0)

let round_pow2 n =
  let c = ref 1 in
  while !c < n do
    c := !c * 2
  done;
  !c

(* Enable/disable/reset mutate every domain's ring: call them at
   quiescent points (before/after parallel sections), never while a
   worker is appending. *)
let enable ?capacity:(cap = 8192) () =
  Atomic.set capacity (round_pow2 (max 2 cap));
  Shard.iter rings (fun _ r -> if r.cap <> 0 then alloc r (Atomic.get capacity));
  reset ();
  Atomic.set enabled true

let disable () = Atomic.set enabled false

let start () = if Atomic.get enabled then Clock.now () else -1.0

(* [push] + [bump_total] fused for Complete events (tag [id lsl 2]):
   one call from the stop sites, [r]'s fields loaded once, the two cold
   growth branches out of line. This body runs for every recorded phase
   on the engine hot path. *)
let record_complete r id ts dur =
  let cap = Atomic.get capacity in
  if r.cap <> cap then alloc r cap;
  let i = r.head land (r.cap - 1) in
  Array.unsafe_set r.tags i (id lsl 2);
  Array.unsafe_set r.tss i ts;
  Array.unsafe_set r.durs i dur;
  r.head <- r.head + 1;
  if id >= Array.length r.tot_count then grow_totals r id;
  Array.unsafe_set r.tot_count id (Array.unsafe_get r.tot_count id + 1);
  Array.unsafe_set r.tot_ticks id (Array.unsafe_get r.tot_ticks id +. dur)

let stop id t0 =
  if t0 >= 0.0 then
    record_complete (Shard.my rings) id t0 (Clock.now () -. t0)

(* Close one phase and open the next on a single clock read — for
   back-to-back phases (store probe, then bucket scan) where a stop
   followed by a start would read the clock twice at the seam. *)
let stop_start id t0 =
  if t0 < 0.0 then -1.0
  else begin
    let t1 = Clock.now () in
    record_complete (Shard.my rings) id t0 (t1 -. t0);
    t1
  end

(* A pre-timed Complete event — the bridge for [Span.with_], which
   already holds both endpoints when it closes. [ts] and [dur] are in
   {!Clock} ticks, like every slot in the ring. *)
let complete id ~ts ~dur =
  if Atomic.get enabled then record_complete (Shard.my rings) id ts dur

let mark id =
  if Atomic.get enabled then
    push (Shard.my rings) id Instant (Clock.now ()) 0.0

let sample id v =
  if Atomic.get enabled then
    push (Shard.my rings) id Counter (Clock.now ()) v

(* ---- draining ------------------------------------------------------ *)

let dropped () =
  Shard.fold rings
    (fun acc _ r -> if r.head > r.cap then acc + (r.head - r.cap) else acc)
    0

let drain () =
  let evs =
    Shard.fold rings
      (fun acc did r ->
        let n = min r.head r.cap in
        let lo = r.head - n in
        let rec take seq acc =
          if seq < lo then acc
          else begin
            let i = seq land (r.cap - 1) in
            let tag = r.tags.(i) in
            if tag < 0 then take (seq - 1) acc
            else
              let kind =
                match tag land 3 with
                | 0 -> Complete
                | 1 -> Instant
                | _ -> Counter
              in
              let e =
                {
                  domain = did;
                  seq;
                  name = name_of (tag lsr 2);
                  kind;
                  ts = Clock.to_epoch r.tss.(i);
                  (* Counter slots carry the sampled value, not a time. *)
                  dur =
                    (match kind with
                     | Complete -> Clock.to_s r.durs.(i)
                     | Instant | Counter -> r.durs.(i));
                }
              in
              take (seq - 1) (e :: acc)
          end
        in
        take (r.head - 1) acc)
      []
  in
  List.stable_sort
    (fun a b ->
      match Float.compare a.ts b.ts with
      | 0 -> (
          match compare a.domain b.domain with
          | 0 -> compare a.seq b.seq
          | c -> c)
      | c -> c)
    evs

(* Per-phase totals (count, total seconds) merged across domains,
   sorted by name — exact even when the ring overwrote events. *)
let totals () =
  let p = Clock.to_s 1.0 in
  let tbl : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
  Shard.iter rings (fun _ r ->
      Array.iteri
        (fun id n ->
          if n > 0 then begin
            let name = name_of id in
            let c, s =
              match Hashtbl.find_opt tbl name with
              | Some cs -> cs
              | None -> (0, 0.0)
            in
            Hashtbl.replace tbl name (c + n, s +. (r.tot_ticks.(id) *. p))
          end)
        r.tot_count);
  Hashtbl.fold (fun name cs acc -> (name, cs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let totals_json () =
  Json.Obj
    (List.map
       (fun (name, (count, total_s)) ->
         ( name,
           Json.Obj
             [ ("count", Json.Int count); ("total_s", Json.Float total_s) ] ))
       (totals ()))

(* ---- exports ------------------------------------------------------- *)

let us_rel t0 t = Json.Float ((t -. t0) *. 1e6)

(* Chrome trace_event JSON object format: one process, one tid per
   domain, timestamps in microseconds relative to the earliest event. *)
let to_chrome evs =
  let t0 = match evs with [] -> 0.0 | e :: _ -> e.ts in
  let thread_names =
    List.sort_uniq compare (List.map (fun e -> e.domain) evs)
    |> List.map (fun did ->
           Json.Obj
             [
               ("name", Json.Str "thread_name");
               ("ph", Json.Str "M");
               ("pid", Json.Int 1);
               ("tid", Json.Int did);
               ( "args",
                 Json.Obj [ ("name", Json.Str ("domain-" ^ string_of_int did)) ]
               );
             ])
  in
  let ev e =
    let common =
      [
        ("name", Json.Str e.name);
        ("cat", Json.Str "phase");
        ("pid", Json.Int 1);
        ("tid", Json.Int e.domain);
        ("ts", us_rel t0 e.ts);
      ]
    in
    match e.kind with
    | Complete ->
      Json.Obj
        (common @ [ ("ph", Json.Str "X"); ("dur", Json.Float (e.dur *. 1e6)) ])
    | Instant -> Json.Obj (common @ [ ("ph", Json.Str "i"); ("s", Json.Str "t") ])
    | Counter ->
      Json.Obj
        (common
        @ [
            ("ph", Json.Str "C");
            ("args", Json.Obj [ ("value", Json.Float e.dur) ]);
          ])
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (thread_names @ List.map ev evs));
      ("displayTimeUnit", Json.Str "ms");
    ]

(* Minimal OTLP/JSON shape (trace service ExportTraceServiceRequest):
   Complete events only, one scope span per event, µs-precision times
   widened to unix nanos. *)
let to_otlp evs =
  let nano t = Json.Int (Int64.to_int (Int64.of_float (t *. 1e9))) in
  let spans =
    List.filter_map
      (fun e ->
        match e.kind with
        | Complete ->
          Some
            (Json.Obj
               [
                 ("name", Json.Str e.name);
                 ("startTimeUnixNano", nano e.ts);
                 ("endTimeUnixNano", nano (e.ts +. e.dur));
                 ( "attributes",
                   Json.Arr
                     [
                       Json.Obj
                         [
                           ("key", Json.Str "domain");
                           ( "value",
                             Json.Obj [ ("intValue", Json.Int e.domain) ] );
                         ];
                     ] );
               ])
        | Instant | Counter -> None)
      evs
  in
  Json.Obj
    [
      ( "resourceSpans",
        Json.Arr
          [
            Json.Obj
              [
                ( "resource",
                  Json.Obj
                    [
                      ( "attributes",
                        Json.Arr
                          [
                            Json.Obj
                              [
                                ("key", Json.Str "service.name");
                                ( "value",
                                  Json.Obj
                                    [ ("stringValue", Json.Str "quantcli") ] );
                              ];
                          ] );
                    ] );
                ( "scopeSpans",
                  Json.Arr
                    [
                      Json.Obj
                        [
                          ( "scope",
                            Json.Obj [ ("name", Json.Str "obs.flight") ] );
                          ("spans", Json.Arr spans);
                        ];
                    ] );
              ];
          ] );
    ]

let write_file path j =
  let oc = open_out path in
  output_string oc (Json.to_string j);
  output_char oc '\n';
  close_out oc

let write_chrome path = write_file path (to_chrome (drain ()))
let write_otlp path = write_file path (to_otlp (drain ()))

(* Per-request capture for a serving loop: persist the timeline recorded
   so far, then clear the rings so the next request starts from an empty
   window. Recording stays enabled throughout. *)
let capture_chrome path =
  write_chrome path;
  reset ()
