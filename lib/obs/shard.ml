(* Per-domain shard store — the substrate under sharded metrics and the
   flight recorder.

   A [t] hands every domain its own private ['a] on first use (via
   [Domain.DLS]); the owning domain mutates it with plain stores, no
   atomics, no locks. The store keeps a registry of every shard ever
   created, sorted by domain id, so readers can fold over all of them
   deterministically. Domain ids are never reused in OCaml 5, so the
   registry only grows — entries of finished domains stay behind as
   quiescent shards, which merge/reset handle like any other.

   Memory-model contract: a shard is single-writer (its domain), and
   cross-domain reads are racy-but-sound — a reader sees some previously
   written value per word, never a torn one. Exactness is recovered at
   synchronisation points: after [Domain.join] or a [Par.Pool] task
   join, every write of the joined domains happens-before the reader,
   so folds there see final values. *)

type 'a t = {
  lock : Mutex.t;
  mutable shards : (int * 'a) list;  (** sorted by domain id *)
  key : 'a Domain.DLS.key;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create fresh =
  (* The DLS init closure must register into the store it belongs to,
     but the store's record needs the key: tie the knot through a ref. *)
  let holder = ref None in
  let key =
    Domain.DLS.new_key (fun () ->
        let shard = fresh () in
        (match !holder with
        | None -> ()
        | Some t ->
          locked t (fun () ->
              let id = (Domain.self () :> int) in
              t.shards <-
                List.merge
                  (fun (a, _) (b, _) -> compare a b)
                  [ (id, shard) ] t.shards));
        shard)
  in
  let t = { lock = Mutex.create (); shards = []; key } in
  holder := Some t;
  t

let my t = Domain.DLS.get t.key

let fold t f acc =
  (* Force this domain's shard into the registry first, so a fold always
     covers the caller's own writes. *)
  ignore (my t);
  locked t (fun () -> List.fold_left (fun acc (id, s) -> f acc id s) acc t.shards)

let iter t f = fold t (fun () id s -> f id s) ()
