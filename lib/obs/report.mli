(** The run report: a JSON snapshot of every observability source.

    Shape (all fields always present):
    {v
    { "version": 1,
      "metrics": { "<name>": {"type": "counter", ...}, ... },
      "spans":   { "<name>": {"count", "total_s", "max_s"}, ... },
      "gc":      { "minor_words", ..., "top_heap_words" } }
    v} *)

(** [make ()] snapshots the registry (default: {!Metrics.Registry.default}),
    the span aggregates and [Gc.quick_stat]. *)
val make : ?registry:Metrics.Registry.t -> unit -> Json.t

(** GC statistics alone, as embedded in {!make}. *)
val gc_json : unit -> Json.t

val to_file : string -> ?registry:Metrics.Registry.t -> unit -> unit
