(** The run report: a JSON snapshot of every observability source.

    Shape (["phases"] only when the flight recorder recorded any):
    {v
    { "version": 1,
      "metrics": { "<name>": {"type": "counter", ...}, ... },
      "spans":   { "<name>": {"count", "total_s", "max_s"}, ... },
      "span_domains": { "<domain-id>": { "<name>": {...} }, ... },
      "gc":      { "stat", "minor_words", ..., "live_words" },
      "phases":  { "<name>": {"count", "total_s"}, ... } }
    v}

    [span_domains] breaks the span aggregates out by recording domain
    (domain 0 is the main domain) — under a [Par] pool it shows how a
    parallel section's time split across the workers. *)

(** [make ()] snapshots the registry (default: {!Metrics.Registry.default}),
    the span aggregates, the flight-recorder phase totals and the GC.

    GC fields come from [Gc.quick_stat] by default — no heap walk:
    allocation totals and collection counts are exact, [live_words] and
    [heap_words] are as of the last major collection (may lag by one
    cycle). Pass [~full_gc:true] for a [Gc.stat] full major cycle +
    heap walk that makes [live_words] exact at the snapshot instant;
    reports are one-shot, but the walk is only worth paying where
    live-heap comparisons are the point (bench store rows). The
    [gc.stat] field says which variant ran. *)
val make : ?registry:Metrics.Registry.t -> ?full_gc:bool -> unit -> Json.t

(** GC statistics alone, as embedded in {!make}; [~full] selects the
    [Gc.stat] heap walk over [Gc.quick_stat]. *)
val gc_json : ?full:bool -> unit -> Json.t

val to_file :
  string -> ?registry:Metrics.Registry.t -> ?full_gc:bool -> unit -> unit
