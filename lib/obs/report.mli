(** The run report: a JSON snapshot of every observability source.

    Shape (all fields always present):
    {v
    { "version": 1,
      "metrics": { "<name>": {"type": "counter", ...}, ... },
      "spans":   { "<name>": {"count", "total_s", "max_s"}, ... },
      "span_domains": { "<domain-id>": { "<name>": {...} }, ... },
      "gc":      { "minor_words", ..., "top_heap_words", "live_words" } }
    v}

    [span_domains] breaks the span aggregates out by recording domain
    (domain 0 is the main domain) — under a [Par] pool it shows how a
    parallel section's time split across the workers. *)

(** [make ()] snapshots the registry (default: {!Metrics.Registry.default}),
    the span aggregates and the GC. The GC snapshot uses [Gc.stat] — a
    full heap walk — so [live_words] (words actually alive, vs.
    [top_heap_words] for the peak reservation) is populated; reports are
    one-shot, never hot-path. *)
val make : ?registry:Metrics.Registry.t -> unit -> Json.t

(** GC statistics alone, as embedded in {!make}. *)
val gc_json : unit -> Json.t

val to_file : string -> ?registry:Metrics.Registry.t -> unit -> unit
