(* The hot-path timestamp is the raw CPU cycle counter: the flight
   recorder reads it twice per recorded phase inside the engine's inner
   loop, where even the vDSO CLOCK_MONOTONIC read (~40ns) is too dear.
   Readings stay in ticks until someone asks for seconds; the tick
   period is calibrated once, lazily, against CLOCK_MONOTONIC over the
   time elapsed since module load (floored at 1ms by spinning, so an
   immediate conversion still gets a usable baseline — error from the
   paired reads is then well under 0.1%).

   Caveats, accepted for a profiler: rdtsc is per-package (invariant and
   core-synchronised on anything modern, so cross-domain event order is
   sound); doubles carry cycle counts exactly up to 2^53 — beyond that
   (a month of uptime at 3GHz) tick deltas round to a few nanoseconds. *)

external now : unit -> (float[@unboxed])
  = "obs_clock_ticks_byte" "obs_clock_ticks" [@@noalloc]

external mono : unit -> (float[@unboxed])
  = "obs_clock_mono_byte" "obs_clock_mono" [@@noalloc]

let t0_ticks = now ()
let t0_mono = mono ()
let t0_epoch = Unix.gettimeofday ()

(* Benign race: concurrent first calls compute near-identical periods
   and the last write wins. *)
let period_memo = ref 0.0

let period () =
  if !period_memo = 0.0 then begin
    let dm = ref (mono () -. t0_mono) in
    while !dm < 1e-3 do
      dm := mono () -. t0_mono
    done;
    let dt = now () -. t0_ticks in
    period_memo := (if dt > 0.0 then !dm /. dt else 1e-9)
  end;
  !period_memo

let to_s d = d *. period ()
let to_epoch t = t0_epoch +. ((t -. t0_ticks) *. period ())
