(* Named counters, gauges and log-scale histograms — domain-safe.

   Hot-path cost is one atomic update (counter/gauge) or a [frexp] plus
   a few atomic updates (histogram); metric handles are resolved by name
   once, at module initialisation of the instrumented code, never inside
   a loop. Instruments may be updated concurrently from several domains
   (the lib/par worker pool does): counters use fetch-and-add, gauges a
   single atomic cell, histogram scalars CAS retry loops — no update is
   ever lost. Resetting a registry zeroes values in place so cached
   handles stay valid across bench iterations. Registration, reset and
   snapshot serialise on a per-registry mutex; a snapshot taken while
   another domain updates reads each cell atomically but is not a
   consistent cut across cells (count/sum of a histogram mid-observe may
   disagree by one sample — fine for telemetry). *)

(* Histogram buckets are powers of two: bucket [i] holds values in
   [2^(min_exp+i), 2^(min_exp+i+1)). With min_exp = -20 the range spans
   ~1 microsecond to ~1 M (seconds, states, queue lengths...), which
   covers every quantity we track; out-of-range values clamp to the
   first/last bucket. *)
let min_exp = -20
let n_buckets = 41

type histogram = {
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
  h_min : float Atomic.t;
  h_max : float Atomic.t;
  buckets : int Atomic.t array;
}

type counter = int Atomic.t

(* Value and has-it-been-set travel together so concurrent [set_max]
   calls can race through one CAS loop. *)
type gauge = (float * bool) Atomic.t

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram

type registry = { tbl : (string, metric) Hashtbl.t; lock : Mutex.t }

(* CAS retry update of a single cell. The boxed value read by [get] is
   physically the one compared by [compare_and_set], so the loop is
   lock-free and loses no update. *)
let rec atomic_update cell f =
  let cur = Atomic.get cell in
  let next = f cur in
  if not (Atomic.compare_and_set cell cur next) then atomic_update cell f

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

module Registry = struct
  type t = registry

  let create () = { tbl = Hashtbl.create 64; lock = Mutex.create () }
  let default = create ()

  let reset t =
    locked t.lock @@ fun () ->
    Hashtbl.iter
      (fun _ m ->
        match m with
        | M_counter c -> Atomic.set c 0
        | M_gauge g -> Atomic.set g (0.0, false)
        | M_histogram h ->
          Atomic.set h.h_count 0;
          Atomic.set h.h_sum 0.0;
          Atomic.set h.h_min infinity;
          Atomic.set h.h_max neg_infinity;
          Array.iter (fun b -> Atomic.set b 0) h.buckets)
      t.tbl

  let names t =
    locked t.lock @@ fun () ->
    Hashtbl.fold (fun name _ acc -> name :: acc) t.tbl []
    |> List.sort String.compare
end

let find_or_register (reg : registry) name make classify =
  locked reg.lock @@ fun () ->
  match Hashtbl.find_opt reg.tbl name with
  | Some m -> (
      match classify m with
      | Some v -> v
      | None -> invalid_arg ("Obs.Metrics: " ^ name ^ " registered with another kind"))
  | None ->
    let v, m = make () in
    Hashtbl.replace reg.tbl name m;
    v

module Counter = struct
  type t = counter

  let make ?(registry = Registry.default) name =
    find_or_register registry name
      (fun () ->
        let c = Atomic.make 0 in
        (c, M_counter c))
      (function M_counter c -> Some c | _ -> None)

  let incr t = Atomic.incr t
  let add t n = ignore (Atomic.fetch_and_add t n)
  let value t = Atomic.get t
end

module Gauge = struct
  type t = gauge

  let make ?(registry = Registry.default) name =
    find_or_register registry name
      (fun () ->
        let g = Atomic.make (0.0, false) in
        (g, M_gauge g))
      (function M_gauge g -> Some g | _ -> None)

  let set t v = Atomic.set t (v, true)

  let set_max t v =
    atomic_update t (fun (cur, is_set) ->
        if is_set && cur >= v then (cur, is_set) else (v, true))

  let value t = fst (Atomic.get t)
end

module Histogram = struct
  type t = histogram

  let make ?(registry = Registry.default) name =
    find_or_register registry name
      (fun () ->
        let h =
          {
            h_count = Atomic.make 0;
            h_sum = Atomic.make 0.0;
            h_min = Atomic.make infinity;
            h_max = Atomic.make neg_infinity;
            buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
          }
        in
        (h, M_histogram h))
      (function M_histogram h -> Some h | _ -> None)

  let bucket_of v =
    if v <= 0.0 then 0
    else begin
      (* frexp: v = m * 2^e with m in [0.5, 1), so v lies in
         [2^(e-1), 2^e) and belongs to bucket (e-1) - min_exp. *)
      let _, e = Float.frexp v in
      let i = e - 1 - min_exp in
      if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i
    end

  (* Inclusive upper edge of bucket [i] (values right below 2^(...+1)). *)
  let bucket_upper i = Float.pow 2.0 (float_of_int (min_exp + i + 1))

  let observe t v =
    Atomic.incr t.h_count;
    atomic_update t.h_sum (fun s -> s +. v);
    atomic_update t.h_min (fun m -> if v < m then v else m);
    atomic_update t.h_max (fun m -> if v > m then v else m);
    Atomic.incr t.buckets.(bucket_of v)

  let count t = Atomic.get t.h_count
  let sum t = Atomic.get t.h_sum

  let mean t =
    let n = count t in
    if n = 0 then nan else sum t /. float_of_int n

  (* Quantile estimate: the upper edge of the first bucket whose
     cumulative count reaches [q * count], clamped to the observed
     min/max (exact when a bucket holds a single distinct value). *)
  let quantile t q =
    let total = count t in
    if total = 0 then nan
    else begin
      let h_min = Atomic.get t.h_min and h_max = Atomic.get t.h_max in
      let rank = q *. float_of_int total in
      let rec walk i cum =
        if i >= n_buckets then h_max
        else begin
          let cum = cum + Atomic.get t.buckets.(i) in
          if float_of_int cum >= rank then
            Float.min h_max (Float.max h_min (bucket_upper i))
          else walk (i + 1) cum
        end
      in
      walk 0 0
    end
end

let metric_json = function
  | M_counter c ->
    Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Int (Atomic.get c)) ]
  | M_gauge g ->
    Json.Obj
      [ ("type", Json.Str "gauge"); ("value", Json.Float (fst (Atomic.get g))) ]
  | M_histogram h ->
    let n = Atomic.get h.h_count in
    let filled =
      Array.to_list (Array.mapi (fun i b -> (i, Atomic.get b)) h.buckets)
      |> List.filter (fun (_, n) -> n > 0)
      |> List.map (fun (i, n) ->
             Json.Obj
               [ ("le", Json.Float (Histogram.bucket_upper i)); ("n", Json.Int n) ])
    in
    Json.Obj
      [
        ("type", Json.Str "histogram");
        ("count", Json.Int n);
        ("sum", Json.Float (Atomic.get h.h_sum));
        ("min", Json.Float (if n = 0 then 0.0 else Atomic.get h.h_min));
        ("max", Json.Float (if n = 0 then 0.0 else Atomic.get h.h_max));
        ("p50", Json.Float (if n = 0 then 0.0 else Histogram.quantile h 0.5));
        ("p90", Json.Float (if n = 0 then 0.0 else Histogram.quantile h 0.9));
        ("buckets", Json.Arr filled);
      ]

(* Only metrics touched since the last reset appear, so snapshots stay
   small and bench entries list exactly the instruments the run hit. *)
let touched = function
  | M_counter c -> Atomic.get c <> 0
  | M_gauge g -> snd (Atomic.get g)
  | M_histogram h -> Atomic.get h.h_count > 0

let snapshot ?(registry = Registry.default) () =
  let fields =
    locked registry.lock @@ fun () ->
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry.tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.filter_map (fun (name, m) ->
           if touched m then Some (name, metric_json m) else None)
  in
  Json.Obj fields
