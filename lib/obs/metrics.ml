(* Named counters, gauges and log-scale histograms.

   Hot-path cost is one mutable-field update (counter/gauge) or a
   [frexp] plus two array updates (histogram); metric handles are
   resolved by name once, at module initialisation of the instrumented
   code, never inside a loop. Resetting a registry zeroes values in
   place so cached handles stay valid across bench iterations. *)

(* Histogram buckets are powers of two: bucket [i] holds values in
   [2^(min_exp+i), 2^(min_exp+i+1)). With min_exp = -20 the range spans
   ~1 microsecond to ~1 M (seconds, states, queue lengths...), which
   covers every quantity we track; out-of-range values clamp to the
   first/last bucket. *)
let min_exp = -20
let n_buckets = 41

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  buckets : int array;
}

type counter = { mutable c : int }
type gauge = { mutable g : float; mutable g_set : bool }

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram

type registry = { tbl : (string, metric) Hashtbl.t }

module Registry = struct
  type t = registry

  let create () = { tbl = Hashtbl.create 64 }
  let default = create ()

  let reset t =
    Hashtbl.iter
      (fun _ m ->
        match m with
        | M_counter c -> c.c <- 0
        | M_gauge g ->
          g.g <- 0.0;
          g.g_set <- false
        | M_histogram h ->
          h.h_count <- 0;
          h.h_sum <- 0.0;
          h.h_min <- infinity;
          h.h_max <- neg_infinity;
          Array.fill h.buckets 0 n_buckets 0)
      t.tbl

  let names t =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.tbl []
    |> List.sort String.compare
end

let find_or_register (reg : registry) name make classify =
  match Hashtbl.find_opt reg.tbl name with
  | Some m -> (
      match classify m with
      | Some v -> v
      | None -> invalid_arg ("Obs.Metrics: " ^ name ^ " registered with another kind"))
  | None ->
    let v, m = make () in
    Hashtbl.replace reg.tbl name m;
    v

module Counter = struct
  type t = counter

  let make ?(registry = Registry.default) name =
    find_or_register registry name
      (fun () ->
        let c = { c = 0 } in
        (c, M_counter c))
      (function M_counter c -> Some c | _ -> None)

  let incr t = t.c <- t.c + 1
  let add t n = t.c <- t.c + n
  let value t = t.c
end

module Gauge = struct
  type t = gauge

  let make ?(registry = Registry.default) name =
    find_or_register registry name
      (fun () ->
        let g = { g = 0.0; g_set = false } in
        (g, M_gauge g))
      (function M_gauge g -> Some g | _ -> None)

  let set t v =
    t.g <- v;
    t.g_set <- true

  let set_max t v = if (not t.g_set) || v > t.g then set t v
  let value t = t.g
end

module Histogram = struct
  type t = histogram

  let make ?(registry = Registry.default) name =
    find_or_register registry name
      (fun () ->
        let h =
          {
            h_count = 0;
            h_sum = 0.0;
            h_min = infinity;
            h_max = neg_infinity;
            buckets = Array.make n_buckets 0;
          }
        in
        (h, M_histogram h))
      (function M_histogram h -> Some h | _ -> None)

  let bucket_of v =
    if v <= 0.0 then 0
    else begin
      (* frexp: v = m * 2^e with m in [0.5, 1), so v lies in
         [2^(e-1), 2^e) and belongs to bucket (e-1) - min_exp. *)
      let _, e = Float.frexp v in
      let i = e - 1 - min_exp in
      if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i
    end

  (* Inclusive upper edge of bucket [i] (values right below 2^(...+1)). *)
  let bucket_upper i = Float.pow 2.0 (float_of_int (min_exp + i + 1))

  let observe t v =
    t.h_count <- t.h_count + 1;
    t.h_sum <- t.h_sum +. v;
    if v < t.h_min then t.h_min <- v;
    if v > t.h_max then t.h_max <- v;
    let i = bucket_of v in
    t.buckets.(i) <- t.buckets.(i) + 1

  let count t = t.h_count
  let sum t = t.h_sum
  let mean t = if t.h_count = 0 then nan else t.h_sum /. float_of_int t.h_count

  (* Quantile estimate: the upper edge of the first bucket whose
     cumulative count reaches [q * count], clamped to the observed
     min/max (exact when a bucket holds a single distinct value). *)
  let quantile t q =
    if t.h_count = 0 then nan
    else begin
      let rank = q *. float_of_int t.h_count in
      let rec walk i cum =
        if i >= n_buckets then t.h_max
        else begin
          let cum = cum + t.buckets.(i) in
          if float_of_int cum >= rank then
            Float.min t.h_max (Float.max t.h_min (bucket_upper i))
          else walk (i + 1) cum
        end
      in
      walk 0 0
    end
end

let metric_json = function
  | M_counter c -> Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Int c.c) ]
  | M_gauge g -> Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Float g.g) ]
  | M_histogram h ->
    let filled =
      Array.to_list
        (Array.mapi (fun i n -> (i, n)) h.buckets)
      |> List.filter (fun (_, n) -> n > 0)
      |> List.map (fun (i, n) ->
             Json.Obj [ ("le", Json.Float (Histogram.bucket_upper i)); ("n", Json.Int n) ])
    in
    Json.Obj
      [
        ("type", Json.Str "histogram");
        ("count", Json.Int h.h_count);
        ("sum", Json.Float h.h_sum);
        ("min", Json.Float (if h.h_count = 0 then 0.0 else h.h_min));
        ("max", Json.Float (if h.h_count = 0 then 0.0 else h.h_max));
        ("p50", Json.Float (if h.h_count = 0 then 0.0 else Histogram.quantile h 0.5));
        ("p90", Json.Float (if h.h_count = 0 then 0.0 else Histogram.quantile h 0.9));
        ("buckets", Json.Arr filled);
      ]

(* Only metrics touched since the last reset appear, so snapshots stay
   small and bench entries list exactly the instruments the run hit. *)
let touched = function
  | M_counter c -> c.c <> 0
  | M_gauge g -> g.g_set
  | M_histogram h -> h.h_count > 0

let snapshot ?(registry = Registry.default) () =
  let fields =
    Registry.names registry
    |> List.filter_map (fun name ->
           let m = Hashtbl.find registry.tbl name in
           if touched m then Some (name, metric_json m) else None)
  in
  Json.Obj fields
