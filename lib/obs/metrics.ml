(* Named counters, gauges and log-scale histograms — domain-safe via
   per-domain sharding, not shared atomics.

   Every registry hands each domain a private shard ({!Shard}): flat
   mutable arrays indexed by metric id. A hot-path update is a DLS
   lookup plus a plain array store into memory only this domain writes —
   no atomic RMW, no cache-line ping-pong between worker domains (the
   contended fetch-and-add of the previous design is what poisoned the
   jobs=2 scaling numbers). Handles are resolved by name once, at module
   initialisation of the instrumented code, never inside a loop.

   Reads (value / snapshot) fold over all shards in domain-id order, so
   aggregation is deterministic. After a [Domain.join] or a [Par.Pool]
   task join the fold is exact; a snapshot racing live updates reads
   word-atomic but possibly slightly stale cells, and is not a
   consistent cut across cells (count/sum of a histogram mid-observe may
   disagree by one sample — fine for telemetry). [merge] folds every
   other domain's shard into the calling domain's and zeroes the
   sources; [Par.Pool] calls it at task join so post-join reads touch
   one shard only and parallel runs report byte-for-byte like
   sequential ones. Resetting a registry zeroes shard cells in place so
   cached handles stay valid across bench iterations. *)

(* Histogram buckets are powers of two: bucket [i] holds values in
   [2^(min_exp+i), 2^(min_exp+i+1)). With min_exp = -20 the range spans
   ~1 microsecond to ~1 M (seconds, states, queue lengths...), which
   covers every quantity we track; out-of-range values clamp to the
   first/last bucket. *)
let min_exp = -20
let n_buckets = 41

(* One domain's shard: parallel arrays per metric kind, indexed by the
   id carried in the handle. Arrays grow (on the owning domain) when a
   handle registered after the shard's creation first writes. *)
type shard = {
  mutable counters : int array;
  mutable g_vals : float array;
  mutable g_set : bool array;
  mutable h_counts : int array;
  mutable h_sums : float array;
  mutable h_mins : float array;
  mutable h_maxs : float array;
  mutable h_buckets : int array array;
}

type metric_ref = R_counter of int | R_gauge of int | R_histogram of int

type registry = {
  lock : Mutex.t;  (** guards [tbl] and the [n_*] allocation counters *)
  tbl : (string, metric_ref) Hashtbl.t;
  mutable n_counters : int;
  mutable n_gauges : int;
  mutable n_histograms : int;
  shards : shard Shard.t;
}

type counter = { c_reg : registry; c_id : int }
type gauge = { g_reg : registry; g_id : int }
type histogram = { h_reg : registry; h_id : int }

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let fresh_shard () =
  {
    counters = [||];
    g_vals = [||];
    g_set = [||];
    h_counts = [||];
    h_sums = [||];
    h_mins = [||];
    h_maxs = [||];
    h_buckets = [||];
  }

let grown old need fill =
  let n = Array.length old in
  let cap = ref (max 8 n) in
  while !cap <= need do
    cap := !cap * 2
  done;
  let a = Array.make !cap fill in
  Array.blit old 0 a 0 n;
  a

(* Growth happens on the owning domain only; a concurrent reader may
   still see the old (shorter) array and miss the very latest writes —
   the same staleness any racing read already has. *)
let grow_counters sh id = sh.counters <- grown sh.counters id 0

let grow_gauges sh id =
  sh.g_vals <- grown sh.g_vals id 0.0;
  sh.g_set <- grown sh.g_set id false

let grow_histograms sh id =
  sh.h_counts <- grown sh.h_counts id 0;
  sh.h_sums <- grown sh.h_sums id 0.0;
  sh.h_mins <- grown sh.h_mins id infinity;
  sh.h_maxs <- grown sh.h_maxs id neg_infinity;
  let old = sh.h_buckets in
  let n = Array.length old in
  sh.h_buckets <-
    Array.init
      (Array.length sh.h_counts)
      (fun i -> if i < n then old.(i) else Array.make n_buckets 0)

module Registry = struct
  type t = registry

  let create () =
    {
      lock = Mutex.create ();
      tbl = Hashtbl.create 64;
      n_counters = 0;
      n_gauges = 0;
      n_histograms = 0;
      shards = Shard.create fresh_shard;
    }

  let default = create ()

  let reset t =
    (* In-place zeroing: handles (ids) stay valid, and a domain racing
       its own updates against the reset loses at most those updates —
       the documented snapshot-vs-mutation looseness. *)
    Shard.iter t.shards (fun _ sh ->
        Array.fill sh.counters 0 (Array.length sh.counters) 0;
        Array.fill sh.g_vals 0 (Array.length sh.g_vals) 0.0;
        Array.fill sh.g_set 0 (Array.length sh.g_set) false;
        Array.fill sh.h_counts 0 (Array.length sh.h_counts) 0;
        Array.fill sh.h_sums 0 (Array.length sh.h_sums) 0.0;
        Array.fill sh.h_mins 0 (Array.length sh.h_mins) infinity;
        Array.fill sh.h_maxs 0 (Array.length sh.h_maxs) neg_infinity;
        Array.iter (fun b -> Array.fill b 0 (Array.length b) 0) sh.h_buckets)

  let names t =
    locked t.lock @@ fun () ->
    Hashtbl.fold (fun name _ acc -> name :: acc) t.tbl []
    |> List.sort String.compare
end

let find_or_register (reg : registry) name alloc classify =
  locked reg.lock @@ fun () ->
  match Hashtbl.find_opt reg.tbl name with
  | Some r -> (
      match classify r with
      | Some id -> id
      | None ->
        invalid_arg ("Obs.Metrics: " ^ name ^ " registered with another kind"))
  | None ->
    let id, r = alloc () in
    Hashtbl.replace reg.tbl name r;
    id

module Counter = struct
  type t = counter

  let make ?(registry = Registry.default) name =
    let id =
      find_or_register registry name
        (fun () ->
          let id = registry.n_counters in
          registry.n_counters <- id + 1;
          (id, R_counter id))
        (function R_counter id -> Some id | _ -> None)
    in
    { c_reg = registry; c_id = id }

  let cells t =
    let sh = Shard.my t.c_reg.shards in
    if t.c_id >= Array.length sh.counters then grow_counters sh t.c_id;
    sh.counters

  let incr t =
    let a = cells t in
    a.(t.c_id) <- a.(t.c_id) + 1

  let add t n =
    let a = cells t in
    a.(t.c_id) <- a.(t.c_id) + n

  let value t =
    Shard.fold t.c_reg.shards
      (fun acc _ sh ->
        if t.c_id < Array.length sh.counters then acc + sh.counters.(t.c_id)
        else acc)
      0
end

module Gauge = struct
  type t = gauge

  let make ?(registry = Registry.default) name =
    let id =
      find_or_register registry name
        (fun () ->
          let id = registry.n_gauges in
          registry.n_gauges <- id + 1;
          (id, R_gauge id))
        (function R_gauge id -> Some id | _ -> None)
    in
    { g_reg = registry; g_id = id }

  let cells t =
    let sh = Shard.my t.g_reg.shards in
    if t.g_id >= Array.length sh.g_vals then grow_gauges sh t.g_id;
    sh

  (* Within a domain a gauge is last-write-wins, as before. Across
     domains the merged value is the maximum over the shards that set
     it — exact for single-writer gauges (par.jobs) and for the
     [set_max] high-water pattern (engine.peak_frontier), which are the
     only cross-domain uses. *)
  let set t v =
    let sh = cells t in
    sh.g_vals.(t.g_id) <- v;
    sh.g_set.(t.g_id) <- true

  let set_max t v =
    let sh = cells t in
    if (not sh.g_set.(t.g_id)) || v > sh.g_vals.(t.g_id) then
      sh.g_vals.(t.g_id) <- v;
    sh.g_set.(t.g_id) <- true

  let value t =
    Shard.fold t.g_reg.shards
      (fun acc _ sh ->
        if t.g_id < Array.length sh.g_vals && sh.g_set.(t.g_id) then
          match acc with
          | None -> Some sh.g_vals.(t.g_id)
          | Some v -> Some (Float.max v sh.g_vals.(t.g_id))
        else acc)
      None
    |> Option.value ~default:0.0
end

(* A merged cross-shard view of one histogram — what every read-side
   function (count, sum, quantile, snapshot) works from. *)
type hview = {
  v_count : int;
  v_sum : float;
  v_min : float;
  v_max : float;
  v_buckets : int array;
}

module Histogram = struct
  type t = histogram

  let make ?(registry = Registry.default) name =
    let id =
      find_or_register registry name
        (fun () ->
          let id = registry.n_histograms in
          registry.n_histograms <- id + 1;
          (id, R_histogram id))
        (function R_histogram id -> Some id | _ -> None)
    in
    { h_reg = registry; h_id = id }

  let bucket_of v =
    if v <= 0.0 then 0
    else begin
      (* frexp: v = m * 2^e with m in [0.5, 1), so v lies in
         [2^(e-1), 2^e) and belongs to bucket (e-1) - min_exp. *)
      let _, e = Float.frexp v in
      let i = e - 1 - min_exp in
      if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i
    end

  (* Inclusive upper edge of bucket [i] (values right below 2^(...+1)). *)
  let bucket_upper i = Float.pow 2.0 (float_of_int (min_exp + i + 1))

  let observe t v =
    let sh = Shard.my t.h_reg.shards in
    if t.h_id >= Array.length sh.h_counts then grow_histograms sh t.h_id;
    let id = t.h_id in
    sh.h_counts.(id) <- sh.h_counts.(id) + 1;
    sh.h_sums.(id) <- sh.h_sums.(id) +. v;
    if v < sh.h_mins.(id) then sh.h_mins.(id) <- v;
    if v > sh.h_maxs.(id) then sh.h_maxs.(id) <- v;
    let b = sh.h_buckets.(id) in
    let i = bucket_of v in
    b.(i) <- b.(i) + 1

  let view t =
    let buckets = Array.make n_buckets 0 in
    Shard.fold t.h_reg.shards
      (fun acc _ sh ->
        if t.h_id < Array.length sh.h_counts && sh.h_counts.(t.h_id) > 0 then begin
          Array.iteri (fun i n -> buckets.(i) <- buckets.(i) + n)
            sh.h_buckets.(t.h_id);
          {
            v_count = acc.v_count + sh.h_counts.(t.h_id);
            v_sum = acc.v_sum +. sh.h_sums.(t.h_id);
            v_min = Float.min acc.v_min sh.h_mins.(t.h_id);
            v_max = Float.max acc.v_max sh.h_maxs.(t.h_id);
            v_buckets = buckets;
          }
        end
        else acc)
      {
        v_count = 0;
        v_sum = 0.0;
        v_min = infinity;
        v_max = neg_infinity;
        v_buckets = buckets;
      }

  let count t = (view t).v_count
  let sum t = (view t).v_sum

  let mean t =
    let v = view t in
    if v.v_count = 0 then nan else v.v_sum /. float_of_int v.v_count

  (* Quantile estimate: the upper edge of the first bucket whose
     cumulative count reaches [q * count], clamped to the observed
     min/max (exact when a bucket holds a single distinct value). *)
  let quantile_of_view v q =
    if v.v_count = 0 then nan
    else begin
      let rank = q *. float_of_int v.v_count in
      let rec walk i cum =
        if i >= n_buckets then v.v_max
        else begin
          let cum = cum + v.v_buckets.(i) in
          if float_of_int cum >= rank then
            Float.min v.v_max (Float.max v.v_min (bucket_upper i))
          else walk (i + 1) cum
        end
      in
      walk 0 0
    end

  let quantile t q = quantile_of_view (view t) q
end

(* Fold every other domain's shard into the calling domain's, zeroing
   the sources — called by [Par.Pool] right after a task join, when the
   workers are quiescent (their writes happen-before the join), so the
   merge is exact and the shard visiting order (domain id) makes any
   float summation deterministic. *)
let merge ?(registry = Registry.default) () =
  let mine = Shard.my registry.shards in
  Shard.iter registry.shards (fun _ sh ->
      if sh != mine then begin
        Array.iteri
          (fun id n ->
            if n <> 0 then begin
              if id >= Array.length mine.counters then grow_counters mine id;
              mine.counters.(id) <- mine.counters.(id) + n;
              sh.counters.(id) <- 0
            end)
          sh.counters;
        Array.iteri
          (fun id set ->
            if set then begin
              if id >= Array.length mine.g_vals then grow_gauges mine id;
              if (not mine.g_set.(id)) || sh.g_vals.(id) > mine.g_vals.(id)
              then mine.g_vals.(id) <- sh.g_vals.(id);
              mine.g_set.(id) <- true;
              sh.g_vals.(id) <- 0.0;
              sh.g_set.(id) <- false
            end)
          sh.g_set;
        Array.iteri
          (fun id n ->
            if n <> 0 then begin
              if id >= Array.length mine.h_counts then grow_histograms mine id;
              mine.h_counts.(id) <- mine.h_counts.(id) + n;
              mine.h_sums.(id) <- mine.h_sums.(id) +. sh.h_sums.(id);
              if sh.h_mins.(id) < mine.h_mins.(id) then
                mine.h_mins.(id) <- sh.h_mins.(id);
              if sh.h_maxs.(id) > mine.h_maxs.(id) then
                mine.h_maxs.(id) <- sh.h_maxs.(id);
              let dst = mine.h_buckets.(id) and src = sh.h_buckets.(id) in
              Array.iteri (fun i n -> dst.(i) <- dst.(i) + n) src;
              sh.h_counts.(id) <- 0;
              sh.h_sums.(id) <- 0.0;
              sh.h_mins.(id) <- infinity;
              sh.h_maxs.(id) <- neg_infinity;
              Array.fill src 0 (Array.length src) 0
            end)
          sh.h_counts
      end)

let metric_json reg = function
  | R_counter id ->
    Json.Obj
      [
        ("type", Json.Str "counter");
        ("value", Json.Int (Counter.value { c_reg = reg; c_id = id }));
      ]
  | R_gauge id ->
    Json.Obj
      [
        ("type", Json.Str "gauge");
        ("value", Json.Float (Gauge.value { g_reg = reg; g_id = id }));
      ]
  | R_histogram id ->
    let v = Histogram.view { h_reg = reg; h_id = id } in
    let filled =
      Array.to_list (Array.mapi (fun i n -> (i, n)) v.v_buckets)
      |> List.filter (fun (_, n) -> n > 0)
      |> List.map (fun (i, n) ->
             Json.Obj
               [
                 ("le", Json.Float (Histogram.bucket_upper i));
                 ("n", Json.Int n);
               ])
    in
    let z = v.v_count = 0 in
    Json.Obj
      [
        ("type", Json.Str "histogram");
        ("count", Json.Int v.v_count);
        ("sum", Json.Float v.v_sum);
        ("min", Json.Float (if z then 0.0 else v.v_min));
        ("max", Json.Float (if z then 0.0 else v.v_max));
        ("p50", Json.Float (if z then 0.0 else Histogram.quantile_of_view v 0.5));
        ("p90", Json.Float (if z then 0.0 else Histogram.quantile_of_view v 0.9));
        ("buckets", Json.Arr filled);
      ]

(* Only metrics touched since the last reset appear, so snapshots stay
   small and bench entries list exactly the instruments the run hit. *)
let touched reg = function
  | R_counter id -> Counter.value { c_reg = reg; c_id = id } <> 0
  | R_gauge id ->
    Shard.fold reg.shards
      (fun acc _ sh -> acc || (id < Array.length sh.g_set && sh.g_set.(id)))
      false
  | R_histogram id -> Histogram.count { h_reg = reg; h_id = id } > 0

let snapshot ?(registry = Registry.default) () =
  let refs =
    locked registry.lock @@ fun () ->
    Hashtbl.fold (fun name r acc -> (name, r) :: acc) registry.tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  (* Merged values are read outside [registry.lock]: each read folds the
     shard list under the shard-store lock, and registration only ever
     appends metric ids, so the sorted name list cannot go stale in a
     way that breaks a read. *)
  Json.Obj
    (List.filter_map
       (fun (name, r) ->
         if touched registry r then Some (name, metric_json registry r)
         else None)
       refs)
