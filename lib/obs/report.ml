(* The run report: one JSON snapshot combining the metrics registry,
   span timing aggregates and GC statistics — everything a bench or CI
   run needs to make two revisions comparable. *)

(* [Gc.stat] (not [quick_stat]) walks the heap so that [live_words] is
   populated: a report is a one-shot snapshot, so the walk is worth the
   memory fields it buys (live vs. peak heap makes store-representation
   wins visible in BENCH_engine.json). *)
let gc_json () =
  let s = Gc.stat () in
  Json.Obj
    [
      ("minor_words", Json.Float s.Gc.minor_words);
      ("major_words", Json.Float s.Gc.major_words);
      ("promoted_words", Json.Float s.Gc.promoted_words);
      ("minor_collections", Json.Int s.Gc.minor_collections);
      ("major_collections", Json.Int s.Gc.major_collections);
      ("compactions", Json.Int s.Gc.compactions);
      ("heap_words", Json.Int s.Gc.heap_words);
      ("top_heap_words", Json.Int s.Gc.top_heap_words);
      ("live_words", Json.Int s.Gc.live_words);
    ]

let make ?registry () =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("metrics", Metrics.snapshot ?registry ());
      ("spans", Span.timings_json ());
      ("span_domains", Span.domain_timings_json ());
      ("gc", gc_json ());
    ]

let to_file path ?registry () =
  let oc = open_out path in
  output_string oc (Json.to_string (make ?registry ()));
  output_char oc '\n';
  close_out oc
