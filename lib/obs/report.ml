(* The run report: one JSON snapshot combining the metrics registry,
   span timing aggregates, flight-recorder phase totals and GC
   statistics — everything a bench or CI run needs to make two revisions
   comparable. *)

(* Two GC snapshot depths. [Gc.quick_stat] (the default) reads the
   mutator's counters without touching the heap: allocation totals
   (minor/major/promoted words) and collection counts are exact, while
   [live_words]/[heap_words] are carried over from the last major
   collection — an approximation that can lag the truth by one major
   cycle. [Gc.stat] instead completes a major cycle and walks the heap
   so [live_words] (words actually alive, vs. [top_heap_words] for the
   peak reservation) is exact at the snapshot instant — worth paying
   only where that number is the point, e.g. BENCH_engine.json
   store-representation comparisons; ask for it with [~full_gc:true].
   The ["stat"] field records which one produced the snapshot. *)
let gc_json ?(full = false) () =
  let s = if full then Gc.stat () else Gc.quick_stat () in
  Json.Obj
    [
      ("stat", Json.Str (if full then "full" else "quick"));
      ("minor_words", Json.Float s.Gc.minor_words);
      ("major_words", Json.Float s.Gc.major_words);
      ("promoted_words", Json.Float s.Gc.promoted_words);
      ("minor_collections", Json.Int s.Gc.minor_collections);
      ("major_collections", Json.Int s.Gc.major_collections);
      ("compactions", Json.Int s.Gc.compactions);
      ("heap_words", Json.Int s.Gc.heap_words);
      ("top_heap_words", Json.Int s.Gc.top_heap_words);
      ("live_words", Json.Int s.Gc.live_words);
    ]

let make ?registry ?(full_gc = false) () =
  let base =
    [
      ("version", Json.Int 1);
      ("metrics", Metrics.snapshot ?registry ());
      ("spans", Span.timings_json ());
      ("span_domains", Span.domain_timings_json ());
      ("gc", gc_json ~full:full_gc ());
    ]
  in
  (* Phase totals ride along only when the flight recorder produced
     any, so reports from uninstrumented runs keep their old shape. *)
  let fields =
    match Flight.totals () with
    | [] -> base
    | _ -> base @ [ ("phases", Flight.totals_json ()) ]
  in
  Json.Obj fields

let to_file path ?registry ?full_gc () =
  let oc = open_out path in
  output_string oc (Json.to_string (make ?registry ?full_gc ()));
  output_char oc '\n';
  close_out oc
