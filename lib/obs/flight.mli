(** The flight recorder: per-domain ring buffers of engine phase events
    with overwrite-oldest semantics, drained into Chrome [trace_event]
    JSON (chrome://tracing / Perfetto) or a minimal OTLP-shaped export.

    Appending is lock-free and allocation-free: the calling domain owns
    its ring and writes with plain stores. When the recorder is off,
    {!start} costs one atomic load and returns a sentinel that turns the
    matching {!stop} into a no-op — the instrumentation can stay in the
    hot path permanently. Names are interned to ids once ({!intern} at
    module initialisation, never per event).

    Per-phase totals (count, total seconds per name) are kept separately
    from the ring and see every [Complete] event, so phase breakdowns
    stay exact even after the ring wraps; only the event *timeline* is
    bounded by the capacity ({!dropped} counts overwritten events).

    {!enable}, {!disable}, {!reset} and {!drain} touch other domains'
    rings: call them at quiescent points (no concurrent appenders). *)

type kind = Complete | Instant | Counter

type event = {
  domain : int;
  seq : int;  (** per-domain append index (monotone, pre-wrap) *)
  name : string;
  kind : kind;
  ts : float;  (** Unix epoch seconds (converted from {!Clock} ticks) *)
  dur : float;  (** seconds for [Complete], sampled value for [Counter] *)
}

(** Intern a phase name; idempotent. *)
val intern : string -> int

(** Start recording. [capacity] (events per domain, rounded up to a
    power of two, default 8192) bounds the timeline; existing rings are
    cleared. A ring costs ~24 bytes an event and competes with the
    engine's working set for cache — the 8192 default (~192KB) keeps
    recorder overhead in budget; raise it for a longer timeline window
    when that trade is worth it. *)
val enable : ?capacity:int -> unit -> unit

val disable : unit -> unit
val is_enabled : unit -> bool

(** Clear all rings and totals, keeping the enabled state. *)
val reset : unit -> unit

(** [stop id (start ())] brackets a phase: records one [Complete] event
    and bumps the phase totals. [start] returns the current {!Clock}
    tick reading — or a negative sentinel when the recorder is off,
    making [stop] free. The pair costs ~40ns when recording. *)
val start : unit -> float

val stop : int -> float -> unit

(** [stop_start id t0] closes phase [id] and opens the next phase on a
    single clock read, returning the new start. Sentinel-propagating:
    free when the recorder is off. *)
val stop_start : int -> float -> float

(** Record a pre-timed [Complete] event (e.g. a closed span). [ts] and
    [dur] are in {!Clock} ticks — pass [Clock.now] readings through
    unconverted. *)
val complete : int -> ts:float -> dur:float -> unit

(** Record an [Instant] event. *)
val mark : int -> unit

(** Record a [Counter] sample (a value-over-time track in the trace). *)
val sample : int -> float -> unit

(** Merge all rings, sorted by timestamp (ties: domain, then sequence).
    Non-destructive: draining twice yields the same events. *)
val drain : unit -> event list

(** Events overwritten by ring wraparound, summed over domains. *)
val dropped : unit -> int

(** Per-phase [(name, (count, total seconds))] merged across domains,
    sorted by name; exact regardless of wraparound. *)
val totals : unit -> (string * (int * float)) list

val totals_json : unit -> Json.t

(** Chrome [trace_event] object format: "X" slices per [Complete], "i"
    instants, "C" counter tracks; pid 1, one tid per domain, µs
    timestamps relative to the earliest event. *)
val to_chrome : event list -> Json.t

(** Minimal OTLP/JSON (ExportTraceServiceRequest shape): [Complete]
    events only, unix-nano times at µs precision. *)
val to_otlp : event list -> Json.t

(** [drain] + convert + write, one JSON document per file. *)
val write_chrome : string -> unit

val write_otlp : string -> unit

(** [capture_chrome path] — {!write_chrome} then {!reset}: the
    slow-request hook of a serving loop. The drained window becomes one
    per-request trace file and the rings start empty for the next
    request; recording stays enabled. Call at a quiescent point (the
    request finished, no concurrent appenders). *)
val capture_chrome : string -> unit
