/* Two clocks for the observability layer.  Both native entry points
   are declared [@@noalloc] with unboxed float results, so they must not
   allocate, raise, or touch the OCaml heap.

   obs_clock_ticks: the raw CPU cycle counter (rdtsc / cntvct_el0) as a
   double — ~8ns a read, the flight recorder's hot-path timestamp.
   Units are ticks of an unknown (but invariant) frequency; Clock.period
   calibrates them against CLOCK_MONOTONIC on first conversion.  On
   architectures without a user-readable cycle counter it falls back to
   CLOCK_MONOTONIC nanoseconds (period then calibrates to ~1e-9).

   obs_clock_mono: CLOCK_MONOTONIC as seconds-in-a-double — the
   calibration reference. */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <time.h>

double obs_clock_ticks(value unit)
{
  (void)unit;
#if defined(__x86_64__) || defined(__i386__)
  unsigned int lo, hi;
  __asm__ __volatile__("rdtsc" : "=a"(lo), "=d"(hi));
  return (double)(((unsigned long long)hi << 32) | lo);
#elif defined(__aarch64__)
  unsigned long long v;
  __asm__ __volatile__("mrs %0, cntvct_el0" : "=r"(v));
  return (double)v;
#else
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (double)ts.tv_sec * 1e9 + (double)ts.tv_nsec;
#endif
}

double obs_clock_mono(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
}

CAMLprim value obs_clock_ticks_byte(value unit)
{
  return caml_copy_double(obs_clock_ticks(unit));
}

CAMLprim value obs_clock_mono_byte(value unit)
{
  return caml_copy_double(obs_clock_mono(unit));
}
