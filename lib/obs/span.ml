(* Nestable timed spans. Besides feeding the installed sink, every span
   updates an in-process aggregate (count / total / max per name) that
   the run report serialises, so timing data survives even with the
   null sink. Single-domain use is assumed, like the rest of the
   library. *)

type agg = {
  mutable a_count : int;
  mutable a_total_s : float;
  mutable a_max_s : float;
}

let aggregates : (string, agg) Hashtbl.t = Hashtbl.create 32
let depth = ref 0

let reset () =
  Hashtbl.reset aggregates;
  depth := 0

let record name dur_s =
  let a =
    match Hashtbl.find_opt aggregates name with
    | Some a -> a
    | None ->
      let a = { a_count = 0; a_total_s = 0.0; a_max_s = 0.0 } in
      Hashtbl.replace aggregates name a;
      a
  in
  a.a_count <- a.a_count + 1;
  a.a_total_s <- a.a_total_s +. dur_s;
  if dur_s > a.a_max_s then a.a_max_s <- dur_s

let with_ ~name f =
  let tracing = not (Sink.is_null !Sink.current) in
  let d = !depth in
  let t0 = Unix.gettimeofday () in
  if tracing then Sink.emit (Sink.Span_start { name; depth = d; t = t0 });
  incr depth;
  let finish ok =
    let t1 = Unix.gettimeofday () in
    let dur_s = t1 -. t0 in
    depth := d;
    record name dur_s;
    (* Re-read the sink: the body may have installed one. *)
    if not (Sink.is_null !Sink.current) then
      Sink.emit (Sink.Span_end { name; depth = d; t = t1; dur_s; ok })
  in
  match f () with
  | v ->
    finish true;
    v
  | exception e ->
    finish false;
    raise e

type timing = { name : string; count : int; total_s : float; max_s : float }

let timings () =
  Hashtbl.fold
    (fun name a acc ->
      { name; count = a.a_count; total_s = a.a_total_s; max_s = a.a_max_s }
      :: acc)
    aggregates []
  |> List.sort (fun a b -> String.compare a.name b.name)

let timings_json () =
  Json.Obj
    (List.map
       (fun t ->
         ( t.name,
           Json.Obj
             [
               ("count", Json.Int t.count);
               ("total_s", Json.Float t.total_s);
               ("max_s", Json.Float t.max_s);
             ] ))
       (timings ()))
