(* Nestable timed spans, domain-safe. Besides feeding the installed
   sink, every span updates two aggregates (count / total / max per
   name): a global one and a per-domain one, so run reports can show
   both the overall picture and how a parallel section's time split
   across the worker domains. Aggregate tables and sink emission share
   one mutex (short critical sections — a span records once, at close);
   nesting depth is domain-local state, so each worker traces its own
   stack. *)

type agg = {
  mutable a_count : int;
  mutable a_total_s : float;
  mutable a_max_s : float;
}

let lock = Mutex.create ()
let aggregates : (string, agg) Hashtbl.t = Hashtbl.create 32

(* Keyed by (domain id, span name); domain 0 is the main domain. *)
let domain_aggregates : (int * string, agg) Hashtbl.t = Hashtbl.create 32

let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let depth () = !(Domain.DLS.get depth_key)

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let reset () =
  locked @@ fun () ->
  Hashtbl.reset aggregates;
  Hashtbl.reset domain_aggregates;
  Domain.DLS.get depth_key := 0

let bump tbl key dur_s =
  let a =
    match Hashtbl.find_opt tbl key with
    | Some a -> a
    | None ->
      let a = { a_count = 0; a_total_s = 0.0; a_max_s = 0.0 } in
      Hashtbl.replace tbl key a;
      a
  in
  a.a_count <- a.a_count + 1;
  a.a_total_s <- a.a_total_s +. dur_s;
  if dur_s > a.a_max_s then a.a_max_s <- dur_s

let record name dur_s =
  let did = (Domain.self () :> int) in
  locked @@ fun () ->
  bump aggregates name dur_s;
  bump domain_aggregates (did, name) dur_s

(* Sinks are single-consumer (a file, a memory buffer): serialise
   emission under the same lock so concurrent domains interleave whole
   events, never bytes. *)
let emit ev = locked (fun () -> Sink.emit ev)

let with_ ~name f =
  let tracing = not (Sink.is_null !Sink.current) in
  let depth_cell = Domain.DLS.get depth_key in
  let d = !depth_cell in
  (* Timing runs on the tick-based {!Clock} (NTP-jump-proof, and the
     same unit the flight ring stores); sink events keep their epoch
     timestamps via [Clock.to_epoch]. *)
  let t0 = Clock.now () in
  if tracing then
    emit (Sink.Span_start { name; depth = d; t = Clock.to_epoch t0 });
  incr depth_cell;
  let finish ok =
    let t1 = Clock.now () in
    let dur_s = Clock.to_s (t1 -. t0) in
    depth_cell := d;
    record name dur_s;
    (* Mirror closed spans into the flight timeline: interning here is a
       per-close hashtable hit, fine for coarse-grained spans. *)
    if Flight.is_enabled () then
      Flight.complete (Flight.intern name) ~ts:t0 ~dur:(t1 -. t0);
    (* Re-read the sink: the body may have installed one. *)
    if not (Sink.is_null !Sink.current) then
      emit (Sink.Span_end { name; depth = d; t = Clock.to_epoch t1; dur_s; ok })
  in
  match f () with
  | v ->
    finish true;
    v
  | exception e ->
    finish false;
    raise e

type timing = { name : string; count : int; total_s : float; max_s : float }

let timing_of name (a : agg) =
  { name; count = a.a_count; total_s = a.a_total_s; max_s = a.a_max_s }

let timings () =
  locked @@ fun () ->
  Hashtbl.fold (fun name a acc -> timing_of name a :: acc) aggregates []
  |> List.sort (fun a b -> String.compare a.name b.name)

let timing_json t =
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("total_s", Json.Float t.total_s);
      ("max_s", Json.Float t.max_s);
    ]

let timings_json () =
  Json.Obj (List.map (fun t -> (t.name, timing_json t)) (timings ()))

let domain_timings () =
  locked @@ fun () ->
  Hashtbl.fold
    (fun (did, name) a acc -> (did, timing_of name a) :: acc)
    domain_aggregates []
  |> List.sort (fun (d1, t1) (d2, t2) ->
         match compare d1 d2 with
         | 0 -> String.compare t1.name t2.name
         | c -> c)

let domain_timings_json () =
  let per_domain = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (did, t) ->
      let fields =
        match Hashtbl.find_opt per_domain did with
        | Some fs -> fs
        | None ->
          order := did :: !order;
          []
      in
      Hashtbl.replace per_domain did ((t.name, timing_json t) :: fields))
    (domain_timings ());
  Json.Obj
    (List.rev_map
       (fun did ->
         (string_of_int did, Json.Obj (List.rev (Hashtbl.find per_domain did))))
       !order)
