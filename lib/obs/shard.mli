(** Per-domain shard store: every domain gets its own private ['a]
    (created lazily on first touch), mutated by that domain alone with
    plain stores. Readers fold over all shards in increasing domain-id
    order — deterministic, and exact at synchronisation points (after a
    [Domain.join] or a [Par.Pool] task join every joined domain's writes
    are visible). Cross-domain reads outside such points are racy but
    word-atomic: never torn, possibly slightly stale. *)

type 'a t

(** [create fresh] — a new store; [fresh ()] builds a domain's shard on
    its first access. *)
val create : (unit -> 'a) -> 'a t

(** This domain's shard (created and registered on first call). *)
val my : 'a t -> 'a

(** Fold over all shards in increasing domain-id order, caller's own
    shard included. Runs under the store lock: keep [f] cheap and never
    call back into the same store. *)
val fold : 'a t -> ('b -> int -> 'a -> 'b) -> 'b -> 'b

val iter : 'a t -> (int -> 'a -> unit) -> unit
