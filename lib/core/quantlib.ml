(** Facade: one module giving access to every tool family of the paper.

    - {!Zones} / {!Ta}: the UPPAAL core (DBMs, timed automata, the
      symbolic model checker, the Fig. 1 train-gate).
    - {!Discrete}, {!Priced}, {!Games}: digital clocks, UPPAAL-CORA
      (priced reachability / WCET) and UPPAAL-TIGA (timed games).
    - {!Smc}: UPPAAL-SMC (stochastic semantics + statistical estimators).
    - {!Mdp}, {!Modest}: the MODEST toolset — STA, the language frontend,
      and the mctau / mcpta / modes backends with the BRP case study.
    - {!Bip}: the BIP component framework with D-Finder and DALA.
    - {!Mbt}: ioco model-based testing and the TRON-style online tester.
    - {!Ecdar}: timed I/O refinement.
    - {!Engine}: the shared symbolic exploration core (state stores,
      search orders, per-run instrumentation) every checker runs on.
    - {!Obs}: the telemetry layer (metrics registry, span tracing, run
      reports, JSON) all of the above publish into.
    - {!Par}: the deterministic domain pool the Monte-Carlo backends
      ({!Smc}, {!Modest.Modes}) shard their run batches on.
    - {!Gen}: seeded random-model generators and the differential
      oracle harness that cross-checks the backends against each
      other.
    - {!Serve}: the quantd service layer — JSONL protocol, warm model
      registry, request batching, the socket daemon and its client. *)

module Zones = Zones
module Obs = Obs
module Par = Par
module Engine = Engine
module Ta = Ta
module Discrete = Discrete
module Priced = Priced
module Games = Games
module Smc = Smc
module Mdp = Mdp
module Modest = Modest
module Bip = Bip
module Mbt = Mbt
module Ecdar = Ecdar
module Gen = Gen
module Serve = Serve
module Util = Quant_util
