(** The UPPAAL-style query language.

    State formulas combine location tests, data predicates and clock
    constraints; queries wrap them in the temporal patterns the paper
    uses: [A[] f] (invariantly), [E<> f] (possibly), [f --> g] (leads to),
    [A<> f] (eventually on all paths) and deadlock-freedom. *)

type formula =
  | True
  | False
  | Loc of int * int  (** component index, location index *)
  | Data of Expr.t
  | Clock of Model.constr
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Imply of formula * formula

type query =
  | Invariant of formula  (** [A[] f] *)
  | Possibly of formula  (** [E<> f] *)
  | Eventually of formula  (** [A<> f] *)
  | LeadsTo of formula * formula  (** [f --> g]; both must be crisp *)
  | NoDeadlock  (** [A[] not deadlock] *)

(** [loc net "Train0" "Cross"] is the location test, resolved by name.
    @raise Not_found for unknown components or locations. *)
val loc : Model.network -> string -> string -> formula

(** [crisp f] is true when [f] contains no clock constraint, so that its
    truth is determined by the discrete part alone. *)
val crisp : formula -> bool

(** [eval_crisp net st f] evaluates a crisp formula on the discrete part.
    @raise Invalid_argument if [f] is not crisp. *)
val eval_crisp : Model.network -> Zone_graph.state -> formula -> bool

(** [eval_on net ~locs ~store f] — same, on raw discrete parts (used by
    the simulation engines, which carry concrete clock values instead of
    zones). *)
val eval_on :
  Model.network -> locs:int array -> store:int array -> formula -> bool

(** [sat_fed net st f] is the exact sub-zone of [st.zone] whose valuations
    satisfy [f] (federation because of disjunction and negation). *)
val sat_fed : Model.network -> Zone_graph.state -> formula -> Zones.Fed.t

(** [holds_somewhere net st f] — does some valuation of [st] satisfy [f]? *)
val holds_somewhere : Model.network -> Zone_graph.state -> formula -> bool

(** [holds_everywhere net st f] — do all valuations of [st] satisfy [f]? *)
val holds_everywhere : Model.network -> Zone_graph.state -> formula -> bool

(** [merge_constants net f ks] returns extrapolation constants covering
    both the network and the clock atoms of [f] (fresh array). *)
val merge_constants : Model.network -> formula -> int array

(** [merge_lu net f] returns [(lower, upper)] Extra-LU bounds covering
    both the network ({!Model.lu_bounds}) and the clock atoms of [f];
    atoms are merged into both arrays because negation flips constraint
    direction. *)
val merge_lu : Model.network -> formula -> int array * int array

val pp : Model.network -> Format.formatter -> formula -> unit
val pp_query : Model.network -> Format.formatter -> query -> unit
