module Bound = Zones.Bound

type clock = int
type chan_kind = Binary | Broadcast

type chan = { chan_id : int; chan_name : string; kind : chan_kind; urgent : bool }

type sync = Emit of chan | Receive of chan | Tau
type constr = { ci : int; cj : int; cb : Bound.t }

type update =
  | Assign of Expr.lvalue * Expr.t
  | Reset of clock * int
  | Prim of string * (int array -> unit)

type loc_kind = Normal | Urgent | Committed
type location = { loc_name : string; kind : loc_kind; invariant : constr list }

type edge = {
  src : int;
  dst : int;
  data_guard : Expr.t option;
  clock_guard : constr list;
  sync : sync;
  updates : update list;
  ctrl : bool; (* controllable edge (timed games); plain TA edges are true *)
}

type automaton = {
  auto_name : string;
  locations : location array;
  out : edge list array;
  initial : int;
}

type network = {
  automata : automaton array;
  n_clocks : int;
  clock_names : string array;
  channels : chan array;
  layout : Store.layout;
  max_consts : int array;
}

(* ------------------------------------------------------------------ *)
(* Constraint helpers                                                  *)
(* ------------------------------------------------------------------ *)

let clock_le x c = { ci = x; cj = 0; cb = Bound.le c }
let clock_lt x c = { ci = x; cj = 0; cb = Bound.lt c }
let clock_ge x c = { ci = 0; cj = x; cb = Bound.le (-c) }
let clock_gt x c = { ci = 0; cj = x; cb = Bound.lt (-c) }
let diff_le x y c = { ci = x; cj = y; cb = Bound.le c }
let diff_lt x y c = { ci = x; cj = y; cb = Bound.lt c }

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

type proto_auto = {
  pa_name : string;
  mutable pa_locs : location list; (* reversed *)
  mutable pa_edges : edge list; (* reversed *)
  mutable pa_initial : int;
}

type builder = {
  mutable clocks : string list; (* reversed *)
  mutable chans : chan list; (* reversed *)
  mutable autos : proto_auto list; (* reversed *)
  b_store : Store.builder;
}

type auto_builder = proto_auto

let builder () =
  { clocks = []; chans = []; autos = []; b_store = Store.create () }

let fresh_clock b name =
  b.clocks <- name :: b.clocks;
  List.length b.clocks

let channel b ?(kind = Binary) ?(urgent = false) name =
  let c =
    { chan_id = List.length b.chans; chan_name = name; kind; urgent }
  in
  b.chans <- c :: b.chans;
  c

let store b = b.b_store

let automaton b name =
  let pa = { pa_name = name; pa_locs = []; pa_edges = []; pa_initial = 0 } in
  b.autos <- pa :: b.autos;
  pa

let location pa ?(kind = Normal) ?(invariant = []) name =
  let l = { loc_name = name; kind; invariant } in
  pa.pa_locs <- l :: pa.pa_locs;
  List.length pa.pa_locs - 1

let set_initial pa l = pa.pa_initial <- l

let edge pa ~src ~dst ?guard ?(clock_guard = []) ?(sync = Tau)
    ?(updates = []) ?(ctrl = true) () =
  pa.pa_edges <-
    { src; dst; data_guard = guard; clock_guard; sync; updates; ctrl }
    :: pa.pa_edges

let validate_constr ~n_clocks ~what c =
  if c.ci < 0 || c.ci > n_clocks || c.cj < 0 || c.cj > n_clocks || c.ci = c.cj
  then
    invalid_arg
      (Printf.sprintf "Model.build: bad clock indices (%d,%d) in %s" c.ci c.cj
         what)

let build b =
  let n_clocks = List.length b.clocks in
  let clock_names = Array.make (n_clocks + 1) "0" in
  List.iteri
    (fun i name -> clock_names.(n_clocks - i) <- name)
    b.clocks;
  let channels = Array.of_list (List.rev b.chans) in
  let max_consts = Array.make (n_clocks + 1) 0 in
  let record_constr c =
    if not (Bound.is_inf c.cb) then begin
      let k = abs (Bound.constant c.cb) in
      if c.ci > 0 then max_consts.(c.ci) <- max max_consts.(c.ci) k;
      if c.cj > 0 then max_consts.(c.cj) <- max max_consts.(c.cj) k
    end
  in
  let finish_auto pa =
    let locations = Array.of_list (List.rev pa.pa_locs) in
    if Array.length locations = 0 then
      invalid_arg
        (Printf.sprintf "Model.build: component %s has no locations" pa.pa_name);
    Array.iter
      (fun l ->
        List.iter
          (fun c ->
            validate_constr ~n_clocks ~what:("invariant of " ^ l.loc_name) c;
            record_constr c)
          l.invariant)
      locations;
    let out = Array.make (Array.length locations) [] in
    let check_edge e =
      if e.src < 0 || e.src >= Array.length locations
         || e.dst < 0 || e.dst >= Array.length locations then
        invalid_arg
          (Printf.sprintf "Model.build: bad edge endpoints in %s" pa.pa_name);
      List.iter
        (fun c ->
          validate_constr ~n_clocks ~what:("edge guard in " ^ pa.pa_name) c;
          record_constr c)
        e.clock_guard;
      (match e.sync with
       | Receive ch when ch.kind = Broadcast && e.clock_guard <> [] ->
         invalid_arg
           (Printf.sprintf
              "Model.build: broadcast receiver on %s in %s must not have a \
               clock guard"
              ch.chan_name pa.pa_name)
       | (Emit ch | Receive ch) when ch.urgent && e.clock_guard <> [] ->
         invalid_arg
           (Printf.sprintf
              "Model.build: edge on urgent channel %s in %s must not have a \
               clock guard"
              ch.chan_name pa.pa_name)
       | Emit _ | Receive _ | Tau -> ());
      List.iter
        (function
          | Reset (x, v) ->
            if x < 1 || x > n_clocks then
              invalid_arg "Model.build: reset of unknown clock";
            if v < 0 then invalid_arg "Model.build: reset to negative value";
            max_consts.(x) <- max max_consts.(x) v
          | Assign _ | Prim _ -> ())
        e.updates
    in
    List.iter check_edge pa.pa_edges;
    List.iter (fun e -> out.(e.src) <- e :: out.(e.src)) pa.pa_edges;
    (* Restore declaration order of edges. *)
    Array.iteri (fun i l -> out.(i) <- l) (Array.map List.rev out);
    if pa.pa_initial < 0 || pa.pa_initial >= Array.length locations then
      invalid_arg "Model.build: bad initial location";
    {
      auto_name = pa.pa_name;
      locations;
      out;
      initial = pa.pa_initial;
    }
  in
  let automata = Array.of_list (List.rev_map finish_auto b.autos) in
  {
    automata;
    n_clocks;
    clock_names;
    channels;
    layout = Store.freeze b.b_store;
    max_consts;
  }

(* ------------------------------------------------------------------ *)
(* LU guard analysis                                                   *)
(* ------------------------------------------------------------------ *)

(* Per-clock lower/upper guard constants for Extra-LU extrapolation,
   computed on demand by scanning the network (so composed or
   observer-extended networks need no extra bookkeeping). A constraint
   [x_ci - x_cj ≺ k] bounds [ci] from above and [cj] from below, so it
   feeds [upper.(ci)] and [lower.(cj)]; the constant is taken as [abs k],
   conservative for diagonal guards. Resets to [v] feed both sides, like
   [max_consts]. *)
let lu_bounds net =
  let lower = Array.make (net.n_clocks + 1) 0 in
  let upper = Array.make (net.n_clocks + 1) 0 in
  let record_constr c =
    if not (Bound.is_inf c.cb) then begin
      let k = abs (Bound.constant c.cb) in
      if c.ci > 0 then upper.(c.ci) <- max upper.(c.ci) k;
      if c.cj > 0 then lower.(c.cj) <- max lower.(c.cj) k
    end
  in
  Array.iter
    (fun au ->
      Array.iter (fun l -> List.iter record_constr l.invariant) au.locations;
      Array.iter
        (fun edges ->
          List.iter
            (fun e ->
              List.iter record_constr e.clock_guard;
              List.iter
                (function
                  | Reset (x, v) ->
                    lower.(x) <- max lower.(x) v;
                    upper.(x) <- max upper.(x) v
                  | Assign _ | Prim _ -> ())
                e.updates)
            edges)
        au.out)
    net.automata;
  (lower, upper)

(* ------------------------------------------------------------------ *)
(* Union (parallel composition of independently built networks)        *)
(* ------------------------------------------------------------------ *)

(* Clock indices and store offsets of [b] shift; channels merge by name.
   [b] must not contain Prim updates (their closures capture the old
   store offsets and cannot be remapped). *)
let union a b =
  let shift = a.n_clocks in
  (* Merged variable layout: a's variables first (offsets unchanged). *)
  let sb = Store.create () in
  let a_inits = Store.initial a.layout and b_inits = Store.initial b.layout in
  let redeclare inits (v : Store.var) =
    if v.Store.len = 1 then
      Store.int_var sb ~init:inits.(v.Store.off) v.Store.var_name
    else Store.array_var sb ~init:inits.(v.Store.off) v.Store.var_name v.Store.len
  in
  List.iter (fun v -> ignore (redeclare a_inits v)) (Store.vars a.layout);
  let b_var_map = Hashtbl.create 16 in
  List.iter
    (fun v -> Hashtbl.replace b_var_map v.Store.var_name (redeclare b_inits v))
    (Store.vars b.layout);
  let layout = Store.freeze sb in
  (* Channels: a's kept; b's merged by name. *)
  let chan_map = Hashtbl.create 16 in
  let merged_chans = ref (Array.to_list a.channels) in
  let next_id = ref (Array.length a.channels) in
  Array.iter
    (fun (c : chan) ->
      match
        List.find_opt
          (fun (c' : chan) -> String.equal c'.chan_name c.chan_name)
          !merged_chans
      with
      | Some c' ->
        if c'.kind <> c.kind || c'.urgent <> c.urgent then
          invalid_arg
            (Printf.sprintf "Model.union: channel %s declared differently"
               c.chan_name);
        Hashtbl.replace chan_map c.chan_id c'
      | None ->
        let fresh = { c with chan_id = !next_id } in
        incr next_id;
        merged_chans := !merged_chans @ [ fresh ];
        Hashtbl.replace chan_map c.chan_id fresh)
    b.channels;
  let shift_constr (c : constr) =
    {
      c with
      ci = (if c.ci = 0 then 0 else c.ci + shift);
      cj = (if c.cj = 0 then 0 else c.cj + shift);
    }
  in
  let subst_var (v : Store.var) =
    match Hashtbl.find_opt b_var_map v.Store.var_name with
    | Some v' -> v'
    | None -> invalid_arg "Model.union: unknown variable in b"
  in
  let shift_update = function
    | Reset (x, v) -> Reset (x + shift, v)
    | Assign (lv, rhs) ->
      Assign (Expr.subst_lvalue subst_var lv, Expr.subst_vars subst_var rhs)
    | Prim (name, _) ->
      invalid_arg
        (Printf.sprintf
           "Model.union: %s uses a Prim update, which cannot be remapped" name)
  in
  let shift_sync = function
    | Tau -> Tau
    | Emit c -> Emit (Hashtbl.find chan_map c.chan_id)
    | Receive c -> Receive (Hashtbl.find chan_map c.chan_id)
  in
  let shift_auto (au : automaton) =
    {
      au with
      locations =
        Array.map
          (fun l -> { l with invariant = List.map shift_constr l.invariant })
          au.locations;
      out =
        Array.map
          (fun edges ->
            List.map
              (fun e ->
                {
                  e with
                  data_guard = Option.map (Expr.subst_vars subst_var) e.data_guard;
                  clock_guard = List.map shift_constr e.clock_guard;
                  sync = shift_sync e.sync;
                  updates = List.map shift_update e.updates;
                })
              edges)
          au.out;
    }
  in
  (* Component names must stay unique for name-based lookups. *)
  Array.iter
    (fun (au : automaton) ->
      if
        Array.exists
          (fun (au' : automaton) -> String.equal au'.auto_name au.auto_name)
          a.automata
      then
        invalid_arg
          (Printf.sprintf "Model.union: duplicate component %s" au.auto_name))
    b.automata;
  {
    automata = Array.append a.automata (Array.map shift_auto b.automata);
    n_clocks = a.n_clocks + b.n_clocks;
    clock_names =
      Array.append a.clock_names (Array.sub b.clock_names 1 b.n_clocks);
    channels = Array.of_list !merged_chans;
    layout;
    max_consts =
      Array.append a.max_consts (Array.sub b.max_consts 1 b.n_clocks);
  }

(* ------------------------------------------------------------------ *)
(* Lookup and printing                                                 *)
(* ------------------------------------------------------------------ *)

let auto_index net name =
  let found = ref (-1) in
  Array.iteri
    (fun i a -> if String.equal a.auto_name name then found := i)
    net.automata;
  if !found < 0 then raise Not_found else !found

let loc_index net a name =
  let locs = net.automata.(a).locations in
  let found = ref (-1) in
  Array.iteri
    (fun i l -> if String.equal l.loc_name name then found := i)
    locs;
  if !found < 0 then raise Not_found else !found

let loc_name net a l = net.automata.(a).locations.(l).loc_name

let pp_constr ~clock_names ppf c =
  let name i = clock_names.(i) in
  if c.cj = 0 then
    Format.fprintf ppf "%s%s" (name c.ci) (Bound.to_string c.cb)
  else if c.ci = 0 then
    Format.fprintf ppf "-%s%s" (name c.cj) (Bound.to_string c.cb)
  else
    Format.fprintf ppf "%s-%s%s" (name c.ci) (name c.cj)
      (Bound.to_string c.cb)

let pp_sync ppf = function
  | Tau -> Format.pp_print_string ppf "tau"
  | Emit c -> Format.fprintf ppf "%s!" c.chan_name
  | Receive c -> Format.fprintf ppf "%s?" c.chan_name
