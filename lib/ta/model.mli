(** Networks of timed automata, UPPAAL-style.

    A network is a parallel composition of automata communicating by
    binary channel synchronisation ([a!]/[a?]) and broadcast channels,
    over shared discrete variables ({!Store}) and a common set of clocks.
    Locations may be urgent or committed; invariants and guards are
    conjunctions of clock(-difference) constraints plus a data guard.

    Models are constructed through the builder API below, which assigns
    indices, validates the model, and computes the per-clock maximal
    constants used for zone extrapolation. *)

type clock = int
(** Clock index, [1..n]. Index 0 is the DBM reference clock. *)

type chan_kind = Binary | Broadcast

type chan = { chan_id : int; chan_name : string; kind : chan_kind; urgent : bool }

(** Edge synchronisation: emit ([c!]), receive ([c?]), or internal. *)
type sync = Emit of chan | Receive of chan | Tau

(** Atomic clock constraint [x_ci - x_cj ≺ cb]. *)
type constr = { ci : int; cj : int; cb : Zones.Bound.t }

(** Edge effects, applied in list order. [Prim] is an escape hatch for
    data code that is awkward as expressions (e.g. the FIFO shift of
    Fig. 1(c)); the function mutates a private copy of the store. *)
type update =
  | Assign of Expr.lvalue * Expr.t
  | Reset of clock * int
  | Prim of string * (int array -> unit)

type loc_kind = Normal | Urgent | Committed

type location = { loc_name : string; kind : loc_kind; invariant : constr list }

type edge = {
  src : int;
  dst : int;
  data_guard : Expr.t option;
  clock_guard : constr list;
  sync : sync;
  updates : update list;
  ctrl : bool; (* controllable edge (timed games); plain TA edges are true *)
}

type automaton = {
  auto_name : string;
  locations : location array;
  out : edge list array; (* outgoing edges, indexed by source location *)
  initial : int;
}

type network = {
  automata : automaton array;
  n_clocks : int;
  clock_names : string array; (* length n_clocks + 1; entry 0 unused *)
  channels : chan array;
  layout : Store.layout;
  max_consts : int array; (* per clock, for extrapolation *)
}

(** {1 Constraint helpers} *)

val clock_le : clock -> int -> constr
val clock_lt : clock -> int -> constr
val clock_ge : clock -> int -> constr
val clock_gt : clock -> int -> constr

(** [diff_le x y c] is [x - y <= c]. *)
val diff_le : clock -> clock -> int -> constr

val diff_lt : clock -> clock -> int -> constr

(** {1 Builder} *)

type builder
type auto_builder

val builder : unit -> builder

(** [fresh_clock b name] allocates a clock. *)
val fresh_clock : builder -> string -> clock

(** [channel b name] declares a channel (default binary, non-urgent). *)
val channel : builder -> ?kind:chan_kind -> ?urgent:bool -> string -> chan

(** [store b] is the embedded variable-layout builder. *)
val store : builder -> Store.builder

(** [automaton b name] starts a component. The first declared location is
    initial unless {!set_initial} overrides it. *)
val automaton : builder -> string -> auto_builder

(** [location ab name] declares a location and returns its index. *)
val location :
  auto_builder -> ?kind:loc_kind -> ?invariant:constr list -> string -> int

val set_initial : auto_builder -> int -> unit

(** [edge ab ~src ~dst ()] adds an edge. [guard] is the data guard,
    [clock_guard] the conjunction of clock constraints. [ctrl] (default
    true) marks the edge controllable; timed games ({!Games}) treat
    [ctrl:false] edges as environment moves, plain analyses ignore it. *)
val edge :
  auto_builder ->
  src:int ->
  dst:int ->
  ?guard:Expr.t ->
  ?clock_guard:constr list ->
  ?sync:sync ->
  ?updates:update list ->
  ?ctrl:bool ->
  unit ->
  unit

(** [build b] freezes and validates the network.
    @raise Invalid_argument on malformed models (bad clock indices,
    broadcast receivers or urgent-channel edges with clock guards, no
    locations in a component). *)
val build : builder -> network

(** [union a b] — parallel composition of two independently built
    networks: components, clocks and variables are concatenated (b's
    clock indices and store offsets shift); channels merge by name, so
    the two halves synchronise on their shared channels.
    @raise Invalid_argument on duplicate component or variable names,
    channels declared with different kinds, or [Prim] updates in [b]
    (their closures capture old store offsets). *)
val union : network -> network -> network

(** [lu_bounds net] computes per-clock lower/upper guard constants
    [(lower, upper)] for Extra-LU extrapolation by scanning invariants,
    guards and resets: a constraint [x_i - x_j ≺ k] bounds [x_i] from
    above and [x_j] from below. Entry 0 of both arrays is unused. The
    scan is on demand so composed ({!union}) and observer-extended
    networks need no extra bookkeeping. *)
val lu_bounds : network -> int array * int array

(** {1 Lookup and printing} *)

(** [auto_index net name] finds a component by name.
    @raise Not_found if absent. *)
val auto_index : network -> string -> int

(** [loc_index net a name] finds a location of component [a] by name.
    @raise Not_found if absent. *)
val loc_index : network -> int -> string -> int

(** [loc_name net a l] is the printable name of location [l] of [a]. *)
val loc_name : network -> int -> int -> string

val pp_constr : clock_names:string array -> Format.formatter -> constr -> unit
val pp_sync : Format.formatter -> sync -> unit
