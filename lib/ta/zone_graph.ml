module Dbm = Zones.Dbm
module Bound = Zones.Bound

(* [zone] is a sealed canonical handle: every successor pipeline below
   works on plain mutable-internals [Dbm.t] and passes the result through
   [Dbm.seal ~extra] (which extrapolates, memoizes the hash and interns)
   before it can reach a state — stores only ever see canon. *)
type state = { locs : int array; store : int array; zone : Dbm.canon }
type move = { mv_label : string; participants : (int * Model.edge) list }

let discrete_key st = (st.locs, st.store)

(* Packed-codec layout of the discrete part: one location field per
   automaton (bit-packed; a component's locations rarely need more than
   a few bits) and one full word per store cell — variable domains are
   not declared in the model, so cells cannot be narrowed. *)
let codec (net : Model.network) =
  let locs =
    Array.to_list
      (Array.map
         (fun (a : Model.automaton) ->
           Engine.Codec.Loc
             { name = a.Model.auto_name; count = Array.length a.Model.locations })
         net.automata)
  in
  let cells =
    List.init (Store.size net.Model.layout) (fun i ->
        Engine.Codec.Word (Printf.sprintf "store[%d]" i))
  in
  Engine.Codec.spec (locs @ cells)

(* No [Codec.intern] here: the checker stores keep at most one copy of
   each packed key (table keys are unique, duplicates are dropped on
   arrival), so interning every candidate would pay a mutex + weak-table
   probe per successor for sharing that never materialises. *)
let pack spec st = Engine.Codec.encode_pair spec st.locs st.store

let constrain_all zone constrs =
  List.fold_left
    (fun z (c : Model.constr) -> Dbm.constrain z c.ci c.cj c.cb)
    zone constrs

let invariant_constrs (net : Model.network) locs =
  let acc = ref [] in
  Array.iteri
    (fun i a ->
      acc := (a.Model.locations.(locs.(i)).invariant : Model.constr list) @ !acc)
    net.automata;
  !acc

let data_enabled store (e : Model.edge) =
  match e.data_guard with
  | None -> true
  | Some g -> Expr.eval_bool store g

let loc_kind (net : Model.network) locs i =
  net.automata.(i).locations.(locs.(i)).Model.kind

let committed_present net locs =
  let found = ref false in
  Array.iteri
    (fun i _ -> if loc_kind net locs i = Model.Committed then found := true)
    net.automata;
  !found

let urgent_present net locs =
  let found = ref false in
  Array.iteri
    (fun i _ ->
      match loc_kind net locs i with
      | Model.Urgent | Model.Committed -> found := true
      | Model.Normal -> ())
    net.automata;
  !found

(* Enabled edges of component [i] from its current location with the given
   sync shape, data guards evaluated. *)
let enabled_edges net locs store i pred =
  let a = net.Model.automata.(i) in
  List.filter
    (fun e -> pred e.Model.sync && data_enabled store e)
    a.Model.out.(locs.(i))

let label_of net participants =
  let part (i, (e : Model.edge)) =
    let a = net.Model.automata.(i) in
    Format.asprintf "%s.%s->%s%s" a.Model.auto_name
      a.Model.locations.(e.src).loc_name a.Model.locations.(e.dst).loc_name
      (match e.sync with
       | Model.Tau -> ""
       | s -> Format.asprintf "[%a]" Model.pp_sync s)
  in
  String.concat " " (List.map part participants)

let moves net locs store =
  let committed = committed_present net locs in
  let allowed participants =
    (not committed)
    || List.exists (fun (i, _) -> loc_kind net locs i = Model.Committed)
         participants
  in
  let out = ref [] in
  let push participants =
    if allowed participants then
      out :=
        { mv_label = label_of net participants; participants } :: !out
  in
  let n = Array.length net.Model.automata in
  (* Internal moves. *)
  for i = 0 to n - 1 do
    List.iter
      (fun e -> push [ (i, e) ])
      (enabled_edges net locs store i (fun s -> s = Model.Tau))
  done;
  (* Channel moves. *)
  Array.iter
    (fun (ch : Model.chan) ->
      let emits s = match s with Model.Emit c -> c.Model.chan_id = ch.chan_id | _ -> false in
      let recvs s = match s with Model.Receive c -> c.Model.chan_id = ch.chan_id | _ -> false in
      match ch.kind with
      | Model.Binary ->
        for i = 0 to n - 1 do
          List.iter
            (fun e1 ->
              for j = 0 to n - 1 do
                if j <> i then
                  List.iter
                    (fun e2 -> push [ (i, e1); (j, e2) ])
                    (enabled_edges net locs store j recvs)
              done)
            (enabled_edges net locs store i emits)
        done
      | Model.Broadcast ->
        for i = 0 to n - 1 do
          List.iter
            (fun e1 ->
              (* Every other component with an enabled receiving edge must
                 participate; choices within a component branch. *)
              let rec expand j acc =
                if j = n then push (List.rev acc)
                else if j = i then expand (j + 1) acc
                else begin
                  match enabled_edges net locs store j recvs with
                  | [] -> expand (j + 1) acc
                  | choices ->
                    List.iter (fun e2 -> expand (j + 1) ((j, e2) :: acc)) choices
                end
              in
              expand 0 [ (i, e1) ])
            (enabled_edges net locs store i emits)
        done)
    net.Model.channels;
  List.rev !out

let urgent_sync_enabled net locs store =
  let n = Array.length net.Model.automata in
  let exists_chan (ch : Model.chan) =
    let emits s = match s with Model.Emit c -> c.Model.chan_id = ch.chan_id | _ -> false in
    let recvs s = match s with Model.Receive c -> c.Model.chan_id = ch.chan_id | _ -> false in
    let has i pred = enabled_edges net locs store i pred <> [] in
    let some_emitter = ref false and emitter_recv_pair = ref false in
    for i = 0 to n - 1 do
      if has i emits then begin
        some_emitter := true;
        for j = 0 to n - 1 do
          if j <> i && has j recvs then emitter_recv_pair := true
        done
      end
    done;
    match ch.kind with
    | Model.Broadcast -> !some_emitter
    | Model.Binary -> !emitter_recv_pair
  in
  Array.exists (fun ch -> ch.Model.urgent && exists_chan ch) net.Model.channels

let delay_allowed net locs store =
  (not (urgent_present net locs)) && not (urgent_sync_enabled net locs store)

(* Final value of each clock reset by the move, applied in participant and
   update-list order (later resets win). *)
let move_resets mv =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun (_, (e : Model.edge)) ->
      List.iter
        (function
          | Model.Reset (x, v) -> Hashtbl.replace tbl x v
          | Model.Assign _ | Model.Prim _ -> ())
        e.Model.updates)
    mv.participants;
  tbl

(* Weakest precondition of constraint [c] under the reset map: substitute
   reset clocks by their constants. Returns [None] when the constraint is
   unconditionally true, [Some (Error ())] pattern avoided: use variant. *)
type wp = Wp_true | Wp_false | Wp_constr of Model.constr

let wp_constr resets (c : Model.constr) =
  let value x = if x = 0 then Some 0 else Hashtbl.find_opt resets x in
  match value c.ci, value c.cj with
  | Some vi, Some vj ->
    if Bound.sat c.cb (float_of_int (vi - vj)) then Wp_true else Wp_false
  | Some vi, None ->
    (* vi - x_cj ≺ b  ⟺  -x_cj ≺ b - vi *)
    Wp_constr { ci = 0; cj = c.cj; cb = Bound.add c.cb (Bound.le (-vi)) }
  | None, Some vj ->
    (* x_ci - vj ≺ b  ⟺  x_ci ≺ b + vj *)
    Wp_constr { ci = c.ci; cj = 0; cb = Bound.add c.cb (Bound.le vj) }
  | None, None -> Wp_constr c

let target_locs mv locs =
  let locs' = Array.copy locs in
  List.iter (fun (i, (e : Model.edge)) -> locs'.(i) <- e.Model.dst) mv.participants;
  locs'

let move_enabling_zone net locs store mv =
  ignore store;
  let zone = ref (Dbm.universal ~clocks:net.Model.n_clocks) in
  (* Source invariants and guards. *)
  zone := constrain_all !zone (invariant_constrs net locs);
  List.iter
    (fun (_, (e : Model.edge)) -> zone := constrain_all !zone e.Model.clock_guard)
    mv.participants;
  (* Target invariants, pulled back through the resets. *)
  let resets = move_resets mv in
  let locs' = target_locs mv locs in
  let ok = ref true in
  List.iter
    (fun c ->
      match wp_constr resets c with
      | Wp_true -> ()
      | Wp_false -> ok := false
      | Wp_constr c' -> zone := Dbm.constrain !zone c'.ci c'.cj c'.cb)
    (invariant_constrs net locs');
  if !ok then !zone else Dbm.empty ~clocks:net.Model.n_clocks

let apply_updates ~store ~zone mv =
  let store' = Array.copy store in
  let zone = ref zone in
  List.iter
    (fun (_, (e : Model.edge)) ->
      List.iter
        (function
          | Model.Assign (lv, rhs) ->
            let v = Expr.eval store' rhs in
            store'.(Expr.lvalue_offset store' lv) <- v
          | Model.Reset (x, v) -> zone := Dbm.reset !zone x v
          | Model.Prim (_, f) -> f store')
        e.Model.updates)
    mv.participants;
  (store', !zone)

let apply_move net ~extra st mv =
  let zone = ref (st.zone :> Dbm.t) in
  List.iter
    (fun (_, (e : Model.edge)) -> zone := constrain_all !zone e.Model.clock_guard)
    mv.participants;
  if Dbm.is_empty !zone then None
  else begin
    let locs' = target_locs mv st.locs in
    let store', zone_after = apply_updates ~store:st.store ~zone:!zone mv in
    let inv' = invariant_constrs net locs' in
    let z = ref (constrain_all zone_after inv') in
    if Dbm.is_empty !z then None
    else begin
      if delay_allowed net locs' store' then begin
        z := Dbm.up !z;
        z := constrain_all !z inv'
      end;
      let z = Dbm.seal ~extra !z in
      if Dbm.is_empty (z :> Dbm.t) then None
      else Some { locs = locs'; store = store'; zone = z }
    end
  end

let successors net ~extra st =
  List.filter_map
    (fun mv ->
      match apply_move net ~extra st mv with
      | Some st' -> Some (mv.mv_label, st')
      | None -> None)
    (moves net st.locs st.store)

let initial net ~extra =
  let locs =
    Array.map (fun (a : Model.automaton) -> a.Model.initial) net.Model.automata
  in
  let store = Store.initial net.Model.layout in
  let inv = invariant_constrs net locs in
  let z = ref (constrain_all (Dbm.zero ~clocks:net.Model.n_clocks) inv) in
  if Dbm.is_empty !z then
    invalid_arg "Zone_graph.initial: initial state violates invariants";
  if delay_allowed net locs store then begin
    z := Dbm.up !z;
    z := constrain_all !z inv
  end;
  { locs; store; zone = Dbm.seal ~extra !z }

let pp_state net ppf st =
  let locs =
    Array.to_list
      (Array.mapi
         (fun i l ->
           Printf.sprintf "%s.%s" net.Model.automata.(i).auto_name
             (Model.loc_name net i l))
         st.locs)
  in
  Format.fprintf ppf "(%s | %a | %a)"
    (String.concat ", " locs)
    (Store.pp_store net.Model.layout)
    st.store
    (Dbm.pp ~names:net.Model.clock_names)
    (st.zone :> Dbm.t)
