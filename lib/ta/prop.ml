module Dbm = Zones.Dbm
module Fed = Zones.Fed
module Bound = Zones.Bound

type formula =
  | True
  | False
  | Loc of int * int
  | Data of Expr.t
  | Clock of Model.constr
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Imply of formula * formula

type query =
  | Invariant of formula
  | Possibly of formula
  | Eventually of formula
  | LeadsTo of formula * formula
  | NoDeadlock

let loc net auto loc_name =
  let a = Model.auto_index net auto in
  Loc (a, Model.loc_index net a loc_name)

let rec crisp = function
  | True | False | Loc _ | Data _ -> true
  | Clock _ -> false
  | Not f -> crisp f
  | And (f, g) | Or (f, g) | Imply (f, g) -> crisp f && crisp g

let rec eval_on net ~locs ~store = function
  | True -> true
  | False -> false
  | Loc (a, l) -> locs.(a) = l
  | Data e -> Expr.eval_bool store e
  | Clock _ -> invalid_arg "Prop.eval_crisp: clock atom in crisp formula"
  | Not f -> not (eval_on net ~locs ~store f)
  | And (f, g) -> eval_on net ~locs ~store f && eval_on net ~locs ~store g
  | Or (f, g) -> eval_on net ~locs ~store f || eval_on net ~locs ~store g
  | Imply (f, g) ->
    (not (eval_on net ~locs ~store f)) || eval_on net ~locs ~store g

let eval_crisp net (st : Zone_graph.state) f =
  eval_on net ~locs:st.locs ~store:st.store f

let rec sat_fed net (st : Zone_graph.state) f =
  let clocks = net.Model.n_clocks in
  let whole = Fed.of_dbm (st.zone :> Dbm.t) in
  let none = Fed.empty ~clocks in
  match f with
  | True -> whole
  | False -> none
  | Loc (a, l) -> if st.locs.(a) = l then whole else none
  | Data e -> if Expr.eval_bool st.store e then whole else none
  | Clock c -> Fed.of_dbm (Dbm.constrain (st.zone :> Dbm.t) c.ci c.cj c.cb)
  | Not g -> Fed.diff whole (sat_fed net st g)
  | And (g, h) -> Fed.inter (sat_fed net st g) (sat_fed net st h)
  | Or (g, h) -> Fed.union (sat_fed net st g) (sat_fed net st h)
  | Imply (g, h) -> sat_fed net st (Or (Not g, h))

let holds_somewhere net st f =
  if crisp f then eval_crisp net st f
  else not (Fed.is_empty (sat_fed net st f))

let holds_everywhere net st f =
  if crisp f then eval_crisp net st f
  else Fed.is_empty (sat_fed net st (Not f))

let merge_constants net f =
  let ks = Array.copy net.Model.max_consts in
  let record (c : Model.constr) =
    if not (Bound.is_inf c.cb) then begin
      let k = abs (Bound.constant c.cb) in
      if c.ci > 0 then ks.(c.ci) <- max ks.(c.ci) k;
      if c.cj > 0 then ks.(c.cj) <- max ks.(c.cj) k
    end
  in
  let rec walk = function
    | True | False | Loc _ | Data _ -> ()
    | Clock c -> record c
    | Not g -> walk g
    | And (g, h) | Or (g, h) | Imply (g, h) ->
      walk g;
      walk h
  in
  walk f;
  ks

(* LU counterpart of [merge_constants]: start from the model's guard
   analysis and merge the formula's clock atoms. An atom may sit under
   [Not] (which flips constraint direction), so atoms are recorded
   conservatively into both the lower and upper array for both clocks. *)
let merge_lu net f =
  let lower, upper = Model.lu_bounds net in
  let record (c : Model.constr) =
    if not (Bound.is_inf c.cb) then begin
      let k = abs (Bound.constant c.cb) in
      let bump x =
        if x > 0 then begin
          lower.(x) <- max lower.(x) k;
          upper.(x) <- max upper.(x) k
        end
      in
      bump c.ci;
      bump c.cj
    end
  in
  let rec walk = function
    | True | False | Loc _ | Data _ -> ()
    | Clock c -> record c
    | Not g -> walk g
    | And (g, h) | Or (g, h) | Imply (g, h) ->
      walk g;
      walk h
  in
  walk f;
  (lower, upper)

let rec pp net ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Loc (a, l) ->
    Format.fprintf ppf "%s.%s" net.Model.automata.(a).auto_name
      (Model.loc_name net a l)
  | Data e -> Expr.pp ppf e
  | Clock c -> Model.pp_constr ~clock_names:net.Model.clock_names ppf c
  | Not f -> Format.fprintf ppf "!(%a)" (pp net) f
  | And (f, g) -> Format.fprintf ppf "(%a && %a)" (pp net) f (pp net) g
  | Or (f, g) -> Format.fprintf ppf "(%a || %a)" (pp net) f (pp net) g
  | Imply (f, g) -> Format.fprintf ppf "(%a imply %a)" (pp net) f (pp net) g

let pp_query net ppf = function
  | Invariant f -> Format.fprintf ppf "A[] %a" (pp net) f
  | Possibly f -> Format.fprintf ppf "E<> %a" (pp net) f
  | Eventually f -> Format.fprintf ppf "A<> %a" (pp net) f
  | LeadsTo (f, g) -> Format.fprintf ppf "%a --> %a" (pp net) f (pp net) g
  | NoDeadlock -> Format.pp_print_string ppf "A[] not deadlock"
