(** The symbolic model checker (UPPAAL's verification engine).

    Supports the query patterns of the paper's Section II: safety
    ([A[] f]), reachability ([E<> f]), liveness ([f --> g], [A<> f]) and
    deadlock-freedom, over the zone graph with inclusion subsumption
    (except for liveness, which needs the exact graph). The deadlock test
    is exact, using federation subtraction: a valuation deadlocks when no
    delay can ever enable another move.

    The exploration itself runs on the shared {!Engine.Core} with a
    {!Engine.Store.subsume} (or {!Engine.Store.exact}) store; this module
    only contributes the zone-graph successor relation, the properties
    and the deadlock predicate. *)

(** Per-run instrumentation, re-exported from {!Engine.Stats.t} so that
    field accesses through [Ta.Checker] keep working. *)
type stats = Engine.Stats.t = {
  visited : int;  (** symbolic states popped from the waiting list *)
  stored : int;  (** symbolic states kept in the passed list *)
  subsumed : int;  (** candidates covered by (or equal to) stored states *)
  dropped : int;  (** stored states evicted by a larger candidate *)
  reopened : int;  (** best-cost re-openings (0 for zone stores) *)
  peak_frontier : int;  (** maximum waiting-list length *)
  store_words : int;  (** retained-heap estimate of the passed list *)
  truncated : bool;  (** [max_states] hit (reported as [Failure] here) *)
  time_s : float;  (** wall-clock exploration time *)
  dbm_phys_eq : int;  (** DBM comparisons settled by pointer identity *)
  dbm_full_cmp : int;  (** DBM equality checks needing a full scan *)
  dbm_lattice_cmp : int;  (** subset checks between distinct zones *)
  phases : (string * (int * float)) list;
      (** flight-recorder phase totals for this run (empty unless
          {!Obs.Flight.enable} ran) *)
}

type result = {
  holds : bool;
  trace : string list option;
      (** for violated safety / satisfied reachability: the labels of a
          witness run from the initial state *)
  stats : stats;
  par : Engine.Core.par_info option;
      (** sharded-run observables when the check ran with [jobs]
          ([None] for sequential checks and liveness queries) *)
}

(** The exploration was cut short by a {e resource} bound rather than
    [max_states]: the [mem_budget_words] retained-heap budget, or the
    [stop] hook (a deadline or cancellation). Carries the stats of the
    explored prefix so callers can report what was covered before
    degrading — the graceful alternative to an OOM kill or a hung
    request. [max_states] keeps its historical [Failure]. *)
exception
  Truncated of {
    reason : [ `Mem_budget | `Stop ];
    stats : stats;
  }

(** Which extrapolation {!Zones.Dbm.seal} applies when the zone graph
    seals a successor. [`Lu] (the default) is coarse lower/upper-bound
    extrapolation from {!Prop.merge_lu} — fewest distinct zones, sound
    for reachability and safety. [`K] is classic maximal-constant
    Extra-M (ablation row). [`None] disables extrapolation: the zone
    graph may then be infinite and the exploration can hit
    [max_states]. Deadlock and liveness queries ignore the option and
    always explore under Extra-M, which their zone-precise analyses
    require. *)
type extrapolation = [ `None | `K | `Lu ]

(** [check net q] verifies query [q]. [subsumption] (default true) turns
    inclusion checking on the passed list on/off (ablation switch); it is
    ignored for liveness queries, which always use the exact graph.
    Zones are sealed ({!Zones.Dbm.seal}) at the zone-graph boundary —
    extrapolated per [extrapolation], interned, hash memoized — so store
    lookups settle on pointer equality in the common case.
    [packed] (default true) keys the passed list on the interned
    {!Engine.Codec} encoding of the discrete part (memoized full-width
    hash, physically shared states); [~packed:false] falls back to the
    polymorphic-hash store as the ablation baseline — results are
    identical, only hashing and memory behaviour differ.
    [rich_trace] (default false) annotates every witness step with the
    symbolic state it reaches. [max_states] (default 1_000_000) aborts
    pathological explorations.
    [stop] is polled once per visited state — a deadline or cancellation
    hook for serving contexts. [mem_budget_words] bounds the passed
    list's retained heap (see {!Engine.Store.over_budget}).

    [jobs] switches safety / reachability / deadlock exploration to the
    sharded parallel core ({!Engine.Core.run_sharded}): the zone graph
    is partitioned over shards by packed-key hash and explored in
    barrier rounds over a domain pool of [jobs] workers. The result —
    verdict, witness trace, every stat — is byte-identical for every
    [jobs >= 1]; only wall-clock changes. [jobs:1] therefore runs the
    sharded path too (and is the determinism reference for [jobs:4]),
    while omitting [jobs] keeps the historical sequential BFS — the two
    modes can legitimately report different witnesses for the same
    verdict, since their exploration orders differ. With [jobs], the
    sharded stats pin [time_s] to 0.0 and [phases] to []. [pool] reuses
    a caller-owned domain pool (the daemon's); without it a transient
    pool is created when [jobs > 1]. Liveness queries (leads-to, A<>)
    run their exact-graph analysis sequentially and ignore both
    options.
    @raise Failure if the exploration exceeds [max_states].
    @raise Truncated if [stop] or [mem_budget_words] cut the run short.
    @raise Invalid_argument for [jobs] with [~packed:false] — the
    sharded stores key on codec encodings. *)
val check :
  ?subsumption:bool ->
  ?packed:bool ->
  ?max_states:int ->
  ?stop:(unit -> bool) ->
  ?mem_budget_words:int ->
  ?rich_trace:bool ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  ?extrapolation:extrapolation ->
  Model.network ->
  Prop.query ->
  result

(** [deadlocked net st] — does some valuation of [st] admit no future
    action, ever? Exposed for tests. *)
val deadlocked : Model.network -> Zone_graph.state -> bool

(** [reachable_states net] enumerates the full symbolic state space (with
    subsumption); used by tests and by cross-validation against the
    digital-clocks engine. *)
val reachable_states :
  ?subsumption:bool ->
  ?packed:bool ->
  ?max_states:int ->
  ?extrapolation:extrapolation ->
  Model.network ->
  Zone_graph.state list
