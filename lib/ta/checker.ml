module Dbm = Zones.Dbm
module Fed = Zones.Fed
module Bound = Zones.Bound

type stats = Engine.Stats.t = {
  visited : int;
  stored : int;
  subsumed : int;
  dropped : int;
  reopened : int;
  peak_frontier : int;
  store_words : int;
  truncated : bool;
  time_s : float;
  dbm_phys_eq : int;
  dbm_full_cmp : int;
  dbm_lattice_cmp : int;
  phases : (string * (int * float)) list;
}

type result = {
  holds : bool;
  trace : string list option;
  stats : stats;
  par : Engine.Core.par_info option;
}

exception
  Truncated of {
    reason : [ `Mem_budget | `Stop ];
    stats : stats;
  }

(* ------------------------------------------------------------------ *)
(* Exploration on the shared engine core                                *)
(* ------------------------------------------------------------------ *)

let state_key (st : Zone_graph.state) = Zone_graph.discrete_key st
let state_zone (st : Zone_graph.state) = st.Zone_graph.zone

(* Which extrapolation [Dbm.seal] applies at the sealing boundary of the
   zone graph. Reachability-style queries default to the coarser Extra-LU
   (fewer distinct zones, location reachability preserved); [`K] keeps
   classic maximal-constant Extra-M as an ablation; [`None] disables
   extrapolation (the zone graph may then be infinite). *)
type extrapolation = [ `None | `K | `Lu ]

let reach_extra (extrapolation : extrapolation) net f =
  match extrapolation with
  | `None -> Dbm.No_extrapolation
  | `K -> Dbm.Extra_m (Prop.merge_constants net f)
  | `Lu ->
    let lower, upper = Prop.merge_lu net f in
    Dbm.Extra_lu { lower; upper }

(* Resolve an optional jobs request against an optional caller-owned
   pool. A caller pool is used as-is (its size wins); otherwise a
   transient pool is spun up only when the run actually needs worker
   domains. *)
let with_jobs_pool jobs pool f =
  match pool with
  | Some p -> f (Some p)
  | None ->
    if jobs <= 1 then f None
    else Par.Pool.with_pool ~jobs (fun p -> f (Some p))

(* Generic exploration. [on_state] is called once per fresh symbolic
   state and may short-circuit by returning a payload. With [rich_trace],
   witness steps carry the symbolic state they reach. Zones arrive sealed
   from [Zone_graph], so no re-canonicalisation happens here.

   [jobs = Some j] switches to the sharded parallel core — including
   [j = 1], whose results are byte-identical to any higher [j] (the
   sharded exploration order differs from the sequential one, so
   [jobs:None] and [jobs:(Some 1)] may produce different witnesses for
   the same verdict; determinism is guaranteed within each mode). *)
let explore ?(subsumption = true) ?(packed = true)
    ?(max_states = 1_000_000) ?stop ?mem_budget_words ?(rich_trace = false)
    ?jobs ?pool net ~extra ~on_state =
  let init = Zone_graph.initial net ~extra in
  let successors st = Zone_graph.successors net ~extra st in
  let out =
    match jobs with
    | Some j ->
      if j < 1 then invalid_arg "Checker: jobs must be >= 1";
      if not packed then
        invalid_arg "Checker: parallel exploration requires packed stores";
      let spec = Zone_graph.codec net in
      let key st = Zone_graph.pack spec st in
      (* Per-shard tables start small: 64 shards at the default 4096
         buckets would retain half a megaword before storing anything,
         which the --mem-budget accounting would charge to the run. *)
      let store () =
        if subsumption then
          Engine.Store.subsume_keyed ~size_hint:256 ~zone:state_zone ()
        else Engine.Store.exact_keyed ~size_hint:256 ~zone:state_zone ()
      in
      with_jobs_pool j pool (fun pool ->
          Engine.Core.run_sharded ~max_states ?stop ?mem_budget_words ?pool
            ~store ~key ~successors ~on_state ~init ())
    | None ->
      (* [packed] keys the store on the interned codec encoding of the
         discrete part; the ablation baseline keys on the raw
         (locs, store) tuple under polymorphic hashing. *)
      let store =
        if packed then begin
          let spec = Zone_graph.codec net in
          let key st = Zone_graph.pack spec st in
          if subsumption then Engine.Store.subsume ~key ~zone:state_zone ()
          else Engine.Store.exact ~key ~zone:state_zone ()
        end
        else if subsumption then
          Engine.Store.Poly.subsume ~key:state_key ~zone:state_zone ()
        else Engine.Store.Poly.exact ~key:state_key ~zone:state_zone ()
      in
      Engine.Core.run ~max_states ?stop ?mem_budget_words ~store ~successors
        ~on_state ~init ()
  in
  (* [max_states] keeps its historical contract (a hard [Failure]); the
     resource-bound stops raise [Truncated] with the partial stats so a
     caller — the CLI under --mem-budget, the daemon on a deadline — can
     degrade into a structured report instead of dying. *)
  (match out.Engine.Core.stopped with
   | Some Engine.Core.Max_states ->
     failwith "Checker: state limit exceeded (model too large or diverging)"
   | Some Engine.Core.Mem_budget ->
     raise (Truncated { reason = `Mem_budget; stats = out.Engine.Core.stats })
   | Some Engine.Core.Stop_requested ->
     raise (Truncated { reason = `Stop; stats = out.Engine.Core.stats })
   | None -> ());
  let render (label, st) =
    if rich_trace then
      Format.asprintf "%s  @@ %a" label (Zone_graph.pp_state net) st
    else label
  in
  ( Option.map
      (fun (payload, steps) -> (payload, List.map render steps))
      out.Engine.Core.found,
    out.Engine.Core.stats,
    out.Engine.Core.par )

(* ------------------------------------------------------------------ *)
(* Deadlock                                                             *)
(* ------------------------------------------------------------------ *)

let deadlocked net (st : Zone_graph.state) =
  let delay = Zone_graph.delay_allowed net st.locs st.store in
  let escapes =
    List.filter_map
      (fun mv ->
        let g = Zone_graph.move_enabling_zone net st.locs st.store mv in
        if Dbm.is_empty g then None
        else begin
          let g = if delay then Dbm.down g else g in
          let e = Dbm.intersect (st.zone :> Dbm.t) g in
          if Dbm.is_empty e then None else Some e
        end)
      (Zone_graph.moves net st.locs st.store)
  in
  let fed =
    List.fold_left Fed.add (Fed.empty ~clocks:net.Model.n_clocks) escapes
  in
  not (Fed.dbm_subset (st.zone :> Dbm.t) fed)

(* ------------------------------------------------------------------ *)
(* Exact graph for liveness                                             *)
(* ------------------------------------------------------------------ *)

type graph = {
  states : Zone_graph.state array;
  succs : int list array;
  parents : (int * string) array; (* for diagnostic traces *)
}

let build_graph ?(max_states = 1_000_000) ?stop ?mem_budget_words
    ?(packed = true) net ~extra =
  let store =
    if packed then begin
      let spec = Zone_graph.codec net in
      Engine.Store.exact ~key:(Zone_graph.pack spec) ~zone:state_zone ()
    end
    else Engine.Store.Poly.exact ~key:state_key ~zone:state_zone ()
  in
  let successors st = Zone_graph.successors net ~extra st in
  let out =
    Engine.Core.run ~max_states ?stop ?mem_budget_words ~record_edges:true
      ~store ~successors
      ~on_state:(fun _ -> None)
      ~init:(Zone_graph.initial net ~extra)
      ()
  in
  (match out.Engine.Core.stopped with
   | Some Engine.Core.Max_states ->
     failwith "Checker: state limit exceeded during liveness exploration"
   | Some Engine.Core.Mem_budget ->
     raise (Truncated { reason = `Mem_budget; stats = out.Engine.Core.stats })
   | Some Engine.Core.Stop_requested ->
     raise (Truncated { reason = `Stop; stats = out.Engine.Core.stats })
   | None -> ());
  let parents =
    Array.map
      (fun (parent, label) ->
        (parent, match label with Some l -> l | None -> if parent < 0 then "init" else "?"))
      out.Engine.Core.parents
  in
  ( {
      states = out.Engine.Core.states;
      succs = Array.map (List.map snd) out.Engine.Core.edges;
      parents;
    },
    out.Engine.Core.stats )

(* A discrete node can let time diverge iff delay is allowed at all (no
   committed/urgent location, no enabled urgent synchronisation) and no
   location invariant puts a finite upper bound on a clock. *)
let can_idle_forever net (st : Zone_graph.state) =
  Zone_graph.delay_allowed net st.locs st.store
  && not
       (List.exists
          (fun (c : Model.constr) ->
            c.ci > 0 && c.cj = 0 && not (Bound.is_inf c.cb))
          (Zone_graph.invariant_constrs net st.locs))

(* All paths from every [start] node eventually reach a [q]-node: fails on
   a cycle within the not-q subgraph, a timelocked sink, or a node that can
   idle forever before q. Returns the id of a failing node, if any. *)
let all_paths_reach graph net ~is_q starts =
  let n = Array.length graph.states in
  let status = Array.make n `White in
  (* `White unvisited; `Gray on stack; `Good / `Bad settled. *)
  let rec verify id =
    match status.(id) with
    | `Good -> true
    | `Bad -> false
    | `Gray -> false (* cycle avoiding q *)
    | `White ->
      if is_q id then begin
        status.(id) <- `Good;
        true
      end
      else begin
        status.(id) <- `Gray;
        let st = graph.states.(id) in
        let ok =
          (not (can_idle_forever net st))
          && graph.succs.(id) <> []
          && List.for_all verify graph.succs.(id)
        in
        status.(id) <- (if ok then `Good else `Bad);
        ok
      end
  in
  List.find_opt (fun id -> not (verify id)) starts

let trace_in_graph graph id =
  let rec walk id acc =
    if id < 0 then acc
    else begin
      let parent, label = graph.parents.(id) in
      walk parent (if parent < 0 then acc else label :: acc)
    end
  in
  walk id []

(* ------------------------------------------------------------------ *)
(* Top-level check                                                      *)
(* ------------------------------------------------------------------ *)

let check_reach ?subsumption ?packed ?max_states ?stop ?mem_budget_words
    ?rich_trace ?jobs ?pool ?(extrapolation = `Lu) net f =
  let extra = reach_extra extrapolation net f in
  let on_state st = if Prop.holds_somewhere net st f then Some () else None in
  explore ?subsumption ?packed ?max_states ?stop ?mem_budget_words ?rich_trace
    ?jobs ?pool net ~extra ~on_state

let check_liveness ?packed ?max_states ?stop ?mem_budget_words
    ?(from_initial_only = false) net ~p ~q =
  if not (Prop.crisp p && Prop.crisp q) then
    invalid_arg "Checker: leads-to operands must not contain clock atoms";
  (* The exact graph needs zone-precise nodes; LU would merge states the
     divergence analysis must keep apart, so liveness always uses
     Extra-M on the network constants. *)
  let extra = Dbm.Extra_m (Array.copy net.Model.max_consts) in
  let graph, gstats =
    build_graph ?max_states ?stop ?mem_budget_words ?packed net ~extra
  in
  let is_q id = Prop.eval_crisp net graph.states.(id) q in
  let starts = ref [] in
  if from_initial_only then begin
    (* A<> q: only runs from the initial state (node 0) matter. *)
    if not (is_q 0) then starts := [ 0 ]
  end
  else
    Array.iteri
      (fun id st ->
        if Prop.eval_crisp net st p && not (is_q id) then
          starts := id :: !starts)
      graph.states;
  let failing = all_paths_reach graph net ~is_q (List.rev !starts) in
  let stats = gstats in
  match failing with
  | None -> { holds = true; trace = None; stats; par = None }
  | Some id ->
    { holds = false; trace = Some (trace_in_graph graph id); stats; par = None }

let check ?subsumption ?packed ?max_states ?stop ?mem_budget_words
    ?rich_trace ?jobs ?pool ?extrapolation net query =
  match query with
  | Prop.Possibly f ->
    let outcome, stats, par =
      check_reach ?subsumption ?packed ?max_states ?stop ?mem_budget_words
        ?rich_trace ?jobs ?pool ?extrapolation net f
    in
    (match outcome with
     | Some ((), trace) -> { holds = true; trace = Some trace; stats; par }
     | None -> { holds = false; trace = None; stats; par })
  | Prop.Invariant f ->
    let outcome, stats, par =
      check_reach ?subsumption ?packed ?max_states ?stop ?mem_budget_words
        ?rich_trace ?jobs ?pool ?extrapolation net (Prop.Not f)
    in
    (match outcome with
     | Some ((), trace) -> { holds = false; trace = Some trace; stats; par }
     | None -> { holds = true; trace = None; stats; par })
  | Prop.NoDeadlock ->
    (* The deadlock predicate inspects exact zones, for which LU is too
       coarse: always explore under Extra-M on the network constants. *)
    let extra = Dbm.Extra_m (Array.copy net.Model.max_consts) in
    let on_state st = if deadlocked net st then Some () else None in
    let outcome, stats, par =
      explore ?subsumption ?packed ?max_states ?stop ?mem_budget_words
        ?rich_trace ?jobs ?pool net ~extra ~on_state
    in
    (match outcome with
     | Some ((), trace) -> { holds = false; trace = Some trace; stats; par }
     | None -> { holds = true; trace = None; stats; par })
  | Prop.LeadsTo (p, q) ->
    (* Liveness analyses run on the exact sequential graph; [jobs] is
       deliberately ignored (documented in the interface). *)
    check_liveness ?packed ?max_states ?stop ?mem_budget_words net ~p ~q
  | Prop.Eventually f ->
    if not (Prop.crisp f) then
      invalid_arg "Checker: A<> operand must not contain clock atoms";
    check_liveness ?packed ?max_states ?stop ?mem_budget_words
      ~from_initial_only:true net ~p:Prop.True ~q:f

let reachable_states ?subsumption ?packed ?max_states
    ?(extrapolation = `Lu) net =
  let extra = reach_extra extrapolation net Prop.True in
  let acc = ref [] in
  let on_state st =
    acc := st :: !acc;
    None
  in
  let (_ : (unit * string list) option * stats * Engine.Core.par_info option)
      =
    explore ?subsumption ?packed ?max_states net ~extra ~on_state
  in
  List.rev !acc
