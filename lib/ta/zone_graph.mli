(** Symbolic (zone-based) semantics of timed-automata networks.

    A symbolic state pairs a discrete part — location vector and variable
    store — with a canonical DBM zone, closed under delay where allowed.
    This module enumerates the structurally enabled moves of a state
    (synchronisation resolution, committed-location filtering) and
    computes symbolic successors with extrapolation. *)

type state = {
  locs : int array;
  store : int array;
  zone : Zones.Dbm.canon;  (** sealed: extrapolated, interned, hash memoized *)
}

(** A move: the set of (component, edge) pairs that fire together — a
    singleton for internal edges, emitter then receiver(s) for channels. *)
type move = { mv_label : string; participants : (int * Model.edge) list }

(** [discrete_key st] is the hashable discrete part of a state (the
    pre-codec polymorphic key; kept for the packed-vs-poly ablation and
    diagnostics). *)
val discrete_key : state -> int array * int array

(** [codec net] compiles the network's discrete-state layout — one
    {!Engine.Codec.Loc} field per automaton, one word per store cell —
    into a packed codec spec. Build one per network, not per state. *)
val codec : Model.network -> Engine.Codec.spec

(** [pack spec st] encodes and interns the discrete part of [st]:
    physically shared across equal states, memoized full-width hash. *)
val pack : Engine.Codec.spec -> state -> Engine.Codec.packed

(** [initial net ~extra] is the initial symbolic state. [extra] is the
    extrapolation {!Dbm.seal} applies at the sealing boundary — usually
    {!Zones.Dbm.Extra_lu} from {!Prop.merge_lu} or {!Zones.Dbm.Extra_m}
    from the network's [max_consts] merged with the property's
    constants. *)
val initial : Model.network -> extra:Zones.Dbm.extrapolation -> state

(** [moves net locs store] enumerates data-enabled moves, respecting
    committed-location priority. Clock guards are {e not} checked here. *)
val moves : Model.network -> int array -> int array -> move list

(** [delay_allowed net locs store] is false in committed/urgent locations
    and when an urgent-channel synchronisation is data-enabled. *)
val delay_allowed : Model.network -> int array -> int array -> bool

(** [move_enabling_zone net locs store mv] is the exact zone of valuations
    from which [mv] can fire {e right now}: source invariants ∧ guards ∧
    weakest precondition of the target invariants under the move's clock
    resets. Empty if the move can never fire. *)
val move_enabling_zone :
  Model.network -> int array -> int array -> move -> Zones.Dbm.t

(** [apply_move net ~extra st mv] is the symbolic successor, or [None]
    when the clock guards or target invariants make the move impossible
    from [st.zone]. The result is delay-closed (unless urgent/committed)
    and sealed: extrapolated, interned and carrying a memoized hash. *)
val apply_move :
  Model.network -> extra:Zones.Dbm.extrapolation -> state -> move -> state option

(** [successors net ~extra st] is the list of labelled symbolic successors. *)
val successors :
  Model.network -> extra:Zones.Dbm.extrapolation -> state -> (string * state) list

(** [invariant_constrs net locs] is the conjunction of all location
    invariants of the vector. *)
val invariant_constrs : Model.network -> int array -> Model.constr list

(** [constrain_all z cs] conjoins a constraint list onto a zone. *)
val constrain_all : Zones.Dbm.t -> Model.constr list -> Zones.Dbm.t

(** [pp_state net ppf st] prints locations, store and zone. *)
val pp_state : Model.network -> Format.formatter -> state -> unit
