type t = { rev_path : int list }

let make seed = { rev_path = [ seed ] }
let child t i = { rev_path = i :: t.rev_path }

let state t =
  Random.State.make (Array.of_list (List.rev t.rev_path))
