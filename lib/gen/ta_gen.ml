module Model = Ta.Model
module Expr = Ta.Expr

type guard = { g_clock : int; g_ge : bool; g_const : int }

type edge = {
  e_src : int;
  e_dst : int;
  e_guards : guard list;
  e_var_guard : (int * int) option;
  e_resets : int list;
  e_assign : (int * int) option;
  e_sync : (int * bool) option;
}

type auto = {
  a_locs : int;
  a_urgent : bool array;
  a_inv : (int * int) option array;
  a_rates : int array;
  a_ecost : int array array;
  a_edges : edge list;
}

type spec = {
  s_clocks : int;
  s_chans : int;
  s_vars : int array;
  s_autos : auto array;
  s_target : int * int;
}

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let generate ?(max_autos = 4) ?(max_clocks = 3) ?(max_chans = 2)
    ?(max_vars = 2) ?(cmax = 5) rng =
  let r = Rng.state rng in
  let int n = Random.State.int r n in
  let n_autos = 1 + int max_autos in
  let s_clocks = 1 + int max_clocks in
  let s_chans = int (max_chans + 1) in
  let n_vars = int (max_vars + 1) in
  let s_vars = Array.init n_vars (fun _ -> 2 + int 3) in
  let gen_edge locs =
    let e_src = int locs and e_dst = int locs in
    let n_guards = int 3 in
    let e_guards =
      List.init n_guards (fun _ ->
          { g_clock = int s_clocks; g_ge = int 2 = 0; g_const = int (cmax + 1) })
    in
    let e_var_guard =
      if n_vars > 0 && int 4 = 0 then begin
        let v = int n_vars in
        Some (v, int s_vars.(v))
      end
      else None
    in
    let e_resets =
      List.filter (fun _ -> int 4 = 0) (List.init s_clocks Fun.id)
    in
    let e_assign =
      if n_vars > 0 && int 3 = 0 then begin
        let v = int n_vars in
        Some (v, 1 + int (s_vars.(v) - 1))
      end
      else None
    in
    let e_sync =
      if s_chans > 0 && int 3 = 0 then Some (int s_chans, int 2 = 0) else None
    in
    { e_src; e_dst; e_guards; e_var_guard; e_resets; e_assign; e_sync }
  in
  let gen_auto () =
    let locs = 2 + int 3 in
    let a_urgent = Array.init locs (fun _ -> int 8 = 0) in
    let a_inv =
      Array.init locs (fun _ ->
          if int 3 = 0 then Some (int s_clocks, 1 + int cmax) else None)
    in
    let a_rates = Array.init locs (fun _ -> int 3) in
    let a_ecost = Array.init locs (fun _ -> Array.init locs (fun _ -> int 3)) in
    let n_edges = locs + 1 + int 3 in
    let a_edges = List.init n_edges (fun _ -> gen_edge locs) in
    { a_locs = locs; a_urgent; a_inv; a_rates; a_ecost; a_edges }
  in
  let s_autos = Array.init n_autos (fun _ -> gen_auto ()) in
  let ta = int n_autos in
  let s_target = (ta, int s_autos.(ta).a_locs) in
  { s_clocks; s_chans; s_vars; s_autos; s_target }

(* ------------------------------------------------------------------ *)
(* Elaboration into a Ta.Model network                                 *)
(* ------------------------------------------------------------------ *)

let build spec =
  let b = Model.builder () in
  let clocks =
    Array.init spec.s_clocks (fun i ->
        Model.fresh_clock b (Printf.sprintf "x%d" (i + 1)))
  in
  let chans =
    Array.init spec.s_chans (fun i -> Model.channel b (Printf.sprintf "c%d" i))
  in
  let vars =
    Array.mapi
      (fun i _m -> Ta.Store.int_var (Model.store b) (Printf.sprintf "v%d" i))
      spec.s_vars
  in
  Array.iteri
    (fun ai a ->
      let ab = Model.automaton b (Printf.sprintf "A%d" ai) in
      for l = 0 to a.a_locs - 1 do
        let kind = if a.a_urgent.(l) then Model.Urgent else Model.Normal in
        let invariant =
          match a.a_inv.(l) with
          | Some (c, k) -> [ Model.clock_le clocks.(c) k ]
          | None -> []
        in
        ignore (Model.location ab ~kind ~invariant (Printf.sprintf "l%d" l))
      done;
      List.iter
        (fun e ->
          let clock_guard =
            List.map
              (fun g ->
                if g.g_ge then Model.clock_ge clocks.(g.g_clock) g.g_const
                else Model.clock_le clocks.(g.g_clock) g.g_const)
              e.e_guards
          in
          let guard =
            Option.map
              (fun (v, k) -> Expr.Eq (Expr.var vars.(v), Expr.Int k))
              e.e_var_guard
          in
          let sync =
            match e.e_sync with
            | None -> Model.Tau
            | Some (c, true) -> Model.Emit chans.(c)
            | Some (c, false) -> Model.Receive chans.(c)
          in
          let updates =
            List.map (fun c -> Model.Reset (clocks.(c), 0)) e.e_resets
            @ (match e.e_assign with
              | Some (v, d) ->
                [
                  Model.Assign
                    ( Expr.Cell vars.(v),
                      Expr.Mod
                        ( Expr.Add (Expr.var vars.(v), Expr.Int d),
                          Expr.Int spec.s_vars.(v) ) );
                ]
              | None -> [])
          in
          Model.edge ab ~src:e.e_src ~dst:e.e_dst ?guard ~clock_guard ~sync
            ~updates ())
        a.a_edges)
    spec.s_autos;
  Model.build b

let cost_model spec =
  {
    Priced.loc_rate = (fun a l -> spec.s_autos.(a).a_rates.(l));
    move_cost =
      (fun mv ->
        List.fold_left
          (fun acc (ai, (e : Model.edge)) ->
            acc + spec.s_autos.(ai).a_ecost.(e.Model.src).(e.Model.dst))
          0 mv.Ta.Zone_graph.participants);
  }

let target_formula spec =
  let a, l = spec.s_target in
  Ta.Prop.Loc (a, l)

let target_pred spec (st : Discrete.Digital.dstate) =
  let a, l = spec.s_target in
  st.Discrete.Digital.dlocs.(a) = l

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let map_edges f spec =
  {
    spec with
    s_autos =
      Array.map
        (fun a -> { a with a_edges = List.filter_map f a.a_edges })
        spec.s_autos;
  }

let remove_auto spec i =
  let autos =
    spec.s_autos |> Array.to_list
    |> List.filteri (fun j _ -> j <> i)
    |> Array.of_list
  in
  let ta, tl = spec.s_target in
  let ta = if ta > i then ta - 1 else ta in
  { spec with s_autos = autos; s_target = (ta, tl) }

let remove_clock spec c =
  let remap x = if x > c then x - 1 else x in
  let fix_edge e =
    Some
      {
        e with
        e_guards =
          List.filter_map
            (fun g ->
              if g.g_clock = c then None
              else Some { g with g_clock = remap g.g_clock })
            e.e_guards;
        e_resets =
          List.filter_map
            (fun x -> if x = c then None else Some (remap x))
            e.e_resets;
      }
  in
  let spec = map_edges fix_edge spec in
  {
    spec with
    s_clocks = spec.s_clocks - 1;
    s_autos =
      Array.map
        (fun a ->
          {
            a with
            a_inv =
              Array.map
                (function
                  | Some (x, _) when x = c -> None
                  | Some (x, k) -> Some (remap x, k)
                  | None -> None)
                a.a_inv;
          })
        spec.s_autos;
  }

let remove_var spec v =
  let remap x = if x > v then x - 1 else x in
  let vars =
    spec.s_vars |> Array.to_list
    |> List.filteri (fun j _ -> j <> v)
    |> Array.of_list
  in
  let fix_edge e =
    Some
      {
        e with
        e_var_guard =
          (match e.e_var_guard with
          | Some (x, _) when x = v -> None
          | Some (x, k) -> Some (remap x, k)
          | None -> None);
        e_assign =
          (match e.e_assign with
          | Some (x, _) when x = v -> None
          | Some (x, d) -> Some (remap x, d)
          | None -> None);
      }
  in
  { (map_edges fix_edge spec) with s_vars = vars }

let remove_chan spec c =
  let fix_edge e =
    Some
      {
        e with
        e_sync =
          (match e.e_sync with
          | Some (x, _) when x = c -> None
          | Some (x, emit) -> Some ((if x > c then x - 1 else x), emit)
          | None -> None);
      }
  in
  { (map_edges fix_edge spec) with s_chans = spec.s_chans - 1 }

let remove_edge spec ai idx =
  {
    spec with
    s_autos =
      Array.mapi
        (fun j a ->
          if j <> ai then a
          else { a with a_edges = List.filteri (fun k _ -> k <> idx) a.a_edges })
        spec.s_autos;
  }

let update_edge spec ai idx f =
  {
    spec with
    s_autos =
      Array.mapi
        (fun j a ->
          if j <> ai then a
          else
            {
              a with
              a_edges = List.mapi (fun k e -> if k = idx then f e else e) a.a_edges;
            })
        spec.s_autos;
  }

let update_auto spec ai f =
  {
    spec with
    s_autos = Array.mapi (fun j a -> if j = ai then f a else a) spec.s_autos;
  }

let shrinks spec =
  let cands = ref [] in
  let add s = cands := s :: !cands in
  let n_autos = Array.length spec.s_autos in
  (* Drop whole automata (never the target's). *)
  if n_autos > 1 then
    for i = 0 to n_autos - 1 do
      if i <> fst spec.s_target then add (remove_auto spec i)
    done;
  (* Drop clocks, variables, channels. *)
  if spec.s_clocks > 1 then
    for c = 0 to spec.s_clocks - 1 do
      add (remove_clock spec c)
    done;
  for v = 0 to Array.length spec.s_vars - 1 do
    add (remove_var spec v)
  done;
  for c = 0 to spec.s_chans - 1 do
    add (remove_chan spec c)
  done;
  (* Drop edges. *)
  Array.iteri
    (fun ai a ->
      List.iteri (fun idx _ -> add (remove_edge spec ai idx)) a.a_edges)
    spec.s_autos;
  (* Strip edge decorations and location attributes. *)
  Array.iteri
    (fun ai a ->
      List.iteri
        (fun idx e ->
          if e.e_sync <> None then
            add (update_edge spec ai idx (fun e -> { e with e_sync = None }));
          if e.e_guards <> [] then
            add (update_edge spec ai idx (fun e -> { e with e_guards = [] }));
          if e.e_resets <> [] then
            add (update_edge spec ai idx (fun e -> { e with e_resets = [] }));
          if e.e_var_guard <> None then
            add (update_edge spec ai idx (fun e -> { e with e_var_guard = None }));
          if e.e_assign <> None then
            add (update_edge spec ai idx (fun e -> { e with e_assign = None })))
        a.a_edges;
      Array.iteri
        (fun l inv ->
          if inv <> None then
            add
              (update_auto spec ai (fun a ->
                   let a_inv = Array.copy a.a_inv in
                   a_inv.(l) <- None;
                   { a with a_inv })))
        a.a_inv;
      Array.iteri
        (fun l u ->
          if u then
            add
              (update_auto spec ai (fun a ->
                   let a_urgent = Array.copy a.a_urgent in
                   a_urgent.(l) <- false;
                   { a with a_urgent })))
        a.a_urgent)
    spec.s_autos;
  (* Halve constants (guards and invariants). *)
  Array.iteri
    (fun ai a ->
      List.iteri
        (fun idx e ->
          List.iteri
            (fun gi g ->
              if g.g_const > 0 then
                add
                  (update_edge spec ai idx (fun e ->
                       {
                         e with
                         e_guards =
                           List.mapi
                             (fun k g ->
                               if k = gi then { g with g_const = g.g_const / 2 }
                               else g)
                             e.e_guards;
                       })))
            e.e_guards)
        a.a_edges;
      Array.iteri
        (fun l inv ->
          match inv with
          | Some (c, k) when k > 0 ->
            add
              (update_auto spec ai (fun a ->
                   let a_inv = Array.copy a.a_inv in
                   a_inv.(l) <- Some (c, k / 2);
                   { a with a_inv }))
          | _ -> ())
        a.a_inv)
    spec.s_autos;
  List.rev !cands

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let json_of_guard g =
  Obs.Json.Obj
    [
      ("clock", Obs.Json.Int g.g_clock);
      ("op", Obs.Json.Str (if g.g_ge then ">=" else "<="));
      ("const", Obs.Json.Int g.g_const);
    ]

let json_of_pair (a, b) = Obs.Json.Arr [ Obs.Json.Int a; Obs.Json.Int b ]

let json_of_edge e =
  Obs.Json.Obj
    [
      ("src", Obs.Json.Int e.e_src);
      ("dst", Obs.Json.Int e.e_dst);
      ("guards", Obs.Json.Arr (List.map json_of_guard e.e_guards));
      ( "var_guard",
        match e.e_var_guard with
        | Some p -> json_of_pair p
        | None -> Obs.Json.Null );
      ("resets", Obs.Json.Arr (List.map (fun c -> Obs.Json.Int c) e.e_resets));
      ( "assign",
        match e.e_assign with Some p -> json_of_pair p | None -> Obs.Json.Null
      );
      ( "sync",
        match e.e_sync with
        | Some (c, emit) ->
          Obs.Json.Obj
            [ ("chan", Obs.Json.Int c); ("emit", Obs.Json.Bool emit) ]
        | None -> Obs.Json.Null );
    ]

let to_json spec =
  let json_of_auto a =
    Obs.Json.Obj
      [
        ("locs", Obs.Json.Int a.a_locs);
        ( "urgent",
          Obs.Json.Arr
            (Array.to_list (Array.map (fun b -> Obs.Json.Bool b) a.a_urgent)) );
        ( "inv",
          Obs.Json.Arr
            (Array.to_list
               (Array.map
                  (function
                    | Some p -> json_of_pair p
                    | None -> Obs.Json.Null)
                  a.a_inv)) );
        ( "rates",
          Obs.Json.Arr
            (Array.to_list (Array.map (fun k -> Obs.Json.Int k) a.a_rates)) );
        ("edges", Obs.Json.Arr (List.map json_of_edge a.a_edges));
      ]
  in
  Obs.Json.Obj
    [
      ("kind", Obs.Json.Str "ta");
      ("clocks", Obs.Json.Int spec.s_clocks);
      ("chans", Obs.Json.Int spec.s_chans);
      ( "vars",
        Obs.Json.Arr
          (Array.to_list (Array.map (fun m -> Obs.Json.Int m) spec.s_vars)) );
      ( "autos",
        Obs.Json.Arr (Array.to_list (Array.map json_of_auto spec.s_autos)) );
      ("target", json_of_pair spec.s_target);
    ]

(* OCaml-literal printing: the repro a failing case embeds is the spec
   itself, so reproducing a divergence is `Oracle.check (Ta spec)`. *)

let buf_list buf pp xs =
  Buffer.add_string buf "[";
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_string buf "; ";
      pp x)
    xs;
  Buffer.add_string buf "]"

let buf_array buf pp xs =
  Buffer.add_string buf "[|";
  Array.iteri
    (fun i x ->
      if i > 0 then Buffer.add_string buf "; ";
      pp x)
    xs;
  Buffer.add_string buf "|]"

let buf_opt buf pp = function
  | None -> Buffer.add_string buf "None"
  | Some x ->
    Buffer.add_string buf "Some ";
    pp x

let buf_int_pair buf (a, b) = Buffer.add_string buf (Printf.sprintf "(%d, %d)" a b)

let to_ocaml spec =
  let buf = Buffer.create 1024 in
  let str s = Buffer.add_string buf s in
  let int i = str (string_of_int i) in
  let edge e =
    str "{ e_src = ";
    int e.e_src;
    str "; e_dst = ";
    int e.e_dst;
    str "; e_guards = ";
    buf_list buf
      (fun g ->
        str
          (Printf.sprintf "{ g_clock = %d; g_ge = %b; g_const = %d }" g.g_clock
             g.g_ge g.g_const))
      e.e_guards;
    str "; e_var_guard = ";
    buf_opt buf (buf_int_pair buf) e.e_var_guard;
    str "; e_resets = ";
    buf_list buf int e.e_resets;
    str "; e_assign = ";
    buf_opt buf (buf_int_pair buf) e.e_assign;
    str "; e_sync = ";
    buf_opt buf
      (fun (c, emit) -> str (Printf.sprintf "(%d, %b)" c emit))
      e.e_sync;
    str " }"
  in
  let auto a =
    str "{ a_locs = ";
    int a.a_locs;
    str "; a_urgent = ";
    buf_array buf (fun b -> str (string_of_bool b)) a.a_urgent;
    str "; a_inv = ";
    buf_array buf (buf_opt buf (buf_int_pair buf)) a.a_inv;
    str "; a_rates = ";
    buf_array buf int a.a_rates;
    str "; a_ecost = ";
    buf_array buf (fun row -> buf_array buf int row) a.a_ecost;
    str "; a_edges = ";
    buf_list buf edge a.a_edges;
    str " }"
  in
  str "{ Quantlib.Gen.Ta_gen.s_clocks = ";
  int spec.s_clocks;
  str "; s_chans = ";
  int spec.s_chans;
  str "; s_vars = ";
  buf_array buf int spec.s_vars;
  str "; s_autos = ";
  buf_array buf auto spec.s_autos;
  str "; s_target = ";
  buf_int_pair buf spec.s_target;
  str " }";
  Buffer.contents buf
