(** Random acyclic MDPs (and DTMCs) for differential testing.

    States are [0 .. m_states - 1]; every action's successors are
    strictly higher-indexed, so the MDP is acyclic and optimal
    reachability probabilities have an exact finite-horizon solution by
    backward induction — the independent oracle that value iteration is
    checked against. The target is always the last state.

    Distributions are stored as integer weights so specs stay
    first-order data; {!build} and {!exact} share one weight-to-float
    conversion, keeping both sides of the comparison bit-compatible. *)

type spec = {
  m_states : int;
  m_acts : (int * int) list list array;
      (** per state: its actions; each action a list of
          [(weight, successor)] with [successor > state]. An empty
          action list makes the state absorbing. *)
}

(** [generate rng] draws an acyclic MDP spec. *)
val generate : ?max_states:int -> Rng.t -> spec

(** [generate_dtmc rng] — at most one action per state: a DTMC, the
    substrate for the SMC-vs-exact oracle. *)
val generate_dtmc : ?max_states:int -> Rng.t -> spec

(** Weight list to a distribution summing to exactly 1.0 (the last
    probability is computed as the complement). *)
val probs : (int * int) list -> (float * int) list

val build : spec -> Mdp.t

val target : spec -> bool array

(** [exact spec ~maximize] — optimal reachability probabilities by
    backward induction (exact on acyclic models, up to float rounding
    shared with {!build}). *)
val exact : spec -> maximize:bool -> float array

(** [simulate spec state run] — one seeded run from state 0 of a DTMC
    spec (first action per state); [true] iff the target is reached. *)
val simulate : spec -> Random.State.t -> bool

val shrinks : spec -> spec list
val to_json : spec -> Obs.Json.t

(** Self-contained OCaml literal (a [Quantlib.Gen.Mdp_gen.spec]). *)
val to_ocaml : spec -> string
