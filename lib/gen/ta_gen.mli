(** Random closed timed-automata networks for differential testing.

    A {!spec} is a plain-data description of a network of timed
    automata: bounded clocks and constants, non-strict single-clock
    guards and invariants (so the model is {e closed and diagonal-free}
    — the class on which digital-clocks analysis is exact and the
    zone engine can be cross-checked against it), resets, binary
    channels, and bounded discrete variables (guards [v = k], updates
    [v := (v + d) mod m]). Cost annotations (location rates, edge
    costs) ride along for the priced oracle and are ignored otherwise.

    Specs, not built networks, are what the shrinker transforms: they
    are first-order data, so dropping an automaton or lowering a
    constant is a pure record update, and a minimized spec prints as a
    self-contained OCaml literal. *)

(** Single-clock non-strict constraint: [x >= c] ([g_ge]) or [x <= c].
    Clocks are 0-based here; {!build} maps them to DBM indices 1..n. *)
type guard = { g_clock : int; g_ge : bool; g_const : int }

type edge = {
  e_src : int;
  e_dst : int;
  e_guards : guard list;
  e_var_guard : (int * int) option;  (** variable index, required value *)
  e_resets : int list;  (** clocks reset to 0 *)
  e_assign : (int * int) option;  (** [v := (v + d) mod modulus.(v)] *)
  e_sync : (int * bool) option;  (** channel index, [true] = emit *)
}

type auto = {
  a_locs : int;
  a_urgent : bool array;  (** per location *)
  a_inv : (int * int) option array;  (** per location: [clock <= const] *)
  a_rates : int array;  (** per-location cost rate (priced oracle) *)
  a_ecost : int array array;  (** firing cost by (src, dst) (priced) *)
  a_edges : edge list;
}

type spec = {
  s_clocks : int;  (** >= 1 *)
  s_chans : int;  (** binary, non-urgent channels *)
  s_vars : int array;  (** per-variable modulus (values 0..m-1) *)
  s_autos : auto array;
  s_target : int * int;  (** reachability target: automaton, location *)
}

(** [generate rng] draws a well-formed spec. Size caps keep the digital
    state space small enough for exhaustive cross-checking. *)
val generate :
  ?max_autos:int ->
  ?max_clocks:int ->
  ?max_chans:int ->
  ?max_vars:int ->
  ?cmax:int ->
  Rng.t ->
  spec

(** [build spec] elaborates the spec through the {!Ta.Model} builder.
    The result is always closed ({!Discrete.Digital.is_closed}). *)
val build : spec -> Ta.Model.network

(** Cost model from the spec's rate/cost annotations; a move's cost is
    the sum of its participating edges' [(src, dst)] entries. *)
val cost_model : spec -> Priced.cost_model

(** Target as a crisp formula / digital-state predicate. *)
val target_formula : spec -> Ta.Prop.formula

val target_pred : spec -> Discrete.Digital.dstate -> bool

(** Single-step shrink candidates, most aggressive first: drop an
    automaton (never the target's), drop a clock / variable / channel,
    drop an edge, strip syncs / invariants / urgency, halve constants,
    strip guards / resets / assignments. Every candidate builds. *)
val shrinks : spec -> spec list

val to_json : spec -> Obs.Json.t

(** Self-contained OCaml literal of the spec (a [Quantlib.Gen.Ta_gen.spec]). *)
val to_ocaml : spec -> string
