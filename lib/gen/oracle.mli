(** Differential oracle pairs: for each model family, an optimized
    backend checked against an independent reference computation on the
    same generated case.

    - [Ta_reach]: zone-based reachability ({!Ta.Checker.check}) vs
      exhaustive digital-clocks exploration — exact on the closed,
      diagonal-free models {!Ta_gen} emits.
    - [Priced]: {!Priced.min_cost_reach} (Dijkstra on a best-cost store)
      vs Bellman–Ford relaxation over the explicit digital graph.
    - [Mdp_vi]: value iteration vs exact backward induction (the
      generated MDPs are acyclic).
    - [Smc_ci]: a seeded Monte-Carlo estimate of a DTMC's reachability
      probability vs the exact value — the exact value must fall inside
      the Wilson 99% interval widened by a small slack.
    - [Bip_deadlock]: {!Bip.Dfinder.prove} must never claim [Proved]
      when exhaustive exploration ({!Bip.Engine.reachable}) finds a
      reachable deadlock.

    State-space truncation in either backend yields [Skip], never a
    spurious divergence. *)

type family = Ta_reach | Priced | Mdp_vi | Smc_ci | Bip_deadlock

val all_families : family list
val family_name : family -> string

(** Inverse of {!family_name}. *)
val family_of_name : string -> family option

type case =
  | Ta of Ta_gen.spec
  | Pr of Ta_gen.spec
  | Md of Mdp_gen.spec
  | Sm of Mdp_gen.spec
  | Bi of Bip_gen.spec

type verdict =
  | Agree
  | Skip of string  (** a backend hit its state cap — case inconclusive *)
  | Diverge of string  (** the backends disagree; message names both sides *)

(** [generate fam rng] draws a case sized for its family's oracle (the
    priced pair gets the smallest profile: two explorations per case). *)
val generate : family -> Rng.t -> case

val family_of_case : case -> family

(** [check case] runs both backends and compares. Truncation ([Failure])
    maps to [Skip]; any other backend exception is a divergence.
    [extrapolation] (default [`Lu]) selects the zone engine's seal-time
    abstraction for TA cases, so the digital oracle cross-checks the
    chosen extrapolation; other families ignore it.

    [jobs] (the harness pool size) routes TA cases through the sharded
    parallel engine on both sides — clamped to a poolless [jobs = 1]
    run, because oracle cases may already execute on a pool worker and
    pools must not nest. Verdicts are therefore invariant across
    harness pool sizes whether or not [jobs] is passed. *)
val check :
  ?extrapolation:Ta.Checker.extrapolation -> ?jobs:int -> case -> verdict

(** Single-step shrink candidates (delegates to the family generator). *)
val shrinks : case -> case list

val to_json : case -> Obs.Json.t

(** Self-contained OCaml repro: an expression of type
    [Quantlib.Gen.Oracle.case] suitable for [Oracle.check]. *)
val to_ocaml : case -> string

(** [packed_repr case] is the {!Engine.Codec.to_hex} fingerprint of the
    case's initial state under the codec its backends key their stores
    on — a compact, representation-stable anchor for a repro.
    ["unavailable"] when the model cannot be built. *)
val packed_repr : case -> string
