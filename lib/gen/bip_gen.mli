(** Random BIP systems (rendezvous glue, no data) for differential
    testing of the compositional deadlock proof.

    Specs are guard-free: every transition is unconditionally enabled,
    so {!Bip.Engine.reachable} is an exact oracle and the only sound
    claim {!Bip.Dfinder.prove} can make — [Proved] implies no reachable
    deadlock — is directly checkable. *)

type comp = {
  b_locs : int;
  b_ports : int;
  b_trans : (int * int * int) list;  (** (src, dst, port) *)
}

type spec = {
  b_comps : comp array;
  b_conns : (int * int) list list;
      (** each connector: a rendezvous over [(component, port)] members,
          one port per distinct component *)
}

val generate : ?max_comps:int -> Rng.t -> spec
val build : spec -> Bip.System.t
val shrinks : spec -> spec list
val to_json : spec -> Obs.Json.t

(** Self-contained OCaml literal (a [Quantlib.Gen.Bip_gen.spec]). *)
val to_ocaml : spec -> string
