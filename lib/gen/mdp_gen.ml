type spec = { m_states : int; m_acts : (int * int) list list array }

let gen ~max_acts ?(max_states = 8) rng =
  let r = Rng.state rng in
  let int n = Random.State.int r n in
  let n = 3 + int (max 1 (max_states - 2)) in
  let gen_action s =
    let k = 1 + int (min 3 (n - 1 - s)) in
    (* Draw k distinct successors in s+1 .. n-1. *)
    let pool = Array.init (n - 1 - s) (fun i -> s + 1 + i) in
    for i = Array.length pool - 1 downto 1 do
      let j = int (i + 1) in
      let t = pool.(i) in
      pool.(i) <- pool.(j);
      pool.(j) <- t
    done;
    List.init k (fun i -> (1 + int 4, pool.(i)))
  in
  let m_acts =
    Array.init n (fun s ->
        if s = n - 1 then []
        else
          let na = if max_acts = 1 then 1 else 1 + int max_acts in
          List.init na (fun _ -> gen_action s))
  in
  { m_states = n; m_acts }

let generate ?max_states rng = gen ~max_acts:2 ?max_states rng
let generate_dtmc ?max_states rng = gen ~max_acts:1 ?max_states rng

let probs dist =
  let total = float_of_int (List.fold_left (fun a (w, _) -> a + w) 0 dist) in
  let k = List.length dist in
  let acc = ref 0.0 in
  List.mapi
    (fun i (w, s) ->
      let p =
        if i = k - 1 then 1.0 -. !acc else float_of_int w /. total
      in
      acc := !acc +. p;
      (p, s))
    dist

let build spec =
  Mdp.make
    (Array.map
       (List.map (fun dist -> { Mdp.a_label = ""; probs = probs dist; reward = 0.0 }))
       spec.m_acts)

let target spec = Array.init spec.m_states (fun s -> s = spec.m_states - 1)

let exact spec ~maximize =
  let n = spec.m_states in
  let v = Array.make n 0.0 in
  v.(n - 1) <- 1.0;
  for s = n - 2 downto 0 do
    match spec.m_acts.(s) with
    | [] -> ()
    | acts ->
      let vals =
        List.map
          (fun dist ->
            List.fold_left (fun a (p, t) -> a +. (p *. v.(t))) 0.0 (probs dist))
          acts
      in
      v.(s) <-
        List.fold_left
          (if maximize then Float.max else Float.min)
          (List.hd vals) (List.tl vals)
  done;
  v

let simulate spec r =
  let s = ref 0 in
  let continue = ref true in
  while !continue do
    match spec.m_acts.(!s) with
    | [] -> continue := false
    | dist :: _ ->
      let u = Random.State.float r 1.0 in
      let rec pick acc = function
        | [ (_, t) ] -> t
        | (p, t) :: rest -> if u < acc +. p then t else pick (acc +. p) rest
        | [] -> assert false
      in
      s := pick 0.0 (probs dist)
  done;
  !s = spec.m_states - 1

let shrinks spec =
  let cands = ref [] in
  let add s = cands := s :: !cands in
  Array.iteri
    (fun s acts ->
      let n_acts = List.length acts in
      (* Drop an action (state may become absorbing). *)
      List.iteri
        (fun i _ ->
          if n_acts > 1 || s > 0 then
            add
              {
                spec with
                m_acts =
                  Array.mapi
                    (fun j a ->
                      if j = s then List.filteri (fun k _ -> k <> i) a else a)
                    spec.m_acts;
              })
        acts;
      (* Drop a successor from a multi-successor distribution. *)
      List.iteri
        (fun i dist ->
          if List.length dist > 1 then
            List.iteri
              (fun k _ ->
                add
                  {
                    spec with
                    m_acts =
                      Array.mapi
                        (fun j a ->
                          if j <> s then a
                          else
                            List.mapi
                              (fun ai d ->
                                if ai = i then List.filteri (fun x _ -> x <> k) d
                                else d)
                              a)
                        spec.m_acts;
                  })
              dist)
        acts)
    spec.m_acts;
  List.rev !cands

let to_json spec =
  Obs.Json.Obj
    [
      ("kind", Obs.Json.Str "mdp");
      ("states", Obs.Json.Int spec.m_states);
      ( "acts",
        Obs.Json.Arr
          (Array.to_list
             (Array.map
                (fun acts ->
                  Obs.Json.Arr
                    (List.map
                       (fun dist ->
                         Obs.Json.Arr
                           (List.map
                              (fun (w, s) ->
                                Obs.Json.Arr [ Obs.Json.Int w; Obs.Json.Int s ])
                              dist))
                       acts))
                spec.m_acts)) );
    ]

let to_ocaml spec =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{ Quantlib.Gen.Mdp_gen.m_states = %d; m_acts = [|"
       spec.m_states);
  Array.iteri
    (fun i acts ->
      if i > 0 then Buffer.add_string buf "; ";
      Buffer.add_string buf "[";
      List.iteri
        (fun j dist ->
          if j > 0 then Buffer.add_string buf "; ";
          Buffer.add_string buf "[";
          List.iteri
            (fun k (w, s) ->
              if k > 0 then Buffer.add_string buf "; ";
              Buffer.add_string buf (Printf.sprintf "(%d, %d)" w s))
            dist;
          Buffer.add_string buf "]")
        acts;
      Buffer.add_string buf "]")
    spec.m_acts;
  Buffer.add_string buf "|] }";
  Buffer.contents buf
