type comp = { b_locs : int; b_ports : int; b_trans : (int * int * int) list }
type spec = { b_comps : comp array; b_conns : (int * int) list list }

let generate ?(max_comps = 3) rng =
  let r = Rng.state rng in
  let int n = Random.State.int r n in
  let n_comps = 1 + int max_comps in
  let gen_comp () =
    let locs = 2 + int 2 in
    let ports = 1 + int 2 in
    let n_trans = locs + int 3 in
    let b_trans =
      List.init n_trans (fun _ -> (int locs, int locs, int ports))
    in
    { b_locs = locs; b_ports = ports; b_trans }
  in
  let b_comps = Array.init n_comps (fun _ -> gen_comp ()) in
  let gen_conn () =
    (* Non-empty subset of components, one random port each. *)
    let members =
      List.filter_map
        (fun ci -> if int 2 = 0 then Some (ci, int b_comps.(ci).b_ports) else None)
        (List.init n_comps Fun.id)
    in
    match members with
    | [] ->
      let ci = int n_comps in
      [ (ci, int b_comps.(ci).b_ports) ]
    | ms -> ms
  in
  let n_conns = 1 + int 4 in
  let b_conns = List.init n_conns (fun _ -> gen_conn ()) in
  { b_comps; b_conns }

let build spec =
  let comps =
    Array.mapi
      (fun ci c ->
        let b = Bip.Component.create (Printf.sprintf "C%d" ci) in
        for l = 0 to c.b_locs - 1 do
          ignore (Bip.Component.add_location b (Printf.sprintf "l%d" l))
        done;
        let ports =
          Array.init c.b_ports (fun p ->
              Bip.Component.add_port b (Printf.sprintf "p%d" p))
        in
        List.iter
          (fun (src, dst, p) ->
            Bip.Component.add_transition b ~src ~dst ~port:ports.(p) ())
          c.b_trans;
        Bip.Component.build b)
      spec.b_comps
  in
  let connectors =
    List.mapi
      (fun i members ->
        Bip.System.Rendezvous
          {
            c_name = Printf.sprintf "conn%d" i;
            members =
              List.map (fun (ci, p) -> (ci, comps.(ci).Bip.Component.ports.(p))) members;
            guard = None;
            action = None;
          })
      spec.b_conns
  in
  Bip.System.make ~components:comps ~connectors ()

let shrinks spec =
  let cands = ref [] in
  let add s = cands := s :: !cands in
  let n = Array.length spec.b_comps in
  (* Drop a component (and every connector member referring to it). *)
  if n > 1 then
    for ci = 0 to n - 1 do
      let comps =
        spec.b_comps |> Array.to_list
        |> List.filteri (fun j _ -> j <> ci)
        |> Array.of_list
      in
      let conns =
        List.filter_map
          (fun members ->
            match
              List.filter_map
                (fun (c, p) ->
                  if c = ci then None
                  else Some ((if c > ci then c - 1 else c), p))
                members
            with
            | [] -> None
            | ms -> Some ms)
          spec.b_conns
      in
      if conns <> [] then add { b_comps = comps; b_conns = conns }
    done;
  (* Drop a connector. *)
  if List.length spec.b_conns > 1 then
    List.iteri
      (fun i _ ->
        add
          { spec with b_conns = List.filteri (fun j _ -> j <> i) spec.b_conns })
      spec.b_conns;
  (* Drop a transition. *)
  Array.iteri
    (fun ci c ->
      List.iteri
        (fun ti _ ->
          add
            {
              spec with
              b_comps =
                Array.mapi
                  (fun j c' ->
                    if j <> ci then c'
                    else
                      {
                        c' with
                        b_trans = List.filteri (fun k _ -> k <> ti) c'.b_trans;
                      })
                  spec.b_comps;
            })
        c.b_trans)
    spec.b_comps;
  List.rev !cands

let to_json spec =
  Obs.Json.Obj
    [
      ("kind", Obs.Json.Str "bip");
      ( "comps",
        Obs.Json.Arr
          (Array.to_list
             (Array.map
                (fun c ->
                  Obs.Json.Obj
                    [
                      ("locs", Obs.Json.Int c.b_locs);
                      ("ports", Obs.Json.Int c.b_ports);
                      ( "trans",
                        Obs.Json.Arr
                          (List.map
                             (fun (s, d, p) ->
                               Obs.Json.Arr
                                 [
                                   Obs.Json.Int s; Obs.Json.Int d; Obs.Json.Int p;
                                 ])
                             c.b_trans) );
                    ])
                spec.b_comps)) );
      ( "conns",
        Obs.Json.Arr
          (List.map
             (fun members ->
               Obs.Json.Arr
                 (List.map
                    (fun (c, p) ->
                      Obs.Json.Arr [ Obs.Json.Int c; Obs.Json.Int p ])
                    members))
             spec.b_conns) );
    ]

let to_ocaml spec =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{ Quantlib.Gen.Bip_gen.b_comps = [|";
  Array.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string buf "; ";
      Buffer.add_string buf
        (Printf.sprintf "{ b_locs = %d; b_ports = %d; b_trans = [" c.b_locs
           c.b_ports);
      List.iteri
        (fun j (s, d, p) ->
          if j > 0 then Buffer.add_string buf "; ";
          Buffer.add_string buf (Printf.sprintf "(%d, %d, %d)" s d p))
        c.b_trans;
      Buffer.add_string buf "] }")
    spec.b_comps;
  Buffer.add_string buf "|]; b_conns = [";
  List.iteri
    (fun i members ->
      if i > 0 then Buffer.add_string buf "; ";
      Buffer.add_string buf "[";
      List.iteri
        (fun j (c, p) ->
          if j > 0 then Buffer.add_string buf "; ";
          Buffer.add_string buf (Printf.sprintf "(%d, %d)" c p))
        members;
      Buffer.add_string buf "]")
    spec.b_conns;
  Buffer.add_string buf "] }";
  Buffer.contents buf
