(* Codec round-trip properties over generator-produced models.

   For every reachable state of a random model we check, on its packed
   encoding [p]:

   - decode/encode round-trip: [encode (decode p) = p] — the bit layout
     loses nothing, in either direction;
   - hash stability: re-encoding the decoded field vector into a fresh
     words array yields the same memoized hash (the hash is a function
     of the value, not the allocation);
   - intern idempotence: packing the same state twice returns the same
     physical representative. *)

module Codec = Engine.Codec

type outcome = { checked : int; failures : string list }

let ok = { checked = 0; failures = [] }

let merge a b =
  { checked = a.checked + b.checked; failures = a.failures @ b.failures }

(* The shared per-state check: [p] must already be interned by [pack]. *)
let check_packed spec ~tag ~pack_again p =
  let fail fmt = Printf.ksprintf (fun m -> Some (tag ^ ": " ^ m)) fmt in
  let vs = Codec.decode spec p in
  let p2 = Codec.encode spec (fun i -> vs.(i)) in
  if not (Codec.equal p p2) then
    fail "encode (decode p) <> p  (p = %s, re-encoded %s)" (Codec.to_hex p)
      (Codec.to_hex p2)
  else if Codec.hash p <> Codec.hash p2 then
    fail "hash not a function of the value: %x vs %x" (Codec.hash p)
      (Codec.hash p2)
  else if Codec.decode spec p2 <> vs then fail "decode (encode vs) <> vs"
  else
    match pack_again with
    | None -> None
    | Some again ->
      let q = again () in
      if q != p then fail "intern not idempotent (%s)" (Codec.to_hex p)
      else None

let fold_states spec ~tag states pack =
  List.fold_left
    (fun acc st ->
      let p = pack st in
      let failure =
        check_packed spec ~tag ~pack_again:(Some (fun () -> pack st)) p
      in
      {
        checked = acc.checked + 1;
        failures =
          (match failure with
           | None -> acc.failures
           | Some m -> m :: acc.failures);
      })
    ok states

let max_states = 5_000

let check_ta rng =
  let spec = Ta_gen.generate rng in
  let net = Ta_gen.build spec in
  let g = Discrete.Digital.explore ~max_states net in
  let cspec, _ = Discrete.Digital.codec net in
  fold_states cspec ~tag:"ta"
    (Array.to_list g.Discrete.Digital.states)
    g.Discrete.Digital.pack

let check_mdp rng =
  let spec = Mdp_gen.generate rng in
  let m = Mdp_gen.build spec in
  let n = Mdp.n_states m in
  let cspec = Codec.spec [ Codec.Loc { name = "state"; count = n } ] in
  fold_states cspec ~tag:"mdp"
    (List.init n (fun i -> i))
    (fun i -> Codec.intern cspec (Codec.encode cspec (fun _ -> i)))

let check_bip rng =
  let spec = Bip_gen.generate rng in
  let sys = Bip_gen.build spec in
  let cspec, pack = Bip.Engine.codec sys in
  let r = Bip.Engine.reachable ~max_states sys in
  fold_states cspec ~tag:"bip" r.Bip.Engine.states pack

let check_all ~seed ~cases =
  let rng = Rng.make seed in
  let one _ =
    merge (check_ta rng) (merge (check_mdp rng) (check_bip rng))
  in
  List.fold_left
    (fun acc i -> merge acc (one i))
    ok
    (List.init cases (fun i -> i))
