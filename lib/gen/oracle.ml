type family = Ta_reach | Priced | Mdp_vi | Smc_ci | Bip_deadlock

let all_families = [ Ta_reach; Priced; Mdp_vi; Smc_ci; Bip_deadlock ]

let family_name = function
  | Ta_reach -> "ta-reach"
  | Priced -> "priced"
  | Mdp_vi -> "mdp-vi"
  | Smc_ci -> "smc-ci"
  | Bip_deadlock -> "bip-deadlock"

let family_of_name s =
  List.find_opt (fun f -> family_name f = s) all_families

type case =
  | Ta of Ta_gen.spec
  | Pr of Ta_gen.spec
  | Md of Mdp_gen.spec
  | Sm of Mdp_gen.spec
  | Bi of Bip_gen.spec

type verdict = Agree | Skip of string | Diverge of string

let generate fam rng =
  match fam with
  | Ta_reach -> Ta (Ta_gen.generate ~max_autos:3 ~max_clocks:2 ~cmax:4 rng)
  | Priced ->
    Pr
      (Ta_gen.generate ~max_autos:2 ~max_clocks:2 ~max_vars:1 ~max_chans:1
         ~cmax:3 rng)
  | Mdp_vi -> Md (Mdp_gen.generate rng)
  | Smc_ci -> Sm (Mdp_gen.generate_dtmc rng)
  | Bip_deadlock -> Bi (Bip_gen.generate rng)

let family_of_case = function
  | Ta _ -> Ta_reach
  | Pr _ -> Priced
  | Md _ -> Mdp_vi
  | Sm _ -> Smc_ci
  | Bi _ -> Bip_deadlock

(* ------------------------------------------------------------------ *)
(* Per-family checks                                                   *)
(* ------------------------------------------------------------------ *)

(* Zone engine caps. The seal table behind {!Zones.Dbm.seal} is
   mutex-guarded, so interning from [Par]-pooled harness cases is safe. *)
let ta_max_states = 50_000
let priced_max_states = 20_000
let bip_max_states = 20_000

let check_ta ~extrapolation ?jobs spec =
  (* Harness cases may already be running on pool worker domains, and
     pools must not nest — so any harness [jobs] request is clamped to
     a poolless sharded run ([jobs = 1]): both sides still exercise the
     sharded mailbox/round machinery, and the verdict stays invariant
     across harness pool sizes (a hard fuzz-report property). *)
  let jobs = Option.map (fun _ -> 1) jobs in
  let net = Ta_gen.build spec in
  let zres =
    Ta.Checker.check ~extrapolation ~max_states:ta_max_states ?jobs net
      (Ta.Prop.Possibly (Ta_gen.target_formula spec))
  in
  let g = Discrete.Digital.explore ~max_states:ta_max_states ?jobs net in
  let digital = Array.exists (Ta_gen.target_pred spec) g.Discrete.Digital.states in
  if zres.Ta.Checker.holds = digital then Agree
  else
    Diverge
      (Printf.sprintf "ta-reach: zone engine says %b, digital exploration %b"
         zres.Ta.Checker.holds digital)

(* Independent min-cost: Bellman–Ford relaxation to a fixpoint over the
   explicit digital graph (all costs are non-negative, so it converges;
   the point is that it shares no code with the Dijkstra best-cost
   store it is checking). *)
let digital_min_cost spec net target =
  let cm = Ta_gen.cost_model spec in
  let g = Discrete.Digital.explore ~max_states:priced_max_states net in
  let states = g.Discrete.Digital.states in
  let n = Array.length states in
  let rate st =
    let acc = ref 0 in
    Array.iteri
      (fun a l -> acc := !acc + spec.Ta_gen.s_autos.(a).Ta_gen.a_rates.(l))
      st.Discrete.Digital.dlocs;
    !acc
  in
  let dist = Array.make n max_int in
  let init = Discrete.Digital.id_of g (Discrete.Digital.initial net) in
  dist.(init) <- 0;
  let changed = ref true in
  while !changed do
    changed := false;
    for s = 0 to n - 1 do
      if dist.(s) < max_int then
        List.iter
          (fun (tr : Discrete.Digital.dtrans) ->
            let c =
              match tr.Discrete.Digital.kind with
              | `Delay -> rate states.(s)
              | `Act mv -> cm.Priced.move_cost mv
            in
            let t = Discrete.Digital.id_of g tr.Discrete.Digital.target in
            if dist.(s) + c < dist.(t) then begin
              dist.(t) <- dist.(s) + c;
              changed := true
            end)
          g.Discrete.Digital.transitions.(s)
    done
  done;
  let best = ref None in
  Array.iteri
    (fun i st ->
      if dist.(i) < max_int && target st then
        match !best with
        | Some b when b <= dist.(i) -> ()
        | _ -> best := Some dist.(i))
    states;
  !best

let check_priced spec =
  let net = Ta_gen.build spec in
  let target = Ta_gen.target_pred spec in
  let reference = digital_min_cost spec net target in
  let cora = Priced.min_cost_reach net (Ta_gen.cost_model spec) ~target in
  match (cora, reference) with
  | None, None -> Agree
  | Some o, Some c when o.Priced.cost = c -> Agree
  | Some o, Some c ->
    Diverge
      (Printf.sprintf "priced: min_cost_reach says %d, Bellman-Ford says %d"
         o.Priced.cost c)
  | Some o, None ->
    Diverge
      (Printf.sprintf "priced: min_cost_reach reaches at cost %d, \
                       Bellman-Ford says unreachable" o.Priced.cost)
  | None, Some c ->
    Diverge
      (Printf.sprintf "priced: min_cost_reach says unreachable, \
                       Bellman-Ford reaches at cost %d" c)

let vi_tolerance = 1e-6

let check_mdp spec =
  let m = Mdp_gen.build spec in
  let target = Mdp_gen.target spec in
  let bad = ref None in
  List.iter
    (fun maximize ->
      if !bad = None then begin
        let v, _ = Mdp.reach_prob m ~target ~maximize in
        let e = Mdp_gen.exact spec ~maximize in
        Array.iteri
          (fun s ve ->
            if !bad = None && Float.abs (ve -. e.(s)) > vi_tolerance then
              bad :=
                Some
                  (Printf.sprintf
                     "mdp-vi: state %d (%s): value iteration %.12g, exact \
                      backward induction %.12g"
                     s
                     (if maximize then "max" else "min")
                     ve e.(s)))
          v
      end)
    [ true; false ];
  match !bad with None -> Agree | Some msg -> Diverge msg

let smc_runs = 2000
let smc_slack = 0.02

let check_smc spec =
  let exact = (Mdp_gen.exact spec ~maximize:true).(0) in
  (* Seeded from the spec itself so a shrunk repro stays self-contained:
     re-running [check] on the printed spec replays the same samples. *)
  let r = Random.State.make [| Hashtbl.hash spec; 0x5eed |] in
  let successes = ref 0 in
  for _ = 1 to smc_runs do
    if Mdp_gen.simulate spec r then incr successes
  done;
  let iv =
    Smc.Estimate.wilson ~confidence:0.99 ~successes:!successes ~trials:smc_runs
      ()
  in
  if exact >= iv.Smc.Estimate.low -. smc_slack
     && exact <= iv.Smc.Estimate.high +. smc_slack
  then Agree
  else
    Diverge
      (Printf.sprintf
         "smc-ci: exact probability %.6f outside Wilson interval [%.6f, %.6f] \
          (+/- %.2f slack, %d runs)"
         exact iv.Smc.Estimate.low iv.Smc.Estimate.high smc_slack smc_runs)

let check_bip spec =
  let sys = Bip_gen.build spec in
  let r = Bip.Engine.reachable ~max_states:bip_max_states sys in
  if r.Bip.Engine.truncated then Skip "bip-deadlock: exploration truncated"
  else
    let rep = Bip.Dfinder.prove ~max_candidates:bip_max_states sys in
    match (rep.Bip.Dfinder.verdict, r.Bip.Engine.deadlocks) with
    | Bip.Dfinder.Proved, _ :: _ ->
      Diverge
        (Printf.sprintf
           "bip-deadlock: D-Finder proved deadlock-freedom but exploration \
            found %d reachable deadlock(s)"
           (List.length r.Bip.Engine.deadlocks))
    | _ -> Agree

let check ?(extrapolation = `Lu) ?jobs case =
  try
    match case with
    | Ta spec -> check_ta ~extrapolation ?jobs spec
    | Pr spec -> check_priced spec
    | Md spec -> check_mdp spec
    | Sm spec -> check_smc spec
    | Bi spec -> check_bip spec
  with
  | Failure msg -> Skip ("truncated: " ^ msg)
  | e ->
    Diverge
      (Printf.sprintf "%s: backend raised %s"
         (family_name (family_of_case case))
         (Printexc.to_string e))

let shrinks = function
  | Ta spec -> List.map (fun s -> Ta s) (Ta_gen.shrinks spec)
  | Pr spec -> List.map (fun s -> Pr s) (Ta_gen.shrinks spec)
  | Md spec -> List.map (fun s -> Md s) (Mdp_gen.shrinks spec)
  | Sm spec -> List.map (fun s -> Sm s) (Mdp_gen.shrinks spec)
  | Bi spec -> List.map (fun s -> Bi s) (Bip_gen.shrinks spec)

let to_json case =
  let fam = Obs.Json.Str (family_name (family_of_case case)) in
  let spec =
    match case with
    | Ta s | Pr s -> Ta_gen.to_json s
    | Md s | Sm s -> Mdp_gen.to_json s
    | Bi s -> Bip_gen.to_json s
  in
  Obs.Json.Obj [ ("family", fam); ("spec", spec) ]

let to_ocaml case =
  let ctor, body =
    match case with
    | Ta s -> ("Ta", Ta_gen.to_ocaml s)
    | Pr s -> ("Pr", Ta_gen.to_ocaml s)
    | Md s -> ("Md", Mdp_gen.to_ocaml s)
    | Sm s -> ("Sm", Mdp_gen.to_ocaml s)
    | Bi s -> ("Bi", Bip_gen.to_ocaml s)
  in
  Printf.sprintf "Quantlib.Gen.Oracle.%s %s" ctor body

(* Packed fingerprint of the case's initial state, through the same
   codec its backends key their stores on. Deterministic (words and
   hash only, no addresses), so it is safe in the jobs-invariant fuzz
   report. *)
let packed_repr case =
  try
    match case with
    | Ta s | Pr s ->
      let net = Ta_gen.build s in
      let _, pack = Discrete.Digital.codec net in
      Engine.Codec.to_hex (pack (Discrete.Digital.initial net))
    | Md s | Sm s ->
      let m = Mdp_gen.build s in
      let cspec =
        Engine.Codec.spec
          [ Engine.Codec.Loc { name = "state"; count = Mdp.n_states m } ]
      in
      Engine.Codec.to_hex (Engine.Codec.encode cspec (fun _ -> 0))
    | Bi s ->
      let sys = Bip_gen.build s in
      let _, pack = Bip.Engine.codec sys in
      Engine.Codec.to_hex (pack (Bip.Engine.initial sys))
  with _ -> "unavailable"
