(** The differential-fuzzing harness: deterministic case sweep, greedy
    shrinking of divergences, and reproducible reporting.

    Case [i] of a sweep is drawn from the splittable stream
    [Rng.(make seed |> child (family tag) |> child i)] — reproducible
    from [(seed, i)] alone. Evaluation fans out over a {!Par} pool with
    results keyed by index, and shrinking runs sequentially afterwards,
    so a sweep's report is byte-identical for every [jobs] value. *)

type config = {
  seed : int;
  cases : int;
  jobs : int;
  families : Oracle.family list;  (** case [i] uses family [i mod n] *)
  shrink : bool;
  max_probes : int;
      (** cap on candidate evaluations during one divergence's shrink *)
  extrapolation : Ta.Checker.extrapolation;
      (** seal-time zone abstraction the TA oracles cross-check
          (default [`Lu]); passed to every {!Oracle.check}, including
          shrink probes *)
}

val default : config

(** [case_of cfg i] — the case the sweep evaluates at index [i]
    (exposed so a printed seed/index pair can be replayed directly). *)
val case_of : config -> int -> Oracle.case

type divergence = {
  d_index : int;
  d_family : Oracle.family;
  d_message : string;
  d_case : Oracle.case;
  d_shrunk : Oracle.case;  (** [= d_case] when shrinking is off *)
  d_shrunk_message : string;
  d_shrink_steps : int;  (** accepted reductions *)
}

type report = {
  r_seed : int;
  r_cases : int;
  r_families : Oracle.family list;
  r_agreed : int;
  r_skipped : (int * string) list;  (** (index, reason), index order *)
  r_divergences : divergence list;  (** index order *)
}

(** [run cfg] sweeps, shrinks, and updates the [gen.*] metrics
    ([gen.cases], [gen.skipped], [gen.divergences], [gen.shrink_steps]). *)
val run : config -> report

(** Deterministic human-readable report (independent of [jobs]). *)
val render : report -> string

(** Machine-readable artifact: config echo, counts, and for every
    divergence the original and shrunk case plus an OCaml repro. *)
val report_json : report -> Obs.Json.t
