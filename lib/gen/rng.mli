(** Splittable, path-based PRNG for reproducible case generation.

    A node is identified by the path of split indices from its root
    seed; the stream drawn at a node is [Random.State.make] over that
    path. Because a child's stream depends only on [(seed, path)] — not
    on how many draws its siblings made — every generated case is
    reproducible from [(seed, index)] alone, and cases can be generated
    in any order or on any domain with identical results. This is the
    seed-derivation contract of the differential harness, mirroring the
    [[| seed; k |]] per-run streams of {!Smc}. *)

type t

(** [make seed] is the root node. *)
val make : int -> t

(** [child t i] is the [i]-th split of [t]; independent of any draws. *)
val child : t -> int -> t

(** [state t] materializes the node's stream. Each call returns a fresh
    state positioned at the beginning of the same sequence. *)
val state : t -> Random.State.t
