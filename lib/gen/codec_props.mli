(** Codec round-trip properties over generator-produced models.

    For every reachable state of a random model, the packed encoding is
    checked for a lossless decode/encode round-trip, a hash that depends
    only on the field values (not the allocation), and idempotent
    interning. These are the {!Engine.Codec} laws every backend's
    [codec]/[pack] pair relies on. *)

type outcome = {
  checked : int;  (** states checked across all models *)
  failures : string list;  (** human-readable property violations *)
}

(** One random timed-automata network: properties over its digital
    reachable states, via {!Discrete.Digital.codec}. *)
val check_ta : Rng.t -> outcome

(** One random MDP: properties over a single-field location codec of its
    state ids. *)
val check_mdp : Rng.t -> outcome

(** One random BIP system: properties over its reachable states, via
    {!Bip.Engine.codec}. *)
val check_bip : Rng.t -> outcome

(** [check_all ~seed ~cases] draws [cases] models per backend from one
    seeded stream and merges the outcomes. *)
val check_all : seed:int -> cases:int -> outcome
