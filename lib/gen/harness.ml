type config = {
  seed : int;
  cases : int;
  jobs : int;
  families : Oracle.family list;
  shrink : bool;
  max_probes : int;
  extrapolation : Ta.Checker.extrapolation;
}

let default =
  {
    seed = 42;
    cases = 100;
    jobs = 1;
    families = Oracle.all_families;
    shrink = true;
    max_probes = 2000;
    extrapolation = `Lu;
  }

let m_cases = Obs.counter "gen.cases"
let m_skipped = Obs.counter "gen.skipped"
let m_divergences = Obs.counter "gen.divergences"
let m_shrink_steps = Obs.counter "gen.shrink_steps"

let family_tag fam =
  let rec go i = function
    | [] -> assert false
    | f :: rest -> if f = fam then i else go (i + 1) rest
  in
  go 0 Oracle.all_families

let case_of cfg i =
  let fams = Array.of_list cfg.families in
  let fam = fams.(i mod Array.length fams) in
  let rng = Rng.(child (child (make cfg.seed) (family_tag fam)) i) in
  Oracle.generate fam rng

type divergence = {
  d_index : int;
  d_family : Oracle.family;
  d_message : string;
  d_case : Oracle.case;
  d_shrunk : Oracle.case;
  d_shrunk_message : string;
  d_shrink_steps : int;
}

type report = {
  r_seed : int;
  r_cases : int;
  r_families : Oracle.family list;
  r_agreed : int;
  r_skipped : (int * string) list;
  r_divergences : divergence list;
}

(* Greedy shrink: scan the single-step candidates in order, commit to
   the first that still diverges, repeat until none does (local
   minimum) or the probe budget runs out. *)
let shrink_diverged ~extrapolation ~jobs ~max_probes case message =
  let probes = ref 0 in
  let rec go case message steps =
    let rec first = function
      | [] -> None
      | c :: rest ->
        if !probes >= max_probes then None
        else begin
          incr probes;
          match Oracle.check ~extrapolation ~jobs c with
          | Diverge m -> Some (c, m)
          | Agree | Skip _ -> first rest
        end
    in
    match first (Oracle.shrinks case) with
    | Some (c, m) -> go c m (steps + 1)
    | None -> (case, message, steps)
  in
  go case message 0

let run cfg =
  if cfg.cases < 0 then invalid_arg "Gen.Harness.run: negative cases";
  if cfg.families = [] then invalid_arg "Gen.Harness.run: no families";
  (* The pool size reaches the oracles too (clamped inside Oracle.check
     to a poolless sharded run — pools must not nest), so a fuzz sweep
     exercises the parallel engine path on every TA case. *)
  let eval i =
    let case = case_of cfg i in
    (case, Oracle.check ~extrapolation:cfg.extrapolation ~jobs:cfg.jobs case)
  in
  let results =
    if cfg.jobs <= 1 then Array.init cfg.cases eval
    else
      Par.Pool.with_pool ~jobs:cfg.jobs (fun pool ->
          Par.map_range ~pool ~lo:0 ~hi:cfg.cases eval)
  in
  let agreed = ref 0 in
  let skipped = ref [] in
  let divergences = ref [] in
  Array.iteri
    (fun i (case, verdict) ->
      match verdict with
      | Oracle.Agree -> incr agreed
      | Oracle.Skip msg -> skipped := (i, msg) :: !skipped
      | Oracle.Diverge msg ->
        let shrunk, shrunk_msg, steps =
          if cfg.shrink then
            shrink_diverged ~extrapolation:cfg.extrapolation ~jobs:cfg.jobs
              ~max_probes:cfg.max_probes case msg
          else (case, msg, 0)
        in
        Obs.Metrics.Counter.add m_shrink_steps steps;
        divergences :=
          {
            d_index = i;
            d_family = Oracle.family_of_case case;
            d_message = msg;
            d_case = case;
            d_shrunk = shrunk;
            d_shrunk_message = shrunk_msg;
            d_shrink_steps = steps;
          }
          :: !divergences)
    results;
  Obs.Metrics.Counter.add m_cases cfg.cases;
  Obs.Metrics.Counter.add m_skipped (List.length !skipped);
  Obs.Metrics.Counter.add m_divergences (List.length !divergences);
  {
    r_seed = cfg.seed;
    r_cases = cfg.cases;
    r_families = cfg.families;
    r_agreed = !agreed;
    r_skipped = List.rev !skipped;
    r_divergences = List.rev !divergences;
  }

(* The render must not mention [jobs]: a sweep's output is required to
   be byte-identical across pool sizes. *)
let render r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "fuzz: seed=%d cases=%d families=%s\n" r.r_seed r.r_cases
       (String.concat "," (List.map Oracle.family_name r.r_families)));
  Buffer.add_string buf
    (Printf.sprintf "agreed=%d skipped=%d diverged=%d\n" r.r_agreed
       (List.length r.r_skipped)
       (List.length r.r_divergences));
  List.iter
    (fun (i, msg) ->
      Buffer.add_string buf (Printf.sprintf "skip case %d: %s\n" i msg))
    r.r_skipped;
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "DIVERGENCE case %d (%s): %s\n" d.d_index
           (Oracle.family_name d.d_family)
           d.d_message);
      if d.d_shrink_steps > 0 then
        Buffer.add_string buf
          (Printf.sprintf "  shrunk (%d steps): %s\n" d.d_shrink_steps
             d.d_shrunk_message);
      Buffer.add_string buf
        (Printf.sprintf "  repro: let case = %s\n" (Oracle.to_ocaml d.d_shrunk));
      Buffer.add_string buf
        (Printf.sprintf "  packed: %s\n" (Oracle.packed_repr d.d_shrunk)))
    r.r_divergences;
  Buffer.contents buf

let report_json r =
  Obs.Json.Obj
    [
      ("seed", Obs.Json.Int r.r_seed);
      ("cases", Obs.Json.Int r.r_cases);
      ( "families",
        Obs.Json.Arr
          (List.map (fun f -> Obs.Json.Str (Oracle.family_name f)) r.r_families)
      );
      ("agreed", Obs.Json.Int r.r_agreed);
      ("skipped", Obs.Json.Int (List.length r.r_skipped));
      ("diverged", Obs.Json.Int (List.length r.r_divergences));
      ( "skips",
        Obs.Json.Arr
          (List.map
             (fun (i, msg) ->
               Obs.Json.Obj
                 [ ("case", Obs.Json.Int i); ("reason", Obs.Json.Str msg) ])
             r.r_skipped) );
      ( "divergences",
        Obs.Json.Arr
          (List.map
             (fun d ->
               Obs.Json.Obj
                 [
                   ("case", Obs.Json.Int d.d_index);
                   ("family", Obs.Json.Str (Oracle.family_name d.d_family));
                   ("message", Obs.Json.Str d.d_message);
                   ("original", Oracle.to_json d.d_case);
                   ("shrunk", Oracle.to_json d.d_shrunk);
                   ("shrunk_message", Obs.Json.Str d.d_shrunk_message);
                   ("shrink_steps", Obs.Json.Int d.d_shrink_steps);
                   ("repro", Obs.Json.Str (Oracle.to_ocaml d.d_shrunk));
                   ("packed", Obs.Json.Str (Oracle.packed_repr d.d_shrunk));
                 ])
             r.r_divergences) );
    ]
