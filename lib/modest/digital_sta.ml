module Model = Ta.Model
module Expr = Ta.Expr
module Bound = Zones.Bound

type dstate = {
  slocs : int array;
  sstore : int array;
  sclocks : int array;
  stime : int;
}

type expansion = {
  sta : Sta.t;
  mdp : Mdp.t;
  states : dstate array;
  initial : int;
}

let sat_constr v (c : Model.constr) =
  Bound.is_inf c.cb
  ||
  let d = v.(c.ci) - v.(c.cj) in
  let m = Bound.constant c.cb in
  if Bound.is_strict c.cb then d < m else d <= m

let invariants_ok (sta : Sta.t) locs v =
  let ok = ref true in
  Array.iteri
    (fun pi (p : Sta.process) ->
      if
        not
          (List.for_all (sat_constr v) p.Sta.p_locations.(locs.(pi)).Sta.l_invariant)
      then ok := false)
    sta.Sta.processes;
  !ok

let urgent_present (sta : Sta.t) locs =
  let found = ref false in
  Array.iteri
    (fun pi (p : Sta.process) ->
      if p.Sta.p_locations.(locs.(pi)).Sta.l_kind = Sta.L_urgent then found := true)
    sta.Sta.processes;
  !found

let edge_enabled (sta : Sta.t) st (e : Sta.edge) =
  ignore sta;
  (match e.Sta.e_guard with
   | None -> true
   | Some g -> Expr.eval_bool st.sstore g)
  && List.for_all (sat_constr st.sclocks) e.Sta.e_clock_guard

(* Apply one branch's updates; returns (store, clocks). *)
let apply_branch (sta : Sta.t) st updates =
  let ks = sta.Sta.max_consts in
  let store = Array.copy st.sstore in
  let clocks = Array.copy st.sclocks in
  List.iter
    (function
      | Model.Assign (lv, rhs) ->
        let v = Expr.eval store rhs in
        store.(Expr.lvalue_offset store lv) <- v
      | Model.Reset (x, v) -> clocks.(x) <- min v (ks.(x) + 1)
      | Model.Prim (_, f) -> f store)
    updates;
  (store, clocks)

(* The weighted successor list of firing [edges] (one per participating
   process) simultaneously: the product of the edges' branch
   distributions. *)
let fire (sta : Sta.t) st (participants : (int * Sta.edge) list) =
  let total_weight (e : Sta.edge) =
    List.fold_left (fun acc (b : Sta.branch) -> acc + b.Sta.weight) 0 e.Sta.e_branches
  in
  let rec product parts =
    match parts with
    | [] -> [ (1.0, []) ]
    | (pi, (e : Sta.edge)) :: rest ->
      let tw = float_of_int (total_weight e) in
      let tails = product rest in
      List.concat_map
        (fun (b : Sta.branch) ->
          let p = float_of_int b.Sta.weight /. tw in
          List.map
            (fun (q, choices) -> (p *. q, (pi, b) :: choices))
            tails)
        e.Sta.e_branches
  in
  List.filter_map
    (fun (prob, choices) ->
      let locs = Array.copy st.slocs in
      let store = ref st.sstore and clocks = ref st.sclocks in
      List.iter
        (fun (pi, (b : Sta.branch)) ->
          locs.(pi) <- b.Sta.b_dst;
          let st' = { st with sstore = !store; sclocks = !clocks } in
          let s', c' = apply_branch sta st' b.Sta.b_updates in
          store := s';
          clocks := c')
        choices;
      let st' = { st with slocs = locs; sstore = !store; sclocks = !clocks } in
      if invariants_ok sta locs !clocks then Some (prob, st') else None)
    (product participants)

(* All enabled moves: internal edges fire alone; actions shared by two
   processes need an enabled edge on both sides (all combinations). *)
let moves (sta : Sta.t) st =
  let acc = ref [] in
  Array.iteri
    (fun pi (p : Sta.process) ->
      List.iter
        (fun (e : Sta.edge) ->
          if edge_enabled sta st e then begin
            match e.Sta.e_action with
            | None -> acc := (Printf.sprintf "%s:tau" p.Sta.p_name, [ (pi, e) ]) :: !acc
            | Some a ->
              (match Hashtbl.find_opt sta.Sta.sync a with
               | Some [ _ ] | None -> acc := (a, [ (pi, e) ]) :: !acc
               | Some [ p1; p2 ] ->
                 (* Count the pair once, when we are the first sharer. *)
                 if pi = p1 then begin
                   let q = sta.Sta.processes.(p2) in
                   List.iter
                     (fun (e2 : Sta.edge) ->
                       if
                         e2.Sta.e_action = Some a
                         && edge_enabled sta st e2
                       then acc := (a, [ (pi, e); (p2, e2) ]) :: !acc)
                     q.Sta.p_out.(st.slocs.(p2))
                 end
                 else if pi <> p2 then
                   (* A third process naming a 2-party action would have
                      been rejected at build time. *)
                   ()
               | Some _ -> assert false)
          end)
        p.Sta.p_out.(st.slocs.(pi)))
    sta.Sta.processes;
  List.rev !acc

(* Packed codec of a digital STA state: process locations and saturated
   clocks bit-packed, store cells one word each, and the (capped) global
   time counter as a bounded field — [-1] when untracked. *)
let codec ?time_cap (sta : Sta.t) =
  let ks = sta.Sta.max_consts in
  let locs =
    Array.to_list
      (Array.map
         (fun (p : Sta.process) ->
           Engine.Codec.Loc
             { name = p.Sta.p_name; count = Array.length p.Sta.p_locations })
         sta.Sta.processes)
  in
  let cells =
    List.init (Ta.Store.size sta.Sta.layout) (fun i ->
        Engine.Codec.Word (Printf.sprintf "store[%d]" i))
  in
  let clocks =
    List.init (sta.Sta.n_clocks + 1) (fun i ->
        Engine.Codec.Bounded
          {
            name = Printf.sprintf "c%d" i;
            lo = 0;
            hi = (if i = 0 then 0 else ks.(i) + 1);
          })
  in
  let time =
    [
      (match time_cap with
       | None -> Engine.Codec.Bounded { name = "time"; lo = -1; hi = -1 }
       | Some cap -> Engine.Codec.Bounded { name = "time"; lo = 0; hi = cap + 1 });
    ]
  in
  let spec = Engine.Codec.spec (locs @ cells @ clocks @ time) in
  let n_procs = Array.length sta.Sta.processes in
  let n_cells = Ta.Store.size sta.Sta.layout in
  let n_clocks = sta.Sta.n_clocks + 1 in
  let pack st =
    Engine.Codec.intern spec
      (Engine.Codec.encode spec (fun i ->
           if i < n_procs then st.slocs.(i)
           else if i < n_procs + n_cells then st.sstore.(i - n_procs)
           else if i < n_procs + n_cells + n_clocks then
             st.sclocks.(i - n_procs - n_cells)
           else st.stime))
  in
  (spec, pack)

let expand ?time_cap ?(max_states = 5_000_000) (sta : Sta.t) =
  (match Sta.classify sta with
   | Sta.Class_sta ->
     invalid_arg
       "Digital_sta.expand: model has open/diagonal constraints (STA class)"
   | Sta.Class_ta | Sta.Class_mdp | Sta.Class_pta -> ());
  let ks = sta.Sta.max_consts in
  let init =
    {
      slocs = Array.map (fun (p : Sta.process) -> p.Sta.p_initial) sta.Sta.processes;
      sstore = Ta.Store.initial sta.Sta.layout;
      sclocks = Array.make (sta.Sta.n_clocks + 1) 0;
      stime = (match time_cap with None -> -1 | Some _ -> 0);
    }
  in
  if not (invariants_ok sta init.slocs init.sclocks) then
    invalid_arg "Digital_sta.expand: initial state violates invariants";
  let _spec, pack = codec ?time_cap sta in
  let arena = Engine.Arena.Keyed.create ~size_hint:65536 () in
  let actions_tbl = Hashtbl.create 65536 in
  let id_of st =
    let id, fresh = Engine.Arena.Keyed.intern arena (pack st) st in
    if fresh && Engine.Arena.Keyed.size arena > max_states then
      failwith "Digital_sta.expand: state limit";
    (id, fresh)
  in
  let queue = Queue.create () in
  let init_id, _ = id_of init in
  Queue.push (init_id, init) queue;
  while not (Queue.is_empty queue) do
    let id, st = Queue.pop queue in
    let acts = ref [] in
    (* Unit delay. *)
    if not (urgent_present sta st.slocs) then begin
      let clocks' =
        Array.mapi
          (fun i x -> if i = 0 then 0 else min (x + 1) (ks.(i) + 1))
          st.sclocks
      in
      if invariants_ok sta st.slocs clocks' then begin
        let time' =
          match time_cap with
          | None -> -1
          | Some cap -> min (st.stime + 1) (cap + 1)
        in
        let st' = { st with sclocks = clocks'; stime = time' } in
        let id', fresh = id_of st' in
        if fresh then Queue.push (id', st') queue;
        acts :=
          { Mdp.a_label = "delay"; probs = [ (1.0, id') ]; reward = 1.0 }
          :: !acts
      end
    end;
    (* Action moves. *)
    List.iter
      (fun (label, participants) ->
        match fire sta st participants with
        | [] -> ()
        | outcomes ->
          let total = List.fold_left (fun acc (p, _) -> acc +. p) 0.0 outcomes in
          (* Branches whose target violates an invariant were dropped;
             renormalise only when everything survived — otherwise the
             edge is considered blocked (well-formed models are
             unaffected). *)
          if abs_float (total -. 1.0) <= 1e-9 then begin
            let probs =
              List.map
                (fun (p, st') ->
                  let id', fresh = id_of st' in
                  if fresh then Queue.push (id', st') queue;
                  (p, id'))
                outcomes
            in
            acts := { Mdp.a_label = label; probs; reward = 0.0 } :: !acts
          end)
      (moves sta st);
    Hashtbl.replace actions_tbl id (List.rev !acts)
  done;
  let states = Engine.Arena.Keyed.to_array arena in
  let mdp =
    Mdp.make
      (Array.init (Array.length states) (fun i ->
           try Hashtbl.find actions_tbl i with Not_found -> []))
  in
  { sta; mdp; states; initial = 0 }

let target_of exp pred = Array.map pred exp.states

let pred_of_mprop exp p (st : dstate) =
  Mprop.eval exp.sta ~locs:st.slocs ~store:st.sstore p
