module Model = Ta.Model
module Expr = Ta.Expr
module Bound = Zones.Bound

type scheduler = Asap_uniform

(* Simulator instruments: an "event" is one fired move (internal or
   synchronised pair); the event-queue depth is the number of candidate
   moves the scheduler chose among at that step. *)
let m_runs = Obs.counter "modes.runs"
let m_events = Obs.counter "modes.events"
let m_queue_depth = Obs.histogram "modes.queue_depth"

type observation = {
  hits : float option array;
  monitors_ok : bool array;
  end_time : float;
  steps : int;
}

type mstate = {
  mlocs : int array;
  mstore : int array;
  mclocks : float array;
  mtime : float;
}

let initial (sta : Sta.t) =
  {
    mlocs = Array.map (fun (p : Sta.process) -> p.Sta.p_initial) sta.Sta.processes;
    mstore = Ta.Store.initial sta.Sta.layout;
    mclocks = Array.make (sta.Sta.n_clocks + 1) 0.0;
    mtime = 0.0;
  }

(* Delay window [lo, hi] in which the clock guard can be satisfied. *)
let guard_window v constrs =
  let lo = ref 0.0 and hi = ref infinity and feasible = ref true in
  List.iter
    (fun (c : Model.constr) ->
      if not (Bound.is_inf c.cb) then begin
        let m = float_of_int (Bound.constant c.cb) in
        if c.ci > 0 && c.cj = 0 then hi := min !hi (m -. v.(c.ci))
        else if c.ci = 0 && c.cj > 0 then lo := max !lo (-.m -. v.(c.cj))
        else if not (Bound.sat c.cb (v.(c.ci) -. v.(c.cj))) then feasible := false
      end)
    constrs;
  if (not !feasible) || !lo > !hi +. 1e-12 then None else Some (!lo, !hi)

let data_ok store (e : Sta.edge) =
  match e.Sta.e_guard with None -> true | Some g -> Expr.eval_bool store g

(* Candidate moves with the earliest delay at which each becomes enabled:
   internal / one-party edges alone, two-party actions as pairs. *)
let candidate_moves (sta : Sta.t) st =
  let acc = ref [] in
  let edge_lo (e : Sta.edge) =
    match guard_window st.mclocks e.Sta.e_clock_guard with
    | Some (lo, hi) -> Some (max 0.0 lo, hi)
    | None -> None
  in
  Array.iteri
    (fun pi (p : Sta.process) ->
      List.iter
        (fun (e : Sta.edge) ->
          if data_ok st.mstore e then begin
            match e.Sta.e_action with
            | None -> (
                match edge_lo e with
                | Some (lo, hi) -> acc := (lo, hi, [ (pi, e) ]) :: !acc
                | None -> ())
            | Some a ->
              (match Hashtbl.find_opt sta.Sta.sync a with
               | Some [ _ ] | None -> (
                   match edge_lo e with
                   | Some (lo, hi) -> acc := (lo, hi, [ (pi, e) ]) :: !acc
                   | None -> ())
               | Some [ p1; p2 ] ->
                 if pi = p1 then begin
                   List.iter
                     (fun (e2 : Sta.edge) ->
                       if e2.Sta.e_action = Some a && data_ok st.mstore e2 then
                         match edge_lo e, edge_lo e2 with
                         | Some (lo1, hi1), Some (lo2, hi2) ->
                           let lo = max lo1 lo2 and hi = min hi1 hi2 in
                           if lo <= hi +. 1e-12 then
                             acc := (lo, hi, [ (pi, e); (p2, e2) ]) :: !acc
                         | _, _ -> ())
                     sta.Sta.processes.(p2).Sta.p_out.(st.mlocs.(p2))
                 end
               | Some _ -> assert false)
          end)
        p.Sta.p_out.(st.mlocs.(pi)))
    sta.Sta.processes;
  List.rev !acc

let invariant_ub (sta : Sta.t) st =
  let ub = ref infinity in
  Array.iteri
    (fun pi (p : Sta.process) ->
      List.iter
        (fun (c : Model.constr) ->
          if (not (Bound.is_inf c.cb)) && c.ci > 0 && c.cj = 0 then
            ub := min !ub (float_of_int (Bound.constant c.cb) -. st.mclocks.(c.ci)))
        p.Sta.p_locations.(st.mlocs.(pi)).Sta.l_invariant)
    sta.Sta.processes;
  !ub

let urgent_present (sta : Sta.t) st =
  let found = ref false in
  Array.iteri
    (fun pi (p : Sta.process) ->
      if p.Sta.p_locations.(st.mlocs.(pi)).Sta.l_kind = Sta.L_urgent then
        found := true)
    sta.Sta.processes;
  !found

let sample_branch rng (e : Sta.edge) =
  let total =
    List.fold_left (fun acc (b : Sta.branch) -> acc + b.Sta.weight) 0 e.Sta.e_branches
  in
  let roll = Random.State.int rng total in
  let rec pick acc = function
    | [] -> assert false
    | (b : Sta.branch) :: rest ->
      let acc = acc + b.Sta.weight in
      if roll < acc then b else pick acc rest
  in
  pick 0 e.Sta.e_branches

let fire rng (st : mstate) participants =
  let locs = Array.copy st.mlocs in
  let store = Array.copy st.mstore in
  let clocks = Array.copy st.mclocks in
  List.iter
    (fun (pi, e) ->
      let b = sample_branch rng e in
      locs.(pi) <- b.Sta.b_dst;
      List.iter
        (function
          | Model.Assign (lv, rhs) ->
            let v = Expr.eval store rhs in
            store.(Expr.lvalue_offset store lv) <- v
          | Model.Reset (x, v) -> clocks.(x) <- float_of_int v
          | Model.Prim (_, f) -> f store)
        b.Sta.b_updates)
    participants;
  { st with mlocs = locs; mstore = store; mclocks = clocks }

let advance st d =
  {
    st with
    mclocks = Array.mapi (fun i x -> if i = 0 then 0.0 else x +. d) st.mclocks;
    mtime = st.mtime +. d;
  }

(* One ASAP step: fire an enabled move now, else advance to the earliest
   enabling instant (within invariants) and fire there. *)
let step (sta : Sta.t) rng st =
  let candidates = candidate_moves sta st in
  Obs.Metrics.Counter.incr m_events;
  Obs.Metrics.Histogram.observe m_queue_depth
    (float_of_int (List.length candidates));
  let now = List.filter (fun (lo, _, _) -> lo <= 1e-12) candidates in
  match now with
  | _ :: _ ->
    let _, _, participants =
      List.nth now (Random.State.int rng (List.length now))
    in
    Some (fire rng st participants)
  | [] ->
    if urgent_present sta st then None (* urgent state with nothing enabled *)
    else begin
      let ub = invariant_ub sta st in
      let earliest =
        List.fold_left
          (fun acc (lo, _, _) -> if lo <= ub +. 1e-12 then min acc lo else acc)
          infinity candidates
      in
      if earliest = infinity then None
      else begin
        let st' = advance st earliest in
        let enabled =
          List.filter
            (fun (_, _, parts) ->
              List.for_all
                (fun (_, (e : Sta.edge)) ->
                  match guard_window st'.mclocks e.Sta.e_clock_guard with
                  | Some (lo, _) -> lo <= 1e-12
                  | None -> false)
                parts)
            candidates
        in
        match enabled with
        | [] -> Some st' (* numeric edge case: retry from advanced state *)
        | _ ->
          let _, _, participants =
            List.nth enabled (Random.State.int rng (List.length enabled))
          in
          Some (fire rng st' participants)
      end
    end

let run ?(scheduler = Asap_uniform) (sta : Sta.t) ~seed ~horizon ~watch
    ~monitors =
  let Asap_uniform = scheduler in
  let rng = Random.State.make [| seed |] in
  let hits = Array.make (Array.length watch) None in
  let monitors_ok = Array.make (Array.length monitors) true in
  let observe (st : mstate) =
    Array.iteri
      (fun k p ->
        if hits.(k) = None && Mprop.eval sta ~locs:st.mlocs ~store:st.mstore p
        then hits.(k) <- Some st.mtime)
      watch;
    Array.iteri
      (fun k p ->
        if monitors_ok.(k)
           && not (Mprop.eval sta ~locs:st.mlocs ~store:st.mstore p)
        then monitors_ok.(k) <- false)
      monitors
  in
  let rec loop st steps =
    observe st;
    let all_hit =
      Array.length hits > 0 && Array.for_all (fun h -> h <> None) hits
    in
    if all_hit || st.mtime > horizon || steps > 1_000_000 then (st, steps)
    else
      match step sta rng st with
      | None -> (st, steps)
      | Some st' -> loop st' (steps + 1)
  in
  let final, steps = loop (initial sta) 0 in
  Obs.Metrics.Counter.incr m_runs;
  { hits; monitors_ok; end_time = final.mtime; steps }

let runs ?pool ?scheduler sta ~seed ~n ~horizon ~watch ~monitors =
  Obs.Span.with_ ~name:"modes.batch" @@ fun () ->
  (* Run k is fully determined by its derived seed, so the batch shards
     across a pool without changing any observation. *)
  Par.map_range ?pool ~lo:0 ~hi:n (fun k ->
      run ?scheduler sta ~seed:(seed + (k * 7919)) ~horizon ~watch ~monitors)
