(** The [modes] backend: discrete-event simulation of MODEST models.

    Probabilistic branches are sampled by weight; the remaining
    nondeterminism — which enabled move fires, and when — is resolved by
    an explicit scheduler, as the paper notes simulation must: the
    default is ASAP timing (moves fire as soon as their guards allow)
    with uniform-random choice among simultaneously enabled moves.
    Deterministically seeded. *)

type scheduler = Asap_uniform

(** One simulated run's observations. *)
type observation = {
  hits : float option array;
      (** first hitting time of each watched predicate *)
  monitors_ok : bool array;
      (** per monitored invariant: true when it held in every visited
          state *)
  end_time : float;
  steps : int;
}

(** [run sta ~seed ~horizon ~watch ~monitors] simulates one run until the
    horizon, a stuck state, or all watches hit. *)
val run :
  ?scheduler:scheduler ->
  Sta.t ->
  seed:int ->
  horizon:float ->
  watch:Mprop.t array ->
  monitors:Mprop.t array ->
  observation

(** [runs sta ~seed ~n ~horizon ~watch ~monitors] — [n] independent runs
    with derived seeds (run [k] uses [seed + k * 7919]). Sharding across
    [?pool] changes wall-clock time only, never an observation. *)
val runs :
  ?pool:Par.Pool.t ->
  ?scheduler:scheduler ->
  Sta.t ->
  seed:int ->
  n:int ->
  horizon:float ->
  watch:Mprop.t array ->
  monitors:Mprop.t array ->
  observation array
