module Model = Ta.Model
module Expr = Ta.Expr
module Store = Ta.Store

type t = { sta : Sta.t; n : int; max_retrans : int; td : int }

(* Variable handles are recovered by name from the layout. *)
let var sta name = Store.find sta.Sta.layout name

let make ?(n = 16) ?(max_retrans = 2) ?(td = 1) () =
  let timeout = (2 * td) + 1 in
  let b = Sta.builder () in
  let sb = Sta.store b in
  let i = Store.int_var sb "i" in
  let srep = Store.int_var sb "srep" in
  let nrtr = Store.int_var sb "nrtr" in
  let rcount = Store.int_var sb "rcount" in
  let kbusy = Store.int_var sb "kbusy" in
  let lbusy = Store.int_var sb "lbusy" in
  let premature = Store.int_var sb "premature" in
  let y = Sta.fresh_clock b "y" in
  let c = Sta.fresh_clock b "c" in
  let d = Sta.fresh_clock b "d" in
  let set v e = Model.Assign (Expr.Cell v, e) in
  let seti v k = set v (Expr.Int k) in

  (* --- Sender ----------------------------------------------------- *)
  let s = Sta.process b "Sender" in
  let idle = Sta.location s ~kind:Sta.L_urgent "Idle" in
  let sendf = Sta.location s ~kind:Sta.L_urgent "SendF" in
  let wait_ack =
    Sta.location s ~invariant:[ Model.clock_le y timeout ] "WaitAck"
  in
  let frame_done = Sta.location s ~kind:Sta.L_urgent "FrameDone" in
  let done_l = Sta.location s "Done" in
  let error_l = Sta.location s "Error" in
  Sta.set_initial s idle;
  Sta.edge s ~src:idle ~branches:[ (1, [ seti i 1; seti nrtr 0 ], sendf) ] ();
  Sta.edge s ~src:sendf ~action:"put"
    ~branches:[ (1, [ Model.Reset (y, 0) ], wait_ack) ]
    ();
  Sta.edge s ~src:wait_ack ~action:"ack" ~branches:[ (1, [], frame_done) ] ();
  (* Timeout: record whether a frame/ack was still in transit (TA1). *)
  let note_premature =
    set premature
      (Expr.Or
         (Expr.var premature, Expr.Or (Expr.var kbusy, Expr.var lbusy)))
  in
  Sta.edge s ~src:wait_ack
    ~guard:(Expr.Lt (Expr.var nrtr, Expr.Int max_retrans))
    ~clock_guard:[ Model.clock_ge y timeout ]
    ~branches:
      [ (1, [ note_premature; set nrtr (Expr.Add (Expr.var nrtr, Expr.Int 1)) ], sendf) ]
    ();
  Sta.edge s ~src:wait_ack
    ~guard:
      (Expr.And
         ( Expr.Eq (Expr.var nrtr, Expr.Int max_retrans),
           Expr.Lt (Expr.var i, Expr.Int n) ))
    ~clock_guard:[ Model.clock_ge y timeout ]
    ~branches:[ (1, [ note_premature; seti srep 1 ], error_l) ]
    ();
  Sta.edge s ~src:wait_ack
    ~guard:
      (Expr.And
         ( Expr.Eq (Expr.var nrtr, Expr.Int max_retrans),
           Expr.Eq (Expr.var i, Expr.Int n) ))
    ~clock_guard:[ Model.clock_ge y timeout ]
    ~branches:[ (1, [ note_premature; seti srep 2 ], error_l) ]
    ();
  Sta.edge s ~src:frame_done
    ~guard:(Expr.Lt (Expr.var i, Expr.Int n))
    ~branches:
      [ (1, [ set i (Expr.Add (Expr.var i, Expr.Int 1)); seti nrtr 0 ], sendf) ]
    ();
  Sta.edge s ~src:frame_done
    ~guard:(Expr.Eq (Expr.var i, Expr.Int n))
    ~branches:[ (1, [ seti srep 3 ], done_l) ]
    ();

  (* --- Receiver ---------------------------------------------------- *)
  let r = Sta.process b "Receiver" in
  let wait = Sta.location r "Wait" in
  let ack_prep = Sta.location r ~kind:Sta.L_urgent "AckPrep" in
  Sta.set_initial r wait;
  Sta.edge r ~src:wait ~action:"deliver"
    ~branches:[ (1, [ set rcount (Expr.var i) ], ack_prep) ]
    ();
  Sta.edge r ~src:ack_prep ~action:"sendack" ~branches:[ (1, [], wait) ] ();

  (* --- Channel K (frames; the Fig. 5 channel with 2% loss) --------- *)
  let k = Sta.process b "ChannelK" in
  let k_idle = Sta.location k "Idle" in
  let k_busy = Sta.location k ~invariant:[ Model.clock_le c td ] "Busy" in
  Sta.set_initial k k_idle;
  Sta.edge k ~src:k_idle ~action:"put"
    ~branches:
      [
        (98, [ Model.Reset (c, 0); seti kbusy 1 ], k_busy);
        (2, [], k_idle) (* message lost *);
      ]
    ();
  Sta.edge k ~src:k_busy ~action:"deliver"
    ~clock_guard:[ Model.clock_ge c td ]
    ~branches:[ (1, [ seti kbusy 0 ], k_idle) ]
    ();

  (* --- Channel L (acknowledgements, 1% loss) ----------------------- *)
  let l = Sta.process b "ChannelL" in
  let l_idle = Sta.location l "Idle" in
  let l_busy = Sta.location l ~invariant:[ Model.clock_le d td ] "Busy" in
  Sta.set_initial l l_idle;
  Sta.edge l ~src:l_idle ~action:"sendack"
    ~branches:
      [
        (99, [ Model.Reset (d, 0); seti lbusy 1 ], l_busy);
        (1, [], l_idle) (* ack lost *);
      ]
    ();
  Sta.edge l ~src:l_busy ~action:"ack"
    ~clock_guard:[ Model.clock_ge d td ]
    ~branches:[ (1, [ seti lbusy 0 ], l_idle) ]
    ();

  { sta = Sta.build b; n; max_retrans; td }

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let srep_is t k = Mprop.P_data (Expr.Eq (Expr.var (var t.sta "srep"), Expr.Int k))
let rcount_full t =
  Mprop.P_data (Expr.Eq (Expr.var (var t.sta "rcount"), Expr.Int t.n))

let ta1 t =
  Mprop.P_data (Expr.Eq (Expr.var (var t.sta "premature"), Expr.Int 0))

let ta2 t =
  let imply a b = Mprop.P_or (Mprop.P_not a, b) in
  Mprop.P_and
    ( imply (srep_is t 3) (rcount_full t),
      imply (srep_is t 1) (Mprop.P_not (rcount_full t)) )

let pa t = Mprop.P_and (srep_is t 3, Mprop.P_not (rcount_full t))
let pb t = Mprop.P_and (srep_is t 1, rcount_full t)
let p1 t = Mprop.P_or (srep_is t 1, srep_is t 2)
let p2 t = srep_is t 2
let success t = srep_is t 3
let finished (_ : t) =
  Mprop.P_or (Mprop.P_loc ("Sender", "Done"), Mprop.P_loc ("Sender", "Error"))

(* ------------------------------------------------------------------ *)
(* Backend runners                                                     *)
(* ------------------------------------------------------------------ *)

type mctau_row = {
  mt_ta1 : bool;
  mt_ta2 : bool;
  mt_pa : [ `Zero | `Interval of float * float ];
  mt_pb : [ `Zero | `Interval of float * float ];
  mt_p1 : [ `Zero | `Interval of float * float ];
  mt_p2 : [ `Zero | `Interval of float * float ];
  mt_dmax : [ `Zero | `Interval of float * float ];
  mt_states : int;
}

let run_mctau t =
  let inv p = fst (Mctau.invariant_holds t.sta p) in
  let bounds p = fst (Mctau.prob_bounds t.sta p) in
  let _, stats = Mctau.invariant_holds t.sta (ta1 t) in
  {
    mt_ta1 = inv (ta1 t);
    mt_ta2 = inv (ta2 t);
    mt_pa = bounds (pa t);
    mt_pb = bounds (pb t);
    mt_p1 = bounds (p1 t);
    mt_p2 = bounds (p2 t);
    mt_dmax = bounds (success t);
    mt_states = stats.Ta.Checker.stored;
  }

type mcpta_row = {
  mc_ta1 : bool;
  mc_ta2 : bool;
  mc_pa : float;
  mc_pb : float;
  mc_p1 : float;
  mc_p2 : float;
  mc_dmax : float;
  mc_emax : float;
  mc_states : int;
}

let run_mcpta ?(dmax_bound = 64) t =
  let reach p = fst (Mcpta.reach_prob t.sta p ~maximize:true) in
  let ta1_ok, stats = Mcpta.invariant_holds t.sta (ta1 t) in
  let dmax, _ =
    Mcpta.time_bounded_reach t.sta (success t) ~bound:dmax_bound ~maximize:true
  in
  let emax, _ = Mcpta.expected_time t.sta (finished t) ~maximize:true in
  {
    mc_ta1 = ta1_ok;
    mc_ta2 = fst (Mcpta.invariant_holds t.sta (ta2 t));
    mc_pa = reach (pa t);
    mc_pb = reach (pb t);
    mc_p1 = reach (p1 t);
    mc_p2 = reach (p2 t);
    mc_dmax = dmax;
    mc_emax = emax;
    mc_states = stats.Mcpta.n_states;
  }

type modes_row = {
  md_runs : int;
  md_ta1_ok : int;
  md_ta2_ok : int;
  md_pa_obs : int;
  md_pb_obs : int;
  md_p1_obs : int;
  md_p2_obs : int;
  md_dmax_obs : int;
  md_emax_mean : float;
  md_emax_std : float;
}

let run_modes ?pool ?(runs = 10_000) ?(seed = 42) ?(dmax_bound = 64.0) t =
  let watch = [| pa t; pb t; p1 t; p2 t; success t; finished t |] in
  let monitors = [| ta1 t; ta2 t |] in
  let horizon = float_of_int (t.n * ((t.max_retrans + 1) * ((2 * t.td) + 1))) +. 10.0 in
  let obs = Modes.runs ?pool t.sta ~seed ~n:runs ~horizon ~watch ~monitors in
  let count f = Array.fold_left (fun acc o -> if f o then acc + 1 else acc) 0 obs in
  let hit k (o : Modes.observation) = o.Modes.hits.(k) <> None in
  let finish_times =
    Array.map
      (fun (o : Modes.observation) ->
        match o.Modes.hits.(5) with Some h -> h | None -> o.Modes.end_time)
      obs
  in
  let mean, std = Smc.Estimate.mean_std finish_times in
  {
    md_runs = runs;
    md_ta1_ok = count (fun o -> o.Modes.monitors_ok.(0));
    md_ta2_ok = count (fun o -> o.Modes.monitors_ok.(1));
    md_pa_obs = count (hit 0);
    md_pb_obs = count (hit 1);
    md_p1_obs = count (hit 2);
    md_p2_obs = count (hit 3);
    md_dmax_obs =
      count (fun o ->
          match o.Modes.hits.(4) with Some h -> h <= dmax_bound | None -> false);
    md_emax_mean = mean;
    md_emax_std = std;
  }
