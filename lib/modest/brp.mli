(** The Bounded Retransmission Protocol case study (Section III.A,
    Table I of the paper).

    A sender transfers [n] chunks over a lossy channel K (2% loss, the
    Fig. 5 channel), acknowledged over a lossy channel L (1% loss), with
    at most [max_retrans] retransmissions per chunk, transmission delay
    [td] and sender timeout [2*td + 1]. The sender finally reports
    OK (all acked), NOK (a non-final chunk exhausted its retries) or
    DK ("don't know": the final chunk did). *)

type t = {
  sta : Sta.t;
  n : int;
  max_retrans : int;
  td : int;
}

(** [make ()] defaults to the paper's instance (N, MAX, TD) = (16, 2, 1). *)
val make : ?n:int -> ?max_retrans:int -> ?td:int -> unit -> t

(** {1 The properties of Table I} *)

(** TA1 — no premature timeouts: the sender never times out while a frame
    or acknowledgement is still in transit. (Invariant.) *)
val ta1 : t -> Mprop.t

(** TA2 — correct handling of failures: OK implies the receiver got all
    chunks; NOK implies it did not. (Invariant.) *)
val ta2 : t -> Mprop.t

(** PA — the sender reports OK although chunks are missing. (Target for a
    max-probability query; structurally impossible.) *)
val pa : t -> Mprop.t

(** PB — the sender reports NOK although the receiver got everything. *)
val pb : t -> Mprop.t

(** P1 — the sender eventually reports a failure (NOK or DK). *)
val p1 : t -> Mprop.t

(** P2 — the sender reports "don't know" (failure on the last chunk). *)
val p2 : t -> Mprop.t

(** Success: the sender reports OK. (Dmax asks for this within time 64.) *)
val success : t -> Mprop.t

(** The transfer finished, successfully or not (Emax's target). *)
val finished : t -> Mprop.t

(** {1 Backend runners (the three Table I columns)} *)

type mctau_row = {
  mt_ta1 : bool;
  mt_ta2 : bool;
  mt_pa : [ `Zero | `Interval of float * float ];
  mt_pb : [ `Zero | `Interval of float * float ];
  mt_p1 : [ `Zero | `Interval of float * float ];
  mt_p2 : [ `Zero | `Interval of float * float ];
  mt_dmax : [ `Zero | `Interval of float * float ];
  mt_states : int;
}

val run_mctau : t -> mctau_row

type mcpta_row = {
  mc_ta1 : bool;
  mc_ta2 : bool;
  mc_pa : float;
  mc_pb : float;
  mc_p1 : float;
  mc_p2 : float;
  mc_dmax : float;  (** max probability of success within time 64 *)
  mc_emax : float;  (** max expected time until the transfer finishes *)
  mc_states : int;
}

val run_mcpta : ?dmax_bound:int -> t -> mcpta_row

type modes_row = {
  md_runs : int;
  md_ta1_ok : int;  (** runs satisfying TA1 *)
  md_ta2_ok : int;
  md_pa_obs : int;  (** observations of the PA event *)
  md_pb_obs : int;
  md_p1_obs : int;
  md_p2_obs : int;
  md_dmax_obs : int;  (** successes within time 64 *)
  md_emax_mean : float;
  md_emax_std : float;
}

val run_modes :
  ?pool:Par.Pool.t ->
  ?runs:int ->
  ?seed:int ->
  ?dmax_bound:float ->
  t ->
  modes_row
