(* Deterministic parallel execution on OCaml 5 domains.

   Everything here preserves one invariant: the observable result of a
   combinator depends only on its inputs, never on scheduling. Work is
   fanned out over index ranges, every result is stored at its index,
   and ordered consumers ([fold_until]) read strictly in index order —
   so jobs:4 and jobs:1 agree bit for bit, which the SMC backends rely
   on for reproducible estimates. *)

exception Cancelled

module Cancel = struct
  (* A token is an explicit flag plus an optional wall-clock deadline.
     [is_set] is polled at chunk boundaries by the combinators, so a
     deadline trips cooperative cancellation from inside the workers —
     no external agent has to call [set] — which is how a serving layer
     bounds a request's sampling time on a shared pool. The flag is
     sticky: once a deadline has tripped the token stays cancelled. *)
  type t = { flag : bool Atomic.t; deadline_at : float }

  let create ?deadline_at () =
    {
      flag = Atomic.make false;
      deadline_at = (match deadline_at with Some t -> t | None -> infinity);
    }

  let set t = Atomic.set t.flag true

  let is_set t =
    Atomic.get t.flag
    || (t.deadline_at < infinity
        && Unix.gettimeofday () > t.deadline_at
        && begin
             Atomic.set t.flag true;
             true
           end)

  let deadline_at t = if t.deadline_at = infinity then None else Some t.deadline_at
end

(* Pool instruments: one task = one map_range/fold_until submission;
   chunks count actual claimed-and-computed index blocks. *)
let m_tasks = Obs.counter "par.tasks"
let m_chunks = Obs.counter "par.chunks"
let m_cancelled = Obs.counter "par.cancelled_tasks"
let m_spec_discarded = Obs.counter "par.spec_chunks_discarded"
let g_jobs = Obs.gauge "par.jobs"

module Pool = struct
  (* jobs - 1 long-lived worker domains blocked on [has_task]; the
     submitting domain is the jobs-th worker. One task at a time: the
     submitter publishes a worker body under the mutex, bumps the
     generation, and joins by waiting for [active] to drain. Worker
     bodies never raise — the combinators capture exceptions into
     shared slots and re-raise after the join. *)
  type t = {
    n_jobs : int;
    mutex : Mutex.t;
    has_task : Condition.t;
    task_done : Condition.t;
    mutable body : (unit -> unit) option;
    mutable generation : int;
    mutable active : int;
    mutable closing : bool;
    mutable domains : unit Domain.t list;
  }

  let jobs t = t.n_jobs

  let worker t =
    let rec loop seen =
      Mutex.lock t.mutex;
      while t.generation = seen && not t.closing do
        Condition.wait t.has_task t.mutex
      done;
      if t.closing then Mutex.unlock t.mutex
      else begin
        let gen = t.generation in
        let body = match t.body with Some b -> b | None -> assert false in
        Mutex.unlock t.mutex;
        body ();
        Mutex.lock t.mutex;
        t.active <- t.active - 1;
        if t.active = 0 then Condition.broadcast t.task_done;
        Mutex.unlock t.mutex;
        loop gen
      end
    in
    loop 0

  let create ~jobs =
    if jobs < 1 then invalid_arg "Par.Pool.create: jobs must be >= 1";
    let t =
      {
        n_jobs = jobs;
        mutex = Mutex.create ();
        has_task = Condition.create ();
        task_done = Condition.create ();
        body = None;
        generation = 0;
        active = 0;
        closing = false;
        domains = [];
      }
    in
    t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let shutdown t =
    Mutex.lock t.mutex;
    if t.closing then Mutex.unlock t.mutex
    else begin
      t.closing <- true;
      Condition.broadcast t.has_task;
      Mutex.unlock t.mutex;
      List.iter Domain.join t.domains;
      t.domains <- []
    end

  let with_pool ~jobs f =
    let t = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

  let run t ~leader ~worker =
    if t.n_jobs = 1 then leader ()
    else begin
      (* Per-domain span so run reports break worker time out by domain. *)
      let worker () = Obs.Span.with_ ~name:"par.worker" worker in
      Mutex.lock t.mutex;
      if t.closing then begin
        Mutex.unlock t.mutex;
        invalid_arg "Par.Pool.run: pool is shut down"
      end;
      assert (t.body = None);
      t.body <- Some worker;
      t.generation <- t.generation + 1;
      t.active <- t.n_jobs - 1;
      Condition.broadcast t.has_task;
      Mutex.unlock t.mutex;
      let outcome =
        match leader () with
        | () -> Ok ()
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.mutex;
      while t.active > 0 do
        Condition.wait t.task_done t.mutex
      done;
      t.body <- None;
      Mutex.unlock t.mutex;
      (* Workers are quiescent and their writes happen-before this point
         (task_done under the mutex): fold their metric shards into the
         submitting domain so post-join reads are single-shard and a
         jobs=N run reports byte-for-byte like jobs=1. *)
      Obs.Metrics.merge ();
      match outcome with
      | Ok () -> ()
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt
    end
end

let effective_jobs pool = match pool with None -> 1 | Some p -> Pool.jobs p

(* First worker exception, with its backtrace, wins. *)
let record_failure slot e =
  let bt = Printexc.get_raw_backtrace () in
  ignore (Atomic.compare_and_set slot None (Some (e, bt)))

let reraise_failure slot =
  match Atomic.get slot with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Sharded rounds                                                      *)
(* ------------------------------------------------------------------ *)

(* Growable FIFO buffer for cross-shard hand-off. A box is written by
   exactly one shard step and drained by exactly one shard step of the
   NEXT round, with a pool barrier in between — that barrier is the only
   synchronisation a box needs, so pushes and reads are plain. The
   capacity is unbounded (a round's fan-out must land somewhere); the
   high-water mark records the realised bound so benches can report
   actual mailbox pressure. *)
module Mailbox = struct
  type 'a t = { mutable slots : 'a array; mutable len : int; mutable hwm : int }

  let create () = { slots = [||]; len = 0; hwm = 0 }

  let push t x =
    if t.len = Array.length t.slots then begin
      let fresh = Array.make (max 64 (2 * t.len)) x in
      Array.blit t.slots 0 fresh 0 t.len;
      t.slots <- fresh
    end;
    t.slots.(t.len) <- x;
    t.len <- t.len + 1;
    if t.len > t.hwm then t.hwm <- t.len

  let length t = t.len
  let hwm t = t.hwm

  let iter f t =
    for i = 0 to t.len - 1 do
      f t.slots.(i)
    done

  (* Capacity is kept; the stale slots keep their last entries alive
     until overwritten, which is harmless for exploration payloads (the
     accepted states are retained by the arena anyway). *)
  let clear t = t.len <- 0
end

let m_shard_rounds = Obs.counter "par.shard_rounds"
let m_steals = Obs.counter "par.steals"
let ph_steal = Obs.Flight.intern "par.steal"

(* Barrier-synchronised sharded execution: every round runs [step s]
   exactly once for each shard [s], fanned out over the pool, then the
   calling domain evaluates [continue_] at the barrier and either starts
   the next round or stops. Claiming is at shard granularity: each
   participant first runs the shards it is home to (s mod jobs), then
   steals whatever is still unclaimed, lowest shard first — a claim by a
   non-home participant is a steal. Because every shard runs exactly
   once per round whoever claims it, scheduling (and stealing) can never
   leak into results — only into wall-clock and the steal count. *)
module Shards = struct
  type stats = { rounds : int; steals : int }

  let run ?pool ~shards ~step ~continue_ () =
    if shards < 1 then invalid_arg "Par.Shards.run: shards must be >= 1";
    let jobs = effective_jobs pool in
    let rounds = ref 0 in
    let steals = Atomic.make 0 in
    let failure = Atomic.make None in
    let claimed = Array.init shards (fun _ -> Atomic.make false) in
    let who = Atomic.make 0 in
    let round_body () =
      let me = Atomic.fetch_and_add who 1 in
      let do_shard s ~stolen =
        if
          Option.is_none (Atomic.get failure)
          && Atomic.compare_and_set claimed.(s) false true
        then begin
          if stolen then begin
            Atomic.incr steals;
            Obs.Flight.mark ph_steal
          end;
          try step s with e -> record_failure failure e
        end
      in
      let s = ref me in
      while !s < shards do
        do_shard !s ~stolen:false;
        s := !s + jobs
      done;
      for s = 0 to shards - 1 do
        do_shard s ~stolen:true
      done
    in
    let continue_now = ref true in
    while !continue_now do
      incr rounds;
      Obs.Metrics.Counter.incr m_shard_rounds;
      Atomic.set who 0;
      Array.iter (fun c -> Atomic.set c false) claimed;
      (match pool with
       | Some p when Pool.jobs p > 1 ->
         Pool.run p ~leader:round_body ~worker:round_body
       | _ ->
         (* No pool (or a one-domain pool): plain in-order sweep, no
            claim traffic. *)
         (try
            for s = 0 to shards - 1 do
              step s
            done
          with e -> record_failure failure e));
      reraise_failure failure;
      continue_now := continue_ ()
    done;
    Obs.Metrics.Counter.add m_steals (Atomic.get steals);
    { rounds = !rounds; steals = Atomic.get steals }
end

(* Adaptive chunk sizing: ~8 chunks per worker bound the claim-counter
   contention; the 256 cap keeps cancellation latency low on big ranges;
   the min-grain floor keeps small batches from splintering into tasks
   so short that waking a domain costs more than the work it is handed.
   A batch at or under one grain never reaches the pool at all (see
   [map_range]). *)
let min_grain = 32

let chunk_size ~chunk ~n ~jobs =
  match chunk with
  | Some c -> max 1 c
  | None -> max 1 (min 256 (max min_grain ((n + (8 * jobs) - 1) / (8 * jobs))))

let map_range ?pool ?cancel ?chunk ~lo ~hi f =
  let n = hi - lo in
  if n < 0 then invalid_arg "Par.map_range: hi < lo";
  let jobs = effective_jobs pool in
  let cancelled () =
    match cancel with None -> false | Some c -> Cancel.is_set c
  in
  Obs.Metrics.Counter.incr m_tasks;
  Obs.Metrics.Gauge.set g_jobs (float_of_int jobs);
  let chunk = chunk_size ~chunk ~n ~jobs in
  let n_chunks = (n + chunk - 1) / chunk in
  let sequential () =
    let out = Array.make n None in
    let i = ref lo in
    while !i < hi do
      if cancelled () then raise Cancelled;
      let stop = min hi (!i + chunk) in
      for k = !i to stop - 1 do
        out.(k - lo) <- Some (f k)
      done;
      Obs.Metrics.Counter.incr m_chunks;
      i := stop
    done;
    Array.map (function Some v -> v | None -> assert false) out
  in
  if n = 0 then [||]
  else if jobs = 1 || n_chunks <= 1 then
    (* A single chunk has no parallelism to claim: run it on the caller
       and leave the pool asleep — the result is index-keyed either
       way, so this changes no output. *)
    sequential ()
  else begin
    let pool = Option.get pool in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let out = Array.make n None in
    (* Leader and workers run the same claim loop; results land at their
       index, so who computes what is irrelevant to the output. *)
    let body () =
      let rec claim () =
        if Option.is_none (Atomic.get failure) && not (cancelled ()) then begin
          let c = Atomic.fetch_and_add next 1 in
          if c < n_chunks then begin
            let start = lo + (c * chunk) in
            let stop = min hi (start + chunk) in
            (try
               for k = start to stop - 1 do
                 out.(k - lo) <- Some (f k)
               done;
               Obs.Metrics.Counter.incr m_chunks
             with e -> record_failure failure e);
            claim ()
          end
        end
      in
      claim ()
    in
    Pool.run pool ~leader:body ~worker:body;
    reraise_failure failure;
    if cancelled () && Array.exists Option.is_none out then begin
      Obs.Metrics.Counter.incr m_cancelled;
      raise Cancelled
    end;
    Array.map (function Some v -> v | None -> assert false) out
  end

type 'acc step =
  | Continue of 'acc
  | Stop of 'acc

let fold_until ?pool ?chunk ~lo ~hi ~f ~init ~step () =
  let n = hi - lo in
  if n < 0 then invalid_arg "Par.fold_until: hi < lo";
  let jobs = effective_jobs pool in
  Obs.Metrics.Counter.incr m_tasks;
  Obs.Metrics.Gauge.set g_jobs (float_of_int jobs);
  if n = 0 then (init, 0)
  else if jobs = 1 then begin
    (* Sequential: no speculation, the reference semantics. *)
    let rec go acc k =
      if k >= hi then (acc, n)
      else
        match step acc k (f k) with
        | Continue acc -> go acc (k + 1)
        | Stop acc -> (acc, k - lo + 1)
    in
    go init lo
  end
  else begin
    let pool = Option.get pool in
    let chunk = chunk_size ~chunk ~n ~jobs in
    let n_chunks = (n + chunk - 1) / chunk in
    (* Workers speculate at most [window] chunks beyond the consumption
       point, bounding wasted samples after an early stop. *)
    let window = 4 * jobs in
    let next = Atomic.make 0 in
    let consumed = Atomic.make 0 in
    let stopped = Atomic.make false in
    let failure = Atomic.make None in
    let out = Array.make n None in
    let ready = Array.init n_chunks (fun _ -> Atomic.make false) in
    let compute c =
      let start = lo + (c * chunk) in
      let stop = min hi (start + chunk) in
      (try
         for k = start to stop - 1 do
           out.(k - lo) <- Some (f k)
         done;
         Obs.Metrics.Counter.incr m_chunks
       with e ->
         record_failure failure e;
         Atomic.set stopped true);
      (* The Atomic.set publishes the chunk's plain writes to the
         consuming domain (release/acquire). *)
      Atomic.set ready.(c) true
    in
    let worker () =
      let rec loop () =
        if not (Atomic.get stopped) && Option.is_none (Atomic.get failure) then begin
          let peek = Atomic.get next in
          if peek < n_chunks then
            if peek >= Atomic.get consumed + window then begin
              Domain.cpu_relax ();
              loop ()
            end
            else begin
              let c = Atomic.fetch_and_add next 1 in
              if c < n_chunks then begin
                compute c;
                loop ()
              end
            end
        end
      in
      loop ()
    in
    let acc = ref init in
    let n_consumed = ref 0 in
    let leader () =
      Fun.protect
        ~finally:(fun () ->
          (* Release window-waiting workers whatever ended the fold. *)
          Atomic.set stopped true)
        (fun () ->
          let rec wait_ready c =
            if (not (Atomic.get ready.(c))) && Option.is_none (Atomic.get failure) then begin
              (* Help compute if the needed chunk is still unclaimed;
                 otherwise a worker has it in flight — spin briefly. *)
              if Atomic.get next <= c then begin
                let c' = Atomic.fetch_and_add next 1 in
                if c' < n_chunks then compute c'
              end
              else Domain.cpu_relax ();
              wait_ready c
            end
          in
          let value k =
            match out.(k - lo) with Some v -> v | None -> assert false
          in
          let rec consume c =
            if c < n_chunks && Option.is_none (Atomic.get failure) then begin
              wait_ready c;
              if Option.is_none (Atomic.get failure) then begin
                let start = lo + (c * chunk) in
                let stop = min hi (start + chunk) in
                let rec eat k =
                  if k >= stop then true
                  else
                    match step !acc k (value k) with
                    | Continue a ->
                      acc := a;
                      incr n_consumed;
                      eat (k + 1)
                    | Stop a ->
                      acc := a;
                      incr n_consumed;
                      false
                in
                if eat start then begin
                  Atomic.incr consumed;
                  consume (c + 1)
                end
              end
            end
          in
          consume 0)
    in
    Pool.run pool ~leader ~worker;
    reraise_failure failure;
    (* Chunks computed speculatively past the stop point were wasted. *)
    let done_chunks =
      Array.fold_left
        (fun acc r -> if Atomic.get r then acc + 1 else acc)
        0 ready
    in
    let consumed_chunks = (!n_consumed + chunk - 1) / chunk in
    if done_chunks > consumed_chunks then
      Obs.Metrics.Counter.add m_spec_discarded (done_chunks - consumed_chunks);
    (!acc, !n_consumed)
  end
