(** Deterministic domain-pool parallel execution.

    The statistical backends (UPPAAL-SMC sampling, the [modes]
    simulator) are Monte-Carlo engines whose runs are independent and
    individually seeded, so they parallelise without changing any
    result: work is fanned out over {e index ranges} and every result is
    keyed by its index, never by completion order. The two combinators
    below guarantee that the observable outcome for a given input is
    identical whatever the pool size or the scheduling — [jobs:4] is
    bit-for-bit the same as [jobs:1], only faster.

    Pools are created once and reused across workloads ({!Pool.create}
    spawns [jobs - 1] long-lived worker domains; the submitting domain
    is the [jobs]-th worker). One task runs at a time per pool; pools
    must be driven from a single domain and must not be used from inside
    one of their own tasks. *)

(** Raised by {!map_range} when its cancellation token was set before
    every index was computed. *)
exception Cancelled

(** Cooperative cancellation: a token shared between the submitter and
    the workers, checked at chunk boundaries. *)
module Cancel : sig
  type t

  (** [create ?deadline_at ()] — a fresh token. With [deadline_at] (an
      absolute [Unix.gettimeofday] time), {!is_set} also answers true
      once the wall clock passes the deadline, so a token enforces a
      per-request time budget without anyone calling {!set}: the workers
      themselves observe the expiry at their next chunk boundary. *)
  val create : ?deadline_at:float -> unit -> t

  (** Request cancellation (idempotent, domain-safe). *)
  val set : t -> unit

  val is_set : t -> bool

  (** The absolute deadline the token was created with, if any. *)
  val deadline_at : t -> float option
end

module Pool : sig
  type t

  (** [create ~jobs] spawns [jobs - 1] worker domains that block until
      work is submitted. [jobs = 1] is the sequential pool: no domains,
      every combinator degenerates to an ordinary loop.
      @raise Invalid_argument when [jobs < 1]. *)
  val create : jobs:int -> t

  val jobs : t -> int

  (** Stop and join the worker domains. The pool must not be used
      afterwards. Idempotent. *)
  val shutdown : t -> unit

  (** [with_pool ~jobs f] — [f] over a fresh pool, shut down on exit
      (also on exceptions). *)
  val with_pool : jobs:int -> (t -> 'a) -> 'a

  (** Low-level: run [worker] on every pooled domain and [leader] on the
      calling domain, returning when all have finished. [worker] must
      not raise (capture into shared state instead); a [leader]
      exception is re-raised after the workers drained. Building block
      for the combinators below; prefer those. *)
  val run : t -> leader:(unit -> unit) -> worker:(unit -> unit) -> unit
end

(** Growable FIFO buffer for cross-shard hand-off in {!Shards} rounds.
    A box must have exactly one writer per round and exactly one reader
    in the next round, with a {!Shards.run} barrier in between — that
    barrier is the only synchronisation a box relies on. The high-water
    mark records the largest backlog the box ever held, so benches can
    report realised mailbox pressure ([mailbox_hwm]). *)
module Mailbox : sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit
  val length : 'a t -> int

  (** Largest {!length} ever reached (not reset by {!clear}). *)
  val hwm : 'a t -> int

  (** Iterate in push (FIFO) order. *)
  val iter : ('a -> unit) -> 'a t -> unit

  (** Forget the contents, keeping the capacity. *)
  val clear : 'a t -> unit
end

(** Barrier-synchronised sharded rounds with shard-granularity work
    stealing — the execution skeleton of the parallel exploration
    engine. Every round runs [step s] exactly once per shard, fanned
    out over the pool (each participant runs its home shards
    [s mod jobs] first, then steals unclaimed ones); the calling domain
    evaluates [continue_] at the round barrier, where all shard steps
    of the round happened-before. Scheduling decides only who runs a
    shard, never what the shard computes, so results are identical for
    every pool size. *)
module Shards : sig
  type stats = {
    rounds : int;  (** rounds executed (deterministic) *)
    steals : int;
        (** shard steps run by a non-home participant — a scheduling
            observable (varies run to run), never part of results *)
  }

  (** [run ?pool ~shards ~step ~continue_ ()] — rounds of [step] until
      [continue_] answers false at a barrier. [step s] may touch shard
      [s]'s state and its outboxes only; [continue_] runs on the
      calling domain while the pool is quiescent. A [step] exception is
      re-raised on the caller after the round drains.
      @raise Invalid_argument when [shards < 1]. *)
  val run :
    ?pool:Pool.t ->
    shards:int ->
    step:(int -> unit) ->
    continue_:(unit -> bool) ->
    unit ->
    stats
end

(** [map_range ~pool ~lo ~hi f] is [[| f lo; ...; f (hi-1) |]], computed
    in parallel chunks. Results are placed by index, so the returned
    array is independent of scheduling; [f] must be safe to call
    concurrently from several domains (pure, or touching only atomic /
    per-call state).

    The first exception some [f i] raises is captured and re-raised in
    the caller (with its backtrace) once the workers have drained;
    remaining chunks are abandoned. If [cancel] is set before every
    index was computed, outstanding chunks are abandoned and
    {!Cancelled} is raised — a token set only after the last index
    still returns the full array.

    [chunk] is the number of consecutive indices a worker claims at a
    time (default: adaptive — the range split ~8 ways per worker,
    clamped between a 32-index grain and 256). A batch that fits in one
    chunk runs on the caller without waking the pool: on small batches
    the domain wake-up would cost more than the work it hands out. *)
val map_range :
  ?pool:Pool.t ->
  ?cancel:Cancel.t ->
  ?chunk:int ->
  lo:int ->
  hi:int ->
  (int -> 'a) ->
  'a array

(** Verdict of one {!fold_until} consumption step. *)
type 'acc step =
  | Continue of 'acc
  | Stop of 'acc

(** [fold_until ~pool ~lo ~hi ~f ~init ~step ()] folds [step] over
    [f lo], [f (lo+1)], ... {e strictly in index order} until [step]
    returns [Stop] or the range is exhausted, returning the final
    accumulator and the number of indices consumed.

    With a pool, workers compute [f] speculatively ahead of the fold
    (bounded to a few chunks beyond the consumption point) while the
    calling domain consumes the ready prefix; once [Stop] is reached the
    outstanding chunks are cancelled and their speculative results
    discarded. Because consumption order is the index order and [f i]
    depends only on [i], the result is identical to the sequential fold
    for every pool size — this is how SPRT hypothesis testing samples in
    parallel yet returns the sequential verdict. *)
val fold_until :
  ?pool:Pool.t ->
  ?chunk:int ->
  lo:int ->
  hi:int ->
  f:(int -> 'a) ->
  init:'acc ->
  step:('acc -> int -> 'a -> 'acc step) ->
  unit ->
  'acc * int
