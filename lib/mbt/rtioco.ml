module Digital = Discrete.Digital
module Model = Ta.Model

type timed_iut = {
  ti_reset : unit -> unit;
  ti_input : string -> unit;
  ti_tick : unit -> string option;
}

type verdict = T_pass of int | T_fail of { round : int; reason : string }

(* Channel emitted by an action move, if any. *)
let move_channel (mv : Ta.Zone_graph.move) =
  let rec scan = function
    | [] -> None
    | (_, (e : Model.edge)) :: rest -> (
        match e.Model.sync with
        | Model.Emit c -> Some c.Model.chan_name
        | Model.Receive _ | Model.Tau -> scan rest)
  in
  scan mv.Ta.Zone_graph.participants

type ctx = {
  graph : Digital.graph;
  observable : (string, unit) Hashtbl.t;
}

let make_ctx net ~inputs ~outputs =
  let graph = Digital.explore net in
  let observable = Hashtbl.create 8 in
  List.iter (fun a -> Hashtbl.replace observable a ()) (inputs @ outputs);
  { graph; observable }

let id_of ctx st = Digital.id_of ctx.graph st

(* Close a set of state ids under unobservable (internal) actions. *)
let tau_closure ctx ids =
  let seen = Hashtbl.create 64 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      List.iter
        (fun (t : Digital.dtrans) ->
          match t.Digital.kind with
          | `Act mv ->
            let internal =
              match move_channel mv with
              | None -> true
              | Some c -> not (Hashtbl.mem ctx.observable c)
            in
            if internal then visit (id_of ctx t.Digital.target)
          | `Delay -> ())
        ctx.graph.Digital.transitions.(id)
    end
  in
  List.iter visit ids;
  List.sort_uniq compare (Hashtbl.fold (fun id () acc -> id :: acc) seen [])

let apply_channel ctx ids chan =
  let next =
    List.concat_map
      (fun id ->
        List.filter_map
          (fun (t : Digital.dtrans) ->
            match t.Digital.kind with
            | `Act mv when move_channel mv = Some chan ->
              Some (id_of ctx t.Digital.target)
            | `Act _ | `Delay -> None)
          ctx.graph.Digital.transitions.(id))
      ids
  in
  tau_closure ctx next

let apply_delay ctx ids =
  let next =
    List.filter_map
      (fun id ->
        List.find_map
          (fun (t : Digital.dtrans) ->
            match t.Digital.kind with
            | `Delay -> Some (id_of ctx t.Digital.target)
            | `Act _ -> None)
          ctx.graph.Digital.transitions.(id))
      ids
  in
  tau_closure ctx next

let channel_enabled ctx id chan =
  List.exists
    (fun (t : Digital.dtrans) ->
      match t.Digital.kind with
      | `Act mv -> move_channel mv = Some chan
      | `Delay -> false)
    ctx.graph.Digital.transitions.(id)

let test net ~inputs ~outputs ~rounds ~seed iut =
  ignore outputs;
  let ctx = make_ctx net ~inputs ~outputs in
  let rng = Random.State.make [| seed |] in
  iut.ti_reset ();
  let estimate = ref (tau_closure ctx [ 0 ]) in
  let verdict = ref None in
  let round = ref 0 in
  while !verdict = None && !round < rounds do
    incr round;
    (* Inputs the estimate uniformly allows (conservative injection). *)
    let injectable =
      List.filter
        (fun a -> List.for_all (fun id -> channel_enabled ctx id a) !estimate)
        inputs
    in
    let inject = injectable <> [] && Random.State.bool rng in
    if inject then begin
      let a = List.nth injectable (Random.State.int rng (List.length injectable)) in
      iut.ti_input a;
      estimate := apply_channel ctx !estimate a;
      if !estimate = [] then
        verdict :=
          Some (T_fail { round = !round; reason = "estimate lost after input " ^ a })
    end
    else begin
      match iut.ti_tick () with
      | Some o ->
        estimate := apply_channel ctx !estimate o;
        if !estimate = [] then
          verdict :=
            Some (T_fail { round = !round; reason = "unexpected output " ^ o })
      | None ->
        estimate := apply_delay ctx !estimate;
        if !estimate = [] then
          verdict :=
            Some
              (T_fail
                 { round = !round; reason = "silent past the spec's deadline" })
    end
  done;
  match !verdict with Some v -> v | None -> T_pass rounds

(* A conforming IUT: a random walk over the spec's own digital graph. *)
let spec_iut net ~outputs ~seed =
  let graph = Digital.explore net in
  let id_of st = Digital.id_of graph st in
  let rng = Random.State.make [| seed |] in
  let state = ref 0 in
  let is_output c = List.mem c outputs in
  let pick xs =
    match xs with
    | [] -> None
    | _ -> Some (List.nth xs (Random.State.int rng (List.length xs)))
  in
  let trans_of id = graph.Digital.transitions.(id) in
  let acts id =
    List.filter_map
      (fun (t : Digital.dtrans) ->
        match t.Digital.kind with
        | `Act mv -> Some (move_channel mv, id_of t.Digital.target)
        | `Delay -> None)
      (trans_of id)
  in
  let delay id =
    List.find_map
      (fun (t : Digital.dtrans) ->
        match t.Digital.kind with
        | `Delay -> Some (id_of t.Digital.target)
        | `Act _ -> None)
      (trans_of id)
  in
  {
    ti_reset = (fun () -> state := 0);
    ti_input =
      (fun a ->
        match
          pick (List.filter (fun (c, _) -> c = Some a) (acts !state))
        with
        | Some (_, dst) -> state := dst
        | None -> () (* input-enabled completion: ignore *));
    ti_tick =
      (fun () ->
        (* Sometimes emit an enabled output now; otherwise let time pass,
           firing forced actions when the invariant blocks delay. *)
        let outputs_now =
          List.filter
            (fun (c, _) -> match c with Some c -> is_output c | None -> false)
            (acts !state)
        in
        let emit_now = outputs_now <> [] && Random.State.int rng 3 = 0 in
        if emit_now then begin
          match pick outputs_now with
          | Some (Some c, dst) ->
            state := dst;
            Some c
          | Some (None, _) | None -> None
        end
        else begin
          match delay !state with
          | Some dst ->
            state := dst;
            None
          | None -> (
              (* Time cannot pass: a forced action fires. *)
              match pick (acts !state) with
              | Some (c, dst) ->
                state := dst;
                (match c with Some c when is_output c -> Some c | _ -> None)
              | None -> None)
        end);
  }

let mute_iut inner =
  {
    ti_reset = inner.ti_reset;
    ti_input = inner.ti_input;
    ti_tick =
      (fun () ->
        ignore (inner.ti_tick ());
        None);
  }

let noisy_iut inner ~wrong ~every =
  let count = ref 0 in
  {
    ti_reset =
      (fun () ->
        count := 0;
        inner.ti_reset ());
    ti_input = inner.ti_input;
    ti_tick =
      (fun () ->
        match inner.ti_tick () with
        | Some o ->
          incr count;
          if !count mod every = 0 then Some wrong else Some o
        | None -> None);
  }
