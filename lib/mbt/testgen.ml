type test =
  | Pass
  | Fail
  | Stimulate of string * test
  | Observe of (Lts.obs * test) list

(* Tretmans' generation: from the current suspension set, either stop,
   stimulate an enabled input, or observe — with a Fail branch for every
   observation the specification forbids. *)
let generate spec ~rng ~depth =
  let alphabet_out = Lts.outputs spec in
  let rec gen set depth =
    if depth = 0 then Pass
    else begin
      let inputs = Lts.inputs_enabled_in spec set in
      let stimulate = inputs <> [] && Random.State.bool rng in
      if stimulate then begin
        let a = List.nth inputs (Random.State.int rng (List.length inputs)) in
        Stimulate (a, gen (Lts.after_input spec set a) (depth - 1))
      end
      else begin
        let allowed = Lts.out_set spec set in
        let branch o =
          if List.mem o allowed then (o, gen (Lts.after_obs spec set o) (depth - 1))
          else (o, Fail)
        in
        Observe (List.map branch (List.map (fun a -> Lts.Out a) alphabet_out @ [ Lts.Delta ]))
      end
    end
  in
  gen (Lts.initial_set spec) depth

let generate_suite spec ~seed ~count ~depth =
  List.init count (fun k ->
      generate spec ~rng:(Random.State.make [| seed; k |]) ~depth)

let rec size = function
  | Pass | Fail -> 0
  | Stimulate (_, t) -> 1 + size t
  | Observe branches ->
    1 + List.fold_left (fun acc (_, t) -> acc + size t) 0 branches

(* Systematic enumeration via schedules: a schedule is a sequence over
   {observe} + inputs; at each level the test either stimulates the
   scheduled input (where enabled) or observes, uniformly across all
   observation branches. Enumerating all (|inputs|+1)^depth schedules
   interleaves stimulation and observation arbitrarily, which makes the
   suite transition-complete on the spec and exhaustive in the limit. *)
let generate_all ?(max_tests = 10_000) spec ~depth =
  let alphabet_out = Lts.outputs spec in
  let choices = None :: List.map (fun a -> Some a) (Lts.inputs spec) in
  let rec build set schedule =
    match schedule with
    | [] -> Pass
    | Some a :: rest ->
      let next = Lts.after_input spec set a in
      if next = [] then Pass else Stimulate (a, build next rest)
    | None :: rest ->
      let allowed = Lts.out_set spec set in
      let branch o =
        if List.mem o allowed then (o, build (Lts.after_obs spec set o) rest)
        else (o, Fail)
      in
      Observe
        (List.map branch
           (List.map (fun a -> Lts.Out a) alphabet_out @ [ Lts.Delta ]))
  in
  let acc = ref [] and count = ref 0 in
  let exception Enough in
  let rec schedules prefix d =
    if d = 0 then begin
      incr count;
      if !count > max_tests then raise Enough;
      acc := build (Lts.initial_set spec) (List.rev prefix) :: !acc
    end
    else List.iter (fun c -> schedules (c :: prefix) (d - 1)) choices
  in
  (try schedules [] depth with Enough -> ());
  List.rev !acc

(* Transition coverage: walk every test over the spec's suspension sets,
   marking the concrete transitions each step can exercise. *)
let coverage spec tests =
  let covered = Hashtbl.create 256 in
  let mark s l s' = Hashtbl.replace covered (s, l, s') () in
  let rec walk set t =
    match t with
    | Pass | Fail -> ()
    | Stimulate (a, k) ->
      List.iter
        (fun s ->
          List.iter
            (fun (l, s') -> if l = Lts.Input a then mark s l s')
            (Lts.transitions_from spec s))
        set;
      walk (Lts.after_input spec set a) k
    | Observe branches ->
      List.iter
        (fun (o, k) ->
          match o with
          | Lts.Out a ->
            let next = Lts.after_obs spec set o in
            if next <> [] then begin
              List.iter
                (fun s ->
                  List.iter
                    (fun (l, s') -> if l = Lts.Output a then mark s l s')
                    (Lts.transitions_from spec s))
                set;
              walk next k
            end
          | Lts.Delta ->
            let next = Lts.after_obs spec set o in
            if next <> [] then walk next k)
        branches
  in
  List.iter (fun t -> walk (Lts.initial_set spec) t) tests;
  let total = ref 0 in
  for s = 0 to Lts.n_states spec - 1 do
    List.iter
      (fun (l, _) -> match l with Lts.Tau -> () | _ -> incr total)
      (Lts.transitions_from spec s)
  done;
  if !total = 0 then 1.0
  else float_of_int (Hashtbl.length covered) /. float_of_int !total

type iut = {
  reset : unit -> unit;
  stimulate : string -> unit;
  observe : unit -> Lts.obs;
}

type verdict = V_pass | V_fail

(* Test-runner instruments: stimuli and observations are split by the
   verdict of the execution they belong to, so a report shows how much
   interaction each verdict class cost. *)
let m_executions = Obs.counter "mbt.executions"
let m_pass = Obs.counter "mbt.verdict_pass"
let m_fail = Obs.counter "mbt.verdict_fail"
let m_stimuli_pass = Obs.counter "mbt.stimuli.pass"
let m_stimuli_fail = Obs.counter "mbt.stimuli.fail"
let m_obs_pass = Obs.counter "mbt.observations.pass"
let m_obs_fail = Obs.counter "mbt.observations.fail"
let m_events_per_test = Obs.histogram "mbt.events_per_test"

let execute test iut =
  iut.reset ();
  let stimuli = ref 0 and observations = ref 0 in
  let rec walk = function
    | Pass -> V_pass
    | Fail -> V_fail
    | Stimulate (a, k) ->
      incr stimuli;
      iut.stimulate a;
      walk k
    | Observe branches -> (
        incr observations;
        let o = iut.observe () in
        match List.assoc_opt o branches with
        | Some k -> walk k
        | None -> V_fail (* unlisted observation: alphabet violation *))
  in
  let verdict = walk test in
  Obs.Metrics.Counter.incr m_executions;
  (match verdict with
   | V_pass ->
     Obs.Metrics.Counter.incr m_pass;
     Obs.Metrics.Counter.add m_stimuli_pass !stimuli;
     Obs.Metrics.Counter.add m_obs_pass !observations
   | V_fail ->
     Obs.Metrics.Counter.incr m_fail;
     Obs.Metrics.Counter.add m_stimuli_fail !stimuli;
     Obs.Metrics.Counter.add m_obs_fail !observations);
  Obs.Metrics.Histogram.observe m_events_per_test
    (float_of_int (!stimuli + !observations));
  verdict

let run_suite tests iut ~repetitions =
  Obs.Span.with_ ~name:"mbt.suite" @@ fun () ->
  let passes = ref 0 and fails = ref 0 in
  List.iter
    (fun t ->
      let failed = ref false in
      for _ = 1 to repetitions do
        if execute t iut = V_fail then failed := true
      done;
      if !failed then incr fails else incr passes)
    tests;
  (!passes, !fails)

(* A simulated IUT over an LTS: it keeps a concrete state (resolving
   internal/output nondeterminism with its own RNG). Inputs it cannot
   take are silently ignored (input-enabled completion), matching the
   testing hypothesis. *)
let lts_iut impl ~seed =
  let rng = Random.State.make [| seed |] in
  let state = ref (Lts.start impl) in
  let pick xs =
    match xs with
    | [] -> None
    | _ -> Some (List.nth xs (Random.State.int rng (List.length xs)))
  in
  (* Follow a random chain of taus (the IUT runs autonomously). *)
  let rec settle () =
    let taus =
      List.filter_map
        (fun (l, d) -> if l = Lts.Tau then Some d else None)
        (Lts.transitions_from impl !state)
    in
    match pick taus with
    | Some d when Random.State.bool rng ->
      state := d;
      settle ()
    | Some _ | None -> ()
  in
  {
    reset =
      (fun () ->
        state := Lts.start impl;
        settle ());
    stimulate =
      (fun a ->
        settle ();
        let succ =
          List.filter_map
            (fun (l, d) -> if l = Lts.Input a then Some d else None)
            (Lts.transitions_from impl !state)
        in
        (match pick succ with Some d -> state := d | None -> ());
        settle ());
    observe =
      (fun () ->
        settle ();
        (* Prefer emitting an output when one exists; tau-step towards
           outputs when the current state is silent but not quiescent. *)
        let rec try_observe fuel =
          let outs =
            List.filter_map
              (fun (l, d) ->
                match l with Lts.Output a -> Some (a, d) | Lts.Input _ | Lts.Tau -> None)
              (Lts.transitions_from impl !state)
          in
          match pick outs with
          | Some (a, d) ->
            state := d;
            Lts.Out a
          | None ->
            let taus =
              List.filter_map
                (fun (l, d) -> if l = Lts.Tau then Some d else None)
                (Lts.transitions_from impl !state)
            in
            (match pick taus with
             | Some d when fuel > 0 ->
               state := d;
               try_observe (fuel - 1)
             | Some _ | None -> Lts.Delta)
        in
        try_observe 32);
  }
