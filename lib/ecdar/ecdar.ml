module Digital = Discrete.Digital
module Model = Ta.Model

type t = {
  net : Model.network;
  inputs : string list;
  outputs : string list;
}

let move_channel (mv : Ta.Zone_graph.move) =
  let rec scan = function
    | [] -> None
    | (_, (e : Model.edge)) :: rest -> (
        match e.Model.sync with
        | Model.Emit c -> Some c.Model.chan_name
        | Model.Receive _ | Model.Tau -> scan rest)
  in
  scan mv.Ta.Zone_graph.participants

let make net ~inputs ~outputs =
  if not (Digital.is_closed net) then
    invalid_arg "Ecdar.make: specification must be closed and diagonal-free";
  let t = { net; inputs; outputs } in
  (* Every move must carry an observable channel. *)
  let graph = Digital.explore net in
  Array.iter
    (fun ts ->
      List.iter
        (fun (tr : Digital.dtrans) ->
          match tr.Digital.kind with
          | `Delay -> ()
          | `Act mv -> (
              match move_channel mv with
              | Some c when List.mem c inputs || List.mem c outputs -> ()
              | Some c ->
                invalid_arg
                  (Printf.sprintf "Ecdar.make: channel %s not in the alphabet" c)
              | None ->
                invalid_arg "Ecdar.make: unobservable (tau) moves unsupported"))
        ts)
    graph.Digital.transitions;
  t

(* Per-state successor map: delay successor and (channel -> targets). *)
type view = {
  n : int;
  delay : int option array;
  by_chan : (string, int list) Hashtbl.t array;
}

let view_of spec =
  let graph = Digital.explore spec.net in
  let id_of st = Digital.id_of graph st in
  let n = Array.length graph.Digital.states in
  let delay = Array.make n None in
  let by_chan = Array.init n (fun _ -> Hashtbl.create 4) in
  Array.iteri
    (fun i ts ->
      List.iter
        (fun (tr : Digital.dtrans) ->
          let tid = id_of tr.Digital.target in
          match tr.Digital.kind with
          | `Delay -> delay.(i) <- Some tid
          | `Act mv -> (
              match move_channel mv with
              | Some c ->
                let old = try Hashtbl.find by_chan.(i) c with Not_found -> [] in
                Hashtbl.replace by_chan.(i) c (tid :: old)
              | None -> ()))
        ts)
    graph.Digital.transitions;
  { n; delay; by_chan }

type refinement_result = {
  refines : bool;
  checked_pairs : int;
  witness : string option;
}

let refines ~impl ~spec =
  if
    List.sort compare impl.inputs <> List.sort compare spec.inputs
    || List.sort compare impl.outputs <> List.sort compare spec.outputs
  then invalid_arg "Ecdar.refines: alphabets differ";
  let vi = view_of impl and vs = view_of spec in
  let succ_chan (v : view) s c =
    try Hashtbl.find v.by_chan.(s) c with Not_found -> []
  in
  (* Greatest fixpoint over the full pair space (bitset indexed s*ns+t),
     then membership of the initial pair decides refinement. *)
  let related = Array.make (vi.n * vs.n) true in
  let idx s t = (s * vs.n) + t in
  let witness = ref None in
  let note w = if !witness = None then witness := Some w in
  let violates s t =
    (* Implementation delay must be matched. *)
    (match vi.delay.(s) with
     | Some s' -> (
         match vs.delay.(t) with
         | Some t' -> if not related.(idx s' t') then (note "delay obligation"; true) else false
         | None ->
           note "impl delays where spec cannot";
           true)
     | None -> false)
    ||
    (* Implementation outputs must be matched. *)
    List.exists
      (fun o ->
        List.exists
          (fun s' ->
            let matched =
              List.exists (fun t' -> related.(idx s' t')) (succ_chan vs t o)
            in
            if not matched then note (Printf.sprintf "output %s! unmatched" o);
            not matched)
          (succ_chan vi s o))
      impl.outputs
    ||
    (* Specification inputs must be admitted. *)
    List.exists
      (fun i ->
        List.exists
          (fun t' ->
            let matched =
              List.exists (fun s' -> related.(idx s' t')) (succ_chan vi s i)
            in
            if not matched then note (Printf.sprintf "input %s? refused" i);
            not matched)
          (succ_chan vs t i))
      impl.inputs
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for s = 0 to vi.n - 1 do
      for t = 0 to vs.n - 1 do
        if related.(idx s t) && violates s t then begin
          related.(idx s t) <- false;
          changed := true
        end
      done
    done
  done;
  let ok = related.(idx 0 0) in
  {
    refines = ok;
    checked_pairs = vi.n * vs.n;
    witness = (if ok then None else !witness);
  }

(* Structural composition: merged network; a channel that is one side's
   output and the other's input becomes internal communication but stays
   observable as the emitter's output (TIOA composition). Output sets
   must be disjoint. *)
let compose a b =
  let overlap =
    List.filter (fun o -> List.mem o b.outputs) a.outputs
  in
  if overlap <> [] then
    invalid_arg
      (Printf.sprintf "Ecdar.compose: shared output %s" (List.hd overlap));
  let net = Ta.Model.union a.net b.net in
  let outputs = a.outputs @ b.outputs in
  let inputs =
    List.filter
      (fun i -> not (List.mem i outputs))
      (List.sort_uniq compare (a.inputs @ b.inputs))
  in
  make net ~inputs ~outputs

(* Logical composition (conjunction) is used through its characteristic
   property on deterministic specifications: u refines (a AND b) iff u
   refines both. *)
let refines_conjunction ~impl ~specs =
  List.for_all (fun spec -> (refines ~impl ~spec).refines) specs

let consistent spec =
  let v = view_of spec in
  let ok = ref true in
  for s = 0 to v.n - 1 do
    let has_move = Hashtbl.length v.by_chan.(s) > 0 in
    if v.delay.(s) = None && not has_move then ok := false
  done;
  !ok
