(** Stochastic semantics of timed-automata networks (UPPAAL-SMC).

    Following Section II of the paper: each component independently picks
    a delay — {e exponential} with a per-location rate when its location
    has no invariant upper bound, {e uniform} over the window left by
    guards and the invariant otherwise — and the component with the
    shortest delay moves, choosing uniformly among its enabled output or
    internal edges; receivers are passive and chosen uniformly.
    Committed/urgent locations and enabled urgent synchronisations force
    zero delay. *)

type config = {
  rates : int -> int -> float;
      (** [rates auto loc] — exponential rate for invariant-free
          locations (default 1.0). *)
}

val default_config : config

(** Concrete run state. *)
type cstate = {
  clocs : int array;
  cstore : int array;
  cclocks : float array; (* index 0 unused *)
  ctime : float;
}

val initial_cstate : Ta.Model.network -> cstate

(** [step net cfg rng st] performs one race: delay + winning action.
    [None] when no component can ever act again (the run is stuck). *)
val step :
  Ta.Model.network -> config -> Random.State.t -> cstate -> cstate option

(** [simulate net cfg rng ~horizon ~stop] runs until [stop] holds, the
    time horizon passes, or the run gets stuck. Returns the final state
    and [Some t] with the hitting time when [stop] was reached. *)
val simulate :
  Ta.Model.network ->
  config ->
  Random.State.t ->
  horizon:float ->
  stop:(cstate -> bool) ->
  cstate * float option

(** [hitting_times net cfg ~seed ~runs ~horizon ~stop] collects one
    optional hitting time per run. Run [k] draws from the stream
    [Random.State.make [| seed; k |]], so the result array depends only
    on [seed] — with or without a [pool] the bytes are identical.
    [cancel] aborts the batch at the next chunk boundary (deadline
    tokens included), raising {!Par.Cancelled}. *)
val hitting_times :
  ?pool:Par.Pool.t ->
  ?cancel:Par.Cancel.t ->
  Ta.Model.network ->
  config ->
  seed:int ->
  runs:int ->
  horizon:float ->
  stop:(cstate -> bool) ->
  float option array
