type interval = { p_hat : float; low : float; high : float; trials : int }

(* Normal quantile for the two-sided confidence level, via a bisection on
   the complementary error function (no special-function dependency). *)
let z_of_confidence confidence =
  let target = (1.0 +. confidence) /. 2.0 in
  (* Standard normal CDF via Abramowitz-Stegun 7.1.26 erf approximation. *)
  let phi x =
    let t = 1.0 /. (1.0 +. (0.3275911 *. abs_float x /. sqrt 2.0)) in
    let erf =
      1.0
      -. t
         *. (0.254829592
             +. t
                *. (-0.284496736
                    +. t *. (1.421413741 +. t *. (-1.453152027 +. (t *. 1.061405429)))))
         *. exp (-.(x *. x /. 2.0))
    in
    0.5 *. (1.0 +. (if x >= 0.0 then erf else -.erf))
  in
  let rec bisect lo hi n =
    if n = 0 then (lo +. hi) /. 2.0
    else begin
      let mid = (lo +. hi) /. 2.0 in
      if phi mid < target then bisect mid hi (n - 1) else bisect lo mid (n - 1)
    end
  in
  bisect 0.0 10.0 60

let wilson ?(confidence = 0.95) ~successes ~trials () =
  assert (trials > 0 && successes >= 0 && successes <= trials);
  let z = z_of_confidence confidence in
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let centre = (p +. (z2 /. (2.0 *. n))) /. denom in
  let half =
    z /. denom *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
  in
  { p_hat = p; low = max 0.0 (centre -. half); high = min 1.0 (centre +. half); trials }

let chernoff_runs ~eps ~alpha =
  assert (eps > 0.0 && alpha > 0.0 && alpha < 1.0);
  int_of_float (ceil (log (2.0 /. alpha) /. (2.0 *. eps *. eps)))

type sprt_result = { accept_h0 : bool; samples : int }

(* Incremental SPRT: the log-likelihood ratio of H1 over H0 as an
   immutable state advanced one Bernoulli outcome at a time. Exposing
   the step lets callers feed outcomes computed elsewhere — in
   particular outcomes sampled speculatively in parallel and consumed in
   index order, which makes the parallel verdict identical to the
   sequential one. *)
module Sprt = struct
  type t = {
    s_theta : float;
    s_max_samples : int;
    s_log_a : float;
    s_log_b : float;
    s_inc_true : float;
    s_inc_false : float;
    s_llr : float;
    s_n : int;
    s_successes : int;
  }

  type status = Undecided of t | Decided of sprt_result

  let start ?(max_samples = 1_000_000) ~theta ~delta ~alpha ~beta () =
    let p0 = min 1.0 (theta +. delta) and p1 = max 0.0 (theta -. delta) in
    {
      s_theta = theta;
      s_max_samples = max_samples;
      s_log_a = log ((1.0 -. beta) /. alpha);
      s_log_b = log (beta /. (1.0 -. alpha));
      s_inc_true = log (p1 /. p0);
      s_inc_false = log ((1.0 -. p1) /. (1.0 -. p0));
      s_llr = 0.0;
      s_n = 0;
      s_successes = 0;
    }

  let samples t = t.s_n

  (* The empirical-frequency verdict forced when the sample budget is
     exhausted without either threshold being crossed. *)
  let force t =
    {
      accept_h0 =
        float_of_int t.s_successes /. float_of_int t.s_n >= t.s_theta;
      samples = t.s_n;
    }

  let step t x =
    let llr = t.s_llr +. (if x then t.s_inc_true else t.s_inc_false) in
    let n = t.s_n + 1 in
    let successes = if x then t.s_successes + 1 else t.s_successes in
    let t = { t with s_llr = llr; s_n = n; s_successes = successes } in
    if llr >= t.s_log_a then Decided { accept_h0 = false; samples = n }
    else if llr <= t.s_log_b then Decided { accept_h0 = true; samples = n }
    else if n >= t.s_max_samples then Decided (force t)
    else Undecided t
end

let sprt ?(max_samples = 1_000_000) ~theta ~delta ~alpha ~beta sample =
  if max_samples <= 0 then { accept_h0 = false; samples = 0 }
  else begin
    let rec loop st =
      match Sprt.step st (sample ()) with
      | Sprt.Decided r -> r
      | Sprt.Undecided st -> loop st
    in
    loop (Sprt.start ~max_samples ~theta ~delta ~alpha ~beta ())
  end

let mean_std xs =
  let n = Array.length xs in
  assert (n > 0);
  let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
  if n = 1 then (mean, 0.0)
  else begin
    let ss =
      Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs
    in
    (mean, sqrt (ss /. float_of_int (n - 1)))
  end
