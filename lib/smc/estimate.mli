(** Statistical estimators for SMC verdicts.

    Provides the three standard tools of statistical model checking:
    fixed-size estimation with Wilson confidence intervals, the
    Chernoff–Hoeffding sample-size bound (UPPAAL-SMC's probability
    estimation), and Wald's sequential probability ratio test (SPRT) for
    hypothesis testing. *)

type interval = { p_hat : float; low : float; high : float; trials : int }

(** [wilson ~successes ~trials ~confidence] is the Wilson score interval
    (default confidence 0.95). *)
val wilson : ?confidence:float -> successes:int -> trials:int -> unit -> interval

(** [chernoff_runs ~eps ~alpha] — number of runs so that the empirical
    mean is within [eps] of the true probability with confidence
    [1 - alpha]: ceil(ln(2/alpha) / (2 eps²)). *)
val chernoff_runs : eps:float -> alpha:float -> int

(** SPRT verdict for H0: p >= theta + delta against H1: p <= theta - delta. *)
type sprt_result = { accept_h0 : bool; samples : int }

(** Incremental SPRT: the test as an immutable state advanced one
    Bernoulli outcome at a time. Feeding outcomes to {!Sprt.step} in
    index order yields exactly the verdict of {!val:sprt} on the same
    outcome sequence — which is what lets [Smc.hypothesis] sample
    speculatively in parallel without changing the result. *)
module Sprt : sig
  type t

  type status = Undecided of t | Decided of sprt_result

  (** [start ~theta ~delta ~alpha ~beta ()] — fresh test with zero
      samples consumed. [max_samples] defaults to 1_000_000. *)
  val start :
    ?max_samples:int ->
    theta:float ->
    delta:float ->
    alpha:float ->
    beta:float ->
    unit ->
    t

  (** Number of outcomes consumed so far. *)
  val samples : t -> int

  (** Consume one Bernoulli outcome. Returns [Decided] when a
      log-likelihood threshold is crossed or [max_samples] is reached
      (then the verdict falls back to comparing the empirical frequency
      with [theta]). *)
  val step : t -> bool -> status

  (** Force the empirical-frequency verdict now (requires at least one
      consumed sample). *)
  val force : t -> sprt_result
end

(** [sprt ~theta ~delta ~alpha ~beta sample] draws Bernoulli samples until
    one hypothesis is accepted; [alpha]/[beta] are the error bounds.
    [max_samples] (default 1_000_000) forces a decision by comparison
    with [theta] if reached. *)
val sprt :
  ?max_samples:int ->
  theta:float ->
  delta:float ->
  alpha:float ->
  beta:float ->
  (unit -> bool) ->
  sprt_result

(** [mean_std xs] — sample mean and (Bessel-corrected) standard deviation. *)
val mean_std : float array -> float * float
