(** Statistical model checking of TA networks — the UPPAAL-SMC facade.

    Answers [Pr[<=T](<> f)] queries by Monte-Carlo simulation under the
    stochastic semantics of {!Stochastic}, with the estimators of
    {!Estimate}.

    {b Seed-derivation contract.} Every entry point below is
    deterministic in its [seed]: the [k]-th Monte-Carlo run (counting
    from 0) always draws from the stream [Random.State.make [| seed; k |]]
    — never from a shared mutable stream. Because a run's randomness
    depends only on [(seed, k)], batches shard freely across a [Par]
    pool: passing [?pool] changes wall-clock time, not one byte of any
    estimate, interval or verdict. *)

module Stochastic : module type of Stochastic
module Estimate : module type of Estimate

type query = {
  horizon : float;  (** time bound T of [Pr[<=T](<> f)] *)
  goal : Ta.Prop.formula;  (** crisp state formula *)
}

(** [probability net q] estimates [Pr[<=T](<> goal)].
    [runs] defaults to the Chernoff bound for [eps]=0.05, [alpha]=0.05. *)
val probability :
  ?pool:Par.Pool.t ->
  ?config:Stochastic.config ->
  ?seed:int ->
  ?runs:int ->
  Ta.Model.network ->
  query ->
  Estimate.interval

(** [hypothesis net q ~theta] tests H0: [Pr >= theta] by SPRT with
    indifference [delta] (default 0.01) and error bounds 0.05. Sample
    [k] draws from [| seed; k |]; under a pool, outcomes are sampled
    speculatively in batches but consumed in index order, and sampling
    is cancelled once the verdict is reached — the verdict and its
    [samples] count equal the sequential ones. *)
val hypothesis :
  ?pool:Par.Pool.t ->
  ?config:Stochastic.config ->
  ?seed:int ->
  ?delta:float ->
  Ta.Model.network ->
  query ->
  theta:float ->
  Estimate.sprt_result

(** [cdf net ~goal ~horizon ~grid] runs one batch and reports, for every
    time bound in [grid], the fraction of runs whose hitting time is
    within the bound — the cumulative distribution of Fig. 4. *)
val cdf :
  ?pool:Par.Pool.t ->
  ?config:Stochastic.config ->
  ?seed:int ->
  ?runs:int ->
  Ta.Model.network ->
  goal:Ta.Prop.formula ->
  horizon:float ->
  grid:float list ->
  (float * float) list

(** Statistics of the first hitting time of [goal] over the runs that
    reach it within the horizon (UPPAAL-SMC's [E[<=T](...)] style
    estimate). [mean]/[std] are [nan] when no run hits. *)
type hitting_stats = {
  mean : float;
  std : float;
  hit_fraction : float;
  runs : int;
}

val hitting_time :
  ?pool:Par.Pool.t ->
  ?config:Stochastic.config ->
  ?seed:int ->
  ?runs:int ->
  Ta.Model.network ->
  goal:Ta.Prop.formula ->
  horizon:float ->
  hitting_stats
