(** Statistical model checking of TA networks — the UPPAAL-SMC facade.

    Answers [Pr[<=T](<> f)] queries by Monte-Carlo simulation under the
    stochastic semantics of {!Stochastic}, with the estimators of
    {!Estimate}.

    {b Seed-derivation contract.} Every entry point below is
    deterministic in its [seed]: the [k]-th Monte-Carlo run (counting
    from 0) always draws from the stream [Random.State.make [| seed; k |]]
    — never from a shared mutable stream. Because a run's randomness
    depends only on [(seed, k)], batches shard freely across a [Par]
    pool: passing [?pool] changes wall-clock time, not one byte of any
    estimate, interval or verdict. The same contract extends to
    {!Batch}: fusing several queries into one parallel range is
    invisible in the results. *)

module Stochastic : module type of Stochastic
module Estimate : module type of Estimate

type query = {
  horizon : float;  (** time bound T of [Pr[<=T](<> f)] *)
  goal : Ta.Prop.formula;  (** crisp state formula *)
}

(** [probability net q] estimates [Pr[<=T](<> goal)].
    [runs] defaults to the Chernoff bound for [eps]=0.05, [alpha]=0.05.
    [cancel] aborts mid-batch with {!Par.Cancelled} (deadline tokens
    included). *)
val probability :
  ?pool:Par.Pool.t ->
  ?cancel:Par.Cancel.t ->
  ?config:Stochastic.config ->
  ?seed:int ->
  ?runs:int ->
  Ta.Model.network ->
  query ->
  Estimate.interval

(** [hypothesis net q ~theta] tests H0: [Pr >= theta] by SPRT with
    indifference [delta] (default 0.01) and error bounds 0.05. Sample
    [k] draws from [| seed; k |]; under a pool, outcomes are sampled
    speculatively in batches but consumed in index order, and sampling
    is cancelled once the verdict is reached — the verdict and its
    [samples] count equal the sequential ones. *)
val hypothesis :
  ?pool:Par.Pool.t ->
  ?config:Stochastic.config ->
  ?seed:int ->
  ?delta:float ->
  Ta.Model.network ->
  query ->
  theta:float ->
  Estimate.sprt_result

(** [cdf net ~goal ~horizon ~grid] runs one batch and reports, for every
    time bound in [grid], the fraction of runs whose hitting time is
    within the bound — the cumulative distribution of Fig. 4. *)
val cdf :
  ?pool:Par.Pool.t ->
  ?cancel:Par.Cancel.t ->
  ?config:Stochastic.config ->
  ?seed:int ->
  ?runs:int ->
  Ta.Model.network ->
  goal:Ta.Prop.formula ->
  horizon:float ->
  grid:float list ->
  (float * float) list

(** Statistics of the first hitting time of [goal] over the runs that
    reach it within the horizon (UPPAAL-SMC's [E[<=T](...)] style
    estimate). [mean]/[std] are [nan] when no run hits. *)
type hitting_stats = {
  mean : float;
  std : float;
  hit_fraction : float;
  runs : int;
}

val hitting_time :
  ?pool:Par.Pool.t ->
  ?cancel:Par.Cancel.t ->
  ?config:Stochastic.config ->
  ?seed:int ->
  ?runs:int ->
  Ta.Model.network ->
  goal:Ta.Prop.formula ->
  horizon:float ->
  hitting_stats

(** The shared reductions every estimate above applies to one
    {!Stochastic.hitting_times} array. Exposed so a caller holding raw
    per-item arrays (the {!Batch} path, a serving layer) reduces them
    through {e the same code} as the one-shot entry points — equality
    of batched and sequential results then holds by construction. *)

(** [interval_of_times ~runs ~horizon times] — the Wilson interval of
    {!val:probability} (successes = hitting times within [horizon]). *)
val interval_of_times :
  runs:int -> horizon:float -> float option array -> Estimate.interval

(** [cdf_of_times ~runs ~grid times] — the per-bound hit fractions of
    {!val:cdf}. *)
val cdf_of_times :
  runs:int -> grid:float list -> float option array -> (float * float) list

(** [stats_of_times ~runs times] — the {!hitting_stats} of
    {!val:hitting_time}. *)
val stats_of_times : runs:int -> float option array -> hitting_stats

(** Fused sampling for several SMC queries at once — the serving layer's
    request coalescing. The [k]-th run of item [i] draws from
    [Random.State.make [| seed_i; k |]], exactly the stream the one-shot
    entry points use, so per item the batched result is byte-for-byte
    the one-shot result; fusing only changes how the work shards across
    the pool (one [Par.map_range] over the concatenated run ranges keeps
    every worker busy across item boundaries instead of paying a join
    barrier per query). One [cancel] token covers the whole batch — a
    coalescing server passes the earliest member deadline and re-runs
    stragglers individually on expiry. *)
module Batch : sig
  type item = {
    net : Ta.Model.network;
    config : Stochastic.config;
    seed : int;
    runs : int;
    horizon : float;
    goal : Ta.Prop.formula;
  }

  (** [item net q] — one batch member, defaults matching
      {!val:probability} ([seed] 42, [runs] from the Chernoff bound). *)
  val item :
    ?config:Stochastic.config ->
    ?seed:int ->
    ?runs:int ->
    Ta.Model.network ->
    query ->
    item

  (** One optional hitting time per run, per item; the per-item arrays
      equal {!Stochastic.hitting_times} on that item alone. *)
  val hitting_times :
    ?pool:Par.Pool.t ->
    ?cancel:Par.Cancel.t ->
    item list ->
    float option array list

  (** Wilson interval per item, equal to {!val:probability} on that
      item alone (the item's [horizon] is the success bound). *)
  val probability :
    ?pool:Par.Pool.t ->
    ?cancel:Par.Cancel.t ->
    item list ->
    Estimate.interval list

  (** Hitting-time statistics per item, equal to {!val:hitting_time}. *)
  val hitting_time :
    ?pool:Par.Pool.t ->
    ?cancel:Par.Cancel.t ->
    item list ->
    hitting_stats list
end
