(* Root module of the smc library: re-export the engine and the
   estimators, then provide the query facade. *)

module Stochastic = Stochastic
module Estimate = Estimate

type query = { horizon : float; goal : Ta.Prop.formula }

let stop_of net goal (st : Stochastic.cstate) =
  Ta.Prop.eval_on net ~locs:st.Stochastic.clocs ~store:st.Stochastic.cstore goal

let default_runs () = Estimate.chernoff_runs ~eps:0.05 ~alpha:0.05

type hitting_stats = {
  mean : float;
  std : float;
  hit_fraction : float;
  runs : int;
}

(* ------------------------------------------------------------------ *)
(* Shared reductions over a hitting-time array                          *)
(* ------------------------------------------------------------------ *)

(* Every estimate below is a pure fold over one [hitting_times] array.
   Keeping the folds here — and funnelling both the one-shot facade and
   [Batch] through them — is what makes "batched result = sequential
   result" hold by construction rather than by test. *)

let count_within times bound =
  Array.fold_left
    (fun acc t ->
      match t with Some h when h <= bound -> acc + 1 | Some _ | None -> acc)
    0 times

let interval_of_times ~runs ~horizon times =
  Estimate.wilson ~successes:(count_within times horizon) ~trials:runs ()

let cdf_of_times ~runs ~grid times =
  List.map
    (fun t -> (t, float_of_int (count_within times t) /. float_of_int runs))
    grid

let stats_of_times ~runs times =
  let hits = Array.to_list times |> List.filter_map Fun.id in
  match hits with
  | [] -> { mean = nan; std = nan; hit_fraction = 0.0; runs }
  | _ ->
    let arr = Array.of_list hits in
    let mean, std = Estimate.mean_std arr in
    {
      mean;
      std;
      hit_fraction = float_of_int (Array.length arr) /. float_of_int runs;
      runs;
    }

(* ------------------------------------------------------------------ *)
(* One-shot facade                                                      *)
(* ------------------------------------------------------------------ *)

let probability ?pool ?cancel ?(config = Stochastic.default_config)
    ?(seed = 42) ?runs net q =
  assert (Ta.Prop.crisp q.goal);
  let runs = match runs with Some r -> r | None -> default_runs () in
  let times =
    Stochastic.hitting_times ?pool ?cancel net config ~seed ~runs
      ~horizon:q.horizon ~stop:(stop_of net q.goal)
  in
  interval_of_times ~runs ~horizon:q.horizon times

(* SPRT over Bernoulli outcomes sampled speculatively: sample index [k]
   always draws from [| seed; k |], and [Par.fold_until] feeds the
   outcomes to the incremental test strictly in index order, so the
   verdict is the one the sequential test reaches on the same stream.
   Outcomes are produced in super-batches so an early verdict does not
   leave max_samples worth of speculative work behind. *)
let hypothesis ?pool ?(config = Stochastic.default_config) ?(seed = 42)
    ?(delta = 0.01) net q ~theta =
  assert (Ta.Prop.crisp q.goal);
  Obs.Span.with_ ~name:"smc.sprt" @@ fun () ->
  let stop = stop_of net q.goal in
  let sample k =
    let rng = Random.State.make [| seed; k |] in
    let _, hit = Stochastic.simulate net config rng ~horizon:q.horizon ~stop in
    match hit with Some h -> h <= q.horizon | None -> false
  in
  let max_samples = 1_000_000 in
  let batch = 4096 in
  let rec go st lo =
    let hi = min max_samples (lo + batch) in
    let verdict = ref None in
    let st', _consumed =
      Par.fold_until ?pool ~lo ~hi ~f:sample ~init:st
        ~step:(fun st _k x ->
          match Estimate.Sprt.step st x with
          | Estimate.Sprt.Decided r ->
            verdict := Some r;
            Par.Stop st
          | Estimate.Sprt.Undecided st' -> Par.Continue st')
        ()
    in
    match !verdict with
    | Some r -> r
    | None ->
      if hi >= max_samples then Estimate.Sprt.force st' else go st' hi
  in
  go (Estimate.Sprt.start ~max_samples ~theta ~delta ~alpha:0.05 ~beta:0.05 ()) 0

let cdf ?pool ?cancel ?(config = Stochastic.default_config) ?(seed = 42) ?runs
    net ~goal ~horizon ~grid =
  assert (Ta.Prop.crisp goal);
  let runs = match runs with Some r -> r | None -> default_runs () in
  let times =
    Stochastic.hitting_times ?pool ?cancel net config ~seed ~runs ~horizon
      ~stop:(stop_of net goal)
  in
  cdf_of_times ~runs ~grid times

let hitting_time ?pool ?cancel ?(config = Stochastic.default_config)
    ?(seed = 42) ?runs net ~goal ~horizon =
  assert (Ta.Prop.crisp goal);
  let runs = match runs with Some r -> r | None -> default_runs () in
  let times =
    Stochastic.hitting_times ?pool ?cancel net config ~seed ~runs ~horizon
      ~stop:(stop_of net goal)
  in
  stats_of_times ~runs times

(* ------------------------------------------------------------------ *)
(* Batched sampling                                                     *)
(* ------------------------------------------------------------------ *)

module Batch = struct
  type item = {
    net : Ta.Model.network;
    config : Stochastic.config;
    seed : int;
    runs : int;
    horizon : float;
    goal : Ta.Prop.formula;
  }

  let item ?(config = Stochastic.default_config) ?(seed = 42) ?runs net
      (q : query) =
    assert (Ta.Prop.crisp q.goal);
    let runs = match runs with Some r -> r | None -> default_runs () in
    { net; config; seed; runs; horizon = q.horizon; goal = q.goal }

  (* Greatest [i] with [offsets.(i) <= g]: the item owning global run
     index [g]. Zero-run items collapse to an empty offset interval and
     are skipped naturally. *)
  let owner offsets g =
    let lo = ref 0 and hi = ref (Array.length offsets - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if offsets.(mid) <= g then lo := mid else hi := mid
    done;
    !lo

  let hitting_times ?pool ?cancel items =
    Obs.Span.with_ ~name:"smc.batch_fused" @@ fun () ->
    let items = Array.of_list items in
    let n = Array.length items in
    let offsets = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      offsets.(i + 1) <- offsets.(i) + items.(i).runs
    done;
    let total = offsets.(n) in
    (* Pre-resolve each item's stop predicate once, not per run. *)
    let stops = Array.map (fun it -> stop_of it.net it.goal) items in
    (* One fused range: global index [g] belongs to item [i] as its
       local run [k = g - offsets.(i)], and draws from
       [Random.State.make [| seed_i; k |]] — the exact stream
       [Stochastic.hitting_times] would use for that item alone. The
       fused batch therefore returns, per item, byte-for-byte the array
       the one-shot path returns, while a single [map_range] keeps every
       pool worker busy across item boundaries. *)
    let all =
      Par.map_range ?pool ?cancel ~lo:0 ~hi:total (fun g ->
          let i = owner offsets g in
          let it = items.(i) in
          let k = g - offsets.(i) in
          let rng = Random.State.make [| it.seed; k |] in
          let _, hit =
            Stochastic.simulate it.net it.config rng ~horizon:it.horizon
              ~stop:stops.(i)
          in
          hit)
    in
    Array.to_list
      (Array.init n (fun i -> Array.sub all offsets.(i) items.(i).runs))

  let probability ?pool ?cancel items =
    List.map2
      (fun it times ->
        interval_of_times ~runs:it.runs ~horizon:it.horizon times)
      items
      (hitting_times ?pool ?cancel items)

  let hitting_time ?pool ?cancel items =
    List.map2
      (fun it times -> stats_of_times ~runs:it.runs times)
      items
      (hitting_times ?pool ?cancel items)
end
