(* Root module of the smc library: re-export the engine and the
   estimators, then provide the query facade. *)

module Stochastic = Stochastic
module Estimate = Estimate

type query = { horizon : float; goal : Ta.Prop.formula }

let stop_of net goal (st : Stochastic.cstate) =
  Ta.Prop.eval_on net ~locs:st.Stochastic.clocs ~store:st.Stochastic.cstore goal

let default_runs () = Estimate.chernoff_runs ~eps:0.05 ~alpha:0.05

let probability ?pool ?(config = Stochastic.default_config) ?(seed = 42) ?runs
    net q =
  assert (Ta.Prop.crisp q.goal);
  let runs = match runs with Some r -> r | None -> default_runs () in
  let times =
    Stochastic.hitting_times ?pool net config ~seed ~runs ~horizon:q.horizon
      ~stop:(stop_of net q.goal)
  in
  let successes =
    Array.fold_left
      (fun acc t ->
        match t with Some h when h <= q.horizon -> acc + 1 | Some _ | None -> acc)
      0 times
  in
  Estimate.wilson ~successes ~trials:runs ()

(* SPRT over Bernoulli outcomes sampled speculatively: sample index [k]
   always draws from [| seed; k |], and [Par.fold_until] feeds the
   outcomes to the incremental test strictly in index order, so the
   verdict is the one the sequential test reaches on the same stream.
   Outcomes are produced in super-batches so an early verdict does not
   leave max_samples worth of speculative work behind. *)
let hypothesis ?pool ?(config = Stochastic.default_config) ?(seed = 42)
    ?(delta = 0.01) net q ~theta =
  assert (Ta.Prop.crisp q.goal);
  Obs.Span.with_ ~name:"smc.sprt" @@ fun () ->
  let stop = stop_of net q.goal in
  let sample k =
    let rng = Random.State.make [| seed; k |] in
    let _, hit = Stochastic.simulate net config rng ~horizon:q.horizon ~stop in
    match hit with Some h -> h <= q.horizon | None -> false
  in
  let max_samples = 1_000_000 in
  let batch = 4096 in
  let rec go st lo =
    let hi = min max_samples (lo + batch) in
    let verdict = ref None in
    let st', _consumed =
      Par.fold_until ?pool ~lo ~hi ~f:sample ~init:st
        ~step:(fun st _k x ->
          match Estimate.Sprt.step st x with
          | Estimate.Sprt.Decided r ->
            verdict := Some r;
            Par.Stop st
          | Estimate.Sprt.Undecided st' -> Par.Continue st')
        ()
    in
    match !verdict with
    | Some r -> r
    | None ->
      if hi >= max_samples then Estimate.Sprt.force st' else go st' hi
  in
  go (Estimate.Sprt.start ~max_samples ~theta ~delta ~alpha:0.05 ~beta:0.05 ()) 0

let cdf ?pool ?(config = Stochastic.default_config) ?(seed = 42) ?runs net
    ~goal ~horizon ~grid =
  assert (Ta.Prop.crisp goal);
  let runs = match runs with Some r -> r | None -> default_runs () in
  let times =
    Stochastic.hitting_times ?pool net config ~seed ~runs ~horizon
      ~stop:(stop_of net goal)
  in
  let fraction bound =
    let hits =
      Array.fold_left
        (fun acc t ->
          match t with Some h when h <= bound -> acc + 1 | Some _ | None -> acc)
        0 times
    in
    float_of_int hits /. float_of_int runs
  in
  List.map (fun t -> (t, fraction t)) grid

type hitting_stats = {
  mean : float;
  std : float;
  hit_fraction : float;
  runs : int;
}

let hitting_time ?pool ?(config = Stochastic.default_config) ?(seed = 42) ?runs
    net ~goal ~horizon =
  assert (Ta.Prop.crisp goal);
  let runs = match runs with Some r -> r | None -> default_runs () in
  let times =
    Stochastic.hitting_times ?pool net config ~seed ~runs ~horizon
      ~stop:(stop_of net goal)
  in
  let hits = Array.to_list times |> List.filter_map Fun.id in
  match hits with
  | [] -> { mean = nan; std = nan; hit_fraction = 0.0; runs }
  | _ ->
    let arr = Array.of_list hits in
    let mean, std = Estimate.mean_std arr in
    {
      mean;
      std;
      hit_fraction = float_of_int (Array.length arr) /. float_of_int runs;
      runs;
    }
