module Model = Ta.Model
module Zone_graph = Ta.Zone_graph
module Expr = Ta.Expr
module Bound = Zones.Bound

type config = { rates : int -> int -> float }

let default_config = { rates = (fun _ _ -> 1.0) }

type cstate = {
  clocs : int array;
  cstore : int array;
  cclocks : float array;
  ctime : float;
}

let initial_cstate (net : Model.network) =
  {
    clocs = Array.map (fun (a : Model.automaton) -> a.Model.initial) net.automata;
    cstore = Ta.Store.initial net.layout;
    cclocks = Array.make (net.n_clocks + 1) 0.0;
    ctime = 0.0;
  }

let infinity_ = infinity

(* Delay window [lo, hi] in which the constraint list can be satisfied by
   waiting from valuation [v]; [None] when a diagonal constraint already
   fails (differences are invariant under delay). *)
let guard_window v constrs =
  let lo = ref 0.0 and hi = ref infinity_ and feasible = ref true in
  List.iter
    (fun (c : Model.constr) ->
      if not (Bound.is_inf c.cb) then begin
        let m = float_of_int (Bound.constant c.cb) in
        if c.ci > 0 && c.cj = 0 then
          (* x + d ≺ m  ⟺  d ≤ m - x *)
          hi := min !hi (m -. v.(c.ci))
        else if c.ci = 0 && c.cj > 0 then
          (* -(x + d) ≺ m  ⟺  d ≥ -m - x *)
          lo := max !lo (-.m -. v.(c.cj))
        else if not (Bound.sat c.cb (v.(c.ci) -. v.(c.cj))) then
          (* Diagonal constraints are delay-invariant. *)
          feasible := false
      end)
    constrs;
  if (not !feasible) || !lo > !hi then None else Some (!lo, !hi)

(* Upper bound on delay allowed by a location vector's invariants. *)
let invariant_bound net (st : cstate) =
  List.fold_left
    (fun acc (c : Model.constr) ->
      if (not (Bound.is_inf c.cb)) && c.ci > 0 && c.cj = 0 then
        min acc (float_of_int (Bound.constant c.cb) -. st.cclocks.(c.ci))
      else acc)
    infinity_
    (Zone_graph.invariant_constrs net st.clocs)

let is_output (s : Model.sync) =
  match s with Model.Emit _ | Model.Tau -> true | Model.Receive _ -> false

(* Output/internal edges of component [i], data-enabled. *)
let output_edges net (st : cstate) i =
  let a = net.Model.automata.(i) in
  List.filter
    (fun (e : Model.edge) ->
      is_output e.sync
      && (match e.data_guard with
          | None -> true
          | Some g -> Expr.eval_bool st.cstore g))
    a.Model.out.(st.clocs.(i))

(* Sample the delay after which component [i] intends to act. *)
let component_delay net cfg rng (st : cstate) ~inv_ub i =
  let edges = output_edges net st i in
  let windows =
    List.filter_map (fun (e : Model.edge) -> guard_window st.cclocks e.clock_guard) edges
  in
  match windows with
  | [] -> infinity_
  | _ ->
    let lo = List.fold_left (fun acc (l, _) -> min acc l) infinity_ windows in
    let kind = net.Model.automata.(i).locations.(st.clocs.(i)).Model.kind in
    if kind <> Model.Normal then (if lo <= 0.0 then 0.0 else infinity_)
    else if lo > inv_ub then infinity_
    else if inv_ub < infinity_ then
      (* Uniform over the actionable window up to the invariant bound. *)
      lo +. Random.State.float rng (max 0.0 (inv_ub -. lo))
    else begin
      let rate = cfg.rates i st.clocs.(i) in
      lo +. (-.log (max 1e-300 (Random.State.float rng 1.0)) /. rate)
    end

let clock_guard_sat v constrs =
  List.for_all
    (fun (c : Model.constr) -> Bound.sat c.cb (v.(c.ci) -. v.(c.cj)))
    constrs

let edge_enabled net (st : cstate) i (e : Model.edge) =
  ignore net;
  ignore i;
  (match e.data_guard with
   | None -> true
   | Some g -> Expr.eval_bool st.cstore g)
  && clock_guard_sat st.cclocks e.clock_guard

(* Receivers for a channel among components other than [from]. *)
let receivers net (st : cstate) ~from (ch : Model.chan) =
  let acc = ref [] in
  Array.iteri
    (fun j (a : Model.automaton) ->
      if j <> from then
        List.iter
          (fun (e : Model.edge) ->
            match e.sync with
            | Model.Receive c when c.Model.chan_id = ch.Model.chan_id ->
              if edge_enabled net st j e then acc := (j, e) :: !acc
            | Model.Receive _ | Model.Emit _ | Model.Tau -> ())
          a.Model.out.(st.clocs.(j)))
    net.Model.automata;
  List.rev !acc

let pick rng xs =
  match xs with
  | [] -> None
  | _ -> Some (List.nth xs (Random.State.int rng (List.length xs)))

let advance (st : cstate) d =
  {
    st with
    cclocks = Array.mapi (fun k x -> if k = 0 then 0.0 else x +. d) st.cclocks;
    ctime = st.ctime +. d;
  }

let apply_edges (st : cstate) participants =
  let store = Array.copy st.cstore in
  let clocks = Array.copy st.cclocks in
  let locs = Array.copy st.clocs in
  List.iter
    (fun (i, (e : Model.edge)) ->
      locs.(i) <- e.Model.dst;
      List.iter
        (function
          | Model.Assign (lv, rhs) ->
            let value = Expr.eval store rhs in
            store.(Expr.lvalue_offset store lv) <- value
          | Model.Reset (x, value) -> clocks.(x) <- float_of_int value
          | Model.Prim (_, f) -> f store)
        e.Model.updates)
    participants;
  { st with clocs = locs; cstore = store; cclocks = clocks }

(* The move the winning component performs at the post-delay state:
   uniform among its enabled output edges, with uniform receiver choice
   for binary emissions and mandatory receivers for broadcasts. Returns
   None when nothing is actually enabled (e.g. the sampled delay fell in
   a gap between guard windows). *)
let fire net rng (st : cstate) i =
  let candidates =
    List.filter (fun e -> edge_enabled net st i e) (output_edges net st i)
  in
  (* Binary emissions need a ready receiver to count as enabled. *)
  let viable =
    List.filter
      (fun (e : Model.edge) ->
        match e.Model.sync with
        | Model.Tau -> true
        | Model.Emit ch ->
          (match ch.Model.kind with
           | Model.Broadcast -> true
           | Model.Binary -> receivers net st ~from:i ch <> [])
        | Model.Receive _ -> false)
      candidates
  in
  match pick rng viable with
  | None -> None
  | Some e ->
    (match e.Model.sync with
     | Model.Tau -> Some (apply_edges st [ (i, e) ])
     | Model.Emit ch ->
       (match ch.Model.kind with
        | Model.Binary ->
          (match pick rng (receivers net st ~from:i ch) with
           | Some (j, er) -> Some (apply_edges st [ (i, e); (j, er) ])
           | None -> None)
        | Model.Broadcast ->
          (* All ready receivers participate; multiple enabled edges in
             one component resolve uniformly. *)
          let by_component = Hashtbl.create 8 in
          List.iter
            (fun (j, er) ->
              let existing =
                try Hashtbl.find by_component j with Not_found -> []
              in
              Hashtbl.replace by_component j (er :: existing))
            (receivers net st ~from:i ch);
          let rs =
            Hashtbl.fold
              (fun j es acc ->
                match pick rng es with
                | Some er -> (j, er) :: acc
                | None -> acc)
              by_component []
          in
          let rs = List.sort (fun (a, _) (b, _) -> compare a b) rs in
          Some (apply_edges st ((i, e) :: rs)))
     | Model.Receive _ -> None)

let step net cfg rng (st : cstate) =
  let n = Array.length net.Model.automata in
  let inv_ub = invariant_bound net st in
  (* Committed components preempt everyone. *)
  let committed =
    List.filter
      (fun i ->
        net.Model.automata.(i).locations.(st.clocs.(i)).Model.kind
        = Model.Committed)
      (List.init n Fun.id)
  in
  let race_candidates =
    if committed <> [] then List.map (fun i -> (i, 0.0)) committed
    else begin
      (* Urgent outputs fire with zero delay. *)
      let delays =
        List.init n (fun i ->
            let urgent_now =
              List.exists
                (fun (e : Model.edge) ->
                  match e.Model.sync with
                  | Model.Emit ch when ch.Model.urgent ->
                    edge_enabled net st i e
                    && (match ch.Model.kind with
                        | Model.Broadcast -> true
                        | Model.Binary -> receivers net st ~from:i ch <> [])
                  | Model.Emit _ | Model.Receive _ | Model.Tau -> false)
                (output_edges net st i)
            in
            if urgent_now then (i, 0.0)
            else (i, component_delay net cfg rng st ~inv_ub i))
      in
      List.filter (fun (_, d) -> d < infinity_) delays
    end
  in
  match race_candidates with
  | [] -> None
  | _ ->
    let d_min =
      List.fold_left (fun acc (_, d) -> min acc d) infinity_ race_candidates
    in
    let winners = List.filter (fun (_, d) -> d = d_min) race_candidates in
    (match pick rng winners with
     | None -> None
     | Some (i, d) ->
       let st' = advance st d in
       (match fire net rng st' i with
        | Some st'' -> Some st''
        | None ->
          (* Sampled into a guard gap: time has advanced; retry the race
             from the new state. *)
          Some st'))

(* SMC sampler instruments: one sample = one simulated run; accepted
   means the stop predicate was hit within the horizon. *)
let m_samples = Obs.counter "smc.samples"
let m_accepted = Obs.counter "smc.accepted"
let m_rejected = Obs.counter "smc.rejected"
let m_run_wall = Obs.histogram "smc.run_wall_s"

let simulate net cfg rng ~horizon ~stop =
  let t0 = Unix.gettimeofday () in
  let rec loop st fuel =
    if stop st then (st, Some st.ctime)
    else if st.ctime > horizon || fuel = 0 then (st, None)
    else
      match step net cfg rng st with
      | None -> (st, None)
      | Some st' -> loop st' (fuel - 1)
  in
  let result = loop (initial_cstate net) 100_000 in
  Obs.Metrics.Counter.incr m_samples;
  (match snd result with
   | Some _ -> Obs.Metrics.Counter.incr m_accepted
   | None -> Obs.Metrics.Counter.incr m_rejected);
  Obs.Metrics.Histogram.observe m_run_wall (Unix.gettimeofday () -. t0);
  result

let hitting_times ?pool ?cancel net cfg ~seed ~runs ~horizon ~stop =
  Obs.Span.with_ ~name:"smc.batch" @@ fun () ->
  (* Each run draws from its own [| seed; k |]-derived stream, so runs
     are independent of execution order and the batch shards across a
     pool without changing any result. *)
  Par.map_range ?pool ?cancel ~lo:0 ~hi:runs (fun k ->
      let rng = Random.State.make [| seed; k |] in
      let _, hit = simulate net cfg rng ~horizon ~stop in
      hit)
