module Dbm = Zones.Dbm

type verdict =
  | Added of { dropped : int; reopened : bool }
  | Dup of int
  | Covered

type 's t = {
  name : string;
  insert : 's -> id:int -> verdict;
  stale : 's -> bool;
  size : unit -> int;
}

let no_stale _ = false

let discrete ~key () =
  let tbl = Hashtbl.create 4096 in
  {
    name = "discrete";
    insert =
      (fun s ~id ->
        let k = key s in
        match Hashtbl.find_opt tbl k with
        | Some id' -> Dup id'
        | None ->
          Hashtbl.replace tbl k id;
          Added { dropped = 0; reopened = false });
    stale = no_stale;
    size = (fun () -> Hashtbl.length tbl);
  }

let exact ~key ~zone () =
  let tbl = Hashtbl.create 4096 in
  (* discrete key -> (zone, id) list, exact zone equality *)
  let count = ref 0 in
  {
    name = "exact";
    insert =
      (fun s ~id ->
        let k = key s and z = zone s in
        let entries =
          match Hashtbl.find_opt tbl k with Some e -> e | None -> []
        in
        match List.find_opt (fun (z', _) -> Dbm.equal z z') entries with
        | Some (_, id') -> Dup id'
        | None ->
          Hashtbl.replace tbl k ((z, id) :: entries);
          incr count;
          Added { dropped = 0; reopened = false });
    stale = no_stale;
    size = (fun () -> !count);
  }

let subsume ~key ~zone () =
  let tbl = Hashtbl.create 4096 in
  (* discrete key -> zone list; stored zones are pairwise incomparable *)
  let count = ref 0 in
  {
    name = "subsume";
    insert =
      (fun s ~id:_ ->
        let k = key s and z = zone s in
        let entries =
          match Hashtbl.find_opt tbl k with Some e -> e | None -> []
        in
        if List.exists (fun z' -> Dbm.subset z z') entries then Covered
        else begin
          let kept = List.filter (fun z' -> not (Dbm.subset z' z)) entries in
          let dropped = List.length entries - List.length kept in
          Hashtbl.replace tbl k (z :: kept);
          count := !count + 1 - dropped;
          Added { dropped; reopened = false }
        end);
    stale = no_stale;
    size = (fun () -> !count);
  }

let best_cost ~key ~cost () =
  let best = Hashtbl.create 4096 in
  {
    name = "best-cost";
    insert =
      (fun s ~id:_ ->
        let k = key s and c = cost s in
        match Hashtbl.find_opt best k with
        | Some old when old <= c -> Covered
        | prev ->
          Hashtbl.replace best k c;
          (* A previous entry means this key is being re-opened on a
             cheaper path: report it as such, not as an eviction. *)
          Added { dropped = 0; reopened = prev <> None });
    stale =
      (fun s ->
        match Hashtbl.find_opt best (key s) with
        | Some b -> cost s > b
        | None -> false);
    size = (fun () -> Hashtbl.length best);
  }
