module Dbm = Zones.Dbm

type verdict =
  | Added of { dropped : int; reopened : bool }
  | Dup of int
  | Covered

type 's t = {
  name : string;
  insert : 's -> id:int -> verdict;
  stale : 's -> bool;
  size : unit -> int;
  words : unit -> int;
}

let no_stale _ = false
let default_size_hint = 4096

(* Retained-heap estimate of the passed list: everything reachable from
   the table — buckets, keys and stored values (zones included), shared
   structure counted once. One full traversal per call; the engine calls
   it once per run, when building the final [Stats.t]. *)
let reachable_words tbl () = Obj.reachable_words (Obj.repr tbl)

(* The packed stores below key on {!Codec.packed} states: the probe hash
   is the memoized full-width one (O(1), no truncation) and collisions
   compare packed words, never the original state structure. *)

let discrete ?(size_hint = default_size_hint) ~key () =
  let tbl : int Codec.Tbl.t = Codec.Tbl.create size_hint in
  {
    name = "discrete";
    insert =
      (fun s ~id ->
        let k = key s in
        match Codec.Tbl.find_opt tbl k with
        | Some id' -> Dup id'
        | None ->
          Codec.Tbl.replace tbl k id;
          Added { dropped = 0; reopened = false });
    stale = no_stale;
    size = (fun () -> Codec.Tbl.length tbl);
    words = reachable_words tbl;
  }

let exact ?(size_hint = default_size_hint) ~key ~zone () =
  let tbl : (Dbm.t * int) list Codec.Tbl.t = Codec.Tbl.create size_hint in
  (* packed key -> (zone, id) list, exact zone equality *)
  let count = ref 0 in
  {
    name = "exact";
    insert =
      (fun s ~id ->
        let k = key s and z = zone s in
        let entries =
          match Codec.Tbl.find_opt tbl k with Some e -> e | None -> []
        in
        match List.find_opt (fun (z', _) -> Dbm.equal z z') entries with
        | Some (_, id') -> Dup id'
        | None ->
          Codec.Tbl.replace tbl k ((z, id) :: entries);
          incr count;
          Added { dropped = 0; reopened = false });
    stale = no_stale;
    size = (fun () -> !count);
    words = reachable_words tbl;
  }

let subsume ?(size_hint = default_size_hint) ~key ~zone () =
  let tbl : Dbm.t list Codec.Tbl.t = Codec.Tbl.create size_hint in
  (* packed key -> zone list; stored zones are pairwise incomparable *)
  let count = ref 0 in
  {
    name = "subsume";
    insert =
      (fun s ~id:_ ->
        let k = key s and z = zone s in
        let entries =
          match Codec.Tbl.find_opt tbl k with Some e -> e | None -> []
        in
        if List.exists (fun z' -> Dbm.subset z z') entries then Covered
        else begin
          let kept = List.filter (fun z' -> not (Dbm.subset z' z)) entries in
          let dropped = List.length entries - List.length kept in
          Codec.Tbl.replace tbl k (z :: kept);
          count := !count + 1 - dropped;
          Added { dropped; reopened = false }
        end);
    stale = no_stale;
    size = (fun () -> !count);
    words = reachable_words tbl;
  }

let best_cost ?(size_hint = default_size_hint) ~key ~cost () =
  let best : int Codec.Tbl.t = Codec.Tbl.create size_hint in
  {
    name = "best-cost";
    insert =
      (fun s ~id:_ ->
        let k = key s and c = cost s in
        match Codec.Tbl.find_opt best k with
        | Some old when old <= c -> Covered
        | prev ->
          Codec.Tbl.replace best k c;
          (* A previous entry means this key is being re-opened on a
             cheaper path: report it as such, not as an eviction. *)
          Added { dropped = 0; reopened = prev <> None });
    stale =
      (fun s ->
        match Codec.Tbl.find_opt best (key s) with
        | Some b -> cost s > b
        | None -> false);
    size = (fun () -> Codec.Tbl.length best);
    words = reachable_words best;
  }

(* The pre-codec stores, kept verbatim behind polymorphic hashing: the
   packed-vs-polymorphic ablation flag and generic engine tests run on
   these. [Hashtbl.hash] inspects only the first ~10 meaningful words of
   a key, so large discrete states hash-collide here by construction —
   that is the behaviour the packed stores exist to remove. *)
module Poly = struct
  let discrete ?(size_hint = default_size_hint) ~key () =
    let tbl = Hashtbl.create size_hint in
    {
      name = "discrete";
      insert =
        (fun s ~id ->
          let k = key s in
          match Hashtbl.find_opt tbl k with
          | Some id' -> Dup id'
          | None ->
            Hashtbl.replace tbl k id;
            Added { dropped = 0; reopened = false });
      stale = no_stale;
      size = (fun () -> Hashtbl.length tbl);
      words = reachable_words tbl;
    }

  let exact ?(size_hint = default_size_hint) ~key ~zone () =
    let tbl = Hashtbl.create size_hint in
    let count = ref 0 in
    {
      name = "exact";
      insert =
        (fun s ~id ->
          let k = key s and z = zone s in
          let entries =
            match Hashtbl.find_opt tbl k with Some e -> e | None -> []
          in
          match List.find_opt (fun (z', _) -> Dbm.equal z z') entries with
          | Some (_, id') -> Dup id'
          | None ->
            Hashtbl.replace tbl k ((z, id) :: entries);
            incr count;
            Added { dropped = 0; reopened = false });
      stale = no_stale;
      size = (fun () -> !count);
      words = reachable_words tbl;
    }

  let subsume ?(size_hint = default_size_hint) ~key ~zone () =
    let tbl = Hashtbl.create size_hint in
    let count = ref 0 in
    {
      name = "subsume";
      insert =
        (fun s ~id:_ ->
          let k = key s and z = zone s in
          let entries =
            match Hashtbl.find_opt tbl k with Some e -> e | None -> []
          in
          if List.exists (fun z' -> Dbm.subset z z') entries then Covered
          else begin
            let kept = List.filter (fun z' -> not (Dbm.subset z' z)) entries in
            let dropped = List.length entries - List.length kept in
            Hashtbl.replace tbl k (z :: kept);
            count := !count + 1 - dropped;
            Added { dropped; reopened = false }
          end);
      stale = no_stale;
      size = (fun () -> !count);
      words = reachable_words tbl;
    }

  let best_cost ?(size_hint = default_size_hint) ~key ~cost () =
    let best = Hashtbl.create size_hint in
    {
      name = "best-cost";
      insert =
        (fun s ~id:_ ->
          let k = key s and c = cost s in
          match Hashtbl.find_opt best k with
          | Some old when old <= c -> Covered
          | prev ->
            Hashtbl.replace best k c;
            Added { dropped = 0; reopened = prev <> None });
      stale =
        (fun s ->
          match Hashtbl.find_opt best (key s) with
          | Some b -> cost s > b
          | None -> false);
      size = (fun () -> Hashtbl.length best);
      words = reachable_words best;
    }
end
