module Dbm = Zones.Dbm

type verdict =
  | Added of { dropped : int; reopened : bool }
  | Dup of int
  | Covered

type 's t = {
  name : string;
  insert : 's -> id:int -> verdict;
  stale : 's -> bool;
  size : unit -> int;
  words : unit -> int;
}

let no_stale _ = false
let default_size_hint = 4096

(* Flight-recorder phases shared by all store flavours: [codec.encode]
   is the packed-key construction (timed here at the store seam rather
   than inside [Codec], so encode-stop and probe-start share one clock
   read via [stop_start]), [store.probe] the key lookup, [store.insert]
   the table write, [store.subsume] the inclusion walk over a subsume
   bucket. No-ops unless [Obs.Flight.enable] ran. *)
let ph_encode = Obs.Flight.intern "codec.encode"
let ph_probe = Obs.Flight.intern "store.probe"
let ph_insert = Obs.Flight.intern "store.insert"
let ph_subsume = Obs.Flight.intern "store.subsume"

(* Retained-heap estimate of the passed list: everything reachable from
   the table — buckets, keys and stored values (zones included), shared
   structure counted once. One full traversal per call; the engine calls
   it once per run, when building the final [Stats.t]. *)
let reachable_words tbl () = Obj.reachable_words (Obj.repr tbl)

(* Memory-budget predicate for the exploration loop: has the passed
   list's retained heap crossed [budget_words]? Costs one [words] walk —
   callers amortize it by checking at geometrically spaced store sizes
   (see [Core.run]), which is what lets a run degrade into an explicit
   truncation instead of an OOM kill. *)
let over_budget t ~budget_words = t.words () > budget_words

(* The packed stores below key on {!Codec.packed} states: the probe hash
   is the memoized full-width one (O(1), no truncation) and collisions
   compare packed words, never the original state structure. *)

(* Fused symbolic key: the packed discrete part next to a sealed zone
   handle, hashed by mixing the codec's memoized hash with the zone's
   memoized hash — both O(1), so probing a symbolic store costs no
   hashing work at all. Equality is pointer-first on both components;
   the zone comparison goes through [Dbm.equal] so cmp_stats keeps
   counting how often sealing makes it physical. *)
module Zkey = struct
  type t = { h : int; pk : Codec.packed; z : Dbm.canon }

  let make pk (z : Dbm.canon) =
    assert (Dbm.is_sealed (z :> Dbm.t));
    { h = Codec.mix_hash (Codec.hash pk) (Dbm.hash (z :> Dbm.t)); pk; z }

  let equal a b =
    Codec.equal a.pk b.pk && Dbm.equal (a.z :> Dbm.t) (b.z :> Dbm.t)

  let hash k = k.h
end

module Ztbl = Hashtbl.Make (Zkey)

(* Open-addressed probe table on packed keys. The hash is the key's
   memoized field, probing is a linear scan of one slot array, and a
   lookup allocates nothing — where [Hashtbl.Make] pays two module
   calls plus an option per probe (no cross-module inlining without
   flambda). Keys are never removed, so there are no tombstones. *)
module Ptbl = struct
  type 'v slot = Empty | Slot of { key : Codec.packed; mutable v : 'v }
  type 'v t = { mutable mask : int; mutable slots : 'v slot array; mutable len : int }

  let create hint =
    let cap = ref 16 in
    while !cap < hint * 2 do cap := !cap * 2 done;
    { mask = !cap - 1; slots = Array.make !cap Empty; len = 0 }

  (* First slot that is empty or holds [k]; [Codec.equal] settles
     same-slot collisions hash-first, so mismatches cost one compare. *)
  let rec probe slots mask k i =
    match slots.(i) with
    | Empty -> i
    | Slot s -> if Codec.equal s.key k then i else probe slots mask k ((i + 1) land mask)

  let find_default t k d =
    match t.slots.(probe t.slots t.mask k (Codec.hash k land t.mask)) with
    | Empty -> d
    | Slot s -> s.v

  let grow t =
    let mask = (2 * (t.mask + 1)) - 1 in
    let slots = Array.make (mask + 1) Empty in
    Array.iter
      (function
        | Empty -> ()
        | Slot s as e ->
          let rec free i =
            match slots.(i) with Empty -> i | Slot _ -> free ((i + 1) land mask)
          in
          slots.(free (Codec.hash s.key land mask)) <- e)
      t.slots;
    t.mask <- mask;
    t.slots <- slots

  let set t k v =
    let i = probe t.slots t.mask k (Codec.hash k land t.mask) in
    match t.slots.(i) with
    | Slot s -> s.v <- v
    | Empty ->
      t.slots.(i) <- Slot { key = k; v };
      t.len <- t.len + 1;
      (* Grow at 2/3 load to keep probe runs short. *)
      if 3 * t.len > 2 * (t.mask + 1) then grow t
end

(* Keyed store cores: the caller computes the packed key once and hands
   it to every insert/stale call. The sharded engine lives on these —
   the same key that routes a state to its shard probes the shard's
   table, so the hot path never encodes twice — and the classic
   constructors below are thin wrappers that bolt a key function on. *)
type 's keyed = {
  kname : string;
  kinsert : 's -> key:Codec.packed -> id:int -> verdict;
  kstale : 's -> key:Codec.packed -> bool;
  ksize : unit -> int;
  kwords : unit -> int;
}

let k_no_stale _ ~key:_ = false

let with_key ~key k =
  {
    name = k.kname;
    insert =
      (fun s ~id ->
        let fl = Obs.Flight.start () in
        let pk = key s in
        Obs.Flight.stop ph_encode fl;
        k.kinsert s ~key:pk ~id);
    stale = (fun s -> k.kstale s ~key:(key s));
    size = k.ksize;
    words = k.kwords;
  }

let discrete_keyed ?(size_hint = default_size_hint) () =
  let tbl : int Codec.Tbl.t = Codec.Tbl.create size_hint in
  {
    kname = "discrete";
    kinsert =
      (fun _s ~key ~id ->
        let fl = Obs.Flight.start () in
        let hit = Codec.Tbl.find_opt tbl key in
        Obs.Flight.stop ph_probe fl;
        match hit with
        | Some id' -> Dup id'
        | None ->
          let fl = Obs.Flight.start () in
          Codec.Tbl.replace tbl key id;
          Obs.Flight.stop ph_insert fl;
          Added { dropped = 0; reopened = false });
    kstale = k_no_stale;
    ksize = (fun () -> Codec.Tbl.length tbl);
    kwords = reachable_words tbl;
  }

let exact_keyed ?(size_hint = default_size_hint) ~zone () =
  (* One flat table on the fused (packed, zone) key — no per-key bucket
     lists to scan, and both hashes are memoized. *)
  let tbl : int Ztbl.t = Ztbl.create size_hint in
  {
    kname = "exact";
    kinsert =
      (fun s ~key ~id ->
        let fl = Obs.Flight.start () in
        let zk = Zkey.make key (zone s) in
        let hit = Ztbl.find_opt tbl zk in
        Obs.Flight.stop ph_probe fl;
        match hit with
        | Some id' -> Dup id'
        | None ->
          let fl = Obs.Flight.start () in
          Ztbl.replace tbl zk id;
          Obs.Flight.stop ph_insert fl;
          Added { dropped = 0; reopened = false });
    kstale = k_no_stale;
    ksize = (fun () -> Ztbl.length tbl);
    kwords = reachable_words tbl;
  }

let subsume_keyed ?(size_hint = default_size_hint) ~zone () =
  let tbl : Dbm.canon list Ptbl.t = Ptbl.create size_hint in
  (* packed key -> zone list; stored zones are pairwise incomparable and
     kept sorted by decreasing {!Dbm.width}. The width score is monotone
     for inclusion, so only the prefix at least as wide as a candidate
     can cover it (and the widest zones — the likeliest coverers — are
     probed first), and only the suffix at most as wide can be evicted
     by it: each insert pays one inclusion direction per entry instead
     of two full walks. No exact-match front cache: a re-proposed
     candidate carries the same sealed handle and settles on a pointer
     comparison during the prefix walk. Scans are tallied in local
     accumulators and flushed to {!Dbm.cmp_stats} once per insert, so
     the per-scan cost matches the quiet comparisons. *)
  let count = ref 0 in
  {
    kname = "subsume";
    kinsert =
      (fun s ~key:k ~id:_ ->
        let z : Dbm.canon = zone s in
        let fl = Obs.Flight.start () in
        let entries = Ptbl.find_default tbl k [] in
        let fl_scan = Obs.Flight.stop_start ph_probe fl in
        let wz = Dbm.width (z :> Dbm.t) in
        (* Eviction suffix: every entry here has width <= wz, so [z]
           cannot be covered; filter out what it swallows. *)
        let evict tail rev_head dropped lat =
          let kept =
            List.filter
              (fun (z' : Dbm.canon) ->
                not (Dbm.subset_quiet (z' :> Dbm.t) (z :> Dbm.t)))
              tail
          in
          let dropped = dropped + List.length tail - List.length kept in
          Dbm.note_scans ~phys:0 ~lattice:(lat + List.length tail);
          let fl = Obs.Flight.start () in
          Ptbl.set tbl k (List.rev_append rev_head (z :: kept));
          Obs.Flight.stop ph_insert fl;
          count := !count + 1 - dropped;
          Added { dropped; reopened = false }
        in
        (* Cover prefix: entries at least as wide as [z], in decreasing
           width order. Equal-width entries can also be evicted (only
           when clamping hides the strict inclusion), so they get the
           second check before surviving into the head. *)
        let rec cover entries rev_head dropped lat =
          match entries with
          | [] -> evict [] rev_head dropped lat
          | (z' : Dbm.canon) :: rest ->
            if z == z' then begin
              Dbm.note_scans ~phys:1 ~lattice:lat;
              Covered
            end
            else begin
              let w' = Dbm.width (z' :> Dbm.t) in
              if w' < wz then evict entries rev_head dropped lat
              else if Dbm.subset_quiet (z :> Dbm.t) (z' :> Dbm.t) then begin
                Dbm.note_scans ~phys:0 ~lattice:(lat + 1);
                Covered
              end
              else if
                w' = wz && Dbm.subset_quiet (z' :> Dbm.t) (z :> Dbm.t)
              then cover rest rev_head (dropped + 1) (lat + 2)
              else
                cover rest (z' :: rev_head) dropped
                  (lat + if w' = wz then 2 else 1)
            end
        in
        let verdict = cover entries [] 0 0 in
        Obs.Flight.stop ph_subsume fl_scan;
        verdict);
    kstale = k_no_stale;
    ksize = (fun () -> !count);
    kwords = reachable_words tbl;
  }

let best_cost_keyed ?(size_hint = default_size_hint) ~cost () =
  let best : int Codec.Tbl.t = Codec.Tbl.create size_hint in
  {
    kname = "best-cost";
    kinsert =
      (fun s ~key:k ~id:_ ->
        let c = cost s in
        match Codec.Tbl.find_opt best k with
        | Some old when old <= c -> Covered
        | prev ->
          Codec.Tbl.replace best k c;
          (* A previous entry means this key is being re-opened on a
             cheaper path: report it as such, not as an eviction. *)
          Added { dropped = 0; reopened = prev <> None });
    kstale =
      (fun s ~key:k ->
        match Codec.Tbl.find_opt best k with
        | Some b -> cost s > b
        | None -> false);
    ksize = (fun () -> Codec.Tbl.length best);
    kwords = reachable_words best;
  }

let discrete ?size_hint ~key () = with_key ~key (discrete_keyed ?size_hint ())

let exact ?size_hint ~key ~zone () =
  with_key ~key (exact_keyed ?size_hint ~zone ())

let subsume ?size_hint ~key ~zone () =
  with_key ~key (subsume_keyed ?size_hint ~zone ())

let best_cost ?size_hint ~key ~cost () =
  with_key ~key (best_cost_keyed ?size_hint ~cost ())

(* The pre-codec stores, kept verbatim behind polymorphic hashing: the
   packed-vs-polymorphic ablation flag and generic engine tests run on
   these. [Hashtbl.hash] inspects only the first ~10 meaningful words of
   a key, so large discrete states hash-collide here by construction —
   that is the behaviour the packed stores exist to remove. *)
module Poly = struct
  let discrete ?(size_hint = default_size_hint) ~key () =
    let tbl = Hashtbl.create size_hint in
    {
      name = "discrete";
      insert =
        (fun s ~id ->
          let k = key s in
          match Hashtbl.find_opt tbl k with
          | Some id' -> Dup id'
          | None ->
            Hashtbl.replace tbl k id;
            Added { dropped = 0; reopened = false });
      stale = no_stale;
      size = (fun () -> Hashtbl.length tbl);
      words = reachable_words tbl;
    }

  let exact ?(size_hint = default_size_hint) ~key ~zone () =
    let tbl = Hashtbl.create size_hint in
    let count = ref 0 in
    {
      name = "exact";
      insert =
        (fun s ~id ->
          let k = key s and z : Dbm.canon = zone s in
          let entries =
            match Hashtbl.find_opt tbl k with Some e -> e | None -> []
          in
          (* Quiet comparisons: the reference store must not double-count
             handles the packed stores already account for. *)
          match
            List.find_opt
              (fun ((z' : Dbm.canon), _) ->
                Dbm.equal_quiet (z :> Dbm.t) (z' :> Dbm.t))
              entries
          with
          | Some (_, id') -> Dup id'
          | None ->
            Hashtbl.replace tbl k ((z, id) :: entries);
            incr count;
            Added { dropped = 0; reopened = false });
      stale = no_stale;
      size = (fun () -> !count);
      words = reachable_words tbl;
    }

  let subsume ?(size_hint = default_size_hint) ~key ~zone () =
    let tbl = Hashtbl.create size_hint in
    let count = ref 0 in
    {
      name = "subsume";
      insert =
        (fun s ~id:_ ->
          let k = key s and z : Dbm.canon = zone s in
          let entries =
            match Hashtbl.find_opt tbl k with Some e -> e | None -> []
          in
          if
            List.exists
              (fun (z' : Dbm.canon) ->
                Dbm.subset_quiet (z :> Dbm.t) (z' :> Dbm.t))
              entries
          then Covered
          else begin
            let kept =
              List.filter
                (fun (z' : Dbm.canon) ->
                  not (Dbm.subset_quiet (z' :> Dbm.t) (z :> Dbm.t)))
                entries
            in
            let dropped = List.length entries - List.length kept in
            Hashtbl.replace tbl k (z :: kept);
            count := !count + 1 - dropped;
            Added { dropped; reopened = false }
          end);
      stale = no_stale;
      size = (fun () -> !count);
      words = reachable_words tbl;
    }

  let best_cost ?(size_hint = default_size_hint) ~key ~cost () =
    let best = Hashtbl.create size_hint in
    {
      name = "best-cost";
      insert =
        (fun s ~id:_ ->
          let k = key s and c = cost s in
          match Hashtbl.find_opt best k with
          | Some old when old <= c -> Covered
          | prev ->
            Hashtbl.replace best k c;
            Added { dropped = 0; reopened = prev <> None });
      stale =
        (fun s ->
          match Hashtbl.find_opt best (key s) with
          | Some b -> cost s > b
          | None -> false);
      size = (fun () -> Hashtbl.length best);
      words = reachable_words best;
    }
end
