(** Pluggable state stores (passed lists) for the exploration core.

    A store decides, for every candidate state, whether it is new work or
    already covered by something seen before. The four implementations
    cover the backends' needs:

    - {!discrete}: structural equality on the whole state (digital-clock
      graphs: TIGA games, ECDAR views, {e modes}).
    - {!exact}: exact zone equality on a fused (discrete, zone) key
      (liveness graphs, the subsumption-off ablation).
    - {!subsume}: inclusion subsumption — a candidate covered by a stored
      zone is rejected, stored zones strictly inside the candidate are
      evicted (UPPAAL-style safety/reachability).
    - {!best_cost}: keep only the cheapest cost per key, re-opening a
      state when a cheaper path arrives (CORA's Dijkstra).

    All four key on {!Codec.packed} discrete states: probes use the
    memoized full-width codec hash and compare packed words, so neither
    hashing nor equality ever rescans the backend's state structure —
    and, unlike the polymorphic [Hashtbl.hash] (which inspects only the
    first ~10 meaningful words of a value), the hash never truncates.
    Zone-holding stores take {!Zones.Dbm.canon} handles (sealed:
    extrapolated, interned, hash memoized), so the un-sealed DBMs of a
    successor pipeline cannot reach a store at the type level; probe
    hashes fuse the packed hash with the zone's memoized hash and
    equality settles on pointer identity in the common case.
    The pre-codec polymorphic stores survive in {!Poly} as the ablation
    baseline.

    Every constructor takes [?size_hint] (default 4096): the initial
    bucket count of the backing [Hashtbl]. It is a hint, not a limit —
    the stdlib table grows by doubling once the load factor exceeds 2,
    rehashing every entry — so a hint near the expected final state
    count avoids the O(n) rehash cascade on large explorations, while an
    oversized hint merely wastes [size_hint] words up front.

    Each constructor returns a fresh, independent store. *)

type verdict =
  | Added of { dropped : int; reopened : bool }
      (** stored under the candidate id; [dropped] weaker {e distinct}
          entries evicted. [reopened] is true when the accepted state
          re-opens a previously settled key on a cheaper path
          ({!best_cost} only) — re-openings are not counted in
          [dropped]. *)
  | Dup of int  (** exactly equal to the state already stored as [id] *)
  | Covered  (** covered by a stored state; no id of its own *)

type 's t = {
  name : string;
  insert : 's -> id:int -> verdict;
      (** [insert s ~id] offers [s] for storage under the candidate [id]
          (the id it will get if accepted). *)
  stale : 's -> bool;
      (** [stale s] at pop time: the stored information superseding [s]
          arrived after it was enqueued, so skip it. Only {!best_cost}
          ever answers [true]. *)
  size : unit -> int;  (** states currently stored *)
  words : unit -> int;
      (** retained-heap estimate of the store in words: everything
          reachable from the backing table (keys, values, zones), shared
          structure counted once. O(store size) per call — meant for
          end-of-run stats, not hot loops. *)
}

(** [over_budget t ~budget_words] — is the store's retained heap
    ({!t.words}, an O(size) walk) past the budget? The exploration core
    polls this at geometrically spaced store sizes when given
    [mem_budget_words], turning would-be OOMs into an explicit truncated
    outcome; the serving layer sizes its cache eviction off the same
    number. *)
val over_budget : 's t -> budget_words:int -> bool

(** A keyed store core: every probe takes the state's packed key as an
    argument instead of computing it. The sharded engine keys on these —
    the packed key is computed once per candidate, routes the state to a
    shard and then probes that shard's table, so the hot path never
    encodes twice (mailbox messages carry the key across shards). The
    classic constructors below are [with_key] wrappers over these
    cores. *)
type 's keyed = {
  kname : string;
  kinsert : 's -> key:Codec.packed -> id:int -> verdict;
  kstale : 's -> key:Codec.packed -> bool;
  ksize : unit -> int;
  kwords : unit -> int;
}

(** [with_key ~key k] — the classic single-closure store over keyed core
    [k], computing [key s] on every insert/stale probe. *)
val with_key : key:('s -> Codec.packed) -> 's keyed -> 's t

val discrete_keyed : ?size_hint:int -> unit -> 's keyed

val exact_keyed :
  ?size_hint:int -> zone:('s -> Zones.Dbm.canon) -> unit -> 's keyed

val subsume_keyed :
  ?size_hint:int -> zone:('s -> Zones.Dbm.canon) -> unit -> 's keyed

val best_cost_keyed :
  ?size_hint:int -> cost:('s -> int) -> unit -> 's keyed

val discrete :
  ?size_hint:int -> key:('s -> Codec.packed) -> unit -> 's t

val exact :
  ?size_hint:int ->
  key:('s -> Codec.packed) ->
  zone:('s -> Zones.Dbm.canon) ->
  unit ->
  's t

val subsume :
  ?size_hint:int ->
  key:('s -> Codec.packed) ->
  zone:('s -> Zones.Dbm.canon) ->
  unit ->
  's t

val best_cost :
  ?size_hint:int -> key:('s -> Codec.packed) -> cost:('s -> int) -> unit -> 's t

(** The polymorphic-hash stores the packed ones replaced — semantics
    identical, but keys are hashed with [Hashtbl.hash] (truncated to the
    first ~10 meaningful words) and compared structurally on every
    probe. Kept as the measurable baseline for the packed-vs-poly
    ablation ([bench engine], [Ta.Checker.check ~packed:false]) and for
    generic engine tests. *)
module Poly : sig
  val discrete : ?size_hint:int -> key:('s -> 'k) -> unit -> 's t

  val exact :
    ?size_hint:int ->
    key:('s -> 'k) ->
    zone:('s -> Zones.Dbm.canon) ->
    unit ->
    's t

  val subsume :
    ?size_hint:int ->
    key:('s -> 'k) ->
    zone:('s -> Zones.Dbm.canon) ->
    unit ->
    's t

  val best_cost :
    ?size_hint:int -> key:('s -> 'k) -> cost:('s -> int) -> unit -> 's t
end
