(** Pluggable state stores (passed lists) for the exploration core.

    A store decides, for every candidate state, whether it is new work or
    already covered by something seen before. The four implementations
    cover the backends' needs:

    - {!discrete}: structural equality on the whole state (digital-clock
      graphs: TIGA games, ECDAR views, {e modes}).
    - {!exact}: exact zone equality under a discrete key (liveness
      graphs, the subsumption-off ablation).
    - {!subsume}: inclusion subsumption — a candidate covered by a stored
      zone is rejected, stored zones strictly inside the candidate are
      evicted (UPPAAL-style safety/reachability).
    - {!best_cost}: keep only the cheapest cost per key, re-opening a
      state when a cheaper path arrives (CORA's Dijkstra).

    Each constructor returns a fresh, independent store. *)

type verdict =
  | Added of { dropped : int; reopened : bool }
      (** stored under the candidate id; [dropped] weaker {e distinct}
          entries evicted. [reopened] is true when the accepted state
          re-opens a previously settled key on a cheaper path
          ({!best_cost} only) — re-openings are not counted in
          [dropped]. *)
  | Dup of int  (** exactly equal to the state already stored as [id] *)
  | Covered  (** covered by a stored state; no id of its own *)

type 's t = {
  name : string;
  insert : 's -> id:int -> verdict;
      (** [insert s ~id] offers [s] for storage under the candidate [id]
          (the id it will get if accepted). *)
  stale : 's -> bool;
      (** [stale s] at pop time: the stored information superseding [s]
          arrived after it was enqueued, so skip it. Only {!best_cost}
          ever answers [true]. *)
  size : unit -> int;  (** states currently stored *)
}

val discrete : key:('s -> 'k) -> unit -> 's t
val exact : key:('s -> 'k) -> zone:('s -> Zones.Dbm.t) -> unit -> 's t
val subsume : key:('s -> 'k) -> zone:('s -> Zones.Dbm.t) -> unit -> 's t
val best_cost : key:('s -> 'k) -> cost:('s -> int) -> unit -> 's t
