type 'a t = { mutable slots : 'a array; mutable size : int }

let create () = { slots = [||]; size = 0 }
let size t = t.size

let add t x =
  if t.size = Array.length t.slots then begin
    (* [x] seeds the fresh slots so no dummy element is ever needed. *)
    let fresh = Array.make (max 256 (2 * t.size)) x in
    Array.blit t.slots 0 fresh 0 t.size;
    t.slots <- fresh
  end;
  t.slots.(t.size) <- x;
  t.size <- t.size + 1;
  t.size - 1

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Arena.get: index out of range";
  t.slots.(i)

let to_array t = Array.sub t.slots 0 t.size

let iteri f t =
  for i = 0 to t.size - 1 do
    f i t.slots.(i)
  done

(* A keyed arena pairs the append-only slots with a packed-key index:
   ids are dense in insertion order and lookups pay the memoized codec
   hash, never a structural rescan of the payload. *)
module Keyed = struct
  type nonrec 'a t = { arena : 'a t; index : int Codec.Tbl.t }

  let create ?(size_hint = 4096) () =
    { arena = create (); index = Codec.Tbl.create size_hint }

  let size t = size t.arena
  let get t i = get t.arena i
  let find t k = Codec.Tbl.find_opt t.index k

  let intern t k x =
    match Codec.Tbl.find_opt t.index k with
    | Some id -> (id, false)
    | None ->
      let id = add t.arena x in
      Codec.Tbl.replace t.index k id;
      (id, true)

  let to_array t = to_array t.arena
  let words t = Obj.reachable_words (Obj.repr t)
end
