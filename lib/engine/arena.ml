type 'a t = { mutable slots : 'a array; mutable size : int }

let create () = { slots = [||]; size = 0 }
let size t = t.size

let add t x =
  if t.size = Array.length t.slots then begin
    (* [x] seeds the fresh slots so no dummy element is ever needed. *)
    let fresh = Array.make (max 256 (2 * t.size)) x in
    Array.blit t.slots 0 fresh 0 t.size;
    t.slots <- fresh
  end;
  t.slots.(t.size) <- x;
  t.size <- t.size + 1;
  t.size - 1

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Arena.get: index out of range";
  t.slots.(i)

let to_array t = Array.sub t.slots 0 t.size

let iteri f t =
  for i = 0 to t.size - 1 do
    f i t.slots.(i)
  done
