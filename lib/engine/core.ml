module Pqueue = Quant_util.Pqueue
module Dbm = Zones.Dbm

(* Engine instruments on the default Obs registry: handles are resolved
   once here; the loop below pays one mutable write per update. *)
let m_runs = Obs.counter "engine.runs"
let m_visited = Obs.counter "engine.visited"
let m_stored = Obs.counter "engine.stored"
let m_subsumed = Obs.counter "engine.subsumed"
let m_dropped = Obs.counter "engine.dropped"
let m_reopened = Obs.counter "engine.reopened"
let m_truncated = Obs.counter "engine.truncated"
let m_peak_frontier = Obs.gauge "engine.peak_frontier"
let m_fanout = Obs.histogram "engine.fanout"
let m_run_wall = Obs.histogram "engine.run_wall_s"

(* Flight-recorder phases (ids interned once; recording is a no-op
   unless [Obs.Flight.enable] ran). *)
let ph_pop = Obs.Flight.intern "engine.frontier_pop"
let ph_frontier_len = Obs.Flight.intern "engine.frontier_len"

type 's order = Bfs | Dfs | Priority of ('s -> int)

type ('s, 'l) node = { state : 's; parent : int; label : 'l option }

type stop_cause = Max_states | Mem_budget | Stop_requested

type ('s, 'l, 'a) outcome = {
  found : ('a * ('l * 's) list) option;
  states : 's array;
  parents : (int * 'l option) array;
  edges : ('l * int) list array;
  stopped : stop_cause option;
  stats : Stats.t;
}

let run ?(max_states = 1_000_000) ?stop ?mem_budget_words ?(order = Bfs)
    ?(record_edges = false) ~store ~successors ~on_state ~init () =
  Obs.Span.with_ ~name:"engine.run" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let cmp0 = Dbm.cmp_stats () in
  let fl0 = if Obs.Flight.is_enabled () then Obs.Flight.totals () else [] in
  let arena : ('s, 'l) node Arena.t = Arena.create () in
  let bfs = Queue.create () in
  let dfs = ref [] in
  let pq = Pqueue.create () in
  let frontier_len = ref 0 in
  let peak = ref 0 in
  let push_frontier id pri =
    (match order with
     | Bfs -> Queue.push id bfs
     | Dfs -> dfs := id :: !dfs
     | Priority _ -> Pqueue.push pq ~priority:pri id);
    incr frontier_len;
    if !frontier_len > !peak then peak := !frontier_len
  in
  let pop_frontier () =
    let fl = Obs.Flight.start () in
    let popped =
      match order with
      | Bfs -> if Queue.is_empty bfs then None else Some (Queue.pop bfs)
      | Dfs -> (
          match !dfs with
          | [] -> None
          | id :: rest ->
            dfs := rest;
            Some id)
      | Priority _ -> Option.map snd (Pqueue.pop_min pq)
    in
    if popped <> None then decr frontier_len;
    Obs.Flight.stop ph_pop fl;
    popped
  in
  let pri_of st = match order with Priority f -> f st | Bfs | Dfs -> 0 in
  let edge_tbl = Hashtbl.create (if record_edges then 4096 else 1) in
  let add_edge src label dst =
    if record_edges then begin
      let old =
        match Hashtbl.find_opt edge_tbl src with Some e -> e | None -> []
      in
      Hashtbl.replace edge_tbl src ((label, dst) :: old)
    end
  in
  let visited = ref 0 in
  let subsumed = ref 0 in
  let dropped = ref 0 in
  let reopened = ref 0 in
  let stopped = ref None in
  (* The store's retained-words walk is O(store size), so the memory
     budget is polled at geometrically spaced store sizes: the total
     poll cost stays a constant factor of one final walk, yet a run
     that outgrows its budget is caught within ~25% of the threshold. *)
  let next_words_check = ref 2048 in
  let over_mem_budget () =
    match mem_budget_words with
    | None -> false
    | Some budget ->
      let n = Arena.size arena in
      n >= !next_words_check
      && begin
           next_words_check := n + max 1024 (n / 4);
           Store.over_budget store ~budget_words:budget
         end
  in
  let stop_requested () = match stop with Some f -> f () | None -> false in
  (* Offer [st] to the store; on acceptance commit it to the arena and the
     frontier. Returns the id the state lives under, [None] if covered. *)
  let enqueue ~parent ~label st =
    match store.Store.insert st ~id:(Arena.size arena) with
    | Store.Added { dropped = d; reopened = r } ->
      dropped := !dropped + d;
      if r then incr reopened;
      let id = Arena.add arena { state = st; parent; label } in
      push_frontier id (pri_of st);
      Some id
    | Store.Dup id' ->
      incr subsumed;
      Some id'
    | Store.Covered ->
      incr subsumed;
      None
  in
  (match store.Store.insert init ~id:0 with
   | Store.Added { dropped = d; reopened = _ } ->
     dropped := !dropped + d;
     let id = Arena.add arena { state = init; parent = -1; label = None } in
     push_frontier id (pri_of init)
   | Store.Dup _ | Store.Covered ->
     invalid_arg "Engine: store rejected the initial state");
  let found = ref None in
  let running = ref true in
  while !running do
    match pop_frontier () with
    | None -> running := false
    | Some id ->
      let node = Arena.get arena id in
      if not (store.Store.stale node.state) then begin
        incr visited;
        (* Periodic frontier-depth samples become a counter track in the
           trace; the modulo check is the only always-on cost. *)
        if !visited land 1023 = 0 then
          Obs.Flight.sample ph_frontier_len (float_of_int !frontier_len);
        if !visited > max_states || Arena.size arena > max_states then begin
          stopped := Some Max_states;
          running := false
        end
        else if stop_requested () then begin
          stopped := Some Stop_requested;
          running := false
        end
        else if over_mem_budget () then begin
          stopped := Some Mem_budget;
          running := false
        end
        else begin
          match on_state node.state with
          | Some payload ->
            found := Some (payload, id);
            running := false
          | None ->
            let succs = successors node.state in
            Obs.Metrics.Histogram.observe m_fanout
              (float_of_int (List.length succs));
            List.iter
              (fun (label, st') ->
                match enqueue ~parent:id ~label:(Some label) st' with
                | Some id' -> add_edge id label id'
                | None -> ())
              succs
        end
      end
  done;
  let trace_to id =
    let rec walk id acc =
      if id < 0 then acc
      else begin
        let n = Arena.get arena id in
        match n.label with
        | None -> acc
        | Some l -> walk n.parent ((l, n.state) :: acc)
      end
    in
    walk id []
  in
  let cmp1 = Dbm.cmp_stats () in
  let n = Arena.size arena in
  let states = Array.init n (fun i -> (Arena.get arena i).state) in
  let parents =
    Array.init n (fun i ->
        let nd = Arena.get arena i in
        (nd.parent, nd.label))
  in
  let edges =
    if record_edges then
      Array.init n (fun i ->
          match Hashtbl.find_opt edge_tbl i with
          | Some e -> List.rev e
          | None -> [])
    else [||]
  in
  let stats =
    {
      Stats.visited = !visited;
      stored = store.Store.size ();
      subsumed = !subsumed;
      dropped = !dropped;
      reopened = !reopened;
      peak_frontier = !peak;
      store_words = store.Store.words ();
      truncated = !stopped <> None;
      time_s = Unix.gettimeofday () -. t0;
      dbm_phys_eq = cmp1.Dbm.phys_hits - cmp0.Dbm.phys_hits;
      dbm_full_cmp = cmp1.Dbm.full_scans - cmp0.Dbm.full_scans;
      dbm_lattice_cmp = cmp1.Dbm.lattice_scans - cmp0.Dbm.lattice_scans;
      phases =
        (if Obs.Flight.is_enabled () then
           Stats.phase_delta fl0 (Obs.Flight.totals ())
         else []);
    }
  in
  (* Publish the run's counters to the registry (bulk adds at the end of
     the run: the loop above never touches a hashtable). *)
  Obs.Metrics.Counter.incr m_runs;
  Obs.Metrics.Counter.add m_visited stats.Stats.visited;
  Obs.Metrics.Counter.add m_stored stats.Stats.stored;
  Obs.Metrics.Counter.add m_subsumed stats.Stats.subsumed;
  Obs.Metrics.Counter.add m_dropped stats.Stats.dropped;
  Obs.Metrics.Counter.add m_reopened stats.Stats.reopened;
  if stats.Stats.truncated then Obs.Metrics.Counter.incr m_truncated;
  Obs.Metrics.Gauge.set_max m_peak_frontier (float_of_int stats.Stats.peak_frontier);
  Obs.Metrics.Histogram.observe m_run_wall stats.Stats.time_s;
  {
    found = Option.map (fun (p, id) -> (p, trace_to id)) !found;
    states;
    parents;
    edges;
    stopped = !stopped;
    stats;
  }
