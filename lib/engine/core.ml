module Pqueue = Quant_util.Pqueue
module Dbm = Zones.Dbm

(* Engine instruments on the default Obs registry: handles are resolved
   once here; the loop below pays one mutable write per update. *)
let m_runs = Obs.counter "engine.runs"
let m_visited = Obs.counter "engine.visited"
let m_stored = Obs.counter "engine.stored"
let m_subsumed = Obs.counter "engine.subsumed"
let m_dropped = Obs.counter "engine.dropped"
let m_reopened = Obs.counter "engine.reopened"
let m_truncated = Obs.counter "engine.truncated"
let m_peak_frontier = Obs.gauge "engine.peak_frontier"
let m_fanout = Obs.histogram "engine.fanout"
let m_run_wall = Obs.histogram "engine.run_wall_s"

(* Flight-recorder phases (ids interned once; recording is a no-op
   unless [Obs.Flight.enable] ran). *)
let ph_pop = Obs.Flight.intern "engine.frontier_pop"
let ph_frontier_len = Obs.Flight.intern "engine.frontier_len"
let ph_shard_merge = Obs.Flight.intern "engine.shard_merge"
let ph_shard_expand = Obs.Flight.intern "engine.shard_expand"
let ph_mailbox_len = Obs.Flight.intern "engine.mailbox_len"

type 's order = Bfs | Dfs | Priority of ('s -> int)

type ('s, 'l) node = { state : 's; parent : int; label : 'l option }

type stop_cause = Max_states | Mem_budget | Stop_requested

type par_info = {
  par_shards : int;
  rounds : int;
  steals : int;
  handoffs : int;
  mailbox_hwm : int;
}

type ('s, 'l, 'a) outcome = {
  found : ('a * ('l * 's) list) option;
  states : 's array;
  parents : (int * 'l option) array;
  edges : ('l * int) list array;
  stopped : stop_cause option;
  stats : Stats.t;
  par : par_info option;
}

let run ?(max_states = 1_000_000) ?stop ?mem_budget_words ?(order = Bfs)
    ?(record_edges = false) ~store ~successors ~on_state ~init () =
  Obs.Span.with_ ~name:"engine.run" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let cmp0 = Dbm.cmp_stats () in
  let fl0 = if Obs.Flight.is_enabled () then Obs.Flight.totals () else [] in
  let arena : ('s, 'l) node Arena.t = Arena.create () in
  let bfs = Queue.create () in
  let dfs = ref [] in
  let pq = Pqueue.create () in
  let frontier_len = ref 0 in
  let peak = ref 0 in
  let push_frontier id pri =
    (match order with
     | Bfs -> Queue.push id bfs
     | Dfs -> dfs := id :: !dfs
     | Priority _ -> Pqueue.push pq ~priority:pri id);
    incr frontier_len;
    if !frontier_len > !peak then peak := !frontier_len
  in
  let pop_frontier () =
    let fl = Obs.Flight.start () in
    let popped =
      match order with
      | Bfs -> if Queue.is_empty bfs then None else Some (Queue.pop bfs)
      | Dfs -> (
          match !dfs with
          | [] -> None
          | id :: rest ->
            dfs := rest;
            Some id)
      | Priority _ -> Option.map snd (Pqueue.pop_min pq)
    in
    if popped <> None then decr frontier_len;
    Obs.Flight.stop ph_pop fl;
    popped
  in
  let pri_of st = match order with Priority f -> f st | Bfs | Dfs -> 0 in
  let edge_tbl = Hashtbl.create (if record_edges then 4096 else 1) in
  let add_edge src label dst =
    if record_edges then begin
      let old =
        match Hashtbl.find_opt edge_tbl src with Some e -> e | None -> []
      in
      Hashtbl.replace edge_tbl src ((label, dst) :: old)
    end
  in
  let visited = ref 0 in
  let subsumed = ref 0 in
  let dropped = ref 0 in
  let reopened = ref 0 in
  let stopped = ref None in
  (* The store's retained-words walk is O(store size), so the memory
     budget is polled at geometrically spaced store sizes: the total
     poll cost stays a constant factor of one final walk, yet a run
     that outgrows its budget is caught within ~25% of the threshold. *)
  let next_words_check = ref 2048 in
  let over_mem_budget () =
    match mem_budget_words with
    | None -> false
    | Some budget ->
      let n = Arena.size arena in
      n >= !next_words_check
      && begin
           next_words_check := n + max 1024 (n / 4);
           Store.over_budget store ~budget_words:budget
         end
  in
  let stop_requested () = match stop with Some f -> f () | None -> false in
  (* Offer [st] to the store; on acceptance commit it to the arena and the
     frontier. Returns the id the state lives under, [None] if covered. *)
  let enqueue ~parent ~label st =
    match store.Store.insert st ~id:(Arena.size arena) with
    | Store.Added { dropped = d; reopened = r } ->
      dropped := !dropped + d;
      if r then incr reopened;
      let id = Arena.add arena { state = st; parent; label } in
      push_frontier id (pri_of st);
      Some id
    | Store.Dup id' ->
      incr subsumed;
      Some id'
    | Store.Covered ->
      incr subsumed;
      None
  in
  (match store.Store.insert init ~id:0 with
   | Store.Added { dropped = d; reopened = _ } ->
     dropped := !dropped + d;
     let id = Arena.add arena { state = init; parent = -1; label = None } in
     push_frontier id (pri_of init)
   | Store.Dup _ | Store.Covered ->
     invalid_arg "Engine: store rejected the initial state");
  let found = ref None in
  let running = ref true in
  while !running do
    match pop_frontier () with
    | None -> running := false
    | Some id ->
      let node = Arena.get arena id in
      if not (store.Store.stale node.state) then begin
        incr visited;
        (* Periodic frontier-depth samples become a counter track in the
           trace; the modulo check is the only always-on cost. *)
        if !visited land 1023 = 0 then
          Obs.Flight.sample ph_frontier_len (float_of_int !frontier_len);
        if !visited > max_states || Arena.size arena > max_states then begin
          stopped := Some Max_states;
          running := false
        end
        else if stop_requested () then begin
          stopped := Some Stop_requested;
          running := false
        end
        else if over_mem_budget () then begin
          stopped := Some Mem_budget;
          running := false
        end
        else begin
          match on_state node.state with
          | Some payload ->
            found := Some (payload, id);
            running := false
          | None ->
            let succs = successors node.state in
            Obs.Metrics.Histogram.observe m_fanout
              (float_of_int (List.length succs));
            List.iter
              (fun (label, st') ->
                match enqueue ~parent:id ~label:(Some label) st' with
                | Some id' -> add_edge id label id'
                | None -> ())
              succs
        end
      end
  done;
  let trace_to id =
    let rec walk id acc =
      if id < 0 then acc
      else begin
        let n = Arena.get arena id in
        match n.label with
        | None -> acc
        | Some l -> walk n.parent ((l, n.state) :: acc)
      end
    in
    walk id []
  in
  let cmp1 = Dbm.cmp_stats () in
  let n = Arena.size arena in
  let states = Array.init n (fun i -> (Arena.get arena i).state) in
  let parents =
    Array.init n (fun i ->
        let nd = Arena.get arena i in
        (nd.parent, nd.label))
  in
  let edges =
    if record_edges then
      Array.init n (fun i ->
          match Hashtbl.find_opt edge_tbl i with
          | Some e -> List.rev e
          | None -> [])
    else [||]
  in
  let stats =
    {
      Stats.visited = !visited;
      stored = store.Store.size ();
      subsumed = !subsumed;
      dropped = !dropped;
      reopened = !reopened;
      peak_frontier = !peak;
      store_words = store.Store.words ();
      truncated = !stopped <> None;
      time_s = Unix.gettimeofday () -. t0;
      dbm_phys_eq = cmp1.Dbm.phys_hits - cmp0.Dbm.phys_hits;
      dbm_full_cmp = cmp1.Dbm.full_scans - cmp0.Dbm.full_scans;
      dbm_lattice_cmp = cmp1.Dbm.lattice_scans - cmp0.Dbm.lattice_scans;
      phases =
        (if Obs.Flight.is_enabled () then
           Stats.phase_delta fl0 (Obs.Flight.totals ())
         else []);
    }
  in
  (* Publish the run's counters to the registry (bulk adds at the end of
     the run: the loop above never touches a hashtable). *)
  Obs.Metrics.Counter.incr m_runs;
  Obs.Metrics.Counter.add m_visited stats.Stats.visited;
  Obs.Metrics.Counter.add m_stored stats.Stats.stored;
  Obs.Metrics.Counter.add m_subsumed stats.Stats.subsumed;
  Obs.Metrics.Counter.add m_dropped stats.Stats.dropped;
  Obs.Metrics.Counter.add m_reopened stats.Stats.reopened;
  if stats.Stats.truncated then Obs.Metrics.Counter.incr m_truncated;
  Obs.Metrics.Gauge.set_max m_peak_frontier (float_of_int stats.Stats.peak_frontier);
  Obs.Metrics.Histogram.observe m_run_wall stats.Stats.time_s;
  {
    found = Option.map (fun (p, id) -> (p, trace_to id)) !found;
    states;
    parents;
    edges;
    stopped = !stopped;
    stats;
    par = None;
  }

(* ------------------------------------------------------------------ *)
(* Sharded parallel exploration.

   The packed-state space is partitioned over [shards] disjoint shards
   by key hash; each shard owns a private arena, keyed store and FIFO
   frontier, so no lock ever guards a store probe. Execution proceeds
   in barrier-synchronised rounds (Par.Shards): a shard's step first
   {e merges} the mailbox messages other shards addressed to it in the
   previous round, then {e expands} its frontier to exhaustion —
   in-shard successors continue within the same round, cross-shard
   successors are pushed into the current round's outboxes. The round
   barrier is the only synchronisation: a mailbox is written by exactly
   one shard step in round [r] and read by exactly one in round [r+1].

   Determinism: which domain runs a shard step never influences what
   the step computes — shard state is touched only by its own step, and
   messages are merged in (source shard, push order), a key order
   independent of scheduling. Node ids are made canonical after the
   run by densely renumbering shards in rotation order starting at the
   initial state's shard, so the initial state is id 0 and every id,
   trace, edge list and stat is byte-identical across pool sizes.
   [time_s] and [phases] are scheduling observables, so sharded stats
   pin them to [0.0] / [[]]; wall-clock belongs to the caller's bench
   harness, steal counts to {!par_info}. *)

type ('s, 'l) snode = {
  nstate : 's;
  nkey : Codec.packed;
  nparent : int; (* global id, -1 for the root *)
  nlabel : 'l option;
}

(* A successor handed across shards. [m_res]/[m_res_i] carry the
   producer's edge-resolution slot: the consumer writes the id it
   assigned (or keeps -1 for covered) before the next barrier, which is
   what makes [record_edges] exact under sharding. *)
type ('s, 'l) msg = {
  m_state : 's;
  m_key : Codec.packed;
  m_parent : int;
  m_label : 'l;
  m_res : int array;
  m_res_i : int; (* -1 when edges are off *)
}

type ('s, 'l, 'a) shard_ctx = {
  sid : int;
  arena : ('s, 'l) snode Arena.t;
  st : 's Store.keyed;
  frontier : int Queue.t; (* local indices *)
  mutable visited : int;
  mutable subsumed : int;
  mutable dropped : int;
  mutable reopened : int;
  mutable peak : int;
  mutable sent : int;
  mutable witnesses : (int * 'a) list; (* local idx, newest first *)
  mutable halted : bool; (* stop_on_found: witness seen, stop expanding *)
  mutable elog : (int * 'l array * int array) list; (* gid, labels, dst gids *)
}

let run_sharded ?(max_states = 1_000_000) ?stop ?mem_budget_words
    ?(record_edges = false) ?(stop_on_found = true) ?prefer ?(shards = 64)
    ?shard_of ?pool ~(store : unit -> 's Store.keyed)
    ~(key : 's -> Codec.packed) ~successors ~on_state ~init () =
  Obs.Span.with_ ~name:"engine.run_sharded" @@ fun () ->
  if shards < 1 then invalid_arg "Engine: shards must be >= 1";
  let nsh = shards in
  let cmp0 = Dbm.cmp_stats () in
  let route =
    match shard_of with
    | Some f -> f
    | None ->
      (* Route on the high half of the memoized key hash: the store's
         probe tables index on the low bits, so low-bit routing would
         cluster every shard's entries into a slice of its table. *)
      fun pk -> Codec.hash pk lsr 32 mod nsh
  in
  let shard_arr =
    Array.init nsh (fun sid ->
        {
          sid;
          arena = Arena.create ();
          st = store ();
          frontier = Queue.create ();
          visited = 0;
          subsumed = 0;
          dropped = 0;
          reopened = 0;
          peak = 0;
          sent = 0;
          witnesses = [];
          halted = false;
          elog = [];
        })
  in
  (* boxes.(p).(src).(dst): double-buffered so round r writes parity p
     while reading parity 1-p; the barrier flip in [continue_] is the
     happens-before edge between writer and reader. *)
  let boxes =
    Array.init 2 (fun _ ->
        Array.init nsh (fun _ -> Array.init nsh (fun _ -> Par.Mailbox.create ())))
  in
  let parity = ref 0 in
  let stopped = ref None in
  let no_res = [||] in
  (* Offer a state to shard [sh]'s store; on acceptance commit it to the
     arena and frontier. Returns the global id it lives under, -1 when
     covered. Global ids interleave shards ([idx * nsh + sid]) so a
     node's home shard is recoverable from its id alone. *)
  let accept sh ~parent ~label ~pk st =
    let gid = (Arena.size sh.arena * nsh) + sh.sid in
    match sh.st.Store.kinsert st ~key:pk ~id:gid with
    | Store.Added { dropped = d; reopened = r } ->
      sh.dropped <- sh.dropped + d;
      if r then sh.reopened <- sh.reopened + 1;
      ignore
        (Arena.add sh.arena
           { nstate = st; nkey = pk; nparent = parent; nlabel = label });
      Queue.push (gid / nsh) sh.frontier;
      let len = Queue.length sh.frontier in
      if len > sh.peak then sh.peak <- len;
      gid
    | Store.Dup id' ->
      sh.subsumed <- sh.subsumed + 1;
      id'
    | Store.Covered ->
      sh.subsumed <- sh.subsumed + 1;
      -1
  in
  let expand sh idx =
    let node = Arena.get sh.arena idx in
    if not (sh.st.Store.kstale node.nstate ~key:node.nkey) then begin
      sh.visited <- sh.visited + 1;
      match on_state node.nstate with
      | Some payload ->
        sh.witnesses <- (idx, payload) :: sh.witnesses;
        if stop_on_found then sh.halted <- true
      | None ->
        let gid = (idx * nsh) + sh.sid in
        let succs = successors node.nstate in
        Obs.Metrics.Histogram.observe m_fanout
          (float_of_int (List.length succs));
        let res =
          if record_edges && succs <> [] then begin
            let labels = Array.of_list (List.map fst succs) in
            let dsts = Array.make (Array.length labels) (-1) in
            sh.elog <- (gid, labels, dsts) :: sh.elog;
            dsts
          end
          else no_res
        in
        let cur = boxes.(!parity) in
        List.iteri
          (fun j (label, st') ->
            let pk = key st' in
            let ds = route pk in
            if ds = sh.sid then begin
              let g' = accept sh ~parent:gid ~label:(Some label) ~pk st' in
              if res != no_res then res.(j) <- g'
            end
            else begin
              sh.sent <- sh.sent + 1;
              Par.Mailbox.push cur.(sh.sid).(ds)
                {
                  m_state = st';
                  m_key = pk;
                  m_parent = gid;
                  m_label = label;
                  m_res = res;
                  m_res_i = (if res != no_res then j else -1);
                }
            end)
          succs
    end
  in
  let step sid =
    let sh = shard_arr.(sid) in
    let fl = Obs.Flight.start () in
    (* Merge: drain last round's inboxes in source-shard order; within a
       box, FIFO push order. Both orders are scheduling-independent. *)
    let prev = boxes.(1 - !parity) in
    for src = 0 to nsh - 1 do
      let box = prev.(src).(sid) in
      if Par.Mailbox.length box > 0 then begin
        Obs.Flight.sample ph_mailbox_len (float_of_int (Par.Mailbox.length box));
        Par.Mailbox.iter
          (fun m ->
            let g =
              accept sh ~parent:m.m_parent ~label:(Some m.m_label) ~pk:m.m_key
                m.m_state
            in
            if m.m_res_i >= 0 then m.m_res.(m.m_res_i) <- g)
          box;
        Par.Mailbox.clear box
      end
    done;
    let fl = Obs.Flight.stop_start ph_shard_merge fl in
    (* Expand to local exhaustion; in-shard successors keep the round
       going, cross-shard ones wait in the outboxes for the barrier. *)
    while (not sh.halted) && not (Queue.is_empty sh.frontier) do
      expand sh (Queue.pop sh.frontier)
    done;
    Obs.Flight.stop ph_shard_expand fl
  in
  let pk0 = key init in
  let s0 = route pk0 in
  if s0 < 0 || s0 >= nsh then invalid_arg "Engine: shard_of out of range";
  if accept shard_arr.(s0) ~parent:(-1) ~label:None ~pk:pk0 init <> s0 then
    invalid_arg "Engine: store rejected the initial state";
  let rounds = ref 0 in
  let found_any () =
    Array.exists (fun sh -> sh.witnesses <> []) shard_arr
  in
  let total_nodes () =
    Array.fold_left (fun a sh -> a + Arena.size sh.arena) 0 shard_arr
  in
  let total_visited () =
    Array.fold_left (fun a sh -> a + sh.visited) 0 shard_arr
  in
  let total_words () =
    Array.fold_left (fun a sh -> a + sh.st.Store.kwords ()) 0 shard_arr
  in
  let pending () =
    Array.exists
      (fun row -> Array.exists (fun b -> Par.Mailbox.length b > 0) row)
      boxes.(!parity)
    || Array.exists (fun sh -> not (Queue.is_empty sh.frontier)) shard_arr
  in
  (* Global bounds are re-checked only here, at round barriers — a round
     may overshoot [max_states]/the memory budget by its own growth, but
     which states exist when a bound trips is scheduling-independent. *)
  let next_words_check = ref 2048 in
  let continue_ () =
    incr rounds;
    let n = total_nodes () in
    if stop_on_found && found_any () then false
    else if total_visited () > max_states || n > max_states then begin
      stopped := Some Max_states;
      false
    end
    else if match stop with Some f -> f () | None -> false then begin
      stopped := Some Stop_requested;
      false
    end
    else if
      match mem_budget_words with
      | Some budget when n >= !next_words_check ->
        next_words_check := n + max 1024 (n / 4);
        total_words () > budget
      | _ -> false
    then begin
      stopped := Some Mem_budget;
      false
    end
    else if not (pending ()) then false
    else begin
      parity := 1 - !parity;
      true
    end
  in
  let pstats = Par.Shards.run ?pool ~shards:nsh ~step ~continue_ () in
  (* Canonical dense renumbering: shards in rotation order from the
     initial state's shard, nodes in arena (insertion) order within a
     shard. The rotation puts the initial state at id 0. *)
  let order = Array.init nsh (fun i -> (s0 + i) mod nsh) in
  let base = Array.make nsh 0 in
  let total = ref 0 in
  Array.iter
    (fun sid ->
      base.(sid) <- !total;
      total := !total + Arena.size shard_arr.(sid).arena)
    order;
  let dense_of gid = if gid < 0 then -1 else base.(gid mod nsh) + (gid / nsh) in
  let n = !total in
  let states = Array.make n init in
  let parents = Array.make n (-1, None) in
  Array.iter
    (fun sid ->
      let sh = shard_arr.(sid) in
      Arena.iteri
        (fun idx nd ->
          states.(base.(sid) + idx) <- nd.nstate;
          parents.(base.(sid) + idx) <- (dense_of nd.nparent, nd.nlabel))
        sh.arena)
    order;
  let edges =
    if not record_edges then [||]
    else begin
      let a = Array.make n [] in
      Array.iter
        (fun sid ->
          List.iter
            (fun (gid, labels, dsts) ->
              let l = ref [] in
              for j = Array.length labels - 1 downto 0 do
                (* -1 slots: covered successors, or cross-shard hand-offs
                   the run truncated before merging. *)
                if dsts.(j) >= 0 then
                  l := (labels.(j), dense_of dsts.(j)) :: !l
              done;
              a.(dense_of gid) <- !l)
            shard_arr.(sid).elog)
        order;
      a
    end
  in
  (* Witness choice: the canonical minimum over all shards — [prefer]
     first (when given), then the smallest canonical id. With
     [stop_on_found] every witness is from the same (first hitting)
     round, so this is exactly "first witness a sequential rotation
     sweep would meet". *)
  let chosen = ref None in
  Array.iter
    (fun sid ->
      let sh = shard_arr.(sid) in
      List.iter
        (fun (idx, payload) ->
          let gid = (idx * nsh) + sh.sid in
          match !chosen with
          | None -> chosen := Some (payload, gid)
          | Some (bp, bg) ->
            let c = match prefer with Some f -> f payload bp | None -> 0 in
            if c < 0 || (c = 0 && dense_of gid < dense_of bg) then
              chosen := Some (payload, gid))
        (List.rev sh.witnesses))
    order;
  let trace_to gid =
    let rec walk gid acc =
      if gid < 0 then acc
      else begin
        let nd = Arena.get shard_arr.(gid mod nsh).arena (gid / nsh) in
        match nd.nlabel with
        | None -> acc
        | Some l -> walk nd.nparent ((l, nd.nstate) :: acc)
      end
    in
    walk gid []
  in
  let cmp1 = Dbm.cmp_stats () in
  let sum f = Array.fold_left (fun a sh -> a + f sh) 0 shard_arr in
  let stats =
    {
      Stats.visited = sum (fun sh -> sh.visited);
      stored = sum (fun sh -> sh.st.Store.ksize ());
      subsumed = sum (fun sh -> sh.subsumed);
      dropped = sum (fun sh -> sh.dropped);
      reopened = sum (fun sh -> sh.reopened);
      peak_frontier = sum (fun sh -> sh.peak);
      store_words = sum (fun sh -> sh.st.Store.kwords ());
      truncated = !stopped <> None;
      time_s = 0.0;
      dbm_phys_eq = cmp1.Dbm.phys_hits - cmp0.Dbm.phys_hits;
      dbm_full_cmp = cmp1.Dbm.full_scans - cmp0.Dbm.full_scans;
      dbm_lattice_cmp = cmp1.Dbm.lattice_scans - cmp0.Dbm.lattice_scans;
      phases = [];
    }
  in
  let mailbox_hwm =
    Array.fold_left
      (fun acc plane ->
        Array.fold_left
          (fun acc row ->
            Array.fold_left (fun acc b -> max acc (Par.Mailbox.hwm b)) acc row)
          acc plane)
      0 boxes
  in
  let par =
    Some
      {
        par_shards = nsh;
        rounds = pstats.Par.Shards.rounds;
        steals = pstats.Par.Shards.steals;
        handoffs = sum (fun sh -> sh.sent);
        mailbox_hwm;
      }
  in
  Obs.Metrics.Counter.incr m_runs;
  Obs.Metrics.Counter.add m_visited stats.Stats.visited;
  Obs.Metrics.Counter.add m_stored stats.Stats.stored;
  Obs.Metrics.Counter.add m_subsumed stats.Stats.subsumed;
  Obs.Metrics.Counter.add m_dropped stats.Stats.dropped;
  Obs.Metrics.Counter.add m_reopened stats.Stats.reopened;
  if stats.Stats.truncated then Obs.Metrics.Counter.incr m_truncated;
  Obs.Metrics.Gauge.set_max m_peak_frontier
    (float_of_int stats.Stats.peak_frontier);
  {
    found = Option.map (fun (p, gid) -> (p, trace_to gid)) !chosen;
    states;
    parents;
    edges;
    stopped = !stopped;
    stats;
    par;
  }
