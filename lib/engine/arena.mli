(** Append-only node arena: contiguous ids, amortized O(1) growth.

    The exploration core keeps one node per stored state here; ids double
    as state identifiers for parent links, trace reconstruction and the
    graph views handed back to analyses. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int

(** [add t x] appends [x] and returns its id ([size] before the call). *)
val add : 'a t -> 'a -> int

(** @raise Invalid_argument on an out-of-range id. *)
val get : 'a t -> int -> 'a

(** Snapshot of the current contents, indexed by id. *)
val to_array : 'a t -> 'a array

val iteri : (int -> 'a -> unit) -> 'a t -> unit

(** Arena plus a {!Codec.packed} index: dense ids in insertion order,
    O(1) id lookup on the memoized codec hash. This is the substrate for
    backends that build explicit graphs keyed on discrete states (the
    digital MDP expansion, value-iteration state maps). *)
module Keyed : sig
  type 'a t

  (** [size_hint] (default 4096) seeds the index table; see
      {!Store} for the growth contract. *)
  val create : ?size_hint:int -> unit -> 'a t

  val size : 'a t -> int

  (** @raise Invalid_argument on an out-of-range id. *)
  val get : 'a t -> int -> 'a

  val find : 'a t -> Codec.packed -> int option

  (** [intern t k x] is [(id, fresh)]: the id already bound to [k], or a
      fresh id now holding [x] ([fresh] tells which). *)
  val intern : 'a t -> Codec.packed -> 'a -> int * bool

  val to_array : 'a t -> 'a array

  (** Retained-heap estimate (words) of slots + index; O(size). *)
  val words : 'a t -> int
end
