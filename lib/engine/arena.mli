(** Append-only node arena: contiguous ids, amortized O(1) growth.

    The exploration core keeps one node per stored state here; ids double
    as state identifiers for parent links, trace reconstruction and the
    graph views handed back to analyses. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int

(** [add t x] appends [x] and returns its id ([size] before the call). *)
val add : 'a t -> 'a -> int

(** @raise Invalid_argument on an out-of-range id. *)
val get : 'a t -> int -> 'a

(** Snapshot of the current contents, indexed by id. *)
val to_array : 'a t -> 'a array

val iteri : (int -> 'a -> unit) -> 'a t -> unit
