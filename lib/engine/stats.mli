(** Per-run instrumentation of the exploration core.

    Every {!Core.run} returns one of these; front ends ({e quantcli},
    {e bench}) print it as JSON so performance trajectories can be
    compared across revisions. *)

type t = {
  visited : int;  (** states popped from the frontier and processed *)
  stored : int;  (** states currently kept in the state store *)
  subsumed : int;
      (** candidate states rejected because a stored state covers them
          (equal, including, or cheaper, depending on the store) *)
  dropped : int;  (** stored states evicted by a stronger newcomer *)
  peak_frontier : int;  (** maximum frontier (waiting list) length *)
  truncated : bool;  (** the [max_states] bound stopped the run *)
  time_s : float;  (** wall-clock seconds for the run *)
  dbm_phys_eq : int;
      (** DBM comparisons settled by pointer equality during the run
          (nonzero only when zones are hash-consed) *)
  dbm_full_cmp : int;  (** DBM comparisons that scanned matrix entries *)
}

val zero : t

(** [basic ~visited ~stored] — all other counters zero; for analyses that
    derive their numbers outside the core (e.g. liveness graph passes). *)
val basic : visited:int -> stored:int -> t

(** Fraction of store insertions rejected as already covered. *)
val store_hit_rate : t -> float

(** One-line JSON object with every counter. *)
val to_json : t -> string

val pp : Format.formatter -> t -> unit
