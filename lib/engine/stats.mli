(** Per-run instrumentation of the exploration core.

    Every {!Core.run} returns one of these; front ends ({e quantcli},
    {e bench}) print it as JSON so performance trajectories can be
    compared across revisions. The same counters are also published to
    the {!Obs} default metrics registry under [engine.*] names. *)

type t = {
  visited : int;  (** states popped from the frontier and processed *)
  stored : int;  (** states currently kept in the state store *)
  subsumed : int;
      (** candidate states rejected because a stored state covers them
          (equal, including, or cheaper, depending on the store) *)
  dropped : int;  (** stored states evicted by a stronger newcomer *)
  reopened : int;
      (** best-cost re-openings: a stored state re-admitted because a
          cheaper path to it arrived (CORA's Dijkstra; always 0 for the
          other stores) *)
  peak_frontier : int;  (** maximum frontier (waiting list) length *)
  store_words : int;
      (** retained-heap estimate of the state store at the end of the
          run, in words (see {!Store.t.words}): the codec's memory win
          shows up here as packed vs. polymorphic store footprint *)
  truncated : bool;  (** the [max_states] bound stopped the run *)
  time_s : float;  (** wall-clock seconds for the run *)
  dbm_phys_eq : int;
      (** DBM comparisons settled by pointer identity during the run —
          with sealed zones this covers every equality decision *)
  dbm_full_cmp : int;
      (** DBM equality checks that scanned matrix entries (un-sealed
          operands only) *)
  dbm_lattice_cmp : int;
      (** subset checks between distinct zones — the one comparison the
          sealing discipline cannot settle by pointer *)
  phases : (string * (int * float)) list;
      (** flight-recorder phase totals attributable to this run —
          [(name, (count, total seconds))], sorted by name ([dbm.seal],
          [codec.encode], [store.probe], ...); empty when the recorder
          was off (see {!Obs.Flight}) *)
}

val zero : t

(** [basic ~visited ~stored] — all other counters zero; for analyses that
    derive their numbers outside the core (e.g. liveness graph passes). *)
val basic : visited:int -> stored:int -> t

(** Fraction of store insertions rejected as already covered.

    "Attempts" counts [stored + dropped + subsumed] and deliberately
    {e excludes} re-opened best-cost states: a re-opening (tracked in
    the [reopened] field) is genuinely new work for the frontier, not a
    store answer, so best-cost (CORA) runs report a meaningful hit rate
    plus an explicit re-opening count rather than a diluted rate. *)
val store_hit_rate : t -> float

(** [phase_delta before after] — the per-phase gain between two
    {!Obs.Flight.totals} snapshots (both sorted by name): what the
    bracketed stretch of work spent where. {!Core.run} uses it to
    attribute global flight totals to one run. *)
val phase_delta :
  (string * (int * float)) list ->
  (string * (int * float)) list ->
  (string * (int * float)) list

(** One-line JSON object with every counter (escaping-correct, via
    {!Obs.Json}). *)
val to_json : t -> string

(** The same object as a JSON value, for embedding in larger reports. *)
val to_json_value : t -> Obs.Json.t

val pp : Format.formatter -> t -> unit
