type t = {
  visited : int;
  stored : int;
  subsumed : int;
  dropped : int;
  reopened : int;
  peak_frontier : int;
  store_words : int;
  truncated : bool;
  time_s : float;
  dbm_phys_eq : int;
  dbm_full_cmp : int;
  dbm_lattice_cmp : int;
  phases : (string * (int * float)) list;
      (** flight-recorder phase totals attributable to this run —
          [(name, (count, total seconds))], sorted by name; empty when
          the recorder was off *)
}

let zero =
  {
    visited = 0;
    stored = 0;
    subsumed = 0;
    dropped = 0;
    reopened = 0;
    peak_frontier = 0;
    store_words = 0;
    truncated = false;
    time_s = 0.0;
    dbm_phys_eq = 0;
    dbm_full_cmp = 0;
    dbm_lattice_cmp = 0;
    phases = [];
  }

let basic ~visited ~stored = { zero with visited; stored }

(* "Attempts" are insertions the store answered definitively: kept,
   evicted-by or covered-by an incomparable state. Re-opened best-cost
   states are counted separately in [reopened] — a re-opening is new
   work, not a cache answer — so CORA runs report both numbers instead
   of folding re-openings into the hit rate's denominator. *)
let store_hit_rate t =
  let attempts = t.stored + t.dropped + t.subsumed in
  if attempts = 0 then 0.0 else float_of_int t.subsumed /. float_of_int attempts

(* [phase_delta before after] — what the flight totals gained between
   two snapshots, i.e. the phase work of the bracketed run. Both lists
   are sorted by name (Flight.totals guarantees it); names only ever
   gain counts, so a one-pass merge suffices. *)
let phase_delta before after =
  let find name = List.assoc_opt name before in
  List.filter_map
    (fun (name, (c, s)) ->
      let c0, s0 = match find name with Some v -> v | None -> (0, 0.0) in
      if c - c0 > 0 then Some (name, (c - c0, s -. s0)) else None)
    after

let phases_json t =
  Obs.Json.Obj
    (List.map
       (fun (name, (count, total_s)) ->
         ( name,
           Obs.Json.Obj
             [
               ("count", Obs.Json.Int count);
               ("total_s", Obs.Json.Float total_s);
             ] ))
       t.phases)

let to_json_value t =
  Obs.Json.Obj
    ([
      ("visited", Obs.Json.Int t.visited);
      ("stored", Obs.Json.Int t.stored);
      ("subsumed", Obs.Json.Int t.subsumed);
      ("dropped", Obs.Json.Int t.dropped);
      ("reopened", Obs.Json.Int t.reopened);
      ("peak_frontier", Obs.Json.Int t.peak_frontier);
      ("store_words", Obs.Json.Int t.store_words);
      ("store_hit_rate", Obs.Json.Float (store_hit_rate t));
      ("truncated", Obs.Json.Bool t.truncated);
      ("time_s", Obs.Json.Float t.time_s);
      ("dbm_phys_eq", Obs.Json.Int t.dbm_phys_eq);
      ("dbm_full_cmp", Obs.Json.Int t.dbm_full_cmp);
      ("dbm_lattice_cmp", Obs.Json.Int t.dbm_lattice_cmp);
    ]
    @ if t.phases = [] then [] else [ ("phases", phases_json t) ])

let to_json t = Obs.Json.to_string (to_json_value t)

let pp ppf t =
  Format.fprintf ppf
    "visited %d, stored %d, subsumed %d, dropped %d, reopened %d, peak \
     frontier %d, hit rate %.2f, %.3fs"
    t.visited t.stored t.subsumed t.dropped t.reopened t.peak_frontier
    (store_hit_rate t) t.time_s
