type t = {
  visited : int;
  stored : int;
  subsumed : int;
  dropped : int;
  peak_frontier : int;
  truncated : bool;
  time_s : float;
  dbm_phys_eq : int;
  dbm_full_cmp : int;
}

let zero =
  {
    visited = 0;
    stored = 0;
    subsumed = 0;
    dropped = 0;
    peak_frontier = 0;
    truncated = false;
    time_s = 0.0;
    dbm_phys_eq = 0;
    dbm_full_cmp = 0;
  }

let basic ~visited ~stored = { zero with visited; stored }

let store_hit_rate t =
  let attempts = t.stored + t.dropped + t.subsumed in
  if attempts = 0 then 0.0 else float_of_int t.subsumed /. float_of_int attempts

let to_json t =
  Printf.sprintf
    "{\"visited\":%d,\"stored\":%d,\"subsumed\":%d,\"dropped\":%d,\
     \"peak_frontier\":%d,\"store_hit_rate\":%.4f,\"truncated\":%b,\
     \"time_s\":%.6f,\"dbm_phys_eq\":%d,\"dbm_full_cmp\":%d}"
    t.visited t.stored t.subsumed t.dropped t.peak_frontier (store_hit_rate t)
    t.truncated t.time_s t.dbm_phys_eq t.dbm_full_cmp

let pp ppf t =
  Format.fprintf ppf
    "visited %d, stored %d, subsumed %d, dropped %d, peak frontier %d, hit \
     rate %.2f, %.3fs"
    t.visited t.stored t.subsumed t.dropped t.peak_frontier (store_hit_rate t)
    t.time_s
