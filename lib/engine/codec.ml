type field =
  | Bool of string
  | Bounded of { name : string; lo : int; hi : int }
  | Loc of { name : string; count : int }
  | Enum of { name : string; symbols : string array }
  | Word of string

type packed = { hash : int; words : int array }

(* A compiled field: which word it lives in, where, and how the stored
   offset maps back to the value. [bits = word_bits] marks an unpacked
   [Word] field (raw value, may be negative). *)
type slot = { word : int; shift : int; bits : int; base : int }

(* Usable bits per packed word. 62 keeps every packed chunk (and the
   whole word) a non-negative OCaml int, sidestepping sign-extension on
   the 63-bit native int. *)
let word_bits = 62

module PackedKey = struct
  type t = packed

  let equal a b =
    a == b
    || (a.hash = b.hash
        &&
        let n = Array.length a.words in
        n = Array.length b.words
        &&
        let rec eq i = i >= n || (a.words.(i) = b.words.(i) && eq (i + 1)) in
        eq 0)

  let hash p = p.hash
end

module Weak_tbl = Weak.Make (PackedKey)

type spec = {
  fields : field array;
  slots : slot array;
  nw : int;
  pool : Weak_tbl.t;
  mu : Mutex.t;
}

let field_name_of = function
  | Bool n | Word n -> n
  | Bounded { name; _ } | Loc { name; _ } | Enum { name; _ } -> name

(* Inclusive domain of a field, [None] for full words. *)
let range f =
  match f with
  | Bool _ -> Some (0, 1)
  | Bounded { name; lo; hi } ->
    if lo > hi then
      invalid_arg (Printf.sprintf "Codec: empty range for field %S" name);
    Some (lo, hi)
  | Loc { name; count } ->
    if count <= 0 then
      invalid_arg (Printf.sprintf "Codec: empty location set for field %S" name);
    Some (0, count - 1)
  | Enum { name; symbols } ->
    if Array.length symbols = 0 then
      invalid_arg (Printf.sprintf "Codec: empty enum for field %S" name);
    Some (0, Array.length symbols - 1)
  | Word _ -> None

let bits_for card =
  (* Smallest [w] with [2^w >= card]; 0 when the domain is a singleton. *)
  let rec go w = if 1 lsl w >= card then w else go (w + 1) in
  go 0

let spec fields =
  let fields = Array.of_list fields in
  let slots = Array.make (Array.length fields) { word = 0; shift = 0; bits = 0; base = 0 } in
  (* Greedy first-fit: narrow fields fill the current word left to
     right; a field that does not fit opens the next word; [Word]
     fields always take a whole fresh word. *)
  let w = ref 0 and b = ref 0 in
  Array.iteri
    (fun i f ->
      match range f with
      | None ->
        if !b > 0 then incr w;
        slots.(i) <- { word = !w; shift = 0; bits = word_bits; base = 0 };
        incr w;
        b := 0
      | Some (lo, hi) ->
        let bits = bits_for (hi - lo + 1) in
        if bits = 0 then
          (* Singleton domain: no payload. Park the slot on word 0 (which
             always exists) instead of the cursor word, which may never
             be allocated. *)
          slots.(i) <- { word = 0; shift = 0; bits = 0; base = lo }
        else begin
          if !b + bits > word_bits then begin
            incr w;
            b := 0
          end;
          slots.(i) <- { word = !w; shift = !b; bits; base = lo };
          b := !b + bits
        end)
    fields;
  let nw = if !b > 0 then !w + 1 else !w in
  {
    fields;
    slots;
    nw = max nw 1;
    pool = Weak_tbl.create 1024;
    mu = Mutex.create ();
  }

let n_fields s = Array.length s.fields
let n_words s = s.nw
let field_name s i = field_name_of s.fields.(i)

(* Splitmix-style mixer over every word — no truncation, unlike the
   polymorphic [Hashtbl.hash] which stops after ~10 meaningful words.
   The multiplier fits the 63-bit native int; arithmetic wraps mod 2^63,
   which is exactly what a multiplicative mixer wants. *)
let mix h x =
  let h = h lxor x in
  let h = h * 0x2545F4914F6CDD1D in
  h lxor (h lsr 29)

let hash_words ws =
  let n = Array.length ws in
  let h = ref (mix 0x9E3779B9 n) in
  for i = 0 to n - 1 do
    h := mix !h ws.(i)
  done;
  !h land max_int

let out_of_range s i v =
  invalid_arg
    (Printf.sprintf "Codec.encode: value %d out of range for field %S" v
       (field_name s i))

let encode s read =
  let ws = Array.make s.nw 0 in
  Array.iteri
    (fun i f ->
      let v = read i in
      let sl = s.slots.(i) in
      match range f with
      | None -> ws.(sl.word) <- v
      | Some (lo, hi) ->
        if v < lo || v > hi then out_of_range s i v;
        ws.(sl.word) <- ws.(sl.word) lor ((v - lo) lsl sl.shift))
    s.fields;
  { hash = hash_words ws; words = ws }

let decode s p =
  Array.mapi
    (fun i f ->
      let sl = s.slots.(i) in
      match range f with
      | None -> p.words.(sl.word)
      | Some _ ->
        ((p.words.(sl.word) lsr sl.shift) land ((1 lsl sl.bits) - 1)) + sl.base)
    s.fields

let equal = PackedKey.equal
let hash p = p.hash

let intern s p =
  Mutex.lock s.mu;
  let q = Weak_tbl.merge s.pool p in
  Mutex.unlock s.mu;
  q

(* Record (header + 2 fields) plus the words array (header + cells). *)
let heap_words s = 4 + s.nw

let to_hex p =
  let buf = Buffer.create (16 * (Array.length p.words + 1)) in
  Buffer.add_char buf '[';
  Array.iteri
    (fun i w ->
      if i > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "%x" w))
    p.words;
  Buffer.add_string buf (Printf.sprintf "] h=%x" p.hash);
  Buffer.contents buf

module Tbl = Hashtbl.Make (PackedKey)
