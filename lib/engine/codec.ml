type field =
  | Bool of string
  | Bounded of { name : string; lo : int; hi : int }
  | Loc of { name : string; count : int }
  | Enum of { name : string; symbols : string array }
  | Word of string

(* One int block per packed state: slot 0 holds the memoized full-width
   hash, slots 1..nw the packed words. A single allocation per encode,
   and a table probe reads the hash and the words off the same block. *)
type packed = int array

(* A compiled field: which word it lives in, where, and how the stored
   offset maps back to the value. [bits = word_bits] marks an unpacked
   [Word] field (raw value, may be negative). *)
type slot = { word : int; shift : int; bits : int; base : int }

(* Usable bits per packed word. 62 keeps every packed chunk (and the
   whole word) a non-negative OCaml int, sidestepping sign-extension on
   the 63-bit native int. *)
let word_bits = 62

module PackedKey = struct
  type t = packed

  (* Slot 0 is the hash, so comparing from index 0 settles almost every
     mismatch on the first cell. *)
  let equal a b =
    a == b
    || (let n = Array.length a in
        n = Array.length b
        &&
        let rec eq i = i >= n || (a.(i) = b.(i) && eq (i + 1)) in
        eq 0)

  let hash (p : packed) = p.(0)
end

module Weak_tbl = Weak.Make (PackedKey)

type spec = {
  fields : field array;
  slots : slot array;
  hi_off : int array;
      (* per field: [hi - lo] of its domain, [-1] for raw [Word] fields —
         lets [encode] range-check without re-deriving the domain (and
         its allocations) on every call *)
  nw : int;
  pool : Weak_tbl.t;
  mu : Mutex.t;
}

let field_name_of = function
  | Bool n | Word n -> n
  | Bounded { name; _ } | Loc { name; _ } | Enum { name; _ } -> name

(* Inclusive domain of a field, [None] for full words. *)
let range f =
  match f with
  | Bool _ -> Some (0, 1)
  | Bounded { name; lo; hi } ->
    if lo > hi then
      invalid_arg (Printf.sprintf "Codec: empty range for field %S" name);
    Some (lo, hi)
  | Loc { name; count } ->
    if count <= 0 then
      invalid_arg (Printf.sprintf "Codec: empty location set for field %S" name);
    Some (0, count - 1)
  | Enum { name; symbols } ->
    if Array.length symbols = 0 then
      invalid_arg (Printf.sprintf "Codec: empty enum for field %S" name);
    Some (0, Array.length symbols - 1)
  | Word _ -> None

let bits_for card =
  (* Smallest [w] with [2^w >= card]; 0 when the domain is a singleton. *)
  let rec go w = if 1 lsl w >= card then w else go (w + 1) in
  go 0

let spec fields =
  let fields = Array.of_list fields in
  let slots = Array.make (Array.length fields) { word = 0; shift = 0; bits = 0; base = 0 } in
  (* Greedy first-fit: narrow fields fill the current word left to
     right; a field that does not fit opens the next word; [Word]
     fields always take a whole fresh word. *)
  let w = ref 0 and b = ref 0 in
  Array.iteri
    (fun i f ->
      match range f with
      | None ->
        if !b > 0 then incr w;
        slots.(i) <- { word = !w; shift = 0; bits = word_bits; base = 0 };
        incr w;
        b := 0
      | Some (lo, hi) ->
        let bits = bits_for (hi - lo + 1) in
        if bits = 0 then
          (* Singleton domain: no payload. Park the slot on word 0 (which
             always exists) instead of the cursor word, which may never
             be allocated. *)
          slots.(i) <- { word = 0; shift = 0; bits = 0; base = lo }
        else begin
          if !b + bits > word_bits then begin
            incr w;
            b := 0
          end;
          slots.(i) <- { word = !w; shift = !b; bits; base = lo };
          b := !b + bits
        end)
    fields;
  let nw = if !b > 0 then !w + 1 else !w in
  let hi_off =
    Array.map
      (fun f -> match range f with None -> -1 | Some (lo, hi) -> hi - lo)
      fields
  in
  {
    fields;
    slots;
    hi_off;
    nw = max nw 1;
    pool = Weak_tbl.create 1024;
    mu = Mutex.create ();
  }

let n_fields s = Array.length s.fields
let n_words s = s.nw
let field_name s i = field_name_of s.fields.(i)

(* Splitmix-style mixer over every word — no truncation, unlike the
   polymorphic [Hashtbl.hash] which stops after ~10 meaningful words.
   The multiplier fits the 63-bit native int; arithmetic wraps mod 2^63,
   which is exactly what a multiplicative mixer wants. *)
let mix h x =
  let h = h lxor x in
  let h = h * 0x2545F4914F6CDD1D in
  h lxor (h lsr 29)

(* Fill slot 0 of [p] with the hash of slots 1..n (the packed words). *)
let seal_hash (p : packed) =
  let n = Array.length p - 1 in
  let h = ref (mix 0x9E3779B9 n) in
  for i = 1 to n do
    h := mix !h p.(i)
  done;
  p.(0) <- !h land max_int;
  p

let out_of_range s i v =
  invalid_arg
    (Printf.sprintf "Codec.encode: value %d out of range for field %S" v
       (field_name s i))

(* Hot path: called once per candidate state during exploration, so no
   per-field allocation — the domain checks run off the precompiled
   [hi_off] array instead of re-deriving each field's range. *)
let encode s read =
  let p = Array.make (s.nw + 1) 0 in
  for i = 0 to Array.length s.fields - 1 do
    let v = read i in
    let sl = s.slots.(i) in
    let off = s.hi_off.(i) in
    if off < 0 then p.(sl.word + 1) <- v
    else begin
      let d = v - sl.base in
      if d < 0 || d > off then out_of_range s i v;
      p.(sl.word + 1) <- p.(sl.word + 1) lor (d lsl sl.shift)
    end
  done;
  seal_hash p

(* [encode_pair s xs ys] = [encode s read] where [read] takes field [i]
   from [xs] while [i < length xs] and from [ys] past it — the common
   "locations then variables" shape, specialised so the hot loop makes
   no per-field closure call. *)
let encode_pair s xs ys =
  let p = Array.make (s.nw + 1) 0 in
  let nx = Array.length xs in
  if nx + Array.length ys <> Array.length s.fields then
    invalid_arg "Codec.encode_pair: field count mismatch";
  for i = 0 to Array.length s.fields - 1 do
    let v = if i < nx then Array.unsafe_get xs i else Array.unsafe_get ys (i - nx) in
    let sl = s.slots.(i) in
    let off = s.hi_off.(i) in
    if off < 0 then p.(sl.word + 1) <- v
    else begin
      let d = v - sl.base in
      if d < 0 || d > off then out_of_range s i v;
      p.(sl.word + 1) <- p.(sl.word + 1) lor (d lsl sl.shift)
    end
  done;
  seal_hash p

let decode s (p : packed) =
  Array.mapi
    (fun i f ->
      let sl = s.slots.(i) in
      match range f with
      | None -> p.(sl.word + 1)
      | Some _ ->
        ((p.(sl.word + 1) lsr sl.shift) land ((1 lsl sl.bits) - 1)) + sl.base)
    s.fields

let equal = PackedKey.equal
let hash = PackedKey.hash
let mix_hash a b = mix a b land max_int

let intern s p =
  Mutex.lock s.mu;
  let q = Weak_tbl.merge s.pool p in
  Mutex.unlock s.mu;
  q

let intern_size s =
  Mutex.lock s.mu;
  let n = Weak_tbl.count s.pool in
  Mutex.unlock s.mu;
  n

(* One block: header, hash slot, and the packed words. *)
let heap_words s = 2 + s.nw

let to_hex (p : packed) =
  let buf = Buffer.create (16 * Array.length p) in
  Buffer.add_char buf '[';
  for i = 1 to Array.length p - 1 do
    if i > 1 then Buffer.add_char buf ' ';
    Buffer.add_string buf (Printf.sprintf "%x" p.(i))
  done;
  Buffer.add_string buf (Printf.sprintf "] h=%x" p.(0));
  Buffer.contents buf

module Tbl = Hashtbl.Make (PackedKey)
