(** Packed state codecs: one compact, interned representation of a
    discrete state for every backend.

    A backend describes its discrete state as a vector of typed {e fields}
    (booleans, bounded integers, location indices, enum symbols, raw
    words); the codec compiles that spec into a fixed bit layout over an
    immutable [int array] and derives from it:

    - [encode]/[decode] between field values and the packed words;
    - a {e full-width} memoized hash mixing every word. The stdlib's
      polymorphic [Hashtbl.hash] inspects only the first ~10 meaningful
      words of a value, so large discrete vectors degenerate into
      collision chains; the codec hash has no such truncation and is
      computed once, at encode time;
    - O(words) equality with a pointer fast path;
    - a per-spec interning table so equal packed states are physically
      shared — the discrete analogue of the {!Zones.Dbm.seal} boundary,
      and composing with it: a symbolic state is an interned packed
      discrete part next to a sealed zone.

    Narrow fields are bit-packed: consecutive fields share a word until
    its 62 usable bits run out, and a field whose domain is a single
    value occupies zero bits. [Word] fields are stored unpacked, one
    word each, and may hold any [int] (including negatives). *)

type field =
  | Bool of string
  | Bounded of { name : string; lo : int; hi : int }
      (** inclusive range; [lo = hi] occupies zero bits *)
  | Loc of { name : string; count : int }  (** location index in [0, count) *)
  | Enum of { name : string; symbols : string array }
      (** symbol index in [0, length symbols) *)
  | Word of string  (** arbitrary [int], stored unpacked *)

(** A compiled layout plus its private interning table. Compiling is
    cheap but not free — build one spec per model, not per state.
    @raise Invalid_argument on an empty range or a non-positive count. *)
type spec

val spec : field list -> spec

val n_fields : spec -> int

(** Packed words per state. *)
val n_words : spec -> int

val field_name : spec -> int -> string

(** A packed state: the packed words plus the memoized full-width hash,
    fused into one immutable heap block (one allocation per {!encode}).
    Two packed values from the same spec are [equal] iff every field
    value is equal. *)
type packed

(** [encode spec read] packs the state whose [i]-th field value is
    [read i] ([Bool] fields read 0 or 1).
    @raise Invalid_argument when a value falls outside its field's
    domain (the message names the field). *)
val encode : spec -> (int -> int) -> packed

(** [encode_pair spec xs ys] is
    [encode spec (fun i -> if i < n then xs.(i) else ys.(i - n))] for
    [n = Array.length xs] — the common "locations then variables" state
    shape, specialised so the per-candidate hot loop makes no
    per-field closure call.
    @raise Invalid_argument when [length xs + length ys] is not the
    spec's field count, or a value falls outside its field's domain. *)
val encode_pair : spec -> int array -> int array -> packed

(** [decode spec p] is the field-value vector of [p] (inverse of
    {!encode} — [decode spec (encode spec read) = Array.init n read]). *)
val decode : spec -> packed -> int array

val equal : packed -> packed -> bool
val hash : packed -> int  (** memoized; O(1) *)

(** [mix_hash a b] folds hash [b] into hash [a] with the codec's
    splitmix word mixer (result clamped non-negative). Used to fuse a
    packed discrete hash with a sealed zone's memoized hash into one
    store-key hash. *)
val mix_hash : int -> int -> int

(** [intern spec p] returns the canonical physical representative of
    [p], inserting it on first sight. The table holds its entries
    weakly (dead states are collected) and is guarded by a mutex, so —
    like {!Zones.Dbm.seal} — it is safe to share a spec across
    domains. *)
val intern : spec -> packed -> packed

(** Live entries in [spec]'s weak intern pool — the observable for
    intern-lifecycle tests and warm-cache monitoring (see
    {!Zones.Dbm.intern_size} for the zone-side counterpart). *)
val intern_size : spec -> int

(** Approximate heap footprint of one packed state, in words, including
    headers (shared interned states are counted as if unshared). *)
val heap_words : spec -> int

(** [to_hex p] renders the words and hash compactly
    (["[w0 w1 ...] h=H"], all lowercase hex) — a representation-stable
    fingerprint for logs and fuzz repros. *)
val to_hex : packed -> string

(** Hashtable over packed keys; [hash] is the memoized one, so probes
    never rescan the words. *)
module Tbl : Hashtbl.S with type key = packed
