(** The generic symbolic exploration core.

    One passed/waiting loop serves every backend: the UPPAAL-style
    checker, CORA's cost-optimal search, the digital-clock graph builder
    that TIGA games and ECDAR refinement run on. The pieces that differ
    per backend plug in:

    - the {e state store} ({!Store.t}) decides coverage/subsumption;
    - the {e search order} picks BFS, DFS or a priority queue;
    - [successors] generates the labelled transition relation on the fly;
    - [on_state] may short-circuit with a payload (witness found).

    The core owns the node arena, parent links and trace reconstruction,
    and reports a {!Stats.t} for every run. *)

type 's order =
  | Bfs
  | Dfs
  | Priority of ('s -> int)
      (** smallest priority first; ties broken by insertion order *)

type ('s, 'l) node = { state : 's; parent : int; label : 'l option }

(** Why a run stopped before draining its frontier: the [max_states]
    cap, the [mem_budget_words] retained-heap budget, or the caller's
    [stop] hook (deadline / cancellation). In every case the outcome's
    [stats] are valid for the explored prefix — truncation is an
    explicit, reportable result, not a crash. *)
type stop_cause = Max_states | Mem_budget | Stop_requested

(** Parallel-execution observables of a {!run_sharded} run. Everything
    here except [steals] is deterministic (identical for every pool
    size); [steals] counts shard steps run by a non-home domain and
    varies run to run — it is reported for bench visibility and must
    never feed back into results. *)
type par_info = {
  par_shards : int;  (** shard count the state space was split over *)
  rounds : int;  (** barrier rounds until quiescence / stop *)
  steals : int;  (** stolen shard steps (scheduling-dependent) *)
  handoffs : int;  (** cross-shard successor messages sent *)
  mailbox_hwm : int;  (** largest backlog any single mailbox held *)
}

type ('s, 'l, 'a) outcome = {
  found : ('a * ('l * 's) list) option;
      (** the payload returned by [on_state], with the labelled steps of
          a run from the initial state to the state that produced it *)
  states : 's array;  (** arena states, indexed by id; id 0 is initial *)
  parents : (int * 'l option) array;
      (** discovery parent and edge label per id; [(-1, None)] for the
          initial state *)
  edges : ('l * int) list array;
      (** per-id successor edges in generation order, only when
          [record_edges] (empty array otherwise). Edges to states the
          store answered [Covered] for are not recorded, so meaningful
          graph building requires an exact store. *)
  stopped : stop_cause option;
      (** [None] for a complete run; mirrored as [stats.truncated] *)
  stats : Stats.t;
  par : par_info option;
      (** [Some] for {!run_sharded} outcomes, [None] for {!run} *)
}

(** [run ~store ~successors ~on_state ~init ()] explores from [init]
    until [on_state] returns a payload, the frontier drains, or
    [max_states] is exceeded (reported as [stats.truncated]; callers
    choose whether that is an error). With a {!Store.best_cost} store and
    a [Priority] order this is exactly Dijkstra: re-improved states are
    re-enqueued and stale arena entries are skipped at pop time.

    [stop] is polled once per visited state; when it answers true the
    run ends with [stopped = Some Stop_requested] — the hook for
    per-request deadlines and cooperative cancellation in a serving
    loop. [mem_budget_words] bounds the store's retained heap
    ({!Store.over_budget}, polled at geometrically spaced store sizes):
    exceeding it ends the run with [stopped = Some Mem_budget] instead
    of letting the exploration OOM.

    @raise Invalid_argument if the store rejects the initial state. *)
val run :
  ?max_states:int ->
  ?stop:(unit -> bool) ->
  ?mem_budget_words:int ->
  ?order:'s order ->
  ?record_edges:bool ->
  store:'s Store.t ->
  successors:('s -> ('l * 's) list) ->
  on_state:('s -> 'a option) ->
  init:'s ->
  unit ->
  ('s, 'l, 'a) outcome

(** [run_sharded ~store ~key ~successors ~on_state ~init ()] — the
    sharded parallel counterpart of {!run} (BFS-flavoured: expansion
    order is per-shard FIFO over barrier rounds, not global BFS).

    The packed-key space is partitioned over [shards] (default 64)
    disjoint shards — by the high bits of {!Codec.hash}, or by
    [shard_of] when given (tests use it to force cross-shard traffic).
    Each shard owns a private keyed store ([store ()] is called once
    per shard) and frontier; successors landing on another shard travel
    through double-buffered per-(src,dst) mailboxes merged after the
    next round barrier ({!Par.Shards.run}); termination is quiescence —
    all frontiers and mailboxes empty at a barrier.

    {b Determinism}: verdicts, traces, ids, edges and stats are
    byte-identical for every pool size, including [jobs = 1] — shard
    state is only ever touched by its own step, messages merge in
    (source shard, FIFO) order, node ids are canonically renumbered
    (dense, shards rotated so the initial state is id 0), and the
    witness is the [prefer]-minimal (ties: smallest canonical id) over
    all shards. Sharded stats pin the scheduling observables: [time_s]
    is [0.0] and [phases] is [[]]; wall-clock timing belongs to the
    caller. Scheduling-dependent counts (steals) live only in
    {!par_info}.

    [stop_on_found = true] (default) mirrors {!run}: the run stops at
    the first barrier after any shard hit a witness. [false] runs to
    quiescence collecting every witness and returns the [prefer]-best —
    the mode CORA's cost-optimal search uses, where later rounds can
    re-open states on cheaper paths ([Store.best_cost_keyed] re-opens,
    stale entries are skipped at pop).

    Global bounds ([max_states], [stop], [mem_budget_words]) are
    checked at round barriers only, so a run may overshoot a bound by
    one round's growth before truncating; which states exist at that
    point is still deterministic.

    @raise Invalid_argument if [shards < 1], [shard_of] answers out of
    range for the initial state, or the store rejects the initial
    state. *)
val run_sharded :
  ?max_states:int ->
  ?stop:(unit -> bool) ->
  ?mem_budget_words:int ->
  ?record_edges:bool ->
  ?stop_on_found:bool ->
  ?prefer:('a -> 'a -> int) ->
  ?shards:int ->
  ?shard_of:(Codec.packed -> int) ->
  ?pool:Par.Pool.t ->
  store:(unit -> 's Store.keyed) ->
  key:('s -> Codec.packed) ->
  successors:('s -> ('l * 's) list) ->
  on_state:('s -> 'a option) ->
  init:'s ->
  unit ->
  ('s, 'l, 'a) outcome
