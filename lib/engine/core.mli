(** The generic symbolic exploration core.

    One passed/waiting loop serves every backend: the UPPAAL-style
    checker, CORA's cost-optimal search, the digital-clock graph builder
    that TIGA games and ECDAR refinement run on. The pieces that differ
    per backend plug in:

    - the {e state store} ({!Store.t}) decides coverage/subsumption;
    - the {e search order} picks BFS, DFS or a priority queue;
    - [successors] generates the labelled transition relation on the fly;
    - [on_state] may short-circuit with a payload (witness found).

    The core owns the node arena, parent links and trace reconstruction,
    and reports a {!Stats.t} for every run. *)

type 's order =
  | Bfs
  | Dfs
  | Priority of ('s -> int)
      (** smallest priority first; ties broken by insertion order *)

type ('s, 'l) node = { state : 's; parent : int; label : 'l option }

(** Why a run stopped before draining its frontier: the [max_states]
    cap, the [mem_budget_words] retained-heap budget, or the caller's
    [stop] hook (deadline / cancellation). In every case the outcome's
    [stats] are valid for the explored prefix — truncation is an
    explicit, reportable result, not a crash. *)
type stop_cause = Max_states | Mem_budget | Stop_requested

type ('s, 'l, 'a) outcome = {
  found : ('a * ('l * 's) list) option;
      (** the payload returned by [on_state], with the labelled steps of
          a run from the initial state to the state that produced it *)
  states : 's array;  (** arena states, indexed by id; id 0 is initial *)
  parents : (int * 'l option) array;
      (** discovery parent and edge label per id; [(-1, None)] for the
          initial state *)
  edges : ('l * int) list array;
      (** per-id successor edges in generation order, only when
          [record_edges] (empty array otherwise). Edges to states the
          store answered [Covered] for are not recorded, so meaningful
          graph building requires an exact store. *)
  stopped : stop_cause option;
      (** [None] for a complete run; mirrored as [stats.truncated] *)
  stats : Stats.t;
}

(** [run ~store ~successors ~on_state ~init ()] explores from [init]
    until [on_state] returns a payload, the frontier drains, or
    [max_states] is exceeded (reported as [stats.truncated]; callers
    choose whether that is an error). With a {!Store.best_cost} store and
    a [Priority] order this is exactly Dijkstra: re-improved states are
    re-enqueued and stale arena entries are skipped at pop time.

    [stop] is polled once per visited state; when it answers true the
    run ends with [stopped = Some Stop_requested] — the hook for
    per-request deadlines and cooperative cancellation in a serving
    loop. [mem_budget_words] bounds the store's retained heap
    ({!Store.over_budget}, polled at geometrically spaced store sizes):
    exceeding it ends the run with [stopped = Some Mem_budget] instead
    of letting the exploration OOM.

    @raise Invalid_argument if the store rejects the initial state. *)
val run :
  ?max_states:int ->
  ?stop:(unit -> bool) ->
  ?mem_budget_words:int ->
  ?order:'s order ->
  ?record_edges:bool ->
  store:'s Store.t ->
  successors:('s -> ('l * 's) list) ->
  on_state:('s -> 'a option) ->
  init:'s ->
  unit ->
  ('s, 'l, 'a) outcome
