(** The quantd event loop: JSONL over a Unix-domain socket, served from
    a single-threaded [Unix.select] loop.

    One domain owns connection handling and runs the {!Service}
    handlers synchronously; the shared [Par] pool inside the handlers
    provides the parallelism. Because a read round collects every
    complete line across all ready connections before dispatching,
    concurrent smc requests land in one {!Service.handle_batch} call
    and fuse into one sample batch.

    Lifecycle: binds (replacing a stale socket file), serves until
    SIGTERM/SIGINT, then drains — in-flight handlers observe the
    shutdown flag through their stop hooks, pending replies get a
    bounded flush window, the socket file is unlinked, the pool is shut
    down, and {!run} returns normally (exit 0 is the caller's).

    Robustness: non-blocking everywhere, EINTR-safe, SIGPIPE ignored
    (a vanished client costs its connection), over-long unterminated
    frames answered with [bad_json] and a hangup, connections beyond
    [max_conns] closed at accept. *)

type config = {
  socket_path : string;
  jobs : int;  (** [Par] pool size shared by every request *)
  mem_budget_words : int option;
      (** registry cache budget {e and} per-exploration bound *)
  slow_ms : float option;  (** flight-capture threshold, see {!Service} *)
  slow_trace_dir : string option;
  max_line_bytes : int;  (** request frame cap (also the JSON byte limit) *)
  max_conns : int;
}

(** ["quantd.sock"], 1 job, no budget, 8 MiB frames, 128 connections. *)
val default_config : config

(** Serve until SIGTERM/SIGINT, then drain and return. Prints one
    "listening" line to stdout when ready (tests and scripts wait on
    it). *)
val run : ?config:config -> unit -> unit
