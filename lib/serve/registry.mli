(** The daemon's warm state: compiled models, cached replies, and warm
    state-space anchors, all under one optional memory budget.

    Three cache layers, by what they save:

    - {e compiled models}: the [Ta.Model.network] for a (name, n) pair,
      so repeat queries skip compilation;
    - {e reply cache}: the full structured result keyed by a canonical
      request fingerprint — a warm hit recomputes nothing and replays
      the identical bytes (every serve method is deterministic in its
      params, so replaying is sound);
    - {e warm anchors}: a retained symbolic state space per hot model.
      Sealed zones and packed discrete states held by the anchor keep
      the weak intern tables ({!Zones.Dbm.seal}, {!Engine.Codec.intern})
      populated between requests, so the next query's store probes
      settle on pointer equality against existing representatives —
      this is how "the subsumption store stays warm across queries"
      without sharing a mutable store between requests.

    Everything is droppable: {!enforce_budget} walks the caches'
    retained words ({!Obj.reachable_words}) and evicts LRU-first —
    anchors, then replies, then model entries — so a budgeted daemon
    degrades to cold-start latency instead of growing without bound.

    Instrumented on the default {!Obs} registry: [serve.model_hits]/
    [misses], [serve.reply_hits]/[misses], [serve.anchors_built],
    [serve.evictions]. *)

type t

type entry

val create : ?mem_budget_words:int -> ?anchor_max_states:int -> unit -> t

(** The budget, for handlers that want to bound an exploration with the
    same number ([Ta.Checker.check ~mem_budget_words]). *)
val mem_budget_words : t -> int option

(** [model t spec ~n] — the cached compiled model, compiling on miss. *)
val model : t -> Models.spec -> n:int -> entry

val net : entry -> Ta.Model.network

(** Record a completed query on [entry]; on the second query the
    registry builds the warm anchor (lazily — a once-queried model is
    not worth the heap). *)
val warm : t -> entry -> unit

val cached_reply : t -> fingerprint:string -> Obs.Json.t option
val store_reply : t -> fingerprint:string -> Obs.Json.t -> unit

(** Retained heap of the caches, in words (an O(cache) walk). *)
val words : t -> int

(** Evict (anchors → replies → models, LRU within each class) until
    under budget; no-op without one. Runs automatically on insertions. *)
val enforce_budget : t -> unit

(** Cache shape + intern-table size, for the [metrics] scrape. *)
val stats_json : t -> Obs.Json.t
