(** The quantd wire protocol: versioned JSONL request/reply framing.

    One request per line, one reply per line, over a Unix-domain
    stream socket. A request is
    {v
    {"v":1, "id":<string|int>, "method":"check",
     "params":{...}, "deadline_ms":1500}
    v}
    and the reply echoes the id:
    {v
    {"v":1, "id":..., "ok":true,  "result":{...}}
    {"v":1, "id":..., "ok":false, "error":{"code":"...","message":"..."}}
    v}

    Parsing is total on untrusted input: every line goes through
    {!Obs.Json.parse_untrusted} (byte- and depth-bounded), and every
    shape defect maps to a structured error code — a malformed frame
    can cost its connection a [bad_json] reply, never the process. *)

val version : int

(** Wire error codes. [Bad_json]: the line is not parseable JSON (or
    over the input limits). [Bad_request]: valid JSON, invalid shape or
    params. [Deadline_exceeded]: the request's [deadline_ms] expired
    mid-computation. [Resource_exhausted]: the server's [--mem-budget]
    cut the computation short. [Shutting_down]: the server is draining
    after SIGTERM. [Internal]: an unexpected server-side exception
    (reported, never a crash). *)
type error_code =
  | Bad_json
  | Bad_request
  | Unknown_method
  | Deadline_exceeded
  | Resource_exhausted
  | Shutting_down
  | Internal

val error_code_name : error_code -> string
val error_code_of_name : string -> error_code option

type request = {
  id : Obs.Json.t;  (** echoed verbatim; [Str], [Int] or [Null] *)
  meth : string;
  params : Obs.Json.t;  (** always an [Obj] *)
  deadline_ms : float option;  (** relative time budget, milliseconds *)
}

(** [parse_request line] — total. On error, carries the request id when
    one could still be recovered from the malformed frame (so the reply
    can be correlated), [Null] otherwise. *)
val parse_request :
  ?limits:Obs.Json.limits ->
  string ->
  (request, Obs.Json.t * error_code * string) result

(** One reply line (no trailing newline). *)
val ok_line : id:Obs.Json.t -> Obs.Json.t -> string

val error_line : id:Obs.Json.t -> error_code -> string -> string

(** Client-side view of one reply line; [payload] is [Error (code,
    message)] for [ok:false] replies, with [code] kept raw so unknown
    future codes still round-trip. *)
type reply = {
  reply_id : Obs.Json.t;
  payload : (Obs.Json.t, string * string) result;
}

val parse_reply : ?limits:Obs.Json.limits -> string -> (reply, string) result

(** Typed param accessors: [Error msg] (a [Bad_request] message) on a
    type mismatch, the default on absence. *)

val param_int :
  Obs.Json.t -> key:string -> default:int -> (int, string) result

val param_bool :
  Obs.Json.t -> key:string -> default:bool -> (bool, string) result

val param_string :
  Obs.Json.t -> key:string -> default:string -> (string, string) result

(** Missing key is the empty list. *)
val param_string_list : Obs.Json.t -> key:string -> (string list, string) result

(** [forbidden params ~key ~why] rejects requests that carry [key] at
    all — for one-shot-only options (fault injection) that must not
    reach a long-lived process. *)
val forbidden : Obs.Json.t -> key:string -> why:string -> (unit, string) result
