module Json = Obs.Json
module P = Protocol

let ( let* ) = Result.bind

let m_requests = Obs.counter "serve.requests"
let m_errors = Obs.counter "serve.errors"
let m_deadline = Obs.counter "serve.deadline_expired"
let m_smc_batches = Obs.counter "serve.smc_batches"
let m_smc_fused = Obs.counter "serve.smc_fused_requests"
let m_slow_captures = Obs.counter "serve.slow_captures"
let m_wall = Obs.histogram "serve.request_wall_s"

type t = {
  registry : Registry.t;
  pool : Par.Pool.t;
  slow_s : float option;
  slow_dir : string;
  mutable slow_seq : int;
  shutting_down : unit -> bool;
  started : float;
}

let create ~registry ~pool ?slow_ms ?(slow_trace_dir = ".")
    ?(shutting_down = fun () -> false) () =
  {
    registry;
    pool;
    slow_s = Option.map (fun ms -> ms /. 1000.) slow_ms;
    slow_dir = slow_trace_dir;
    slow_seq = 0;
    shutting_down;
    started = Unix.gettimeofday ();
  }

(* ------------------------------------------------------------------ *)
(* Request plumbing                                                     *)
(* ------------------------------------------------------------------ *)

let bad r = Result.map_error (fun msg -> (P.Bad_request, msg)) r

let deadline_at ~now (req : P.request) =
  Option.map (fun ms -> now +. (ms /. 1000.)) req.P.deadline_ms

(* The stop hook threaded into long explorations: fires on the request
   deadline and on daemon shutdown, polled once per visited state. *)
let stop_hook t ~deadline =
  fun () ->
    t.shutting_down ()
    || (match deadline with
        | Some d -> Unix.gettimeofday () > d
        | None -> false)

(* Map a truncated exploration to the wire error that caused it. The
   shutdown test comes first: when SIGTERM fired mid-query, the stop
   hook answered true for that reason regardless of any deadline. *)
let truncation_error t reason (stats : Ta.Checker.stats) =
  match reason with
  | `Mem_budget ->
    ( P.Resource_exhausted,
      Printf.sprintf
        "mem budget exhausted after %d states (%d words retained)"
        stats.Ta.Checker.visited stats.Ta.Checker.store_words )
  | `Stop ->
    if t.shutting_down () then (P.Shutting_down, "server is draining")
    else begin
      Obs.Metrics.Counter.incr m_deadline;
      ( P.Deadline_exceeded,
        Printf.sprintf "deadline expired after %d states"
          stats.Ta.Checker.visited )
    end

(* ------------------------------------------------------------------ *)
(* check                                                                *)
(* ------------------------------------------------------------------ *)

let handle_check t (req : P.request) ~now =
  let params = req.P.params in
  let* model = bad (P.param_string params ~key:"model" ~default:"fischer") in
  match Models.find model with
  | None ->
    Error
      ( P.Bad_request,
        Printf.sprintf "unknown model %s (%s)" model Models.known )
  | Some spec ->
    let* n = bad (P.param_int params ~key:"n" ~default:spec.Models.default_n) in
    let* stats_json = bad (P.param_bool params ~key:"stats_json" ~default:false) in
    (* jobs = 0 (the default) keeps the sequential engine; jobs >= 1
       explores sharded on the daemon's own worker pool, whose size
       caps the realised parallelism — results are identical either
       way for a given jobs value, so jobs belongs in the cache
       fingerprint only because sequential and sharded witnesses may
       legitimately differ. *)
    let* jobs = bad (P.param_int params ~key:"jobs" ~default:0) in
    if n < 1 || n > 16 then Error (P.Bad_request, "n must be in 1..16")
    else if jobs < 0 || jobs > 64 then
      Error (P.Bad_request, "jobs must be in 0..64")
    else begin
      let fingerprint =
        Printf.sprintf "check model=%s n=%d stats_json=%b jobs=%d" model n
          stats_json jobs
      in
      match Registry.cached_reply t.registry ~fingerprint with
      | Some r -> Ok r
      | None ->
        let entry = Registry.model t.registry spec ~n in
        let net = Registry.net entry in
        let deadline = deadline_at ~now req in
        let stop = stop_hook t ~deadline in
        let mem_budget_words = Registry.mem_budget_words t.registry in
        let jobs, pool =
          if jobs >= 1 then (Some jobs, Some t.pool) else (None, None)
        in
        let run (name, q) =
          match Ta.Checker.check ~stop ?mem_budget_words ?jobs ?pool net q with
          | r ->
            Ok
              ( Render.query_line ~stats_json name r,
                Json.Obj
                  [
                    ("name", Json.Str name);
                    ("holds", Json.Bool r.Ta.Checker.holds);
                    ("visited", Json.Int r.Ta.Checker.stats.Ta.Checker.visited);
                  ],
                r.Ta.Checker.holds )
          | exception Ta.Checker.Truncated { reason; stats } ->
            Error (truncation_error t reason stats)
        in
        let rec run_all acc = function
          | [] -> Ok (List.rev acc)
          | q :: tl ->
            let* r = run q in
            run_all (r :: acc) tl
        in
        let* results = run_all [] (spec.Models.queries net) in
        let text = String.concat "" (List.map (fun (l, _, _) -> l) results) in
        let all_hold = List.for_all (fun (_, _, h) -> h) results in
        let result =
          Json.Obj
            [
              ("text", Json.Str text);
              ("all_hold", Json.Bool all_hold);
              ("queries", Json.Arr (List.map (fun (_, j, _) -> j) results));
            ]
        in
        Registry.warm t.registry entry;
        Registry.store_reply t.registry ~fingerprint result;
        Ok result
    end

(* ------------------------------------------------------------------ *)
(* smc — batchable                                                      *)
(* ------------------------------------------------------------------ *)

(* A prepared smc request: its sample items (to be fused with other
   concurrent smc requests into one [Smc.Batch] range) and the pure
   reduction from the per-item hitting-time arrays to the reply. *)
type smc_plan = {
  plan_fingerprint : string;
  items : Smc.Batch.item list;
  finish : float option array list -> Json.t;
}

let plan_smc (req : P.request) ~registry =
  let params = req.P.params in
  let* model = bad (P.param_string params ~key:"model" ~default:"train-gate") in
  let* trains = bad (P.param_int params ~key:"trains" ~default:3) in
  let* runs = bad (P.param_int params ~key:"runs" ~default:500) in
  let* seed = bad (P.param_int params ~key:"seed" ~default:42) in
  if trains < 1 || trains > 16 then Error (P.Bad_request, "trains must be in 1..16")
  else if runs < 1 || runs > 1_000_000 then
    Error (P.Bad_request, "runs must be in 1..1000000")
  else begin
    let fingerprint =
      Printf.sprintf "smc model=%s trains=%d runs=%d seed=%d" model trains runs
        seed
    in
    match model with
    | "train-gate" ->
      let spec = Models.train_gate in
      let entry = Registry.model registry spec ~n:trains in
      let net = Registry.net entry in
      let config =
        { Smc.Stochastic.rates = (fun auto _ -> 1.0 +. float_of_int auto) }
      in
      let grid = List.init 8 (fun k -> 10.0 +. (12.0 *. float_of_int k)) in
      let items =
        List.init trains (fun i ->
            Smc.Batch.item ~config ~seed:(seed + i) ~runs net
              {
                Smc.horizon = 100.0;
                goal = Ta.Train_gate.cross_formula net i;
              })
      in
      let finish times_list =
        let lines =
          List.mapi
            (fun i times ->
              Render.smc_train_line i (Smc.cdf_of_times ~runs ~grid times))
            times_list
        in
        Json.Obj [ ("text", Json.Str (String.concat "" lines)) ]
      in
      Ok { plan_fingerprint = fingerprint; items; finish }
    | "fischer" ->
      let spec = Models.fischer in
      let entry = Registry.model registry spec ~n:trains in
      let net = Registry.net entry in
      let items =
        List.init trains (fun i ->
            Smc.Batch.item ~seed:(seed + i) ~runs net
              {
                Smc.horizon = 30.0;
                goal = Ta.Prop.Loc (i, Ta.Model.loc_index net i "cs");
              })
      in
      let finish times_list =
        let intervals =
          List.map (Smc.interval_of_times ~runs ~horizon:30.0) times_list
        in
        let lines = List.mapi Render.smc_fischer_line intervals in
        Json.Obj
          [
            ("text", Json.Str (String.concat "" lines));
            ( "intervals",
              Json.Arr
                (List.map
                   (fun (itv : Smc.Estimate.interval) ->
                     Json.Obj
                       [
                         ("p", Json.Float itv.Smc.Estimate.p_hat);
                         ("low", Json.Float itv.Smc.Estimate.low);
                         ("high", Json.Float itv.Smc.Estimate.high);
                       ])
                   intervals) );
          ]
      in
      Ok { plan_fingerprint = fingerprint; items; finish }
    | other ->
      Error
        ( P.Bad_request,
          Printf.sprintf "unknown model %s (train-gate|fischer)" other )
  end

(* ------------------------------------------------------------------ *)
(* modes / fuzz / metrics / ping                                        *)
(* ------------------------------------------------------------------ *)

let handle_modes t (req : P.request) =
  let params = req.P.params in
  let* runs = bad (P.param_int params ~key:"runs" ~default:2000) in
  let* seed = bad (P.param_int params ~key:"seed" ~default:42) in
  if runs < 1 || runs > 1_000_000 then
    Error (P.Bad_request, "runs must be in 1..1000000")
  else begin
    let fingerprint = Printf.sprintf "modes runs=%d seed=%d" runs seed in
    match Registry.cached_reply t.registry ~fingerprint with
    | Some r -> Ok r
    | None ->
      let row = Modest.Brp.run_modes ~pool:t.pool ~runs ~seed (Modest.Brp.make ()) in
      let result = Json.Obj [ ("text", Json.Str (Render.modes_line row)) ] in
      Registry.store_reply t.registry ~fingerprint result;
      Ok result
  end

let handle_fuzz t (req : P.request) =
  let params = req.P.params in
  (* Fault injection flips process-global state in the zones library —
     exactly what a long-lived server shared by other requests must
     never do. *)
  let* () =
    bad
      (P.forbidden params ~key:"inject"
         ~why:"fault injection mutates process-global state")
  in
  let* seed = bad (P.param_int params ~key:"seed" ~default:42) in
  let* cases = bad (P.param_int params ~key:"cases" ~default:200) in
  let* no_shrink = bad (P.param_bool params ~key:"no_shrink" ~default:false) in
  let* family_names = bad (P.param_string_list params ~key:"families") in
  let* extrapolation_name =
    bad (P.param_string params ~key:"extrapolation" ~default:"lu")
  in
  if cases < 1 || cases > 100_000 then
    Error (P.Bad_request, "cases must be in 1..100000")
  else begin
    let* extrapolation =
      match extrapolation_name with
      | "none" -> Ok `None
      | "k" -> Ok `K
      | "lu" -> Ok `Lu
      | other ->
        Error
          ( P.Bad_request,
            Printf.sprintf "unknown extrapolation %s (none|k|lu)" other )
    in
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | name :: tl -> (
        match Gen.Oracle.family_of_name name with
        | Some f -> resolve (f :: acc) tl
        | None ->
          Error
            ( P.Bad_request,
              Printf.sprintf "unknown family %S (known: %s)" name
                (String.concat ", "
                   (List.map Gen.Oracle.family_name Gen.Oracle.all_families))
            ))
    in
    let* families = resolve [] family_names in
    let families =
      match families with [] -> Gen.Oracle.all_families | fs -> fs
    in
    let fingerprint =
      Printf.sprintf "fuzz seed=%d cases=%d shrink=%b fams=%s extra=%s" seed
        cases (not no_shrink)
        (String.concat "," (List.map Gen.Oracle.family_name families))
        extrapolation_name
    in
    match Registry.cached_reply t.registry ~fingerprint with
    | Some r -> Ok r
    | None ->
      let cfg =
        {
          Gen.Harness.default with
          seed;
          cases;
          jobs = 1;
          families;
          shrink = not no_shrink;
          extrapolation;
        }
      in
      let report = Gen.Harness.run cfg in
      let result =
        Json.Obj
          [
            ("text", Json.Str (Gen.Harness.render report));
            ( "divergences",
              Json.Int (List.length report.Gen.Harness.r_divergences) );
            ("agreed", Json.Int report.Gen.Harness.r_agreed);
            ("skipped", Json.Int (List.length report.Gen.Harness.r_skipped));
          ]
      in
      Registry.store_reply t.registry ~fingerprint result;
      Ok result
  end

let handle_metrics t ~now =
  let report_fields =
    match Obs.Report.make () with Json.Obj fs -> fs | other -> [ ("report", other) ]
  in
  Ok
    (Json.Obj
       (report_fields
       @ [
           ("serve", Registry.stats_json t.registry);
           ("uptime_s", Json.Float (now -. t.started));
         ]))

let handle_ping _t =
  Ok (Json.Obj [ ("pong", Json.Bool true); ("pid", Json.Int (Unix.getpid ())) ])

(* ------------------------------------------------------------------ *)
(* Dispatch                                                             *)
(* ------------------------------------------------------------------ *)

(* A line after the prepare pass: either its reply is settled, or it is
   an smc request whose sampling still has to run (fused with the other
   pending smc requests of the same read round). *)
type sampling = {
  req : P.request;
  plan : smc_plan;
  deadline : float option;
  t0 : float;
}

type pending = Settled of string | Sampling of sampling

let observe_wall t ~meth ~t0 =
  let wall = Unix.gettimeofday () -. t0 in
  Obs.Metrics.Histogram.observe m_wall wall;
  match t.slow_s with
  | Some slow when wall > slow && Obs.Flight.is_enabled () ->
    t.slow_seq <- t.slow_seq + 1;
    let path =
      Filename.concat t.slow_dir
        (Printf.sprintf "slow-%d-%s.json" t.slow_seq meth)
    in
    (try
       Obs.Flight.capture_chrome path;
       Obs.Metrics.Counter.incr m_slow_captures
     with Sys_error _ -> ())
  | _ -> ()

let reply_of t (req : P.request) result ~t0 =
  observe_wall t ~meth:req.P.meth ~t0;
  match result with
  | Ok json -> P.ok_line ~id:req.P.id json
  | Error (code, msg) ->
    Obs.Metrics.Counter.incr m_errors;
    P.error_line ~id:req.P.id code msg

(* Everything the handlers might throw becomes a structured [internal]
   error: a bad request — or a bug — costs one reply, not the daemon. *)
let guarded t (req : P.request) f =
  match Obs.Span.with_ ~name:("serve." ^ req.P.meth) f with
  | r -> r
  | exception Par.Cancelled ->
    if t.shutting_down () then Error (P.Shutting_down, "server is draining")
    else begin
      Obs.Metrics.Counter.incr m_deadline;
      Error (P.Deadline_exceeded, "deadline expired during sampling")
    end
  | exception e -> Error (P.Internal, Printexc.to_string e)

let prepare t ~now line =
  Obs.Metrics.Counter.incr m_requests;
  match P.parse_request line with
  | Error (id, code, msg) ->
    Obs.Metrics.Counter.incr m_errors;
    Settled (P.error_line ~id code msg)
  | Ok req ->
    if t.shutting_down () then
      Settled (P.error_line ~id:req.P.id P.Shutting_down "server is draining")
    else begin
      let t0 = Unix.gettimeofday () in
      match req.P.meth with
      | "ping" -> Settled (reply_of t req (guarded t req (fun () -> handle_ping t)) ~t0)
      | "metrics" ->
        Settled (reply_of t req (guarded t req (fun () -> handle_metrics t ~now)) ~t0)
      | "check" ->
        Settled (reply_of t req (guarded t req (fun () -> handle_check t req ~now)) ~t0)
      | "modes" ->
        Settled (reply_of t req (guarded t req (fun () -> handle_modes t req)) ~t0)
      | "fuzz" ->
        Settled (reply_of t req (guarded t req (fun () -> handle_fuzz t req)) ~t0)
      | "smc" -> begin
        match guarded t req (fun () -> plan_smc req ~registry:t.registry) with
        | Error _ as e -> Settled (reply_of t req e ~t0)
        | Ok plan -> begin
          match Registry.cached_reply t.registry ~fingerprint:plan.plan_fingerprint with
          | Some r -> Settled (reply_of t req (Ok r) ~t0)
          | None ->
            Sampling { req; plan; deadline = deadline_at ~now req; t0 }
        end
      end
      | other ->
        Settled
          (reply_of t req
             (Error
                ( P.Unknown_method,
                  Printf.sprintf
                    "unknown method %s (ping|metrics|check|smc|modes|fuzz)"
                    other ))
             ~t0)
    end

(* Run one smc plan on its own (the re-run path after a fused batch was
   cancelled, and the singleton fast path). *)
let run_plan_alone t { req; plan; deadline; t0 } =
  let result =
    guarded t req (fun () ->
        let cancel = Par.Cancel.create ?deadline_at:deadline () in
        let times = Smc.Batch.hitting_times ~pool:t.pool ~cancel plan.items in
        let result = plan.finish times in
        Registry.store_reply t.registry ~fingerprint:plan.plan_fingerprint
          result;
        Ok result)
  in
  reply_of t req result ~t0

let handle_batch t lines =
  let now = Unix.gettimeofday () in
  let pendings = List.map (prepare t ~now) lines in
  let sampling =
    List.filter_map (function Sampling s -> Some s | Settled _ -> None) pendings
  in
  match sampling with
  | [] ->
    List.map
      (function Settled l -> l | Sampling _ -> assert false)
      pendings
  | [ _one ] ->
    List.map
      (function Settled l -> l | Sampling s -> run_plan_alone t s)
      pendings
  | several ->
    (* Fuse all concurrent smc requests of this round into one sample
       range under the earliest member deadline; on expiry fall back to
       per-request runs so one tight deadline cannot starve the rest. *)
    Obs.Metrics.Counter.incr m_smc_batches;
    Obs.Metrics.Counter.add m_smc_fused (List.length several);
    let min_deadline =
      List.fold_left
        (fun acc s ->
          match (acc, s.deadline) with
          | None, d | d, None -> d
          | Some a, Some b -> Some (Float.min a b))
        None several
    in
    let fused =
      match
        Obs.Span.with_ ~name:"serve.smc_fused" (fun () ->
            let cancel = Par.Cancel.create ?deadline_at:min_deadline () in
            Smc.Batch.hitting_times ~pool:t.pool ~cancel
              (List.concat_map (fun s -> s.plan.items) several))
      with
      | times -> Some times
      | exception Par.Cancelled -> None
    in
    let replies =
      match fused with
      | Some all_times ->
        (* Split the concatenated per-item arrays back per request. *)
        let rec take n l =
          if n = 0 then ([], l)
          else
            match l with
            | [] -> assert false
            | x :: tl ->
              let xs, l' = take (n - 1) tl in
              (x :: xs, l')
        in
        let rest = ref all_times in
        List.map
          (fun s ->
            let mine, rest' = take (List.length s.plan.items) !rest in
            rest := rest';
            let result =
              guarded t s.req (fun () ->
                  let result = s.plan.finish mine in
                  Registry.store_reply t.registry
                    ~fingerprint:s.plan.plan_fingerprint result;
                  Ok result)
            in
            reply_of t s.req result ~t0:s.t0)
          several
      | None ->
        (* The fused batch hit the earliest deadline (or shutdown): each
           request gets an individual run under its own token, so only
           the genuinely expired ones fail. *)
        List.map (run_plan_alone t) several
    in
    (* [several] filtered [pendings] in order, so hand the computed
       replies back out positionally. *)
    let rest = ref replies in
    List.map
      (function
        | Settled l -> l
        | Sampling _ -> (
          match !rest with
          | x :: tl ->
            rest := tl;
            x
          | [] -> assert false))
      pendings

let handle_line t line =
  match handle_batch t [ line ] with [ r ] -> r | _ -> assert false
