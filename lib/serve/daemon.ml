(* quantd's event loop: a single-threaded [Unix.select] server over a
   Unix-domain stream socket. One domain owns every connection and runs
   the handlers; parallelism lives inside the handlers (the shared
   [Par] pool), not in the connection handling — which is what lets one
   read round's smc requests fuse into one sample batch. *)

let m_conns = Obs.gauge "serve.connections"
let m_accepted = Obs.counter "serve.accepted"
let m_overload_closed = Obs.counter "serve.overload_closed"

type config = {
  socket_path : string;
  jobs : int;
  mem_budget_words : int option;
  slow_ms : float option;
  slow_trace_dir : string option;
  max_line_bytes : int;
  max_conns : int;
}

let default_config =
  {
    socket_path = "quantd.sock";
    jobs = 1;
    mem_budget_words = None;
    slow_ms = None;
    slow_trace_dir = None;
    max_line_bytes = 8 * 1024 * 1024;
    max_conns = 128;
  }

type conn = {
  fd : Unix.file_descr;
  mutable inbuf : string;  (* bytes read, no complete line yet *)
  mutable out : string;  (* reply bytes not yet written *)
  mutable closing : bool;  (* close once [out] drains *)
}

(* Split [s] into complete lines and the unterminated remainder; a
   trailing '\r' (telnet-style testing) is shaved per line. *)
let split_lines s =
  let rec go acc start =
    match String.index_from_opt s start '\n' with
    | None -> (List.rev acc, String.sub s start (String.length s - start))
    | Some i ->
      let stop = if i > start && s.[i - 1] = '\r' then i - 1 else i in
      go (String.sub s start (stop - start) :: acc) (i + 1)
  in
  go [] 0

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let run ?(config = default_config) () =
  let stop = Atomic.make false in
  let old_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set stop true))
  in
  let old_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> Atomic.set stop true))
  in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let registry =
    Registry.create ?mem_budget_words:config.mem_budget_words ()
  in
  let pool = Par.Pool.create ~jobs:config.jobs in
  let service =
    Service.create ~registry ~pool ?slow_ms:config.slow_ms
      ?slow_trace_dir:config.slow_trace_dir
      ~shutting_down:(fun () -> Atomic.get stop)
      ()
  in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let drop c =
    Hashtbl.remove conns c.fd;
    close_quietly c.fd;
    Obs.Metrics.Gauge.set m_conns (float_of_int (Hashtbl.length conns))
  in
  let flush_conn c =
    if c.out <> "" then begin
      match
        Unix.write_substring c.fd c.out 0 (String.length c.out)
      with
      | n -> c.out <- String.sub c.out n (String.length c.out - n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        drop c
    end
  in
  let cleanup () =
    Hashtbl.iter (fun _ c -> close_quietly c.fd) conns;
    Hashtbl.reset conns;
    close_quietly lfd;
    (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
    Par.Pool.shutdown pool;
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigint old_int;
    Sys.set_signal Sys.sigpipe old_pipe
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  (try Unix.unlink config.socket_path
   with Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  Unix.bind lfd (Unix.ADDR_UNIX config.socket_path);
  Unix.listen lfd 64;
  Unix.set_nonblock lfd;
  Printf.printf "quantd: listening on %s (pid %d, jobs %d)\n%!"
    config.socket_path (Unix.getpid ()) config.jobs;
  while not (Atomic.get stop) do
    let read_fds =
      lfd
      :: Hashtbl.fold (fun fd c acc -> if c.closing then acc else fd :: acc)
           conns []
    in
    let write_fds =
      Hashtbl.fold (fun fd c acc -> if c.out <> "" then fd :: acc else acc)
        conns []
    in
    match Unix.select read_fds write_fds [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
      (* Accept everything pending; over the connection cap, accept and
         close immediately so the client sees EOF, not a hang. *)
      if List.mem lfd readable then begin
        let rec accept_all () =
          match Unix.accept lfd with
          | fd, _ ->
            if Hashtbl.length conns >= config.max_conns then begin
              Obs.Metrics.Counter.incr m_overload_closed;
              close_quietly fd
            end
            else begin
              Unix.set_nonblock fd;
              Hashtbl.replace conns fd
                { fd; inbuf = ""; out = ""; closing = false };
              Obs.Metrics.Counter.incr m_accepted;
              Obs.Metrics.Gauge.set m_conns
                (float_of_int (Hashtbl.length conns))
            end;
            accept_all ()
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ()
          | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) ->
            accept_all ()
        in
        accept_all ()
      end;
      (* Read every ready connection and gather this round's complete
         request lines, in arrival order per connection. *)
      let round : (conn * string) list ref = ref [] in
      List.iter
        (fun fd ->
          if fd <> lfd then
            match Hashtbl.find_opt conns fd with
            | None -> ()
            | Some c -> (
              let chunk = Bytes.create 65536 in
              match Unix.read c.fd chunk 0 (Bytes.length chunk) with
              | 0 -> if c.out = "" then drop c else c.closing <- true
              | n ->
                c.inbuf <- c.inbuf ^ Bytes.sub_string chunk 0 n;
                let lines, rest = split_lines c.inbuf in
                c.inbuf <- rest;
                List.iter (fun l -> round := (c, l) :: !round) lines;
                (* An unterminated frame larger than any legal request
                   is a protocol violation: reply once, then hang up
                   after the write drains. *)
                if String.length c.inbuf > config.max_line_bytes then begin
                  c.inbuf <- "";
                  c.out <-
                    c.out
                    ^ Protocol.error_line ~id:Obs.Json.Null Protocol.Bad_json
                        (Printf.sprintf "frame exceeds %d bytes"
                           config.max_line_bytes)
                    ^ "\n";
                  c.closing <- true
                end
              | exception
                  Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                ()
              | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> drop c))
        readable;
      let round = List.rev !round in
      if round <> [] then begin
        let replies = Service.handle_batch service (List.map snd round) in
        List.iter2
          (fun (c, _) reply ->
            if Hashtbl.mem conns c.fd then c.out <- c.out ^ reply ^ "\n")
          round replies
      end;
      (* Write what we can; writability info from before the handlers
         ran is stale but harmless (EAGAIN is tolerated above). *)
      List.iter
        (fun fd ->
          match Hashtbl.find_opt conns fd with
          | Some c -> flush_conn c
          | None -> ())
        writable;
      Hashtbl.iter
        (fun _ c -> if c.out <> "" && not (List.mem c.fd writable) then flush_conn c)
        conns;
      let doomed =
        Hashtbl.fold
          (fun _ c acc -> if c.closing && c.out = "" then c :: acc else acc)
          conns []
      in
      List.iter drop doomed
  done;
  (* Graceful drain: stop accepting, give pending replies (including
     shutting_down errors issued mid-round) a bounded window to flush. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let pending () =
    Hashtbl.fold (fun _ c acc -> acc || c.out <> "") conns false
  in
  while pending () && Unix.gettimeofday () < deadline do
    let write_fds =
      Hashtbl.fold (fun fd c acc -> if c.out <> "" then fd :: acc else acc)
        conns []
    in
    match Unix.select [] write_fds [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | _, writable, _ ->
      List.iter
        (fun fd ->
          match Hashtbl.find_opt conns fd with
          | Some c -> flush_conn c
          | None -> ())
        writable
  done;
  Printf.printf "quantd: drained, shutting down\n%!"
