type spec = {
  name : string;
  default_n : int;
  make : int -> Ta.Model.network;
  queries : Ta.Model.network -> (string * Ta.Prop.query) list;
}

let fischer =
  {
    name = "fischer";
    default_n = 4;
    make = (fun n -> Ta.Fischer.make ~n ());
    queries =
      (fun net ->
        [
          ("mutual exclusion", Ta.Fischer.mutex net);
          ("deadlock-free", Ta.Fischer.no_deadlock);
        ]);
  }

let train_gate =
  {
    name = "train-gate";
    default_n = 4;
    make = (fun n -> Ta.Train_gate.make ~n_trains:n);
    queries =
      (fun net ->
        [
          ("safety", Ta.Train_gate.safety net);
          ("no deadlock", Ta.Train_gate.no_deadlock);
        ]);
  }

let all = [ fischer; train_gate ]

let find name = List.find_opt (fun s -> s.name = name) all

let known = String.concat "|" (List.map (fun s -> s.name) all)
