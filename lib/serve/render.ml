(* The exact output formats of the one-shot CLI, factored out so the
   daemon renders replies through the same code. Byte-identity between
   `quantcli check` and `quantcli client check` is a hard protocol
   property (tested end-to-end), so no format string may live in two
   places. Every function returns a newline-terminated line. *)

let query_line ~stats_json name (r : Ta.Checker.result) =
  if stats_json then
    Obs.Json.to_string
      (Obs.Json.Obj
         [
           ("query", Obs.Json.Str name);
           ("holds", Obs.Json.Bool r.Ta.Checker.holds);
           ("stats", Engine.Stats.to_json_value r.Ta.Checker.stats);
         ])
    ^ "\n"
  else
    Printf.sprintf "%-34s %-9s (%d states)\n" name
      (if r.Ta.Checker.holds then "satisfied" else "VIOLATED")
      r.Ta.Checker.stats.Ta.Checker.visited

let truncated_line name (stats : Ta.Checker.stats) ~reason =
  Printf.sprintf "%-34s %-9s (%d states, %s)\n" name "TRUNCATED"
    stats.Ta.Checker.visited
    (match reason with
     | `Mem_budget -> "mem budget"
     | `Stop -> "stopped")

let smc_fischer_line i (itv : Smc.Estimate.interval) =
  Printf.sprintf "process %d: p=%.4f [%.4f,%.4f] (%d runs)\n" i
    itv.Smc.Estimate.p_hat itv.Smc.Estimate.low itv.Smc.Estimate.high
    itv.Smc.Estimate.trials

let smc_train_line i series =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "train %d:" i);
  List.iter
    (fun (t, p) -> Buffer.add_string b (Printf.sprintf " %.0f:%.2f" t p))
    series;
  Buffer.add_char b '\n';
  Buffer.contents b

let modes_line (r : Modest.Brp.modes_row) =
  Printf.sprintf
    "TA1 %d/%d TA2 %d/%d PA %d PB %d P1 %d P2 %d Dmax %d Emax mu=%.3f sigma=%.3f\n"
    r.Modest.Brp.md_ta1_ok r.Modest.Brp.md_runs r.Modest.Brp.md_ta2_ok
    r.Modest.Brp.md_runs r.Modest.Brp.md_pa_obs r.Modest.Brp.md_pb_obs
    r.Modest.Brp.md_p1_obs r.Modest.Brp.md_p2_obs r.Modest.Brp.md_dmax_obs
    r.Modest.Brp.md_emax_mean r.Modest.Brp.md_emax_std
