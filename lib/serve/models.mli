(** The named-model table the CLI and the daemon share.

    [quantcli check] and the daemon's [check] method both resolve the
    model name and its standard query list here — the only way the two
    paths can stay byte-identical is for neither to own the list. *)

type spec = {
  name : string;
  default_n : int;  (** scaling parameter when the request omits [n] *)
  make : int -> Ta.Model.network;  (** compile at size [n] *)
  queries : Ta.Model.network -> (string * Ta.Prop.query) list;
      (** the model's standard queries, in reporting order *)
}

val fischer : spec
val train_gate : spec
val all : spec list
val find : string -> spec option

(** ["fischer|train-gate"] — for error messages. *)
val known : string
