(** Blocking client for the quantd socket protocol — the transport
    behind `quantcli client`, the daemon tests and `bench serve`.

    One connection per {!t}; requests are numbered and replies id-checked.
    Structured server errors come back as [Error (code, message)];
    transport and framing failures raise {!Protocol_error}. *)

type t

exception Protocol_error of string

(** [connect path] — retries briefly (50 ms steps) while a freshly
    spawned daemon binds its socket.
    @raise Unix.Unix_error when the socket never appears. *)
val connect : ?retries:int -> string -> t

val close : t -> unit

(** [call t ~meth params] — one request, one reply. *)
val call :
  t ->
  meth:string ->
  ?deadline_ms:float ->
  (string * Obs.Json.t) list ->
  (Obs.Json.t, string * string) result

(** [call_many t [(meth, deadline_ms, params); ...]] — pipelined: every
    request leaves in a single write, so the daemon sees them in one
    read round and fuses the smc sampling among them; replies return in
    request order. *)
val call_many :
  t ->
  (string * float option * (string * Obs.Json.t) list) list ->
  (Obs.Json.t, string * string) result list

(** Send a raw line (malformed on purpose, for tests), return the raw
    reply line. *)
val call_raw : t -> string -> string
