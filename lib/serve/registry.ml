(* The daemon's warm state: compiled models, a reply cache, and (after a
   model proves hot) a "warm anchor" — a retained symbolic state space
   whose sealed zones and packed states keep the weak intern tables
   ({!Zones.Dbm.seal}, {!Engine.Codec.intern}) populated between
   requests, so later queries on the same model intern into existing
   representatives instead of rebuilding them. Everything here is
   droppable: eviction degrades latency, never correctness. *)

let m_model_hits = Obs.counter "serve.model_hits"
let m_model_misses = Obs.counter "serve.model_misses"
let m_reply_hits = Obs.counter "serve.reply_hits"
let m_reply_misses = Obs.counter "serve.reply_misses"
let m_evictions = Obs.counter "serve.evictions"
let m_anchors = Obs.counter "serve.anchors_built"

type entry = {
  key : string;
  net : Ta.Model.network;
  mutable queries : int;
  mutable anchor : Ta.Zone_graph.state list;  (* [] = cold *)
  mutable anchor_failed : bool;  (* model too large to anchor; don't retry *)
  mutable tick : int;
}

type cached_reply = { reply : Obs.Json.t; mutable r_tick : int }

type t = {
  models : (string, entry) Hashtbl.t;
  replies : (string, cached_reply) Hashtbl.t;
  mutable clock : int;
  budget_words : int option;
  anchor_max_states : int;
}

let create ?mem_budget_words ?(anchor_max_states = 200_000) () =
  {
    models = Hashtbl.create 16;
    replies = Hashtbl.create 64;
    clock = 0;
    budget_words = mem_budget_words;
    anchor_max_states;
  }

let mem_budget_words t = t.budget_words

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let net e = e.net

(* Retained heap of both caches, shared structure counted once. An
   O(live-cache) walk — called on reply insertion (bounded by the same
   geometric spacing idea as the engine's poll: insertions are rare
   next to compute) and on metrics scrapes. *)
let words t = Obj.reachable_words (Obj.repr (t.models, t.replies))

let lru_fold tbl ~live f =
  Hashtbl.fold
    (fun key v acc ->
      if not (live v) then acc
      else
        match acc with
        | Some (_, best) when f best <= f v -> acc
        | _ -> Some (key, v))
    tbl None

(* Reclaim until under budget, cheapest-to-recompute first: anchors
   (pure latency aids), then cached replies, then whole model entries.
   LRU within each class. *)
let enforce_budget t =
  match t.budget_words with
  | None -> ()
  | Some budget ->
    let continue_ = ref (words t > budget) in
    while !continue_ do
      let dropped =
        match
          lru_fold t.models ~live:(fun e -> e.anchor <> []) (fun e -> e.tick)
        with
        | Some (_, e) ->
          e.anchor <- [];
          true
        | None -> (
          match lru_fold t.replies ~live:(fun _ -> true) (fun r -> r.r_tick) with
          | Some (key, _) ->
            Hashtbl.remove t.replies key;
            true
          | None -> (
            match lru_fold t.models ~live:(fun _ -> true) (fun e -> e.tick) with
            | Some (key, _) ->
              Hashtbl.remove t.models key;
              true
            | None -> false))
      in
      if dropped then begin
        Obs.Metrics.Counter.incr m_evictions;
        (* Eviction frees nothing until the GC agrees; compact the major
           heap so the next [words] reading reflects the drop. *)
        Gc.full_major ();
        continue_ := words t > budget
      end
      else continue_ := false
    done

let model t (spec : Models.spec) ~n =
  let key = Printf.sprintf "%s:%d" spec.Models.name n in
  match Hashtbl.find_opt t.models key with
  | Some e ->
    Obs.Metrics.Counter.incr m_model_hits;
    e.tick <- tick t;
    e
  | None ->
    Obs.Metrics.Counter.incr m_model_misses;
    let e =
      {
        key;
        net = spec.Models.make n;
        queries = 0;
        anchor = [];
        anchor_failed = false;
        tick = tick t;
      }
    in
    Hashtbl.replace t.models key e;
    e

(* Called after a successful query on [e]. The anchor is built lazily on
   the second query — a model queried once may never return, but a
   model queried twice is worth keeping warm — and only when the state
   space stays under [anchor_max_states] (a [Failure] from the cap
   marks the entry un-anchorable rather than retrying forever). *)
let warm t e =
  e.queries <- e.queries + 1;
  if e.queries >= 2 && e.anchor = [] && not e.anchor_failed then begin
    (match Ta.Checker.reachable_states ~max_states:t.anchor_max_states e.net with
     | states ->
       e.anchor <- states;
       Obs.Metrics.Counter.incr m_anchors
     | exception Failure _ -> e.anchor_failed <- true);
    enforce_budget t
  end

let cached_reply t ~fingerprint =
  match Hashtbl.find_opt t.replies fingerprint with
  | Some r ->
    Obs.Metrics.Counter.incr m_reply_hits;
    r.r_tick <- tick t;
    Some r.reply
  | None ->
    Obs.Metrics.Counter.incr m_reply_misses;
    None

let store_reply t ~fingerprint reply =
  Hashtbl.replace t.replies fingerprint { reply; r_tick = tick t };
  enforce_budget t

let stats_json t =
  let anchors =
    Hashtbl.fold (fun _ e n -> if e.anchor <> [] then n + 1 else n) t.models 0
  in
  Obs.Json.Obj
    [
      ("models", Obs.Json.Int (Hashtbl.length t.models));
      ("anchors", Obs.Json.Int anchors);
      ("replies", Obs.Json.Int (Hashtbl.length t.replies));
      ("cache_words", Obs.Json.Int (words t));
      ( "budget_words",
        match t.budget_words with
        | Some b -> Obs.Json.Int b
        | None -> Obs.Json.Null );
      ("dbm_intern_size", Obs.Json.Int (Zones.Dbm.intern_size ()));
    ]
