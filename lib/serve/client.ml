module Json = Obs.Json

type t = {
  fd : Unix.file_descr;
  mutable inbuf : string;
  mutable next_id : int;
}

exception Protocol_error of string

(* Connecting retries briefly: the daemon just forked by a test or
   bench script may not have bound its socket yet. *)
let connect ?(retries = 100) path =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> { fd; inbuf = ""; next_id = 0 }
    | exception
        Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n > 0 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.05;
      go (n - 1)
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  go retries

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all t s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring t.fd s !off (len - !off)
  done

let read_line t =
  let rec go () =
    match String.index_opt t.inbuf '\n' with
    | Some i ->
      let line = String.sub t.inbuf 0 i in
      t.inbuf <- String.sub t.inbuf (i + 1) (String.length t.inbuf - i - 1);
      line
    | None ->
      let chunk = Bytes.create 65536 in
      let n = Unix.read t.fd chunk 0 (Bytes.length chunk) in
      if n = 0 then raise (Protocol_error "connection closed by server");
      t.inbuf <- t.inbuf ^ Bytes.sub_string chunk 0 n;
      go ()
  in
  go ()

let request_line t ~meth ?deadline_ms params =
  let id = t.next_id in
  t.next_id <- id + 1;
  let fields =
    [
      ("v", Json.Int Protocol.version);
      ("id", Json.Int id);
      ("method", Json.Str meth);
      ("params", Json.Obj params);
    ]
    @
    match deadline_ms with
    | Some ms -> [ ("deadline_ms", Json.Float ms) ]
    | None -> []
  in
  (Json.to_string (Json.Obj fields) ^ "\n", id)

let read_reply t ~id =
  let line = read_line t in
  match Protocol.parse_reply line with
  | Error msg -> raise (Protocol_error msg)
  | Ok { reply_id; payload } ->
    (match reply_id with
     | Json.Int i when i = id -> ()
     | Json.Null -> ()  (* unframeable request: server couldn't echo *)
     | _ -> raise (Protocol_error "reply id does not match request id"));
    payload

let call t ~meth ?deadline_ms params =
  let line, id = request_line t ~meth ?deadline_ms params in
  write_all t line;
  read_reply t ~id

(* Pipelining: all request lines leave in one write so they land in one
   daemon read round — which is what makes the server fuse concurrent
   smc sampling. Replies come back in request order. *)
let call_many t reqs =
  let lines =
    List.map
      (fun (meth, deadline_ms, params) -> request_line t ~meth ?deadline_ms params)
      reqs
  in
  write_all t (String.concat "" (List.map fst lines));
  List.map (fun (_, id) -> read_reply t ~id) lines

let call_raw t line =
  write_all t (line ^ "\n");
  read_line t
