(** Shared result rendering — the single home of the CLI's output
    formats.

    The daemon's replies carry pre-rendered text and the `client`
    subcommand prints it verbatim, so `quantcli client check` is
    byte-identical to one-shot `quantcli check` exactly when both sides
    render through these functions. Each returns one (or, for
    [--stats-json], one JSON) newline-terminated line. *)

(** The verdict line of one model-checking query:
    ["<name>  satisfied|VIOLATED  (<visited> states)"], or the
    [--stats-json] JSON object. *)
val query_line : stats_json:bool -> string -> Ta.Checker.result -> string

(** Graceful degradation under [--mem-budget] / a deadline: the verdict
    slot reads [TRUNCATED] and the line reports the explored prefix. *)
val truncated_line :
  string -> Ta.Checker.stats -> reason:[ `Mem_budget | `Stop ] -> string

(** ["process <i>: p=... [...,...] (<n> runs)"] — `smc --model fischer`. *)
val smc_fischer_line : int -> Smc.Estimate.interval -> string

(** ["train <i>: <t>:<p> ..."] — the `smc --model train-gate` CDF row. *)
val smc_train_line : int -> (float * float) list -> string

(** The modes backend's observation line (`modes`, `brp --backend modes`). *)
val modes_line : Modest.Brp.modes_row -> string
