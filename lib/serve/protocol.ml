module Json = Obs.Json

let version = 1

type error_code =
  | Bad_json
  | Bad_request
  | Unknown_method
  | Deadline_exceeded
  | Resource_exhausted
  | Shutting_down
  | Internal

let error_code_name = function
  | Bad_json -> "bad_json"
  | Bad_request -> "bad_request"
  | Unknown_method -> "unknown_method"
  | Deadline_exceeded -> "deadline_exceeded"
  | Resource_exhausted -> "resource_exhausted"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let error_code_of_name = function
  | "bad_json" -> Some Bad_json
  | "bad_request" -> Some Bad_request
  | "unknown_method" -> Some Unknown_method
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "resource_exhausted" -> Some Resource_exhausted
  | "shutting_down" -> Some Shutting_down
  | "internal" -> Some Internal
  | _ -> None

type request = {
  id : Json.t;
  meth : string;
  params : Json.t;
  deadline_ms : float option;
}

(* Untrusted-input boundary: the line comes straight off a socket, so
   everything funnels through [Json.parse_untrusted] (size + depth
   bounded, total) and every shape defect becomes a structured error
   carrying whatever id could still be salvaged for the reply. *)
let parse_request ?limits line =
  match Json.parse_untrusted ?limits line with
  | Error msg -> Error (Json.Null, Bad_json, msg)
  | Ok j ->
    let id = Option.value ~default:Json.Null (Json.member "id" j) in
    let fail code msg = Error (id, code, msg) in
    (match id with
     | Json.Null | Json.Str _ | Json.Int _ -> begin
       match Json.member "v" j with
       | Some (Json.Int v) when v = version -> begin
         match Json.member "method" j with
         | Some (Json.Str meth) when meth <> "" -> begin
           let params =
             Option.value ~default:(Json.Obj []) (Json.member "params" j)
           in
           match params with
           | Json.Obj _ -> begin
             match Json.member "deadline_ms" j with
             | None ->
               Ok { id; meth; params; deadline_ms = None }
             | Some d -> begin
               match Json.to_float_opt d with
               | Some ms when ms > 0.0 && Float.is_finite ms ->
                 Ok { id; meth; params; deadline_ms = Some ms }
               | Some _ | None ->
                 fail Bad_request "deadline_ms must be a positive number"
             end
           end
           | _ -> fail Bad_request "params must be an object"
         end
         | Some _ -> fail Bad_request "method must be a non-empty string"
         | None -> fail Bad_request "missing field: method"
       end
       | Some _ -> fail Bad_request (Printf.sprintf "unsupported protocol version (expected v=%d)" version)
       | None -> fail Bad_request "missing field: v"
     end
     | _ -> fail Bad_request "id must be a string or an integer")

let ok_line ~id result =
  Json.to_string
    (Json.Obj
       [
         ("v", Json.Int version);
         ("id", id);
         ("ok", Json.Bool true);
         ("result", result);
       ])

let error_line ~id code msg =
  Json.to_string
    (Json.Obj
       [
         ("v", Json.Int version);
         ("id", id);
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [
               ("code", Json.Str (error_code_name code));
               ("message", Json.Str msg);
             ] );
       ])

type reply = {
  reply_id : Json.t;
  payload : (Json.t, string * string) result;
}

let parse_reply ?limits line =
  match Json.parse_untrusted ?limits line with
  | Error msg -> Error ("reply is not valid JSON: " ^ msg)
  | Ok j -> begin
    let reply_id = Option.value ~default:Json.Null (Json.member "id" j) in
    match Json.member "ok" j with
    | Some (Json.Bool true) -> begin
      match Json.member "result" j with
      | Some r -> Ok { reply_id; payload = Ok r }
      | None -> Error "ok reply without a result field"
    end
    | Some (Json.Bool false) -> begin
      match Json.member "error" j with
      | Some e ->
        let str k =
          match Json.member k e with Some (Json.Str s) -> s | _ -> ""
        in
        Ok { reply_id; payload = Error (str "code", str "message") }
      | None -> Error "error reply without an error field"
    end
    | _ -> Error "reply without a boolean ok field"
  end

(* Typed param accessors over an (already shape-checked) params object;
   each returns a structured [Bad_request] on a type mismatch rather
   than raising, so a handler reads params monadically. *)

let param_int params ~key ~default =
  match Json.member key params with
  | None -> Ok default
  | Some (Json.Int n) -> Ok n
  | Some _ -> Error (Printf.sprintf "param %s must be an integer" key)

let param_bool params ~key ~default =
  match Json.member key params with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "param %s must be a boolean" key)

let param_string params ~key ~default =
  match Json.member key params with
  | None -> Ok default
  | Some (Json.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "param %s must be a string" key)

let param_string_list params ~key =
  match Json.member key params with
  | None -> Ok []
  | Some (Json.Arr l) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Json.Str s :: tl -> go (s :: acc) tl
      | _ -> Error (Printf.sprintf "param %s must be an array of strings" key)
    in
    go [] l
  | Some _ -> Error (Printf.sprintf "param %s must be an array of strings" key)

let forbidden params ~key ~why =
  match Json.member key params with
  | None -> Ok ()
  | Some _ -> Error (Printf.sprintf "param %s not allowed: %s" key why)
