(** Request dispatch: one parsed JSONL line in, one reply line out.

    Methods: [ping], [metrics] (an {!Obs.Report} snapshot plus the
    registry's cache shape), [check] (a named model's standard queries,
    text rendered through {!Render} for byte-identity with the one-shot
    CLI), [smc], [modes] and [fuzz] (which rejects fault injection —
    process-global mutation has no place in a shared server).

    {b Batching.} {!handle_batch} takes every complete line one daemon
    read round produced — possibly from several connections — and fuses
    the sampling work of all concurrent [smc] requests into a single
    {!Smc.Batch} range on the shared pool, under the earliest member
    deadline (expiry falls back to per-request runs). Per-item results
    are byte-identical to sequential handling, so batching is invisible
    in the replies and {!handle_line} is literally a singleton batch.

    {b Failure containment.} Every handler runs guarded: malformed
    params, truncated explorations ([deadline_ms], [--mem-budget],
    SIGTERM) and unexpected exceptions each map to a structured error
    reply ({!Protocol.error_code}) — no request can take the process
    down. Long explorations poll a stop hook once per visited state, so
    deadlines and shutdown interrupt mid-query.

    Instrumented: [serve.requests], [serve.errors],
    [serve.deadline_expired], [serve.smc_batches],
    [serve.smc_fused_requests], [serve.slow_captures], and the
    [serve.request_wall_s] histogram. With [slow_ms] and an enabled
    flight recorder, a request slower than the threshold dumps the
    recorder's timeline as a Chrome trace into [slow_trace_dir]. *)

type t

val create :
  registry:Registry.t ->
  pool:Par.Pool.t ->
  ?slow_ms:float ->
  ?slow_trace_dir:string ->
  ?shutting_down:(unit -> bool) ->
  unit ->
  t

(** [handle_batch t lines] — replies in request order, one per line. *)
val handle_batch : t -> string list -> string list

val handle_line : t -> string -> string
