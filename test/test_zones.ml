(* Tests for the DBM substrate: Bound arithmetic, DBM operations validated
   against concrete sampled valuations, and exact federation subtraction. *)

module Bound = Zones.Bound
module Dbm = Zones.Dbm
module Fed = Zones.Fed

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Bound unit tests                                                    *)
(* ------------------------------------------------------------------ *)

let test_bound_order () =
  check "lt m < le m" true (Bound.compare (Bound.lt 3) (Bound.le 3) < 0);
  check "le m < lt (m+1)" true (Bound.compare (Bound.le 3) (Bound.lt 4) < 0);
  check "finite < inf" true (Bound.compare (Bound.le 1000000) Bound.inf < 0);
  check "negative constants" true (Bound.compare (Bound.le (-5)) (Bound.lt (-4)) < 0)

let test_bound_add () =
  let ( +! ) = Bound.add in
  check "le+le weak" false (Bound.is_strict (Bound.le 2 +! Bound.le 3));
  check_int "le+le const" 5 (Bound.constant (Bound.le 2 +! Bound.le 3));
  check "le+lt strict" true (Bound.is_strict (Bound.le 2 +! Bound.lt 3));
  check_int "lt+lt const" (-2) (Bound.constant (Bound.lt (-4) +! Bound.lt 2));
  check "inf absorbs" true (Bound.is_inf (Bound.inf +! Bound.le 1))

let test_bound_negate () =
  check "neg le" true (Bound.is_strict (Bound.negate (Bound.le 3)));
  check_int "neg le const" (-3) (Bound.constant (Bound.negate (Bound.le 3)));
  check "neg lt" false (Bound.is_strict (Bound.negate (Bound.lt (-2))));
  check_int "neg lt const" 2 (Bound.constant (Bound.negate (Bound.lt (-2))))

let test_bound_sat () =
  check "sat le edge" true (Bound.sat (Bound.le 3) 3.0);
  check "sat lt edge" false (Bound.sat (Bound.lt 3) 3.0);
  check "sat lt below" true (Bound.sat (Bound.lt 3) 2.5);
  check "sat inf" true (Bound.sat Bound.inf 1e9)

(* ------------------------------------------------------------------ *)
(* DBM unit tests                                                      *)
(* ------------------------------------------------------------------ *)

let test_zero_zone () =
  let z = Dbm.zero ~clocks:2 in
  check "zero nonempty" false (Dbm.is_empty z);
  check "origin in zero" true (Dbm.satisfies z [| 0.; 0.; 0. |]);
  check "not offset" false (Dbm.satisfies z [| 0.; 1.; 0. |])

let test_up_down () =
  let z = Dbm.zero ~clocks:2 in
  let up = Dbm.up z in
  check "diagonal after up" true (Dbm.satisfies up [| 0.; 4.; 4. |]);
  check "off-diagonal not after up" false (Dbm.satisfies up [| 0.; 4.; 3. |]);
  let shifted = Dbm.reset (Dbm.up z) 1 0 in
  (* x1 = 0, x2 arbitrary >= x1 *)
  check "reset after up" true (Dbm.satisfies shifted [| 0.; 0.; 7. |]);
  let past = Dbm.down shifted in
  check "down relaxes lower bounds" true (Dbm.satisfies past [| 0.; 0.; 1. |])

let test_constrain_empties () =
  let z = Dbm.zero ~clocks:1 in
  let z' = Dbm.constrain z 1 0 (Bound.lt 0) in
  check "x<0 empties x=0" true (Dbm.is_empty z');
  let u = Dbm.universal ~clocks:1 in
  let bounded = Dbm.constrain u 1 0 (Bound.le 5) in
  let conflict = Dbm.constrain bounded 0 1 (Bound.lt (-6)) in
  check "x<=5 & x>6 empty" true (Dbm.is_empty conflict)

let test_intersect_subset () =
  let u = Dbm.universal ~clocks:2 in
  let a = Dbm.constrain u 1 0 (Bound.le 5) in
  let b = Dbm.constrain u 1 0 (Bound.le 3) in
  check "b subset a" true (Dbm.subset b a);
  check "a not subset b" false (Dbm.subset a b);
  check "inter = b" true (Dbm.equal (Dbm.intersect a b) b);
  check "relation subset" true (Dbm.relation b a = `Subset)

let test_reset_copy_free () =
  let u = Dbm.universal ~clocks:2 in
  let z = Dbm.constrain u 1 0 (Bound.le 5) in
  let r = Dbm.reset z 1 2 in
  check "reset value" true (Dbm.satisfies r [| 0.; 2.; 9. |]);
  check "reset excludes others" false (Dbm.satisfies r [| 0.; 3.; 9. |]);
  let c = Dbm.copy_clock z ~dst:2 ~src:1 in
  check "copy ties clocks" true (Dbm.satisfies c [| 0.; 4.; 4. |]);
  check "copy excludes untied" false (Dbm.satisfies c [| 0.; 4.; 5. |]);
  let f = Dbm.free r 1 in
  check "free forgets" true (Dbm.satisfies f [| 0.; 100.; 9. |])

let test_extrapolate_widen () =
  let u = Dbm.universal ~clocks:1 in
  let z = Dbm.constrain u 1 0 (Bound.le 50) in
  let z = Dbm.constrain z 0 1 (Bound.le (-40)) in
  (* With max constant 10, both the upper bound 50 and the lower bound 40
     exceed the relevant constants and must widen. *)
  let w = Dbm.extrapolate z [| 0; 10 |] in
  check "widened contains original" true (Dbm.subset z w);
  check "upper bound dropped" true (Dbm.satisfies w [| 0.; 1000. |]);
  check "lower bound relaxed to >k" true (Dbm.satisfies w [| 0.; 10.5 |]);
  check "below k excluded" false (Dbm.satisfies w [| 0.; 9. |])

let test_pp () =
  let u = Dbm.universal ~clocks:2 in
  let z = Dbm.constrain u 1 0 (Bound.le 5) in
  let s = Dbm.to_string ~names:[| "0"; "x"; "y" |] z in
  check "pp mentions x<=5" true
    (Astring.String.is_infix ~affix:"x<=5" s
     || String.length s > 0 && not (String.equal s "false"))

(* ------------------------------------------------------------------ *)
(* Random-DBM generator and property tests                             *)
(* ------------------------------------------------------------------ *)

let rng_of_seed seed = Random.State.make [| seed |]

(* Build a random (possibly empty) DBM by constraining / transforming the
   universal zone with a seeded sequence of operations. *)
let random_dbm rng ~n_clocks ~ops =
  let z = ref (Dbm.universal ~clocks:n_clocks) in
  for _ = 1 to ops do
    let i = Random.State.int rng (n_clocks + 1)
    and j = Random.State.int rng (n_clocks + 1) in
    if i <> j then begin
      let c = Random.State.int rng 21 - 10 in
      let b = if Random.State.bool rng then Bound.le c else Bound.lt c in
      match Random.State.int rng 5 with
      | 0 -> z := Dbm.up !z
      | 1 -> if i > 0 then z := Dbm.reset !z i (abs c)
      | _ -> z := Dbm.constrain !z i j b
    end
  done;
  !z

let dbm_pair_gen =
  QCheck.Gen.(
    map
      (fun (seed, n_clocks, ops) ->
        let rng = rng_of_seed seed in
        let a = random_dbm rng ~n_clocks ~ops in
        let b = random_dbm rng ~n_clocks ~ops in
        (n_clocks, a, b))
      (triple (int_bound 1_000_000) (int_range 1 4) (int_range 1 8)))

let dbm_pair_arb =
  QCheck.make dbm_pair_gen ~print:(fun (_, a, b) ->
      Printf.sprintf "A = %s\nB = %s" (Dbm.to_string a) (Dbm.to_string b))

let samples_of rng z k =
  let rec loop acc i =
    if i = 0 then acc
    else
      match Dbm.sample rng z with
      | Some v -> loop (v :: acc) (i - 1)
      | None -> acc
  in
  loop [] k

let prop_sample_member =
  QCheck.Test.make ~name:"sample lies in its zone" ~count:300 dbm_pair_arb
    (fun (_, a, _) ->
      let rng = rng_of_seed 7 in
      List.for_all (Dbm.satisfies a) (samples_of rng a 10))

let prop_intersect_sound =
  QCheck.Test.make ~name:"intersection = conjunction on samples" ~count:300
    dbm_pair_arb (fun (_, a, b) ->
      let rng = rng_of_seed 11 in
      let inter = Dbm.intersect a b in
      let from_inter = samples_of rng inter 10 in
      let in_both v = Dbm.satisfies a v && Dbm.satisfies b v in
      List.for_all in_both from_inter
      && List.for_all
           (fun v -> if in_both v then Dbm.satisfies inter v else true)
           (samples_of rng a 10 @ samples_of rng b 10))

let prop_subset_vs_subtract =
  QCheck.Test.make ~name:"subset agrees with empty subtraction" ~count:300
    dbm_pair_arb (fun (_, a, b) ->
      Dbm.subset a b = Fed.is_empty (Fed.subtract_dbm a b))

let prop_subtract_exact =
  QCheck.Test.make ~name:"subtraction exact on samples" ~count:300 dbm_pair_arb
    (fun (_, a, b) ->
      let rng = rng_of_seed 13 in
      let diff = Fed.subtract_dbm a b in
      let in_diff v = Fed.mem diff v in
      List.for_all
        (fun v -> in_diff v = (Dbm.satisfies a v && not (Dbm.satisfies b v)))
        (samples_of rng a 15)
      && List.for_all
           (fun v -> Dbm.satisfies a v && not (Dbm.satisfies b v))
           (List.concat_map
              (fun z -> samples_of rng z 5)
              (Fed.dbms diff)))

let prop_subtract_disjoint =
  QCheck.Test.make ~name:"subtraction pieces are disjoint" ~count:200
    dbm_pair_arb (fun (_, a, b) ->
      let rng = rng_of_seed 17 in
      let pieces = Fed.dbms (Fed.subtract_dbm a b) in
      let rec pairwise = function
        | [] -> true
        | z :: rest ->
          List.for_all
            (fun z' ->
              List.for_all
                (fun v -> not (Dbm.satisfies z' v))
                (samples_of rng z 5))
            rest
          && pairwise rest
      in
      pairwise pieces)

let prop_up_monotone =
  QCheck.Test.make ~name:"up contains zone and future points" ~count:300
    dbm_pair_arb (fun (_, a, _) ->
      let rng = rng_of_seed 19 in
      let future = Dbm.up a in
      Dbm.subset a future
      && List.for_all
           (fun v ->
             let shifted = Array.mapi (fun i x -> if i = 0 then x else x +. 2.5) v in
             Dbm.satisfies future shifted)
           (samples_of rng a 10))

let prop_down_contains =
  QCheck.Test.make ~name:"down contains zone and past points stay >=0" ~count:300
    dbm_pair_arb (fun (_, a, _) ->
      let rng = rng_of_seed 23 in
      let past = Dbm.down a in
      Dbm.subset a past
      && List.for_all
           (fun v -> Array.for_all (fun x -> x >= 0.) v)
           (samples_of rng past 10))

let prop_reset_sound =
  QCheck.Test.make ~name:"reset pins clock and preserves others" ~count:300
    dbm_pair_arb (fun (n, a, _) ->
      let rng = rng_of_seed 29 in
      let x = 1 + (n - 1) in
      let r = Dbm.reset a x 3 in
      Dbm.is_empty a
      || List.for_all
           (fun v ->
             let v' = Array.copy v in
             v'.(x) <- 3.;
             Dbm.satisfies r v')
           (samples_of rng a 10))

let prop_extrapolate_widens =
  QCheck.Test.make ~name:"extrapolation only widens" ~count:300 dbm_pair_arb
    (fun (n, a, _) ->
      let k = Array.make (n + 1) 5 in
      Dbm.subset a (Dbm.extrapolate a k))

let prop_equal_hash =
  QCheck.Test.make ~name:"equal zones share hash" ~count:300 dbm_pair_arb
    (fun (_, a, b) -> (not (Dbm.equal a b)) || Dbm.hash a = Dbm.hash b)

let prop_roundtrip =
  QCheck.Test.make ~name:"to_array/of_array roundtrip" ~count:200 dbm_pair_arb
    (fun (n, a, _) ->
      Dbm.equal a (Dbm.of_array ~clocks:n (Dbm.to_array a)))

(* ------------------------------------------------------------------ *)
(* Canonical-form invariants. [of_array] re-closes its input, so a DBM
   is in canonical form exactly when rebuilding it from its own raw
   bounds is a structural no-op.                                       *)
(* ------------------------------------------------------------------ *)

let is_canonical n z = Dbm.to_array z = Dbm.to_array (Dbm.of_array ~clocks:n (Dbm.to_array z))

let prop_canonical_idempotent =
  QCheck.Test.make ~name:"canonicalization is idempotent" ~count:500
    dbm_pair_arb (fun (n, a, _) ->
      let once = Dbm.of_array ~clocks:n (Dbm.to_array a) in
      let twice = Dbm.of_array ~clocks:n (Dbm.to_array once) in
      Dbm.to_array once = Dbm.to_array twice)

let prop_seal_phys_equal =
  QCheck.Test.make ~name:"seal is pointer-equal on equal zones" ~count:500
    dbm_pair_arb (fun (n, a, b) ->
      (* A structurally equal copy built through an independent path
         must seal to the very same representative. *)
      let a' = Dbm.of_array ~clocks:n (Dbm.to_array a) in
      Dbm.seal a == Dbm.seal a'
      && (not (Dbm.equal a b)) = not (Dbm.seal a == Dbm.seal b))

let prop_seal_idempotent =
  QCheck.Test.make ~name:"seal is idempotent" ~count:500 dbm_pair_arb
    (fun (n, a, _) ->
      let k = Array.make (n + 1) 5 in
      let c = Dbm.seal ~extra:(Dbm.Extra_m k) a in
      Dbm.seal ~extra:(Dbm.Extra_m k) (c :> Dbm.t) == c
      && Dbm.seal (c :> Dbm.t) == c
      && Dbm.is_sealed (c :> Dbm.t)
      && Dbm.hash (c :> Dbm.t) = Dbm.hash (c :> Dbm.t))

let prop_lu_widens =
  QCheck.Test.make
    ~name:"Extra-LU widens, is canonical, and is coarser than Extra-M"
    ~count:500 dbm_pair_arb (fun (n, a, _) ->
      let lower = Array.init (n + 1) (fun i -> i * 3 mod 7)
      and upper = Array.init (n + 1) (fun i -> i * 5 mod 9) in
      let w = Dbm.extrapolate_lu a ~lower ~upper in
      let kmax = Array.init (n + 1) (fun i -> max lower.(i) upper.(i)) in
      Dbm.subset a w
      && is_canonical n w
      (* smaller per-direction bounds can only widen further *)
      && Dbm.subset (Dbm.extrapolate a kmax) w
      (* with both directions at the max constant, LU degenerates to M *)
      && Dbm.equal (Dbm.extrapolate_lu a ~lower:kmax ~upper:kmax)
           (Dbm.extrapolate a kmax))

let prop_ops_preserve_canonical =
  QCheck.Test.make ~name:"up/reset/intersect preserve canonical form"
    ~count:500 dbm_pair_arb (fun (n, a, b) ->
      is_canonical n (Dbm.up a)
      && is_canonical n (Dbm.reset a 1 3)
      && is_canonical n (Dbm.intersect a b))

(* The sealing boundary: successor pipelines produce plain un-sealed
   DBMs; only [seal] yields a canon handle, and stores take canon at the
   type level — so the run-time checks here only guard the boundary's
   bookkeeping ([is_sealed], idempotence, fresh copies unsealing). *)
let test_seal_boundary () =
  let z = Dbm.constrain (Dbm.universal ~clocks:2) 1 0 (Bound.le 5) in
  check "pipeline output is unsealed" false (Dbm.is_sealed z);
  let c = Dbm.seal z in
  check "sealed handle" true (Dbm.is_sealed (c :> Dbm.t));
  check "seal is idempotent (pointer)" true (Dbm.seal (c :> Dbm.t) == c);
  check "ops on handles return fresh unsealed DBMs" false
    (Dbm.is_sealed (Dbm.up (c :> Dbm.t)))

(* LU-extrapolated exploration must reach the same reachability verdict
   as the classic k-extrapolated one on generated TA families; both are
   compared against the independent digital-clocks oracle. *)
let ta_family =
  match Gen.Oracle.family_of_name "ta-reach" with
  | Some f -> f
  | None -> assert false

let prop_lu_simulates_k_verdict =
  QCheck.Test.make
    ~name:"LU seal preserves the k-extrapolated reachability verdict"
    ~count:40
    (QCheck.make QCheck.Gen.(int_bound 10_000) ~print:string_of_int)
    (fun i ->
      let rng = Gen.Rng.(child (make 4242) i) in
      let case = Gen.Oracle.generate ta_family rng in
      match
        ( Gen.Oracle.check ~extrapolation:`K case,
          Gen.Oracle.check ~extrapolation:`Lu case )
      with
      | Gen.Oracle.Diverge m, _ ->
        QCheck.Test.fail_reportf "Extra-M diverged from digital: %s" m
      | _, Gen.Oracle.Diverge m ->
        QCheck.Test.fail_reportf "Extra-LU diverged from digital: %s" m
      | (Gen.Oracle.Agree | Gen.Oracle.Skip _),
        (Gen.Oracle.Agree | Gen.Oracle.Skip _) -> true)

(* Mutation coverage: the injectable DBM faults must be visible to the
   invariants this suite checks, otherwise the properties are too weak
   to defend them. *)
let test_fault_injection_observable () =
  Fun.protect
    ~finally:(fun () -> Dbm.inject_fault None)
    (fun () ->
      (* Broken_up stops time for the highest clock. *)
      Dbm.inject_fault (Some Dbm.Broken_up);
      let z = Dbm.up (Dbm.zero ~clocks:2) in
      check "broken up pins the last clock" false
        (Dbm.satisfies z [| 0.; 5.; 5. |]);
      (* Unclosed_intersect skips re-closure: x1<=5 /\ x2-x1<=3 must
         derive x2<=8, the broken version leaves it unconstrained. *)
      Dbm.inject_fault (Some Dbm.Unclosed_intersect);
      let a = Dbm.constrain (Dbm.universal ~clocks:2) 1 0 (Bound.le 5) in
      let b = Dbm.constrain (Dbm.universal ~clocks:2) 2 1 (Bound.le 3) in
      check "unclosed intersect is not canonical" false
        (is_canonical 2 (Dbm.intersect a b));
      Dbm.inject_fault None;
      check "restored intersect is canonical" true
        (is_canonical 2 (Dbm.intersect a b)))

(* ------------------------------------------------------------------ *)
(* Federation unit tests                                               *)
(* ------------------------------------------------------------------ *)

let test_fed_basic () =
  let u = Dbm.universal ~clocks:1 in
  let low = Dbm.constrain u 1 0 (Bound.lt 2) in
  let high = Dbm.constrain u 0 1 (Bound.le (-5)) in
  let f = Fed.add (Fed.of_dbm low) high in
  check_int "two members" 2 (Fed.size f);
  check "covers low" true (Fed.mem f [| 0.; 1. |]);
  check "covers high" true (Fed.mem f [| 0.; 6. |]);
  check "gap uncovered" false (Fed.mem f [| 0.; 3. |]);
  check "universal not within" false (Fed.dbm_subset u f);
  check "low within" true (Fed.dbm_subset low f)

let test_fed_cover () =
  let u = Dbm.universal ~clocks:1 in
  let left = Dbm.constrain u 1 0 (Bound.le 5) in
  let right = Dbm.constrain u 0 1 (Bound.le (-3)) in
  let f = Fed.add (Fed.of_dbm left) right in
  (* x<=5 union x>=3 covers everything. *)
  check "overlapping cover" true (Fed.dbm_subset u f)


(* Federation algebra on sampled valuations. *)
let fed_of_two a b = Fed.add (Fed.of_dbm a) b

let prop_fed_union_inter =
  QCheck.Test.make ~name:"federation union/inter agree with logic" ~count:200
    dbm_pair_arb (fun (_, a, b) ->
      let rng = rng_of_seed 31 in
      let u = Fed.union (Fed.of_dbm a) (Fed.of_dbm b) in
      let i = Fed.inter (fed_of_two a b) (Fed.of_dbm b) in
      let pts = samples_of rng a 8 @ samples_of rng b 8 in
      List.for_all
        (fun v ->
          Fed.mem u v = (Dbm.satisfies a v || Dbm.satisfies b v)
          && Fed.mem i v = ((Dbm.satisfies a v || Dbm.satisfies b v) && Dbm.satisfies b v))
        pts)

let prop_fed_diff =
  QCheck.Test.make ~name:"federation difference agrees with logic" ~count:200
    dbm_pair_arb (fun (_, a, b) ->
      let rng = rng_of_seed 37 in
      let d = Fed.diff (fed_of_two a b) (Fed.of_dbm b) in
      List.for_all
        (fun v ->
          Fed.mem d v = ((Dbm.satisfies a v || Dbm.satisfies b v) && not (Dbm.satisfies b v)))
        (samples_of rng a 10 @ samples_of rng b 5))

let prop_fed_subset_reflexive =
  QCheck.Test.make ~name:"dbm_subset reflexive and monotone" ~count:200
    dbm_pair_arb (fun (_, a, b) ->
      Fed.dbm_subset a (Fed.of_dbm a)
      && Fed.dbm_subset a (fed_of_two a b))

let () =
  let qtests =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_sample_member;
        prop_intersect_sound;
        prop_subset_vs_subtract;
        prop_subtract_exact;
        prop_subtract_disjoint;
        prop_up_monotone;
        prop_down_contains;
        prop_reset_sound;
        prop_extrapolate_widens;
        prop_equal_hash;
        prop_roundtrip;
        prop_canonical_idempotent;
        prop_seal_phys_equal;
        prop_seal_idempotent;
        prop_lu_widens;
        prop_lu_simulates_k_verdict;
        prop_ops_preserve_canonical;
        prop_fed_union_inter;
        prop_fed_diff;
        prop_fed_subset_reflexive;
      ]
  in
  Alcotest.run "zones"
    [
      ( "bound",
        [
          Alcotest.test_case "order" `Quick test_bound_order;
          Alcotest.test_case "add" `Quick test_bound_add;
          Alcotest.test_case "negate" `Quick test_bound_negate;
          Alcotest.test_case "sat" `Quick test_bound_sat;
        ] );
      ( "dbm",
        [
          Alcotest.test_case "zero zone" `Quick test_zero_zone;
          Alcotest.test_case "up/down" `Quick test_up_down;
          Alcotest.test_case "constrain empties" `Quick test_constrain_empties;
          Alcotest.test_case "intersect/subset" `Quick test_intersect_subset;
          Alcotest.test_case "reset/copy/free" `Quick test_reset_copy_free;
          Alcotest.test_case "extrapolate" `Quick test_extrapolate_widen;
          Alcotest.test_case "seal boundary" `Quick test_seal_boundary;
          Alcotest.test_case "pretty-print" `Quick test_pp;
          Alcotest.test_case "fault injection observable" `Quick
            test_fault_injection_observable;
        ] );
      ( "fed",
        [
          Alcotest.test_case "basic" `Quick test_fed_basic;
          Alcotest.test_case "cover" `Quick test_fed_cover;
        ] );
      ("properties", qtests);
    ]
