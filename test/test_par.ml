(* The deterministic domain pool: scheduling must never leak into
   results. Covers map_range against its sequential reference,
   bit-identical SMC under jobs=1 and jobs=4, exception propagation from
   workers, cooperative cancellation, pool reuse, and the ordered
   fold_until used by the SPRT. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* map_range                                                           *)
(* ------------------------------------------------------------------ *)

let test_map_range_matches_sequential () =
  Par.Pool.with_pool ~jobs:4 @@ fun pool ->
  List.iter
    (fun (lo, hi, chunk) ->
      let f k = (k * k) + lo in
      let expected = Array.init (max 0 (hi - lo)) (fun i -> f (lo + i)) in
      let got = Par.map_range ~pool ?chunk ~lo ~hi f in
      check
        (Printf.sprintf "range [%d,%d) chunk %s" lo hi
           (match chunk with Some c -> string_of_int c | None -> "auto"))
        true
        (got = expected))
    [
      (0, 1000, None);
      (0, 1000, Some 1);
      (0, 1000, Some 7);
      (5, 42, Some 3);
      (3, 3, None);
      (0, 1, None);
    ]

let test_exception_propagates_and_pool_survives () =
  let pool = Par.Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) @@ fun () ->
  check "worker exception re-raised at join" true
    (match
       Par.map_range ~pool ~lo:0 ~hi:10_000 (fun k ->
           if k = 7_777 then failwith "boom";
           k)
     with
    | exception Failure msg -> msg = "boom"
    | _ -> false);
  (* The pool is still usable after a failed task. *)
  let again = Par.map_range ~pool ~lo:0 ~hi:100 (fun k -> k * 2) in
  check "pool survives a failed task" true
    (again = Array.init 100 (fun k -> k * 2))

let test_cancellation_stops_outstanding_chunks () =
  Par.Pool.with_pool ~jobs:4 @@ fun pool ->
  let n = 200_000 in
  let cancel = Par.Cancel.create () in
  let computed = Atomic.make 0 in
  check "cancelled batch raises" true
    (match
       Par.map_range ~pool ~cancel ~lo:0 ~hi:n (fun _ ->
           if Atomic.fetch_and_add computed 1 = 100 then Par.Cancel.set cancel)
     with
    | exception Par.Cancelled -> true
    | _ -> false);
  (* Workers re-check the token between chunks, so cancellation leaves
     the bulk of the range uncomputed. *)
  check "outstanding chunks were skipped" true (Atomic.get computed < n / 2);
  (* A fresh batch on the same pool is unaffected by the spent token. *)
  let again = Par.map_range ~pool ~lo:0 ~hi:50 Fun.id in
  check "pool usable after cancellation" true (again = Array.init 50 Fun.id)

let test_pool_reuse_across_workloads () =
  let pool = Par.Pool.create ~jobs:3 in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) @@ fun () ->
  check_int "jobs" 3 (Par.Pool.jobs pool);
  let a = Par.map_range ~pool ~lo:0 ~hi:500 (fun k -> k + 1) in
  let b = Par.map_range ~pool ~lo:0 ~hi:500 (fun k -> k * 3) in
  check "first workload" true (a = Array.init 500 (fun k -> k + 1));
  check "second workload on same pool" true
    (b = Array.init 500 (fun k -> k * 3))

(* ------------------------------------------------------------------ *)
(* fold_until                                                          *)
(* ------------------------------------------------------------------ *)

let fold_sum ?pool () =
  Par.fold_until ?pool ~lo:0 ~hi:100_000
    ~f:(fun k -> k mod 97)
    ~init:0
    ~step:(fun acc _k x ->
      let acc = acc + x in
      if acc >= 123_456 then Par.Stop acc else Par.Continue acc)
    ()

let test_fold_until_deterministic () =
  let seq_acc, seq_n = fold_sum () in
  Par.Pool.with_pool ~jobs:4 @@ fun pool ->
  let par_acc, par_n = fold_sum ~pool () in
  check_int "accumulator identical" seq_acc par_acc;
  check_int "consumed count identical" seq_n par_n;
  check "stopped early" true (seq_n < 100_000)

(* ------------------------------------------------------------------ *)
(* End-to-end determinism: SMC on Fischer                               *)
(* ------------------------------------------------------------------ *)

let test_smc_fischer_deterministic () =
  let net = Ta.Fischer.make ~n:3 () in
  let q =
    {
      Smc.horizon = 30.0;
      goal = Ta.Prop.Loc (0, Ta.Model.loc_index net 0 "cs");
    }
  in
  let seq = Smc.probability ~seed:11 ~runs:200 net q in
  let par =
    Par.Pool.with_pool ~jobs:4 @@ fun pool ->
    Smc.probability ~pool ~seed:11 ~runs:200 net q
  in
  check "interval identical under jobs=4" true (seq = par);
  check "estimate non-trivial" true (seq.Smc.Estimate.p_hat > 0.0)

let test_sprt_deterministic () =
  let net = Ta.Fischer.make ~n:3 () in
  let q =
    {
      Smc.horizon = 30.0;
      goal = Ta.Prop.Loc (0, Ta.Model.loc_index net 0 "cs");
    }
  in
  let seq = Smc.hypothesis ~seed:11 net q ~theta:0.5 in
  let par =
    Par.Pool.with_pool ~jobs:4 @@ fun pool ->
    Smc.hypothesis ~pool ~seed:11 net q ~theta:0.5
  in
  check "verdict identical under jobs=4" true
    (seq.Smc.Estimate.accept_h0 = par.Smc.Estimate.accept_h0);
  check_int "sample count identical" seq.Smc.Estimate.samples
    par.Smc.Estimate.samples

(* ------------------------------------------------------------------ *)
(* End-to-end determinism: the differential fuzz harness               *)
(* ------------------------------------------------------------------ *)

let test_fuzz_sweep_deterministic () =
  (* The harness fans cases out over the pool; its rendered report (the
     seed-corpus output of `quantcli fuzz`) must be byte-identical for
     every jobs value. *)
  let cfg = { Gen.Harness.default with seed = 42; cases = 100; jobs = 1 } in
  let seq = Gen.Harness.render (Gen.Harness.run cfg) in
  let par = Gen.Harness.render (Gen.Harness.run { cfg with jobs = 4 }) in
  check "fuzz report byte-identical under jobs=4" true (String.equal seq par)

(* ------------------------------------------------------------------ *)
(* Mailboxes                                                           *)
(* ------------------------------------------------------------------ *)

let test_mailbox_fifo_and_hwm () =
  let mb = Par.Mailbox.create () in
  check_int "empty" 0 (Par.Mailbox.length mb);
  List.iter (Par.Mailbox.push mb) [ 3; 1; 4; 1; 5 ];
  check_int "length" 5 (Par.Mailbox.length mb);
  let seen = ref [] in
  Par.Mailbox.iter (fun x -> seen := x :: !seen) mb;
  Alcotest.(check (list int)) "FIFO iteration" [ 3; 1; 4; 1; 5 ] (List.rev !seen);
  Par.Mailbox.clear mb;
  check_int "cleared" 0 (Par.Mailbox.length mb);
  check_int "hwm survives clear" 5 (Par.Mailbox.hwm mb);
  List.iter (Par.Mailbox.push mb) [ 7; 8 ];
  let seen = ref [] in
  Par.Mailbox.iter (fun x -> seen := x :: !seen) mb;
  Alcotest.(check (list int)) "reuse after clear" [ 7; 8 ] (List.rev !seen);
  check_int "hwm is a high-water mark" 5 (Par.Mailbox.hwm mb)

(* ------------------------------------------------------------------ *)
(* Sharded rounds                                                      *)
(* ------------------------------------------------------------------ *)

(* Exactly-once / quiescence: each slot is written only by its own
   shard's step, so any double-execution within a round — or a round
   run past [continue_ () = false] — shows up as a count mismatch. *)
let run_shard_counters ?pool ~shards ~rounds () =
  let counts = Array.make shards 0 in
  let round = ref 0 in
  let st =
    Par.Shards.run ?pool ~shards
      ~step:(fun s -> counts.(s) <- counts.(s) + 1)
      ~continue_:(fun () ->
        incr round;
        !round < rounds)
      ()
  in
  (counts, st)

let test_shards_quiescence_exactly_once () =
  let reference = fst (run_shard_counters ~shards:16 ~rounds:5 ()) in
  check "every shard stepped once per round" true
    (reference = Array.make 16 5);
  List.iter
    (fun jobs ->
      let counts, st =
        Par.Pool.with_pool ~jobs @@ fun pool ->
        run_shard_counters ~pool ~shards:16 ~rounds:5 ()
      in
      check
        (Printf.sprintf "counts identical under jobs=%d" jobs)
        true (counts = reference);
      check_int
        (Printf.sprintf "rounds deterministic under jobs=%d" jobs)
        5 st.Par.Shards.rounds)
    [ 2; 4 ]

let test_shards_steal_under_contention () =
  (* Shard 0's home participant stalls mid-round; the other worker must
     steal the remaining unclaimed shards — and stealing must not break
     exactly-once. *)
  let shards = 16 in
  let counts = Array.make shards 0 in
  let st =
    Par.Pool.with_pool ~jobs:2 @@ fun pool ->
    Par.Shards.run ~pool ~shards
      ~step:(fun s ->
        if s = 0 then Unix.sleepf 0.05;
        counts.(s) <- counts.(s) + 1)
      ~continue_:(fun () -> false)
      ()
  in
  check "exactly-once despite stealing" true (counts = Array.make shards 1);
  check "contention forced steals" true (st.Par.Shards.steals >= 1)

let () =
  Alcotest.run "par"
    [
      ( "map_range",
        [
          Alcotest.test_case "matches sequential" `Quick
            test_map_range_matches_sequential;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates_and_pool_survives;
          Alcotest.test_case "cancellation" `Quick
            test_cancellation_stops_outstanding_chunks;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse_across_workloads;
        ] );
      ( "fold_until",
        [
          Alcotest.test_case "ordered fold deterministic" `Quick
            test_fold_until_deterministic;
        ] );
      ( "smc",
        [
          Alcotest.test_case "Fischer interval jobs=1 vs 4" `Quick
            test_smc_fischer_deterministic;
          Alcotest.test_case "SPRT verdict jobs=1 vs 4" `Quick
            test_sprt_deterministic;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "sweep report jobs=1 vs 4" `Quick
            test_fuzz_sweep_deterministic;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "FIFO order and hwm" `Quick
            test_mailbox_fifo_and_hwm;
        ] );
      ( "shards",
        [
          Alcotest.test_case "quiescence, exactly-once" `Quick
            test_shards_quiescence_exactly_once;
          Alcotest.test_case "steal under contention" `Quick
            test_shards_steal_under_contention;
        ] );
    ]
