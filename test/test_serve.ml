(* Tests for the quantd service layer: protocol framing, in-process
   request handling (reply cache, smc fusing determinism), intern-table
   lifecycle under warm-query churn, and the socket daemon end to end —
   byte-identity against the one-shot path, malformed-input survival,
   deadline expiry, LRU eviction under a memory budget and graceful
   SIGTERM shutdown. Daemon tests fork a child that never returns into
   alcotest (it leaves via [Unix._exit]). *)

module P = Serve.Protocol
module Json = Obs.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_parse_request () =
  let line =
    {|{"v":1,"id":7,"method":"check","params":{"model":"fischer"},"deadline_ms":250.0}|}
  in
  (match P.parse_request line with
   | Ok req ->
     check "id" true (req.P.id = Json.Int 7);
     check_str "method" "check" req.P.meth;
     check "params" true (Json.member "model" req.P.params = Some (Json.Str "fischer"));
     check "deadline" true (req.P.deadline_ms = Some 250.0)
   | Error _ -> Alcotest.fail "valid request rejected");
  let rejected line =
    match P.parse_request line with Error _ -> true | Ok _ -> false
  in
  check "garbage rejected" true (rejected "{\"unterminated");
  check "non-object rejected" true (rejected "[1,2,3]");
  check "missing method rejected" true (rejected {|{"v":1,"id":1,"params":{}}|});
  check "wrong version rejected" true
    (rejected {|{"v":2,"id":1,"method":"ping","params":{}}|});
  check "array params rejected" true
    (rejected {|{"v":1,"id":1,"method":"ping","params":[]}|});
  check "negative deadline rejected" true
    (rejected {|{"v":1,"id":1,"method":"ping","params":{},"deadline_ms":-5}|})

let test_reply_lines () =
  let ok = P.ok_line ~id:(Json.Int 3) (Json.Obj [ ("x", Json.Int 1) ]) in
  (match P.parse_reply ok with
   | Ok r ->
     check "ok id" true (r.P.reply_id = Json.Int 3);
     check "ok payload" true (r.P.payload = Ok (Json.Obj [ ("x", Json.Int 1) ]))
   | Error _ -> Alcotest.fail "ok_line does not parse");
  let err = P.error_line ~id:Json.Null P.Bad_request "nope" in
  match P.parse_reply err with
  | Ok r -> check "error payload" true (r.P.payload = Error ("bad_request", "nope"))
  | Error _ -> Alcotest.fail "error_line does not parse"

(* ------------------------------------------------------------------ *)
(* In-process service: reply cache and fused-sampling determinism      *)
(* ------------------------------------------------------------------ *)

let with_service ?mem_budget_words f =
  Par.Pool.with_pool ~jobs:2 @@ fun pool ->
  let registry = Serve.Registry.create ?mem_budget_words () in
  f (Serve.Service.create ~registry ~pool ())

let request ?deadline_ms ~id meth params =
  let fields =
    [ ("v", Json.Int 1); ("id", Json.Int id); ("method", Json.Str meth);
      ("params", Json.Obj params) ]
    @ match deadline_ms with
      | Some ms -> [ ("deadline_ms", Json.Float ms) ]
      | None -> []
  in
  Json.to_string (Json.Obj fields)

let reply_text line =
  match P.parse_reply line with
  | Ok { P.payload = Ok result; _ } -> (
    match Json.member "text" result with
    | Some (Json.Str t) -> t
    | _ -> Alcotest.fail ("reply without text: " ^ line))
  | _ -> Alcotest.fail ("error reply: " ^ line)

let test_check_matches_oneshot_and_caches () =
  with_service @@ fun svc ->
  let expected =
    let spec = Serve.Models.fischer in
    let net = spec.Serve.Models.make 3 in
    String.concat ""
      (List.map
         (fun (name, q) ->
           Serve.Render.query_line ~stats_json:false name (Ta.Checker.check net q))
         (spec.Serve.Models.queries net))
  in
  let params = [ ("model", Json.Str "fischer"); ("n", Json.Int 3) ] in
  let r1 = Serve.Service.handle_line svc (request ~id:1 "check" params) in
  check_str "daemon bytes = one-shot bytes" expected (reply_text r1);
  let hits = Obs.counter "serve.reply_hits" in
  let before = Obs.Metrics.Counter.value hits in
  let r2 = Serve.Service.handle_line svc (request ~id:2 "check" params) in
  check_str "cached reply identical" expected (reply_text r2);
  check "second query hit the reply cache" true
    (Obs.Metrics.Counter.value hits > before)

let test_fused_smc_equals_alone () =
  (* Two smc requests in one read round are fused into a single sample
     batch; the replies must be byte-equal to each request answered
     alone on a fresh service. *)
  let fischer_params =
    [ ("model", Json.Str "fischer"); ("trains", Json.Int 2);
      ("runs", Json.Int 120) ]
  in
  let train_params =
    [ ("model", Json.Str "train-gate"); ("trains", Json.Int 2);
      ("runs", Json.Int 120) ]
  in
  let alone_f =
    with_service @@ fun svc ->
    reply_text (Serve.Service.handle_line svc (request ~id:1 "smc" fischer_params))
  in
  let alone_t =
    with_service @@ fun svc ->
    reply_text (Serve.Service.handle_line svc (request ~id:2 "smc" train_params))
  in
  with_service @@ fun svc ->
  match
    Serve.Service.handle_batch svc
      [ request ~id:1 "smc" fischer_params; request ~id:2 "smc" train_params ]
  with
  | [ rf; rt ] ->
    check_str "fused fischer = alone" alone_f (reply_text rf);
    check_str "fused train-gate = alone" alone_t (reply_text rt)
  | _ -> Alcotest.fail "batch reply count"

let test_bad_requests_are_structured () =
  with_service @@ fun svc ->
  let code line =
    match P.parse_reply (Serve.Service.handle_line svc line) with
    | Ok { P.payload = Error (code, _); _ } -> code
    | _ -> "ok"
  in
  check_str "bad json" "bad_json" (code "{\"broken");
  check_str "unknown method" "unknown_method"
    (code (request ~id:1 "frobnicate" []));
  check_str "unknown model" "bad_request"
    (code (request ~id:2 "check" [ ("model", Json.Str "bogus") ]));
  check_str "bad param type" "bad_request"
    (code (request ~id:3 "check" [ ("n", Json.Str "four") ]));
  check_str "fault injection refused" "bad_request"
    (code (request ~id:4 "fuzz" [ ("inject", Json.Str "dbm-up") ]));
  check_str "out-of-range n" "bad_request"
    (code (request ~id:5 "check" [ ("n", Json.Int 99) ]))

(* ------------------------------------------------------------------ *)
(* Intern-table lifecycle under warm-query churn                       *)
(* ------------------------------------------------------------------ *)

let settle () =
  Gc.full_major ();
  Gc.full_major ()

let test_dbm_intern_shared_across_queries () =
  let net = Ta.Fischer.make ~n:3 () in
  let s1 = Ta.Checker.reachable_states net in
  settle ();
  let size1 = Zones.Dbm.intern_size () in
  let s2 = Ta.Checker.reachable_states net in
  settle ();
  let size2 = Zones.Dbm.intern_size () in
  (* The second query re-derives the same canonical zones, so while the
     first result is live it interns nothing new. *)
  check_int "warm re-query adds no zones" size1 size2;
  check_int "same state count" (List.length s1) (List.length s2);
  List.iter2
    (fun (a : Ta.Zone_graph.state) (b : Ta.Zone_graph.state) ->
      check "zone physically shared across queries" true
        (a.Ta.Zone_graph.zone == b.Ta.Zone_graph.zone))
    s1 s2

let test_dbm_intern_drains_after_churn () =
  settle ();
  let baseline = Zones.Dbm.intern_size () in
  for _ = 1 to 5 do
    let net = Ta.Fischer.make ~n:3 () in
    ignore (Ta.Checker.check net (Ta.Fischer.mutex net))
  done;
  settle ();
  (* Weak table: once no store holds the zones, repeated queries leave
     no residue — the daemon's long-uptime no-leak property. *)
  check "no unbounded growth after GC" true
    (Zones.Dbm.intern_size () <= baseline + 64)

let test_codec_intern_lifecycle_multi_domain () =
  let spec =
    Engine.Codec.spec
      [ Engine.Codec.Bounded { name = "a"; lo = 0; hi = 4095 };
        Engine.Codec.Word "w" ]
  in
  let encode v = Engine.Codec.encode spec (fun _ -> v) in
  (* Four domains intern the same 200 values concurrently; the pool must
     end up with exactly one representative per value. *)
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            Array.init 200 (fun v -> Engine.Codec.intern spec (encode v))))
  in
  let reps = Array.map Domain.join domains in
  settle ();
  check_int "one representative per value" 200 (Engine.Codec.intern_size spec);
  for v = 0 to 199 do
    for d = 1 to 3 do
      check "cross-domain physical equality" true (reps.(0).(v) == reps.(d).(v))
    done
  done;
  (* Dropping every root drains the weak pool. *)
  Array.iteri (fun i _ -> reps.(i) <- [||]) reps;
  settle ();
  check_int "pool drains once unreferenced" 0 (Engine.Codec.intern_size spec)

(* ------------------------------------------------------------------ *)
(* Daemon end to end (forked child)                                    *)
(* ------------------------------------------------------------------ *)

let fork_daemon ?mem_budget_words ?(jobs = 1) sock =
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  let pid = Unix.fork () in
  if pid = 0 then begin
    (* Child: silence the banner, run the daemon, and leave without
       touching alcotest's exit machinery. *)
    (try
       let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
       Unix.dup2 devnull Unix.stdout;
       Unix.close devnull;
       let config =
         { Serve.Daemon.default_config with socket_path = sock; jobs;
           mem_budget_words }
       in
       Serve.Daemon.run ~config ()
     with _ -> ());
    Unix._exit 0
  end
  else pid

let stop_daemon pid =
  Unix.kill pid Sys.sigterm;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> code
  | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> -1

let with_daemon ?mem_budget_words f =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "quantd-test-%d.sock" (Unix.getpid ()))
  in
  let pid = fork_daemon ?mem_budget_words sock in
  Fun.protect
    ~finally:(fun () -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    (fun () ->
      let client = Serve.Client.connect sock in
      let r = Fun.protect ~finally:(fun () -> Serve.Client.close client) (fun () -> f client) in
      check_int "graceful SIGTERM exit" 0 (stop_daemon pid);
      r)

let result_text = function
  | Ok j -> (
    match Json.member "text" j with
    | Some (Json.Str t) -> t
    | _ -> Alcotest.fail "reply without text")
  | Error (code, msg) -> Alcotest.fail (code ^ ": " ^ msg)

let test_daemon_byte_identity () =
  let expected_check =
    let spec = Serve.Models.fischer in
    let net = spec.Serve.Models.make 3 in
    String.concat ""
      (List.map
         (fun (name, q) ->
           Serve.Render.query_line ~stats_json:false name (Ta.Checker.check net q))
         (spec.Serve.Models.queries net))
  in
  let expected_smc =
    let net = Ta.Fischer.make ~n:2 () in
    String.concat ""
      (List.map
         (fun i ->
           Serve.Render.smc_fischer_line i
             (Smc.probability ~runs:100 ~seed:(42 + i) net
                {
                  Smc.horizon = 30.0;
                  goal = Ta.Prop.Loc (i, Ta.Model.loc_index net i "cs");
                }))
         [ 0; 1 ])
  in
  with_daemon @@ fun client ->
  let r =
    Serve.Client.call client ~meth:"check"
      [ ("model", Json.Str "fischer"); ("n", Json.Int 3) ]
  in
  check_str "check over the socket = one-shot" expected_check (result_text r);
  let r =
    Serve.Client.call client ~meth:"smc"
      [ ("model", Json.Str "fischer"); ("trains", Json.Int 2);
        ("runs", Json.Int 100) ]
  in
  check_str "smc over the socket = one-shot" expected_smc (result_text r);
  (* Pipelined pair in one write: the daemon fuses the sampling, the
     replies keep request order and the same bytes. *)
  match
    Serve.Client.call_many client
      [ ("smc",
         None,
         [ ("model", Json.Str "fischer"); ("trains", Json.Int 2);
           ("runs", Json.Int 150) ]);
        ("ping", None, []) ]
  with
  | [ smc; ping ] ->
    let expected_150 =
      let net = Ta.Fischer.make ~n:2 () in
      String.concat ""
        (List.map
           (fun i ->
             Serve.Render.smc_fischer_line i
               (Smc.probability ~runs:150 ~seed:(42 + i) net
                  {
                    Smc.horizon = 30.0;
                    goal = Ta.Prop.Loc (i, Ta.Model.loc_index net i "cs");
                  }))
           [ 0; 1 ])
    in
    check_str "pipelined smc bytes" expected_150 (result_text smc);
    check "pipelined ping answered" true
      (match ping with
       | Ok j -> Json.member "pong" j = Some (Json.Bool true)
       | Error _ -> false)
  | _ -> Alcotest.fail "call_many reply count"

let test_daemon_survives_malformed_input () =
  with_daemon @@ fun client ->
  let code_of_raw raw =
    match P.parse_reply (Serve.Client.call_raw client raw) with
    | Ok { P.payload = Error (code, _); _ } -> code
    | _ -> "ok"
  in
  check_str "truncated frame" "bad_json" (code_of_raw "{\"v\":1,\"id");
  check_str "binary garbage" "bad_json" (code_of_raw "\x00\xff\xfe garbage");
  check_str "valid json, wrong shape" "bad_request" (code_of_raw "[1,2,3]");
  check_str "unknown method" "unknown_method"
    (code_of_raw {|{"v":1,"id":1,"method":"nope","params":{}}|});
  (* The connection — and the daemon — are still healthy. *)
  check "ping after abuse" true
    (match Serve.Client.call client ~meth:"ping" [] with
     | Ok _ -> true
     | Error _ -> false)

let test_daemon_deadline_expiry () =
  with_daemon @@ fun client ->
  (match
     Serve.Client.call client ~meth:"check" ~deadline_ms:1.0
       [ ("model", Json.Str "fischer"); ("n", Json.Int 6) ]
   with
   | Error ("deadline_exceeded", _) -> ()
   | Error (code, msg) -> Alcotest.fail ("wrong error: " ^ code ^ ": " ^ msg)
   | Ok _ -> Alcotest.fail "expected deadline_exceeded");
  (* The expired query cost one reply, not the daemon: a sane request
     on the same connection still completes. *)
  check "daemon alive after expiry" true
    (match
       Serve.Client.call client ~meth:"check"
         [ ("model", Json.Str "fischer"); ("n", Json.Int 2) ]
     with
     | Ok _ -> true
     | Error _ -> false)

let test_daemon_eviction_under_budget () =
  (* 128 kWords ≈ 1 MB: roomy enough for the n=4 instances to answer,
     tight enough that their retained anchors must evict — and that the
     n=5 instances degrade into a structured resource_exhausted reply
     instead of an OOM kill. *)
  with_daemon ~mem_budget_words:131_072 @@ fun client ->
  List.iter
    (fun (model, n) ->
      (* Two distinct queries per model (an identical repeat would stop
         at the reply cache): the second warms the retained-anchor
         layer, growing the cache past the budget. *)
      List.iter
        (fun stats_json ->
          match
            Serve.Client.call client ~meth:"check"
              [ ("model", Json.Str model); ("n", Json.Int n);
                ("stats_json", Json.Bool stats_json) ]
          with
          | Ok _ -> ()
          | Error ("resource_exhausted", _) ->
            (* The same budget bounds in-flight exploration: the reply
               is the graceful-degrade contract, not a failure. *)
            ()
          | Error (code, msg) -> Alcotest.fail (code ^ ": " ^ msg))
        [ false; true ])
    [ ("fischer", 4); ("train-gate", 4); ("fischer", 5); ("train-gate", 5) ];
  match Serve.Client.call client ~meth:"metrics" [] with
  | Ok j ->
    let evictions =
      match
        Option.bind (Json.member "metrics" j) (fun m ->
            Option.bind (Json.member "serve.evictions" m) (Json.member "value"))
      with
      | Some (Json.Int n) -> n
      | Some (Json.Float f) -> int_of_float f
      | _ -> 0
    in
    check "budget forced evictions" true (evictions > 0);
    (* Eviction degraded the cache, not the answers. *)
    check "still answering after eviction" true
      (match
         Serve.Client.call client ~meth:"check"
           [ ("model", Json.Str "fischer"); ("n", Json.Int 3) ]
       with
       | Ok _ -> true
       | Error _ -> false)
  | Error (code, msg) -> Alcotest.fail (code ^ ": " ^ msg)

let test_daemon_metrics_scrape () =
  with_daemon @@ fun client ->
  ignore
    (Serve.Client.call client ~meth:"check"
       [ ("model", Json.Str "fischer"); ("n", Json.Int 3) ]);
  match Serve.Client.call client ~meth:"metrics" [] with
  | Ok j ->
    check "has metrics section" true (Json.member "metrics" j <> None);
    check "has serve cache stats" true
      (match Json.member "serve" j with
       | Some s -> Json.member "models" s <> None && Json.member "dbm_intern_size" s <> None
       | None -> false);
    check "has uptime" true (Json.member "uptime_s" j <> None)
  | Error (code, msg) -> Alcotest.fail (code ^ ": " ^ msg)

let () =
  Alcotest.run "serve"
    [
      (* The daemon section forks, which OCaml 5 forbids once any domain
         has been created — so it runs first, before the service and
         lifecycle tests spawn pools. *)
      ( "daemon",
        [
          Alcotest.test_case "byte identity + pipelining" `Quick
            test_daemon_byte_identity;
          Alcotest.test_case "survives malformed input" `Quick
            test_daemon_survives_malformed_input;
          Alcotest.test_case "deadline expiry" `Quick test_daemon_deadline_expiry;
          Alcotest.test_case "eviction under --mem-budget" `Quick
            test_daemon_eviction_under_budget;
          Alcotest.test_case "metrics scrape" `Quick test_daemon_metrics_scrape;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "parse_request" `Quick test_parse_request;
          Alcotest.test_case "reply lines" `Quick test_reply_lines;
        ] );
      ( "service",
        [
          Alcotest.test_case "check = one-shot bytes, then cached" `Quick
            test_check_matches_oneshot_and_caches;
          Alcotest.test_case "fused smc = alone" `Quick
            test_fused_smc_equals_alone;
          Alcotest.test_case "structured errors" `Quick
            test_bad_requests_are_structured;
        ] );
      ( "intern lifecycle",
        [
          Alcotest.test_case "zones shared across warm queries" `Quick
            test_dbm_intern_shared_across_queries;
          Alcotest.test_case "no residue after churn + GC" `Quick
            test_dbm_intern_drains_after_churn;
          Alcotest.test_case "codec pool across 4 domains" `Quick
            test_codec_intern_lifecycle_multi_domain;
        ] );
    ]
