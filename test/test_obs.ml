(* Tests for the telemetry layer: log-scale histogram bucketing and
   quantiles, span nesting and unwind-on-exception, in-memory sink
   ordering, and JSON round-tripping of a full run report. *)

module Json = Obs.Json
module Metrics = Obs.Metrics
module Sink = Obs.Sink
module Span = Obs.Span

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_escaping () =
  let j =
    Json.Obj
      [
        ("plain", Json.Str "hello");
        ("quoted", Json.Str "say \"hi\"");
        ("control", Json.Str "a\nb\tc\\d");
      ]
  in
  let s = Json.to_string j in
  (* The emitted text must parse back to the same tree. *)
  Alcotest.(check bool) "round-trips" true (Json.parse s = j);
  check "raw quote is escaped" false
    (Astring.String.is_infix ~affix:"say \"hi" s);
  check "newline is escaped" false (String.contains s '\n')

let test_json_values () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Int 42;
      Json.Int (-17);
      Json.Float 0.125;
      Json.Float 1.6466010092540363;
      Json.Str "";
      Json.Arr [ Json.Int 1; Json.Arr []; Json.Obj [] ];
      Json.Obj [ ("k", Json.Arr [ Json.Null ]) ];
    ]
  in
  List.iter
    (fun j -> check (Json.to_string j) true (Json.parse (Json.to_string j) = j))
    cases;
  (* Non-finite floats degrade to null rather than invalid JSON. *)
  check_str "nan is null" "null" (Json.to_string (Json.Float nan));
  check_str "inf is null" "null" (Json.to_string (Json.Float infinity));
  (* Whitespace and nesting on the parser side. *)
  check "whitespace accepted" true
    (Json.parse " { \"a\" : [ 1 , 2.5 , \"x\" ] } "
     = Json.Obj [ ("a", Json.Arr [ Json.Int 1; Json.Float 2.5; Json.Str "x" ]) ]);
  check "trailing garbage rejected" true
    (match Json.parse "{} x" with
     | exception Json.Parse_error _ -> true
     | _ -> false)

(* ------------------------------------------------------------------ *)
(* JSON round-trip fuzz: parse (to_string v) = v over generated values
   with nasty strings (escapes, control bytes, UTF-8), integral floats
   (which print with a ".0" marker) and deep nesting. Non-finite floats
   are excluded: they deliberately degrade to [null].                  *)
(* ------------------------------------------------------------------ *)

let json_gen =
  QCheck.Gen.(
    let str_gen =
      let nasty =
        [
          ""; "\""; "\\"; "\\\\"; "a\nb"; "\t"; "\r\n"; "\x01\x02";
          "caf\xc3\xa9" (* café *); "\xe2\x82\xac" (* € *); "\xf0\x9f\x90\xab";
          "end\\"; "\"quoted\""; "nul\x00byte"; "/slash/";
        ]
      in
      oneof [ oneofl nasty; string_size (int_bound 12) ]
    in
    let float_gen =
      oneof
        [
          map float_of_int (int_range (-1000) 1000) (* integral *)
          ; float_bound_inclusive 1.0
          ; map (fun f -> f *. 1e18) (float_bound_inclusive 1.0);
        ]
    in
    let leaf =
      oneof
        [
          return Json.Null;
          map (fun b -> Json.Bool b) bool;
          map (fun i -> Json.Int i) int;
          map (fun f -> Json.Float f) float_gen;
          map (fun s -> Json.Str s) str_gen;
        ]
    in
    let rec value depth =
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            (2, map (fun l -> Json.Arr l) (list_size (int_bound 4) (value (depth - 1))));
            ( 2,
              map
                (fun l -> Json.Obj l)
                (list_size (int_bound 4) (pair str_gen (value (depth - 1)))) );
          ]
    in
    (* Depth up to 8: exercises deep nesting in both printer and parser. *)
    int_bound 8 >>= value)

let prop_json_roundtrip =
  QCheck.Test.make ~name:"parse (to_string v) = v" ~count:1000
    (QCheck.make json_gen ~print:Json.to_string)
    (fun v -> Json.parse (Json.to_string v) = v)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_gauge () =
  let reg = Metrics.Registry.create () in
  let c = Metrics.Counter.make ~registry:reg "c" in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 4;
  check_int "counter accumulates" 5 (Metrics.Counter.value c);
  (* Same name, same handle. *)
  let c' = Metrics.Counter.make ~registry:reg "c" in
  Metrics.Counter.incr c';
  check_int "same name is same counter" 6 (Metrics.Counter.value c);
  let g = Metrics.Gauge.make ~registry:reg "g" in
  Metrics.Gauge.set_max g 3.0;
  Metrics.Gauge.set_max g 1.0;
  check_float "set_max keeps max" 3.0 (Metrics.Gauge.value g);
  Metrics.Registry.reset reg;
  check_int "reset zeroes counter" 0 (Metrics.Counter.value c);
  check_float "reset zeroes gauge" 0.0 (Metrics.Gauge.value g);
  (* A name registered as one kind cannot be another. *)
  check "kind clash rejected" true
    (match Metrics.Gauge.make ~registry:reg "c" with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_histogram_buckets () =
  (* Bucket i holds [2^(i-20), 2^(i-19)): 1.0 starts the bucket whose
     upper edge is 2.0. *)
  check_int "1.0" 20 (Metrics.Histogram.bucket_of 1.0);
  check_int "1.999 same bucket" 20 (Metrics.Histogram.bucket_of 1.999);
  check_int "2.0 next bucket" 21 (Metrics.Histogram.bucket_of 2.0);
  check_int "0.5 previous bucket" 19 (Metrics.Histogram.bucket_of 0.5);
  check_int "zero clamps to first" 0 (Metrics.Histogram.bucket_of 0.0);
  check_int "negative clamps to first" 0 (Metrics.Histogram.bucket_of (-3.0));
  check_int "tiny clamps to first" 0 (Metrics.Histogram.bucket_of 1e-12);
  check_int "huge clamps to last" 40 (Metrics.Histogram.bucket_of 1e12);
  check_float "upper edge of bucket 20" 2.0 (Metrics.Histogram.bucket_upper 20);
  check_float "upper edge of bucket 19" 1.0 (Metrics.Histogram.bucket_upper 19);
  (* Every positive finite value lands in the bucket below its upper
     edge. *)
  List.iter
    (fun v ->
      let i = Metrics.Histogram.bucket_of v in
      check (Printf.sprintf "%g below upper edge" v) true
        (v < Metrics.Histogram.bucket_upper i || i = 40);
      check (Printf.sprintf "%g at/above lower edge" v) true
        (i = 0 || v >= Metrics.Histogram.bucket_upper (i - 1)))
    [ 1e-6; 0.01; 0.5; 1.0; 3.0; 64.0; 1e5 ]

let test_histogram_quantiles () =
  let reg = Metrics.Registry.create () in
  let h = Metrics.Histogram.make ~registry:reg "h" in
  check "empty quantile is nan" true (Float.is_nan (Metrics.Histogram.quantile h 0.5));
  List.iter (Metrics.Histogram.observe h) [ 1.0; 1.0; 1.0; 2.0; 4.0; 8.0 ];
  check_int "count" 6 (Metrics.Histogram.count h);
  check_float "sum" 17.0 (Metrics.Histogram.sum h);
  check_float "mean" (17.0 /. 6.0) (Metrics.Histogram.mean h);
  (* Median: three of six samples sit in the [1,2) bucket, so the
     estimate is that bucket's upper edge. *)
  check_float "p50 is first bucket's edge" 2.0 (Metrics.Histogram.quantile h 0.5);
  (* The maximum clamps to the observed max, not the bucket edge. *)
  check_float "p100 clamps to max" 8.0 (Metrics.Histogram.quantile h 1.0);
  (* A tiny quantile still answers from the first non-empty bucket,
     clamped to the observed min from below. *)
  check "p1 within observed range" true (Metrics.Histogram.quantile h 0.01 >= 1.0)

let test_snapshot_touched_only () =
  let reg = Metrics.Registry.create () in
  let c = Metrics.Counter.make ~registry:reg "used" in
  let (_ : Metrics.Counter.t) = Metrics.Counter.make ~registry:reg "untouched" in
  Metrics.Counter.incr c;
  let snap = Metrics.snapshot ~registry:reg () in
  check "touched metric present" true (Json.member "used" snap <> None);
  check "untouched metric absent" true (Json.member "untouched" snap = None)

(* ------------------------------------------------------------------ *)
(* Spans and sinks                                                     *)
(* ------------------------------------------------------------------ *)

let span_name = function
  | Sink.Span_start { name; _ } -> "start:" ^ name
  | Sink.Span_end { name; _ } -> "end:" ^ name

let test_span_nesting_and_sink_order () =
  Span.reset ();
  let sink, events = Sink.memory () in
  Sink.set sink;
  Fun.protect ~finally:(fun () -> Sink.set Sink.null) @@ fun () ->
  Span.with_ ~name:"outer" (fun () ->
      Span.with_ ~name:"inner1" (fun () -> ());
      Span.with_ ~name:"inner2" (fun () -> ()));
  let evs = events () in
  Alcotest.(check (list string))
    "events in emission order"
    [
      "start:outer"; "start:inner1"; "end:inner1"; "start:inner2";
      "end:inner2"; "end:outer";
    ]
    (List.map span_name evs);
  (* Depths: outer at 0, inners at 1. *)
  List.iter
    (fun ev ->
      match ev with
      | Sink.Span_start { name; depth; _ } | Sink.Span_end { name; depth; _ } ->
        check_int ("depth of " ^ name) (if name = "outer" then 0 else 1) depth)
    evs;
  (* Aggregates saw all three names, once each. *)
  let timings = Span.timings () in
  Alcotest.(check (list string))
    "aggregate names" [ "inner1"; "inner2"; "outer" ]
    (List.map (fun t -> t.Span.name) timings);
  List.iter (fun t -> check_int t.Span.name 1 t.Span.count) timings

let test_span_unwind_on_exception () =
  Span.reset ();
  let sink, events = Sink.memory () in
  Sink.set sink;
  Fun.protect ~finally:(fun () -> Sink.set Sink.null) @@ fun () ->
  check "exception propagates" true
    (match
       Span.with_ ~name:"outer" (fun () ->
           Span.with_ ~name:"boom" (fun () -> failwith "boom"))
     with
    | exception Failure _ -> true
    | () -> false);
  check_int "depth restored after raise" 0 (Span.depth ());
  (* Both spans were closed, innermost first, with ok = false. *)
  let ends =
    List.filter_map
      (function
        | Sink.Span_end { name; ok; _ } -> Some (name, ok)
        | Sink.Span_start _ -> None)
      (events ())
  in
  Alcotest.(check (list (pair string bool)))
    "both spans closed as failed"
    [ ("boom", false); ("outer", false) ]
    ends;
  (* A failed span still feeds the aggregates. *)
  check "failed span aggregated" true
    (List.exists (fun t -> t.Span.name = "boom") (Span.timings ()));
  (* And the next span starts at depth 0 again. *)
  Span.with_ ~name:"after" (fun () -> ());
  check "recovered" true
    (List.exists
       (function
         | Sink.Span_start { name = "after"; depth = 0; _ } -> true
         | _ -> false)
       (events ()))

(* ------------------------------------------------------------------ *)
(* Domain-safety: concurrent updates must lose nothing                  *)
(* ------------------------------------------------------------------ *)

let test_concurrent_counters () =
  let reg = Metrics.Registry.create () in
  let c = Metrics.Counter.make ~registry:reg "par.c" in
  let g = Metrics.Gauge.make ~registry:reg "par.g" in
  let h = Metrics.Histogram.make ~registry:reg "par.h" in
  let per_domain = 25_000 in
  let body () =
    for i = 1 to per_domain do
      Metrics.Counter.incr c;
      Metrics.Gauge.set_max g (float_of_int i);
      Metrics.Histogram.observe h 1.0
    done
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn body) in
  Array.iter Domain.join domains;
  (* Every increment from every domain must be visible: counters and
     histogram scalars are atomics, not plain refs. *)
  check_int "no lost counter increments" (4 * per_domain)
    (Metrics.Counter.value c);
  check "gauge max survived the race" true
    (Metrics.Gauge.value g = float_of_int per_domain);
  check_int "no lost observations" (4 * per_domain) (Metrics.Histogram.count h);
  check "sum exact" true
    (Metrics.Histogram.sum h = float_of_int (4 * per_domain))

let test_reset_racing_snapshot () =
  (* Reset and snapshot race from two domains while two more keep
     writing: nothing crashes and every snapshot parses into the
     registered shapes (registry mutations are mutex-guarded). *)
  let reg = Metrics.Registry.create () in
  let c = Metrics.Counter.make ~registry:reg "race.c" in
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Metrics.Counter.incr c
        done)
  in
  let resetter =
    Domain.spawn (fun () ->
        for _ = 1 to 500 do
          Metrics.Registry.reset reg;
          Domain.cpu_relax ()
        done)
  in
  let ok = ref true in
  for _ = 1 to 500 do
    match Metrics.snapshot ~registry:reg () with
    | Json.Obj fields ->
      List.iter
        (fun (_, v) ->
          match Json.member "type" v with
          | Some (Json.Str _) -> ()
          | _ -> ok := false)
        fields
    | _ -> ok := false
  done;
  Domain.join resetter;
  Atomic.set stop true;
  Domain.join writer;
  check "snapshots stayed well-formed under reset race" true !ok;
  (* After the dust settles the counter still works. *)
  Metrics.Registry.reset reg;
  Metrics.Counter.incr c;
  check_int "counter usable after race" 1 (Metrics.Counter.value c)

let test_span_domain_breakdown () =
  Obs.reset ();
  Span.with_ ~name:"main.work" (fun () -> ());
  let d =
    Domain.spawn (fun () -> Span.with_ ~name:"worker.work" (fun () -> ()))
  in
  Domain.join d;
  let by_domain = Span.domain_timings () in
  let names_of id =
    List.filter_map
      (fun (d, t) -> if d = id then Some t.Span.name else None)
      by_domain
  in
  check "main domain recorded" true
    (List.mem "main.work" (names_of (Domain.self () :> int)));
  check "worker span attributed to another domain" true
    (List.exists
       (fun (d, t) ->
         d <> (Domain.self () :> int) && t.Span.name = "worker.work")
       by_domain);
  (* The global aggregate still sees both. *)
  Alcotest.(check (list string))
    "global aggregate merges domains"
    [ "main.work"; "worker.work" ]
    (List.map (fun t -> t.Span.name) (Span.timings ()));
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* Run report                                                          *)
(* ------------------------------------------------------------------ *)

let test_report_roundtrip () =
  Obs.reset ();
  let c = Obs.counter "test.counter" in
  Obs.Metrics.Counter.add c 7;
  let h = Obs.histogram "test.hist" in
  Obs.Metrics.Histogram.observe h 0.5;
  Obs.Metrics.Histogram.observe h 3.0;
  Span.with_ ~name:"test.span" (fun () -> ());
  let report = Obs.Report.make () in
  (* Serialise, parse back, and compare trees: the builder and parser
     must agree on every construct a real report uses. *)
  let text = Json.to_string report in
  let back = Json.parse text in
  check "report round-trips" true (back = report);
  (* Structure: the three sections are present and populated. *)
  let metrics = Option.get (Json.member "metrics" back) in
  check "counter in report" true
    (Json.member "test.counter" metrics
    = Some (Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Int 7) ]));
  (match Json.member "test.hist" metrics with
   | Some hist ->
     check "histogram count" true (Json.member "count" hist = Some (Json.Int 2));
     check "histogram sum" true
       (match Json.member "sum" hist with
        | Some s -> Json.to_float_opt s = Some 3.5
        | None -> false)
   | None -> Alcotest.fail "histogram missing from report");
  (match Json.member "spans" back with
   | Some spans ->
     (match Json.member "test.span" spans with
      | Some span ->
        check "span count serialised" true
          (Json.member "count" span = Some (Json.Int 1));
        check "span total present" true (Json.member "total_s" span <> None)
      | None -> Alcotest.fail "span missing from report")
   | None -> Alcotest.fail "spans section missing");
  (match Json.member "gc" back with
   | Some gc ->
     check "gc stats populated" true
       (match Json.member "minor_words" gc with
        | Some w -> (match Json.to_float_opt w with Some f -> f > 0.0 | None -> false)
        | None -> false);
     check "heap words present" true (Json.member "heap_words" gc <> None)
   | None -> Alcotest.fail "gc section missing");
  Obs.reset ()

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "value round-trips" `Quick test_json_values;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter+gauge" `Quick test_counter_gauge;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "snapshot touched-only" `Quick test_snapshot_touched_only;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting + sink order" `Quick
            test_span_nesting_and_sink_order;
          Alcotest.test_case "unwind on exception" `Quick
            test_span_unwind_on_exception;
        ] );
      ( "domains",
        [
          Alcotest.test_case "no lost updates from 4 domains" `Quick
            test_concurrent_counters;
          Alcotest.test_case "reset racing snapshot" `Quick
            test_reset_racing_snapshot;
          Alcotest.test_case "per-domain span breakdown" `Quick
            test_span_domain_breakdown;
        ] );
      ( "report",
        [ Alcotest.test_case "JSON round-trip" `Quick test_report_roundtrip ] );
    ]
