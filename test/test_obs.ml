(* Tests for the telemetry layer: log-scale histogram bucketing and
   quantiles, span nesting and unwind-on-exception, in-memory sink
   ordering, and JSON round-tripping of a full run report. *)

module Json = Obs.Json
module Metrics = Obs.Metrics
module Sink = Obs.Sink
module Span = Obs.Span
module Flight = Obs.Flight
module Clock = Obs.Clock

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_escaping () =
  let j =
    Json.Obj
      [
        ("plain", Json.Str "hello");
        ("quoted", Json.Str "say \"hi\"");
        ("control", Json.Str "a\nb\tc\\d");
      ]
  in
  let s = Json.to_string j in
  (* The emitted text must parse back to the same tree. *)
  Alcotest.(check bool) "round-trips" true (Json.parse s = j);
  check "raw quote is escaped" false
    (Astring.String.is_infix ~affix:"say \"hi" s);
  check "newline is escaped" false (String.contains s '\n')

let test_json_values () =
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Int 42;
      Json.Int (-17);
      Json.Float 0.125;
      Json.Float 1.6466010092540363;
      Json.Str "";
      Json.Arr [ Json.Int 1; Json.Arr []; Json.Obj [] ];
      Json.Obj [ ("k", Json.Arr [ Json.Null ]) ];
    ]
  in
  List.iter
    (fun j -> check (Json.to_string j) true (Json.parse (Json.to_string j) = j))
    cases;
  (* Non-finite floats degrade to null rather than invalid JSON. *)
  check_str "nan is null" "null" (Json.to_string (Json.Float nan));
  check_str "inf is null" "null" (Json.to_string (Json.Float infinity));
  (* Whitespace and nesting on the parser side. *)
  check "whitespace accepted" true
    (Json.parse " { \"a\" : [ 1 , 2.5 , \"x\" ] } "
     = Json.Obj [ ("a", Json.Arr [ Json.Int 1; Json.Float 2.5; Json.Str "x" ]) ]);
  check "trailing garbage rejected" true
    (match Json.parse "{} x" with
     | exception Json.Parse_error _ -> true
     | _ -> false)

(* ------------------------------------------------------------------ *)
(* JSON round-trip fuzz: parse (to_string v) = v over generated values
   with nasty strings (escapes, control bytes, UTF-8), integral floats
   (which print with a ".0" marker) and deep nesting. Non-finite floats
   are excluded: they deliberately degrade to [null].                  *)
(* ------------------------------------------------------------------ *)

let json_gen =
  QCheck.Gen.(
    let str_gen =
      let nasty =
        [
          ""; "\""; "\\"; "\\\\"; "a\nb"; "\t"; "\r\n"; "\x01\x02";
          "caf\xc3\xa9" (* café *); "\xe2\x82\xac" (* € *); "\xf0\x9f\x90\xab";
          "end\\"; "\"quoted\""; "nul\x00byte"; "/slash/";
        ]
      in
      oneof [ oneofl nasty; string_size (int_bound 12) ]
    in
    let float_gen =
      oneof
        [
          map float_of_int (int_range (-1000) 1000) (* integral *)
          ; float_bound_inclusive 1.0
          ; map (fun f -> f *. 1e18) (float_bound_inclusive 1.0);
        ]
    in
    let leaf =
      oneof
        [
          return Json.Null;
          map (fun b -> Json.Bool b) bool;
          map (fun i -> Json.Int i) int;
          map (fun f -> Json.Float f) float_gen;
          map (fun s -> Json.Str s) str_gen;
        ]
    in
    let rec value depth =
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            (2, map (fun l -> Json.Arr l) (list_size (int_bound 4) (value (depth - 1))));
            ( 2,
              map
                (fun l -> Json.Obj l)
                (list_size (int_bound 4) (pair str_gen (value (depth - 1)))) );
          ]
    in
    (* Depth up to 8: exercises deep nesting in both printer and parser. *)
    int_bound 8 >>= value)

let prop_json_roundtrip =
  QCheck.Test.make ~name:"parse (to_string v) = v" ~count:1000
    (QCheck.make json_gen ~print:Json.to_string)
    (fun v -> Json.parse (Json.to_string v) = v)

(* ------------------------------------------------------------------ *)
(* Untrusted parsing: quantd feeds raw socket frames through
   [parse_untrusted], which must be total — a structured [Error] for
   malformed, truncated, oversized or over-nested input, never an
   escaping exception or unbounded recursion.                          *)
(* ------------------------------------------------------------------ *)

let test_untrusted_limits () =
  let limits = { Json.max_bytes = 64; max_depth = 4 } in
  check "small valid input parses" true
    (Json.parse_untrusted ~limits "{\"a\":[1,2]}"
     = Ok (Json.Obj [ ("a", Json.Arr [ Json.Int 1; Json.Int 2 ]) ]));
  check "oversized payload rejected" true
    (match Json.parse_untrusted ~limits (String.make 66 ' ') with
     | Error _ -> true
     | Ok _ -> false);
  check "nesting within the limit accepted" true
    (match Json.parse_untrusted ~limits "[[[1]]]" with
     | Ok _ -> true
     | Error _ -> false);
  check "over-nested input rejected" true
    (match Json.parse_untrusted ~limits "[[[[[1]]]]]" with
     | Error _ -> true
     | Ok _ -> false);
  (* A deep bomb under the default limits must come back as an error,
     not blow the stack: 100k opening brackets, never closed. *)
  check "100k-deep array bomb is a structured error" true
    (match Json.parse_untrusted (String.make 100_000 '[') with
     | Error _ -> true
     | Ok _ -> false);
  (* Everything the printer emits round-trips under the default limits. *)
  let v = Json.Obj [ ("x", Json.Arr [ Json.Int 1; Json.Str "s" ]) ] in
  check "default limits round-trip" true
    (Json.parse_untrusted (Json.to_string v) = Ok v)

(* Mangled frames: take a valid document and truncate it, flip one byte,
   or replace it with raw garbage — the shapes a crashing client or a
   hostile peer actually sends. *)
let mangled_json_gen =
  QCheck.Gen.(
    json_gen >>= fun v ->
    let s = Json.to_string v in
    let len = String.length s in
    oneof
      [
        (int_bound (max 0 (len - 1)) >|= fun n -> String.sub s 0 n);
        ( pair (int_bound (max 0 (len - 1))) (int_range 0 255) >|= fun (i, b) ->
          if len = 0 then s
          else begin
            let bs = Bytes.of_string s in
            Bytes.set bs i (Char.chr b);
            Bytes.to_string bs
          end );
        string_size (int_bound 64);
      ])

let prop_untrusted_total =
  QCheck.Test.make ~name:"parse_untrusted is total on mangled frames"
    ~count:2000
    (QCheck.make mangled_json_gen ~print:(Printf.sprintf "%S"))
    (fun s -> match Json.parse_untrusted s with Ok _ | Error _ -> true)

let prop_untrusted_roundtrip =
  QCheck.Test.make ~name:"parse_untrusted (to_string v) = Ok v" ~count:500
    (QCheck.make json_gen ~print:Json.to_string)
    (fun v -> Json.parse_untrusted (Json.to_string v) = Ok v)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_gauge () =
  let reg = Metrics.Registry.create () in
  let c = Metrics.Counter.make ~registry:reg "c" in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 4;
  check_int "counter accumulates" 5 (Metrics.Counter.value c);
  (* Same name, same handle. *)
  let c' = Metrics.Counter.make ~registry:reg "c" in
  Metrics.Counter.incr c';
  check_int "same name is same counter" 6 (Metrics.Counter.value c);
  let g = Metrics.Gauge.make ~registry:reg "g" in
  Metrics.Gauge.set_max g 3.0;
  Metrics.Gauge.set_max g 1.0;
  check_float "set_max keeps max" 3.0 (Metrics.Gauge.value g);
  Metrics.Registry.reset reg;
  check_int "reset zeroes counter" 0 (Metrics.Counter.value c);
  check_float "reset zeroes gauge" 0.0 (Metrics.Gauge.value g);
  (* A name registered as one kind cannot be another. *)
  check "kind clash rejected" true
    (match Metrics.Gauge.make ~registry:reg "c" with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_histogram_buckets () =
  (* Bucket i holds [2^(i-20), 2^(i-19)): 1.0 starts the bucket whose
     upper edge is 2.0. *)
  check_int "1.0" 20 (Metrics.Histogram.bucket_of 1.0);
  check_int "1.999 same bucket" 20 (Metrics.Histogram.bucket_of 1.999);
  check_int "2.0 next bucket" 21 (Metrics.Histogram.bucket_of 2.0);
  check_int "0.5 previous bucket" 19 (Metrics.Histogram.bucket_of 0.5);
  check_int "zero clamps to first" 0 (Metrics.Histogram.bucket_of 0.0);
  check_int "negative clamps to first" 0 (Metrics.Histogram.bucket_of (-3.0));
  check_int "tiny clamps to first" 0 (Metrics.Histogram.bucket_of 1e-12);
  check_int "huge clamps to last" 40 (Metrics.Histogram.bucket_of 1e12);
  check_float "upper edge of bucket 20" 2.0 (Metrics.Histogram.bucket_upper 20);
  check_float "upper edge of bucket 19" 1.0 (Metrics.Histogram.bucket_upper 19);
  (* Every positive finite value lands in the bucket below its upper
     edge. *)
  List.iter
    (fun v ->
      let i = Metrics.Histogram.bucket_of v in
      check (Printf.sprintf "%g below upper edge" v) true
        (v < Metrics.Histogram.bucket_upper i || i = 40);
      check (Printf.sprintf "%g at/above lower edge" v) true
        (i = 0 || v >= Metrics.Histogram.bucket_upper (i - 1)))
    [ 1e-6; 0.01; 0.5; 1.0; 3.0; 64.0; 1e5 ]

let test_histogram_quantiles () =
  let reg = Metrics.Registry.create () in
  let h = Metrics.Histogram.make ~registry:reg "h" in
  check "empty quantile is nan" true (Float.is_nan (Metrics.Histogram.quantile h 0.5));
  List.iter (Metrics.Histogram.observe h) [ 1.0; 1.0; 1.0; 2.0; 4.0; 8.0 ];
  check_int "count" 6 (Metrics.Histogram.count h);
  check_float "sum" 17.0 (Metrics.Histogram.sum h);
  check_float "mean" (17.0 /. 6.0) (Metrics.Histogram.mean h);
  (* Median: three of six samples sit in the [1,2) bucket, so the
     estimate is that bucket's upper edge. *)
  check_float "p50 is first bucket's edge" 2.0 (Metrics.Histogram.quantile h 0.5);
  (* The maximum clamps to the observed max, not the bucket edge. *)
  check_float "p100 clamps to max" 8.0 (Metrics.Histogram.quantile h 1.0);
  (* A tiny quantile still answers from the first non-empty bucket,
     clamped to the observed min from below. *)
  check "p1 within observed range" true (Metrics.Histogram.quantile h 0.01 >= 1.0)

let test_snapshot_touched_only () =
  let reg = Metrics.Registry.create () in
  let c = Metrics.Counter.make ~registry:reg "used" in
  let (_ : Metrics.Counter.t) = Metrics.Counter.make ~registry:reg "untouched" in
  Metrics.Counter.incr c;
  let snap = Metrics.snapshot ~registry:reg () in
  check "touched metric present" true (Json.member "used" snap <> None);
  check "untouched metric absent" true (Json.member "untouched" snap = None)

(* ------------------------------------------------------------------ *)
(* Spans and sinks                                                     *)
(* ------------------------------------------------------------------ *)

let span_name = function
  | Sink.Span_start { name; _ } -> "start:" ^ name
  | Sink.Span_end { name; _ } -> "end:" ^ name

let test_span_nesting_and_sink_order () =
  Span.reset ();
  let sink, events = Sink.memory () in
  Sink.set sink;
  Fun.protect ~finally:(fun () -> Sink.set Sink.null) @@ fun () ->
  Span.with_ ~name:"outer" (fun () ->
      Span.with_ ~name:"inner1" (fun () -> ());
      Span.with_ ~name:"inner2" (fun () -> ()));
  let evs = events () in
  Alcotest.(check (list string))
    "events in emission order"
    [
      "start:outer"; "start:inner1"; "end:inner1"; "start:inner2";
      "end:inner2"; "end:outer";
    ]
    (List.map span_name evs);
  (* Depths: outer at 0, inners at 1. *)
  List.iter
    (fun ev ->
      match ev with
      | Sink.Span_start { name; depth; _ } | Sink.Span_end { name; depth; _ } ->
        check_int ("depth of " ^ name) (if name = "outer" then 0 else 1) depth)
    evs;
  (* Aggregates saw all three names, once each. *)
  let timings = Span.timings () in
  Alcotest.(check (list string))
    "aggregate names" [ "inner1"; "inner2"; "outer" ]
    (List.map (fun t -> t.Span.name) timings);
  List.iter (fun t -> check_int t.Span.name 1 t.Span.count) timings

let test_span_unwind_on_exception () =
  Span.reset ();
  let sink, events = Sink.memory () in
  Sink.set sink;
  Fun.protect ~finally:(fun () -> Sink.set Sink.null) @@ fun () ->
  check "exception propagates" true
    (match
       Span.with_ ~name:"outer" (fun () ->
           Span.with_ ~name:"boom" (fun () -> failwith "boom"))
     with
    | exception Failure _ -> true
    | () -> false);
  check_int "depth restored after raise" 0 (Span.depth ());
  (* Both spans were closed, innermost first, with ok = false. *)
  let ends =
    List.filter_map
      (function
        | Sink.Span_end { name; ok; _ } -> Some (name, ok)
        | Sink.Span_start _ -> None)
      (events ())
  in
  Alcotest.(check (list (pair string bool)))
    "both spans closed as failed"
    [ ("boom", false); ("outer", false) ]
    ends;
  (* A failed span still feeds the aggregates. *)
  check "failed span aggregated" true
    (List.exists (fun t -> t.Span.name = "boom") (Span.timings ()));
  (* And the next span starts at depth 0 again. *)
  Span.with_ ~name:"after" (fun () -> ());
  check "recovered" true
    (List.exists
       (function
         | Sink.Span_start { name = "after"; depth = 0; _ } -> true
         | _ -> false)
       (events ()))

(* ------------------------------------------------------------------ *)
(* Domain-safety: concurrent updates must lose nothing                  *)
(* ------------------------------------------------------------------ *)

let test_concurrent_counters () =
  let reg = Metrics.Registry.create () in
  let c = Metrics.Counter.make ~registry:reg "par.c" in
  let g = Metrics.Gauge.make ~registry:reg "par.g" in
  let h = Metrics.Histogram.make ~registry:reg "par.h" in
  let per_domain = 25_000 in
  let body () =
    for i = 1 to per_domain do
      Metrics.Counter.incr c;
      Metrics.Gauge.set_max g (float_of_int i);
      Metrics.Histogram.observe h 1.0
    done
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn body) in
  Array.iter Domain.join domains;
  (* Every increment from every domain must be visible: counters and
     histogram scalars are atomics, not plain refs. *)
  check_int "no lost counter increments" (4 * per_domain)
    (Metrics.Counter.value c);
  check "gauge max survived the race" true
    (Metrics.Gauge.value g = float_of_int per_domain);
  check_int "no lost observations" (4 * per_domain) (Metrics.Histogram.count h);
  check "sum exact" true
    (Metrics.Histogram.sum h = float_of_int (4 * per_domain))

let test_reset_racing_snapshot () =
  (* Reset and snapshot race from two domains while two more keep
     writing: nothing crashes and every snapshot parses into the
     registered shapes (registry mutations are mutex-guarded). *)
  let reg = Metrics.Registry.create () in
  let c = Metrics.Counter.make ~registry:reg "race.c" in
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Metrics.Counter.incr c
        done)
  in
  let resetter =
    Domain.spawn (fun () ->
        for _ = 1 to 500 do
          Metrics.Registry.reset reg;
          Domain.cpu_relax ()
        done)
  in
  let ok = ref true in
  for _ = 1 to 500 do
    match Metrics.snapshot ~registry:reg () with
    | Json.Obj fields ->
      List.iter
        (fun (_, v) ->
          match Json.member "type" v with
          | Some (Json.Str _) -> ()
          | _ -> ok := false)
        fields
    | _ -> ok := false
  done;
  Domain.join resetter;
  Atomic.set stop true;
  Domain.join writer;
  check "snapshots stayed well-formed under reset race" true !ok;
  (* After the dust settles the counter still works. *)
  Metrics.Registry.reset reg;
  Metrics.Counter.incr c;
  check_int "counter usable after race" 1 (Metrics.Counter.value c)

let test_span_domain_breakdown () =
  Obs.reset ();
  Span.with_ ~name:"main.work" (fun () -> ());
  let d =
    Domain.spawn (fun () -> Span.with_ ~name:"worker.work" (fun () -> ()))
  in
  Domain.join d;
  let by_domain = Span.domain_timings () in
  let names_of id =
    List.filter_map
      (fun (d, t) -> if d = id then Some t.Span.name else None)
      by_domain
  in
  check "main domain recorded" true
    (List.mem "main.work" (names_of (Domain.self () :> int)));
  check "worker span attributed to another domain" true
    (List.exists
       (fun (d, t) ->
         d <> (Domain.self () :> int) && t.Span.name = "worker.work")
       by_domain);
  (* The global aggregate still sees both. *)
  Alcotest.(check (list string))
    "global aggregate merges domains"
    [ "main.work"; "worker.work" ]
    (List.map (fun t -> t.Span.name) (Span.timings ()));
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let test_clock_sanity () =
  let a = Clock.now () in
  let b = Clock.now () in
  check "tick source is monotone" true (b >= a);
  check "positive deltas convert to positive seconds" true
    (Clock.to_s (b -. a) >= 0.0 && Clock.to_s 1_000_000.0 > 0.0);
  (* The epoch anchor must place "now" at... now. A wide tolerance keeps
     this robust on loaded CI boxes; a broken calibration is off by
     orders of magnitude, not milliseconds. *)
  check "to_epoch lands near wall-clock time" true
    (Float.abs (Clock.to_epoch (Clock.now ()) -. Unix.gettimeofday ()) < 5.0)

let test_flight_wraparound () =
  Flight.enable ~capacity:8 ();
  let id = Flight.intern "t.wrap" in
  for i = 0 to 11 do
    Flight.complete id ~ts:(float_of_int i *. 1_000_000.0) ~dur:1.0
  done;
  let evs = Flight.drain () in
  check_int "ring keeps exactly [capacity] events" 8 (List.length evs);
  check_int "overwritten events are counted" 4 (Flight.dropped ());
  (* Overwrite-oldest: the survivors are the *newest* 8 appends, in
     order. *)
  Alcotest.(check (list int))
    "newest events survive, oldest dropped"
    [ 4; 5; 6; 7; 8; 9; 10; 11 ]
    (List.map (fun e -> e.Flight.seq) evs);
  (* Totals live outside the ring: every append is accounted even
     though a third of the timeline was overwritten. *)
  (match List.assoc_opt "t.wrap" (Flight.totals ()) with
   | Some (n, total) ->
     check_int "totals count is exact despite wraparound" 12 n;
     check "totals sum is exact despite wraparound" true
       (Float.abs (total -. Clock.to_s 12.0) <= 1e-12 *. Float.abs total)
   | None -> Alcotest.fail "phase missing from totals");
  Flight.disable ()

let test_flight_concurrent_append () =
  Flight.enable ~capacity:4096 ();
  let per_domain = 1000 in
  (* Intern up front: appenders must never hit the intern table. *)
  let ids = Array.init 4 (fun k -> Flight.intern (Printf.sprintf "t.d%d" k)) in
  let domains =
    Array.init 4 (fun k ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              let t0 = Flight.start () in
              Flight.stop ids.(k) t0
            done))
  in
  Array.iter Domain.join domains;
  let evs = Flight.drain () in
  check_int "every append from every domain is present"
    (4 * per_domain) (List.length evs);
  check_int "nothing overwritten below capacity" 0 (Flight.dropped ());
  (* No torn events: each event's name, kind and domain row must be
     internally consistent, and per-domain sequences must be a clean
     0..n-1 run (a torn tag or racing head would break one of these). *)
  let per_name = Hashtbl.create 8 in
  List.iter
    (fun e ->
      check "only Complete events were appended" true
        (e.Flight.kind = Flight.Complete);
      check "durations are non-negative seconds" true (e.Flight.dur >= 0.0);
      let seqs =
        Option.value ~default:[] (Hashtbl.find_opt per_name e.Flight.name)
      in
      Hashtbl.replace per_name e.Flight.name (e.Flight.seq :: seqs))
    evs;
  Array.iteri
    (fun k _ ->
      let name = Printf.sprintf "t.d%d" k in
      match Hashtbl.find_opt per_name name with
      | None -> Alcotest.fail (name ^ " lost all its events")
      | Some seqs ->
        check_int (name ^ " kept every event") per_domain (List.length seqs);
        Alcotest.(check (list int))
          (name ^ " sequence numbers form a gap-free run")
          (List.init per_domain (fun i -> i))
          (List.sort compare seqs))
    ids;
  Flight.disable ()

let test_flight_drain_idempotent () =
  Flight.enable ~capacity:64 ();
  let id = Flight.intern "t.twice" in
  for i = 0 to 9 do
    Flight.complete id ~ts:(float_of_int i *. 1000.0) ~dur:2.0
  done;
  Flight.mark (Flight.intern "t.mark");
  let first = Flight.drain () in
  let second = Flight.drain () in
  check "drain is non-destructive" true (first = second);
  check "totals unchanged by draining" true
    (Flight.totals () = Flight.totals ());
  Flight.disable ()

let test_flight_stop_start_chain () =
  Flight.enable ();
  let a = Flight.intern "t.chain.a" and b = Flight.intern "t.chain.b" in
  let t0 = Flight.start () in
  let t1 = Flight.stop_start a t0 in
  check "chained start does not go backwards" true (t1 >= t0);
  Flight.stop b t1;
  let totals = Flight.totals () in
  (match (List.assoc_opt "t.chain.a" totals, List.assoc_opt "t.chain.b" totals)
   with
   | Some (na, _), Some (nb, _) ->
     check_int "first phase recorded once" 1 na;
     check_int "second phase recorded once" 1 nb
   | _ -> Alcotest.fail "chained phases missing from totals");
  Flight.disable ();
  Flight.reset ();
  (* Off: the sentinel propagates through the whole chain and nothing
     is recorded. *)
  let t0 = Flight.start () in
  check "start returns the off sentinel" true (t0 < 0.0);
  let t1 = Flight.stop_start a t0 in
  check "stop_start propagates the sentinel" true (t1 < 0.0);
  Flight.stop b t1;
  check "no events recorded while off" true (Flight.drain () = [])

let test_flight_chrome_and_otlp_json () =
  Flight.enable ~capacity:64 ();
  let ph = Flight.intern "t.export.phase" in
  let t0 = Flight.start () in
  Flight.stop ph t0;
  Flight.mark (Flight.intern "t.export.mark");
  Flight.sample (Flight.intern "t.export.gauge") 42.0;
  let evs = Flight.drain () in
  let chrome = Flight.to_chrome evs in
  let text = Json.to_string chrome in
  check "chrome trace round-trips through the parser" true
    (Json.parse text = chrome);
  (match Json.member "traceEvents" chrome with
   | Some (Json.Arr entries) ->
     let phs =
       List.filter_map
         (fun e ->
           match Json.member "ph" e with Some (Json.Str p) -> Some p | _ -> None)
         entries
     in
     check_int "one trace entry per event plus thread metadata"
       (List.length evs + 1) (List.length entries);
     List.iter
       (fun p ->
         check (Printf.sprintf "trace has a %S entry" p) true (List.mem p phs))
       [ "M"; "X"; "i"; "C" ];
     List.iter
       (fun e ->
         List.iter
           (fun f ->
             check (Printf.sprintf "every entry has %S" f) true
               (Json.member f e <> None))
           [ "name"; "ph"; "pid"; "tid" ])
       entries
   | _ -> Alcotest.fail "traceEvents missing or not an array");
  (* The slice duration must survive the µs conversion: one Complete
     event with a non-negative dur field. *)
  let otlp = Flight.to_otlp evs in
  check "otlp export round-trips through the parser" true
    (Json.parse (Json.to_string otlp) = otlp);
  check "otlp has resourceSpans" true (Json.member "resourceSpans" otlp <> None);
  Flight.disable ()

(* ------------------------------------------------------------------ *)
(* Sharded metrics                                                     *)
(* ------------------------------------------------------------------ *)

let test_snapshot_during_mutation () =
  (* One writer mutates while the main domain snapshots: every
     intermediate read must be a sane prefix of the writer's progress
     (counters only ever grow), and the post-join read is exact. *)
  let reg = Metrics.Registry.create () in
  let c = Metrics.Counter.make ~registry:reg "mut.c" in
  let n = 200_000 in
  let writer =
    Domain.spawn (fun () ->
        for _ = 1 to n do
          Metrics.Counter.incr c
        done)
  in
  let prev = ref 0 in
  let ok = ref true in
  for _ = 1 to 200 do
    (match Json.member "mut.c" (Metrics.snapshot ~registry:reg ()) with
     | Some v ->
       (match Json.member "value" v with
        | Some (Json.Int x) ->
          if x < !prev || x > n then ok := false;
          prev := x
        | _ -> ok := false)
     | None -> () (* not touched yet: the writer hasn't started *));
    Domain.cpu_relax ()
  done;
  Domain.join writer;
  check "racing snapshots saw a monotone, bounded counter" true !ok;
  check_int "post-join read is exact" n (Metrics.Counter.value c)

let test_sharded_merge_deterministic () =
  (* The same workload through a jobs=1 and a jobs=4 pool must produce
     byte-identical snapshots once merged: reads fold shards in
     domain-id order and the workload's floats are integer-valued, so
     no summation-order noise can leak into the report. *)
  let snapshot_for jobs =
    let reg = Metrics.Registry.create () in
    let c = Metrics.Counter.make ~registry:reg "det.c" in
    let g = Metrics.Gauge.make ~registry:reg "det.g" in
    let h = Metrics.Histogram.make ~registry:reg "det.h" in
    Par.Pool.with_pool ~jobs (fun pool ->
        ignore
          (Par.map_range ~pool ~lo:0 ~hi:4096 (fun i ->
               Metrics.Counter.incr c;
               Metrics.Gauge.set_max g (float_of_int i);
               Metrics.Histogram.observe h (float_of_int ((i mod 7) + 1)))));
    (* Workers are joined by [with_pool]; merging here is exact. *)
    Metrics.merge ~registry:reg ();
    Json.to_string (Metrics.snapshot ~registry:reg ())
  in
  let s1 = snapshot_for 1 in
  let s4 = snapshot_for 4 in
  check_str "jobs=1 and jobs=4 reports are byte-identical" s1 s4;
  check "report is non-trivial" true
    (Astring.String.is_infix ~affix:"\"det.h\"" s1)

let test_histogram_shard_merge_buckets () =
  (* Each domain fills a different bucket; the merged view must place
     every observation in the right bucket with exact counts. *)
  let reg = Metrics.Registry.create () in
  let h = Metrics.Histogram.make ~registry:reg "shard.h" in
  let domains =
    Array.init 4 (fun k ->
        Domain.spawn (fun () ->
            for _ = 1 to 10 do
              Metrics.Histogram.observe h (2.0 ** float_of_int k)
            done))
  in
  Array.iter Domain.join domains;
  Metrics.merge ~registry:reg ();
  check_int "merged count" 40 (Metrics.Histogram.count h);
  check "merged sum" true (Metrics.Histogram.sum h = 10.0 *. 15.0);
  (match Json.member "shard.h" (Metrics.snapshot ~registry:reg ()) with
   | Some hist ->
     (match Json.member "buckets" hist with
      | Some (Json.Arr buckets) ->
        check_int "four distinct buckets" 4 (List.length buckets);
        List.iteri
          (fun k b ->
            let expect_le =
              Metrics.Histogram.bucket_upper
                (Metrics.Histogram.bucket_of (2.0 ** float_of_int k))
            in
            check "bucket edge matches bucket_of" true
              (Json.member "le" b = Some (Json.Float expect_le));
            check "bucket count is exact" true
              (Json.member "n" b = Some (Json.Int 10)))
          buckets
      | _ -> Alcotest.fail "buckets missing from histogram snapshot")
   | None -> Alcotest.fail "histogram missing from snapshot")

(* ------------------------------------------------------------------ *)
(* Run report                                                          *)
(* ------------------------------------------------------------------ *)

let test_report_roundtrip () =
  Obs.reset ();
  let c = Obs.counter "test.counter" in
  Obs.Metrics.Counter.add c 7;
  let h = Obs.histogram "test.hist" in
  Obs.Metrics.Histogram.observe h 0.5;
  Obs.Metrics.Histogram.observe h 3.0;
  Span.with_ ~name:"test.span" (fun () -> ());
  let report = Obs.Report.make () in
  (* Serialise, parse back, and compare trees: the builder and parser
     must agree on every construct a real report uses. *)
  let text = Json.to_string report in
  let back = Json.parse text in
  check "report round-trips" true (back = report);
  (* Structure: the three sections are present and populated. *)
  let metrics = Option.get (Json.member "metrics" back) in
  check "counter in report" true
    (Json.member "test.counter" metrics
    = Some (Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Int 7) ]));
  (match Json.member "test.hist" metrics with
   | Some hist ->
     check "histogram count" true (Json.member "count" hist = Some (Json.Int 2));
     check "histogram sum" true
       (match Json.member "sum" hist with
        | Some s -> Json.to_float_opt s = Some 3.5
        | None -> false)
   | None -> Alcotest.fail "histogram missing from report");
  (match Json.member "spans" back with
   | Some spans ->
     (match Json.member "test.span" spans with
      | Some span ->
        check "span count serialised" true
          (Json.member "count" span = Some (Json.Int 1));
        check "span total present" true (Json.member "total_s" span <> None)
      | None -> Alcotest.fail "span missing from report")
   | None -> Alcotest.fail "spans section missing");
  (match Json.member "gc" back with
   | Some gc ->
     check "gc stats populated" true
       (match Json.member "minor_words" gc with
        | Some w -> (match Json.to_float_opt w with Some f -> f > 0.0 | None -> false)
        | None -> false);
     check "heap words present" true (Json.member "heap_words" gc <> None)
   | None -> Alcotest.fail "gc section missing");
  Obs.reset ()

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "value round-trips" `Quick test_json_values;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
          Alcotest.test_case "untrusted limits" `Quick test_untrusted_limits;
          QCheck_alcotest.to_alcotest prop_untrusted_total;
          QCheck_alcotest.to_alcotest prop_untrusted_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter+gauge" `Quick test_counter_gauge;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "snapshot touched-only" `Quick test_snapshot_touched_only;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting + sink order" `Quick
            test_span_nesting_and_sink_order;
          Alcotest.test_case "unwind on exception" `Quick
            test_span_unwind_on_exception;
        ] );
      ( "domains",
        [
          Alcotest.test_case "no lost updates from 4 domains" `Quick
            test_concurrent_counters;
          Alcotest.test_case "reset racing snapshot" `Quick
            test_reset_racing_snapshot;
          Alcotest.test_case "per-domain span breakdown" `Quick
            test_span_domain_breakdown;
        ] );
      ( "flight",
        [
          Alcotest.test_case "clock sanity" `Quick test_clock_sanity;
          Alcotest.test_case "wraparound keeps newest, counts dropped" `Quick
            test_flight_wraparound;
          Alcotest.test_case "4-domain append, no torn events" `Quick
            test_flight_concurrent_append;
          Alcotest.test_case "drain is idempotent" `Quick
            test_flight_drain_idempotent;
          Alcotest.test_case "stop_start chains phases" `Quick
            test_flight_stop_start_chain;
          Alcotest.test_case "chrome + otlp export validity" `Quick
            test_flight_chrome_and_otlp_json;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "snapshot during mutation" `Quick
            test_snapshot_during_mutation;
          Alcotest.test_case "jobs=1 vs jobs=4 byte-identical" `Quick
            test_sharded_merge_deterministic;
          Alcotest.test_case "histogram shard-merge buckets" `Quick
            test_histogram_shard_merge_buckets;
        ] );
      ( "report",
        [ Alcotest.test_case "JSON round-trip" `Quick test_report_roundtrip ] );
    ]
