(* Tests for the statistical model checking layer: estimators, the
   stochastic race semantics (validated against closed-form answers), and
   the Fig. 4 train-gate experiment's qualitative shape. *)

module Model = Ta.Model
module Expr = Ta.Expr
module Store = Ta.Store
module Prop = Ta.Prop
module Train_gate = Ta.Train_gate
module Stochastic = Smc.Stochastic
module Estimate = Smc.Estimate

let check = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Estimators                                                          *)
(* ------------------------------------------------------------------ *)

let test_wilson () =
  let i = Estimate.wilson ~successes:50 ~trials:100 () in
  check_float "centred" 0.5 i.Estimate.p_hat;
  check "interval brackets p_hat" true
    (i.Estimate.low < 0.5 && 0.5 < i.Estimate.high);
  check "nontrivial width" true (i.Estimate.high -. i.Estimate.low < 0.25);
  let j = Estimate.wilson ~successes:0 ~trials:100 () in
  check "zero successes: low ~ 0" true (j.Estimate.low < 1e-9);
  check "zero successes: tight high" true (j.Estimate.high < 0.06);
  let k = Estimate.wilson ~successes:1000 ~trials:1000 () in
  check "all successes: high ~ 1" true (k.Estimate.high > 1.0 -. 1e-9)

let test_wilson_narrows () =
  let w trials =
    let i = Estimate.wilson ~successes:(trials / 2) ~trials () in
    i.Estimate.high -. i.Estimate.low
  in
  check "more trials narrow the interval" true (w 10000 < w 100)

let test_chernoff () =
  (* ln(2/0.05) / (2 * 0.05^2) = 737.78 -> 738 *)
  Alcotest.(check int) "chernoff bound" 738
    (Estimate.chernoff_runs ~eps:0.05 ~alpha:0.05);
  check "smaller eps, more runs" true
    (Estimate.chernoff_runs ~eps:0.01 ~alpha:0.05
     > Estimate.chernoff_runs ~eps:0.1 ~alpha:0.05)

let test_sprt () =
  let rng = Random.State.make [| 7 |] in
  let bernoulli p () = Random.State.float rng 1.0 < p in
  (* True p = 0.9, H0: p >= 0.5 should be accepted quickly. *)
  let r =
    Estimate.sprt ~theta:0.5 ~delta:0.05 ~alpha:0.01 ~beta:0.01 (bernoulli 0.9)
  in
  check "H0 accepted for high p" true r.Estimate.accept_h0;
  check "sequentially few samples" true (r.Estimate.samples < 200);
  (* True p = 0.1, H0: p >= 0.5 rejected. *)
  let r2 =
    Estimate.sprt ~theta:0.5 ~delta:0.05 ~alpha:0.01 ~beta:0.01 (bernoulli 0.1)
  in
  check "H0 rejected for low p" false r2.Estimate.accept_h0

(* Differential: feeding a pre-drawn outcome sequence to the
   incremental Sprt state machine one sample at a time must give
   exactly the verdict and sample count of the one-shot [sprt] on the
   same sequence — the property Smc.hypothesis relies on to sample
   speculatively in parallel. *)
let prop_sprt_incremental_vs_batch =
  QCheck.Test.make ~name:"Sprt.step replays sprt verdict and sample count"
    ~count:200
    (QCheck.make
       QCheck.Gen.(
         triple (int_bound 1_000_000)
           (float_bound_inclusive 1.0)
           (float_range 0.1 0.9))
       ~print:(fun (seed, p, theta) ->
         Printf.sprintf "seed=%d p=%f theta=%f" seed p theta))
    (fun (seed, p, theta) ->
      let max_samples = 400 in
      let outcomes =
        let rng = Random.State.make [| seed |] in
        Array.init max_samples (fun _ -> Random.State.float rng 1.0 < p)
      in
      let batch =
        let i = ref 0 in
        Estimate.sprt ~max_samples ~theta ~delta:0.05 ~alpha:0.05 ~beta:0.05
          (fun () ->
            let o = outcomes.(!i) in
            incr i;
            o)
      in
      let incremental =
        let rec go st i =
          match Estimate.Sprt.step st outcomes.(i) with
          | Estimate.Sprt.Decided r -> r
          | Estimate.Sprt.Undecided st -> go st (i + 1)
        in
        go
          (Estimate.Sprt.start ~max_samples ~theta ~delta:0.05 ~alpha:0.05
             ~beta:0.05 ())
          0
      in
      batch.Estimate.accept_h0 = incremental.Estimate.accept_h0
      && batch.Estimate.samples = incremental.Estimate.samples)

let test_mean_std () =
  let m, s = Estimate.mean_std [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 m;
  check "std approx" true (abs_float (s -. 1.2909944487) < 1e-6)


let test_confidence_widths () =
  let width c =
    let i = Estimate.wilson ~confidence:c ~successes:60 ~trials:100 () in
    i.Estimate.high -. i.Estimate.low
  in
  check "99% wider than 95%" true (width 0.99 > width 0.95);
  check "95% wider than 80%" true (width 0.95 > width 0.80)

(* ------------------------------------------------------------------ *)
(* Stochastic semantics vs closed-form answers                         *)
(* ------------------------------------------------------------------ *)

(* One component, invariant x<=2, edge enabled from x>=0: hitting time is
   Uniform[0,2], so Pr[<=1](<> B) = 1/2. *)
let test_uniform_delay () =
  let b = Model.builder () in
  let x = Model.fresh_clock b "x" in
  let p = Model.automaton b "P" in
  let a = Model.location p "A" ~invariant:[ Model.clock_le x 2 ] in
  let g = Model.location p "B" in
  Model.edge p ~src:a ~dst:g ();
  let net = Model.build b in
  let q = { Smc.horizon = 1.0; goal = Prop.loc net "P" "B" } in
  let i = Smc.probability ~runs:4000 net q in
  check "uniform: Pr[<=1] near 0.5" true
    (i.Estimate.p_hat > 0.45 && i.Estimate.p_hat < 0.55)

(* Exponential race: two components with rates 3 and 1; the first mover
   records itself. P(component 1 first) = 3/4. *)
let test_exponential_race () =
  let b = Model.builder () in
  let sb = Model.store b in
  let first = Store.int_var sb "first" in
  let mk name id rate_marker =
    ignore rate_marker;
    let p = Model.automaton b name in
    let a = Model.location p "A" in
    let done_l = Model.location p "Done" in
    Model.edge p ~src:a ~dst:done_l
      ~updates:
        [
          Model.Assign
            ( Expr.Cell first,
              Expr.Ite (Expr.Eq (Expr.var first, Expr.Int 0), Expr.Int id, Expr.var first) );
        ]
      ()
  in
  mk "P1" 1 3.0;
  mk "P2" 2 1.0;
  let net = Model.build b in
  let config =
    { Stochastic.rates = (fun auto _ -> if auto = 0 then 3.0 else 1.0) }
  in
  let q =
    {
      Smc.horizon = 1000.0;
      goal = Prop.Data (Expr.Neq (Expr.var first, Expr.Int 0));
    }
  in
  let i = Smc.probability ~config ~runs:4000 net q in
  check "everyone eventually moves" true (i.Estimate.p_hat > 0.999);
  (* Fraction where P1 won the race. *)
  let q1 =
    { Smc.horizon = 1000.0; goal = Prop.Data (Expr.Eq (Expr.var first, Expr.Int 1)) }
  in
  let i1 = Smc.probability ~config ~runs:4000 net q1 in
  check "P1 wins about 3/4 of races" true
    (i1.Estimate.p_hat > 0.70 && i1.Estimate.p_hat < 0.80)


let test_hitting_time () =
  (* Uniform[0,2] hitting time: mean 1, std 1/sqrt(3) ~ 0.577. *)
  let b = Model.builder () in
  let x = Model.fresh_clock b "x" in
  let p = Model.automaton b "P" in
  let a = Model.location p "A" ~invariant:[ Model.clock_le x 2 ] in
  let g = Model.location p "B" in
  Model.edge p ~src:a ~dst:g ();
  let net = Model.build b in
  let s = Smc.hitting_time ~runs:4000 net ~goal:(Prop.loc net "P" "B") ~horizon:10.0 in
  check "all runs hit" true (s.Smc.hit_fraction > 0.999);
  check "mean near 1" true (abs_float (s.Smc.mean -. 1.0) < 0.05);
  check "std near 0.577" true (abs_float (s.Smc.std -. 0.5774) < 0.05)


(* Cross-engine soundness: every location the stochastic simulator ever
   reaches must be reachable for the symbolic checker (simulated runs are
   genuine runs of the automaton). *)
let random_net_for_smc rng =
  let b = Model.builder () in
  let x = Model.fresh_clock b "x" in
  let p = Model.automaton b "P" in
  let n_locs = 2 + Random.State.int rng 2 in
  let locs =
    Array.init n_locs (fun l ->
        let invariant =
          if Random.State.bool rng then
            [ Model.clock_le x (1 + Random.State.int rng 4) ]
          else []
        in
        Model.location p (Printf.sprintf "l%d" l) ~invariant)
  in
  for _ = 1 to 2 + Random.State.int rng 3 do
    let src = locs.(Random.State.int rng n_locs) in
    let dst = locs.(Random.State.int rng n_locs) in
    let clock_guard =
      if Random.State.bool rng then [ Model.clock_ge x (Random.State.int rng 3) ]
      else []
    in
    let updates = if Random.State.bool rng then [ Model.Reset (x, 0) ] else [] in
    Model.edge p ~src ~dst ~clock_guard ~updates ()
  done;
  (Model.build b, n_locs)

let prop_smc_sound_wrt_checker =
  QCheck.Test.make ~name:"SMC hits imply symbolic reachability" ~count:60
    (QCheck.make
       QCheck.Gen.(
         map
           (fun seed ->
             let rng = Random.State.make [| seed |] in
             (random_net_for_smc rng, seed))
           (int_bound 1_000_000))
       ~print:(fun (_, seed) -> Printf.sprintf "seed=%d" seed))
    (fun ((net, n_locs), seed) ->
      let ok = ref true in
      for l = 0 to n_locs - 1 do
        let goal = Prop.Loc (0, l) in
        let i =
          Smc.probability ~seed ~runs:60 net { Smc.horizon = 30.0; goal }
        in
        if i.Estimate.p_hat > 0.0 then begin
          let reachable =
            (Ta.Checker.check net (Prop.Possibly goal)).Ta.Checker.holds
          in
          if not reachable then ok := false
        end
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Fig. 4 shape on the train-gate                                      *)
(* ------------------------------------------------------------------ *)

let fig4_config net =
  ignore net;
  (* Rate 1 + id on Safe (and anywhere exponential applies). *)
  { Stochastic.rates = (fun auto _ -> 1.0 +. float_of_int auto) }

let test_train_gate_cdf_monotone () =
  let net = Train_gate.make ~n_trains:3 in
  let series =
    Smc.cdf ~config:(fig4_config net) ~runs:400 net
      ~goal:(Train_gate.cross_formula net 0) ~horizon:100.0
      ~grid:[ 10.; 25.; 50.; 75.; 100. ]
  in
  let values = List.map snd series in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | [ _ ] | [] -> true
  in
  check "CDF monotone" true (monotone values);
  check "high probability by t=100" true (List.nth values 4 > 0.8)

let test_train_gate_rate_order () =
  (* A higher-rate train tends to cross sooner: its CDF at a moderate
     bound dominates a lower-rate train's. *)
  let net = Train_gate.make ~n_trains:3 in
  let config = fig4_config net in
  let cdf_at i =
    match
      Smc.cdf ~config ~runs:600 net ~goal:(Train_gate.cross_formula net i)
        ~horizon:100.0 ~grid:[ 30.0 ]
    with
    | [ (_, p) ] -> p
    | _ -> assert false
  in
  let p0 = cdf_at 0 and p2 = cdf_at 2 in
  check "rate 3 train crosses sooner than rate 1 train" true (p2 > p0 -. 0.02)

let test_simulation_progresses () =
  let net = Train_gate.make ~n_trains:2 in
  let rng = Random.State.make [| 1 |] in
  let st, hit =
    Stochastic.simulate net (fig4_config net) rng ~horizon:50.0
      ~stop:(fun st ->
        Ta.Prop.eval_on net ~locs:st.Stochastic.clocs
          ~store:st.Stochastic.cstore
          (Train_gate.cross_formula net 0))
  in
  check "time advanced" true (st.Stochastic.ctime > 0.0);
  check "either hit or horizon" true
    (match hit with Some t -> t <= 50.0 | None -> true)

let () =
  Alcotest.run "smc"
    [
      ( "estimators",
        [
          Alcotest.test_case "wilson" `Quick test_wilson;
          Alcotest.test_case "wilson narrows" `Quick test_wilson_narrows;
          Alcotest.test_case "chernoff" `Quick test_chernoff;
          Alcotest.test_case "sprt" `Quick test_sprt;
          QCheck_alcotest.to_alcotest prop_sprt_incremental_vs_batch;
          Alcotest.test_case "mean/std" `Quick test_mean_std;
          Alcotest.test_case "confidence widths" `Quick test_confidence_widths;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "uniform delay" `Slow test_uniform_delay;
          Alcotest.test_case "exponential race" `Slow test_exponential_race;
          Alcotest.test_case "hitting time" `Slow test_hitting_time;
        ] );
      ( "cross-engine",
        [ QCheck_alcotest.to_alcotest prop_smc_sound_wrt_checker ] );
      ( "train-gate",
        [
          Alcotest.test_case "cdf monotone" `Slow test_train_gate_cdf_monotone;
          Alcotest.test_case "rate ordering" `Slow test_train_gate_rate_order;
          Alcotest.test_case "simulation progresses" `Quick
            test_simulation_progresses;
        ] );
    ]
