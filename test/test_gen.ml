(* The differential oracle harness: clean sweeps across every oracle
   pair must report zero divergences; an injected DBM fault must be
   detected and shrunk to a tiny repro; and every case must be
   reproducible from (seed, index) alone. *)

module Rng = Gen.Rng
module Oracle = Gen.Oracle
module Harness = Gen.Harness

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Splittable PRNG                                                     *)
(* ------------------------------------------------------------------ *)

let test_rng_reproducible () =
  let draw rng = Random.State.int (Rng.state rng) 1_000_000 in
  let a = Rng.(child (make 42) 7) in
  let b = Rng.(child (make 42) 7) in
  check_int "same path, same stream" (draw a) (draw b);
  check "sibling streams differ" true
    (draw Rng.(child (make 42) 8) <> draw a);
  check "different seeds differ" true
    (draw Rng.(child (make 43) 7) <> draw a);
  (* A child's stream does not depend on draws made at the parent. *)
  let parent = Rng.make 42 in
  let st = Rng.state parent in
  ignore (Random.State.int st 10);
  check_int "child independent of parent draws"
    (draw (Rng.child parent 3))
    (draw Rng.(child (make 42) 3))

(* ------------------------------------------------------------------ *)
(* Generators produce well-formed models                               *)
(* ------------------------------------------------------------------ *)

let test_cases_build () =
  (* Every generated case elaborates without raising, and every one of
     its single-step shrink candidates does too. *)
  List.iter
    (fun fam ->
      for i = 0 to 19 do
        let rng = Rng.(child (child (make 9) 100) i) in
        let case = Oracle.generate fam rng in
        let build c =
          match c with
          | Oracle.Ta s | Oracle.Pr s -> ignore (Gen.Ta_gen.build s)
          | Oracle.Md s | Oracle.Sm s -> ignore (Gen.Mdp_gen.build s)
          | Oracle.Bi s -> ignore (Gen.Bip_gen.build s)
        in
        build case;
        List.iter build (Oracle.shrinks case)
      done)
    Oracle.all_families

let test_case_json_roundtrips () =
  List.iter
    (fun fam ->
      for i = 0 to 9 do
        let rng = Rng.(child (child (make 11) 200) i) in
        let j = Oracle.to_json (Oracle.generate fam rng) in
        check
          (Printf.sprintf "%s case %d json" (Oracle.family_name fam) i)
          true
          (Obs.Json.parse (Obs.Json.to_string j) = j)
      done)
    Oracle.all_families

let test_mdp_exact_matches_probs () =
  (* The weight-to-float conversion sums to exactly 1.0. *)
  for i = 0 to 49 do
    let rng = Rng.(child (child (make 5) 300) i) in
    let spec = Gen.Mdp_gen.generate rng in
    Array.iter
      (List.iter (fun dist ->
           let total =
             List.fold_left (fun a (p, _) -> a +. p) 0.0 (Gen.Mdp_gen.probs dist)
           in
           check "distribution sums to 1" true (total = 1.0)))
      spec.Gen.Mdp_gen.m_acts
  done

(* ------------------------------------------------------------------ *)
(* Clean sweeps: zero divergences                                      *)
(* ------------------------------------------------------------------ *)

let test_sweep_200 () =
  let r = Harness.run { Harness.default with seed = 42; cases = 200 } in
  check_int "no divergences" 0 (List.length r.Harness.r_divergences);
  check_int "everything conclusive" 200
    (r.Harness.r_agreed + List.length r.Harness.r_skipped)

(* The acceptance sweep: 1000 fixed-seed cases across all five oracle
   pairs. *)
let test_sweep_1000 () =
  let r = Harness.run { Harness.default with seed = 42; cases = 1000 } in
  check_int "no divergences in 1000 cases" 0
    (List.length r.Harness.r_divergences)

let test_reproducible_sweeps () =
  let cfg = { Harness.default with seed = 7; cases = 60 } in
  let a = Harness.render (Harness.run cfg) in
  let b = Harness.render (Harness.run cfg) in
  check "same config, same report" true (a = b);
  let c = Harness.render (Harness.run { cfg with seed = 8 }) in
  check "different seed, different report" true
    (a <> c
    || (* identical summaries are possible; the cases must differ *)
    Harness.case_of cfg 0 <> Harness.case_of { cfg with seed = 8 } 0)

let test_case_of_replay () =
  (* The printed (seed, index) pair is enough to rebuild the case. *)
  let cfg = { Harness.default with seed = 13; cases = 25 } in
  for i = 0 to 24 do
    check
      (Printf.sprintf "case %d replays" i)
      true
      (Harness.case_of cfg i = Harness.case_of { cfg with jobs = 4 } i)
  done

(* ------------------------------------------------------------------ *)
(* Mutation smoke test                                                 *)
(* ------------------------------------------------------------------ *)

let test_mutation_detected_and_shrunk () =
  (* A deliberately broken DBM [up] must surface as a zone-vs-digital
     divergence, and the shrinker must reduce it to a tiny model. *)
  let report =
    Fun.protect
      ~finally:(fun () -> Zones.Dbm.inject_fault None)
      (fun () ->
        Zones.Dbm.inject_fault (Some Zones.Dbm.Broken_up);
        Harness.run
          {
            Harness.default with
            seed = 42;
            cases = 100;
            families = [ Oracle.Ta_reach ];
          })
  in
  let divs = report.Harness.r_divergences in
  check "fault detected" true (divs <> []);
  List.iter
    (fun d ->
      match d.Harness.d_shrunk with
      | Oracle.Ta spec ->
        check "shrunk to <= 3 automata" true
          (Array.length spec.Gen.Ta_gen.s_autos <= 3);
        check "shrunk to <= 2 clocks" true (spec.Gen.Ta_gen.s_clocks <= 2);
        check "shrink made progress" true (d.Harness.d_shrink_steps > 0)
      | _ -> Alcotest.fail "divergence outside the ta-reach family")
    divs;
  (* With the fault removed, the same corpus is clean again. *)
  let clean =
    Harness.run
      {
        Harness.default with
        seed = 42;
        cases = 100;
        families = [ Oracle.Ta_reach ];
      }
  in
  check_int "clean after restore" 0 (List.length clean.Harness.r_divergences)

let test_mutation_repro_is_self_contained () =
  (* The OCaml repro printed for a shrunk divergence mentions the fully
     qualified spec type, so it can be pasted into any scope. *)
  let report =
    Fun.protect
      ~finally:(fun () -> Zones.Dbm.inject_fault None)
      (fun () ->
        Zones.Dbm.inject_fault (Some Zones.Dbm.Broken_up);
        Harness.run
          {
            Harness.default with
            seed = 42;
            cases = 100;
            families = [ Oracle.Ta_reach ];
          })
  in
  List.iter
    (fun d ->
      let repro = Oracle.to_ocaml d.Harness.d_shrunk in
      check "repro is qualified" true
        (Astring.String.is_prefix ~affix:"Quantlib.Gen.Oracle." repro);
      check "repro mentions the spec type" true
        (Astring.String.is_infix ~affix:"Quantlib.Gen.Ta_gen" repro))
    report.Harness.r_divergences

(* ------------------------------------------------------------------ *)
(* Report artifact                                                     *)
(* ------------------------------------------------------------------ *)

let test_report_json_valid () =
  let report =
    Fun.protect
      ~finally:(fun () -> Zones.Dbm.inject_fault None)
      (fun () ->
        Zones.Dbm.inject_fault (Some Zones.Dbm.Broken_up);
        Harness.run
          {
            Harness.default with
            seed = 42;
            cases = 100;
            families = [ Oracle.Ta_reach ];
          })
  in
  let j = Harness.report_json report in
  let parsed = Obs.Json.parse (Obs.Json.to_string j) in
  check "artifact round-trips" true (parsed = j);
  match Obs.Json.member "diverged" j with
  | Some (Obs.Json.Int n) ->
    check "artifact counts divergences" true
      (n = List.length report.Harness.r_divergences && n > 0)
  | _ -> Alcotest.fail "artifact missing diverged count"

let () =
  Alcotest.run "gen"
    [
      ( "rng",
        [ Alcotest.test_case "splittable reproducible" `Quick test_rng_reproducible ] );
      ( "generators",
        [
          Alcotest.test_case "cases and shrinks build" `Quick test_cases_build;
          Alcotest.test_case "case json round-trips" `Quick
            test_case_json_roundtrips;
          Alcotest.test_case "distributions sum to 1" `Quick
            test_mdp_exact_matches_probs;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "200 cases, zero divergences" `Quick test_sweep_200;
          Alcotest.test_case "1000 cases, zero divergences" `Slow
            test_sweep_1000;
          Alcotest.test_case "reproducible" `Quick test_reproducible_sweeps;
          Alcotest.test_case "(seed, index) replay" `Quick test_case_of_replay;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "fault detected and shrunk" `Quick
            test_mutation_detected_and_shrunk;
          Alcotest.test_case "repro self-contained" `Quick
            test_mutation_repro_is_self_contained;
          Alcotest.test_case "artifact json" `Quick test_report_json_valid;
        ] );
    ]
