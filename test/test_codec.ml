(* Tests for the packed state codec: bit layout, round-trips, domain
   validation, the full-width hash (vs. the polymorphic hash's ~10-word
   truncation), interning, and the generator-driven round-trip
   properties over TA / MDP / BIP states. *)

module Codec = Engine.Codec

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_arr = Alcotest.(check (array int))

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let test_packing_widths () =
  (* 31 two-bit fields = 62 bits exactly: one word. Adding one more
     opens a second word. *)
  let narrow n =
    Codec.spec
      (List.init n (fun i ->
           Codec.Bounded { name = Printf.sprintf "f%d" i; lo = 0; hi = 3 }))
  in
  check_int "31 x 2 bits fit one word" 1 (Codec.n_words (narrow 31));
  check_int "32 x 2 bits need two words" 2 (Codec.n_words (narrow 32));
  (* Word fields are unpacked: one word each, never shared. *)
  let s = Codec.spec [ Codec.Bool "b"; Codec.Word "w"; Codec.Bool "c" ] in
  check_int "bool, word, bool -> three words" 3 (Codec.n_words s)

let test_singleton_fields () =
  (* Zero-bit fields occupy no payload but still round-trip their
     (forced) value — including after a Word field, where the packer's
     cursor word does not exist. *)
  let s =
    Codec.spec
      [
        Codec.Word "w";
        Codec.Bounded { name = "t"; lo = -1; hi = -1 };
        Codec.Bounded { name = "u"; lo = 7; hi = 7 };
      ]
  in
  check_int "only the word is stored" 1 (Codec.n_words s);
  let p = Codec.encode s (fun i -> [| 42; -1; 7 |].(i)) in
  check_arr "singletons decode to their forced value" [| 42; -1; 7 |]
    (Codec.decode s p)

let test_empty_domains_rejected () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check "empty range" true
    (raises (fun () ->
         Codec.spec [ Codec.Bounded { name = "x"; lo = 1; hi = 0 } ]));
  check "empty locations" true
    (raises (fun () -> Codec.spec [ Codec.Loc { name = "a"; count = 0 } ]));
  check "empty enum" true
    (raises (fun () -> Codec.spec [ Codec.Enum { name = "e"; symbols = [||] } ]))

let test_roundtrip_mixed () =
  let s =
    Codec.spec
      [
        Codec.Bool "flag";
        Codec.Bounded { name = "temp"; lo = -10; hi = 10 };
        Codec.Loc { name = "proc"; count = 5 };
        Codec.Enum { name = "mode"; symbols = [| "idle"; "busy"; "done" |] };
        Codec.Word "cost";
      ]
  in
  let vals = [| 1; -7; 4; 2; -123456789 |] in
  let p = Codec.encode s (fun i -> vals.(i)) in
  check_arr "mixed fields round-trip" vals (Codec.decode s p);
  check "negative word preserved" true ((Codec.decode s p).(4) = -123456789)

let test_bounds_checked () =
  let s = Codec.spec [ Codec.Loc { name = "loc"; count = 3 } ] in
  let msg =
    try ignore (Codec.encode s (fun _ -> 3)); "no-exn"
    with Invalid_argument m -> m
  in
  check "error names the field" true
    (Astring.String.is_infix ~affix:"loc" msg)

(* ------------------------------------------------------------------ *)
(* Hashing: full-width vs. polymorphic truncation                      *)
(* ------------------------------------------------------------------ *)

let test_poly_hash_truncates_codec_does_not () =
  (* Two discrete states, >10 words long, differing only deep in the
     store — past the polymorphic hash's traversal budget. [Hashtbl.hash]
     collides (every such pair lands in one bucket chain); the codec's
     full-width hash separates them. This is the concrete failure mode
     the packed stores exist to avoid. *)
  let locs = [| 1; 2 |] in
  let store_a = Array.init 30 (fun i -> i) in
  let store_b = Array.copy store_a in
  store_b.(25) <- 999;
  let key_a = (locs, store_a) and key_b = (locs, store_b) in
  check "states differ" false (key_a = key_b);
  check_int "polymorphic hash collides past ~10 words"
    (Hashtbl.hash key_a) (Hashtbl.hash key_b);
  let s =
    Codec.spec
      (Codec.Loc { name = "p"; count = 4 }
       :: Codec.Loc { name = "q"; count = 4 }
       :: List.init 30 (fun i -> Codec.Word (Printf.sprintf "store[%d]" i)))
  in
  let pack (ls, st) =
    Codec.encode s (fun i -> if i < 2 then (ls : int array).(i) else st.(i - 2))
  in
  let pa = pack key_a and pb = pack key_b in
  check "codec hash separates them" false (Codec.hash pa = Codec.hash pb);
  check "codec equality agrees" false (Codec.equal pa pb)

let test_hash_memoized_and_stable () =
  let s = Codec.spec [ Codec.Word "a"; Codec.Word "b" ] in
  let p = Codec.encode s (fun i -> i * 17) in
  let q = Codec.encode s (fun i -> i * 17) in
  check "distinct allocations" false (p == q);
  check_int "same value, same hash" (Codec.hash p) (Codec.hash q);
  check "equal" true (Codec.equal p q)

(* ------------------------------------------------------------------ *)
(* Interning and the packed hashtable                                  *)
(* ------------------------------------------------------------------ *)

let test_intern_shares () =
  let s = Codec.spec [ Codec.Word "v" ] in
  let a = Codec.intern s (Codec.encode s (fun _ -> 5)) in
  let b = Codec.intern s (Codec.encode s (fun _ -> 5)) in
  let c = Codec.intern s (Codec.encode s (fun _ -> 6)) in
  check "equal states share one representative" true (a == b);
  check "distinct states do not" false (a == c)

let test_tbl () =
  let s = Codec.spec [ Codec.Word "v" ] in
  let key n = Codec.encode s (fun _ -> n) in
  let tbl = Codec.Tbl.create 16 in
  for i = 0 to 99 do
    Codec.Tbl.replace tbl (key i) (i * i)
  done;
  check_int "all bound" 100 (Codec.Tbl.length tbl);
  (* Lookups go through the memoized hash and structural equality, so a
     fresh encoding of the same value finds the binding. *)
  check_int "fresh key hits" 49 (Codec.Tbl.find tbl (key 7))

let test_to_hex () =
  let s = Codec.spec [ Codec.Word "a"; Codec.Word "b" ] in
  let p = Codec.encode s (fun i -> if i = 0 then 255 else 16) in
  let hex = Codec.to_hex p in
  check "hex shows the words" true
    (Astring.String.is_prefix ~affix:"[ff 10] h=" hex)

(* ------------------------------------------------------------------ *)
(* Generator-driven round-trip properties                              *)
(* ------------------------------------------------------------------ *)

let report (o : Gen.Codec_props.outcome) =
  List.iter (fun m -> Printf.eprintf "codec property failure: %s\n" m)
    o.failures;
  check "states were exercised" true (o.checked > 0);
  check_int "no property failures" 0 (List.length o.failures)

let test_props_ta () = report (Gen.Codec_props.check_ta (Gen.Rng.make 7))
let test_props_mdp () = report (Gen.Codec_props.check_mdp (Gen.Rng.make 7))
let test_props_bip () = report (Gen.Codec_props.check_bip (Gen.Rng.make 7))

let test_props_sweep () =
  report (Gen.Codec_props.check_all ~seed:42 ~cases:5)

let () =
  Alcotest.run "codec"
    [
      ( "layout",
        [
          Alcotest.test_case "packing widths" `Quick test_packing_widths;
          Alcotest.test_case "singleton fields" `Quick test_singleton_fields;
          Alcotest.test_case "empty domains" `Quick test_empty_domains_rejected;
          Alcotest.test_case "mixed roundtrip" `Quick test_roundtrip_mixed;
          Alcotest.test_case "bounds checked" `Quick test_bounds_checked;
        ] );
      ( "hash",
        [
          Alcotest.test_case "poly truncation vs full-width" `Quick
            test_poly_hash_truncates_codec_does_not;
          Alcotest.test_case "memoized + stable" `Quick
            test_hash_memoized_and_stable;
        ] );
      ( "intern",
        [
          Alcotest.test_case "physical sharing" `Quick test_intern_shares;
          Alcotest.test_case "packed hashtable" `Quick test_tbl;
          Alcotest.test_case "hex fingerprint" `Quick test_to_hex;
        ] );
      ( "properties",
        [
          Alcotest.test_case "ta states" `Quick test_props_ta;
          Alcotest.test_case "mdp states" `Quick test_props_mdp;
          Alcotest.test_case "bip states" `Quick test_props_bip;
          Alcotest.test_case "seeded sweep" `Quick test_props_sweep;
        ] );
    ]
