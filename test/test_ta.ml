(* Tests for the timed-automata engine: expressions, stores, the network
   builder, symbolic semantics, the checker's four query patterns, and the
   paper's train-gate case study (Fig. 1). *)

module Bound = Zones.Bound
module Dbm = Zones.Dbm
module Expr = Ta.Expr
module Store = Ta.Store
module Model = Ta.Model
module Prop = Ta.Prop
module Zone_graph = Ta.Zone_graph
module Checker = Ta.Checker
module Train_gate = Ta.Train_gate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Expr / Store                                                        *)
(* ------------------------------------------------------------------ *)

let test_expr_eval () =
  let sb = Store.create () in
  let a = Store.int_var sb ~init:7 "a" in
  let arr = Store.array_var sb "arr" 3 in
  let layout = Store.freeze sb in
  let store = Store.initial layout in
  store.(arr.Store.off + 1) <- 42;
  let e = Expr.Add (Expr.var a, Expr.index arr (Expr.Int 1)) in
  check_int "7+42" 49 (Expr.eval store e);
  check_int "ite" 1
    (Expr.eval store (Expr.Ite (Expr.Gt (Expr.var a, Expr.Int 3), Expr.Int 1, Expr.Int 2)));
  check "bool ops" true
    (Expr.eval_bool store
       (Expr.And (Expr.Le (Expr.Int 1, Expr.Int 2), Expr.Not (Expr.Int 0))));
  (try
     ignore (Expr.eval store (Expr.index arr (Expr.Int 5)));
     Alcotest.fail "expected bounds error"
   with Expr.Eval_error _ -> ());
  try
    ignore (Expr.eval store (Expr.Div (Expr.Int 1, Expr.Int 0)));
    Alcotest.fail "expected division error"
  with Expr.Eval_error _ -> ()

let test_store_layout () =
  let sb = Store.create () in
  let a = Store.int_var sb ~init:3 "a" in
  let arr = Store.array_var sb ~init:1 "arr" 4 in
  let b = Store.int_var sb "b" in
  let layout = Store.freeze sb in
  check_int "size" 6 (Store.size layout);
  check_int "offsets" 0 a.Store.off;
  check_int "array after scalar" 1 arr.Store.off;
  check_int "b last" 5 b.Store.off;
  let init = Store.initial layout in
  check_int "init scalar" 3 init.(0);
  check_int "init array" 1 init.(2);
  check_int "init default" 0 init.(5);
  check "find" true (Store.find layout "arr" == arr);
  let sb2 = Store.create () in
  ignore (Store.int_var sb2 "x");
  try
    ignore (Store.int_var sb2 "x");
    Alcotest.fail "expected duplicate error"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Small hand-built networks                                           *)
(* ------------------------------------------------------------------ *)

(* One automaton: A (inv x<=5) --[x>=3]--> B. *)
let single_automaton () =
  let b = Model.builder () in
  let x = Model.fresh_clock b "x" in
  let a = Model.automaton b "P" in
  let la = Model.location a "A" ~invariant:[ Model.clock_le x 5 ] in
  let lb = Model.location a "B" in
  Model.edge a ~src:la ~dst:lb ~clock_guard:[ Model.clock_ge x 3 ] ();
  (Model.build b, x)

let test_initial_zone () =
  let net, _x = single_automaton () in
  let st =
    Zone_graph.initial net ~extra:(Dbm.Extra_m net.Model.max_consts)
  in
  (* Delay-closed within the invariant: x in [0,5]. *)
  check "x=4 in initial" true (Dbm.satisfies (st.zone :> Dbm.t) [| 0.; 4. |]);
  check "x=6 not" false (Dbm.satisfies (st.zone :> Dbm.t) [| 0.; 6. |])

let test_single_reach () =
  let net, _ = single_automaton () in
  let q = Prop.Possibly (Prop.loc net "P" "B") in
  let r = Checker.check net q in
  check "B reachable" true r.holds;
  check "trace present" true (r.trace <> None);
  (* B with x < 3 unreachable: guard forces x>=3 and B has no invariant,
     but the zone on entry has x>=3. *)
  let q2 =
    Prop.Possibly
      (Prop.And (Prop.loc net "P" "B", Prop.Clock (Model.clock_lt 1 3)))
  in
  check "B with x<3 unreachable" false (Checker.check net q2).holds;
  let q3 =
    Prop.Invariant
      (Prop.Imply (Prop.loc net "P" "A", Prop.Clock (Model.clock_le 1 5)))
  in
  check "invariant holds in A" true (Checker.check net q3).holds

(* Binary synchronisation: sender S0->S1 on c!, receiver R0->R1 on c?. *)
let test_binary_sync () =
  let b = Model.builder () in
  let c = Model.channel b "c" in
  let s = Model.automaton b "S" in
  let s0 = Model.location s "S0" in
  let s1 = Model.location s "S1" in
  Model.edge s ~src:s0 ~dst:s1 ~sync:(Model.Emit c) ();
  let r = Model.automaton b "R" in
  let r0 = Model.location r "R0" in
  let r1 = Model.location r "R1" in
  Model.edge r ~src:r0 ~dst:r1 ~sync:(Model.Receive c) ();
  let net = Model.build b in
  (* Both move together: S1&R0 unreachable, S1&R1 reachable. *)
  let s1f = Prop.loc net "S" "S1" and r0f = Prop.loc net "R" "R0" in
  let r1f = Prop.loc net "R" "R1" in
  check "joint move" true
    (Checker.check net (Prop.Possibly (Prop.And (s1f, r1f)))).holds;
  check "no lone move" false
    (Checker.check net (Prop.Possibly (Prop.And (s1f, r0f)))).holds

(* Broadcast: one emitter, two receivers, one with a false data guard. *)
let test_broadcast () =
  let b = Model.builder () in
  let c = Model.channel b ~kind:Model.Broadcast "c" in
  let sb = Model.store b in
  let flag = Store.int_var sb "flag" in
  let s = Model.automaton b "S" in
  let s0 = Model.location s "S0" in
  let s1 = Model.location s "S1" in
  Model.edge s ~src:s0 ~dst:s1 ~sync:(Model.Emit c) ();
  let mk_receiver name guard =
    let r = Model.automaton b name in
    let r0 = Model.location r "R0" in
    let r1 = Model.location r "R1" in
    Model.edge r ~src:r0 ~dst:r1 ?guard ~sync:(Model.Receive c) ()
  in
  mk_receiver "R1" None;
  mk_receiver "R2" (Some (Expr.Eq (Expr.var flag, Expr.Int 1)));
  let net = Model.build b in
  (* flag=0: R2's guard is false, so only R1 receives. *)
  let f =
    Prop.And
      ( Prop.loc net "S" "S1",
        Prop.And (Prop.loc net "R1" "R1", Prop.loc net "R2" "R0") )
  in
  check "partial broadcast" true (Checker.check net (Prop.Possibly f)).holds;
  let f2 = Prop.And (Prop.loc net "S" "S1", Prop.loc net "R1" "R0") in
  check "enabled receiver must join" false
    (Checker.check net (Prop.Possibly f2)).holds

(* Committed locations take priority over other components' moves: while
   P sits in its committed location (phase = 1), Q must not fire, so Q can
   never observe phase = 1. *)
let test_committed () =
  let b = Model.builder () in
  let sb = Model.store b in
  let phase = Store.int_var sb "phase" in
  let seen = Store.int_var sb ~init:(-1) "seen" in
  let p = Model.automaton b "P" in
  let p0 = Model.location p "P0" in
  let pc = Model.location p "PC" ~kind:Model.Committed in
  let p1 = Model.location p "P1" in
  Model.edge p ~src:p0 ~dst:pc
    ~updates:[ Model.Assign (Expr.Cell phase, Expr.Int 1) ] ();
  Model.edge p ~src:pc ~dst:p1
    ~updates:[ Model.Assign (Expr.Cell phase, Expr.Int 2) ] ();
  let q = Model.automaton b "Q" in
  let q0 = Model.location q "Q0" in
  let q1 = Model.location q "Q1" in
  Model.edge q ~src:q0 ~dst:q1
    ~updates:[ Model.Assign (Expr.Cell seen, Expr.var phase) ] ();
  let net = Model.build b in
  check "Q never fires during the committed phase" true
    (Checker.check net
       (Prop.Invariant (Prop.Data (Expr.Neq (Expr.var seen, Expr.Int 1)))))
      .holds;
  check "Q can observe phase 0 and 2" true
    (Checker.check net
       (Prop.Possibly (Prop.Data (Expr.Eq (Expr.var seen, Expr.Int 2)))))
      .holds

(* Urgent location: no time may pass, so a guard x>=1 is unreachable. *)
let test_urgent_location () =
  let b = Model.builder () in
  let x = Model.fresh_clock b "x" in
  let p = Model.automaton b "P" in
  let p0 = Model.location p "P0" ~kind:Model.Urgent in
  let p1 = Model.location p "P1" in
  Model.edge p ~src:p0 ~dst:p1 ~clock_guard:[ Model.clock_ge x 1 ] ();
  let net = Model.build b in
  check "urgent forbids delay" false
    (Checker.check net (Prop.Possibly (Prop.loc net "P" "P1"))).holds

(* Deadlock detection is exact on zones: without an invariant a state may
   delay past its only guard window and get stuck. *)
let test_deadlock_exact () =
  let build ~with_invariant =
    let b = Model.builder () in
    let x = Model.fresh_clock b "x" in
    let p = Model.automaton b "P" in
    let inv = if with_invariant then [ Model.clock_le x 3 ] else [] in
    let p0 = Model.location p "A" ~invariant:inv in
    Model.edge p ~src:p0 ~dst:p0
      ~clock_guard:[ Model.clock_ge x 2; Model.clock_le x 3 ]
      ~updates:[ Model.Reset (x, 0) ] ();
    Model.build b
  in
  check "no invariant: deadlock (delay past window)" false
    (Checker.check (build ~with_invariant:false) Prop.NoDeadlock).holds;
  check "invariant x<=3: deadlock-free" true
    (Checker.check (build ~with_invariant:true) Prop.NoDeadlock).holds

(* Liveness: idling forever must count as a counterexample. *)
let test_liveness_idle () =
  let build ~with_invariant =
    let b = Model.builder () in
    let x = Model.fresh_clock b "x" in
    let p = Model.automaton b "P" in
    let inv = if with_invariant then [ Model.clock_le x 5 ] else [] in
    let p0 = Model.location p "A" ~invariant:inv in
    let p1 = Model.location p "B" in
    Model.edge p ~src:p0 ~dst:p1 ~clock_guard:[ Model.clock_ge x 1 ] ();
    Model.build b
  in
  let q net = Prop.Eventually (Prop.loc net "P" "B") in
  let lazy_net = build ~with_invariant:false in
  check "can idle forever: A<> B fails" false
    (Checker.check lazy_net (q lazy_net)).holds;
  let forced_net = build ~with_invariant:true in
  check "invariant forces progress: A<> B holds" true
    (Checker.check forced_net (q forced_net)).holds

let test_liveness_cycle () =
  (* A and B alternate forever (invariants force moves) and C is only
     reachable from A: A<> C must fail on the A-B cycle. *)
  let b = Model.builder () in
  let x = Model.fresh_clock b "x" in
  let p = Model.automaton b "P" in
  let la = Model.location p "A" ~invariant:[ Model.clock_le x 1 ] in
  let lb = Model.location p "B" ~invariant:[ Model.clock_le x 1 ] in
  let lc = Model.location p "C" in
  Model.edge p ~src:la ~dst:lb ~updates:[ Model.Reset (x, 0) ] ();
  Model.edge p ~src:lb ~dst:la ~updates:[ Model.Reset (x, 0) ] ();
  Model.edge p ~src:la ~dst:lc ();
  let net = Model.build b in
  check "cycle avoiding C: A<> C fails" false
    (Checker.check net (Prop.Eventually (Prop.loc net "P" "C"))).holds;
  check "E<> C still true" true
    (Checker.check net (Prop.Possibly (Prop.loc net "P" "C"))).holds

(* ------------------------------------------------------------------ *)
(* Train-gate (Fig. 1)                                                 *)
(* ------------------------------------------------------------------ *)

let test_train_gate_safety () =
  let net = Train_gate.make ~n_trains:3 in
  let r = Checker.check net (Train_gate.safety net) in
  check "safety holds (3 trains)" true r.holds;
  check "explored some states" true (r.stats.Checker.visited > 10)

let test_train_gate_deadlock () =
  let net = Train_gate.make ~n_trains:3 in
  check "deadlock-free (3 trains)" true
    (Checker.check net Train_gate.no_deadlock).holds

let test_train_gate_liveness () =
  let net = Train_gate.make ~n_trains:2 in
  check "Train0.Appr --> Train0.Cross" true
    (Checker.check net (Train_gate.liveness net 0)).holds;
  check "Train1.Appr --> Train1.Cross" true
    (Checker.check net (Train_gate.liveness net 1)).holds

let test_train_gate_queue_bound () =
  let net = Train_gate.make ~n_trains:3 in
  let len = Store.find net.Model.layout "len" in
  let q =
    Prop.Invariant (Prop.Data (Expr.Le (Expr.var len, Expr.Int 3)))
  in
  check "queue never overflows" true (Checker.check net q).holds

let test_train_gate_crossing_reachable () =
  let net = Train_gate.make ~n_trains:2 in
  check "some train crosses" true
    (Checker.check net (Prop.Possibly (Train_gate.cross_formula net 0))).holds;
  (* Two trains never cross together. *)
  let both =
    Prop.And (Train_gate.cross_formula net 0, Train_gate.cross_formula net 1)
  in
  check "never both" false (Checker.check net (Prop.Possibly both)).holds

(* A broken gate that never stops trains lets two trains cross at once. *)
let test_broken_gate_unsafe () =
  let n_trains = 2 in
  let b = Model.builder () in
  let appr = Array.init n_trains (fun i -> Model.channel b (Printf.sprintf "appr%d" i)) in
  let stop = Array.init n_trains (fun i -> Model.channel b (Printf.sprintf "stop%d" i)) in
  let go = Array.init n_trains (fun i -> Model.channel b (Printf.sprintf "go%d" i)) in
  let leave = Array.init n_trains (fun i -> Model.channel b (Printf.sprintf "leave%d" i)) in
  for i = 0 to n_trains - 1 do
    let x = Model.fresh_clock b (Printf.sprintf "x%d" i) in
    let a = Model.automaton b (Printf.sprintf "Train%d" i) in
    let safe = Model.location a "Safe" in
    let appr_l = Model.location a "Appr" ~invariant:[ Model.clock_le x 20 ] in
    let stop_l = Model.location a "Stop" in
    let start_l = Model.location a "Start" ~invariant:[ Model.clock_le x 15 ] in
    let cross_l = Model.location a "Cross" ~invariant:[ Model.clock_le x 5 ] in
    Model.set_initial a safe;
    Model.edge a ~src:safe ~dst:appr_l ~sync:(Model.Emit appr.(i))
      ~updates:[ Model.Reset (x, 0) ] ();
    Model.edge a ~src:appr_l ~dst:stop_l ~clock_guard:[ Model.clock_le x 10 ]
      ~sync:(Model.Receive stop.(i)) ();
    Model.edge a ~src:stop_l ~dst:start_l ~sync:(Model.Receive go.(i))
      ~updates:[ Model.Reset (x, 0) ] ();
    Model.edge a ~src:start_l ~dst:cross_l ~clock_guard:[ Model.clock_ge x 7 ]
      ~updates:[ Model.Reset (x, 0) ] ();
    Model.edge a ~src:appr_l ~dst:cross_l ~clock_guard:[ Model.clock_ge x 10 ]
      ~updates:[ Model.Reset (x, 0) ] ();
    Model.edge a ~src:cross_l ~dst:safe ~clock_guard:[ Model.clock_ge x 3 ]
      ~sync:(Model.Emit leave.(i)) ()
  done;
  (* Gate that acknowledges everything and never stops anyone. *)
  let g = Model.automaton b "Gate" in
  let idle = Model.location g "Idle" in
  for e = 0 to n_trains - 1 do
    Model.edge g ~src:idle ~dst:idle ~sync:(Model.Receive appr.(e)) ();
    Model.edge g ~src:idle ~dst:idle ~sync:(Model.Receive leave.(e)) ()
  done;
  let net = Model.build b in
  let both =
    Prop.And
      (Prop.loc net "Train0" "Cross", Prop.loc net "Train1" "Cross")
  in
  let r = Checker.check net (Prop.Possibly both) in
  check "broken gate lets both cross" true r.holds;
  check "witness trace" true (r.trace <> None)

(* Subsumption ablation: same verdicts, usually fewer states. *)
let test_subsumption_ablation () =
  let net = Train_gate.make ~n_trains:2 in
  let with_sub = Checker.check ~subsumption:true net (Train_gate.safety net) in
  let without = Checker.check ~subsumption:false net (Train_gate.safety net) in
  check "same verdict" true (with_sub.holds = without.holds);
  check "subsumption explores no more states" true
    (with_sub.stats.Checker.visited <= without.stats.Checker.visited)

(* Two paths producing the exact same symbolic state: the second insert is
   rejected as already covered (equal counts as inclusion). *)
let test_subsumption_equal_zone () =
  let b = Model.builder () in
  let x = Model.fresh_clock b "x" in
  let p = Model.automaton b "P" in
  let la = Model.location p "A" in
  let lb = Model.location p "B" in
  Model.edge p ~src:la ~dst:lb ~updates:[ Model.Reset (x, 0) ] ();
  Model.edge p ~src:la ~dst:lb ~updates:[ Model.Reset (x, 0) ] ();
  let net = Model.build b in
  let r = Checker.check net (Prop.Possibly Prop.False) in
  check "exhaustive run" false r.holds;
  check "equal re-reach subsumed" true (r.stats.Checker.subsumed >= 1);
  check "nothing evicted" true (r.stats.Checker.dropped = 0)

(* Successively weaker guards into the same location: each later zone
   strictly contains the earlier stored one, which must be evicted. *)
let test_subsumption_drops_weaker () =
  let b = Model.builder () in
  let x = Model.fresh_clock b "x" in
  let p = Model.automaton b "P" in
  let la = Model.location p "A" in
  let lb = Model.location p "B" in
  (* Successors are generated in reverse edge order, so the tightest zone
     (x>=3) is stored first and each later, strictly larger zone evicts
     the one before it. *)
  Model.edge p ~src:la ~dst:lb ~clock_guard:[ Model.clock_ge x 1 ] ();
  Model.edge p ~src:la ~dst:lb ~clock_guard:[ Model.clock_ge x 2 ] ();
  Model.edge p ~src:la ~dst:lb ~clock_guard:[ Model.clock_ge x 3 ] ();
  let net = Model.build b in
  (* Under Extra-M the three zones stay distinct; the default LU seal
     would collapse them (no upper guards, so every lower bound widens
     to x>0) and nothing would need evicting. *)
  let r = Checker.check ~extrapolation:`K net (Prop.Possibly Prop.False) in
  check "exhaustive run" false r.holds;
  (* x>=2 evicts the stored x>=3 zone, then x>=1 evicts x>=2. *)
  check "widening zones evict stored ones" true (r.stats.Checker.dropped >= 2)

(* max_states truncation surfaces as the historical Failure, both on the
   subsumption path and on the exact liveness graph. *)
let test_max_states_truncation () =
  let net = Train_gate.make ~n_trains:2 in
  (try
     ignore (Checker.check ~max_states:3 net (Train_gate.safety net));
     Alcotest.fail "expected Failure"
   with Failure msg ->
     check "reachability message" true
       (Astring.String.is_infix ~affix:"state limit" msg));
  try
    ignore (Checker.check ~max_states:3 net (Train_gate.liveness net 0));
    Alcotest.fail "expected Failure"
  with Failure msg ->
    check "liveness message" true
      (Astring.String.is_infix ~affix:"state limit" msg)

(* Extrapolation ablation: every seal-time abstraction must reach the
   same verdict, and coarser abstractions cannot enlarge the zone graph.
   Sealing also makes pointer equality the common comparison. *)
let test_extrapolation_ablation () =
  let net = Ta.Fischer.make ~n:3 () in
  let q = Ta.Fischer.mutex net in
  let none = Checker.check ~extrapolation:`None net q in
  let k = Checker.check ~extrapolation:`K net q in
  let lu = Checker.check ~extrapolation:`Lu net q in
  check "same verdict (k)" true (none.holds = k.holds);
  check "same verdict (lu)" true (k.holds = lu.holds);
  check "k does not enlarge the graph" true
    (k.stats.Checker.visited <= none.stats.Checker.visited);
  check "lu does not enlarge the graph" true
    (lu.stats.Checker.visited <= k.stats.Checker.visited);
  check "sealed fast path taken" true (lu.stats.Checker.dbm_phys_eq > 0);
  check "phys-eq is the common case" true
    (lu.stats.Checker.dbm_phys_eq > lu.stats.Checker.dbm_full_cmp)


(* ------------------------------------------------------------------ *)
(* Fischer's protocol                                                  *)
(* ------------------------------------------------------------------ *)

module Fischer = Ta.Fischer

let test_fischer_mutex () =
  List.iter
    (fun n ->
      let net = Fischer.make ~n () in
      check
        (Printf.sprintf "mutex holds for %d processes" n)
        true
        (Checker.check net (Fischer.mutex net)).holds;
      check "cs reachable" true (Checker.check net (Fischer.cs_reachable net)).holds)
    [ 2; 3 ]

let test_fischer_broken () =
  (* The textbook bug: waiting only >= k (instead of > k) breaks mutual
     exclusion. *)
  let net = Fischer.make ~strict_wait:false ~n:2 () in
  let r = Checker.check net (Fischer.mutex net) in
  check "non-strict wait violates mutex" false r.holds;
  check "counterexample trace" true (r.trace <> None)

let test_fischer_deadlock_free () =
  let net = Fischer.make ~n:2 () in
  check "deadlock-free" true (Checker.check net Fischer.no_deadlock).holds

let test_fischer_k_scaling () =
  (* Larger k only changes timing, not correctness. *)
  let net = Fischer.make ~k:5 ~n:2 () in
  check "mutex with k=5" true (Checker.check net (Fischer.mutex net)).holds




let test_dot_export () =
  let net = Train_gate.make ~n_trains:2 in
  let dot = Ta.Dot.of_network net in
  let has affix = Astring.String.is_infix ~affix dot in
  check "digraph" true (has "digraph network");
  check "clusters per automaton" true
    (has "cluster_0" && has "cluster_2" (* 2 trains + gate *));
  check "sync labels" true (has "appr0!" && has "appr0?");
  check "balanced braces" true
    (let count c = String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 dot in
     count '{' = count '}')




let test_rich_trace () =
  let net, _ = single_automaton () in
  let r =
    Checker.check ~rich_trace:true net (Prop.Possibly (Prop.loc net "P" "B"))
  in
  match r.Checker.trace with
  | Some (step :: _) ->
    check "label present" true (Astring.String.is_infix ~affix:"P.A->B" step);
    check "state annotation present" true (Astring.String.is_infix ~affix:"@" step);
    check "zone rendered" true (Astring.String.is_infix ~affix:"x" step)
  | Some [] | None -> Alcotest.fail "expected a witness trace"

(* ------------------------------------------------------------------ *)
(* Zone-graph internals: enabling zones and weakest preconditions      *)
(* ------------------------------------------------------------------ *)

let test_move_enabling_zone_wp () =
  (* Edge A -> B resets x := 0 but B requires y <= 2 (y not reset): the
     enabling zone must carry the target invariant back over the reset. *)
  let b = Model.builder () in
  let x = Model.fresh_clock b "x" in
  let y = Model.fresh_clock b "y" in
  let p = Model.automaton b "P" in
  let la = Model.location p "A" in
  let lb = Model.location p "B" ~invariant:[ Model.clock_le y 2 ] in
  Model.edge p ~src:la ~dst:lb ~updates:[ Model.Reset (x, 0) ] ();
  let net = Model.build b in
  let locs = [| la |] and store = [||] in
  match Zone_graph.moves net locs store with
  | [ mv ] ->
    let g = Zone_graph.move_enabling_zone net locs store mv in
    check "y=1 enabled" true (Dbm.satisfies g [| 0.; 5.; 1. |]);
    check "y=3 disabled (target invariant)" false
      (Dbm.satisfies g [| 0.; 5.; 3. |]);
    check "x unconstrained (reset)" true (Dbm.satisfies g [| 0.; 100.; 2. |])
  | _ -> Alcotest.fail "expected exactly one move"

let test_move_enabling_zone_impossible () =
  (* Reset x := 5 into an invariant x <= 2: the move can never fire. *)
  let b = Model.builder () in
  let x = Model.fresh_clock b "x" in
  let p = Model.automaton b "P" in
  let la = Model.location p "A" in
  let lb = Model.location p "B" ~invariant:[ Model.clock_le x 2 ] in
  Model.edge p ~src:la ~dst:lb ~updates:[ Model.Reset (x, 5) ] ();
  let net = Model.build b in
  (match Zone_graph.moves net [| la |] [||] with
   | [ mv ] ->
     check "never enabled" true
       (Dbm.is_empty (Zone_graph.move_enabling_zone net [| la |] [||] mv))
   | _ -> Alcotest.fail "expected one move");
  (* And the checker agrees: B is unreachable. *)
  check "B unreachable" false
    (Checker.check net (Prop.Possibly (Prop.loc net "P" "B"))).holds

let test_deadlocked_direct () =
  (* A state whose only guard window is already past is deadlocked. *)
  let b = Model.builder () in
  let x = Model.fresh_clock b "x" in
  let p = Model.automaton b "P" in
  let la = Model.location p "A" in
  let lb = Model.location p "B" in
  Model.edge p ~src:la ~dst:lb
    ~clock_guard:[ Model.clock_ge x 1; Model.clock_le x 2 ] ();
  let net = Model.build b in
  let init =
    Zone_graph.initial net ~extra:(Dbm.Extra_m net.Model.max_consts)
  in
  (* The delay-closed initial zone includes x > 2 valuations. *)
  check "initial state contains deadlocked valuations" true
    (Checker.deadlocked net init);
  (* Restricting to the window removes them (re-sealed: states carry
     canon handles only). *)
  let inside =
    { init with
      Zone_graph.zone =
        Dbm.seal (Dbm.constrain (init.Zone_graph.zone :> Dbm.t) 1 0 (Bound.le 2))
    }
  in
  check "within the window: not deadlocked" false
    (Checker.deadlocked net inside)

(* ------------------------------------------------------------------ *)
(* Network union (parallel composition)                                *)
(* ------------------------------------------------------------------ *)

let half_sender () =
  let b = Model.builder () in
  let c = Model.channel b "c" in
  let y = Model.fresh_clock b "y" in
  let s = Model.automaton b "S" in
  let s0 = Model.location s "S0" in
  let s1 = Model.location s "S1" in
  Model.edge s ~src:s0 ~dst:s1 ~clock_guard:[ Model.clock_ge y 1 ]
    ~sync:(Model.Emit c) ();
  Model.build b

let half_receiver name =
  let b = Model.builder () in
  let c = Model.channel b "c" in
  let sb = Model.store b in
  let got = Store.int_var sb "got" in
  let r = Model.automaton b name in
  let r0 = Model.location r "R0" in
  let r1 = Model.location r "R1" in
  Model.edge r ~src:r0 ~dst:r1 ~sync:(Model.Receive c)
    ~updates:[ Model.Assign (Expr.Cell got, Expr.Int 1) ] ();
  Model.build b

let test_union_synchronises () =
  let net = Model.union (half_sender ()) (half_receiver "R") in
  check_int "clocks merged" 1 net.Model.n_clocks;
  check_int "channel merged" 1 (Array.length net.Model.channels);
  let joint =
    Prop.And
      ( Prop.loc net "S" "S1",
        Prop.And
          ( Prop.loc net "R" "R1",
            Prop.Data (Expr.Eq (Expr.var (Store.find net.Model.layout "got"), Expr.Int 1)) ) )
  in
  check "joint move across union" true
    (Checker.check net (Prop.Possibly joint)).holds;
  let early =
    Prop.And (Prop.loc net "S" "S1", Prop.Clock (Model.clock_lt 1 1))
  in
  check "guard survives remap" false
    (Checker.check net (Prop.Possibly early)).holds

let test_union_validation () =
  (try
     ignore (Model.union (half_receiver "R") (half_receiver "R"));
     Alcotest.fail "expected duplicate component error"
   with Invalid_argument _ -> ());
  let with_prim () =
    let b = Model.builder () in
    let p = Model.automaton b "P" in
    let l0 = Model.location p "L0" in
    Model.edge p ~src:l0 ~dst:l0 ~updates:[ Model.Prim ("nop", fun _ -> ()) ] ();
    Model.build b
  in
  try
    ignore (Model.union (half_sender ()) (with_prim ()));
    Alcotest.fail "expected Prim rejection"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Observer-clock time-bounded queries                                 *)
(* ------------------------------------------------------------------ *)

module Observer = Ta.Observer

let test_observer_bounded_reach () =
  (* B is reachable only after x >= 3: within 2 it is not, within 3 it
     is (at exactly t = 3). *)
  let net, _ = single_automaton () in
  let b_f = Prop.loc net "P" "B" in
  check "not within 2" false (Observer.possibly_within net b_f ~bound:2).Checker.holds;
  check "within 3" true (Observer.possibly_within net b_f ~bound:3).Checker.holds;
  check "within 10" true (Observer.possibly_within net b_f ~bound:10).Checker.holds

let test_observer_invariant_until () =
  let net, _ = single_automaton () in
  let a_f = Prop.loc net "P" "A" in
  (* Up to time 2 the system is necessarily still in A... *)
  check "A holds until 2" true
    (Observer.invariant_until net a_f ~bound:2).Checker.holds;
  (* ...but by time 4 it may have moved to B. *)
  check "A can be left by 4" false
    (Observer.invariant_until net a_f ~bound:4).Checker.holds

let test_observer_train_gate () =
  let net = Ta.Train_gate.make ~n_trains:2 in
  let cross = Ta.Train_gate.cross_formula net 0 in
  (* Minimum crossing time is 10 (matches the CORA result). *)
  check "no crossing within 9" false
    (Observer.possibly_within net cross ~bound:9).Checker.holds;
  check "crossing within 10" true
    (Observer.possibly_within net cross ~bound:10).Checker.holds

(* ------------------------------------------------------------------ *)
(* Random-network properties                                           *)
(* ------------------------------------------------------------------ *)

(* Small random closed networks (shared-variable free): reachability
   verdicts must not depend on the subsumption optimisation. *)
let random_net rng =
  let n_autos = 1 + Random.State.int rng 2 in
  let b = Model.builder () in
  for a = 0 to n_autos - 1 do
    let x = Model.fresh_clock b (Printf.sprintf "x%d" a) in
    let pa = Model.automaton b (Printf.sprintf "P%d" a) in
    let n_locs = 2 + Random.State.int rng 2 in
    let locs =
      Array.init n_locs (fun l ->
          let invariant =
            if Random.State.int rng 3 = 0 then
              [ Model.clock_le x (1 + Random.State.int rng 4) ]
            else []
          in
          Model.location pa (Printf.sprintf "l%d" l) ~invariant)
    in
    for _ = 1 to 1 + Random.State.int rng 4 do
      let src = locs.(Random.State.int rng n_locs) in
      let dst = locs.(Random.State.int rng n_locs) in
      let clock_guard =
        if Random.State.bool rng then
          [ Model.clock_ge x (Random.State.int rng 5) ]
        else []
      in
      let updates =
        if Random.State.bool rng then [ Model.Reset (x, 0) ] else []
      in
      Model.edge pa ~src ~dst ~clock_guard ~updates ()
    done
  done;
  Model.build b

let prop_subsumption_preserves_verdicts =
  QCheck.Test.make ~name:"subsumption preserves reachability verdicts"
    ~count:150
    (QCheck.make
       QCheck.Gen.(
         map
           (fun seed ->
             let rng = Random.State.make [| seed |] in
             (random_net rng, seed))
           (int_bound 1_000_000))
       ~print:(fun (_, seed) -> Printf.sprintf "net seed=%d" seed))
    (fun (net, seed) ->
      let rng = Random.State.make [| seed; 1 |] in
      let a = Random.State.int rng (Array.length net.Model.automata) in
      let locs = net.Model.automata.(a).Model.locations in
      let l = Random.State.int rng (Array.length locs) in
      let q = Prop.Possibly (Prop.Loc (a, l)) in
      let on = (Checker.check ~subsumption:true net q).Checker.holds in
      let off = (Checker.check ~subsumption:false net q).Checker.holds in
      on = off)

let () =
  Alcotest.run "ta"
    [
      ( "expr-store",
        [
          Alcotest.test_case "expr eval" `Quick test_expr_eval;
          Alcotest.test_case "store layout" `Quick test_store_layout;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "initial zone" `Quick test_initial_zone;
          Alcotest.test_case "single reach" `Quick test_single_reach;
          Alcotest.test_case "binary sync" `Quick test_binary_sync;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "committed" `Quick test_committed;
          Alcotest.test_case "urgent location" `Quick test_urgent_location;
        ] );
      ( "checker",
        [
          Alcotest.test_case "deadlock exact" `Quick test_deadlock_exact;
          Alcotest.test_case "liveness idle" `Quick test_liveness_idle;
          Alcotest.test_case "liveness cycle" `Quick test_liveness_cycle;
        ] );
      ( "rich-trace",
        [ Alcotest.test_case "annotated witness" `Quick test_rich_trace ] );
      ( "zone-graph",
        [
          Alcotest.test_case "wp of target invariant" `Quick
            test_move_enabling_zone_wp;
          Alcotest.test_case "impossible move" `Quick
            test_move_enabling_zone_impossible;
          Alcotest.test_case "deadlocked direct" `Quick test_deadlocked_direct;
        ] );
      ( "union",
        [
          Alcotest.test_case "synchronises" `Quick test_union_synchronises;
          Alcotest.test_case "validation" `Quick test_union_validation;
        ] );
      ( "dot",
        [ Alcotest.test_case "export" `Quick test_dot_export ] );
      ( "observer",
        [
          Alcotest.test_case "bounded reach" `Quick test_observer_bounded_reach;
          Alcotest.test_case "invariant until" `Quick test_observer_invariant_until;
          Alcotest.test_case "train-gate bound" `Quick test_observer_train_gate;
        ] );
      ( "random",
        [ QCheck_alcotest.to_alcotest prop_subsumption_preserves_verdicts ] );
      ( "fischer",
        [
          Alcotest.test_case "mutex" `Quick test_fischer_mutex;
          Alcotest.test_case "broken variant" `Quick test_fischer_broken;
          Alcotest.test_case "deadlock-free" `Quick test_fischer_deadlock_free;
          Alcotest.test_case "k scaling" `Quick test_fischer_k_scaling;
        ] );
      ( "train-gate",
        [
          Alcotest.test_case "safety" `Quick test_train_gate_safety;
          Alcotest.test_case "deadlock-free" `Quick test_train_gate_deadlock;
          Alcotest.test_case "liveness" `Slow test_train_gate_liveness;
          Alcotest.test_case "queue bound" `Quick test_train_gate_queue_bound;
          Alcotest.test_case "crossing" `Quick test_train_gate_crossing_reachable;
          Alcotest.test_case "broken gate unsafe" `Quick test_broken_gate_unsafe;
          Alcotest.test_case "subsumption ablation" `Quick test_subsumption_ablation;
        ] );
      ( "engine-integration",
        [
          Alcotest.test_case "equal zone subsumed" `Quick
            test_subsumption_equal_zone;
          Alcotest.test_case "weaker zones dropped" `Quick
            test_subsumption_drops_weaker;
          Alcotest.test_case "max-states truncation" `Quick
            test_max_states_truncation;
          Alcotest.test_case "extrapolation ablation" `Quick
            test_extrapolation_ablation;
        ] );
    ]
