(* Tests for the shared exploration engine: the pluggable state stores
   (discrete / exact / subsume / best-cost), the search orders, trace
   reconstruction, truncation reporting, the node arena, and hash-consed
   DBM sealing. *)

module Dbm = Zones.Dbm
module Bound = Zones.Bound
module Store = Engine.Store
module Core = Engine.Core
module Stats = Engine.Stats
module Arena = Engine.Arena
module Codec = Engine.Codec

(* A one-word codec for plain-int test states: every store test runs
   both packed (codec keys, memoized hash) and poly (Hashtbl.hash)
   flavours through the same assertions. *)
let ispec = Codec.spec [ Codec.Word "v" ]
let ikey n = Codec.encode ispec (fun _ -> n)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Hand-built zones over two clocks                                    *)
(* ------------------------------------------------------------------ *)

(* Store zones are sealed canon handles — the store API accepts nothing
   else. *)
let raw_x_le n = Dbm.constrain (Dbm.universal ~clocks:2) 1 0 (Bound.le n)
let zone_x_le n = Dbm.seal (raw_x_le n)
let zone_y_le n = Dbm.seal (Dbm.constrain (Dbm.universal ~clocks:2) 2 0 (Bound.le n))

(* ------------------------------------------------------------------ *)
(* Stores                                                              *)
(* ------------------------------------------------------------------ *)

let run_discrete_store s =
  (match s.Store.insert 1 ~id:0 with
   | Store.Added { dropped; _ } -> check_int "no evictions" 0 dropped
   | _ -> Alcotest.fail "first insert must be Added");
  (match s.Store.insert 2 ~id:1 with
   | Store.Added _ -> ()
   | _ -> Alcotest.fail "distinct state must be Added");
  (match s.Store.insert 1 ~id:2 with
   | Store.Dup id -> check_int "dup reports original id" 0 id
   | _ -> Alcotest.fail "repeat insert must be Dup");
  check_int "two states stored" 2 (s.Store.size ());
  check "discrete stores are never stale" false (s.Store.stale 1);
  check "words estimate is positive" true (s.Store.words () > 0)

let test_discrete_store () = run_discrete_store (Store.discrete ~key:ikey ())

let test_discrete_store_poly () =
  run_discrete_store (Store.Poly.discrete ~key:Fun.id ())

let run_exact_store s =
  (match s.Store.insert (0, zone_x_le 3) ~id:0 with
   | Store.Added _ -> ()
   | _ -> Alcotest.fail "first insert must be Added");
  (* Equal zone under the same key: duplicate, pointing at the original. *)
  (match s.Store.insert (0, zone_x_le 3) ~id:1 with
   | Store.Dup id -> check_int "dup id" 0 id
   | _ -> Alcotest.fail "equal zone must be Dup");
  (* A strictly larger zone is still a distinct state for an exact store. *)
  (match s.Store.insert (0, zone_x_le 5) ~id:1 with
   | Store.Added _ -> ()
   | _ -> Alcotest.fail "unequal zone must be Added");
  (* Same zone under another key is unrelated. *)
  (match s.Store.insert (1, zone_x_le 3) ~id:2 with
   | Store.Added _ -> ()
   | _ -> Alcotest.fail "other key must be Added");
  check_int "three states stored" 3 (s.Store.size ())

let test_exact_store () =
  run_exact_store (Store.exact ~key:(fun (k, _) -> ikey k) ~zone:snd ())

let test_exact_store_poly () =
  run_exact_store (Store.Poly.exact ~key:fst ~zone:snd ())

let run_subsume_store s =
  (match s.Store.insert (0, zone_x_le 1) ~id:0 with
   | Store.Added _ -> ()
   | _ -> Alcotest.fail "first insert must be Added");
  (* Incomparable zone: kept alongside. *)
  (match s.Store.insert (0, zone_y_le 1) ~id:1 with
   | Store.Added { dropped; _ } -> check_int "incomparable evicts nothing" 0 dropped
   | _ -> Alcotest.fail "incomparable zone must be Added");
  check_int "two incomparable zones stored" 2 (s.Store.size ());
  (* Equal to a stored zone: covered. *)
  (match s.Store.insert (0, zone_x_le 1) ~id:2 with
   | Store.Covered -> ()
   | _ -> Alcotest.fail "equal zone must be Covered");
  (* Strictly inside a stored zone: covered. *)
  (match s.Store.insert (0, Dbm.seal (Dbm.constrain (zone_x_le 1 :> Dbm.t) 2 0 (Bound.le 0))) ~id:2 with
   | Store.Covered -> ()
   | _ -> Alcotest.fail "included zone must be Covered");
  (* Strictly containing both stored zones: both must be dropped. *)
  (match s.Store.insert (0, Dbm.seal (Dbm.universal ~clocks:2)) ~id:2 with
   | Store.Added { dropped; _ } -> check_int "both stored zones evicted" 2 dropped
   | _ -> Alcotest.fail "superset zone must be Added");
  check_int "only the superset remains" 1 (s.Store.size ());
  (* Zones under other keys are untouched by eviction. *)
  (match s.Store.insert (1, zone_x_le 1) ~id:3 with
   | Store.Added { dropped; _ } -> check_int "other key untouched" 0 dropped
   | _ -> Alcotest.fail "other key must be Added")

let test_subsume_store () =
  run_subsume_store (Store.subsume ~key:(fun (k, _) -> ikey k) ~zone:snd ())

let test_subsume_store_poly () =
  run_subsume_store (Store.Poly.subsume ~key:fst ~zone:snd ())

let run_best_cost_store s =
  (match s.Store.insert (1, 5) ~id:0 with
   | Store.Added _ -> ()
   | _ -> Alcotest.fail "first insert must be Added");
  (* Worse cost: covered by the cheaper stored entry. *)
  (match s.Store.insert (1, 7) ~id:1 with
   | Store.Covered -> ()
   | _ -> Alcotest.fail "worse cost must be Covered");
  (* Better cost: re-opens the state rather than evicting a rival. *)
  (match s.Store.insert (1, 3) ~id:1 with
   | Store.Added { dropped; reopened } ->
     check_int "re-opening is not an eviction" 0 dropped;
     check "re-opening reported" true reopened
   | _ -> Alcotest.fail "better cost must be Added");
  check "superseded entry is stale" true (s.Store.stale (1, 5));
  check "current best is not stale" false (s.Store.stale (1, 3));
  check_int "one key stored" 1 (s.Store.size ())

let test_best_cost_store () =
  run_best_cost_store (Store.best_cost ~key:(fun (k, _) -> ikey k) ~cost:snd ())

let test_best_cost_store_poly () =
  run_best_cost_store (Store.Poly.best_cost ~key:fst ~cost:snd ())

let test_store_size_hint () =
  (* A tiny hint must not limit capacity: the table grows by doubling. *)
  let s = Store.discrete ~size_hint:1 ~key:ikey () in
  for i = 0 to 999 do
    match s.Store.insert i ~id:i with
    | Store.Added _ -> ()
    | _ -> Alcotest.fail "fresh state must be Added"
  done;
  check_int "all stored past the hint" 1000 (s.Store.size ())

(* ------------------------------------------------------------------ *)
(* The core loop                                                        *)
(* ------------------------------------------------------------------ *)

(* A small diamond over ints: 0 -> {1, 2} -> 3, plus a tail 3 -> 4. *)
let diamond n =
  if n = 0 then [ ("a", 1); ("b", 2) ]
  else if n = 1 || n = 2 then [ ("c", 3) ]
  else if n = 3 then [ ("d", 4) ]
  else []

let run_diamond ?order ~on_state () =
  Core.run ?order
    ~store:(Store.discrete ~key:ikey ())
    ~successors:diamond ~on_state ~init:0 ()

let test_core_bfs_trace () =
  let out = run_diamond ~on_state:(fun n -> if n = 4 then Some n else None) () in
  (match out.Core.found with
   | Some (4, steps) ->
     (* BFS reaches 3 first through 1 (discovery order). *)
     Alcotest.(check (list string))
       "witness labels" [ "a"; "c"; "d" ]
       (List.map fst steps);
     Alcotest.(check (list int)) "witness states" [ 1; 3; 4 ] (List.map snd steps)
   | _ -> Alcotest.fail "expected to find 4");
  check_int "five states discovered" 5 (Array.length out.Core.states);
  check_int "initial state is id 0" 0 out.Core.states.(0);
  (* 3 and 4 popped? visited counts pops up to the hit. *)
  check "visited all five" true (out.Core.stats.Stats.visited = 5);
  check "one duplicate (3 via 2)" true (out.Core.stats.Stats.subsumed >= 1);
  check "frontier was tracked" true (out.Core.stats.Stats.peak_frontier >= 2);
  check "not truncated" false out.Core.stats.Stats.truncated

let test_core_exhaustive () =
  let out = run_diamond ~on_state:(fun _ -> None) () in
  check "nothing found" true (out.Core.found = None);
  check_int "all states visited" 5 out.Core.stats.Stats.visited;
  check_int "all states stored" 5 out.Core.stats.Stats.stored

let test_core_dfs () =
  let order = ref [] in
  let out =
    run_diamond ~order:Core.Dfs
      ~on_state:(fun n ->
        order := n :: !order;
        None)
      ()
  in
  check "dfs drains" true (out.Core.found = None);
  (match List.rev !order with
   | 0 :: next :: _ ->
     (* DFS pops the most recently pushed successor first. *)
     check_int "last successor first" 2 next
   | _ -> Alcotest.fail "expected at least two pops")

let test_core_priority () =
  (* Priority by value: pops ascending regardless of push order. *)
  let popped = ref [] in
  let succ n = if n = 0 then [ ("x", 9); ("x", 4); ("x", 7) ] else [] in
  let (_ : (int, string, unit) Core.outcome) =
    Core.run ~order:(Core.Priority Fun.id)
      ~store:(Store.discrete ~key:ikey ())
      ~successors:succ
      ~on_state:(fun n ->
        popped := n :: !popped;
        None)
      ~init:0 ()
  in
  Alcotest.(check (list int)) "ascending pops" [ 0; 4; 7; 9 ] (List.rev !popped)

let test_core_dijkstra () =
  (* Weighted graph: 0 -5-> 2, 0 -1-> 1, 1 -1-> 2, 2 -1-> 3. The cheap
     route to 3 costs 3; the direct edge to 2 is re-opened at cost 2. *)
  let edges = function
    | 0 -> [ (5, 2); (1, 1) ]
    | 1 -> [ (1, 2) ]
    | 2 -> [ (1, 3) ]
    | _ -> []
  in
  let successors (n, c) =
    List.map (fun (w, m) -> (Printf.sprintf "%d->%d" n m, (m, c + w))) (edges n)
  in
  let out =
    Core.run
      ~order:(Core.Priority snd)
      ~store:(Store.best_cost ~key:(fun (n, _) -> ikey n) ~cost:snd ())
      ~successors
      ~on_state:(fun (n, c) -> if n = 3 then Some c else None)
      ~init:(0, 0) ()
  in
  (match out.Core.found with
   | Some (cost, steps) ->
     check_int "optimal cost" 3 cost;
     Alcotest.(check (list string))
       "optimal path" [ "0->1"; "1->2"; "2->3" ]
       (List.map fst steps)
   | None -> Alcotest.fail "3 must be reachable");
  (* The cost-5 entry for node 2 was superseded and skipped at pop. *)
  check "re-opening recorded" true (out.Core.stats.Stats.reopened >= 1)

let test_core_truncation () =
  (* An infinite chain: the engine must stop and report, not raise. *)
  let out =
    Core.run ~max_states:10
      ~store:(Store.discrete ~key:ikey ())
      ~successors:(fun n -> [ ("s", n + 1) ])
      ~on_state:(fun _ -> None)
      ~init:0 ()
  in
  check "truncated reported" true out.Core.stats.Stats.truncated;
  check "nothing found" true (out.Core.found = None);
  check "visited bounded" true (out.Core.stats.Stats.visited <= 11)

let test_core_record_edges () =
  let out =
    Core.run ~record_edges:true
      ~store:(Store.discrete ~key:ikey ())
      ~successors:diamond
      ~on_state:(fun _ -> None)
      ~init:0 ()
  in
  check_int "edge rows per state" 5 (Array.length out.Core.edges);
  (* Both edges into 3 survive, including the duplicate via 2. *)
  let into_3 =
    Array.fold_left
      (fun acc row ->
        acc + List.length (List.filter (fun (_, dst) -> dst = 3) row))
      0 out.Core.edges
  in
  check_int "duplicate edge recorded" 2 into_3;
  (* Generation order is preserved per node. *)
  Alcotest.(check (list string))
    "labels out of 0" [ "a"; "b" ]
    (List.map fst out.Core.edges.(0))

let test_core_rejecting_init () =
  let store = Store.discrete ~key:ikey () in
  (match store.Store.insert 0 ~id:0 with
   | Store.Added _ -> ()
   | _ -> Alcotest.fail "setup insert");
  try
    ignore
      (Core.run ~store
         ~successors:(fun _ -> [])
         ~on_state:(fun _ -> None)
         ~init:0 ());
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Arena                                                                *)
(* ------------------------------------------------------------------ *)

let test_arena_growth () =
  let a = Arena.create () in
  for i = 0 to 999 do
    check_int "append-only ids" i (Arena.add a i)
  done;
  check_int "size" 1000 (Arena.size a);
  check_int "random access" 123 (Arena.get a 123);
  check_int "to_array keeps order" 999 (Arena.to_array a).(999);
  (try
     ignore (Arena.get a 1000);
     Alcotest.fail "expected out-of-range failure"
   with Invalid_argument _ -> ());
  let seen = ref 0 in
  Arena.iteri (fun i v -> if i = v then incr seen) a;
  check_int "iteri covers everything" 1000 !seen

let test_arena_keyed () =
  let a = Arena.Keyed.create ~size_hint:4 () in
  let k n = ikey n in
  (match Arena.Keyed.intern a (k 7) 70 with
   | 0, true -> ()
   | _ -> Alcotest.fail "first intern must be fresh id 0");
  (match Arena.Keyed.intern a (k 8) 80 with
   | 1, true -> ()
   | _ -> Alcotest.fail "second intern must be fresh id 1");
  (* Same key again (a distinct packed value, equal words): known id,
     original payload kept. *)
  (match Arena.Keyed.intern a (k 7) 999 with
   | 0, false -> ()
   | _ -> Alcotest.fail "re-intern must answer the existing id");
  check_int "payload survives re-intern" 70 (Arena.Keyed.get a 0);
  check_int "size counts unique keys" 2 (Arena.Keyed.size a);
  check "find known" true (Arena.Keyed.find a (k 8) = Some 1);
  check "find unknown" true (Arena.Keyed.find a (k 9) = None);
  check_int "to_array in id order" 80 (Arena.Keyed.to_array a).(1);
  check "words estimate positive" true (Arena.Keyed.words a > 0)

(* ------------------------------------------------------------------ *)
(* Hash-consed DBMs                                                     *)
(* ------------------------------------------------------------------ *)

let test_seal_physical_equality () =
  let z1 = zone_x_le 3 in
  let z2 = zone_x_le 3 in
  check "equal zones share one representative" true (z1 == z2);
  check "distinct zones stay distinct" false (z1 == zone_x_le 4);
  (* The pointer-equality fast path is counted, not scanned. *)
  Dbm.reset_cmp_stats ();
  check "subset via fast path" true (Dbm.subset (z1 :> Dbm.t) (z2 :> Dbm.t));
  check "equal via fast path" true (Dbm.equal (z1 :> Dbm.t) (z2 :> Dbm.t));
  let c = Dbm.cmp_stats () in
  check_int "two fast-path hits" 2 c.Dbm.phys_hits;
  check_int "no full scans" 0 c.Dbm.full_scans;
  (* Structurally equal but un-sealed: full scan. *)
  check "slow path still correct" true (Dbm.equal (raw_x_le 3) (raw_x_le 3));
  check "full scan counted" true ((Dbm.cmp_stats ()).Dbm.full_scans >= 1);
  (* Sealed handles carry the memoized hash used by the fused store key. *)
  check "memoized hash agrees" true
    (Dbm.hash (z1 :> Dbm.t) = Dbm.hash (z2 :> Dbm.t))

let test_stats_json () =
  let s =
    {
      Stats.visited = 3; stored = 2; subsumed = 1; dropped = 0;
      reopened = 0; peak_frontier = 2; store_words = 7; truncated = false;
      time_s = 0.5; dbm_phys_eq = 4; dbm_full_cmp = 6; dbm_lattice_cmp = 9;
      phases = [];
    }
  in
  let j = Stats.to_json s in
  List.iter
    (fun affix -> check affix true (Astring.String.is_infix ~affix j))
    [
      "\"visited\":3"; "\"stored\":2"; "\"subsumed\":1"; "\"dropped\":0";
      "\"reopened\":0"; "\"peak_frontier\":2"; "\"store_words\":7";
      "\"truncated\":false";
      "\"dbm_phys_eq\":4"; "\"dbm_full_cmp\":6"; "\"dbm_lattice_cmp\":9";
      "\"store_hit_rate\":";
    ]

(* ------------------------------------------------------------------ *)
(* Sharded parallel core                                               *)
(* ------------------------------------------------------------------ *)

(* Route by decoded state value: every diamond edge changes the value,
   so with [v mod shards] every successor is a cross-shard hand-off —
   the mailbox protocol is exercised on each transition. *)
let shard_by_value nsh pk = (Codec.decode ispec pk).(0) mod nsh

let run_diamond_sharded ?pool ?record_edges ?on_state ~shards () =
  let on_state = Option.value on_state ~default:(fun _ -> None) in
  Core.run_sharded ~shards ~shard_of:(shard_by_value shards) ?pool
    ?record_edges
    ~store:(fun () -> Store.discrete_keyed ())
    ~key:ikey ~successors:diamond ~on_state ~init:0 ()

let test_sharded_exhaustive () =
  let out = run_diamond_sharded ~shards:4 () in
  check "nothing found" true (out.Core.found = None);
  check_int "all states discovered" 5 (Array.length out.Core.states);
  check_int "initial state is id 0" 0 out.Core.states.(0);
  check_int "all visited" 5 out.Core.stats.Stats.visited;
  check_int "all stored" 5 out.Core.stats.Stats.stored;
  check_int "one duplicate (3 via 2)" 1 out.Core.stats.Stats.subsumed;
  check "scheduling times are pinned" true
    (out.Core.stats.Stats.time_s = 0.0 && out.Core.stats.Stats.phases = []);
  match out.Core.par with
  | None -> Alcotest.fail "sharded outcome must carry par info"
  | Some p ->
    check_int "every edge crossed shards" 5 p.Core.handoffs;
    check "rounds counted" true (p.Core.rounds >= 3);
    check "mailboxes saw traffic" true (p.Core.mailbox_hwm >= 1);
    check_int "no pool, no steals" 0 p.Core.steals

let test_sharded_witness_trace () =
  let out =
    run_diamond_sharded ~shards:4
      ~on_state:(fun n -> if n = 4 then Some n else None)
      ()
  in
  match out.Core.found with
  | Some (4, steps) ->
    (* Canonical winner: node 3 is first merged from the lower source
       shard (via 1), exactly the sequential BFS witness. *)
    Alcotest.(check (list string))
      "witness labels" [ "a"; "c"; "d" ]
      (List.map fst steps);
    Alcotest.(check (list int)) "witness states" [ 1; 3; 4 ] (List.map snd steps)
  | _ -> Alcotest.fail "expected to find 4"

(* Full structural identity across pool sizes — the determinism
   contract on states, parents, edges, stats and the deterministic
   par fields (steals excluded: scheduling-dependent by design). *)
let test_sharded_pool_identity () =
  let run pool = run_diamond_sharded ?pool ~record_edges:true ~shards:4 () in
  let a = run None in
  let b = Par.Pool.with_pool ~jobs:3 (fun p -> run (Some p)) in
  check "states identical" true (a.Core.states = b.Core.states);
  check "parents identical" true (a.Core.parents = b.Core.parents);
  check "edges identical" true (a.Core.edges = b.Core.edges);
  Alcotest.(check string)
    "stats identical" (Stats.to_json a.Core.stats) (Stats.to_json b.Core.stats);
  match (a.Core.par, b.Core.par) with
  | Some pa, Some pb ->
    check_int "rounds identical" pa.Core.rounds pb.Core.rounds;
    check_int "handoffs identical" pa.Core.handoffs pb.Core.handoffs;
    check_int "mailbox hwm identical" pa.Core.mailbox_hwm pb.Core.mailbox_hwm
  | _ -> Alcotest.fail "both runs must carry par info"

let test_sharded_record_edges () =
  let out = run_diamond_sharded ~record_edges:true ~shards:4 () in
  check_int "edge rows per state" 5 (Array.length out.Core.edges);
  let id_of v =
    let found = ref (-1) in
    Array.iteri (fun i s -> if s = v then found := i) out.Core.states;
    !found
  in
  (* Both edges into 3 survive — including the cross-shard duplicate
     via 2, whose destination id travelled back in the producer's
     resolution slot. *)
  let into_3 =
    Array.fold_left
      (fun acc row ->
        acc + List.length (List.filter (fun (_, dst) -> dst = id_of 3) row))
      0 out.Core.edges
  in
  check_int "duplicate edge recorded" 2 into_3;
  Alcotest.(check (list string))
    "labels out of 0 in generation order" [ "a"; "b" ]
    (List.map fst out.Core.edges.(id_of 0))

let test_sharded_best_cost () =
  (* The Dijkstra diamond of [test_core_dijkstra], in quiescent sharded
     mode: a worse-cost witness (via the direct 0 -5-> 2 edge) is found
     in an earlier round, then superseded by the cheap path — [prefer]
     must settle on the optimum. *)
  let edges = function
    | 0 -> [ (5, 2); (1, 1) ]
    | 1 -> [ (1, 2) ]
    | 2 -> [ (1, 3) ]
    | _ -> []
  in
  let successors (n, c) =
    List.map (fun (w, m) -> (Printf.sprintf "%d->%d" n m, (m, c + w))) (edges n)
  in
  let out =
    Core.run_sharded ~shards:4
      ~shard_of:(shard_by_value 4)
      ~stop_on_found:false ~prefer:compare
      ~store:(fun () -> Store.best_cost_keyed ~cost:snd ())
      ~key:(fun (n, _) -> ikey n)
      ~successors
      ~on_state:(fun (n, c) -> if n = 3 then Some c else None)
      ~init:(0, 0) ()
  in
  (match out.Core.found with
   | Some (cost, steps) ->
     check_int "optimal cost" 3 cost;
     Alcotest.(check (list string))
       "optimal path" [ "0->1"; "1->2"; "2->3" ]
       (List.map fst steps)
   | None -> Alcotest.fail "3 must be reachable");
  check "re-opening recorded" true (out.Core.stats.Stats.reopened >= 1)

(* jobs=1 vs jobs=4 byte-identity on real models, through the full
   checker: verdict, witness trace and rendered stats JSON. *)
let test_sharded_checker_identity () =
  List.iter
    (fun n ->
      let net = Ta.Fischer.make ~n () in
      List.iter
        (fun (qname, q) ->
          let r1 = Ta.Checker.check ~jobs:1 net q in
          let r4 = Ta.Checker.check ~jobs:4 net q in
          check (Printf.sprintf "fischer-%d %s verdict" n qname) r1.Ta.Checker.holds
            r4.Ta.Checker.holds;
          check
            (Printf.sprintf "fischer-%d %s trace" n qname)
            true
            (r1.Ta.Checker.trace = r4.Ta.Checker.trace);
          Alcotest.(check string)
            (Printf.sprintf "fischer-%d %s stats bytes" n qname)
            (Stats.to_json r1.Ta.Checker.stats)
            (Stats.to_json r4.Ta.Checker.stats))
        [ ("mutex", Ta.Fischer.mutex net); ("deadlock-free", Ta.Fischer.no_deadlock) ])
    [ 4; 5 ]

(* The memory budget is summed over shard stores and polled at round
   barriers: the truncation point — and therefore the whole reported
   prefix — must not depend on the pool size. *)
let test_sharded_mem_budget_identity () =
  let net = Ta.Fischer.make ~n:4 () in
  let q = Ta.Fischer.mutex net in
  let run jobs =
    match Ta.Checker.check ~jobs ~mem_budget_words:60_000 net q with
    | (_ : Ta.Checker.result) -> Alcotest.fail "budget must truncate the run"
    | exception Ta.Checker.Truncated { reason = `Mem_budget; stats } -> stats
    | exception Ta.Checker.Truncated { reason = `Stop; _ } ->
      Alcotest.fail "wrong truncation reason"
  in
  let s1 = run 1 in
  let s4 = run 4 in
  check "budget truncation reported" true s1.Ta.Checker.truncated;
  Alcotest.(check string)
    "truncated stats identical across pool sizes" (Stats.to_json s1)
    (Stats.to_json s4)

let () =
  Alcotest.run "engine"
    [
      ( "stores",
        [
          Alcotest.test_case "discrete" `Quick test_discrete_store;
          Alcotest.test_case "exact" `Quick test_exact_store;
          Alcotest.test_case "subsume" `Quick test_subsume_store;
          Alcotest.test_case "best-cost" `Quick test_best_cost_store;
          Alcotest.test_case "discrete (poly)" `Quick test_discrete_store_poly;
          Alcotest.test_case "exact (poly)" `Quick test_exact_store_poly;
          Alcotest.test_case "subsume (poly)" `Quick test_subsume_store_poly;
          Alcotest.test_case "best-cost (poly)" `Quick
            test_best_cost_store_poly;
          Alcotest.test_case "size hint" `Quick test_store_size_hint;
        ] );
      ( "core",
        [
          Alcotest.test_case "bfs trace" `Quick test_core_bfs_trace;
          Alcotest.test_case "exhaustive" `Quick test_core_exhaustive;
          Alcotest.test_case "dfs order" `Quick test_core_dfs;
          Alcotest.test_case "priority order" `Quick test_core_priority;
          Alcotest.test_case "dijkstra" `Quick test_core_dijkstra;
          Alcotest.test_case "truncation" `Quick test_core_truncation;
          Alcotest.test_case "record edges" `Quick test_core_record_edges;
          Alcotest.test_case "rejecting init" `Quick test_core_rejecting_init;
        ] );
      ( "arena",
        [
          Alcotest.test_case "growth" `Quick test_arena_growth;
          Alcotest.test_case "keyed" `Quick test_arena_keyed;
        ] );
      ( "hashcons",
        [
          Alcotest.test_case "sealing" `Quick test_seal_physical_equality;
          Alcotest.test_case "stats json" `Quick test_stats_json;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "exhaustive cross-shard" `Quick
            test_sharded_exhaustive;
          Alcotest.test_case "witness trace" `Quick test_sharded_witness_trace;
          Alcotest.test_case "pool identity" `Quick test_sharded_pool_identity;
          Alcotest.test_case "record edges" `Quick test_sharded_record_edges;
          Alcotest.test_case "best cost" `Quick test_sharded_best_cost;
          Alcotest.test_case "checker jobs identity" `Slow
            test_sharded_checker_identity;
          Alcotest.test_case "mem budget identity" `Quick
            test_sharded_mem_budget_identity;
        ] );
    ]
