(* Reproduction harness: regenerates every quantitative artefact of the
   paper (experiment ids E1-E6 of DESIGN.md), runs the ablation benches,
   and measures each analysis with Bechamel.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- e1 .. e6 | ablations | micro *)

open Quantlib

let line () = print_endline (String.make 78 '-')

let header title =
  line ();
  Printf.printf "%s\n" title;
  line ()

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* E1 - verification queries of Section II.A.a (Fig. 1 model)          *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1  Train-gate verification (Section II.A.a; paper: all satisfied)";
  let n_trains = 4 in
  let net = Ta.Train_gate.make ~n_trains in
  Printf.printf "%-44s %-10s %9s %9s\n" "query" "verdict" "states" "time(s)";
  let show name q =
    let r, dt = timed (fun () -> Ta.Checker.check net q) in
    Printf.printf "%-44s %-10s %9d %9.2f\n" name
      (if r.Ta.Checker.holds then "satisfied" else "VIOLATED")
      r.Ta.Checker.stats.Ta.Checker.visited dt
  in
  show "A[] at most one train crossing (safety)" (Ta.Train_gate.safety net);
  show "A[] not deadlock" Ta.Train_gate.no_deadlock;
  (* State-space scaling of the safety check. *)
  Printf.printf "\nsafety-check scaling:";
  List.iter
    (fun n ->
      let netn = Ta.Train_gate.make ~n_trains:n in
      let r, dt =
        timed (fun () -> Ta.Checker.check netn (Ta.Train_gate.safety netn))
      in
      Printf.printf "  %d trains: %d states (%.2fs)" n
        r.Ta.Checker.stats.Ta.Checker.visited dt)
    [ 2; 3; 4; 5 ];
  print_newline ();
  (* Fischer's protocol: the other classic UPPAAL verification target. *)
  let fischer = Ta.Fischer.make ~n:3 () in
  let rf, dtf = timed (fun () -> Ta.Checker.check fischer (Ta.Fischer.mutex fischer)) in
  Printf.printf "%-44s %-10s %9d %9.2f\n" "Fischer (3 procs): mutual exclusion"
    (if rf.Ta.Checker.holds then "satisfied" else "VIOLATED")
    rf.Ta.Checker.stats.Ta.Checker.visited dtf;
  let broken = Ta.Fischer.make ~strict_wait:false ~n:2 () in
  let rb, dtb = timed (fun () -> Ta.Checker.check broken (Ta.Fischer.mutex broken)) in
  Printf.printf "%-44s %-10s %9d %9.2f\n" "Fischer, non-strict wait (injected bug)"
    (if rb.Ta.Checker.holds then "satisfied" else "VIOLATED")
    rb.Ta.Checker.stats.Ta.Checker.visited dtb;
  (* Liveness needs the exact graph; run it on 3 trains as the paper's
     property list (one query per train). *)
  let net3 = Ta.Train_gate.make ~n_trains:3 in
  for i = 0 to 2 do
    let r, dt =
      timed (fun () -> Ta.Checker.check net3 (Ta.Train_gate.liveness net3 i))
    in
    Printf.printf "%-44s %-10s %9d %9.2f\n"
      (Printf.sprintf "Train(%d).Appr --> Train(%d).Cross  (3 trains)" i i)
      (if r.Ta.Checker.holds then "satisfied" else "VIOLATED")
      r.Ta.Checker.stats.Ta.Checker.visited dt
  done

(* ------------------------------------------------------------------ *)
(* E2 - controller synthesis (Figs. 2-3)                               *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2  Train-game controller synthesis (UPPAAL-TIGA, Figs. 2-3)";
  Printf.printf "%-14s %10s %10s %10s %12s %9s\n" "trains" "states" "unsafe"
    "winning" "closed-loop" "time(s)";
  let run_game label net =
    let safe = Games.Train_game.safe net in
    let (s, closed), dt =
      timed (fun () ->
          let s = Games.solve net (Games.Safety safe) in
          (s, Games.closed_loop_safe s ~safe))
    in
    let unsafe =
      Array.fold_left
        (fun acc st -> if safe st then acc else acc + 1)
        0 s.Games.graph.Games.Digital.states
    in
    Printf.printf "%-14s %10d %10d %10d %12s %9.2f\n" label
      (Array.length s.Games.graph.Games.Digital.states)
      unsafe (Games.winning_count s)
      (if s.Games.initial_winning && closed then "safe" else "FAILED")
      dt
  in
  run_game "2 (paper)" (Games.Train_game.make ~n_trains:2 ());
  run_game "3 (compact)" (Games.Train_game.make ~constants:`Compact ~n_trains:3 ());
  (* Reachability objective: every train completes a crossing. *)
  let net = Games.Train_game.make ~n_trains:2 () in
  let target = Games.Train_game.all_crossed_once net in
  let r, dt = timed (fun () -> Games.solve net (Games.Reach target)) in
  Printf.printf
    "reach objective (2 trains): initial %s, closed loop reaches target: %b (%.2fs)\n"
    (if r.Games.initial_winning then "winning" else "losing")
    (Games.closed_loop_reaches r ~target)
    dt

(* ------------------------------------------------------------------ *)
(* E3 - Fig. 4: cumulative distribution of crossing times              *)
(* ------------------------------------------------------------------ *)

let e3 () =
  header
    "E3  Fig. 4: Pr[<=100](<> Train(i).Cross), 6 trains, rates 1+id (SMC)";
  let n_trains = 6 in
  let runs = 800 in
  let net = Ta.Train_gate.make ~n_trains in
  let config =
    { Smc.Stochastic.rates = (fun auto _ -> 1.0 +. float_of_int auto) }
  in
  let grid = List.init 8 (fun k -> 10.0 +. (12.0 *. float_of_int k)) in
  Printf.printf "%-8s" "t";
  List.iter (fun t -> Printf.printf "%8.0f" t) grid;
  Printf.printf "\n";
  let _, dt =
    timed (fun () ->
        for i = 0 to n_trains - 1 do
          let series =
            Smc.cdf ~config ~runs ~seed:(300 + i) net
              ~goal:(Ta.Train_gate.cross_formula net i) ~horizon:100.0 ~grid
          in
          Printf.printf "Train %d " i;
          List.iter (fun (_, p) -> Printf.printf "%8.2f" p) series;
          print_newline ()
        done)
  in
  let stats =
    Smc.hitting_time ~config ~runs:400 ~seed:77 net
      ~goal:(Ta.Train_gate.cross_formula net 0) ~horizon:200.0
  in
  Printf.printf
    "expected first crossing of Train 0: mu=%.1f sigma=%.1f (hit fraction %.2f)\n"
    stats.Smc.mean stats.Smc.std stats.Smc.hit_fraction;
  Printf.printf
    "(paper's Fig. 4 shape: all CDFs 0 at t=10, ordered by rate, ~1.0 by t=94;\n\
    \ %d runs/train, %.1fs total)\n"
    runs dt

(* ------------------------------------------------------------------ *)
(* E4 - Table I: BRP results for (N, MAX, TD) = (16, 2, 1)             *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4  Table I: BRP (N, MAX, TD) = (16, 2, 1)";
  let t = Modest.Brp.make () in
  let mt, dt_mctau = timed (fun () -> Modest.Brp.run_mctau t) in
  let mc, dt_mcpta = timed (fun () -> Modest.Brp.run_mcpta t) in
  let md, dt_modes = timed (fun () -> Modest.Brp.run_modes t) in
  let ib = function
    | `Zero -> "0"
    | `Interval (a, b) -> Printf.sprintf "[%g, %g]" a b
  in
  Printf.printf "%-10s %-16s %-16s %-16s %-30s\n" "property" "paper(mcpta)"
    "mctau" "mcpta" "modes (10k runs)";
  let row p paper mctau mcpta modes =
    Printf.printf "%-10s %-16s %-16s %-16s %-30s\n" p paper mctau mcpta modes
  in
  let frac k = Printf.sprintf "%d/%d satisfied" k md.Modest.Brp.md_runs in
  row "TA1" "true"
    (string_of_bool mt.Modest.Brp.mt_ta1)
    (string_of_bool mc.Modest.Brp.mc_ta1)
    (frac md.Modest.Brp.md_ta1_ok);
  row "TA2" "true"
    (string_of_bool mt.Modest.Brp.mt_ta2)
    (string_of_bool mc.Modest.Brp.mc_ta2)
    (frac md.Modest.Brp.md_ta2_ok);
  let obs k = Printf.sprintf "%d observations" k in
  row "PA" "0" (ib mt.Modest.Brp.mt_pa)
    (Printf.sprintf "%g" mc.Modest.Brp.mc_pa)
    (obs md.Modest.Brp.md_pa_obs);
  row "PB" "0" (ib mt.Modest.Brp.mt_pb)
    (Printf.sprintf "%g" mc.Modest.Brp.mc_pb)
    (obs md.Modest.Brp.md_pb_obs);
  row "P1" "4.233e-4" (ib mt.Modest.Brp.mt_p1)
    (Printf.sprintf "%.4e" mc.Modest.Brp.mc_p1)
    (obs md.Modest.Brp.md_p1_obs);
  row "P2" "2.645e-5" (ib mt.Modest.Brp.mt_p2)
    (Printf.sprintf "%.4e" mc.Modest.Brp.mc_p2)
    (obs md.Modest.Brp.md_p2_obs);
  row "Dmax" "9.996e-1" (ib mt.Modest.Brp.mt_dmax)
    (Printf.sprintf "%.4f" mc.Modest.Brp.mc_dmax)
    (Printf.sprintf "%d/%d within 64" md.Modest.Brp.md_dmax_obs
       md.Modest.Brp.md_runs);
  row "Emax" "33.473" "n/a"
    (Printf.sprintf "%.3f" mc.Modest.Brp.mc_emax)
    (Printf.sprintf "mu=%.3f sigma=%.3f" md.Modest.Brp.md_emax_mean
       md.Modest.Brp.md_emax_std);
  Printf.printf
    "\nback-end wall times: mctau %.2fs, mcpta %.2fs, modes %.2fs (10k runs)\n\
     (paper: mctau is the quick check, mcpta '<1min', modes 'significantly longer')\n"
    dt_mctau dt_mcpta dt_modes;
  (* The second MODEST case study: randomized contention resolution
     (Section III cites inherently probabilistic protocols, ref. [14]). *)
  let bo = Modest.Backoff.make () in
  let mean, std = Modest.Backoff.simulate_mean_time bo ~runs:3000 ~seed:13 in
  Printf.printf
    "\nrandomized backoff (2 slots): P(resolved<=2)=%.3f P(<=4)=%.3f \
     E[time] mcpta=%.3f, modes mu=%.3f sigma=%.3f (closed form: 1/2, 3/4, 4)\n"
    (Modest.Backoff.success_within bo ~bound:2)
    (Modest.Backoff.success_within bo ~bound:4)
    (Modest.Backoff.expected_resolution_time bo)
    mean std

(* ------------------------------------------------------------------ *)
(* E5 - DALA (Fig. 6): verification and fault injection                *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5  DALA functional level in BIP (Section IV, Fig. 6)";
  let d = Bip.Dala.make ~controlled:true () in
  Printf.printf "modules: %s + R2C\n"
    (String.concat ", " d.Bip.Dala.module_names);
  let report, dt = timed (fun () -> Bip.Dfinder.prove d.Bip.Dala.sys) in
  Printf.printf
    "deadlock-freedom: %s (%d traps, %d semiflows, %d candidates, %.2fs)\n"
    (match report.Bip.Dfinder.verdict with
     | Bip.Dfinder.Proved -> "PROVED compositionally (D-Finder)"
     | Bip.Dfinder.Inconclusive _ -> "inconclusive")
    report.Bip.Dfinder.n_traps report.Bip.Dfinder.n_semiflows
    report.Bip.Dfinder.n_candidates_checked dt;
  let small =
    Bip.Dala.make ~modules:[ "RFLEX"; "NDD"; "POM"; "Battery"; "Science" ]
      ~controlled:true ()
  in
  let (ok, _), dt2 =
    timed (fun () ->
        Bip.Engine.invariant_holds small.Bip.Dala.sys (Bip.Dala.safety_ok small))
  in
  Printf.printf "exact safety check (5-module subsystem): %s (%.2fs)\n"
    (if ok then "holds on all reachable states" else "VIOLATED")
    dt2;
  Printf.printf "\n%-14s %8s %8s %12s %12s\n" "configuration" "runs" "steps"
    "faults" "violations";
  let inject cfg =
    let r, _ =
      timed (fun () -> Bip.Dala.inject_faults cfg ~runs:50 ~steps:300 ~seed:11)
    in
    Printf.printf "%-14s %8d %8d %12d %12d\n"
      (if cfg.Bip.Dala.controlled then "with R2C" else "without R2C")
      r.Bip.Dala.runs r.Bip.Dala.steps_per_run r.Bip.Dala.faults_injected
      r.Bip.Dala.violations
  in
  inject d;
  inject (Bip.Dala.make ~controlled:false ());
  print_endline
    "(paper: 'the controller successfully stops the robot from reaching\n\
    \ undesired/unsafe states' under fault injection)"

(* ------------------------------------------------------------------ *)
(* E6 - model-based testing (Section V)                                *)
(* ------------------------------------------------------------------ *)

let timed_server_variant ~lo ~hi =
  let b = Ta.Model.builder () in
  let y = Ta.Model.fresh_clock b "y" in
  let req = Ta.Model.channel b "req" in
  let resp = Ta.Model.channel b "resp" in
  let s = Ta.Model.automaton b "Server" in
  let idle = Ta.Model.location s "Idle" in
  let busy = Ta.Model.location s "Busy" ~invariant:[ Ta.Model.clock_le y hi ] in
  Ta.Model.edge s ~src:idle ~dst:busy ~sync:(Ta.Model.Receive req)
    ~updates:[ Ta.Model.Reset (y, 0) ] ();
  Ta.Model.edge s ~src:busy ~dst:idle
    ~clock_guard:[ Ta.Model.clock_ge y lo ]
    ~sync:(Ta.Model.Emit resp) ();
  let env = Ta.Model.automaton b "Env" in
  let e0 = Ta.Model.location env "E" in
  Ta.Model.edge env ~src:e0 ~dst:e0 ~sync:(Ta.Model.Emit req) ();
  Ta.Model.edge env ~src:e0 ~dst:e0 ~sync:(Ta.Model.Receive resp) ();
  Ecdar.make (Ta.Model.build b) ~inputs:[ "req" ] ~outputs:[ "resp" ]

let e6 () =
  header "E6  Model-based testing (Section V): ioco + rtioco + ECDAR";
  let verdict name impl spec =
    Printf.printf "%-26s %s\n" name
      (match Mbt.Ioco.check ~impl ~spec with
       | Ok _ -> "ioco-conforming"
       | Error ce ->
         Printf.sprintf "NOT ioco (after [%s] observed %s)"
           (String.concat " " ce.Mbt.Ioco.trace)
           (Format.asprintf "%a" Mbt.Lts.pp_obs ce.Mbt.Ioco.bad_obs))
  in
  verdict "coffee: reduction" Mbt.Demo.coffee_impl_good Mbt.Demo.coffee_spec;
  verdict "coffee: wrong drink" Mbt.Demo.coffee_impl_wrong_drink
    Mbt.Demo.coffee_spec;
  verdict "coffee: lazy" Mbt.Demo.coffee_impl_lazy Mbt.Demo.coffee_spec;
  verdict "bus: reference" Mbt.Demo.bus_impl_good Mbt.Demo.bus_spec;
  verdict "bus: lossy" Mbt.Demo.bus_impl_lossy Mbt.Demo.bus_spec;
  verdict "bus: chatty" Mbt.Demo.bus_impl_chatty Mbt.Demo.bus_spec;
  let tests =
    Mbt.Testgen.generate_suite Mbt.Demo.bus_spec ~seed:17 ~count:100 ~depth:10
  in
  Printf.printf "\ngenerated %d tests (%d events) from the bus spec\n"
    (List.length tests)
    (List.fold_left (fun acc t -> acc + Mbt.Testgen.size t) 0 tests);
  Printf.printf "%-26s %8s %8s\n" "IUT" "pass" "fail";
  let battery name impl seed =
    let iut = Mbt.Testgen.lts_iut impl ~seed in
    let passes, fails = Mbt.Testgen.run_suite tests iut ~repetitions:20 in
    Printf.printf "%-26s %8d %8d\n" name passes fails
  in
  battery "bus reference (sound!)" Mbt.Demo.bus_impl_good 1;
  battery "bus lossy mutant" Mbt.Demo.bus_impl_lossy 2;
  battery "bus chatty mutant" Mbt.Demo.bus_impl_chatty 3;
  let net = Mbt.Demo.timed_server () in
  let inputs = Mbt.Demo.timed_inputs and outputs = Mbt.Demo.timed_outputs in
  Printf.printf "\nrtioco on-line testing (timed request/response server):\n";
  let show name iut =
    Printf.printf "%-26s %s\n" name
      (match Mbt.Rtioco.test net ~inputs ~outputs ~rounds:100 ~seed:7 iut with
       | Mbt.Rtioco.T_pass r -> Printf.sprintf "pass (%d rounds)" r
       | Mbt.Rtioco.T_fail { round; reason } ->
         Printf.sprintf "FAIL at round %d: %s" round reason)
  in
  show "conforming IUT" (Mbt.Rtioco.spec_iut net ~outputs ~seed:7);
  show "mute IUT" (Mbt.Rtioco.mute_iut (Mbt.Rtioco.spec_iut net ~outputs ~seed:8));
  show "wrong-output IUT"
    (Mbt.Rtioco.noisy_iut
       (Mbt.Rtioco.spec_iut net ~outputs ~seed:9)
       ~wrong:"nack" ~every:1);
  Printf.printf "\nECDAR refinement (timed I/O):\n";
  let tight = timed_server_variant ~lo:2 ~hi:4 in
  let loose = timed_server_variant ~lo:1 ~hi:5 in
  Printf.printf "  server[2,4] <= server[1,5]: %b\n"
    (Ecdar.refines ~impl:tight ~spec:loose).Ecdar.refines;
  Printf.printf "  server[1,5] <= server[2,4]: %b (as expected, refused)\n"
    (Ecdar.refines ~impl:loose ~spec:tight).Ecdar.refines

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablations () =
  header "Ablations (design choices called out in DESIGN.md)";
  let net = Ta.Train_gate.make ~n_trains:4 in
  let with_sub, dt1 =
    timed (fun () ->
        Ta.Checker.check ~subsumption:true net (Ta.Train_gate.safety net))
  in
  let without, dt2 =
    timed (fun () ->
        Ta.Checker.check ~subsumption:false net (Ta.Train_gate.safety net))
  in
  Printf.printf
    "zone subsumption (train-gate 4): on  %6d states %.2fs | off %6d states %.2fs\n"
    with_sub.Ta.Checker.stats.Ta.Checker.visited dt1
    without.Ta.Checker.stats.Ta.Checker.visited dt2;
  let t = Modest.Brp.make ~n:8 () in
  let exp = Modest.Digital_sta.expand t.Modest.Brp.sta in
  let target =
    Modest.Digital_sta.target_of exp
      (Modest.Digital_sta.pred_of_mprop exp (Modest.Brp.p1 t))
  in
  let _, gs =
    Mdp.reach_prob ~sweep:Mdp.Gauss_seidel exp.Modest.Digital_sta.mdp ~target
      ~maximize:true
  in
  let _, jac =
    Mdp.reach_prob ~sweep:Mdp.Jacobi exp.Modest.Digital_sta.mdp ~target
      ~maximize:true
  in
  Printf.printf
    "value iteration (BRP N=8): Gauss-Seidel %d iterations | Jacobi %d iterations\n"
    gs.Mdp.iterations jac.Mdp.iterations;
  let netq = Ta.Train_gate.make ~n_trains:3 in
  let q = { Smc.horizon = 60.0; goal = Ta.Train_gate.cross_formula netq 0 } in
  let fixed = Smc.Estimate.chernoff_runs ~eps:0.05 ~alpha:0.05 in
  let sprt, dt =
    timed (fun () -> Smc.hypothesis netq q ~theta:0.5 ~delta:0.1)
  in
  Printf.printf
    "SMC (is Pr >= 0.5?): Chernoff batch needs %d runs | SPRT decided '%s' after %d samples (%.1fs)\n"
    fixed
    (if sprt.Smc.Estimate.accept_h0 then "yes" else "no")
    sprt.Smc.Estimate.samples dt;
  let d =
    Bip.Dala.make ~modules:[ "RFLEX"; "NDD"; "POM"; "Battery"; "Science" ]
      ~controlled:true ()
  in
  let _, dt_comp = timed (fun () -> Bip.Dfinder.prove d.Bip.Dala.sys) in
  let _, dt_exact = timed (fun () -> Bip.Engine.deadlock_free d.Bip.Dala.sys) in
  Printf.printf
    "BIP deadlock proof (DALA-5): compositional %.3fs | exact enumeration %.3fs\n"
    dt_comp dt_exact;
  let net2 = Ta.Train_gate.make ~n_trains:2 in
  let zone_keys = Hashtbl.create 512 in
  List.iter
    (fun st -> Hashtbl.replace zone_keys (Ta.Zone_graph.discrete_key st) ())
    (Ta.Checker.reachable_states net2);
  let digital_keys =
    Discrete.Digital.discrete_parts (Discrete.Digital.explore net2)
  in
  Printf.printf
    "digital vs zone engine (train-gate 2): %d vs %d discrete states (%s)\n"
    (Hashtbl.length digital_keys) (Hashtbl.length zone_keys)
    (if Hashtbl.length digital_keys = Hashtbl.length zone_keys then "agree"
     else "MISMATCH");
  (* D-Finder scaling on token rings (the compositional proof's point:
     its cost does not track the product's size). *)
  let ring n =
    let comp i =
      let b = Bip.Component.create (Printf.sprintf "R%d" i) in
      let with_t = Bip.Component.add_location b "Token" in
      let without = Bip.Component.add_location b "NoToken" in
      let give = Bip.Component.add_port b "give" in
      let take = Bip.Component.add_port b "take" in
      Bip.Component.set_initial b (if i = 0 then with_t else without);
      Bip.Component.add_transition b ~src:with_t ~dst:without ~port:give ();
      Bip.Component.add_transition b ~src:without ~dst:with_t ~port:take ();
      (Bip.Component.build b, give, take)
    in
    let comps = List.init n comp in
    let arr = Array.of_list (List.map (fun (c, _, _) -> c) comps) in
    let connectors =
      List.init n (fun i ->
          let _, give, _ = List.nth comps i in
          let _, _, take = List.nth comps ((i + 1) mod n) in
          Bip.System.Rendezvous
            {
              c_name = Printf.sprintf "pass%d" i;
              members = [ (i, give); ((i + 1) mod n, take) ];
              guard = None;
              action = None;
            })
    in
    Bip.System.make ~components:arr ~connectors ()
  in
  Printf.printf "D-Finder on token rings:";
  List.iter
    (fun n ->
      let sys = ring n in
      let report, dt = timed (fun () -> Bip.Dfinder.prove sys) in
      Printf.printf "  n=%d %s %.3fs" n
        (match report.Bip.Dfinder.verdict with
         | Bip.Dfinder.Proved -> "proved"
         | Bip.Dfinder.Inconclusive _ -> "inconclusive")
        dt)
    [ 2; 4; 6; 8 ];
  print_newline ();
  (* Job-shop optimum vs its admissible lower bound. *)
  let inst =
    {
      Priced.Jobshop.machines = 3;
      jobs =
        [
          [ (0, 3); (1, 2); (2, 2) ];
          [ (1, 2); (2, 1); (0, 4) ];
          [ (2, 4); (0, 1); (1, 3) ];
        ];
    }
  in
  (match Priced.Jobshop.optimal inst with
   | Some s ->
     Printf.printf
       "job-shop (3x3): optimal makespan %d vs lower bound %d (CORA-style search)\n"
       s.Priced.Jobshop.makespan
       (Priced.Jobshop.makespan_lower_bound inst)
   | None -> ())

(* ------------------------------------------------------------------ *)
(* Exploration-engine instrumentation + extrapolation/codec ablations  *)
(* ------------------------------------------------------------------ *)

let engine () =
  header "Exploration engine (stats + extrapolation / packed-codec ablations)";
  (* Each row: one checker run on the shared engine core, across four
     configurations. "packed-lu" is the default (packed-codec fused
     store keys + sealed zones under LU extrapolation); "poly-lu" swaps
     the store keys back to the polymorphic-hash tuples; "extra-k" and
     "extra-none" keep the packed store but seal under classic Extra-M /
     no extrapolation. The packed-vs-poly pair exposes the fused-key
     throughput and store-memory delta, the extrapolation trio how much
     LU shrinks the zone graph. "extra-none" may hit the state limit on
     models whose raw zone graph is infinite; it then reports a
     truncated row instead of aborting the bench. *)
  let runs =
    [
      ("fischer-5/mutex", lazy (Ta.Fischer.make ~n:5 ()),
       fun net -> Ta.Fischer.mutex net);
      ("train-gate-4/safety", lazy (Ta.Train_gate.make ~n_trains:4),
       fun net -> Ta.Train_gate.safety net);
    ]
  in
  let variants =
    [
      ("packed-lu", true, `Lu);
      ("poly-lu", false, `Lu);
      ("extra-k", true, `K);
      ("extra-none", true, `None);
    ]
  in
  let truncated_stats =
    {
      Engine.Stats.visited = 0; stored = 0; subsumed = 0; dropped = 0;
      reopened = 0; peak_frontier = 0; store_words = 0; truncated = true;
      time_s = 0.0; dbm_phys_eq = 0; dbm_full_cmp = 0; dbm_lattice_cmp = 0;
      phases = [];
    }
  in
  let rows =
    List.concat_map
      (fun (name, net, query) ->
        let net = Lazy.force net in
        (* Three timed attempts per variant, keeping the fastest — and
           interleaved round-robin across the variants rather than
           back-to-back, so a slow minute on a shared box degrades every
           variant's samples alike instead of inverting a close ablation
           pair. Fresh telemetry per attempt, so the embedded snapshot
           holds exactly the kept exploration's metrics and spans. *)
        let attempt (_, packed, extrapolation) =
          Obs.reset ();
          Gc.compact ();
          let r =
            match Ta.Checker.check ~packed ~extrapolation net (query net) with
            | r -> Some r
            | exception Failure _ -> None
          in
          let g = Gc.stat () in
          let metrics = Obs.Metrics.snapshot () in
          let spans = Obs.Span.timings_json () in
          (r, g, metrics, spans)
        in
        let time_of (r, _, _, _) =
          match r with
          | Some r -> r.Ta.Checker.stats.Ta.Checker.time_s
          | None -> infinity
        in
        let best = Array.of_list (List.map attempt variants) in
        for _ = 2 to 3 do
          List.iteri
            (fun vi v ->
              let a = attempt v in
              if time_of a < time_of best.(vi) then best.(vi) <- a)
            variants
        done;
        (* One extra flight-enabled run per model, on the default
           packed-lu configuration and deliberately outside the timed
           attempts (the recorder costs a few percent): its per-phase
           totals — dbm.seal, codec.encode, store.probe/subsume/insert,
           frontier pops — are grafted onto the kept packed-lu row, so
           BENCH_engine.json carries a phase breakdown without
           perturbing nodes/s. *)
        let phases =
          Obs.reset ();
          Obs.Flight.enable ();
          let p =
            match
              Ta.Checker.check ~packed:true ~extrapolation:`Lu net (query net)
            with
            | r -> r.Ta.Checker.stats.Ta.Checker.phases
            | exception Failure _ -> []
          in
          Obs.Flight.disable ();
          p
        in
        if phases <> [] then begin
          let total =
            List.fold_left (fun acc (_, (_, s)) -> acc +. s) 0.0 phases
          in
          Printf.printf "%-24s phase breakdown (packed-lu, flight run):\n"
            name;
          List.iter
            (fun (pname, (count, total_s)) ->
              Printf.printf "    %-22s %8d calls  %8.4fs  %5.1f%%\n" pname
                count total_s
                (if total > 0.0 then 100.0 *. total_s /. total else 0.0))
            (List.sort
               (fun (_, (_, a)) (_, (_, b)) -> compare b a)
               phases)
        end;
        List.mapi
          (fun vi (vname, _, _) ->
            let r, g, metrics, spans = best.(vi) in
            let tag = Printf.sprintf "%s/%s" name vname in
            let holds, stats =
              match r with
              | Some r -> (r.Ta.Checker.holds, r.Ta.Checker.stats)
              | None -> (false, truncated_stats)
            in
            (* The phase breakdown belongs to the default variant only:
               the flight run above explored under packed-lu. *)
            let stats =
              if vname = "packed-lu" then { stats with Engine.Stats.phases }
              else stats
            in
            let nodes_per_s =
              if stats.Ta.Checker.time_s > 0.0 then
                float_of_int stats.Ta.Checker.visited
                /. stats.Ta.Checker.time_s
              else 0.0
            in
            (* Equality comparisons only: the subset lattice scans are
               inherent slow-path work (inclusion has no pointer
               shortcut) and are reported as their own column. *)
            let cmp = stats.Ta.Checker.dbm_phys_eq + stats.Ta.Checker.dbm_full_cmp in
            let hit_rate =
              if cmp > 0 then
                float_of_int stats.Ta.Checker.dbm_phys_eq /. float_of_int cmp
              else 0.0
            in
            Printf.printf
              "%-34s %-9s visited %6d  %8.0f nodes/s  phys-eq %5.1f%%  lattice %8d  store %7dkw  heap %6dkw  %.2fs\n"
              tag
              (match r with
               | None -> "TRUNCATED"
               | Some r -> if r.Ta.Checker.holds then "satisfied" else "VIOLATED")
              stats.Ta.Checker.visited nodes_per_s (100.0 *. hit_rate)
              stats.Ta.Checker.dbm_lattice_cmp
              (stats.Ta.Checker.store_words / 1000)
              (g.Gc.top_heap_words / 1000)
              stats.Ta.Checker.time_s;
            (tag, holds, stats, nodes_per_s, hit_rate, g, metrics, spans))
          variants)
      runs
  in
  List.iter
    (fun (name, _, _) ->
      let find tag =
        let _, _, s, _, hr, _, _, _ =
          List.find (fun (t, _, _, _, _, _, _, _) -> t = tag) rows
        in
        (s, hr)
      in
      let packed, packed_hr = find (name ^ "/packed-lu")
      and poly, _ = find (name ^ "/poly-lu")
      and k, _ = find (name ^ "/extra-k")
      and none, _ = find (name ^ "/extra-none") in
      Printf.printf
        "%-24s visited: %s (none) -> %d (k) -> %d (lu); phys-eq hit rate %.1f%%\n"
        name
        (if none.Ta.Checker.truncated then "truncated"
         else string_of_int none.Ta.Checker.visited)
        k.Ta.Checker.visited packed.Ta.Checker.visited (100.0 *. packed_hr);
      Printf.printf
        "%-24s store retained words: %d (poly) -> %d (packed)\n" name
        poly.Ta.Checker.store_words packed.Ta.Checker.store_words)
    runs;
  (* Parallel zone exploration: fischer-6 under the sharded engine at
     jobs = 1/2/4 on the mutex query. Sharded runs pin [stats.time_s]
     to 0.0 (wall time is a scheduling observable, never part of the
     deterministic result), so the rows are timed externally here. The
     jobs=1 run is both the byte-identity reference and the speedup
     baseline; steal counts and mailbox high-water marks are the
     scheduling observables the determinism argument excludes. *)
  header "Parallel zone exploration (fischer-6, sharded engine)";
  let net6 = Ta.Fischer.make ~n:6 () in
  let q6 = Ta.Fischer.mutex net6 in
  let cores = Domain.recommended_domain_count () in
  let par_rows =
    List.map
      (fun jobs ->
        Obs.reset ();
        Gc.compact ();
        let r, wall = timed (fun () -> Ta.Checker.check ~jobs net6 q6) in
        let g = Gc.stat () in
        let stats = r.Ta.Checker.stats in
        let p =
          match r.Ta.Checker.par with
          | Some p -> p
          | None -> failwith "sharded check must report par info"
        in
        let nodes_per_s = float_of_int stats.Ta.Checker.visited /. wall in
        Printf.printf
          "fischer-6/mutex jobs=%d %-9s visited %7d  %8.0f nodes/s  rounds %4d  steals %4d  mailbox hwm %5d  %.2fs\n"
          jobs
          (if r.Ta.Checker.holds then "satisfied" else "VIOLATED")
          stats.Ta.Checker.visited nodes_per_s p.Engine.Core.rounds
          p.Engine.Core.steals p.Engine.Core.mailbox_hwm wall;
        (jobs, r, wall, nodes_per_s, g, p))
      [ 1; 2; 4 ]
  in
  let wall_of j =
    let _, _, w, _, _, _ = List.find (fun (j', _, _, _, _, _) -> j' = j) par_rows in
    w
  in
  let stats_of j =
    let _, r, _, _, _, _ = List.find (fun (j', _, _, _, _, _) -> j' = j) par_rows in
    Engine.Stats.to_json r.Ta.Checker.stats
  in
  Printf.printf
    "fischer-6/mutex speedup vs jobs=1: x%.2f (jobs=2)  x%.2f (jobs=4) on %d core(s); stats j1=j4: %b\n"
    (wall_of 1 /. wall_of 2)
    (wall_of 1 /. wall_of 4)
    cores
    (String.equal (stats_of 1) (stats_of 4));
  let par_entries =
    List.map
      (fun (jobs, r, wall, nodes_per_s, g, p) ->
        Obs.Json.Obj
          [
            ("run", Obs.Json.Str (Printf.sprintf "fischer-6/mutex/jobs-%d" jobs));
            ("holds", Obs.Json.Bool r.Ta.Checker.holds);
            ("jobs", Obs.Json.Int jobs);
            ("cores", Obs.Json.Int cores);
            ("wall_s", Obs.Json.Float wall);
            ("nodes_per_s", Obs.Json.Float nodes_per_s);
            ("check_speedup", Obs.Json.Float (wall_of 1 /. wall));
            ("steal_count", Obs.Json.Int p.Engine.Core.steals);
            ("mailbox_hwm", Obs.Json.Int p.Engine.Core.mailbox_hwm);
            ("rounds", Obs.Json.Int p.Engine.Core.rounds);
            ("handoffs", Obs.Json.Int p.Engine.Core.handoffs);
            ("shards", Obs.Json.Int p.Engine.Core.par_shards);
            ("top_heap_words", Obs.Json.Int g.Gc.top_heap_words);
            ("live_words", Obs.Json.Int g.Gc.live_words);
            ("stats", Engine.Stats.to_json_value r.Ta.Checker.stats);
          ])
      par_rows
  in
  let entries =
    Obs.Json.Arr
      (List.map
         (fun (tag, holds, stats, nodes_per_s, hit_rate, g, metrics, spans) ->
           Obs.Json.Obj
             [
               ("run", Obs.Json.Str tag);
               ("holds", Obs.Json.Bool holds);
               ("nodes_per_s", Obs.Json.Float nodes_per_s);
               ("phys_eq_hit_rate", Obs.Json.Float hit_rate);
               ("top_heap_words", Obs.Json.Int g.Gc.top_heap_words);
               ("live_words", Obs.Json.Int g.Gc.live_words);
               ("stats", Engine.Stats.to_json_value stats);
               ("metrics", metrics);
               ("spans", spans);
             ])
         rows
      @ par_entries)
  in
  let oc = open_out "BENCH_engine.json" in
  output_string oc (Obs.Json.to_string entries);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_engine.json (%d runs)\n"
    (List.length rows + List.length par_entries)

(* ------------------------------------------------------------------ *)
(* Parallel pool scaling: SMC + modes batches at 1/2/4 domains         *)
(* ------------------------------------------------------------------ *)

let par () =
  header "Parallel pool scaling (SMC + modes, 1/2/4 domains)";
  let net = Ta.Train_gate.make ~n_trains:4 in
  let config =
    { Smc.Stochastic.rates = (fun auto _ -> 1.0 +. float_of_int auto) }
  in
  let q = { Smc.horizon = 100.0; goal = Ta.Train_gate.cross_formula net 0 } in
  let brp = Modest.Brp.make () in
  (* How many hardware threads this box actually has. Speedup > 1 at
     jobs=2 is only physically possible with >= 2 cores, so the CI
     parallel-speedup gate keys on this field rather than assuming the
     runner's shape. *)
  let cores = Domain.recommended_domain_count () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let row ~workload ~runs jobs =
    (* Fresh telemetry per row, so metrics and the per-domain span
       breakdown belong to exactly this pool size. *)
    Obs.reset ();
    Par.Pool.with_pool ~jobs @@ fun pool ->
    let itv, smc_s =
      time (fun () -> Smc.probability ~pool ~config ~seed:42 ~runs net q)
    in
    let md, modes_s =
      time (fun () -> Modest.Brp.run_modes ~pool ~runs ~seed:42 brp)
    in
    let metrics = Obs.Metrics.snapshot () in
    let span_domains = Obs.Span.domain_timings_json () in
    Printf.printf
      "%-5s jobs %d  smc %6.2fs  modes %6.2fs  p=%.4f [%.4f,%.4f]  Dmax %d\n"
      workload jobs smc_s modes_s itv.Smc.Estimate.p_hat itv.Smc.Estimate.low
      itv.Smc.Estimate.high md.Modest.Brp.md_dmax_obs;
    (workload, jobs, smc_s, modes_s, itv, md, metrics, span_domains)
  in
  (* Two workload sizes: "small" keeps the historical 2000-run batches
     for continuity; "large" runs 5x more so per-batch fork/join
     overhead amortises and the jobs=2 speedup on a multicore runner is
     a fair scaling signal (that is the row CI gates on). *)
  let run_workload ~workload ~runs jobs_list =
    let rows = List.map (row ~workload ~runs) jobs_list in
    (* Determinism check across pool sizes: the interval and the modes
       observations must not depend on the number of domains. *)
    let _, _, _, _, itv0, md0, _, _ = List.hd rows in
    List.iter
      (fun (_, jobs, _, _, itv, md, _, _) ->
        if itv <> itv0 || md <> md0 then begin
          Printf.eprintf "FAIL: %s results at jobs=%d differ from jobs=1\n"
            workload jobs;
          exit 1
        end)
      (List.tl rows);
    rows
  in
  (* Bind each workload before concatenating: [@]'s argument evaluation
     order is unspecified, and the console should read small-then-large. *)
  let small = run_workload ~workload:"small" ~runs:2000 [ 1; 2; 4 ] in
  let large = run_workload ~workload:"large" ~runs:10_000 [ 1; 2; 4 ] in
  let rows = small @ large in
  print_endline
    "determinism: intervals and observations identical across pool sizes";
  let base_of workload =
    let _, _, smc_base, modes_base, _, _, _, _ =
      List.find (fun (w, jobs, _, _, _, _, _, _) -> w = workload && jobs = 1) rows
    in
    (smc_base, modes_base)
  in
  let entries =
    Obs.Json.Arr
      (List.map
         (fun (workload, jobs, smc_s, modes_s, itv, md, metrics, span_domains) ->
           let smc_base, modes_base = base_of workload in
           Obs.Json.Obj
             [
               ("workload", Obs.Json.Str workload);
               ("jobs", Obs.Json.Int jobs);
               ("cores", Obs.Json.Int cores);
               ("smc_wall_s", Obs.Json.Float smc_s);
               ("modes_wall_s", Obs.Json.Float modes_s);
               ("smc_speedup", Obs.Json.Float (smc_base /. smc_s));
               ("modes_speedup", Obs.Json.Float (modes_base /. modes_s));
               ( "interval",
                 Obs.Json.Obj
                   [
                     ("p_hat", Obs.Json.Float itv.Smc.Estimate.p_hat);
                     ("low", Obs.Json.Float itv.Smc.Estimate.low);
                     ("high", Obs.Json.Float itv.Smc.Estimate.high);
                     ("trials", Obs.Json.Int itv.Smc.Estimate.trials);
                   ] );
               ("modes_dmax_obs", Obs.Json.Int md.Modest.Brp.md_dmax_obs);
               ("metrics", metrics);
               ("span_domains", span_domains);
             ])
         rows)
  in
  let oc = open_out "BENCH_par.json" in
  output_string oc (Obs.Json.to_string entries);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_par.json (%d rows)\n" (List.length rows)

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: flight recorder on vs off on the engine hot path *)
(* ------------------------------------------------------------------ *)

let obs_bench () =
  header "Telemetry overhead (flight recorder off vs on, fischer-5)";
  (* Same model and query as the engine section's hottest row. Rounds
     alternate which configuration runs first (ABBA): on a busy or
     thermally drifting box the second run of a pair is systematically
     slower, and an unbalanced design books that bias as recorder
     overhead (measured at 2-4% on a 1-core container — comparable to
     the effect itself). Each side keeps its median of 6. The budget in
     DESIGN.md is < 5% nodes/s. *)
  let net = Ta.Fischer.make ~n:5 () in
  let q = Ta.Fischer.mutex net in
  let run flight =
    if flight then Obs.Flight.enable () else Obs.Flight.disable ();
    Obs.reset ();
    Gc.compact ();
    let r = Ta.Checker.check net q in
    let s = r.Ta.Checker.stats in
    if s.Ta.Checker.time_s > 0.0 then
      float_of_int s.Ta.Checker.visited /. s.Ta.Checker.time_s
    else 0.0
  in
  ignore (run false) (* warm-up: page in the model and the stores *);
  let rounds = 6 in
  let offs = Array.make rounds 0.0 and ons = Array.make rounds 0.0 in
  let events = ref 0 and dropped = ref 0 in
  for i = 0 to rounds - 1 do
    if i land 1 = 0 then begin
      offs.(i) <- run false;
      ons.(i) <- run true
    end
    else begin
      ons.(i) <- run true;
      offs.(i) <- run false
    end;
    (* Ring content and overwrite count of this round's flight-on run,
       read before the next [Obs.reset] clears the rings. *)
    if i land 1 = 0 then begin
      events := List.length (Obs.Flight.drain ());
      dropped := Obs.Flight.dropped ()
    end
  done;
  Obs.Flight.disable ();
  let events = !events and dropped = !dropped in
  let median a =
    let a = Array.copy a in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let off = median offs and on_ = median ons in
  let overhead_pct = if off > 0.0 then 100.0 *. (1.0 -. (on_ /. off)) else 0.0 in
  Printf.printf
    "flight off %8.0f nodes/s   on %8.0f nodes/s   overhead %+.2f%%   (%d ring events, %d overwritten)\n"
    off on_ overhead_pct events dropped;
  let j =
    Obs.Json.Obj
      [
        ("model", Obs.Json.Str "fischer-5/mutex");
        ("nodes_per_s_off", Obs.Json.Float off);
        ("nodes_per_s_on", Obs.Json.Float on_);
        ("overhead_pct", Obs.Json.Float overhead_pct);
        ("ring_events", Obs.Json.Int events);
        ("overwritten_events", Obs.Json.Int dropped);
      ]
  in
  let oc = open_out "BENCH_obs.json" in
  output_string oc (Obs.Json.to_string j);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_obs.json"

(* ------------------------------------------------------------------ *)
(* Differential fuzz harness: sweep throughput per oracle family        *)
(* ------------------------------------------------------------------ *)

let gen () =
  header "Differential oracle harness (cases/s per family, jobs 1/4)";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let cases = 400 in
  let row family jobs =
    Obs.reset ();
    let report, wall =
      time (fun () ->
          Gen.Harness.run
            { Gen.Harness.default with seed = 42; cases; jobs;
              families = [ family ] })
    in
    let name = Gen.Oracle.family_name family in
    Printf.printf "%-14s jobs %d  %6.2fs  %8.0f cases/s  agreed %d skipped %d\n"
      name jobs wall
      (float_of_int cases /. wall)
      report.Gen.Harness.r_agreed
      (List.length report.Gen.Harness.r_skipped);
    if report.Gen.Harness.r_divergences <> [] then begin
      Printf.eprintf "FAIL: unexpected divergence in %s sweep\n" name;
      exit 1
    end;
    (name, jobs, wall, report)
  in
  let rows =
    List.concat_map
      (fun family -> List.map (row family) [ 1; 4 ])
      Gen.Oracle.all_families
  in
  let entries =
    Obs.Json.Arr
      (List.map
         (fun (name, jobs, wall, report) ->
           Obs.Json.Obj
             [
               ("family", Obs.Json.Str name);
               ("jobs", Obs.Json.Int jobs);
               ("cases", Obs.Json.Int cases);
               ("wall_s", Obs.Json.Float wall);
               ("cases_per_s", Obs.Json.Float (float_of_int cases /. wall));
               ("agreed", Obs.Json.Int report.Gen.Harness.r_agreed);
               ( "skipped",
                 Obs.Json.Int (List.length report.Gen.Harness.r_skipped) );
             ])
         rows)
  in
  let oc = open_out "BENCH_gen.json" in
  output_string oc (Obs.Json.to_string entries);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_gen.json (%d rows)\n" (List.length rows)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Bechamel micro-benchmarks (one per experiment core)";
  let open Bechamel in
  let net3 = Ta.Train_gate.make ~n_trains:3 in
  let game2 = Games.Train_game.make ~n_trains:2 () in
  let brp4 = Modest.Brp.make ~n:4 () in
  let dala = Bip.Dala.make ~controlled:true () in
  let smc_cfg =
    { Smc.Stochastic.rates = (fun auto _ -> 1.0 +. float_of_int auto) }
  in
  let dbm_a =
    Zones.Dbm.constrain (Zones.Dbm.universal ~clocks:6) 1 0 (Zones.Bound.le 14)
  in
  let tests =
    [
      Test.make ~name:"e1/safety-check-3-trains"
        (Staged.stage (fun () ->
             ignore (Ta.Checker.check net3 (Ta.Train_gate.safety net3))));
      Test.make ~name:"e2/game-synthesis-2-trains"
        (Staged.stage (fun () ->
             ignore
               (Games.solve game2 (Games.Safety (Games.Train_game.safe game2)))));
      Test.make ~name:"e3/smc-50-runs"
        (Staged.stage (fun () ->
             ignore
               (Smc.probability ~config:smc_cfg ~runs:50 net3
                  {
                    Smc.horizon = 100.0;
                    goal = Ta.Train_gate.cross_formula net3 0;
                  })));
      Test.make ~name:"e4/mcpta-brp-N4"
        (Staged.stage (fun () ->
             ignore
               (Modest.Mcpta.reach_prob brp4.Modest.Brp.sta
                  (Modest.Brp.p1 brp4) ~maximize:true)));
      Test.make ~name:"e4/modes-brp-100-runs"
        (Staged.stage (fun () -> ignore (Modest.Brp.run_modes ~runs:100 brp4)));
      Test.make ~name:"e5/bip-engine-500-steps"
        (Staged.stage
           (let rng = Random.State.make [| 5 |] in
            fun () ->
              ignore
                (Bip.Engine.run dala.Bip.Dala.sys (Bip.Engine.Random rng)
                   ~steps:500)));
      Test.make ~name:"e5/dfinder-dala"
        (Staged.stage (fun () -> ignore (Bip.Dfinder.prove dala.Bip.Dala.sys)));
      Test.make ~name:"e6/ioco-check-bus"
        (Staged.stage (fun () ->
             ignore
               (Mbt.Ioco.check ~impl:Mbt.Demo.bus_impl_lossy
                  ~spec:Mbt.Demo.bus_spec)));
      Test.make ~name:"substrate/dbm-ops"
        (Staged.stage (fun () ->
             let z = Zones.Dbm.up dbm_a in
             let z = Zones.Dbm.reset z 2 3 in
             ignore (Zones.Dbm.subset z dbm_a)));
    ]
  in
  let grouped = Test.make_grouped ~name:"quantlib" tests in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.6) ~kde:None () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  Printf.printf "%-42s %16s %10s\n" "benchmark" "time/run" "r^2";
  List.iter
    (fun (name, r) ->
      let est =
        match Analyze.OLS.estimates r with Some [ e ] -> e | _ -> nan
      in
      let pretty =
        if est > 1e9 then Printf.sprintf "%8.2f s " (est /. 1e9)
        else if est > 1e6 then Printf.sprintf "%8.2f ms" (est /. 1e6)
        else if est > 1e3 then Printf.sprintf "%8.2f us" (est /. 1e3)
        else Printf.sprintf "%8.0f ns" est
      in
      Printf.printf "%-42s %16s %10s\n" name pretty
        (match Analyze.OLS.r_square r with
         | Some r2 -> Printf.sprintf "%.3f" r2
         | None -> "-"))
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Service layer: cold vs warm daemon queries, smc request batching.
   Forks a quantd child — so this bench must run before anything that
   spawns domains (OCaml 5 forbids fork afterwards); it is registered
   first in the dispatch list below.                                   *)
(* ------------------------------------------------------------------ *)

let serve_bench () =
  header "quantd service (cold vs warm caches, smc request batching)";
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "quantd-bench-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  let pid = Unix.fork () in
  if pid = 0 then begin
    (try
       let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
       Unix.dup2 devnull Unix.stdout;
       Unix.close devnull;
       Serve.Daemon.run
         ~config:
           { Serve.Daemon.default_config with socket_path = sock; jobs = 2 }
         ()
     with _ -> ());
    Unix._exit 0
  end;
  let c = Serve.Client.connect sock in
  let must = function
    | Ok j -> j
    | Error (code, msg) -> failwith (code ^ ": " ^ msg)
  in
  let check_params =
    [ ("model", Obs.Json.Str "fischer"); ("n", Obs.Json.Int 5) ]
  in
  let _, cold_s =
    timed (fun () -> must (Serve.Client.call c ~meth:"check" check_params))
  in
  (* The identical request again: answered from the warm reply cache. *)
  let warm_s =
    List.fold_left
      (fun acc _ ->
        let _, s =
          timed (fun () -> must (Serve.Client.call c ~meth:"check" check_params))
        in
        Float.min acc s)
      infinity [ 1; 2; 3; 4; 5 ]
  in
  (* Four smc requests answered one by one (a read round each) vs the
     same four pipelined in one write, which the daemon fuses into a
     single sample range on the shared pool. Distinct seeds everywhere
     keep the reply cache out of the measurement. *)
  let smc_params seed =
    [
      ("model", Obs.Json.Str "fischer"); ("trains", Obs.Json.Int 2);
      ("runs", Obs.Json.Int 500); ("seed", Obs.Json.Int seed);
    ]
  in
  let _, seq_s =
    timed (fun () ->
        List.iter
          (fun seed ->
            ignore (must (Serve.Client.call c ~meth:"smc" (smc_params seed))))
          [ 1000; 2000; 3000; 4000 ])
  in
  let batched, batched_s =
    timed (fun () ->
        Serve.Client.call_many c
          (List.map
             (fun seed -> ("smc", None, smc_params seed))
             [ 5000; 6000; 7000; 8000 ]))
  in
  List.iter (fun r -> ignore (must r)) batched;
  let metrics = must (Serve.Client.call c ~meth:"metrics" []) in
  let counter name =
    match
      Option.bind (Obs.Json.member "metrics" metrics) (fun m ->
          Option.bind (Obs.Json.member name m) (Obs.Json.member "value"))
    with
    | Some (Obs.Json.Int n) -> n
    | Some (Obs.Json.Float f) -> int_of_float f
    | _ -> 0
  in
  Serve.Client.close c;
  Unix.kill pid Sys.sigterm;
  let graceful =
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> true
    | _ -> false
  in
  Printf.printf "%-36s %10.4f s\n" "cold check (fischer n=5)" cold_s;
  Printf.printf "%-36s %10.4f s  (x%.0f)\n" "warm repeat (reply cache)" warm_s
    (cold_s /. warm_s);
  Printf.printf "%-36s %10.4f s\n" "4 smc requests, sequential" seq_s;
  Printf.printf "%-36s %10.4f s  (x%.2f)\n" "4 smc requests, one fused batch"
    batched_s (seq_s /. batched_s);
  Printf.printf
    "reply cache %d hits / %d misses, model cache %d/%d, %d requests fused \
     in %d batches, graceful exit %b\n"
    (counter "serve.reply_hits") (counter "serve.reply_misses")
    (counter "serve.model_hits") (counter "serve.model_misses")
    (counter "serve.smc_fused_requests") (counter "serve.smc_batches")
    graceful;
  let j =
    Obs.Json.Obj
      [
        ("cold_check_s", Obs.Json.Float cold_s);
        ("warm_check_s", Obs.Json.Float warm_s);
        ("warm_speedup", Obs.Json.Float (cold_s /. warm_s));
        ("seq_smc_s", Obs.Json.Float seq_s);
        ("batched_smc_s", Obs.Json.Float batched_s);
        ("batch_speedup", Obs.Json.Float (seq_s /. batched_s));
        ( "cache",
          Obs.Json.Obj
            [
              ("reply_hits", Obs.Json.Int (counter "serve.reply_hits"));
              ("reply_misses", Obs.Json.Int (counter "serve.reply_misses"));
              ("model_hits", Obs.Json.Int (counter "serve.model_hits"));
              ("model_misses", Obs.Json.Int (counter "serve.model_misses"));
              ("smc_batches", Obs.Json.Int (counter "serve.smc_batches"));
              ( "smc_fused_requests",
                Obs.Json.Int (counter "serve.smc_fused_requests") );
            ] );
        ("graceful_exit", Obs.Json.Bool graceful);
      ]
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc (Obs.Json.to_string j);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_serve.json"

(* ------------------------------------------------------------------ *)

let () =
  let all =
    [
      ("serve", serve_bench);
      ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
      ("ablations", ablations); ("engine", engine); ("par", par);
      ("obs", obs_bench); ("gen", gen); ("micro", micro);
    ]
  in
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] -> List.iter (fun (_, f) -> f ()) all
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name all with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %s (have: %s)\n" name
            (String.concat " " (List.map fst all));
          exit 1)
      names
