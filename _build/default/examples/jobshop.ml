(* Optimal job-shop scheduling with priced reachability — the classic
   UPPAAL-CORA optimization application the paper points to.

   Run with: dune exec examples/jobshop.exe *)

open Quantlib

let show name inst =
  Printf.printf "%s\n" name;
  Printf.printf "  lower bound (load/critical path): %d\n"
    (Priced.Jobshop.makespan_lower_bound inst);
  match Priced.Jobshop.optimal inst with
  | Some s ->
    Printf.printf "  optimal makespan: %d\n" s.Priced.Jobshop.makespan;
    Printf.printf "  schedule:\n";
    List.iter
      (fun step -> if step <> "delay" then Printf.printf "    %s\n" step)
      s.Priced.Jobshop.steps
  | None -> Printf.printf "  infeasible\n"

let () =
  print_endline "== Job-shop scheduling via min-cost reachability ==\n";
  show "two jobs, two machines (contention on M1)"
    {
      Priced.Jobshop.machines = 2;
      jobs = [ [ (0, 2); (1, 2) ]; [ (1, 3); (0, 1) ] ];
    };
  print_newline ();
  show "three jobs, three machines"
    {
      Priced.Jobshop.machines = 3;
      jobs =
        [
          [ (0, 3); (1, 2); (2, 2) ];
          [ (1, 2); (2, 1); (0, 4) ];
          [ (2, 4); (0, 1); (1, 3) ];
        ];
    }
