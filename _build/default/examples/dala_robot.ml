(* The DALA rover functional level in BIP (Section IV, Fig. 6):
   verification, the compositional D-Finder proof, fault-injection runs
   with and without the R2C execution controller, and coordination code
   generation.

   Run with: dune exec examples/dala_robot.exe *)

open Quantlib

let () =
  print_endline "== DALA functional level (BIP) ==\n";
  let d = Bip.Dala.make ~controlled:true () in
  Printf.printf "modules: %s + R2C controller\n"
    (String.concat ", " d.Bip.Dala.module_names);
  Printf.printf "interactions: %d\n\n"
    (Array.length d.Bip.Dala.sys.Bip.System.interactions);

  (* Compositional deadlock-freedom (D-Finder). *)
  let report = Bip.Dfinder.prove d.Bip.Dala.sys in
  (match report.Bip.Dfinder.verdict with
   | Bip.Dfinder.Proved ->
     Printf.printf
       "D-Finder: deadlock-freedom PROVED compositionally (%d traps, %d semiflows, %d candidates)\n"
       report.Bip.Dfinder.n_traps report.Bip.Dfinder.n_semiflows
       report.Bip.Dfinder.n_candidates_checked
   | Bip.Dfinder.Inconclusive _ ->
     print_endline "D-Finder: inconclusive, falling back to exact search");

  (* Exact safety verification on a 5-module subsystem (the full product
     is large; the compositional proof above covers deadlock-freedom). *)
  let small =
    Bip.Dala.make ~modules:[ "RFLEX"; "NDD"; "POM"; "Battery"; "Science" ]
      ~controlled:true ()
  in
  let ok, _ = Bip.Engine.invariant_holds small.Bip.Dala.sys (Bip.Dala.safety_ok small) in
  Printf.printf "exact safety check (5-module subsystem): %s\n\n"
    (if ok then "all reachable states safe" else "VIOLATED");

  (* Fault injection (the paper's experiment): with the controller the
     robot never reaches an unsafe state; without it, it does. *)
  let controlled = Bip.Dala.inject_faults d ~runs:50 ~steps:300 ~seed:11 in
  Printf.printf
    "fault injection WITH R2C:    %d runs x %d steps, %d faults injected, %d safety violations\n"
    controlled.Bip.Dala.runs controlled.Bip.Dala.steps_per_run
    controlled.Bip.Dala.faults_injected controlled.Bip.Dala.violations;
  let baseline = Bip.Dala.make ~controlled:false () in
  let uncontrolled = Bip.Dala.inject_faults baseline ~runs:50 ~steps:300 ~seed:11 in
  Printf.printf
    "fault injection WITHOUT R2C: %d runs x %d steps, %d faults injected, %d safety violations\n\n"
    uncontrolled.Bip.Dala.runs uncontrolled.Bip.Dala.steps_per_run
    uncontrolled.Bip.Dala.faults_injected uncontrolled.Bip.Dala.violations;

  (* Code generation for the coordination layer. *)
  let src = Bip.Codegen.to_ocaml ~module_comment:"DALA coordination" d.Bip.Dala.sys in
  let file = Filename.temp_file "dala_coordination" ".ml" in
  let oc = open_out file in
  output_string oc src;
  close_out oc;
  Printf.printf "generated coordination code: %s (%d interactions, %d lines)\n"
    file
    (Bip.Codegen.interaction_count_in_source src)
    (List.length (String.split_on_char '\n' src))
