(* The two remaining UPPAAL family members on their classic applications:
   UPPAAL-TIGA controller synthesis for the train game (Figs. 2-3) and
   UPPAAL-CORA worst-case execution time analysis (the METAMOC
   application, ref. [4]).

   Run with: dune exec examples/synthesis_wcet.exe *)

open Quantlib

let synthesis () =
  print_endline "== UPPAAL-TIGA: controller synthesis for the train game ==\n";
  let net = Games.Train_game.make ~n_trains:2 () in
  let safe = Games.Train_game.safe net in
  (* Unsafe states are reachable when the controller plays badly. *)
  let g = Games.Digital.explore net in
  let unsafe =
    Array.fold_left
      (fun acc st -> if safe st then acc else acc + 1)
      0 g.Games.Digital.states
  in
  Printf.printf "game graph: %d states, %d unsafe without control\n"
    (Array.length g.Games.Digital.states) unsafe;
  let s = Games.solve net (Games.Safety safe) in
  Printf.printf "safety synthesis: initial state %s, winning region %d states\n"
    (if s.Games.initial_winning then "WINNING" else "losing")
    (Games.winning_count s);
  Printf.printf "closed-loop safety re-verified: %b\n"
    (Games.closed_loop_safe s ~safe);
  let target = Games.Train_game.all_crossed_once net in
  let r = Games.solve net (Games.Reach target) in
  Printf.printf "reachability synthesis (all trains cross): initial %s, closed loop reaches: %b\n\n"
    (if r.Games.initial_winning then "WINNING" else "losing")
    (Games.closed_loop_reaches r ~target)

(* A small program's control-flow graph as a priced TA: basic blocks with
   [min, max] execution times; WCET = maximum-cost reachability of the
   exit, BCET = minimum. *)
let wcet () =
  print_endline "== UPPAAL-CORA: WCET analysis of a branchy CFG ==\n";
  let b = Ta.Model.builder () in
  let x = Ta.Model.fresh_clock b "x" in
  let p = Ta.Model.automaton b "Prog" in
  let block name lo hi =
    ignore lo;
    Ta.Model.location p name ~invariant:[ Ta.Model.clock_le x hi ]
  in
  let entry = block "entry" 1 2 in
  let cache_hit = block "cache_hit" 1 1 in
  let cache_miss = block "cache_miss" 8 10 in
  let compute = block "compute" 3 6 in
  let exit_l = Ta.Model.location p "exit" in
  let edge src dst lo =
    Ta.Model.edge p ~src ~dst
      ~clock_guard:[ Ta.Model.clock_ge x lo ]
      ~updates:[ Ta.Model.Reset (x, 0) ] ()
  in
  edge entry cache_hit 1;
  edge entry cache_miss 1;
  edge cache_hit compute 1;
  edge cache_miss compute 8;
  edge compute exit_l 3;
  let net = Ta.Model.build b in
  let target st = st.Discrete.Digital.dlocs.(0) = exit_l in
  let cm =
    { Priced.free with Priced.loc_rate = (fun a _ -> if a = 0 then 1 else 0) }
  in
  (match Priced.max_cost_reach net cm ~target with
   | `Cost (c, states) -> Printf.printf "WCET = %d cycles (%d states)\n" c states
   | `Unbounded -> print_endline "WCET unbounded (loop without bound)"
   | `Unreachable -> print_endline "exit unreachable");
  (match Priced.min_time_reach net ~target with
   | Some o -> Printf.printf "BCET = %d cycles (path: %s)\n" o.Priced.cost
                 (String.concat " -> " o.Priced.steps)
   | None -> print_endline "exit unreachable")

let () =
  synthesis ();
  wcet ()
