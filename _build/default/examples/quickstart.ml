(* Quickstart: build a small timed automaton with the public API, model
   check it, and ask a statistical question about it.

   The model: a worker alternates between Idle and Busy. Work takes
   between 2 and 5 time units (clock x); returning to Idle is immediate.

   Run with: dune exec examples/quickstart.exe *)

open Quantlib

let () =
  (* 1. Build the model. *)
  let b = Ta.Model.builder () in
  let x = Ta.Model.fresh_clock b "x" in
  let w = Ta.Model.automaton b "Worker" in
  let idle = Ta.Model.location w "Idle" ~invariant:[ Ta.Model.clock_le x 3 ] in
  let busy = Ta.Model.location w "Busy" ~invariant:[ Ta.Model.clock_le x 5 ] in
  Ta.Model.edge w ~src:idle ~dst:busy ~updates:[ Ta.Model.Reset (x, 0) ] ();
  Ta.Model.edge w ~src:busy ~dst:idle
    ~clock_guard:[ Ta.Model.clock_ge x 2 ]
    ~updates:[ Ta.Model.Reset (x, 0) ] ();
  let net = Ta.Model.build b in

  (* 2. Model check: Busy is reachable, the invariant x <= 5 holds there,
     and the system never deadlocks. *)
  let busy_f = Ta.Prop.loc net "Worker" "Busy" in
  let show name (r : Ta.Checker.result) =
    Printf.printf "%-42s %s   (%d states)\n" name
      (if r.Ta.Checker.holds then "satisfied" else "violated")
      r.Ta.Checker.stats.Ta.Checker.visited
  in
  show "E<> Worker.Busy" (Ta.Checker.check net (Ta.Prop.Possibly busy_f));
  show "A[] (Busy imply x<=5)"
    (Ta.Checker.check net
       (Ta.Prop.Invariant
          (Ta.Prop.Imply (busy_f, Ta.Prop.Clock (Ta.Model.clock_le x 5)))));
  show "A[] not deadlock" (Ta.Checker.check net Ta.Prop.NoDeadlock);
  show "Idle --> Busy"
    (Ta.Checker.check net (Ta.Prop.LeadsTo (Ta.Prop.loc net "Worker" "Idle", busy_f)));

  (* 3. Statistical model checking: how likely is the worker busy within
     2 time units under the stochastic semantics? *)
  let q = { Smc.horizon = 2.0; goal = busy_f } in
  let i = Smc.probability ~runs:2000 net q in
  Printf.printf "Pr[<=2](<> Worker.Busy) ~ %.3f   [%.3f, %.3f] (%d runs)\n"
    i.Smc.Estimate.p_hat i.Smc.Estimate.low i.Smc.Estimate.high
    i.Smc.Estimate.trials;

  (* 4. Fastest time to get busy (UPPAAL-CORA style). *)
  match
    Priced.min_time_reach net ~target:(fun st ->
        st.Discrete.Digital.dlocs.(0) = busy)
  with
  | Some o -> Printf.printf "minimum time to Busy: %d\n" o.Priced.cost
  | None -> print_endline "Busy unreachable"
