examples/mbt_demo.mli:
