examples/fischer.ml: Array List Printf Quantlib Sys Ta
