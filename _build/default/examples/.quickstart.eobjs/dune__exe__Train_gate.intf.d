examples/train_gate.mli:
