examples/train_gate.ml: Array List Printf Quantlib Smc Sys Ta
