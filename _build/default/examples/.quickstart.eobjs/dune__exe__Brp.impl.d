examples/brp.ml: Array Modest Printf Quantlib
