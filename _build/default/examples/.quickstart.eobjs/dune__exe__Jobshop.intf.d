examples/jobshop.mli:
