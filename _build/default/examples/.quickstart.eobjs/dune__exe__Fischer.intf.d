examples/fischer.mli:
