examples/brp.mli:
