examples/quickstart.ml: Array Discrete Priced Printf Quantlib Smc Ta
