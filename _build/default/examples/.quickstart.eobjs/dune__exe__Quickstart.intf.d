examples/quickstart.mli:
