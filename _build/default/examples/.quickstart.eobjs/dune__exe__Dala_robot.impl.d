examples/dala_robot.ml: Array Bip Filename List Printf Quantlib String
