examples/synthesis_wcet.mli:
