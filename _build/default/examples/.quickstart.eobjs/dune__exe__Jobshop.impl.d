examples/jobshop.ml: List Priced Printf Quantlib
