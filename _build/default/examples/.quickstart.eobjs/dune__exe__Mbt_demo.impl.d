examples/mbt_demo.ml: Format List Mbt Printf Quantlib String
