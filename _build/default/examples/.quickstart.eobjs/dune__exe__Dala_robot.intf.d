examples/dala_robot.mli:
