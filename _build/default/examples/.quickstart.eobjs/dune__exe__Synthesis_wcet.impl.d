examples/synthesis_wcet.ml: Array Discrete Games Priced Printf Quantlib String Ta
