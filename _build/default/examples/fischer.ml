(* Fischer's timing-based mutual-exclusion protocol: the classic UPPAAL
   verification target, here with its textbook bug demonstrated.

   Correctness depends on a strict inequality: after writing the shared
   variable a process must wait strictly longer than any writer's delay
   bound before entering the critical section.

   Run with: dune exec examples/fischer.exe [-- n_processes] *)

open Quantlib

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 3 in
  Printf.printf "== Fischer's protocol, %d processes, k = 2 ==\n\n" n;
  let show name (r : Ta.Checker.result) =
    Printf.printf "%-36s %-9s (%d states)\n" name
      (if r.Ta.Checker.holds then "satisfied" else "VIOLATED")
      r.Ta.Checker.stats.Ta.Checker.visited
  in
  let net = Ta.Fischer.make ~n () in
  show "mutual exclusion" (Ta.Checker.check net (Ta.Fischer.mutex net));
  show "critical section reachable"
    (Ta.Checker.check net (Ta.Fischer.cs_reachable net));
  show "deadlock-free" (Ta.Checker.check net Ta.Fischer.no_deadlock);

  Printf.printf "\n-- injected bug: wait >= k instead of > k --\n";
  let broken = Ta.Fischer.make ~strict_wait:false ~n:2 () in
  let r = Ta.Checker.check broken (Ta.Fischer.mutex broken) in
  show "mutual exclusion (broken variant)" r;
  match r.Ta.Checker.trace with
  | Some trace ->
    print_endline "counterexample run:";
    List.iter (fun step -> Printf.printf "  %s\n" step) trace
  | None -> ()
