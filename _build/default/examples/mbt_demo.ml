(* Model-based testing (Section V): exact ioco conformance, generated
   test suites against mutated implementations, and the TRON-style
   on-line timed tester.

   Run with: dune exec examples/mbt_demo.exe *)

open Quantlib

let () =
  print_endline "== ioco model-based testing ==\n";

  (* Exact conformance of the software-bus implementations. *)
  let verdict name impl =
    match Mbt.Ioco.check ~impl ~spec:Mbt.Demo.bus_spec with
    | Ok _ -> Printf.printf "%-24s ioco-conforms\n" name
    | Error ce ->
      Printf.printf "%-24s NOT ioco: after [%s], observed %s\n" name
        (String.concat " " ce.Mbt.Ioco.trace)
        (Format.asprintf "%a" Mbt.Lts.pp_obs ce.Mbt.Ioco.bad_obs)
  in
  verdict "bus (reference)" Mbt.Demo.bus_impl_good;
  verdict "bus (lossy notify)" Mbt.Demo.bus_impl_lossy;
  verdict "bus (double notify)" Mbt.Demo.bus_impl_chatty;

  (* Generated test suite against simulated IUTs. *)
  print_newline ();
  let tests = Mbt.Testgen.generate_suite Mbt.Demo.bus_spec ~seed:17 ~count:100 ~depth:10 in
  Printf.printf "generated %d tests (total %d events) from the bus spec\n"
    (List.length tests)
    (List.fold_left (fun acc t -> acc + Mbt.Testgen.size t) 0 tests);
  let battery name impl seed =
    let iut = Mbt.Testgen.lts_iut impl ~seed in
    let passes, fails = Mbt.Testgen.run_suite tests iut ~repetitions:20 in
    Printf.printf "  %-24s pass %3d   fail %3d\n" name passes fails
  in
  battery "reference impl" Mbt.Demo.bus_impl_good 1;
  battery "lossy mutant" Mbt.Demo.bus_impl_lossy 2;
  battery "chatty mutant" Mbt.Demo.bus_impl_chatty 3;

  (* rtioco: on-line testing of a timed request/response server. *)
  print_newline ();
  print_endline "== rtioco on-line timed testing (UPPAAL-TRON style) ==\n";
  let net = Mbt.Demo.timed_server () in
  let inputs = Mbt.Demo.timed_inputs and outputs = Mbt.Demo.timed_outputs in
  let show name iut =
    match Mbt.Rtioco.test net ~inputs ~outputs ~rounds:100 ~seed:7 iut with
    | Mbt.Rtioco.T_pass rounds -> Printf.printf "%-24s pass (%d rounds)\n" name rounds
    | Mbt.Rtioco.T_fail { round; reason } ->
      Printf.printf "%-24s FAIL at round %d: %s\n" name round reason
  in
  show "conforming server" (Mbt.Rtioco.spec_iut net ~outputs ~seed:7);
  show "mute server" (Mbt.Rtioco.mute_iut (Mbt.Rtioco.spec_iut net ~outputs ~seed:8));
  show "wrong-output server"
    (Mbt.Rtioco.noisy_iut (Mbt.Rtioco.spec_iut net ~outputs ~seed:9) ~wrong:"nack" ~every:1)
