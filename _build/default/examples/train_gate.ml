(* The train-gate case study of the paper (Fig. 1): verification of the
   three correctness properties of Section II.A.a and the statistical
   experiment of Fig. 4 (cumulative distribution of crossing times).

   Run with: dune exec examples/train_gate.exe [-- n_trains] *)

open Quantlib

let () =
  let n_trains =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4
  in
  let net = Ta.Train_gate.make ~n_trains in
  Printf.printf "== Train-gate, %d trains ==\n\n" n_trains;

  (* Verification (Section II.A.a). *)
  let show name (r : Ta.Checker.result) =
    Printf.printf "%-34s %-9s (%d states explored)\n" name
      (if r.Ta.Checker.holds then "satisfied" else "VIOLATED")
      r.Ta.Checker.stats.Ta.Checker.visited
  in
  show "safety (one train on the bridge)"
    (Ta.Checker.check net (Ta.Train_gate.safety net));
  show "A[] not deadlock" (Ta.Checker.check net Ta.Train_gate.no_deadlock);
  let live_n = min n_trains 2 in
  for i = 0 to live_n - 1 do
    show
      (Printf.sprintf "Train(%d).Appr --> Train(%d).Cross" i i)
      (Ta.Checker.check net (Ta.Train_gate.liveness net i))
  done;

  (* Fig. 4: cumulative probability of crossing in function of time,
     rates 1 + id. *)
  print_newline ();
  Printf.printf "Pr[<=100](<> Train(i).Cross) — cumulative distribution (Fig. 4)\n";
  let config =
    { Smc.Stochastic.rates = (fun auto _ -> 1.0 +. float_of_int auto) }
  in
  let grid = List.init 8 (fun k -> 10.0 +. (12.0 *. float_of_int k)) in
  Printf.printf "%8s" "t";
  List.iter (fun t -> Printf.printf "%8.0f" t) grid;
  print_newline ();
  for i = 0 to n_trains - 1 do
    let series =
      Smc.cdf ~config ~runs:500 ~seed:(100 + i) net
        ~goal:(Ta.Train_gate.cross_formula net i) ~horizon:100.0 ~grid
    in
    Printf.printf "Train %d " i;
    List.iter (fun (_, p) -> Printf.printf "%8.2f" p) series;
    print_newline ()
  done
