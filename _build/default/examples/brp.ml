(* The Bounded Retransmission Protocol under the MODEST toolset
   (Section III): model classification, the Fig. 5 channel through the
   parser, and the three analysis backends of Table I.

   Run with: dune exec examples/brp.exe *)

open Quantlib

let fig5 =
  {|
  // The communication channel of Fig. 5, verbatim.
  const int TD = 1;
  int delivered = 0;
  process Channel() {
    clock c;
    put palt {
    :98: {= c = 0 =};
         invariant(c <= TD) get
    : 2: {==} // message lost
    }; Channel()
  }
  process Sender() { put; Sender() }
  process Receiver() { get; {= delivered = 1 =}; Receiver() }
  par { Sender() || Channel() || Receiver() }
  |}

let () =
  (* 1. The Fig. 5 MODEST source parses and classifies as a PTA. *)
  let sta = Modest.Parser.parse_and_compile fig5 in
  Printf.printf "Fig. 5 channel model: parsed, class = %s, %d processes\n\n"
    (Modest.Sta.class_name (Modest.Sta.classify sta))
    (Array.length sta.Modest.Sta.processes);

  (* 2. The BRP instance of Table I: (N, MAX, TD) = (16, 2, 1). *)
  let t = Modest.Brp.make () in
  Printf.printf "BRP (N, MAX, TD) = (%d, %d, %d), class %s\n\n" t.Modest.Brp.n
    t.Modest.Brp.max_retrans t.Modest.Brp.td
    (Modest.Sta.class_name (Modest.Sta.classify t.Modest.Brp.sta));

  let ib = function
    | `Zero -> "0"
    | `Interval (a, b) -> Printf.sprintf "[%g, %g]" a b
  in
  Printf.printf "-- mctau (TA overapproximation, UPPAAL backend) --\n";
  let mt = Modest.Brp.run_mctau t in
  Printf.printf "  TA1 %b  TA2 %b  PA %s  PB %s  P1 %s  P2 %s  Dmax %s  Emax n/a\n\n"
    mt.Modest.Brp.mt_ta1 mt.Modest.Brp.mt_ta2 (ib mt.Modest.Brp.mt_pa)
    (ib mt.Modest.Brp.mt_pb) (ib mt.Modest.Brp.mt_p1) (ib mt.Modest.Brp.mt_p2)
    (ib mt.Modest.Brp.mt_dmax);

  Printf.printf "-- mcpta (digital clocks + value iteration, PRISM backend) --\n";
  let mc = Modest.Brp.run_mcpta t in
  Printf.printf
    "  TA1 %b  TA2 %b  PA %g  PB %g  P1 %.4e  P2 %.4e  Dmax %.4f  Emax %.3f  (%d states)\n\n"
    mc.Modest.Brp.mc_ta1 mc.Modest.Brp.mc_ta2 mc.Modest.Brp.mc_pa
    mc.Modest.Brp.mc_pb mc.Modest.Brp.mc_p1 mc.Modest.Brp.mc_p2
    mc.Modest.Brp.mc_dmax mc.Modest.Brp.mc_emax mc.Modest.Brp.mc_states;

  Printf.printf "-- modes (discrete-event simulation, 10000 runs) --\n";
  let md = Modest.Brp.run_modes t in
  Printf.printf
    "  TA1 %d/%d  TA2 %d/%d  PA %d obs  PB %d obs  P1 %d obs  P2 %d obs  Dmax %d/%d  Emax mu=%.3f sigma=%.3f\n"
    md.Modest.Brp.md_ta1_ok md.Modest.Brp.md_runs md.Modest.Brp.md_ta2_ok
    md.Modest.Brp.md_runs md.Modest.Brp.md_pa_obs md.Modest.Brp.md_pb_obs
    md.Modest.Brp.md_p1_obs md.Modest.Brp.md_p2_obs md.Modest.Brp.md_dmax_obs
    md.Modest.Brp.md_runs md.Modest.Brp.md_emax_mean md.Modest.Brp.md_emax_std;
  Printf.printf "\n(paper, Table I: P1 = 4.233e-4, P2 = 2.645e-5, Dmax = 9.996e-1, Emax = 33.473)\n"
