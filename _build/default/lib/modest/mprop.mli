(** Backend-independent state predicates for MODEST models.

    One predicate language evaluated by all three backends: [mctau]
    (via the TA overapproximation), [mcpta] (on digital states) and
    [modes] (on simulation states). *)

type t =
  | P_true
  | P_loc of string * string  (** process name, location name *)
  | P_data of Ta.Expr.t
  | P_not of t
  | P_and of t * t
  | P_or of t * t

(** [eval sta ~locs ~store p] evaluates on raw discrete parts. *)
val eval : Sta.t -> locs:int array -> store:int array -> t -> bool

(** [to_ta_formula sta net p] translates for the TA overapproximation
    produced by {!Mctau.to_ta} (process indices = automaton indices). *)
val to_ta_formula : Sta.t -> Ta.Model.network -> t -> Ta.Prop.formula

val pp : Format.formatter -> t -> unit
