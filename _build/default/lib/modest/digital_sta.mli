(** Digital-clocks expansion of STA/PTA networks into explicit MDPs.

    The core of the [mcpta] backend: for closed, diagonal-free PTA the
    integer-time semantics preserves reachability probabilities and
    expected rewards (Kwiatkowska et al.). The unit-delay action carries
    reward 1 (elapsed time); synchronised edges multiply their branch
    distributions. An optional bounded global time counter supports
    time-bounded properties. *)

type dstate = {
  slocs : int array;
  sstore : int array;
  sclocks : int array;  (** saturated at max_const + 1 *)
  stime : int;  (** -1 when untracked, else capped at [time_cap] + 1 *)
}

type expansion = {
  sta : Sta.t;
  mdp : Mdp.t;
  states : dstate array;
  initial : int;  (** always 0 *)
}

(** [expand sta] builds the reachable MDP.
    @param time_cap track global elapsed time up to this bound
    @raise Invalid_argument when the model is not closed/diagonal-free
    @raise Failure when [max_states] (default 5_000_000) is exceeded *)
val expand : ?time_cap:int -> ?max_states:int -> Sta.t -> expansion

(** [target_of exp pred] evaluates a predicate over all states. *)
val target_of : expansion -> (dstate -> bool) -> bool array

(** [pred_of_mprop exp p] lifts an {!Mprop.t} (discrete parts only). *)
val pred_of_mprop : expansion -> Mprop.t -> dstate -> bool
