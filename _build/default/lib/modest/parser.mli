(** Recursive-descent parser for the MODEST subset (Fig. 5's syntax).

    Grammar sketch:
    {v
    model   := decl*
    decl    := ["const"] ("int"|"bool") IDENT ["=" expr] ";"
             | "int" IDENT "[" INT "]" ["=" expr] ";"
             | "clock" IDENT ("," IDENT)* ";"
             | "process" IDENT "(" ")" "{" local* seq "}"
             | "par" "{" IDENT "(" ")" ("||" IDENT "(" ")")* "}"
    local   := "clock" ... ";" | ("int"|"bool") IDENT ["=" expr] ";"
    seq     := stmt (";" stmt)*
    stmt    := "stop" | "skip" | "{=" [assigns] "=}"
             | IDENT                         (action)
             | IDENT "palt" "{" branch+ "}"
             | IDENT "(" ")"                 (process call)
             | "alt" "{" ("::" seq)+ "}"
             | "do" "{" seq "}"
             | "when" "(" expr ")" stmt
             | "invariant" "(" cconstrs ")" stmt
    branch  := ":" INT ":" seq               (up to next branch / "}")
    v} *)

exception Parse_error of string * int  (** message, line *)

(** [parse src] parses a whole model.
    @raise Parse_error or {!Lexer.Lex_error}. *)
val parse : string -> Ast.model

(** [parse_and_compile src] — straight to an STA network. *)
val parse_and_compile : string -> Sta.t
