type stats = { n_states : int; iterations : int }

let invariant_holds sta p =
  let exp = Digital_sta.expand sta in
  let pred = Digital_sta.pred_of_mprop exp p in
  let ok = Array.for_all pred exp.Digital_sta.states in
  (ok, { n_states = Array.length exp.Digital_sta.states; iterations = 0 })

let reach_prob sta p ~maximize =
  let exp = Digital_sta.expand sta in
  let target = Digital_sta.target_of exp (Digital_sta.pred_of_mprop exp p) in
  let values, vi = Mdp.reach_prob exp.Digital_sta.mdp ~target ~maximize in
  ( values.(exp.Digital_sta.initial),
    {
      n_states = Array.length exp.Digital_sta.states;
      iterations = vi.Mdp.iterations;
    } )

let time_bounded_reach sta p ~bound ~maximize =
  let exp = Digital_sta.expand ~time_cap:bound sta in
  let pred = Digital_sta.pred_of_mprop exp p in
  let target =
    Digital_sta.target_of exp (fun st ->
        pred st && st.Digital_sta.stime <= bound)
  in
  let values, vi = Mdp.reach_prob exp.Digital_sta.mdp ~target ~maximize in
  ( values.(exp.Digital_sta.initial),
    {
      n_states = Array.length exp.Digital_sta.states;
      iterations = vi.Mdp.iterations;
    } )

let expected_time sta p ~maximize =
  let exp = Digital_sta.expand sta in
  let target = Digital_sta.target_of exp (Digital_sta.pred_of_mprop exp p) in
  let values, vi = Mdp.expected_reward exp.Digital_sta.mdp ~target ~maximize in
  ( values.(exp.Digital_sta.initial),
    {
      n_states = Array.length exp.Digital_sta.states;
      iterations = vi.Mdp.iterations;
    } )
