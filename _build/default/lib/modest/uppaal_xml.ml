module Model = Ta.Model
module Bound = Zones.Bound

(* UPPAAL identifiers cannot contain '.', which qualified MODEST locals
   (e.g. "Channel.c") do; integer expressions never print dots, so a
   plain replacement on rendered text is safe. *)
let ident s = String.map (fun c -> if c = '.' then '_' else c) s

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '&' -> Buffer.add_string b "&amp;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let constr_to_string (net : Model.network) (c : Model.constr) =
  let name i = net.Model.clock_names.(i) in
  let op strict = if strict then "<" else "<=" in
  let name i = ident (name i) in
  if Bound.is_inf c.Model.cb then "true"
  else begin
    let m = Bound.constant c.Model.cb in
    let strict = Bound.is_strict c.Model.cb in
    if c.Model.cj = 0 then Printf.sprintf "%s %s %d" (name c.Model.ci) (op strict) m
    else if c.Model.ci = 0 then
      (* -x ≺ m  ⟺  x ≻ -m *)
      Printf.sprintf "%s %s %d" (name c.Model.cj) (if strict then ">" else ">=") (-m)
    else
      Printf.sprintf "%s - %s %s %d" (name c.Model.ci) (name c.Model.cj) (op strict) m
  end

let conj net cs = String.concat " && " (List.map (constr_to_string net) cs)

let update_to_string (u : Model.update) =
  match u with
  | Model.Reset (x, v) -> Some (Printf.sprintf "x%d = %d" x v)
  | Model.Assign (lv, rhs) ->
    let lhs =
      match lv with
      | Ta.Expr.Cell v -> ident v.Ta.Store.var_name
      | Ta.Expr.Elem (v, idx) ->
        Printf.sprintf "%s[%s]" (ident v.Ta.Store.var_name)
          (ident (Ta.Expr.to_string idx))
    in
    Some (Printf.sprintf "%s = %s" lhs (ident (Ta.Expr.to_string rhs)))
  | Model.Prim (name, _) -> Some (Printf.sprintf "/* prim: %s() */" name)

(* Reset rendering needs real clock names; redo with the network. *)
let updates_to_string (net : Model.network) updates =
  let render = function
    | Model.Reset (x, v) ->
      Some (Printf.sprintf "%s = %d" (ident net.Model.clock_names.(x)) v)
    | u -> update_to_string u
  in
  String.concat ", " (List.filter_map render updates)

let of_network (net : Model.network) =
  let b = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n";
  add "<!DOCTYPE nta PUBLIC \"-//Uppaal Team//DTD Flat System 1.1//EN\" \
       \"http://www.it.uu.se/research/group/darts/uppaal/flat-1_2.dtd\">\n";
  add "<nta>\n";
  (* Global declarations: clocks, channels, variables. *)
  add "  <declaration>\n";
  for x = 1 to net.Model.n_clocks do
    add "clock %s;\n" (ident net.Model.clock_names.(x))
  done;
  Array.iter
    (fun (c : Model.chan) ->
      add "%s%schan %s;\n"
        (if c.Model.urgent then "urgent " else "")
        (if c.Model.kind = Model.Broadcast then "broadcast " else "")
        c.Model.chan_name)
    net.Model.channels;
  List.iter
    (fun (v : Ta.Store.var) ->
      if v.Ta.Store.len = 1 then add "int %s;\n" (ident v.Ta.Store.var_name)
      else add "int %s[%d];\n" (ident v.Ta.Store.var_name) v.Ta.Store.len)
    (Ta.Store.vars net.Model.layout);
  add "  </declaration>\n";
  (* Templates, one per automaton, locations on a circle. *)
  Array.iteri
    (fun _ (a : Model.automaton) ->
      add "  <template>\n    <name>%s</name>\n" (escape a.Model.auto_name);
      let n = Array.length a.Model.locations in
      let coords i =
        let angle = 2.0 *. Float.pi *. float_of_int i /. float_of_int (max n 1) in
        ( int_of_float (200.0 *. cos angle),
          int_of_float (200.0 *. sin angle) )
      in
      Array.iteri
        (fun i (l : Model.location) ->
          let x, y = coords i in
          add "    <location id=\"id%d\" x=\"%d\" y=\"%d\">\n" i x y;
          add "      <name>%s</name>\n" (escape l.Model.loc_name);
          if l.Model.invariant <> [] then
            add "      <label kind=\"invariant\">%s</label>\n"
              (escape (conj net l.Model.invariant));
          (match l.Model.kind with
           | Model.Urgent -> add "      <urgent/>\n"
           | Model.Committed -> add "      <committed/>\n"
           | Model.Normal -> ());
          add "    </location>\n")
        a.Model.locations;
      add "    <init ref=\"id%d\"/>\n" a.Model.initial;
      Array.iter
        (fun edges ->
          List.iter
            (fun (e : Model.edge) ->
              add "    <transition>\n";
              add "      <source ref=\"id%d\"/>\n" e.Model.src;
              add "      <target ref=\"id%d\"/>\n" e.Model.dst;
              let guard_parts =
                (match e.Model.data_guard with
                 | Some g -> [ ident (Ta.Expr.to_string g) ]
                 | None -> [])
                @ (if e.Model.clock_guard = [] then []
                   else [ conj net e.Model.clock_guard ])
              in
              if guard_parts <> [] then
                add "      <label kind=\"guard\">%s</label>\n"
                  (escape (String.concat " && " guard_parts));
              (match e.Model.sync with
               | Model.Tau -> ()
               | Model.Emit c ->
                 add "      <label kind=\"synchronisation\">%s!</label>\n"
                   (escape c.Model.chan_name)
               | Model.Receive c ->
                 add "      <label kind=\"synchronisation\">%s?</label>\n"
                   (escape c.Model.chan_name));
              if e.Model.updates <> [] then
                add "      <label kind=\"assignment\">%s</label>\n"
                  (escape (updates_to_string net e.Model.updates));
              add "    </transition>\n")
            edges)
        a.Model.out;
      add "  </template>\n")
    net.Model.automata;
  (* System line. *)
  let names =
    Array.to_list (Array.map (fun (a : Model.automaton) -> a.Model.auto_name) net.Model.automata)
  in
  add "  <system>system %s;</system>\n" (String.concat ", " names);
  add "</nta>\n";
  Buffer.contents b

let of_sta sta = of_network (Mctau.to_ta sta)
