exception Parse_error of string * int

type state = { mutable toks : (Lexer.token * int) list }

let error st fmt =
  let line = match st.toks with (_, l) :: _ -> l | [] -> 0 in
  Printf.ksprintf (fun s -> raise (Parse_error (s, line))) fmt

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Lexer.EOF

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let eat st tok =
  if peek st = tok then advance st
  else
    error st "expected %s, found %s" (Lexer.token_to_string tok)
      (Lexer.token_to_string (peek st))

let eat_punct st p = eat st (Lexer.PUNCT p)

let ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | t -> error st "expected identifier, found %s" (Lexer.token_to_string t)

let int_lit st =
  match peek st with
  | Lexer.INT n ->
    advance st;
    n
  | t -> error st "expected integer, found %s" (Lexer.token_to_string t)

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing)                                   *)
(* ------------------------------------------------------------------ *)

let rec expr st = expr_or st

and expr_or st =
  let left = expr_and st in
  if peek st = Lexer.PUNCT "||" then begin
    advance st;
    Ast.E_bin ("||", left, expr_or st)
  end
  else left

and expr_and st =
  let left = expr_cmp st in
  if peek st = Lexer.PUNCT "&&" then begin
    advance st;
    Ast.E_bin ("&&", left, expr_and st)
  end
  else left

and expr_cmp st =
  let left = expr_add st in
  match peek st with
  | Lexer.PUNCT (("==" | "!=" | "<" | "<=" | ">" | ">=") as op) ->
    advance st;
    Ast.E_bin (op, left, expr_add st)
  | _ -> left

and expr_add st =
  let rec loop left =
    match peek st with
    | Lexer.PUNCT (("+" | "-") as op) ->
      advance st;
      loop (Ast.E_bin (op, left, expr_mul st))
    | _ -> left
  in
  loop (expr_mul st)

and expr_mul st =
  let rec loop left =
    match peek st with
    | Lexer.PUNCT (("*" | "/" | "%") as op) ->
      advance st;
      loop (Ast.E_bin (op, left, expr_unary st))
    | _ -> left
  in
  loop (expr_unary st)

and expr_unary st =
  match peek st with
  | Lexer.PUNCT "-" ->
    advance st;
    Ast.E_neg (expr_unary st)
  | Lexer.PUNCT "!" ->
    advance st;
    Ast.E_not (expr_unary st)
  | _ -> expr_atom st

and expr_atom st =
  match peek st with
  | Lexer.INT n ->
    advance st;
    Ast.E_int n
  | Lexer.KW "true" ->
    advance st;
    Ast.E_bool true
  | Lexer.KW "false" ->
    advance st;
    Ast.E_bool false
  | Lexer.IDENT name ->
    advance st;
    if peek st = Lexer.PUNCT "[" then begin
      advance st;
      let idx = expr st in
      eat_punct st "]";
      Ast.E_index (name, idx)
    end
    else Ast.E_name name
  | Lexer.PUNCT "(" ->
    advance st;
    let e = expr st in
    eat_punct st ")";
    e
  | t -> error st "expected expression, found %s" (Lexer.token_to_string t)

(* ------------------------------------------------------------------ *)
(* Clock constraints: IDENT op expr (&& ...)                           *)
(* ------------------------------------------------------------------ *)

let cconstr st =
  let clock = ident st in
  let op =
    match peek st with
    | Lexer.PUNCT "<=" -> `Le
    | Lexer.PUNCT "<" -> `Lt
    | Lexer.PUNCT ">=" -> `Ge
    | Lexer.PUNCT ">" -> `Gt
    | Lexer.PUNCT "==" -> `Eq
    | t -> error st "expected clock comparison, found %s" (Lexer.token_to_string t)
  in
  advance st;
  let rhs = expr st in
  { Ast.k_clock = clock; k_op = op; k_rhs = rhs }

let cconstrs st =
  let rec loop acc =
    let c = cconstr st in
    if peek st = Lexer.PUNCT "&&" then begin
      advance st;
      loop (c :: acc)
    end
    else List.rev (c :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Assignments: x = e, a[i] = e (comma separated)                      *)
(* ------------------------------------------------------------------ *)

let assigns st =
  if peek st = Lexer.PUNCT "=}" then []
  else begin
    let rec loop acc =
      let lhs = ident st in
      let index =
        if peek st = Lexer.PUNCT "[" then begin
          advance st;
          let e = expr st in
          eat_punct st "]";
          Some e
        end
        else None
      in
      eat_punct st "=";
      let rhs = expr st in
      let a = { Ast.a_lhs = lhs; a_index = index; a_rhs = rhs } in
      if peek st = Lexer.PUNCT "," then begin
        advance st;
        loop (a :: acc)
      end
      else List.rev (a :: acc)
    in
    loop []
  end

(* ------------------------------------------------------------------ *)
(* Statements and sequences                                            *)
(* ------------------------------------------------------------------ *)

(* Promote leading tau-assignments of a branch body into the branch's
   update list (PTA-style: they happen atomically with the action). *)
let rec promote_assigns p =
  match p with
  | Ast.Seq (Ast.Tau assigns, rest) ->
    let more, cont = promote_assigns rest in
    (assigns @ more, cont)
  | Ast.Tau assigns -> (assigns, Ast.Skip)
  | _ -> ([], p)

let rec stmt st =
  match peek st with
  | Lexer.KW "stop" ->
    advance st;
    Ast.Stop
  | Lexer.KW "skip" ->
    advance st;
    Ast.Skip
  | Lexer.PUNCT "{=" ->
    advance st;
    let a = assigns st in
    eat_punct st "=}";
    Ast.Tau a
  | Lexer.KW "when" ->
    advance st;
    eat_punct st "(";
    let g = expr st in
    eat_punct st ")";
    Ast.When (g, stmt st)
  | Lexer.KW "invariant" ->
    advance st;
    eat_punct st "(";
    let cc = cconstrs st in
    eat_punct st ")";
    Ast.Inv (cc, stmt st)
  | Lexer.KW "do" ->
    advance st;
    eat_punct st "{";
    let body = seq st in
    eat_punct st "}";
    Ast.Do body
  | Lexer.KW "alt" ->
    advance st;
    eat_punct st "{";
    let rec branches acc =
      if peek st = Lexer.PUNCT "::" then begin
        advance st;
        let s = seq st in
        branches (s :: acc)
      end
      else List.rev acc
    in
    let bs = branches [] in
    eat_punct st "}";
    if bs = [] then error st "alt without branches";
    Ast.Alt bs
  | Lexer.PUNCT "(" ->
    advance st;
    let s = seq st in
    eat_punct st ")";
    s
  | Lexer.IDENT name -> (
      advance st;
      match peek st with
      | Lexer.PUNCT "(" ->
        advance st;
        eat_punct st ")";
        Ast.Call name
      | Lexer.KW "palt" ->
        advance st;
        eat_punct st "{";
        let rec branches acc =
          if peek st = Lexer.PUNCT ":" then begin
            advance st;
            let w = int_lit st in
            eat_punct st ":";
            let body = seq st in
            let br_assigns, br_cont = promote_assigns body in
            branches ({ Ast.br_weight = w; br_assigns; br_cont } :: acc)
          end
          else List.rev acc
        in
        let bs = branches [] in
        eat_punct st "}";
        if bs = [] then error st "palt without branches";
        Ast.Act (name, bs)
      | _ -> Ast.act name)
  | t -> error st "expected statement, found %s" (Lexer.token_to_string t)

and seq st =
  let first = stmt st in
  let rec loop acc =
    if peek st = Lexer.PUNCT ";" then begin
      advance st;
      (* A trailing semicolon before a closer is tolerated. *)
      match peek st with
      | Lexer.PUNCT ("}" | ":" | "::" | ")") | Lexer.EOF -> acc
      | _ ->
        let s = stmt st in
        loop (Ast.Seq (acc, s))
    end
    else acc
  in
  loop first

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let var_decl st ~const =
  (* "int"/"bool" already consumed by caller?? no: consumed here *)
  (match peek st with
   | Lexer.KW "int" | Lexer.KW "bool" -> advance st
   | t -> error st "expected int/bool, found %s" (Lexer.token_to_string t));
  let name = ident st in
  if peek st = Lexer.PUNCT "[" then begin
    advance st;
    let len = int_lit st in
    eat_punct st "]";
    let init =
      if peek st = Lexer.PUNCT "=" then begin
        advance st;
        Some (expr st)
      end
      else None
    in
    eat_punct st ";";
    if const then error st "const arrays are not supported";
    Ast.D_array (name, len, init)
  end
  else begin
    let init =
      if peek st = Lexer.PUNCT "=" then begin
        advance st;
        Some (expr st)
      end
      else None
    in
    eat_punct st ";";
    if const then begin
      match init with
      | Some e -> Ast.D_const (name, e)
      | None -> error st "const without initializer"
    end
    else Ast.D_var (name, init)
  end

let clock_decl st =
  eat st (Lexer.KW "clock");
  let rec names acc =
    let n = ident st in
    if peek st = Lexer.PUNCT "," then begin
      advance st;
      names (n :: acc)
    end
    else List.rev (n :: acc)
  in
  let ns = names [] in
  eat_punct st ";";
  ns

let decl st =
  match peek st with
  | Lexer.KW "const" ->
    advance st;
    var_decl st ~const:true
  | Lexer.KW ("int" | "bool") -> var_decl st ~const:false
  | Lexer.KW "clock" -> Ast.D_clock (clock_decl st)
  | Lexer.KW "process" ->
    advance st;
    let name = ident st in
    eat_punct st "(";
    eat_punct st ")";
    eat_punct st "{";
    let rec locals acc =
      match peek st with
      | Lexer.KW "clock" -> locals (Ast.L_clock (clock_decl st) :: acc)
      | Lexer.KW ("int" | "bool") -> (
          match var_decl st ~const:false with
          | Ast.D_var (n, init) -> locals (Ast.L_var (n, init) :: acc)
          | _ -> error st "arrays must be declared globally")
      | _ -> List.rev acc
    in
    let ls = locals [] in
    let body = seq st in
    eat_punct st "}";
    Ast.D_process (name, ls, body)
  | Lexer.KW "par" ->
    advance st;
    eat_punct st "{";
    let rec comps acc =
      let n = ident st in
      eat_punct st "(";
      eat_punct st ")";
      if peek st = Lexer.PUNCT "||" then begin
        advance st;
        comps (n :: acc)
      end
      else List.rev (n :: acc)
    in
    let cs = comps [] in
    eat_punct st "}";
    Ast.D_par cs
  | t -> error st "expected declaration, found %s" (Lexer.token_to_string t)

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let rec loop acc =
    if peek st = Lexer.EOF then List.rev acc else loop (decl st :: acc)
  in
  loop []

let parse_and_compile src = Ast.compile (parse src)
