(** Tokenizer for the MODEST concrete syntax subset. *)

type token =
  | INT of int
  | IDENT of string
  | KW of string  (** keywords: process, palt, alt, when, invariant, ... *)
  | PUNCT of string  (** {, }, (, ), ;, :, ::, ||, &&, ==, {=, =}, ... *)
  | EOF

exception Lex_error of string * int  (** message, line *)

(** [tokenize src] — skips [//] and [/* */] comments.
    @raise Lex_error on bad input. *)
val tokenize : string -> (token * int) list
(** Each token is paired with its line number. *)

val token_to_string : token -> string
