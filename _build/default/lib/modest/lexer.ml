type token =
  | INT of int
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

exception Lex_error of string * int

let keywords =
  [
    "process"; "palt"; "alt"; "when"; "invariant"; "par"; "clock"; "int";
    "bool"; "const"; "stop"; "skip"; "true"; "false"; "do";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let push t = tokens := (t, !line) :: !tokens in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && peek 1 = Some '/' then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      pos := !pos + 2;
      let rec skip () =
        if !pos + 1 >= n then raise (Lex_error ("unterminated comment", !line))
        else if src.[!pos] = '*' && src.[!pos + 1] = '/' then pos := !pos + 2
        else begin
          if src.[!pos] = '\n' then incr line;
          incr pos;
          skip ()
        end
      in
      skip ()
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      push (INT (int_of_string (String.sub src start (!pos - start))))
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      let word = String.sub src start (!pos - start) in
      push (if List.mem word keywords then KW word else IDENT word)
    end
    else begin
      (* Multi-character punctuation, longest match first. *)
      let two = if !pos + 1 < n then String.sub src !pos 2 else "" in
      match two with
      | "{=" | "=}" | "::" | "||" | "&&" | "==" | "!=" | "<=" | ">=" ->
        push (PUNCT two);
        pos := !pos + 2
      | _ ->
        (match c with
         | '{' | '}' | '(' | ')' | ';' | ':' | ',' | '=' | '<' | '>' | '+'
         | '-' | '*' | '/' | '%' | '!' | '[' | ']' ->
           push (PUNCT (String.make 1 c));
           incr pos
         | _ ->
           raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line)))
    end
  done;
  push EOF;
  List.rev !tokens

let token_to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> Printf.sprintf "%S" s
  | EOF -> "<eof>"
