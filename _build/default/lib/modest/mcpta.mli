(** The [mcpta] backend: exact probabilistic model checking of MODEST
    PTA models through digital clocks and value iteration (the paper's
    PRISM-backed tool, reproduced on {!Mdp}). *)

type stats = { n_states : int; iterations : int }

(** [invariant_holds sta p] — does [p] hold in every reachable digital
    state? (Exact for closed models.) *)
val invariant_holds : Sta.t -> Mprop.t -> bool * stats

(** [reach_prob sta p ~maximize] — optimal probability of eventually
    reaching [p], from the initial state. *)
val reach_prob : Sta.t -> Mprop.t -> maximize:bool -> float * stats

(** [time_bounded_reach sta p ~bound ~maximize] — optimal probability of
    reaching [p] within [bound] time units. *)
val time_bounded_reach :
  Sta.t -> Mprop.t -> bound:int -> maximize:bool -> float * stats

(** [expected_time sta p ~maximize] — optimal expected time until [p]
    first holds; [infinity] when the adversary can avoid [p]. *)
val expected_time : Sta.t -> Mprop.t -> maximize:bool -> float * stats
