module Model = Ta.Model
module Expr = Ta.Expr
module Store = Ta.Store

type pexpr =
  | E_int of int
  | E_bool of bool
  | E_name of string
  | E_index of string * pexpr
  | E_neg of pexpr
  | E_not of pexpr
  | E_bin of string * pexpr * pexpr

type assign = { a_lhs : string; a_index : pexpr option; a_rhs : pexpr }

type cconstr = {
  k_clock : string;
  k_op : [ `Le | `Lt | `Ge | `Gt | `Eq ];
  k_rhs : pexpr;
}

type proc =
  | Stop
  | Skip
  | Act of string * branch list
  | Tau of assign list
  | Seq of proc * proc
  | Alt of proc list
  | When of pexpr * proc
  | When_clock of cconstr list * proc
  | Inv of cconstr list * proc
  | Do of proc
  | Call of string

and branch = { br_weight : int; br_assigns : assign list; br_cont : proc }

let act a = Act (a, [ { br_weight = 1; br_assigns = []; br_cont = Skip } ])

type decl =
  | D_const of string * pexpr
  | D_var of string * pexpr option
  | D_array of string * int * pexpr option
  | D_clock of string list
  | D_process of string * local list * proc
  | D_par of string list

and local = L_clock of string list | L_var of string * pexpr option

type model = decl list

exception Compile_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Name environments                                                   *)
(* ------------------------------------------------------------------ *)

type env = {
  consts : (string, int) Hashtbl.t;
  vars : (string, Store.var) Hashtbl.t;
  clocks : (string, int) Hashtbl.t;
  prefix : string; (* "Proc." inside a process, "" globally *)
}

let lookup tbl env name =
  match Hashtbl.find_opt tbl (env.prefix ^ name) with
  | Some v -> Some v
  | None -> Hashtbl.find_opt tbl name

(* Constant expression evaluation (clock bounds, weights, initials). *)
let rec const_eval env e =
  match e with
  | E_int n -> n
  | E_bool b -> if b then 1 else 0
  | E_neg a -> -const_eval env a
  | E_not a -> if const_eval env a = 0 then 1 else 0
  | E_name n -> (
      match lookup env.consts env n with
      | Some v -> v
      | None -> error "constant expected, but %s is not a constant" n)
  | E_index _ -> error "array access in constant expression"
  | E_bin (op, a, b) ->
    let x = const_eval env a and y = const_eval env b in
    (match op with
     | "+" -> x + y
     | "-" -> x - y
     | "*" -> x * y
     | "/" -> if y = 0 then error "division by zero in constant" else x / y
     | "%" -> if y = 0 then error "modulo by zero in constant" else x mod y
     | "==" -> if x = y then 1 else 0
     | "!=" -> if x <> y then 1 else 0
     | "<" -> if x < y then 1 else 0
     | "<=" -> if x <= y then 1 else 0
     | ">" -> if x > y then 1 else 0
     | ">=" -> if x >= y then 1 else 0
     | "&&" -> if x <> 0 && y <> 0 then 1 else 0
     | "||" -> if x <> 0 || y <> 0 then 1 else 0
     | _ -> error "unknown operator %s" op)

(* Data expression elaboration. *)
let rec data_expr env e =
  match e with
  | E_int n -> Expr.Int n
  | E_bool b -> Expr.Int (if b then 1 else 0)
  | E_neg a -> Expr.Neg (data_expr env a)
  | E_not a -> Expr.Not (data_expr env a)
  | E_name n -> (
      match lookup env.consts env n with
      | Some v -> Expr.Int v
      | None -> (
          match lookup env.vars env n with
          | Some v -> Expr.var v
          | None ->
            if lookup env.clocks env n <> None then
              error "clock %s used in a data expression" n
            else error "unknown name %s" n))
  | E_index (n, idx) -> (
      match lookup env.vars env n with
      | Some v -> Expr.index v (data_expr env idx)
      | None -> error "unknown array %s" n)
  | E_bin (op, a, b) ->
    let x = data_expr env a and y = data_expr env b in
    (match op with
     | "+" -> Expr.Add (x, y)
     | "-" -> Expr.Sub (x, y)
     | "*" -> Expr.Mul (x, y)
     | "/" -> Expr.Div (x, y)
     | "%" -> Expr.Mod (x, y)
     | "==" -> Expr.Eq (x, y)
     | "!=" -> Expr.Neq (x, y)
     | "<" -> Expr.Lt (x, y)
     | "<=" -> Expr.Le (x, y)
     | ">" -> Expr.Gt (x, y)
     | ">=" -> Expr.Ge (x, y)
     | "&&" -> Expr.And (x, y)
     | "||" -> Expr.Or (x, y)
     | _ -> error "unknown operator %s" op)

let clock_constrs env ccs =
  List.concat_map
    (fun k ->
      let x =
        match lookup env.clocks env k.k_clock with
        | Some c -> c
        | None -> error "unknown clock %s" k.k_clock
      in
      let m = const_eval env k.k_rhs in
      match k.k_op with
      | `Le -> [ Model.clock_le x m ]
      | `Lt -> [ Model.clock_lt x m ]
      | `Ge -> [ Model.clock_ge x m ]
      | `Gt -> [ Model.clock_gt x m ]
      | `Eq -> [ Model.clock_le x m; Model.clock_ge x m ])
    ccs

let assign_update env a =
  match lookup env.clocks env a.a_lhs with
  | Some x ->
    if a.a_index <> None then error "indexed clock %s" a.a_lhs;
    Model.Reset (x, const_eval env a.a_rhs)
  | None -> (
      match lookup env.vars env a.a_lhs with
      | Some v ->
        let lv =
          match a.a_index with
          | None -> Expr.Cell v
          | Some idx -> Expr.Elem (v, data_expr env idx)
        in
        Model.Assign (lv, data_expr env a.a_rhs)
      | None -> error "unknown assignment target %s" a.a_lhs)

(* ------------------------------------------------------------------ *)
(* Term compilation                                                    *)
(* ------------------------------------------------------------------ *)

(* Associate sequences to the right and drop finished prefixes so that
   semantically equal terms share locations. *)
let rec normalize t =
  match t with
  | Seq (Skip, q) -> normalize q
  | Seq (Stop, _) -> Stop
  | Seq (Seq (a, b), c) -> normalize (Seq (a, Seq (b, c)))
  | Seq (p, q) -> (
      match normalize p with
      | Skip -> normalize q
      | Stop -> Stop
      | p' -> Seq (p', normalize q))
  | Alt ps -> Alt (List.map normalize ps)
  | When (g, p) -> When (g, normalize p)
  | When_clock (cc, p) -> When_clock (cc, normalize p)
  | Inv (cc, p) -> Inv (cc, normalize p)
  | Do p -> Do (normalize p)
  | Stop | Skip | Act _ | Tau _ | Call _ -> t

let rec terminates bodies visited t =
  match t with
  | Skip -> true
  | Seq (p, q) -> terminates bodies visited p && terminates bodies visited q
  | Inv (_, p) -> terminates bodies visited p
  | Call n ->
    (not (List.mem n visited))
    &&
    (match Hashtbl.find_opt bodies n with
     | Some body -> terminates bodies (n :: visited) body
     | None -> error "unknown process %s" n)
  | Stop | Act _ | Tau _ | Alt _ | When _ | When_clock _ | Do _ -> false

(* Initial edges of a term: (guard, clock guard, action, branches,
   from_tau). Branch continuations are raw terms. *)
type proto_edge = {
  pe_guard : pexpr option;
  pe_cguard : cconstr list;
  pe_action : string option;
  pe_branches : (int * assign list * proc) list;
  pe_tau : bool;
}

let rec edges_of bodies visited t =
  match t with
  | Stop | Skip -> []
  | Act (a, brs) ->
    [
      {
        pe_guard = None;
        pe_cguard = [];
        pe_action = Some a;
        pe_branches =
          List.map (fun b -> (b.br_weight, b.br_assigns, b.br_cont)) brs;
        pe_tau = false;
      };
    ]
  | Tau assigns ->
    [
      {
        pe_guard = None;
        pe_cguard = [];
        pe_action = None;
        pe_branches = [ (1, assigns, Skip) ];
        pe_tau = true;
      };
    ]
  | Seq (p, q) ->
    let own =
      List.map
        (fun e ->
          {
            e with
            pe_branches =
              List.map (fun (w, a, c) -> (w, a, Seq (c, q))) e.pe_branches;
          })
        (edges_of bodies visited p)
    in
    if terminates bodies [] p then own @ edges_of bodies visited q else own
  | Alt ps -> List.concat_map (edges_of bodies visited) ps
  | When (g, p) ->
    List.map
      (fun e ->
        let guard =
          match e.pe_guard with
          | None -> Some g
          | Some g' -> Some (E_bin ("&&", g, g'))
        in
        { e with pe_guard = guard })
      (edges_of bodies visited p)
  | When_clock (cc, p) ->
    List.map
      (fun e -> { e with pe_cguard = cc @ e.pe_cguard })
      (edges_of bodies visited p)
  | Inv (_, p) -> edges_of bodies visited p
  | Do p ->
    (* do { p } behaves as p; do { p } — tie the loop through Seq. *)
    edges_of bodies visited (Seq (p, Do p))
  | Call n ->
    if List.mem n visited then
      error "process %s recurses without any action" n
    else begin
      match Hashtbl.find_opt bodies n with
      | Some body -> edges_of bodies (n :: visited) body
      | None -> error "unknown process %s" n
    end

let rec invariants_of bodies visited t =
  match t with
  | Inv (cc, p) -> cc @ invariants_of bodies visited p
  | Seq (p, _) | When (_, p) | When_clock (_, p) | Do p ->
    invariants_of bodies visited p
  | Alt ps -> List.concat_map (invariants_of bodies visited) ps
  | Call n ->
    if List.mem n visited then []
    else begin
      match Hashtbl.find_opt bodies n with
      | Some body -> invariants_of bodies (n :: visited) body
      | None -> []
    end
  | Stop | Skip | Act _ | Tau _ -> []

(* ------------------------------------------------------------------ *)
(* Whole-model compilation                                             *)
(* ------------------------------------------------------------------ *)

let compile (model : model) =
  let b = Sta.builder () in
  let sb = Sta.store b in
  let consts = Hashtbl.create 16 in
  let vars = Hashtbl.create 16 in
  let clocks = Hashtbl.create 16 in
  let genv = { consts; vars; clocks; prefix = "" } in
  let bodies = Hashtbl.create 16 in
  let locals_of = Hashtbl.create 16 in
  let par = ref None in
  (* Pass 1: globals and process table. *)
  List.iter
    (function
      | D_const (n, e) -> Hashtbl.replace consts n (const_eval genv e)
      | D_var (n, init) ->
        let init = Option.map (const_eval genv) init in
        Hashtbl.replace vars n (Store.int_var sb ?init n)
      | D_array (n, len, init) ->
        let init = Option.map (const_eval genv) init in
        Hashtbl.replace vars n (Store.array_var sb ?init n len)
      | D_clock names ->
        List.iter
          (fun n -> Hashtbl.replace clocks n (Sta.fresh_clock b n))
          names
      | D_process (n, locals, body) ->
        Hashtbl.replace bodies n body;
        Hashtbl.replace locals_of n locals
      | D_par names -> (
          match !par with
          | None -> par := Some names
          | Some _ -> error "multiple par declarations"))
    model;
  let roots =
    match !par with
    | Some names -> names
    | None -> (
        (* A single process model runs alone. *)
        match Hashtbl.fold (fun n _ acc -> n :: acc) bodies [] with
        | [ n ] -> [ n ]
        | _ -> error "a par { ... } composition is required")
  in
  (* Pass 2: local declarations of every instantiated process. *)
  List.iter
    (fun pname ->
      let locals =
        match Hashtbl.find_opt locals_of pname with
        | Some ls -> ls
        | None -> error "unknown process %s in par" pname
      in
      List.iter
        (function
          | L_clock names ->
            List.iter
              (fun n ->
                let qualified = pname ^ "." ^ n in
                Hashtbl.replace clocks qualified (Sta.fresh_clock b qualified))
              names
          | L_var (n, init) ->
            let qualified = pname ^ "." ^ n in
            let init = Option.map (const_eval genv) init in
            Hashtbl.replace vars qualified (Store.int_var sb ?init qualified))
        locals)
    roots;
  (* Pass 3: term graphs. *)
  List.iter
    (fun pname ->
      let env = { genv with prefix = pname ^ "." } in
      let pb = Sta.process b pname in
      let loc_ids : (proc, int) Hashtbl.t = Hashtbl.create 64 in
      let queue = Queue.create () in
      let fresh = ref 0 in
      let loc_of term =
        let term = normalize term in
        match Hashtbl.find_opt loc_ids term with
        | Some id -> id
        | None ->
          let invariant = clock_constrs env (invariants_of bodies [] term) in
          let es = edges_of bodies [] term in
          let kind =
            if List.exists (fun e -> e.pe_tau) es then Sta.L_urgent
            else Sta.L_normal
          in
          let name = Printf.sprintf "s%d" !fresh in
          incr fresh;
          let id = Sta.location pb ~kind ~invariant name in
          Hashtbl.replace loc_ids term id;
          Queue.push (id, es) queue;
          id
      in
      let root = loc_of (Call pname) in
      Sta.set_initial pb root;
      while not (Queue.is_empty queue) do
        let src, es = Queue.pop queue in
        List.iter
          (fun e ->
            let branches =
              List.map
                (fun (w, assigns, cont) ->
                  (w, List.map (assign_update env) assigns, loc_of cont))
                e.pe_branches
            in
            Sta.edge pb ~src
              ?guard:(Option.map (data_expr env) e.pe_guard)
              ~clock_guard:(clock_constrs env e.pe_cguard)
              ?action:e.pe_action ~branches ())
          es
      done)
    roots;
  Sta.build b
