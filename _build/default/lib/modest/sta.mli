(** Stochastic timed automata — the semantic object of MODEST.

    An STA network is a parallel composition of sequential processes with
    clocks, shared discrete variables, and {e probabilistic} edges: an
    edge carries a guard and an action and branches into weighted
    (updates, destination) alternatives. Actions shared by several
    processes synchronise multiway (all sharers move together; branch
    weights multiply). This subsumes timed automata (single-branch edges)
    and probabilistic timed automata (integer weights, closed guards) —
    exactly the model-class lattice the paper's Section III describes. *)

module Model = Ta.Model
module Expr = Ta.Expr
module Store = Ta.Store

type loc_kind = L_normal | L_urgent

type location = {
  l_name : string;
  l_kind : loc_kind;
  l_invariant : Model.constr list;
}

type branch = {
  weight : int;
  b_updates : Model.update list;
  b_dst : int;
}

type edge = {
  e_src : int;
  e_guard : Expr.t option;
  e_clock_guard : Model.constr list;
  e_action : string option;  (** [None] = internal *)
  e_branches : branch list;
}

type process = {
  p_name : string;
  p_locations : location array;
  p_out : edge list array;
  p_initial : int;
}

type t = {
  processes : process array;
  n_clocks : int;
  clock_names : string array;
  layout : Store.layout;
  max_consts : int array;
  sync : (string, int list) Hashtbl.t;
      (** action name -> indices of sharing processes *)
}

(** {1 Builder} *)

type builder
type proc_builder

val builder : unit -> builder
val fresh_clock : builder -> string -> int
val store : builder -> Store.builder
val process : builder -> string -> proc_builder

val location :
  proc_builder ->
  ?kind:loc_kind ->
  ?invariant:Model.constr list ->
  string ->
  int

val set_initial : proc_builder -> int -> unit

(** [edge pb ~src ~branches ()] — [branches] carry positive weights that
    are normalised per edge. *)
val edge :
  proc_builder ->
  src:int ->
  ?guard:Expr.t ->
  ?clock_guard:Model.constr list ->
  ?action:string ->
  branches:(int * Model.update list * int) list ->
  unit ->
  unit

(** @raise Invalid_argument on malformed networks (empty processes, bad
    indices, non-positive weights, or an action shared by more than two
    processes with probabilistic branching on both sides — unsupported). *)
val build : builder -> t

(** {1 Model classes (Section III: "many well-known models are subsumed")} *)

type model_class = Class_ta | Class_mdp | Class_pta | Class_sta

(** [classify sta]: [Class_ta] when no real probabilistic branching,
    [Class_mdp] when no clocks, [Class_pta] when probabilistic with
    closed diagonal-free constraints, [Class_sta] otherwise. *)
val classify : t -> model_class

val class_name : model_class -> string

(** {1 Queries on structure} *)

val proc_index : t -> string -> int
val loc_index : t -> int -> string -> int

(** [deterministic_weights e] — true when the edge has one branch. *)
val deterministic_weights : edge -> bool
