module Model = Ta.Model
module Expr = Ta.Expr
module Store = Ta.Store
module Bound = Zones.Bound

type loc_kind = L_normal | L_urgent

type location = {
  l_name : string;
  l_kind : loc_kind;
  l_invariant : Model.constr list;
}

type branch = { weight : int; b_updates : Model.update list; b_dst : int }

type edge = {
  e_src : int;
  e_guard : Expr.t option;
  e_clock_guard : Model.constr list;
  e_action : string option;
  e_branches : branch list;
}

type process = {
  p_name : string;
  p_locations : location array;
  p_out : edge list array;
  p_initial : int;
}

type t = {
  processes : process array;
  n_clocks : int;
  clock_names : string array;
  layout : Store.layout;
  max_consts : int array;
  sync : (string, int list) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

type proto = {
  pp_name : string;
  mutable pp_locs : location list;
  mutable pp_edges : edge list;
  mutable pp_initial : int;
}

type builder = {
  mutable clocks : string list;
  mutable procs : proto list;
  b_store : Store.builder;
}

type proc_builder = proto

let builder () = { clocks = []; procs = []; b_store = Store.create () }

let fresh_clock b name =
  b.clocks <- name :: b.clocks;
  List.length b.clocks

let store b = b.b_store

let process b name =
  let p = { pp_name = name; pp_locs = []; pp_edges = []; pp_initial = 0 } in
  b.procs <- p :: b.procs;
  p

let location pb ?(kind = L_normal) ?(invariant = []) name =
  pb.pp_locs <- { l_name = name; l_kind = kind; l_invariant = invariant } :: pb.pp_locs;
  List.length pb.pp_locs - 1

let set_initial pb l = pb.pp_initial <- l

let edge pb ~src ?guard ?clock_guard ?action ~branches () =
  let branches =
    List.map
      (fun (weight, b_updates, b_dst) -> { weight; b_updates; b_dst })
      branches
  in
  pb.pp_edges <-
    {
      e_src = src;
      e_guard = guard;
      e_clock_guard = Option.value clock_guard ~default:[];
      e_action = action;
      e_branches = branches;
    }
    :: pb.pp_edges

let build b =
  let n_clocks = List.length b.clocks in
  let clock_names = Array.make (n_clocks + 1) "0" in
  List.iteri (fun i name -> clock_names.(n_clocks - i) <- name) b.clocks;
  let max_consts = Array.make (n_clocks + 1) 0 in
  let record (c : Model.constr) =
    if not (Bound.is_inf c.cb) then begin
      let k = abs (Bound.constant c.cb) in
      if c.ci > 0 then max_consts.(c.ci) <- max max_consts.(c.ci) k;
      if c.cj > 0 then max_consts.(c.cj) <- max max_consts.(c.cj) k
    end
  in
  let finish proto =
    let locations = Array.of_list (List.rev proto.pp_locs) in
    if Array.length locations = 0 then
      invalid_arg
        (Printf.sprintf "Sta.build: process %s has no locations" proto.pp_name);
    Array.iter (fun l -> List.iter record l.l_invariant) locations;
    let out = Array.make (Array.length locations) [] in
    List.iter
      (fun e ->
        if e.e_src < 0 || e.e_src >= Array.length locations then
          invalid_arg "Sta.build: bad edge source";
        List.iter record e.e_clock_guard;
        if e.e_branches = [] then invalid_arg "Sta.build: edge without branches";
        List.iter
          (fun br ->
            if br.weight <= 0 then invalid_arg "Sta.build: non-positive weight";
            if br.b_dst < 0 || br.b_dst >= Array.length locations then
              invalid_arg "Sta.build: bad branch destination";
            List.iter
              (function
                | Model.Reset (x, v) ->
                  if x < 1 || x > n_clocks || v < 0 then
                    invalid_arg "Sta.build: bad clock reset";
                  max_consts.(x) <- max max_consts.(x) v
                | Model.Assign _ | Model.Prim _ -> ())
              br.b_updates)
          e.e_branches)
      proto.pp_edges;
    List.iter (fun e -> out.(e.e_src) <- e :: out.(e.e_src)) proto.pp_edges;
    Array.iteri (fun i l -> out.(i) <- l) (Array.map List.rev out);
    {
      p_name = proto.pp_name;
      p_locations = locations;
      p_out = out;
      p_initial = proto.pp_initial;
    }
  in
  let processes = Array.of_list (List.rev_map finish b.procs) in
  let sync = Hashtbl.create 16 in
  Array.iteri
    (fun pi p ->
      let seen = Hashtbl.create 8 in
      Array.iter
        (fun edges ->
          List.iter
            (fun e ->
              match e.e_action with
              | Some a when not (Hashtbl.mem seen a) ->
                Hashtbl.replace seen a ();
                let sharers = try Hashtbl.find sync a with Not_found -> [] in
                Hashtbl.replace sync a (sharers @ [ pi ])
              | Some _ | None -> ())
            edges)
        p.p_out)
    processes;
  (* Multiway probabilistic synchronisation of >2 parties is not needed by
     the paper's models; reject it early rather than mis-handle weights. *)
  Hashtbl.iter
    (fun a sharers ->
      if List.length sharers > 2 then
        invalid_arg
          (Printf.sprintf
             "Sta.build: action %s shared by %d processes (max 2 supported)" a
             (List.length sharers)))
    sync;
  {
    processes;
    n_clocks;
    clock_names;
    layout = Store.freeze b.b_store;
    max_consts;
    sync;
  }

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

type model_class = Class_ta | Class_mdp | Class_pta | Class_sta

let deterministic_weights e =
  match e.e_branches with [ _ ] -> true | [] | _ :: _ -> false

let all_edges t =
  Array.to_list t.processes
  |> List.concat_map (fun p -> Array.to_list p.p_out |> List.concat)

let closed_constraints t =
  let constr_ok (c : Model.constr) =
    (c.ci = 0 || c.cj = 0) && not (Bound.is_strict c.cb)
  in
  List.for_all (fun e -> List.for_all constr_ok e.e_clock_guard) (all_edges t)
  && Array.for_all
       (fun p ->
         Array.for_all
           (fun l -> List.for_all constr_ok l.l_invariant)
           p.p_locations)
       t.processes

let classify t =
  let probabilistic =
    List.exists (fun e -> not (deterministic_weights e)) (all_edges t)
  in
  if not probabilistic then Class_ta
  else if t.n_clocks = 0 then Class_mdp
  else if closed_constraints t then Class_pta
  else Class_sta

let class_name = function
  | Class_ta -> "TA"
  | Class_mdp -> "MDP"
  | Class_pta -> "PTA"
  | Class_sta -> "STA"

let proc_index t name =
  let found = ref (-1) in
  Array.iteri
    (fun i p -> if String.equal p.p_name name then found := i)
    t.processes;
  if !found < 0 then raise Not_found else !found

let loc_index t pi name =
  let locs = t.processes.(pi).p_locations in
  let found = ref (-1) in
  Array.iteri (fun i l -> if String.equal l.l_name name then found := i) locs;
  if !found < 0 then raise Not_found else !found
