type t =
  | P_true
  | P_loc of string * string
  | P_data of Ta.Expr.t
  | P_not of t
  | P_and of t * t
  | P_or of t * t

let rec eval sta ~locs ~store = function
  | P_true -> true
  | P_loc (pname, lname) ->
    let pi = Sta.proc_index sta pname in
    locs.(pi) = Sta.loc_index sta pi lname
  | P_data e -> Ta.Expr.eval_bool store e
  | P_not p -> not (eval sta ~locs ~store p)
  | P_and (p, q) -> eval sta ~locs ~store p && eval sta ~locs ~store q
  | P_or (p, q) -> eval sta ~locs ~store p || eval sta ~locs ~store q

let rec to_ta_formula sta net = function
  | P_true -> Ta.Prop.True
  | P_loc (pname, lname) ->
    ignore sta;
    Ta.Prop.loc net pname lname
  | P_data e -> Ta.Prop.Data e
  | P_not p -> Ta.Prop.Not (to_ta_formula sta net p)
  | P_and (p, q) ->
    Ta.Prop.And (to_ta_formula sta net p, to_ta_formula sta net q)
  | P_or (p, q) ->
    Ta.Prop.Or (to_ta_formula sta net p, to_ta_formula sta net q)

let rec pp ppf = function
  | P_true -> Format.pp_print_string ppf "true"
  | P_loc (p, l) -> Format.fprintf ppf "%s.%s" p l
  | P_data e -> Ta.Expr.pp ppf e
  | P_not p -> Format.fprintf ppf "!(%a)" pp p
  | P_and (p, q) -> Format.fprintf ppf "(%a && %a)" pp p pp q
  | P_or (p, q) -> Format.fprintf ppf "(%a || %a)" pp p pp q
