(** Export of TA networks to UPPAAL 4.x XML.

    The paper describes mctau as "allowing ... export to UPPAAL XML,
    including automatic layout of the component automata" — this module
    provides that: one [<template>] per automaton, locations laid out on
    a circle, invariants/guards/synchronisations/assignments as UPPAAL
    label syntax. Data guards print through {!Ta.Expr.pp}; [Prim] updates
    are emitted as comments (they have no textual form).

    The output loads in UPPAAL for models within the exported subset and
    round-trips the structural information (asserted by the test suite on
    the generated text). *)

(** [of_network net] renders a full [<nta>] document. *)
val of_network : Ta.Model.network -> string

(** [of_sta sta] = [of_network (Mctau.to_ta sta)] — the mctau export
    path. *)
val of_sta : Sta.t -> string
