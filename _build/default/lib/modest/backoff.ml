module Model = Ta.Model
module Expr = Ta.Expr
module Store = Ta.Store

type t = { sta : Sta.t; slots : int; round_time : int }

(* Two stations synchronise on a "round" action at the end of each slot
   period; each side's palt picks a slot, so the joint distribution is
   the product (uniform over slot pairs). An urgent check location then
   either restarts the round (collision) or moves to Done. *)
let make ?(slots = 2) ?(round_time = 2) () =
  assert (slots >= 2 && round_time >= 1);
  let b = Sta.builder () in
  let sb = Sta.store b in
  let slot1 = Store.int_var sb "slot1" in
  let slot2 = Store.int_var sb "slot2" in
  let station name slot_var =
    let clock = Sta.fresh_clock b ("c_" ^ name) in
    let p = Sta.process b name in
    let choose =
      Sta.location p ~invariant:[ Model.clock_le clock round_time ] "Choose"
    in
    let check = Sta.location p ~kind:Sta.L_urgent "Check" in
    let done_l = Sta.location p "Done" in
    Sta.set_initial p choose;
    let branches =
      List.init slots (fun k ->
          (1, [ Model.Assign (Expr.Cell slot_var, Expr.Int k) ], check))
    in
    Sta.edge p ~src:choose ~action:"round"
      ~clock_guard:[ Model.clock_ge clock round_time ]
      ~branches ();
    (* Collision: both picked the same slot; try again. *)
    Sta.edge p ~src:check
      ~guard:(Expr.Eq (Expr.var slot1, Expr.var slot2))
      ~branches:[ (1, [ Model.Reset (clock, 0) ], choose) ]
      ();
    Sta.edge p ~src:check
      ~guard:(Expr.Neq (Expr.var slot1, Expr.var slot2))
      ~branches:[ (1, [], done_l) ]
      ()
  in
  station "S1" slot1;
  station "S2" slot2;
  { sta = Sta.build b; slots; round_time }

let resolved (_ : t) =
  Mprop.P_and (Mprop.P_loc ("S1", "Done"), Mprop.P_loc ("S2", "Done"))

let contending (_ : t) = Mprop.P_loc ("S1", "Choose")

let success_within t ~bound =
  fst (Mcpta.time_bounded_reach t.sta (resolved t) ~bound ~maximize:true)

let expected_resolution_time t =
  fst (Mcpta.expected_time t.sta (resolved t) ~maximize:true)

let simulate_mean_time t ~runs ~seed =
  let horizon = float_of_int (t.round_time * 200) in
  let obs =
    Modes.runs t.sta ~seed ~n:runs ~horizon ~watch:[| resolved t |]
      ~monitors:[||]
  in
  let times =
    Array.map
      (fun (o : Modes.observation) ->
        match o.Modes.hits.(0) with Some h -> h | None -> o.Modes.end_time)
      obs
  in
  Smc.Estimate.mean_std times
