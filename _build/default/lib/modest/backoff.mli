(** Randomized contention resolution — the second MODEST case study.

    Section III notes that, beyond the BRP, the MODEST approach was
    applied to protocols that are "inherently probabilistic due to the
    use of randomized schemes to resolve contention" (ref. [14]). This
    model captures that class: two stations repeatedly pick a slot from
    [0 .. slots-1] uniformly at random (a two-party synchronisation whose
    branch distributions multiply); a round takes [round_time] time
    units; the contention is resolved when the picks differ.

    Closed forms (for [slots = 2], [round_time = 2]): success per round
    1/2, expected completion time 4, [P(done within 2k) = 1 - 2^-k] —
    used to cross-validate mcpta and modes in the test suite. *)

type t = {
  sta : Sta.t;
  slots : int;
  round_time : int;
}

val make : ?slots:int -> ?round_time:int -> unit -> t

(** Both stations resolved (picked distinct slots). *)
val resolved : t -> Mprop.t

(** Still contending. *)
val contending : t -> Mprop.t

(** [success_within t ~bound] — max probability of resolving within
    [bound] time units (via mcpta). *)
val success_within : t -> bound:int -> float

(** [expected_resolution_time t] — max expected time to resolution. *)
val expected_resolution_time : t -> float

(** [simulate_mean_time t ~runs ~seed] — the modes estimate (mean, std). *)
val simulate_mean_time : t -> runs:int -> seed:int -> float * float
