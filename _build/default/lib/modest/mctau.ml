module Model = Ta.Model

let to_ta (sta : Sta.t) =
  let b = Model.builder () in
  (* Clocks, in declaration order so indices coincide with the STA's. *)
  for x = 1 to sta.Sta.n_clocks do
    ignore (Model.fresh_clock b sta.Sta.clock_names.(x))
  done;
  (* Channels for two-party actions; remember the emitter side. *)
  let chan_for : (string, Model.chan * int) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun a sharers ->
      match sharers with
      | [ p1; _ ] -> Hashtbl.replace chan_for a (Model.channel b a, p1)
      | [ _ ] | [] -> ()
      | _ -> assert false)
    sta.Sta.sync;
  (* Variables: rebuild the same layout (same declaration order => same
     offsets, so the STA's expressions evaluate unchanged), preserving
     initial values. *)
  let sb = Model.store b in
  let inits = Ta.Store.initial sta.Sta.layout in
  List.iter
    (fun (v : Ta.Store.var) ->
      let init = inits.(v.Ta.Store.off) in
      if v.Ta.Store.len = 1 then
        ignore (Ta.Store.int_var sb ~init v.Ta.Store.var_name)
      else ignore (Ta.Store.array_var sb ~init v.Ta.Store.var_name v.Ta.Store.len))
    (Ta.Store.vars sta.Sta.layout);
  (* One automaton per process; one TA edge per STA branch. *)
  Array.iteri
    (fun pi (p : Sta.process) ->
      let a = Model.automaton b p.Sta.p_name in
      Array.iter
        (fun (l : Sta.location) ->
          let kind =
            match l.Sta.l_kind with
            | Sta.L_normal -> Model.Normal
            | Sta.L_urgent -> Model.Urgent
          in
          ignore (Model.location a ~kind ~invariant:l.Sta.l_invariant l.Sta.l_name))
        p.Sta.p_locations;
      Model.set_initial a p.Sta.p_initial;
      Array.iteri
        (fun src edges ->
          List.iter
            (fun (e : Sta.edge) ->
              let sync =
                match e.Sta.e_action with
                | None -> Model.Tau
                | Some act ->
                  (match Hashtbl.find_opt chan_for act with
                   | Some (ch, emitter) ->
                     if pi = emitter then Model.Emit ch else Model.Receive ch
                   | None -> Model.Tau)
              in
              List.iter
                (fun (br : Sta.branch) ->
                  Model.edge a ~src ~dst:br.Sta.b_dst ?guard:e.Sta.e_guard
                    ~clock_guard:e.Sta.e_clock_guard ~sync
                    ~updates:br.Sta.b_updates ())
                e.Sta.e_branches)
            edges)
        p.Sta.p_out)
    sta.Sta.processes;
  Model.build b

(* The rebuilt layout has identical offsets (same declaration order), so
   expressions referring to the STA's vars evaluate unchanged. *)

let invariant_holds sta p =
  let net = to_ta sta in
  let f = Mprop.to_ta_formula sta net p in
  let r = Ta.Checker.check net (Ta.Prop.Invariant f) in
  (r.Ta.Checker.holds, r.Ta.Checker.stats)

let prob_bounds sta p =
  let net = to_ta sta in
  let f = Mprop.to_ta_formula sta net p in
  let r = Ta.Checker.check net (Ta.Prop.Possibly f) in
  ((if r.Ta.Checker.holds then `Interval (0.0, 1.0) else `Zero), r.Ta.Checker.stats)

let expected_value _sta _p = `Not_supported
