(** Abstract syntax of the MODEST subset, and its compilation to STA.

    The subset covers what the paper shows and the BRP needs: process
    definitions with local clocks and variables, action prefix, [palt]
    probabilistic choice (with the branch assignments of Fig. 5), [alt]
    nondeterministic choice, [when] data guards, clock guards,
    [invariant], sequential composition, recursion by process call, and
    top-level [par] composition with CSP-style synchronisation on shared
    action names.

    Compilation builds one STA process per parallel component; locations
    are (hash-consed) process terms, so recursion like [Channel()] in
    Fig. 5 ties the knot back to the same location. *)

(** Name-based expressions (resolved against constants/variables at
    compile time). *)
type pexpr =
  | E_int of int
  | E_bool of bool
  | E_name of string
  | E_index of string * pexpr
  | E_neg of pexpr
  | E_not of pexpr
  | E_bin of string * pexpr * pexpr
      (** operators: + - * / % == != < <= > >= && || *)

type assign = { a_lhs : string; a_index : pexpr option; a_rhs : pexpr }

(** Clock comparison [clock op const-expr]. *)
type cconstr = { k_clock : string; k_op : [ `Le | `Lt | `Ge | `Gt | `Eq ]; k_rhs : pexpr }

type proc =
  | Stop  (** no behaviour, never terminates *)
  | Skip  (** immediate successful termination *)
  | Act of string * branch list  (** action with palt branches *)
  | Tau of assign list  (** [{= ... =}] — urgent internal move *)
  | Seq of proc * proc
  | Alt of proc list
  | When of pexpr * proc
  | When_clock of cconstr list * proc
  | Inv of cconstr list * proc
  | Do of proc  (** [do { p }]: infinite repetition of [p] *)
  | Call of string

and branch = { br_weight : int; br_assigns : assign list; br_cont : proc }

(** [act a] is the plain action prefix (one branch of weight 1). *)
val act : string -> proc

type decl =
  | D_const of string * pexpr
  | D_var of string * pexpr option  (** int/bool variable *)
  | D_array of string * int * pexpr option
  | D_clock of string list
  | D_process of string * local list * proc
  | D_par of string list  (** par { P() || Q() || ... } *)

and local = L_clock of string list | L_var of string * pexpr option

type model = decl list

exception Compile_error of string

(** [compile model] elaborates to an STA network. Process-local clock and
    variable names are qualified as ["Proc.name"] internally.
    @raise Compile_error on unknown names, non-constant clock bounds,
    missing [par], or unsupported recursion through pure calls. *)
val compile : model -> Sta.t
