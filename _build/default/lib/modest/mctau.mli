(** The [mctau] backend: analyse MODEST models with the UPPAAL-style
    timed-automata engine by overapproximating probabilistic choices as
    nondeterminism (Section III, ref. [13]).

    Because every probabilistic branch has positive probability, the
    overapproximation is {e exact} for invariant and reachability
    questions: a state is reachable in the TA iff it is reachable with
    positive probability in the PTA. Probabilistic quantities therefore
    come back as [`Zero] (target unreachable) or the trivial bound
    [`Interval (0, 1)] — precisely the Table I behaviour. *)

(** [to_ta sta] — each probabilistic branch becomes its own edge;
    two-party actions become binary channels (first sharer emits). *)
val to_ta : Sta.t -> Ta.Model.network

(** [invariant_holds sta p] — exact, via the TA reachability engine. *)
val invariant_holds : Sta.t -> Mprop.t -> bool * Ta.Checker.stats

(** [prob_bounds sta p] — bounds on the probability of reaching [p]. *)
val prob_bounds :
  Sta.t -> Mprop.t -> [ `Zero | `Interval of float * float ] * Ta.Checker.stats

(** Expected values cannot be bounded by the overapproximation. *)
val expected_value : Sta.t -> Mprop.t -> [ `Not_supported ]
