lib/modest/ast.ml: Hashtbl List Option Printf Queue Sta Ta
