lib/modest/mcpta.mli: Mprop Sta
