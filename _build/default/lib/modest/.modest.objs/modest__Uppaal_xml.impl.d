lib/modest/uppaal_xml.ml: Array Buffer Float List Mctau Printf String Ta Zones
