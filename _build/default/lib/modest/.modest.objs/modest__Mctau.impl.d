lib/modest/mctau.ml: Array Hashtbl List Mprop Sta Ta
