lib/modest/mprop.mli: Format Sta Ta
