lib/modest/sta.ml: Array Hashtbl List Option Printf String Ta Zones
