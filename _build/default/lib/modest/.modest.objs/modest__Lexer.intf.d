lib/modest/lexer.mli:
