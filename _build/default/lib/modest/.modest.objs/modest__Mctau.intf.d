lib/modest/mctau.mli: Mprop Sta Ta
