lib/modest/backoff.mli: Mprop Sta
