lib/modest/digital_sta.ml: Array Hashtbl List Mdp Mprop Printf Queue Sta Ta Zones
