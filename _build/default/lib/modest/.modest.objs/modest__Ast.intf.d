lib/modest/ast.mli: Sta
