lib/modest/mprop.ml: Array Format Sta Ta
