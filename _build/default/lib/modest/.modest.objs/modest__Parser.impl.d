lib/modest/parser.ml: Ast Lexer List Printf
