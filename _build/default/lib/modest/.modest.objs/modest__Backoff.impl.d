lib/modest/backoff.ml: Array List Mcpta Modes Mprop Smc Sta Ta
