lib/modest/uppaal_xml.mli: Sta Ta
