lib/modest/mcpta.ml: Array Digital_sta Mdp
