lib/modest/modes.ml: Array Hashtbl List Mprop Random Sta Ta Zones
