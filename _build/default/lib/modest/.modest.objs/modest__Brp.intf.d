lib/modest/brp.mli: Mprop Sta
