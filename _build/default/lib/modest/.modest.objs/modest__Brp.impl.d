lib/modest/brp.ml: Array Mcpta Mctau Modes Mprop Smc Sta Ta
