lib/modest/lexer.ml: List Printf String
