lib/modest/modes.mli: Mprop Sta
