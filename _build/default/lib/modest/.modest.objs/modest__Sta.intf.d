lib/modest/sta.mli: Hashtbl Ta
