lib/modest/parser.mli: Ast Sta
