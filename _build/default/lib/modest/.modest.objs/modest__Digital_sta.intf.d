lib/modest/digital_sta.mli: Mdp Mprop Sta
