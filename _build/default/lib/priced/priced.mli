(** Priced timed automata analysis — the UPPAAL-CORA reproduction.

    The core algorithms (min-cost Dijkstra, max-cost/WCET on the SCC
    condensation) live in {!Cora} and are included here; {!Jobshop} is
    the optimal-scheduling case study. *)

include module type of Cora

module Jobshop : module type of Jobshop
