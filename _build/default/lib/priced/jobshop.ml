module Model = Ta.Model
module Expr = Ta.Expr
module Store = Ta.Store
module Digital = Discrete.Digital

type job = (int * int) list
type instance = { machines : int; jobs : job list }
type schedule = { makespan : int; steps : string list }

let validate inst =
  if inst.machines < 1 then invalid_arg "Jobshop: no machines";
  List.iter
    (fun job ->
      List.iter
        (fun (m, d) ->
          if m < 0 || m >= inst.machines then
            invalid_arg "Jobshop: bad machine index";
          if d <= 0 then invalid_arg "Jobshop: non-positive duration")
        job)
    inst.jobs

let network inst =
  validate inst;
  let b = Model.builder () in
  let sb = Model.store b in
  let busy = Store.array_var sb "busy" inst.machines in
  let n_jobs = List.length inst.jobs in
  let done_locs = Array.make n_jobs 0 in
  List.iteri
    (fun ji job ->
      let x = Model.fresh_clock b (Printf.sprintf "x%d" ji) in
      let a = Model.automaton b (Printf.sprintf "Job%d" ji) in
      (* Interleave Wait/Run locations per task, ending in Done. *)
      let wait_locs =
        List.mapi
          (fun ti _ -> Model.location a (Printf.sprintf "wait%d" ti))
          job
      in
      let run_locs =
        List.mapi
          (fun ti (_, d) ->
            Model.location a
              (Printf.sprintf "run%d" ti)
              ~invariant:[ Model.clock_le x d ])
          job
      in
      let done_l = Model.location a "Done" in
      done_locs.(ji) <- done_l;
      List.iteri
        (fun ti (m, d) ->
          let wait = List.nth wait_locs ti in
          let run = List.nth run_locs ti in
          let next =
            if ti + 1 < List.length job then List.nth wait_locs (ti + 1)
            else done_l
          in
          (* Acquire the machine. *)
          Model.edge a ~src:wait ~dst:run
            ~guard:(Expr.Eq (Expr.index busy (Expr.Int m), Expr.Int 0))
            ~updates:
              [
                Model.Assign (Expr.Elem (busy, Expr.Int m), Expr.Int 1);
                Model.Reset (x, 0);
              ]
            ();
          (* Run to completion, release. *)
          Model.edge a ~src:run ~dst:next
            ~clock_guard:[ Model.clock_ge x d ]
            ~updates:[ Model.Assign (Expr.Elem (busy, Expr.Int m), Expr.Int 0) ]
            ())
        job;
      match wait_locs with
      | first :: _ -> Model.set_initial a first
      | [] -> Model.set_initial a done_l)
    inst.jobs;
  let net = Model.build b in
  let all_done (st : Digital.dstate) =
    let ok = ref true in
    Array.iteri (fun ji dl -> if st.Digital.dlocs.(ji) <> dl then ok := false) done_locs;
    !ok
  in
  (net, all_done)

let optimal inst =
  let net, all_done = network inst in
  match Cora.min_time_reach net ~target:all_done with
  | Some o -> Some { makespan = o.Cora.cost; steps = o.Cora.steps }
  | None -> None

let makespan_lower_bound inst =
  let machine_load = Array.make inst.machines 0 in
  let job_bound = ref 0 in
  List.iter
    (fun job ->
      let total = List.fold_left (fun acc (_, d) -> acc + d) 0 job in
      job_bound := max !job_bound total;
      List.iter
        (fun (m, d) -> machine_load.(m) <- machine_load.(m) + d)
        job)
    inst.jobs;
  Array.fold_left max !job_bound machine_load
