(** Optimal job-shop scheduling — the classic UPPAAL-CORA application
    ("several applications to optimization for embedded systems",
    Section II).

    A job is a sequence of (machine, duration) tasks; machines are
    exclusive. The minimal makespan is minimum-time reachability of the
    all-jobs-done state on the priced digital graph — the schedule itself
    falls out of the optimal run. *)

type job = (int * int) list
(** (machine index, duration) tasks, executed in order *)

type instance = { machines : int; jobs : job list }

(** [network inst] — the TA network encoding (one automaton per job,
    machine exclusion through shared busy flags) and the completion
    predicate. *)
val network :
  instance -> Ta.Model.network * (Discrete.Digital.dstate -> bool)

type schedule = {
  makespan : int;
  steps : string list;  (** the optimal run's transitions *)
}

(** [optimal inst] — minimal makespan, or [None] for infeasible inputs.
    @raise Invalid_argument on bad machine indices or non-positive
    durations. *)
val optimal : instance -> schedule option

(** [makespan_lower_bound inst] — max over machines of total load, and
    over jobs of total duration (a classic admissible bound, used by the
    tests as a sanity check). *)
val makespan_lower_bound : instance -> int
