lib/priced/cora.ml: Array Discrete Hashtbl List Quant_util Ta
