lib/priced/priced.mli: Cora Jobshop
