lib/priced/cora.mli: Discrete Ta
